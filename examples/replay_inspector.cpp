// Replay inspector: record one Internet2 schedule and replay it under every
// candidate UPS (LSTF, preemptive LSTF, EDF, simple priorities, omniscient),
// printing the overdue fractions and queueing-delay ratios side by side.
//
// Usage: replay_inspector [--packets=N] [--seed=N] [--quick]
#include <cstdio>
#include <iostream>

#include "exp/args.h"
#include "exp/replay_experiment.h"
#include "stats/summary.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace ups;
  const auto a = exp::args::parse(argc, argv);

  exp::scenario sc;
  sc.seed = a.seed;
  sc.packet_budget = a.budget(40'000);
  sc.record_hops = true;  // omniscient replay needs per-hop times

  std::printf("recording original schedule: %s (%llu packets)...\n",
              sc.label().c_str(),
              static_cast<unsigned long long>(sc.packet_budget));
  const auto orig = exp::run_original(sc);
  std::printf("recorded %zu packets; T = %.1f us\n\n",
              orig.trace.packets.size(), sim::to_micros(orig.threshold_T));

  stats::table t({"replay mode", "frac overdue", "frac overdue > T",
                  "median qdelay ratio"});
  for (const auto mode :
       {core::replay_mode::lstf, core::replay_mode::lstf_preemptive,
        core::replay_mode::edf, core::replay_mode::priority_output_time,
        core::replay_mode::omniscient}) {
    const auto res = exp::run_replay(orig, mode, /*keep_outcomes=*/true);
    stats::sample_set ratios;
    for (const auto& o : res.outcomes) {
      if (o.original_queueing > 0) {
        ratios.add(static_cast<double>(o.replay_queueing) /
                   static_cast<double>(o.original_queueing));
      }
    }
    t.add_row({core::to_string(mode), stats::table::fmt_frac(res.frac_overdue()),
               stats::table::fmt_frac(res.frac_overdue_beyond_T()),
               ratios.empty() ? "-" : stats::table::fmt(ratios.quantile(0.5), 3)});
  }
  t.print(std::cout);
  std::printf(
      "\nNotes: LSTF == EDF by Appendix E; the omniscient row is the\n"
      "Appendix B existence proof (perfect replay); the priority row is\n"
      "§2.3(7)'s 'most intuitive' static assignment priority(p) = o(p).\n");
  return 0;
}
