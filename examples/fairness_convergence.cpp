// Fairness convergence (§3.3 / Figure 4): long-lived TCP flows on the
// Internet2 fairness topology; Jain index over time for FIFO, FQ and LSTF
// with virtual-clock slack at several r_est values.
//
// Usage: fairness_convergence [--seed=N] [--quick]
#include <cstdio>

#include "exp/args.h"
#include "exp/fairness_experiment.h"

int main(int argc, char** argv) {
  using namespace ups;
  const auto a = exp::args::parse(argc, argv);

  exp::fairness_config cfg;
  cfg.seed = a.seed;
  if (a.quick) {
    cfg.flows = 30;
    cfg.horizon = 10 * sim::kMillisecond;
  }

  std::vector<exp::fairness_result> results;
  results.push_back(exp::run_fairness(exp::fairness_variant::fifo, 0, cfg));
  results.push_back(exp::run_fairness(exp::fairness_variant::fq, 0, cfg));
  for (const auto rest :
       {sim::kGbps, sim::kGbps / 2, sim::kGbps / 10, sim::kGbps / 20,
        sim::kGbps / 100}) {
    results.push_back(
        exp::run_fairness(exp::fairness_variant::lstf, rest, cfg));
  }

  std::printf("Jain fairness index over time (%d long-lived TCP flows):\n\n",
              cfg.flows);
  std::printf("%8s", "t(ms)");
  for (const auto& r : results) {
    if (r.r_est > 0) {
      std::printf("  LSTF@%4.2fG", static_cast<double>(r.r_est) / 1e9);
    } else {
      std::printf("  %10s", r.label.c_str());
    }
  }
  std::printf("\n");
  for (std::size_t i = 0; i < results.front().time_ms.size(); ++i) {
    std::printf("%8.1f", results.front().time_ms[i]);
    for (const auto& r : results) std::printf("  %10.3f", r.jain[i]);
    std::printf("\n");
  }
  std::printf("\nFigure 4's shape: FQ converges to 1 once all flows start;"
              " LSTF converges for every r_est <= r*, slightly sooner for"
              " r_est closer to r*.\n");
  return 0;
}
