// Guided tour of the paper's appendix counterexamples: runs each gadget's
// prescribed schedule, replays it with the candidate UPSes, and narrates
// the outcome packet by packet.
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "core/registry.h"
#include "core/replay.h"
#include "net/network.h"
#include "net/trace.h"
#include "sim/simulator.h"
#include "topo/gadgets.h"

namespace {

using namespace ups;

struct gadget_run {
  topo::topology topology;
  net::trace trace;
  std::map<std::uint64_t, std::string> name_of;
};

gadget_run run_original(const topo::gadget& g) {
  gadget_run out;
  out.topology = g.topo;
  sim::simulator sim;
  net::network net(sim);
  topo::populate(g.topo, net);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(
      core::make_factory(core::sched_kind::omniscient, 1));
  net.build();
  net::trace_recorder recorder(net, true);
  std::uint64_t next_id = 1;
  for (const auto& gp : g.packets) {
    net::packet_ptr p = net::make_packet();
    p->id = next_id++;
    p->flow_id = p->id;
    p->size_bytes = gp.size_bytes;
    p->src_host = g.topo.host_id(gp.src_host);
    p->dst_host = g.topo.host_id(gp.dst_host);
    for (const auto r : gp.path) p->path.push_back(r);
    p->hop_deadlines = gp.hop_starts;
    p->record_hops = true;
    out.name_of[p->id] = gp.name;
    net::packet* raw = p.release();
    sim.schedule_at(gp.inject_at, [&net, raw] {
      net.send_from_host(net::packet_ptr(raw));
    });
  }
  sim.run();
  out.trace = recorder.take();
  return out;
}

void narrate(const char* title, const topo::gadget& g,
             core::replay_mode mode) {
  const auto run = run_original(g);
  core::replay_options opt;
  opt.mode = mode;
  opt.keep_outcomes = true;
  const auto& topology = run.topology;
  const auto res = core::replay_trace(
      run.trace, [&topology](net::network& n) { topo::populate(topology, n); },
      opt);
  std::printf("%s — replayed with %s:\n", title, core::to_string(mode));
  for (const auto& o : res.outcomes) {
    std::printf("  %-3s o(p) = %4.1f  o'(p) = %4.1f  %s\n",
                run.name_of.at(o.id).c_str(),
                sim::to_micros(o.original_out),
                sim::to_micros(o.replay_out),
                o.lateness() > 0 ? "OVERDUE" : "on time");
  }
  std::printf("  => %llu of %llu packets overdue\n\n",
              static_cast<unsigned long long>(res.overdue),
              static_cast<unsigned long long>(res.total));
}

}  // namespace

int main() {
  std::printf("=== Appendix F (Figure 6): the priority cycle ===\n");
  std::printf("Simple priorities need priority(a)<(b)<(c)<(a): impossible.\n\n");
  narrate("Fig 6", topo::fig6_priority_cycle(),
          core::replay_mode::priority_output_time);
  narrate("Fig 6", topo::fig6_priority_cycle(), core::replay_mode::lstf);

  std::printf("=== Appendix G.3 (Figure 7): LSTF at 3 congestion points ===\n");
  std::printf("With three congestion points LSTF cannot know how to spend\n"
              "slack early; exactly one of {a, c2} must go overdue.\n\n");
  narrate("Fig 7", topo::fig7_lstf_failure(), core::replay_mode::lstf);
  narrate("Fig 7", topo::fig7_lstf_failure(), core::replay_mode::omniscient);

  std::printf("=== Appendix C (Figure 5): no UPS exists ===\n");
  std::printf("Packets a and x have identical (i, o, path) in both cases,\n"
              "but case 1 needs a first and case 2 needs x first: any\n"
              "deterministic black-box initialization fails one of them.\n\n");
  narrate("Fig 5 case 1", topo::fig5_case(1), core::replay_mode::lstf);
  narrate("Fig 5 case 2", topo::fig5_case(2), core::replay_mode::lstf);
  narrate("Fig 5 case 1 (omniscient is not black-box)", topo::fig5_case(1),
          core::replay_mode::omniscient);
  return 0;
}
