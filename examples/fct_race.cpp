// FCT race (§3.1 / Figure 2): TCP flows on Internet2 under FIFO, SRPT, SJF
// and LSTF with slack = flow_size x D; prints mean FCT bucketed by flow
// size.
//
// Usage: fct_race [--packets=N] [--seed=N] [--quick]
#include <cstdio>
#include <iostream>

#include "exp/args.h"
#include "exp/fct_experiment.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace ups;
  const auto a = exp::args::parse(argc, argv);

  exp::fct_config cfg;
  cfg.seed = a.seed;
  // The heavy-tailed sizes mean ~1.5 MB/flow: keep enough packets that the
  // schedulers genuinely contend (see DESIGN.md on the Figure 2 regime).
  cfg.packet_budget = a.budget(120'000);

  std::printf("running 4 schedulers x TCP on %s @%d%%...\n\n",
              exp::to_string(cfg.topo),
              static_cast<int>(cfg.utilization * 100));

  std::vector<exp::fct_result> results;
  for (const auto v : {exp::fct_variant::fifo, exp::fct_variant::srpt,
                       exp::fct_variant::sjf, exp::fct_variant::lstf}) {
    results.push_back(exp::run_fct(v, cfg));
    std::printf("  %-5s mean FCT %.3f s over %llu flows (%llu drops)\n",
                results.back().label.c_str(),
                results.back().overall_mean_fct_s,
                static_cast<unsigned long long>(results.back().flows),
                static_cast<unsigned long long>(results.back().drops));
  }

  std::printf("\nmean FCT (s) bucketed by flow size:\n");
  stats::table t({"flow size <=", "FIFO", "SRPT", "SJF", "LSTF"});
  const auto& edges = results.front().bucket_edges;
  for (std::size_t b = 0; b < edges.size(); ++b) {
    if (results.front().bucket_counts[b] == 0) continue;
    std::vector<std::string> row{std::to_string(edges[b]) + " B"};
    for (const auto& r : results) {
      row.push_back(stats::table::fmt(r.bucket_mean_fct_s[b], 4));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::printf("\nFigure 2's shape: SJF ~ SRPT << FIFO on the mean, and LSTF"
              " tracks SJF.\n");
  return 0;
}
