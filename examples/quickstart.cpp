// Quickstart: record a schedule under Random scheduling on a dumbbell and
// replay it with LSTF.
//
//   1. build a topology and a network running some scheduling algorithm,
//   2. drive open-loop traffic through it while recording the schedule
//      {(path(p), i(p), o(p))},
//   3. replay the schedule with LSTF: slack(p) = o(p) - i(p) - tmin(p),
//   4. report how many packets missed their original output times.
#include <cstdio>

#include "core/registry.h"
#include "core/replay.h"
#include "net/network.h"
#include "net/trace.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "traffic/size_dist.h"
#include "traffic/source.h"
#include "traffic/workload.h"

int main() {
  using namespace ups;

  // --- 1. topology: 8 hosts around a 1 Gbps bottleneck ---
  const auto topology = topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps);

  // --- 2. original run: Random scheduling at every port ---
  sim::simulator sim;
  net::network net(sim);
  topo::populate(topology, net);
  net.set_buffer_bytes(0);  // large buffers: no drops (paper's replay setup)
  net.set_scheduler_factory(
      core::make_factory(core::sched_kind::random, /*seed=*/1, &net));
  net.build();

  net::trace_recorder recorder(net);

  const auto dist = traffic::default_heavy_tailed();
  traffic::workload_config wcfg;
  wcfg.utilization = 0.7;
  wcfg.packet_budget = 20'000;
  auto wl = traffic::generate(net, topology, *dist, wcfg);
  std::printf("generated %zu flows (%llu packets), per-host rate %.0f Mbps\n",
              wl.flows.size(),
              static_cast<unsigned long long>(wl.total_packets),
              wl.per_host_rate_bps / 1e6);

  traffic::open_loop_source app(net, std::move(wl.flows), {});
  sim.run();
  const auto trace = recorder.take();
  std::printf("original schedule recorded: %zu packets, %llu events\n",
              trace.packets.size(),
              static_cast<unsigned long long>(sim.events_processed()));

  // --- 3. replay with LSTF ---
  core::replay_options opt;
  opt.mode = core::replay_mode::lstf;
  opt.threshold_T = sim::transmission_time(1500, sim::kGbps);  // 12 us
  const auto res = core::replay_trace(
      trace, [&topology](net::network& n) { topo::populate(topology, n); },
      opt);

  // --- 4. report ---
  std::printf("\nLSTF replay of a Random schedule (%llu packets):\n",
              static_cast<unsigned long long>(res.total));
  std::printf("  fraction overdue:        %.6f\n", res.frac_overdue());
  std::printf("  fraction overdue > T:    %.6f\n",
              res.frac_overdue_beyond_T());
  std::printf("\n(the paper's Table 1 reports the same two columns across "
              "13 scenarios;\n run bench/bench_table1 for the full set)\n");
  return 0;
}
