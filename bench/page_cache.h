// Page-cache eviction shared by the cold-ingest bench lanes: flush a
// file's dirty pages, then POSIX_FADV_DONTNEED its cached pages, so the
// next open measures disk-lane ingest — the regime the v3 block format
// targets — rather than a warm-cache re-decode. Header-only; bench
// binaries include it directly.
#pragma once

#include <string>

#if defined(__unix__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ups::bench {

// Returns false where the advice is unavailable (non-unix, or the fadvise
// call is refused); cold lanes then report SKIPPED instead of measuring a
// warm drain under a cold label.
[[nodiscard]] inline bool drop_page_cache(const std::string& path) {
#if defined(__unix__) && defined(POSIX_FADV_DONTNEED)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  ::fsync(fd);
  const bool ok = ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return false;
#endif
}

}  // namespace ups::bench
