// Ablation (§5 open question): how much header information does
// universality need?
//
// Appendix B's omniscient initialization carries exact per-hop schedule
// times. This bench quantizes those times to coarser grains (fewer header
// bits of timing precision) and measures how replay quality degrades,
// against the LSTF black-box baseline that needs only o(p).
//
// Usage: bench_ablation_header_bits [--packets=N] [--seed=N] [--scale=F]
#include <cmath>
#include <cstdio>
#include <iostream>

#include "exp/args.h"
#include "exp/replay_experiment.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace ups;
  const auto a = exp::args::parse(argc, argv);

  exp::scenario sc;
  sc.seed = a.seed;
  sc.packet_budget = a.budget(60'000);
  sc.record_hops = true;

  std::printf("Header-precision ablation on %s (%llu packets)\n\n",
              sc.label().c_str(),
              static_cast<unsigned long long>(sc.packet_budget));
  const auto orig = exp::run_original(sc);
  const double horizon_s =
      sim::to_seconds(orig.trace.packets.back().egress_time);

  stats::table t({"per-hop header precision", "~bits/hop", "Frac overdue",
                  "Frac overdue > T"});
  auto add_row = [&](const char* label, sim::time_ps quantum) {
    core::replay_options opt;
    opt.mode = core::replay_mode::omniscient;
    opt.threshold_T = orig.threshold_T;
    opt.keep_outcomes = false;
    opt.omniscient_quantum = quantum;
    const auto& topology = orig.topology;
    const auto res = core::replay_trace(
        orig.trace,
        [&topology](net::network& n) { topo::populate(topology, n); }, opt);
    const double levels =
        quantum == 0 ? 64.0
                     : std::log2(horizon_s * 1e12 /
                                 static_cast<double>(quantum));
    t.add_row({label, stats::table::fmt(levels, 1),
               stats::table::fmt_frac(res.frac_overdue()),
               stats::table::fmt_frac(res.frac_overdue_beyond_T())});
    std::printf(".");
    std::fflush(stdout);
  };

  add_row("exact (Appendix B)", 0);
  add_row("1 ns", sim::kNanosecond);
  add_row("1 us", sim::kMicrosecond);
  add_row("12 us (= T)", 12 * sim::kMicrosecond);
  add_row("100 us", 100 * sim::kMicrosecond);
  add_row("1 ms", sim::kMillisecond);
  add_row("10 ms", 10 * sim::kMillisecond);

  // Black-box baseline for comparison: one value (o(p)) per packet total.
  {
    const auto res = exp::run_replay(orig, core::replay_mode::lstf);
    t.add_row({"LSTF black-box (o(p) only)", "-",
               stats::table::fmt_frac(res.frac_overdue()),
               stats::table::fmt_frac(res.frac_overdue_beyond_T())});
  }
  std::printf("\n\n");
  t.print(std::cout);
  std::printf(
      "\nExact per-hop times replay perfectly (Appendix B); the open\n"
      "question of §5 is how little precision suffices. Quantization up to\n"
      "the T-scale should stay near-perfect (slack absorbs sub-T skew),\n"
      "degrading once the grain exceeds typical queueing delays.\n");
  return 0;
}
