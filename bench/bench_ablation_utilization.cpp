// Ablation (§2.3(2)): replayability vs network utilization.
//
// A finer-grained sweep than Table 1's 10/30/50/70/90%: shows the
// non-monotone "low point" the paper describes — replayability worsens,
// then improves as higher utilization creates more slack to re-adjust.
//
// Usage: bench_ablation_utilization [--packets=N] [--seed=N] [--scale=F]
//                                   [--workload=W]
//
// --workload sweeps utilization under a different traffic source (paced,
// closed-loop[:n], closed-loop-tcp[:n], incast[:degree]) — the sweep the
// open-loop burst model could not make meaningful on WAN topologies.
#include <cstdio>
#include <iostream>

#include "exp/args.h"
#include "exp/replay_experiment.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace ups;
  const auto a = exp::args::parse(argc, argv);
  const std::uint64_t budget = a.budget(80'000);

  exp::scenario probe;
  exp::apply_overrides(a, probe);
  std::printf("Utilization sweep: LSTF replay of Random on I2 "
              "(%llu packets per point, %s workload)\n\n",
              static_cast<unsigned long long>(budget),
              traffic::to_string(probe.workload_kind));
  stats::table t({"Utilization", "Frac overdue", "Frac overdue > T",
                  "mean lateness of overdue (us)"});
  for (const double u : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    exp::scenario sc;
    sc.packet_budget = budget;
    exp::apply_overrides(a, sc);
    sc.utilization = u;  // the sweep variable wins over --utilization
    const auto orig = exp::run_original(sc);
    const auto res =
        exp::run_replay(orig, core::replay_mode::lstf, /*keep_outcomes=*/true);
    double late_sum = 0;
    std::uint64_t late_n = 0;
    for (const auto& o : res.outcomes) {
      if (o.lateness() > 0) {
        late_sum += sim::to_micros(o.lateness());
        ++late_n;
      }
    }
    t.add_row({stats::table::fmt_pct(u, 0),
               stats::table::fmt_frac(res.frac_overdue()),
               stats::table::fmt_frac(res.frac_overdue_beyond_T()),
               late_n == 0 ? "-" : stats::table::fmt(late_sum / late_n, 1)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n");
  t.print(std::cout);
  std::printf("\nPaper: 10%% -> 0.0007, 30%% -> 0.0281, 50%% -> 0.0221,"
              " 70%% -> 0.0021, 90%% -> 0.0008\n(expect degradation then"
              " improvement; the exact low point varies per setting).\n");
  return 0;
}
