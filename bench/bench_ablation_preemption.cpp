// Ablation (§2.3(5)): preemption rescues the hard-to-replay schedules.
//
// The paper: with preemption, SJF's overdue fraction drops from 18.33% to
// 0.24% and LIFO's from 14.77% to 0.25%. This bench replays SJF, LIFO and
// Random originals with non-preemptive and preemptive LSTF side by side.
//
// Usage: bench_ablation_preemption [--packets=N] [--seed=N] [--scale=F]
#include <cstdio>
#include <iostream>

#include "exp/args.h"
#include "exp/replay_experiment.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace ups;
  const auto a = exp::args::parse(argc, argv);
  const std::uint64_t budget = a.budget(100'000);

  std::printf("Ablation: non-preemptive vs preemptive LSTF replay "
              "(I2 @70%%, %llu packets)\n\n",
              static_cast<unsigned long long>(budget));

  stats::table t({"Original", "overdue (non-preempt)", "overdue (preempt)",
                  ">T (non-preempt)", ">T (preempt)"});
  for (const auto kind : {core::sched_kind::sjf, core::sched_kind::lifo,
                          core::sched_kind::random}) {
    exp::scenario sc;
    sc.sched = kind;
    sc.seed = a.seed;
    sc.packet_budget = budget;
    const auto orig = exp::run_original(sc);
    const auto np = exp::run_replay(orig, core::replay_mode::lstf);
    const auto pe = exp::run_replay(orig, core::replay_mode::lstf_preemptive);
    t.add_row({core::to_string(kind), stats::table::fmt_frac(np.frac_overdue()),
               stats::table::fmt_frac(pe.frac_overdue()),
               stats::table::fmt_frac(np.frac_overdue_beyond_T()),
               stats::table::fmt_frac(pe.frac_overdue_beyond_T())});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n");
  t.print(std::cout);
  std::printf("\nPaper: SJF 18.33%% -> 0.24%%, LIFO 14.77%% -> 0.25%% with"
              " preemption\n(expect a large drop for the skewed-slack"
              " schedules, small change for Random).\n");
  return 0;
}
