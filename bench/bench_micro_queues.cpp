// Micro-benchmarks (§5 "Real Implementation"): the paper argues LSTF
// execution at a router is no more complex than fine-grained priorities.
// These google-benchmark fixtures measure enqueue+dequeue cost of every
// queue discipline at several backlog depths, plus the event-queue itself.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/lstf.h"
#include "core/lstf_pheap.h"
#include "core/omniscient.h"
#include "sched/drr.h"
#include "sched/fifo.h"
#include "sched/fifo_plus.h"
#include "sched/fq.h"
#include "sched/lifo.h"
#include "sched/pfabric.h"
#include "sched/random_order.h"
#include "sched/sjf.h"
#include "sched/static_priority.h"
#include "sched/virtual_clock.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

using namespace ups;

net::packet_ptr make_packet(sim::rng& rng, std::uint64_t id) {
  auto p = std::make_unique<net::packet>();
  p->id = id;
  p->flow_id = rng.next_below(64);
  p->size_bytes = 1500;
  p->slack = static_cast<sim::time_ps>(rng.next_below(1'000'000'000));
  p->priority = static_cast<std::int64_t>(rng.next_below(1'000'000));
  p->flow_size_bytes = 1'460 * (1 + rng.next_below(1'000));
  p->remaining_flow_bytes = p->flow_size_bytes;
  p->fifo_plus_wait = static_cast<sim::time_ps>(rng.next_below(1'000'000));
  return p;
}

// Steady-state churn at a given backlog: one enqueue + one dequeue per
// iteration against a queue pre-filled to `depth`.
void churn(benchmark::State& state, net::scheduler& q) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  sim::rng rng(7);
  std::uint64_t id = 1;
  for (std::size_t i = 0; i < depth; ++i) {
    q.enqueue(make_packet(rng, id++), 0);
  }
  sim::time_ps now = 0;
  for (auto _ : state) {
    q.enqueue(make_packet(rng, id++), now);
    auto p = q.dequeue(now);
    benchmark::DoNotOptimize(p);
    now += 1000;
  }
  state.SetItemsProcessed(state.iterations());
}

void bm_fifo(benchmark::State& state) {
  sched::fifo q;
  churn(state, q);
}
void bm_lifo(benchmark::State& state) {
  sched::lifo q;
  churn(state, q);
}
void bm_random(benchmark::State& state) {
  sched::random_order q{sim::rng(3)};
  churn(state, q);
}
void bm_priority(benchmark::State& state) {
  sched::static_priority q;
  churn(state, q);
}
void bm_sjf(benchmark::State& state) {
  sched::sjf q;
  churn(state, q);
}
void bm_fifo_plus(benchmark::State& state) {
  sched::fifo_plus q;
  churn(state, q);
}
void bm_fq(benchmark::State& state) {
  sched::fq q(sim::kGbps);
  churn(state, q);
}
void bm_drr(benchmark::State& state) {
  sched::drr q;
  churn(state, q);
}
void bm_pfabric(benchmark::State& state) {
  sched::pfabric q(sched::pfabric_mode::srpt);
  churn(state, q);
}
void bm_lstf(benchmark::State& state) {
  core::lstf q(0, sim::kGbps);
  churn(state, q);
}
void bm_lstf_pheap(benchmark::State& state) {
  core::lstf_pheap q(0, sim::kGbps);
  churn(state, q);
}
void bm_virtual_clock(benchmark::State& state) {
  sched::virtual_clock q(sim::kGbps);
  churn(state, q);
}

// Event-queue throughput: schedule + run chained events.
void bm_event_queue(benchmark::State& state) {
  sim::simulator s;
  std::int64_t t = 1;
  for (auto _ : state) {
    s.schedule_at(t++, [] {});
    s.run_next();
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

// The §5 comparison: LSTF vs fine-grained priorities at equal backlogs,
// on both a balanced tree and the pipelined heap the paper cites.
BENCHMARK(bm_priority)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(bm_lstf)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(bm_lstf_pheap)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(bm_virtual_clock)->Arg(16)->Arg(256)->Arg(4096);
// Everything else for completeness.
BENCHMARK(bm_fifo)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(bm_lifo)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(bm_random)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(bm_sjf)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(bm_fifo_plus)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(bm_fq)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(bm_drr)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(bm_pfabric)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(bm_event_queue);

BENCHMARK_MAIN();
