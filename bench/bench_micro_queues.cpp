// Micro-benchmarks (§5 "Real Implementation"): the paper argues LSTF
// execution at a router is no more complex than fine-grained priorities.
// This bench measures the simulator's per-packet-hop hot path — packet
// create/stamp + enqueue + dequeue + destroy for every queue discipline,
// and schedule+run for the event kernel — under a global allocation
// counting hook, and emits machine-readable BENCH_micro_queues.json so
// future PRs have a perf trajectory to compare against.
//
// Before-vs-after knobs, measured side by side in the same binary:
//   packet_hop/<sched>/pooled : packet_pool recycling (this PR's hot path)
//   packet_hop/<sched>/heap   : fresh new/delete per packet (pre-refactor)
//   event_kernel/wheel        : hierarchical timing wheel over the slot
//                               slab (the production kernel)
//   event_kernel/heap         : the previous 4-ary flat-key heap over the
//                               same slab (sim/heap_kernel.h, frozen)
//   event_kernel/legacy       : priority_queue<std::function> + lazy-cancel
//                               set (reimplementation of the pre-slab
//                               kernel, kept here as the fixed baseline)
//
// The event-kernel lane sweeps pending-set depths 1e2..1e6: the heap's
// O(log n) schedule/pop grows with depth while the wheel's bucketed time
// stays flat. CI gates the wheel >= --min-kernel-speedup x the heap at the
// first depth >= 1e4 (the acceptance bar); deeper depths go DRAM-bound and
// noisy, so they carry a fixed 1.1x regression backstop instead.
//
// The process exits non-zero if any pooled rank-scheduler hop or the wheel
// kernel performs a steady-state heap allocation, if the pooled LSTF
// hot path fails the >=2x packets/sec acceptance bar over the heap-packet
// baseline, or if the wheel misses its depth-gated speedup bar — so CI
// catches hot-path regressions, not just correctness.
//
// Usage: bench_micro_queues [--ops=N] [--depth=N] [--out=FILE]
//                           [--min-speedup=X] [--min-kernel-speedup=X]
//                           [--baseline=FILE]
// --min-speedup lowers the speedup gate (default 2.0): CI on shared
// runners passes a noise margin so unrelated PRs don't flake, while the
// local default enforces the full acceptance bar. --baseline points at a
// committed BENCH_micro_queues.json (bench/baselines/) and prints speedup
// vs its rows, so the perf trajectory is visible in-repo, not only in CI
// artifacts.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/lstf.h"
#include "core/lstf_pheap.h"
#include "net/packet_pool.h"
#include "sim/heap_kernel.h"
#include "sched/drr.h"
#include "sched/fifo.h"
#include "sched/fifo_plus.h"
#include "sched/fq.h"
#include "sched/lifo.h"
#include "sched/pfabric.h"
#include "sched/random_order.h"
#include "sched/sjf.h"
#include "sched/static_priority.h"
#include "sched/virtual_clock.h"
#include "sim/rng.h"
#include "sim/simulator.h"

// ---------------------------------------------------------------------------
// Global allocation counting hook: every operator new in this binary bumps
// the counter, so a steady-state measurement window can assert "zero heap
// allocations per op" rather than guess from throughput numbers.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align = static_cast<std::size_t>(a);
  if (void* p = std::aligned_alloc(align, (n + align - 1) & ~(align - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept {
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

namespace {

using namespace ups;

struct result_row {
  std::string name;
  std::size_t depth = 0;
  std::uint64_t ops = 0;
  double ns_per_op = 0.0;
  double ops_per_sec = 0.0;
  double allocs_per_op = 0.0;
};

// Header fields every discipline keys on, pre-generated outside the timed
// loop so the measurement is the packet lifecycle and queue work, not the
// random number generator.
struct stamp_vals {
  std::uint64_t flow_id;
  sim::time_ps slack;
  std::int64_t priority;
  std::uint64_t flow_size;
  sim::time_ps fifo_plus_wait;
};

std::vector<stamp_vals> make_stamp_ring(std::size_t n) {
  sim::rng rng(7);
  std::vector<stamp_vals> ring(n);
  for (auto& s : ring) {
    s.flow_id = rng.next_below(64);
    s.slack = static_cast<sim::time_ps>(rng.next_below(1'000'000'000));
    s.priority = static_cast<std::int64_t>(rng.next_below(1'000'000));
    s.flow_size = 1'460 * (1 + rng.next_below(1'000));
    s.fifo_plus_wait = static_cast<sim::time_ps>(rng.next_below(1'000'000));
  }
  return ring;
}

// One packet-hop: create + stamp (header fields and the routed path, as the
// traffic sources do) + enqueue + dequeue + destroy, against a queue
// pre-filled to `depth`.
result_row bench_packet_hop(const std::string& name, net::scheduler& q,
                            std::size_t depth, std::uint64_t ops,
                            bool pooled) {
  net::packet_pool pool;
  static const std::vector<stamp_vals> ring = make_stamp_ring(1024);
  static const std::vector<net::node_id> route = {4, 9, 17, 3, 12};
  std::uint64_t id = 1;
  auto make = [&]() {
    net::packet_ptr p = pooled ? pool.make() : net::make_packet();
    const stamp_vals& s = ring[id & 1023];
    p->id = id++;
    p->flow_id = s.flow_id;
    p->size_bytes = 1500;
    p->slack = s.slack;
    p->priority = s.priority;
    p->flow_size_bytes = s.flow_size;
    p->remaining_flow_bytes = s.flow_size;
    p->fifo_plus_wait = s.fifo_plus_wait;
    // Route stamping: a pooled packet's path vector kept its capacity, a
    // fresh heap packet pays the vector's first allocation (the
    // pre-refactor per-packet cost).
    p->path = route;
    return p;
  };
  for (std::size_t i = 0; i < depth; ++i) q.enqueue(make(), 0);

  sim::time_ps now = 0;
  // Warmup: let the pool, the queue's backing storage, and every per-flow
  // table reach their steady-state footprint (scales with depth so deep
  // backlogs fully populate their freelists before measurement).
  for (std::uint64_t i = 0; i < ops / 10 + 4 * depth + 1024; ++i) {
    q.enqueue(make(), now);
    net::packet_ptr p = q.dequeue(now);
    now += 1000;
  }

  const std::uint64_t allocs_before = g_allocs.load();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    q.enqueue(make(), now);
    net::packet_ptr p = q.dequeue(now);
    now += 1000;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs_after = g_allocs.load();

  while (auto p = q.dequeue(now)) {  // drain so the pool outlives its packets
  }

  result_row r;
  r.name = "packet_hop/" + name + (pooled ? "/pooled" : "/heap");
  r.depth = depth;
  r.ops = ops;
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  r.ns_per_op = ns / static_cast<double>(ops);
  r.ops_per_sec = 1e9 / r.ns_per_op;
  r.allocs_per_op = static_cast<double>(allocs_after - allocs_before) /
                    static_cast<double>(ops);
  return r;
}

// Reimplementation of the pre-refactor LSTF scheduler — virtual rank
// dispatch over a node-based std::map keyed queue — kept as the fixed
// "before" baseline the >=2x packets/sec acceptance bar measures against.
// Paired with the /heap packet knob it reproduces the seed's full
// per-packet-hop cost: one packet allocation plus one map node per enqueue
// plus a virtual call per rank computation.
class legacy_map_lstf : public net::scheduler {
 public:
  explicit legacy_map_lstf(sim::bits_per_sec rate) : rate_(rate) {}

  void enqueue(net::packet_ptr p, sim::time_ps now) override {
    const std::int64_t key = rank_of(*p, now);
    p->sched_key = key;
    bytes_ += p->size_bytes;
    items_.emplace(std::make_pair(key, next_uid_++), std::move(p));
  }
  net::packet_ptr dequeue(sim::time_ps /*now*/) override {
    if (items_.empty()) return nullptr;
    auto it = items_.begin();
    net::packet_ptr p = std::move(it->second);
    bytes_ -= p->size_bytes;
    items_.erase(it);
    return p;
  }
  [[nodiscard]] bool empty() const noexcept override {
    return items_.empty();
  }
  [[nodiscard]] std::size_t packets() const noexcept override {
    return items_.size();
  }
  [[nodiscard]] std::size_t bytes() const noexcept override { return bytes_; }

 protected:
  [[nodiscard]] virtual std::int64_t rank_of(const net::packet& p,
                                             sim::time_ps now) const {
    return now + p.slack + sim::transmission_time(p.size_bytes, rate_);
  }

 private:
  sim::bits_per_sec rate_;
  std::map<std::pair<std::int64_t, std::uint64_t>, net::packet_ptr> items_;
  std::uint64_t next_uid_ = 0;
  std::size_t bytes_ = 0;
};

// Reimplementation of the pre-refactor event kernel (priority_queue of
// std::function entries + lazy-cancellation id set), kept as the fixed
// "before" baseline for the events/sec trajectory.
class legacy_event_queue {
 public:
  std::uint64_t schedule_at(std::int64_t t, std::function<void()> cb) {
    const std::uint64_t eid = next_id_++;
    queue_.push(entry{t, eid, std::move(cb)});
    return eid;
  }
  bool run_next() {
    while (!queue_.empty()) {
      entry e = std::move(const_cast<entry&>(queue_.top()));
      queue_.pop();
      if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      now_ = e.at;
      e.cb();
      return true;
    }
    return false;
  }
  void cancel(std::uint64_t eid) { cancelled_.insert(eid); }
  [[nodiscard]] std::int64_t now() const noexcept { return now_; }

 private:
  struct entry {
    std::int64_t at;
    std::uint64_t id;
    std::function<void()> cb;
  };
  struct later {
    bool operator()(const entry& a, const entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };
  std::int64_t now_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<entry, std::vector<entry>, later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

// Event-kernel throughput at a standing population of `depth` pending
// events with a cancel+reschedule every 4th op — the shape port
// completions, service decisions and TCP retransmit timers produce.
template <typename Kernel, typename Schedule, typename Cancel, typename Run>
result_row bench_events(const std::string& name, Kernel& k, Schedule schedule,
                        Cancel cancel, Run run, std::size_t depth,
                        std::uint64_t ops) {
  std::int64_t t = 1;
  std::vector<decltype(schedule(k, t))> standing;
  standing.reserve(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    standing.push_back(schedule(k, t + static_cast<std::int64_t>(i)));
  }

  auto step = [&](std::uint64_t i) {
    const std::int64_t horizon = t + static_cast<std::int64_t>(depth);
    standing[i % depth] = schedule(k, horizon);
    if (i % 4 == 0) {
      auto& victim = standing[(i + depth / 2) % depth];
      cancel(k, victim);
      victim = schedule(k, horizon + 1);
    }
    run(k);
    ++t;
  };
  // Warmup scaled with depth: the slab, freelist, wheel buckets, and heap
  // backing arrays must reach their high-water mark before the counted
  // window opens (cancelled entries linger up to a full horizon pass
  // before they surface, so the slab's high-water needs several passes).
  for (std::uint64_t i = 0; i < ops / 10 + 4 * depth + 1024; ++i) step(i);

  const std::uint64_t allocs_before = g_allocs.load();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) step(i);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs_after = g_allocs.load();

  result_row r;
  r.name = "event_kernel/" + name;
  r.depth = depth;
  r.ops = ops;
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  r.ns_per_op = ns / static_cast<double>(ops);
  r.ops_per_sec = 1e9 / r.ns_per_op;
  r.allocs_per_op = static_cast<double>(allocs_after - allocs_before) /
                    static_cast<double>(ops);
  return r;
}

// Minimal row extractor for a committed BENCH_micro_queues.json (one result
// object per line, as write_json emits): returns (name, depth) -> ops/sec.
std::vector<result_row> read_baseline_rows(const std::string& path) {
  std::vector<result_row> rows;
  std::ifstream in(path);
  std::string line;
  auto num_after = [](const std::string& s, const char* key) -> double {
    const auto p = s.find(key);
    if (p == std::string::npos) return -1.0;
    return std::strtod(s.c_str() + p + std::strlen(key), nullptr);
  };
  while (std::getline(in, line)) {
    const auto np = line.find("\"name\": \"");
    if (np == std::string::npos) continue;
    const auto start = np + 9;
    const auto end = line.find('"', start);
    if (end == std::string::npos) continue;
    result_row r;
    r.name = line.substr(start, end - start);
    r.depth = static_cast<std::size_t>(num_after(line, "\"depth\": "));
    r.ops_per_sec = num_after(line, "\"ops_per_sec\": ");
    rows.push_back(std::move(r));
  }
  return rows;
}

void write_json(const std::vector<result_row>& rows, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"micro_queues\",\n  \"unit\": \"ns/op\",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"depth\": " << r.depth
        << ", \"ops\": " << r.ops << ", \"ns_per_op\": " << r.ns_per_op
        << ", \"ops_per_sec\": " << r.ops_per_sec
        << ", \"allocs_per_op\": " << r.allocs_per_op << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t ops = 200'000;
  // Shallowest first: ~16 packets is the realistic steady backlog at the
  // paper's 70% utilization; 256/4096 model congestion and incast.
  std::vector<std::size_t> depths = {16, 256, 4096};
  // Event-kernel lane sweeps deeper: the wheel's O(1) claim is about what
  // happens when the pending set no longer fits a heap's cache-friendly
  // prefix. 1e4+ is where the gate bites.
  std::vector<std::size_t> kernel_depths = {100, 1'000, 10'000, 100'000,
                                            1'000'000};
  std::string out_path = "BENCH_micro_queues.json";
  std::string baseline_path;
  double min_speedup = 2.0;
  double min_kernel_speedup = 1.5;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      ops = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--depth=", 8) == 0) {
      depths = {std::strtoull(argv[i] + 8, nullptr, 10)};
      kernel_depths = depths;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::strtod(argv[i] + 14, nullptr);
    } else if (std::strncmp(argv[i], "--min-kernel-speedup=", 21) == 0) {
      min_kernel_speedup = std::strtod(argv[i] + 21, nullptr);
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      std::fprintf(stderr,
                   "usage: bench_micro_queues [--ops=N] [--depth=N] "
                   "[--out=FILE] [--min-speedup=X] "
                   "[--min-kernel-speedup=X] [--baseline=FILE]\n");
      return 2;
    }
  }
  if (ops == 0 || depths.front() == 0) {
    std::fprintf(stderr, "bench_micro_queues: --ops and --depth must be >0\n");
    return 2;
  }

  std::vector<result_row> rows;
  // The disciplines engineered for the zero-allocation guarantee: pooled
  // packets over freelist-recycled queue storage. pfabric joined the gate
  // when its per-flow starvation index was flattened onto slab + freelist
  // storage; drr followed with the same pattern (qnode slab + intrusive
  // active-flow ring, flow entries persisting across quiet periods).
  const char* zero_alloc_names[] = {
      "fifo", "lifo",    "priority", "sjf",           "fifo_plus",
      "lstf", "fq",      "random",   "virtual_clock", "pfabric",
      "drr",
  };

  for (const std::size_t depth : depths) {
    auto run_sched = [&](const std::string& name, auto make_queue) {
      for (const bool pooled : {true, false}) {
        auto q = make_queue();
        rows.push_back(bench_packet_hop(name, *q, depth, ops, pooled));
      }
    };

    run_sched("fifo", [] { return std::make_unique<sched::fifo>(); });
    run_sched("lifo", [] { return std::make_unique<sched::lifo>(); });
    run_sched("priority",
              [] { return std::make_unique<sched::static_priority>(); });
    run_sched("sjf", [] { return std::make_unique<sched::sjf>(); });
    run_sched("fifo_plus",
              [] { return std::make_unique<sched::fifo_plus>(); });
    run_sched("random", [] {
      return std::make_unique<sched::random_order>(sim::rng(3));
    });
    run_sched("fq", [] { return std::make_unique<sched::fq>(sim::kGbps); });
    run_sched("drr", [] { return std::make_unique<sched::drr>(); });
    run_sched("virtual_clock", [] {
      return std::make_unique<sched::virtual_clock>(sim::kGbps);
    });
    run_sched("pfabric", [] {
      return std::make_unique<sched::pfabric>(sched::pfabric_mode::srpt);
    });
    run_sched("lstf",
              [] { return std::make_unique<core::lstf>(0, sim::kGbps); });
    run_sched("lstf_pheap", [] {
      return std::make_unique<core::lstf_pheap>(0, sim::kGbps);
    });
    {
      // Pre-refactor LSTF baseline: heap packets, per-node-allocating map
      // queue, virtual rank dispatch.
      legacy_map_lstf q(sim::kGbps);
      rows.push_back(
          bench_packet_hop("lstf_legacy", q, depth, ops, /*pooled=*/false));
    }

  }

  // --- event-kernel lane: wheel vs heap vs legacy, depths 1e2..1e6 ---------
  // The measured window must span at least two full upper-level cascade
  // periods (a level-2 bucket drains every 2^16 ticks): shorter windows
  // alias with the cascade phase and report arbitrary slices of the
  // amortized O(1) cost instead of its average.
  for (const std::size_t depth : kernel_depths) {
    const std::uint64_t kops = std::max<std::uint64_t>(ops, 2 * 65'536);
    {
      sim::simulator s;
      rows.push_back(bench_events(
          "wheel", s,
          [](sim::simulator& k, std::int64_t t) {
            return k.schedule_at(t, [] {});
          },
          [](sim::simulator& k, sim::simulator::handle h) { k.cancel(h); },
          [](sim::simulator& k) { k.run_next(); }, depth, kops));
    }
    {
      sim::heap_simulator s;
      rows.push_back(bench_events(
          "heap", s,
          [](sim::heap_simulator& k, std::int64_t t) {
            return k.schedule_at(t, [] {});
          },
          [](sim::heap_simulator& k, sim::heap_simulator::handle h) {
            k.cancel(h);
          },
          [](sim::heap_simulator& k) { k.run_next(); }, depth, kops));
    }
    if (depth <= 10'000) {  // the node-allocating legacy queue crawls deeper
      legacy_event_queue s;
      rows.push_back(bench_events(
          "legacy", s,
          [](legacy_event_queue& k, std::int64_t t) {
            return k.schedule_at(t, [] {});
          },
          [](legacy_event_queue& k, std::uint64_t h) { k.cancel(h); },
          [](legacy_event_queue& k) { k.run_next(); }, depth, kops));
    }
  }

  write_json(rows, out_path);

  // Optional committed baseline (bench/baselines/): print the trajectory —
  // current ops/sec over the recorded heap-kernel-era ops/sec. The wheel
  // lane compares against the recorded "event_kernel/slab" rows (the same
  // slab over the old 4-ary heap, this lane's previous name).
  std::vector<result_row> baseline;
  if (!baseline_path.empty()) {
    baseline = read_baseline_rows(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "warning: no baseline rows parsed from %s\n",
                   baseline_path.c_str());
    }
  }
  auto baseline_speedup = [&](const result_row& r) -> double {
    for (const auto& b : baseline) {
      if (b.depth == r.depth &&
          (b.name == r.name ||
           (r.name == "event_kernel/wheel" && b.name == "event_kernel/slab"))) {
        return r.ops_per_sec / b.ops_per_sec;
      }
    }
    return 0.0;
  };

  std::printf("%-38s %8s %10s %14s %12s %12s\n", "name", "depth", "ns/op",
              "ops/sec", "allocs/op", "vs baseline");
  for (const auto& r : rows) {
    std::printf("%-38s %8zu %10.1f %14.0f %12.4f", r.name.c_str(), r.depth,
                r.ns_per_op, r.ops_per_sec, r.allocs_per_op);
    if (const double s = baseline_speedup(r); s > 0.0) {
      std::printf(" %11.2fx\n", s);
    } else {
      std::printf(" %12s\n", "-");
    }
  }

  // --- acceptance gates ----------------------------------------------------
  auto find = [&](const std::string& name,
                  std::size_t depth) -> const result_row* {
    for (const auto& r : rows) {
      if (r.name == name && r.depth == depth) return &r;
    }
    return nullptr;
  };

  int failures = 0;
  for (const std::size_t depth : depths) {
    for (const char* n : zero_alloc_names) {
      const auto* r = find(std::string("packet_hop/") + n + "/pooled", depth);
      if (r == nullptr || r->allocs_per_op != 0.0) {
        std::fprintf(stderr,
                     "FAIL: %s at depth %zu performs %.4f steady-state "
                     "allocations per packet-hop (expected 0)\n",
                     n, depth, r ? r->allocs_per_op : -1.0);
        ++failures;
      }
    }
  }
  // Wheel zero-alloc gate at every kernel depth: slab slots, bucket arrays,
  // the ready run, and the overflow heap must all be at steady-state
  // capacity once warmed.
  for (const std::size_t depth : kernel_depths) {
    if (const auto* r = find("event_kernel/wheel", depth);
        r == nullptr || r->allocs_per_op != 0.0) {
      std::fprintf(stderr,
                   "FAIL: wheel event kernel at depth %zu allocates in "
                   "steady state (%.4f allocs/op)\n",
                   depth, r ? r->allocs_per_op : -1.0);
      ++failures;
    }
  }
  // Heap-vs-wheel bar: O(1) bucketed time must beat the O(log n) heap once
  // the pending set is deep. The full --min-kernel-speedup bar applies at
  // the 1e4 acceptance depth (measured 2.5-2.9x); at 1e5/1e6 both kernels
  // go DRAM-bound and the run-to-run ratio gets noisy (measured 1.3-2.0x),
  // so those depths carry a regression backstop rather than the headline
  // bar.
  bool headline_gated = false;
  for (const std::size_t depth : kernel_depths) {
    if (depth < 10'000) continue;
    const auto* wheel = find("event_kernel/wheel", depth);
    const auto* heap = find("event_kernel/heap", depth);
    if (wheel == nullptr || heap == nullptr) continue;
    const double bar = headline_gated ? 1.1 : min_kernel_speedup;
    headline_gated = true;
    const double speedup = wheel->ops_per_sec / heap->ops_per_sec;
    std::printf(
        "event kernel wheel vs heap (depth %zu): %.2fx events/sec "
        "(bar %.2fx)\n",
        depth, speedup, bar);
    if (speedup < bar) {
      std::fprintf(stderr,
                   "FAIL: wheel kernel %.2fx heap at depth %zu < %.2fx bar\n",
                   speedup, depth, bar);
      ++failures;
    }
  }
  // Speedup bar at the realistic operating depth.
  const std::size_t gate_depth = depths.front();
  const auto* pooled_lstf = find("packet_hop/lstf/pooled", gate_depth);
  const auto* legacy_lstf = find("packet_hop/lstf_legacy/heap", gate_depth);
  if (pooled_lstf != nullptr && legacy_lstf != nullptr) {
    const double speedup = pooled_lstf->ops_per_sec / legacy_lstf->ops_per_sec;
    std::printf(
        "\nLSTF pooled vs pre-refactor baseline (depth %zu): %.2fx "
        "packets/sec\n",
        gate_depth, speedup);
    if (speedup < min_speedup) {
      std::fprintf(stderr, "FAIL: pooled LSTF speedup %.2fx < %.2fx bar\n",
                   speedup, min_speedup);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("all zero-allocation and speedup gates passed\n");
  }
  return failures == 0 ? 0 : 1;
}
