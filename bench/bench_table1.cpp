// Table 1: LSTF replayability across scenarios.
//
// Reproduces every row of the paper's Table 1: the fraction of packets
// overdue in an LSTF replay, and the fraction overdue by more than T (one
// transmission time on the bottleneck link).
//
// Usage: bench_table1 [--packets=N] [--seed=N] [--scale=F] [--quick]
//                     [--workload=W] [--utilization=F]
//
// --workload reruns the whole table under a different traffic source
// (paced, closed-loop[:n], closed-loop-tcp[:n], incast[:degree]);
// --utilization forces every row to one utilization.
#include <cstdio>
#include <iostream>

#include "exp/args.h"
#include "exp/replay_experiment.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace ups;
  const auto a = exp::args::parse(argc, argv);
  const std::uint64_t budget = a.budget(120'000);

  struct row_spec {
    exp::topo_kind topo;
    double util;
    core::sched_kind sched;
  };
  const row_spec rows[] = {
      // Block 1: the default scenario.
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::random},
      // Block 2: utilization sweep.
      {exp::topo_kind::i2_default, 0.1, core::sched_kind::random},
      {exp::topo_kind::i2_default, 0.3, core::sched_kind::random},
      {exp::topo_kind::i2_default, 0.5, core::sched_kind::random},
      {exp::topo_kind::i2_default, 0.9, core::sched_kind::random},
      // Block 3: link-bandwidth variants.
      {exp::topo_kind::i2_1g_1g, 0.7, core::sched_kind::random},
      {exp::topo_kind::i2_10g_10g, 0.7, core::sched_kind::random},
      // Block 4: other topologies.
      {exp::topo_kind::rocketfuel, 0.7, core::sched_kind::random},
      {exp::topo_kind::fattree, 0.7, core::sched_kind::random},
      // Block 5: original scheduling algorithms.
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::fifo},
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::fq},
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::sjf},
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::lifo},
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::fq_fifo_plus_mix},
  };

  exp::scenario probe;
  exp::apply_overrides(a, probe);
  std::printf("Table 1: LSTF replayability (%llu packets per scenario, "
              "%s workload)\n\n",
              static_cast<unsigned long long>(budget),
              traffic::to_string(probe.workload_kind));
  stats::table t({"Topology", "Util", "Scheduling", "Frac overdue",
                  "Frac overdue > T", "packets"});
  for (const auto& r : rows) {
    exp::scenario sc;
    sc.topo = r.topo;
    sc.utilization = r.util;
    sc.sched = r.sched;
    sc.packet_budget = budget;
    exp::apply_overrides(a, sc);
    const auto res = exp::table1_row(sc);
    t.add_row({exp::to_string(r.topo),
               stats::table::fmt_pct(r.util, 0),
               core::to_string(r.sched),
               stats::table::fmt_frac(res.frac_overdue()),
               stats::table::fmt_frac(res.frac_overdue_beyond_T()),
               std::to_string(res.total)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n");
  t.print(std::cout);
  std::printf(
      "\nPaper's Table 1 (for shape comparison): default Random row was\n"
      "0.0021 / 0.0002; SJF and LIFO fare worst in total overdue but small\n"
      "beyond-T; utilization shows a 'low point' then improves.\n");
  return 0;
}
