// Figure 4: Jain fairness index over time for long-lived TCP flows on the
// Internet2 fairness topology: FIFO, FQ, and LSTF with virtual-clock slack
// at r_est in {1, 0.5, 0.1, 0.05, 0.01} Gbps.
//
// Usage: bench_fig4_fairness [--seed=N] [--quick]
#include <cstdio>
#include <vector>

#include "exp/args.h"
#include "exp/fairness_experiment.h"

int main(int argc, char** argv) {
  using namespace ups;
  const auto a = exp::args::parse(argc, argv);

  exp::fairness_config cfg;
  cfg.seed = a.seed;
  if (a.quick) {
    cfg.flows = 30;
    cfg.horizon = 10 * sim::kMillisecond;
  }

  std::printf("Figure 4: fairness for %d long-lived TCP flows "
              "(jittered starts over %.0f ms)\n\n",
              cfg.flows, sim::to_millis(cfg.start_jitter));

  std::vector<exp::fairness_result> results;
  results.push_back(exp::run_fairness(exp::fairness_variant::fifo, 0, cfg));
  std::printf(".");
  std::fflush(stdout);
  results.push_back(exp::run_fairness(exp::fairness_variant::fq, 0, cfg));
  std::printf(".");
  std::fflush(stdout);
  for (const auto rest :
       {sim::kGbps, sim::kGbps / 2, sim::kGbps / 10, sim::kGbps / 20,
        sim::kGbps / 100}) {
    results.push_back(
        exp::run_fairness(exp::fairness_variant::lstf, rest, cfg));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%8s", "t(ms)");
  for (const auto& r : results) {
    if (r.r_est > 0) {
      std::printf(" LSTF@%5.2fG", static_cast<double>(r.r_est) / 1e9);
    } else {
      std::printf(" %10s", r.label.c_str());
    }
  }
  std::printf("\n");
  for (std::size_t i = 0; i < results.front().time_ms.size(); ++i) {
    std::printf("%8.1f", results.front().time_ms[i]);
    for (const auto& r : results) std::printf(" %10.3f", r.jain[i]);
    std::printf("\n");
  }
  std::printf("\nPaper's Figure 4: LSTF converges to fairness ~1 for every"
              " r_est <= r* (1 Gbps here),\nconverging slightly sooner when"
              " r_est is closer to r*; FQ reaches 1 at ~5 ms.\n");

  // §3.3's weighted extension: per-flow r_est proportional to weights.
  std::printf("\nWeighted fairness (class 1 weight = 2x):\n");
  for (const double w : {1.0, 2.0, 4.0}) {
    const auto res = exp::run_weighted_fairness(w, sim::kGbps / 2, cfg);
    std::printf("  weight %.1f -> measured throughput ratio %.2f "
                "(class0 %.0f Mbps, class1 %.0f Mbps)\n",
                w, res.measured_ratio, res.class0_mbps, res.class1_mbps);
  }
  return 0;
}
