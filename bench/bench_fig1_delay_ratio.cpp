// Figure 1: CDF of the ratio of queueing delay (LSTF replay : original
// schedule) on the default Internet2 topology at 70% utilization, for six
// original scheduling algorithms.
//
// Usage: bench_fig1_delay_ratio [--packets=N] [--seed=N] [--scale=F]
#include <cstdio>

#include "exp/args.h"
#include "exp/replay_experiment.h"
#include "stats/summary.h"

int main(int argc, char** argv) {
  using namespace ups;
  const auto a = exp::args::parse(argc, argv);
  const std::uint64_t budget = a.budget(100'000);

  const core::sched_kind kinds[] = {
      core::sched_kind::random, core::sched_kind::fifo, core::sched_kind::fq,
      core::sched_kind::sjf,    core::sched_kind::lifo,
      core::sched_kind::fq_fifo_plus_mix,
  };

  std::vector<stats::sample_set> ratios(std::size(kinds));
  std::vector<double> excluded(std::size(kinds));
  for (std::size_t i = 0; i < std::size(kinds); ++i) {
    exp::scenario sc;
    sc.sched = kinds[i];
    sc.seed = a.seed;
    sc.packet_budget = budget;
    const auto orig = exp::run_original(sc);
    const auto res =
        exp::run_replay(orig, core::replay_mode::lstf, /*keep_outcomes=*/true);
    std::uint64_t zero_orig = 0;
    for (const auto& o : res.outcomes) {
      if (o.original_queueing > 0) {
        ratios[i].add(static_cast<double>(o.replay_queueing) /
                      static_cast<double>(o.original_queueing));
      } else {
        ++zero_orig;
      }
    }
    excluded[i] = static_cast<double>(zero_orig) /
                  static_cast<double>(res.outcomes.size());
    std::printf(".");
    std::fflush(stdout);
  }

  std::printf("\n\nFigure 1: CDF of queueing-delay ratio "
              "(LSTF replay : original), I2 @70%%\n\n");
  std::printf("%8s", "CDF");
  for (const auto k : kinds) std::printf("  %10s", core::to_string(k));
  std::printf("\n");
  for (const double q :
       {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    std::printf("%8.2f", q);
    for (std::size_t i = 0; i < std::size(kinds); ++i) {
      std::printf("  %10.3f", ratios[i].quantile(q));
    }
    std::printf("\n");
  }
  std::printf("\n%8s", "mean");
  for (std::size_t i = 0; i < std::size(kinds); ++i) {
    std::printf("  %10.3f", ratios[i].mean());
  }
  std::printf("\n%8s", "frac<1");
  for (std::size_t i = 0; i < std::size(kinds); ++i) {
    std::printf("  %10.3f", ratios[i].cdf_at(1.0));
  }
  std::printf("\n\n(packets with zero original queueing are excluded: ");
  for (std::size_t i = 0; i < std::size(kinds); ++i) {
    std::printf("%.1f%% ", excluded[i] * 100);
  }
  std::printf(")\n");
  std::printf("\nPaper's Figure 1: most packets see a SMALLER queueing delay"
              " in the LSTF replay\nthan in the original schedule — LSTF"
              " eliminates 'wasted waiting'.\n");
  return 0;
}
