// Figure 2: mean FCT bucketed by flow size on Internet2 at 70% utilization,
// TCP flows with 5 MB router buffers: FIFO vs SRPT vs SJF vs LSTF with
// slack = flow_size x D.
//
// Usage: bench_fig2_fct [--packets=N] [--seed=N] [--scale=F]
#include <cstdio>
#include <iostream>

#include "exp/args.h"
#include "exp/fct_experiment.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace ups;
  const auto a = exp::args::parse(argc, argv);

  exp::fct_config cfg;
  cfg.seed = a.seed;
  cfg.packet_budget = a.budget(60'000);

  std::printf("Figure 2: mean FCT by flow size (TCP, %s @%d%%, 5 MB "
              "buffers)\n\n",
              exp::to_string(cfg.topo),
              static_cast<int>(cfg.utilization * 100));

  std::vector<exp::fct_result> results;
  for (const auto v : {exp::fct_variant::fifo, exp::fct_variant::srpt,
                       exp::fct_variant::sjf, exp::fct_variant::lstf}) {
    results.push_back(exp::run_fct(v, cfg));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n");

  stats::table t({"flow size <= (B)", "flows", "FIFO", "SRPT", "SJF",
                  "LSTF"});
  const auto& edges = results.front().bucket_edges;
  for (std::size_t b = 0; b < edges.size(); ++b) {
    if (results.front().bucket_counts[b] == 0) continue;
    std::vector<std::string> row{std::to_string(edges[b]),
                                 std::to_string(results.front()
                                                    .bucket_counts[b])};
    for (const auto& r : results) {
      row.push_back(stats::table::fmt(r.bucket_mean_fct_s[b], 4));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::printf("\nOverall mean FCT:\n");
  for (const auto& r : results) {
    std::printf("  %-5s: %.3f s  (%llu flows, %llu drops)\n",
                r.label.c_str(), r.overall_mean_fct_s,
                static_cast<unsigned long long>(r.flows),
                static_cast<unsigned long long>(r.drops));
  }
  std::printf("\nPaper's Figure 2 legend: FIFO 0.288 s, SRPT 0.208 s, "
              "SJF 0.194 s, LSTF 0.195 s\n(expect the same ordering: "
              "SJF ~ LSTF <= SRPT << FIFO).\n");
  return 0;
}
