// Figure 3: complementary CDF of packet delays — LSTF with uniform initial
// slack (== FIFO+) against FIFO, UDP flows on Internet2 at 70%.
//
// Usage: bench_fig3_tail [--packets=N] [--seed=N] [--scale=F]
#include <cstdio>

#include "exp/args.h"
#include "exp/tail_experiment.h"

int main(int argc, char** argv) {
  using namespace ups;
  const auto a = exp::args::parse(argc, argv);

  exp::tail_config cfg;
  cfg.seed = a.seed;
  cfg.packet_budget = a.budget(150'000);

  std::printf("Figure 3: tail packet delays (UDP, %s @%d%%)\n\n",
              exp::to_string(cfg.topo),
              static_cast<int>(cfg.utilization * 100));

  const auto fifo = exp::run_tail(exp::tail_variant::fifo, cfg);
  std::printf(".");
  std::fflush(stdout);
  const auto lstf = exp::run_tail(exp::tail_variant::lstf_uniform_slack, cfg);
  std::printf(".\n\n");

  std::printf("%-10s %12s %12s\n", "", "FIFO", "LSTF(=FIFO+)");
  std::printf("%-10s %12.4f %12.4f\n", "mean (s)", fifo.mean_s, lstf.mean_s);
  std::printf("%-10s %12.4f %12.4f\n", "99%ile (s)", fifo.p99_s, lstf.p99_s);
  std::printf("%-10s %12.4f %12.4f\n", "99.9%ile", fifo.p999_s, lstf.p999_s);
  std::printf("%-10s %12.4f %12.4f\n", "max (s)", fifo.delay_s.max(),
              lstf.delay_s.max());

  std::printf("\nCCDF (fraction of packets with delay > x):\n");
  std::printf("%12s %12s %12s\n", "delay (s)", "FIFO", "LSTF");
  const double xmax = std::max(fifo.delay_s.max(), lstf.delay_s.max());
  for (int i = 1; i <= 12; ++i) {
    const double x = xmax * i / 12.0;
    std::printf("%12.4f %12.2e %12.2e\n", x, fifo.delay_s.ccdf_at(x),
                lstf.delay_s.ccdf_at(x));
  }
  std::printf("\nPaper's Figure 3: FIFO mean 0.0780 s / 99%%ile 0.2142 s vs"
              " LSTF mean 0.0786 s / 99%%ile 0.1958 s\n(expect: nearly equal"
              " means, LSTF trims the tail).\n");
  return 0;
}
