// Macro replay throughput: the second perf trajectory next to
// bench_micro_queues' per-hop numbers. Drives a full Table-1-style
// experiment end to end — record original schedules across scenarios/seeds,
// replay each with a 4-mode candidate-UPS sweep — twice: once on the
// dispatch fabric's serial backend (the reference) and once sharded
// (--dispatch, default thread:N), and emits BENCH_macro_replay.json with
// end-to-end packets/sec, the sharded speedup, per-mode overdue fractions,
// and a peak-residency proxy comparing streaming vs up-front injection on
// the largest scenario.
//
// A dispatch lane runs the same memory plan on the multi-process backend
// at worker counts {1, 2, 4} — each point gated byte-identical to the
// serial reference — and records the process-count speedup curve. With
// --kill-worker-after=K an extra process:2 pass injects a deterministic
// worker SIGKILL mid-range and gates that the recovered (reassigned or
// respawned) run still merges byte-identical, with the failure classified
// in the report.
//
// A disk-replay lane measures the binary trace formats against v1 text:
// the largest scenario's trace is written in all three formats (v1 text,
// v2 fixed-record binary, v3 delta-varint blocks), drained through every
// reader (ingestion packets/sec and MB/s — the number that bounds how
// large a workload the replay framework can evaluate), and replayed
// end-to-end from every file across every mode, serial and sharded (every
// sharded worker mmaps the same binary file read-only; the OS shares one
// physical copy). The v3 cursor additionally runs an allocation probe (a
// warmed block decode must run allocation-free — counted with a global
// operator-new hook, gated at zero) and a block-seek walk (every block
// visited out of order through the leading index with MADV_RANDOM advice;
// the fold must equal the sequential drain's).
//
// A WAN-bytes lane records an Internet2 trace with per-hop data and writes
// it in all three formats: bytes/packet per format is the compression
// trajectory, and v3 must come in at or under --max-v3-bytes-ratio
// (default 0.75) of v2 — the headline claim of the block format.
//
// A RocketFuel lane sweeps the mixed workload (incast epochs over a
// closed-loop background) across fan-in degree {8,16,32} x outstanding
// window {4,16,64} on the RocketFuel WAN topology — original record +
// LSTF replay throughput, overdue fractions, and residency per cell. With
// --rf-packets=N it additionally builds an N-packet v3 trace by tiling a
// recorded mixed base along the time axis (disjoint packet/flow ids per
// tile, O(1 block) writer memory), writes the identical trace as v2, and
// measures bytes, ingest, and end-to-end LSTF replay at a scale that only
// fits because of the disk formats (N=1e8 is the headline run).
//
// A workload lane sweeps the traffic-source kinds {open-loop, paced,
// closed-loop, incast} over the WAN scenario at 70% utilization, recording
// per-workload original-run and replay packets/sec plus the original run's
// in-flight residency (pool high-water mark), at the base budget and — for
// the gated kinds — at twice the budget. The steady-state story, measured:
// open-loop residency grows with the trace (heavy-tailed bursts pile into
// the 1 Gbps access tier and the WAN wire); paced emission stays strictly
// below that baseline but cannot beat the bandwidth×delay floor, because a
// WAN path's propagation delay rivals an elephant's serialization span, so
// a fully-paced flow is still almost entirely on the wire at once; the
// bounded-outstanding closed-loop source is what actually plateaus — its
// peak residency is flat in trace length (measured ~1.2k packets whether
// the trace is 30k or 120k) and sits far below the open-loop baseline.
//
// A loss-sweep lane re-records the WAN reference scenario under each
// per-link fault process (iid Bernoulli at two rates, bursty
// Gilbert-Elliott, adversarial jamming) and replays every lane with the
// 4-mode candidate sweep — the per-heuristic degradation curves under
// loss. The drop schedule is part of the recorded trace
// (replay-under-loss), so the lanes are byte-identity-gated across the
// serial, thread, and process backends, and the zero-loss lane must match
// the plain sweep's first scenario exactly (faults-off == faults-absent).
//
// A backpressure lane re-records the datacenter reference scenario under
// per-link flow control (two credit budgets and a PFC-style pause/resume
// threshold pair) and replays every lane with the 4-mode sweep — the
// per-heuristic HoL-degradation curves under backpressure. The fat tree
// is where this is physically honest: up-down routing has no cyclic
// channel dependencies, so credit flow control backpressures without
// wormhole deadlock (a bench-scale trace on the cyclic WAN genuinely
// wedges a credit cycle — the deadlock watchdog's own test owns that
// gadget). The stall schedule is part of the recorded trace and replay
// re-enacts it, so the lanes are byte-identity-gated across serial,
// thread, and process backends; the flow-off lane must match the plain
// sweep's fat-tree scenario exactly (flow-off == flow-absent); every
// governed lane must actually stall; and flow control is lossless by
// construction, so injected == delivered with zero drops on every
// lane x mode.
//
// Gates (process exits non-zero on violation):
//   identity      sharded results must be byte-identical to the serial run
//                 (counters, thresholds, and per-packet outcomes for every
//                 scenario × mode cell) — always on
//   process       every process-backend run — worker counts {1,2,4}, plus
//                 the --kill-worker-after fault pass and the disk-lane
//                 process:2 replay — must be byte-identical to serial, and
//                 the fault pass must actually record a classified worker
//                 failure — always on (unix); the process-count *speedup*
//                 bar (--min-process-speedup, default 1.2) is enforced only
//                 on machines with >= 2 hardware threads
//   steady-state  on the WAN 70% scenario: closed-loop peak residency at 2x
//                 budget must stay within --max-workload-plateau (default
//                 1.1x) of its 1x-budget peak (the plateau) AND below
//                 --max-workload-residency (default 0.5) × the open-loop
//                 baseline at 2x; paced peak residency must stay strictly
//                 below the open-loop baseline (0.97x directional bar)
//   speedup       sharded packets/sec >= --min-speedup × serial packets/sec;
//                 enforced only when the machine actually has >= 2 hardware
//                 threads and --threads >= 2 (a 1-core box cannot exhibit a
//                 wall-clock speedup; the gate reports SKIPPED instead of
//                 producing a meaningless failure)
//   loss sweep    every loss-sweep lane byte-identical across serial,
//                 thread, and process backends; the zero-loss lane
//                 byte-identical to the plain sweep; every lossy lane
//                 records > 0 drops; delivered + dropped == injected for
//                 every lane x mode — always on
//   backpressure  every backpressure lane byte-identical across serial,
//                 thread, and process backends; the flow-off lane
//                 byte-identical to the plain sweep's fat-tree scenario;
//                 every governed lane records > 0 stalls; and every
//                 lane x mode is lossless — delivered == injected with
//                 zero drops — always on
//   residency     streaming peak packet-pool residency on the largest
//                 scenario <= --max-residency × the up-front peak — the
//                 O(in-flight) vs O(trace) claim, measured, not assumed
//   disk identity replaying the v2 and v3 binaries must produce
//                 byte-identical results to the v1 text path for every
//                 replay mode, serial and sharded — always on
//   disk speedup  binary (mmap) replay ingestion >= --min-disk-speedup ×
//                 the text reader's packets/sec (default 3x) — always on:
//                 ingestion is single-threaded I/O work, measurable even on
//                 a 1-core box
//   v3 ingest     cold-cache (disk-lane) v3 ingestion >=
//                 --min-v3-ingest-ratio × the v2 cursor's cold packets/sec
//                 (default 1.0). Both files are evicted from page cache
//                 (fsync + POSIX_FADV_DONTNEED, bench/page_cache.h) before
//                 their drains, so the measurement is the regime the block
//                 format targets: bytes off storage dominate and the ~3x
//                 smaller v3 file must be the faster ingest path. SKIPs
//                 where eviction is unavailable, and where the
//                 post-eviction v2 read still runs at cache bandwidth
//                 (> 750 MB/s): there a cache below the page cache — a VM
//                 host caching the block device — served the bytes, and
//                 the storage-bound regime is not reachable on that box.
//   v3 warm       warm-cache v3 decode >= --min-v3-warm-ratio × the v2
//                 cursor's warm packets/sec (same run, same box — a
//                 machine-relative floor; 0 = report only). With
//                 --min-warm-baseline-ratio=X, warm v3 packets/sec must
//                 also stay >= X × the committed baseline's
//                 v3_warm_packets_per_sec anchor (SKIPs when the baseline
//                 lacks the anchor). Keeps the SWAR columnar decoder from
//                 silently regressing.
//   decode-ahead  the pipelined (decode_ahead) cursor must fold
//                 byte-identically to the synchronous drain — always on —
//                 and reach >= --min-ahead-ratio × the synchronous warm
//                 packets/sec (default 0.9; SKIPs on 1-core boxes, where
//                 there is no second core to decode on)
//   v3 bytes      WAN-trace v3 bytes/packet <= --max-v3-bytes-ratio × v2
//                 (default 0.75)
//   v3 allocs     a warmed v3 cursor decodes the whole file with zero
//                 heap allocations — always on
//   v3 seek       the out-of-order block-seek walk folds to the same
//                 checksum as the sequential drain — always on
//
//   baseline      with --baseline=FILE (a committed heap-kernel-era
//                 BENCH_macro_replay.json from bench/baselines/), serial
//                 packets/sec must stay >= --min-baseline-ratio x the
//                 recorded serial packets/sec — the in-repo perf-smoke
//                 trajectory for the timing-wheel event kernel. The ratio
//                 is deliberately loose (machines differ); it exists to
//                 catch a kernel swap that tanks end-to-end throughput,
//                 while the within-binary micro gates own the tight bars.
//
// Usage: bench_macro_replay [--packets=N] [--seed=N] [--scale=F] [--quick]
//                           [--threads=N] [--out=FILE] [--min-speedup=X]
//                           [--dispatch=serial|thread[:N]|process[:N]]
//                           [--kill-worker-after=K] [--min-process-speedup=X]
//                           [--max-residency=F] [--min-disk-speedup=X]
//                           [--max-workload-residency=F]
//                           [--max-workload-plateau=F]
//                           [--baseline=FILE] [--min-baseline-ratio=X]
//                           [--max-v3-bytes-ratio=X]
//                           [--min-v3-ingest-ratio=X] [--rf-packets=N]
//                           [--min-v3-warm-ratio=X]
//                           [--min-warm-baseline-ratio=X]
//                           [--min-ahead-ratio=X]

#include <algorithm>
#include <atomic>
#include <chrono>

#if defined(__unix__)
#include <fcntl.h>
#include <unistd.h>
#endif
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "exp/args.h"
#include "exp/dispatch/backend.h"
#include "exp/replay_experiment.h"
#include "net/fault.h"
#include "net/flow_control.h"
#include "net/trace_binary.h"
#include "net/trace_io.h"
#include "page_cache.h"

// Global operator-new hook for the v3 zero-allocation gate: counts every
// scalar/array heap allocation in the process. The count is only *read*
// around the probe's steady-state window, so the hook stays trivial (one
// relaxed fetch_add) and the rest of the bench is unaffected.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// noinline: when these bodies inline into callers GCC pairs the visible
// std::free with the library's operator new declaration and emits a
// spurious -Wmismatched-new-delete; out-of-line they pair as replaced
// global operators, which is what they are.
__attribute__((noinline)) void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept {
  ::operator delete(p);
}

namespace {

using namespace ups;

// Result identity compares everything deterministic: aggregate counters AND
// the per-packet outcome vectors (all passes run with keep_outcomes on), so
// a divergence that happens to preserve the overdue counts still fails the
// gate. Timings are the only fields excluded.
bool same_result(const core::replay_result& x, const core::replay_result& y) {
  if (x.total != y.total || x.overdue != y.overdue ||
      x.overdue_beyond_T != y.overdue_beyond_T || x.dropped != y.dropped ||
      x.threshold_T != y.threshold_T) {
    return false;
  }
  if (x.outcomes.size() != y.outcomes.size()) return false;
  for (std::size_t k = 0; k < x.outcomes.size(); ++k) {
    const auto& ox = x.outcomes[k];
    const auto& oy = y.outcomes[k];
    if (ox.id != oy.id || ox.original_out != oy.original_out ||
        ox.replay_out != oy.replay_out ||
        ox.original_queueing != oy.original_queueing ||
        ox.replay_queueing != oy.replay_queueing) {
      return false;
    }
  }
  return true;
}

bool identical(const std::vector<exp::shard_result>& a,
               const std::vector<exp::shard_result>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].trace_packets != b[i].trace_packets) return false;
    if (a[i].threshold_T != b[i].threshold_T) return false;
    if (a[i].replays.size() != b[i].replays.size()) return false;
    for (std::size_t m = 0; m < a[i].replays.size(); ++m) {
      if (!same_result(a[i].replays[m].result, b[i].replays[m].result)) {
        return false;
      }
    }
  }
  return true;
}

// Drains every record from a cursor — the pure ingestion cost of a trace
// format, with zero simulation work attached. The per-record fold (sum of
// a few fields) keeps the decode from being optimized away.
struct ingest_stats {
  std::uint64_t records = 0;
  std::uint64_t checksum = 0;
  double wall_seconds = 0;
};

ingest_stats drain(net::trace_cursor& cur) {
  ingest_stats s;
  std::vector<const net::packet_record*> run;
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    run.clear();
    if (cur.next_run(run) == 0) break;
    for (const net::packet_record* r : run) {
      ++s.records;
      s.checksum += r->id + static_cast<std::uint64_t>(r->ingress_time) +
                    r->path.size() + r->hop_departs.size();
    }
  }
  s.wall_seconds = exp::wall_seconds_since(t0);
  return s;
}

[[nodiscard]] std::uint64_t file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  return is ? static_cast<std::uint64_t>(is.tellg()) : 0;
}

using ups::bench::drop_page_cache;

// Pulls a numeric field out of a committed BENCH_macro_replay.json: the
// number after `"<key>": ` at/after the first occurrence of `anchor`
// (pass "" to search from the start). Returns 0 when absent/unparseable.
[[nodiscard]] double baseline_field(const std::string& path,
                                    const char* anchor, const char* key) {
  std::ifstream is(path);
  if (!is) return 0.0;
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  std::size_t from = 0;
  if (anchor[0] != '\0') {
    from = text.find(anchor);
    if (from == std::string::npos) return 0.0;
  }
  const std::string k = std::string("\"") + key + "\": ";
  const auto pp = text.find(k, from);
  if (pp == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + pp + k.size(), nullptr);
}

// The committed baseline's serial packets/sec: inside the "serial" object.
[[nodiscard]] double baseline_serial_pps(const std::string& path) {
  return baseline_field(path, "\"serial\"", "packets_per_sec");
}

// Streams `target` records into `writer` by tiling `base` (ingress-sorted)
// along the time axis: tile k shifts every timestamp by k periods (one
// period > the base's last ingress, so ingress order holds across the
// seam) and offsets packet/flow ids so every tile's id ranges are
// disjoint. One record is resident at a time; its vectors' capacities
// persist across iterations, so the loop itself is allocation-free after
// the first tile.
template <typename Writer>
std::uint64_t write_tiled(Writer& writer, const net::trace& base,
                          std::uint64_t target) {
  const auto& b = base.packets;
  const sim::time_ps last = b.back().ingress_time;
  const sim::time_ps gap =
      (last - b.front().ingress_time) /
          static_cast<sim::time_ps>(b.size()) +
      1;
  const sim::time_ps period = last + gap;
  std::uint64_t max_id = 0;
  std::uint64_t max_flow = 0;
  for (const auto& r : b) {
    max_id = std::max(max_id, r.id);
    max_flow = std::max(max_flow, r.flow_id);
  }
  std::uint64_t written = 0;
  net::packet_record rec;
  for (std::uint64_t k = 0; written < target; ++k) {
    const sim::time_ps shift = static_cast<sim::time_ps>(k) * period;
    for (const auto& r : b) {
      if (written == target) break;
      rec = r;
      rec.id += k * max_id;
      rec.flow_id += k * max_flow;
      rec.ingress_time += shift;
      rec.egress_time += shift;
      for (auto& d : rec.hop_departs) d += shift;
      writer.append(rec);
      ++written;
    }
  }
  writer.finish();
  return written;
}

}  // namespace

int main(int argc, char** argv) {
  const auto a = exp::args::parse(argc, argv);
  std::size_t threads = 4;
  std::string out_path = "BENCH_macro_replay.json";
  double min_speedup = 2.0;
  double min_process_speedup = 1.2;
  double max_residency = 0.5;
  double min_disk_speedup = 3.0;
  double max_workload_residency = 0.5;
  double max_workload_plateau = 1.1;
  std::string baseline_path;
  double min_baseline_ratio = 0.25;
  double max_v3_bytes_ratio = 0.75;
  double min_v3_ingest_ratio = 1.0;
  double min_v3_warm_ratio = 0.0;        // 0: report only, no gate
  double min_warm_baseline_ratio = 0.0;  // 0: report only, no gate
  double min_ahead_ratio = 0.9;
  std::uint64_t rf_packets = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::strtod(argv[i] + 14, nullptr);
    } else if (std::strncmp(argv[i], "--min-process-speedup=", 22) == 0) {
      min_process_speedup = std::strtod(argv[i] + 22, nullptr);
    } else if (std::strncmp(argv[i], "--max-residency=", 16) == 0) {
      max_residency = std::strtod(argv[i] + 16, nullptr);
    } else if (std::strncmp(argv[i], "--min-disk-speedup=", 19) == 0) {
      min_disk_speedup = std::strtod(argv[i] + 19, nullptr);
    } else if (std::strncmp(argv[i], "--max-workload-residency=", 25) == 0) {
      max_workload_residency = std::strtod(argv[i] + 25, nullptr);
    } else if (std::strncmp(argv[i], "--max-workload-plateau=", 23) == 0) {
      max_workload_plateau = std::strtod(argv[i] + 23, nullptr);
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--min-baseline-ratio=", 21) == 0) {
      min_baseline_ratio = std::strtod(argv[i] + 21, nullptr);
    } else if (std::strncmp(argv[i], "--max-v3-bytes-ratio=", 21) == 0) {
      max_v3_bytes_ratio = std::strtod(argv[i] + 21, nullptr);
    } else if (std::strncmp(argv[i], "--min-v3-ingest-ratio=", 22) == 0) {
      min_v3_ingest_ratio = std::strtod(argv[i] + 22, nullptr);
    } else if (std::strncmp(argv[i], "--min-v3-warm-ratio=", 20) == 0) {
      min_v3_warm_ratio = std::strtod(argv[i] + 20, nullptr);
    } else if (std::strncmp(argv[i], "--min-warm-baseline-ratio=", 26) == 0) {
      min_warm_baseline_ratio = std::strtod(argv[i] + 26, nullptr);
    } else if (std::strncmp(argv[i], "--min-ahead-ratio=", 18) == 0) {
      min_ahead_ratio = std::strtod(argv[i] + 18, nullptr);
    } else if (std::strncmp(argv[i], "--rf-packets=", 13) == 0) {
      rf_packets = std::strtoull(argv[i] + 13, nullptr, 10);
    }
  }
  if (threads == 0) threads = 4;
  const std::uint64_t budget = a.budget(60'000);
  const unsigned hw = std::thread::hardware_concurrency();

  // The 4-mode candidate sweep of every shard: the paper's main replayer,
  // its preemptive variant, and the two simpler headers of §2.3.
  const std::vector<core::replay_mode> modes = {
      core::replay_mode::lstf,
      core::replay_mode::lstf_preemptive,
      core::replay_mode::edf,
      core::replay_mode::priority_output_time,
  };

  // Table-1-flavored shard set spanning every fan-out axis: topology,
  // utilization, original scheduler, seed — and, since the traffic stack
  // became composable, the source kind (the identity gate then covers the
  // paced/closed-loop/incast generators too).
  struct task_spec {
    exp::topo_kind topo;
    double util;
    core::sched_kind sched;
    std::uint64_t seed_offset;
    const char* workload;  // parse_workload name; nullptr = open-loop
  };
  const task_spec specs[] = {
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::random, 0, nullptr},
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::random, 1, nullptr},
      {exp::topo_kind::i2_default, 0.5, core::sched_kind::random, 0, nullptr},
      {exp::topo_kind::i2_default, 0.9, core::sched_kind::fifo, 0, nullptr},
      {exp::topo_kind::i2_1g_1g, 0.7, core::sched_kind::random, 0, nullptr},
      {exp::topo_kind::fattree, 0.7, core::sched_kind::random, 0, nullptr},
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::random, 0, "paced"},
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::random, 0,
       "closed-loop"},
      {exp::topo_kind::fattree, 0.7, core::sched_kind::random, 0, "incast"},
  };
  std::vector<exp::shard_task> tasks;
  for (const auto& s : specs) {
    exp::shard_task t;
    t.sc.topo = s.topo;
    t.sc.utilization = s.util;
    t.sc.sched = s.sched;
    t.sc.seed = a.seed + s.seed_offset;
    t.sc.packet_budget = budget;
    if (s.workload != nullptr) {
      t.sc.workload_kind =
          traffic::parse_workload(s.workload, t.sc.workload_spec);
    }
    t.modes = modes;
    tasks.push_back(std::move(t));
  }

  std::printf("macro replay: %zu scenarios x %zu modes, %llu packets each, "
              "%zu threads (hw=%u)\n",
              tasks.size(), modes.size(),
              static_cast<unsigned long long>(budget), threads, hw);

  // keep_outcomes so the identity gate can compare per-packet results, not
  // just counters (outcome memory is ~40B per replayed packet, well within
  // bench budgets). Both passes go through the unified dispatch API: serial
  // is the reference backend, the sharded pass takes --dispatch (default
  // thread:threads).
  exp::shard_options mem_opt;
  mem_opt.keep_outcomes = true;
  const auto mem_plan = exp::dispatch::job_plan::from_tasks(tasks, mem_opt);
  const auto run_plan = [&](const exp::dispatch::backend_spec& spec) {
    auto rep = exp::dispatch::run(mem_plan, spec);
    rep.throw_if_failed();
    return rep;
  };
  exp::dispatch::backend_spec serial_spec;
  serial_spec.kind = exp::dispatch::backend_kind::serial;
  const auto t_serial = std::chrono::steady_clock::now();
  const auto serial_rep = run_plan(serial_spec);
  const double serial_wall = exp::wall_seconds_since(t_serial);
  const auto& serial = serial_rep.results;

  exp::dispatch::backend_spec sharded_spec;
  sharded_spec.kind = exp::dispatch::backend_kind::thread;
  sharded_spec.workers = threads;
  if (!a.dispatch.empty()) {
    sharded_spec = exp::dispatch::backend_spec::parse(a.dispatch);
  }
  const auto t_sharded = std::chrono::steady_clock::now();
  const auto sharded_rep = run_plan(sharded_spec);
  const double sharded_wall = exp::wall_seconds_since(t_sharded);
  const auto& sharded = sharded_rep.results;

  // Work unit for the throughput trajectory: one replayed packet (each
  // recorded packet is replayed once per mode).
  std::uint64_t replayed = 0;
  for (const auto& r : serial) {
    replayed += r.trace_packets * r.replays.size();
  }
  const double serial_pps = static_cast<double>(replayed) / serial_wall;
  const double sharded_pps = static_cast<double>(replayed) / sharded_wall;
  const double speedup = sharded_pps / serial_pps;

  // --- dispatch lane: the multi-process fabric on the same memory plan ------
  // Worker counts {1, 2, 4}, every point gated byte-identical to the serial
  // reference above; the walls give the process-count speedup curve. The
  // fork cost and result-codec round-trip are part of what is measured.
#if defined(__unix__) || defined(__APPLE__)
  const bool process_available = true;
#else
  const bool process_available = false;
#endif
  struct process_point {
    std::size_t workers = 0;
    double wall_seconds = 0;
    double speedup_vs_serial = 0;
    bool identical = true;
  };
  std::vector<process_point> process_curve;
  bool process_same = true;
  if (process_available) {
    for (const std::size_t nproc : {1u, 2u, 4u}) {
      exp::dispatch::backend_spec pspec;
      pspec.kind = exp::dispatch::backend_kind::process;
      pspec.workers = nproc;
      const auto t0 = std::chrono::steady_clock::now();
      const auto prep = run_plan(pspec);
      process_point pt;
      pt.workers = nproc;
      pt.wall_seconds = exp::wall_seconds_since(t0);
      pt.speedup_vs_serial = serial_wall / pt.wall_seconds;
      pt.identical = identical(serial, prep.results);
      process_same = process_same && pt.identical;
      process_curve.push_back(pt);
    }
  }
  // Fault-injection pass (--kill-worker-after=K): process:2 with the first
  // worker SIGKILLed after computing its K-th job but before reporting it.
  // The merged output must still be byte-identical, and the report must
  // show the classified failure — otherwise the injection never fired and
  // the recovery path went untested.
  bool fault_same = true;
  bool fault_fired = true;
  std::size_t fault_failures = 0;
  bool fault_respawned = false;
  if (process_available && a.kill_worker_after > 0) {
    exp::dispatch::backend_spec fspec;
    fspec.kind = exp::dispatch::backend_kind::process;
    fspec.workers = 2;
    fspec.kill_worker_after = a.kill_worker_after;
    const auto frep = run_plan(fspec);
    fault_same = identical(serial, frep.results);
    fault_fired = !frep.worker_failures.empty();
    fault_failures = frep.worker_failures.size();
    for (const auto& wf : frep.worker_failures) {
      fault_respawned = fault_respawned || wf.respawned;
    }
  }

  // --- loss-sweep lane: fault model x loss rate x replay heuristic ----------
  // The WAN reference scenario re-recorded under each per-link fault
  // process, replayed with every candidate mode. The drop schedule is part
  // of the recorded trace (replay-under-loss: replay re-enacts the original
  // run's drops rather than sampling a live fault process), so every
  // backend must reproduce the exact same counters and outcome vectors.
  // Lane 0 runs with the fault axis disabled and must be byte-identical to
  // the plain sweep's first scenario — the faults-off == faults-absent
  // gate.
  const char* const loss_axis[] = {
      "",                     // zero-loss reference
      "bernoulli:0.001",      // iid 0.1%
      "bernoulli:0.01",       // iid 1%
      "ge:0.0005,0.02,0.05",  // bursty ~1% avg, expected burst 20 decisions
      "jam:100,0.2",          // adversary jams 20% of every 100 us cycle
  };
  std::vector<exp::shard_task> loss_tasks;
  for (const char* f : loss_axis) {
    exp::shard_task t;
    t.sc.topo = exp::topo_kind::i2_default;
    t.sc.utilization = 0.7;
    t.sc.sched = core::sched_kind::random;
    t.sc.seed = a.seed;
    t.sc.packet_budget = budget;
    if (*f != '\0') t.sc.fault = net::fault_spec::parse(f);
    t.modes = modes;
    loss_tasks.push_back(std::move(t));
  }
  const auto loss_plan =
      exp::dispatch::job_plan::from_tasks(loss_tasks, mem_opt);
  const auto run_loss = [&](const exp::dispatch::backend_spec& spec) {
    auto rep = exp::dispatch::run(loss_plan, spec);
    rep.throw_if_failed();
    return std::move(rep.results);
  };
  const auto loss_serial = run_loss(serial_spec);
  bool loss_backends_same = identical(loss_serial, run_loss(sharded_spec));
  if (process_available) {
    for (const std::size_t nproc : {2u, 4u}) {
      exp::dispatch::backend_spec pspec;
      pspec.kind = exp::dispatch::backend_kind::process;
      pspec.workers = nproc;
      loss_backends_same =
          loss_backends_same && identical(loss_serial, run_loss(pspec));
    }
  }
  bool loss_zero_same =
      loss_serial[0].trace_packets == serial[0].trace_packets &&
      loss_serial[0].threshold_T == serial[0].threshold_T &&
      loss_serial[0].replays.size() == serial[0].replays.size();
  for (std::size_t m = 0; loss_zero_same && m < serial[0].replays.size();
       ++m) {
    loss_zero_same = same_result(loss_serial[0].replays[m].result,
                                 serial[0].replays[m].result);
  }
  // Every lossy lane must actually lose packets (a fault process that
  // never fires tests nothing), and replay must conserve them: delivered +
  // dropped == injected, for every lane and mode.
  bool loss_fired = true;
  bool loss_conserved = true;
  for (std::size_t i = 0; i < loss_serial.size(); ++i) {
    std::uint64_t lane_dropped = 0;
    for (const auto& rep : loss_serial[i].replays) {
      lane_dropped = rep.result.dropped;
      loss_conserved = loss_conserved &&
                       rep.result.total + rep.result.dropped ==
                           loss_serial[i].trace_packets;
    }
    if (i > 0 && lane_dropped == 0) loss_fired = false;
  }

  // --- backpressure lane: flow control x budget x replay heuristic ----------
  // The datacenter reference scenario re-recorded under per-link flow
  // control, replayed with every candidate mode. The stall schedule is
  // part of the recorded trace (replay re-enacts the original run's
  // stalls), and flow control itself draws no randomness, so every
  // backend must reproduce identical counters and outcome vectors.
  // Backpressure defers packets instead of dropping them: injected ==
  // delivered with zero drops is a hard invariant of every lane.
  const char* const flow_axis[] = {
      "",                   // ungoverned reference
      "credit:30000",       // 20-packet per-link credit budget
      "credit:15000",       // 10-packet budget — deeper backpressure
      "pause:30000,15000",  // PFC-style pause/resume thresholds
  };
  // The plain sweep's fat-tree open-loop scenario (specs[] index 5): the
  // flow-off lane must be byte-identical to it — flow-off == flow-absent.
  constexpr std::size_t kFlowReference = 5;
  std::vector<exp::shard_task> flow_tasks;
  for (const char* f : flow_axis) {
    exp::shard_task t;
    t.sc.topo = exp::topo_kind::fattree;
    t.sc.utilization = 0.7;
    t.sc.sched = core::sched_kind::random;
    t.sc.seed = a.seed;
    t.sc.packet_budget = budget;
    if (*f != '\0') t.sc.flow = net::flow_spec::parse(f);
    t.modes = modes;
    flow_tasks.push_back(std::move(t));
  }
  const auto flow_plan =
      exp::dispatch::job_plan::from_tasks(flow_tasks, mem_opt);
  const auto run_flow = [&](const exp::dispatch::backend_spec& spec) {
    auto rep = exp::dispatch::run(flow_plan, spec);
    rep.throw_if_failed();
    return std::move(rep.results);
  };
  const auto flow_serial = run_flow(serial_spec);
  bool flow_backends_same = identical(flow_serial, run_flow(sharded_spec));
  if (process_available) {
    for (const std::size_t nproc : {2u, 4u}) {
      exp::dispatch::backend_spec pspec;
      pspec.kind = exp::dispatch::backend_kind::process;
      pspec.workers = nproc;
      flow_backends_same =
          flow_backends_same && identical(flow_serial, run_flow(pspec));
    }
  }
  bool flow_zero_same =
      flow_serial[0].trace_packets == serial[kFlowReference].trace_packets &&
      flow_serial[0].threshold_T == serial[kFlowReference].threshold_T &&
      flow_serial[0].replays.size() ==
          serial[kFlowReference].replays.size();
  for (std::size_t m = 0;
       flow_zero_same && m < serial[kFlowReference].replays.size(); ++m) {
    flow_zero_same = same_result(flow_serial[0].replays[m].result,
                                 serial[kFlowReference].replays[m].result);
  }
  bool flow_lossless = true;
  for (const auto& lane : flow_serial) {
    for (const auto& rep : lane.replays) {
      flow_lossless = flow_lossless && rep.result.dropped == 0 &&
                      rep.result.total == lane.trace_packets;
    }
  }
  // Stall evidence, read off the recorded traces themselves: a budget so
  // loose it never parks a transmitter tests nothing. One serial original
  // per governed lane; the stalled-record counts and total stall time are
  // the lane's trajectory data.
  struct flow_lane_stalls {
    std::uint64_t stalled_records = 0;
    sim::time_ps stall_time = 0;
  };
  std::vector<flow_lane_stalls> flow_stalls(std::size(flow_axis));
  bool flow_fired = true;
  for (std::size_t i = 1; i < std::size(flow_axis); ++i) {
    const auto forig = exp::run_original(flow_tasks[i].sc);
    for (const auto& r : forig.trace.packets) {
      if (!r.stalled()) continue;
      ++flow_stalls[i].stalled_records;
      flow_stalls[i].stall_time += r.stall_time;
    }
    if (flow_stalls[i].stalled_records == 0) flow_fired = false;
  }

  // Residency proxy: replay the bench's largest trace once with up-front
  // injection and once streaming, and compare pool/event high-water marks.
  // Streaming keeps O(in-flight) packets resident, so the comparison runs
  // where in-flight is genuinely small relative to the trace: the
  // datacenter fabric (microsecond propagation — WAN topologies keep a
  // bandwidth×delay product of thousands of packets on the wire no matter
  // how they are injected) with light fixed-size flows at moderate load
  // (the heavy-tailed open-loop elephants of the sweep above park most of
  // a short trace in one egress queue by construction).
  exp::scenario big_sc;
  big_sc.topo = exp::topo_kind::fattree;
  big_sc.utilization = 0.5;
  big_sc.sched = core::sched_kind::random;
  big_sc.seed = a.seed;
  big_sc.flows = exp::flow_dist_kind::fixed;
  big_sc.packet_budget = 2 * budget;  // the largest trace in this bench
  auto orig_big = exp::run_original(big_sc);  // sorted by the disk lane below
  core::replay_options ropt;
  ropt.mode = core::replay_mode::lstf;
  ropt.threshold_T = orig_big.threshold_T;
  ropt.keep_outcomes = false;
  const auto& topology = orig_big.topology;
  const auto builder = [&topology](net::network& n) {
    topo::populate(topology, n);
  };
  ropt.injection = core::injection_mode::upfront;
  const auto res_upfront = core::replay_trace(orig_big.trace, builder, ropt);
  ropt.injection = core::injection_mode::streaming;
  const auto res_stream = core::replay_trace(orig_big.trace, builder, ropt);
  const double residency_ratio =
      static_cast<double>(res_stream.peak_pool_packets) /
      static_cast<double>(res_upfront.peak_pool_packets);

  // --- workload lane: traffic-source kinds on the WAN scenario --------------
  // Same scenario (I2 at 70%, Random, heavy-tailed), four source kinds at
  // the base budget (perf-trajectory data), plus a 2x-budget original for
  // the three gated kinds so the plateau is measured, not assumed: a source
  // that reaches steady state has a residency curve that is flat in trace
  // length, not merely lower.
  struct workload_lane {
    const char* name;
    std::uint64_t trace_packets = 0;
    double original_wall = 0;
    double replay_wall = 0;
    std::uint64_t peak_pool = 0;
    std::uint64_t peak_pool_2x = 0;  // 0: not measured for this kind
    std::uint64_t flows_completed = 0;
    double frac_overdue = 0;
    double frac_overdue_beyond_T = 0;
  };
  const auto wan_scenario = [&](const char* wname, std::uint64_t pkts) {
    exp::scenario wsc;
    wsc.topo = exp::topo_kind::i2_default;
    wsc.utilization = 0.7;
    wsc.sched = core::sched_kind::random;
    wsc.seed = a.seed;
    wsc.packet_budget = pkts;
    wsc.workload_kind = traffic::parse_workload(wname, wsc.workload_spec);
    return wsc;
  };
  std::vector<workload_lane> lanes;
  for (const char* wname : {"open-loop", "paced", "closed-loop", "incast"}) {
    workload_lane l;
    l.name = wname;
    const auto t_orig = std::chrono::steady_clock::now();
    const auto worig = exp::run_original(wan_scenario(wname, budget));
    l.original_wall = exp::wall_seconds_since(t_orig);
    l.trace_packets = worig.trace.packets.size();
    l.peak_pool = worig.peak_pool_packets;
    l.flows_completed = worig.flows_completed;
    const auto t_rep = std::chrono::steady_clock::now();
    const auto wrep =
        exp::run_replay(worig, core::replay_mode::lstf, /*keep_outcomes=*/false);
    l.replay_wall = exp::wall_seconds_since(t_rep);
    l.frac_overdue = wrep.frac_overdue();
    l.frac_overdue_beyond_T = wrep.frac_overdue_beyond_T();
    if (std::strcmp(wname, "incast") != 0) {
      l.peak_pool_2x =
          exp::run_original(wan_scenario(wname, 2 * budget)).peak_pool_packets;
    }
    lanes.push_back(l);
  }
  const std::uint64_t open_loop_peak_2x = lanes[0].peak_pool_2x;

  // --- disk-replay lane: v1 text vs v2 binary -------------------------------
  // Same workload trace written in both formats; sorted once at "record
  // time" so the text file streams (the v2 file carries its own ingress
  // index and would not need it).
  net::sort_by_ingress(orig_big.trace);
  const std::string v1_path = "bench_macro_disk.v1.trace";
  const std::string v2_path = "bench_macro_disk.v2.trace";
  const std::string v3_path = "bench_macro_disk.v3.trace";
  net::save_trace(v1_path, orig_big.trace);
  net::save_trace_v2(v2_path, orig_big.trace);
  net::save_trace_v3(v3_path, orig_big.trace);
  const std::uint64_t v1_bytes = file_bytes(v1_path);
  const std::uint64_t v2_bytes = file_bytes(v2_path);
  const std::uint64_t v3_bytes = file_bytes(v3_path);

  // Ingestion: drain each reader with no simulation attached — the cost the
  // format itself imposes on replay, and the disk-speedup gate's metric
  // (parse throughput is deterministic single-threaded work; end-to-end
  // replay adds identical simulation cost to every lane and dilutes the
  // format difference).
  ingest_stats text_ingest, bin_ingest, v3_ingest, v3_ahead;
  {
    net::trace_stream_reader reader(v1_path);
    text_ingest = drain(reader);
    net::trace_mmap_cursor cursor(v2_path);
    bin_ingest = drain(cursor);
    net::trace_v3_cursor v3cur(v3_path);
    v3_ingest = drain(v3cur);
    // Decode-ahead pass over the same warm file: the pipelined cursor
    // (background decoder thread + SPSC conveyor) must fold identically to
    // the synchronous drain — gated below — and its throughput is the
    // overlap measurement (meaningful only with >= 2 cores).
    net::trace_v3_cursor v3pipe(v3_path, net::trace_access::decode_ahead);
    v3_ahead = drain(v3pipe);
  }
  const bool v3_ahead_same = v3_ahead.checksum == v3_ingest.checksum &&
                             v3_ahead.records == v3_ingest.records;
  if (text_ingest.checksum != bin_ingest.checksum ||
      text_ingest.records != bin_ingest.records ||
      text_ingest.checksum != v3_ingest.checksum ||
      text_ingest.records != v3_ingest.records) {
    std::fprintf(stderr, "FAIL: text/v2/v3 readers disagree on the same "
                         "trace's contents\n");
    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
    std::remove(v3_path.c_str());
    return 1;
  }
  const double text_ingest_pps =
      static_cast<double>(text_ingest.records) / text_ingest.wall_seconds;
  const double bin_ingest_pps =
      static_cast<double>(bin_ingest.records) / bin_ingest.wall_seconds;
  const double v3_ingest_pps =
      static_cast<double>(v3_ingest.records) / v3_ingest.wall_seconds;
  const double disk_speedup = bin_ingest_pps / text_ingest_pps;
  const double v3_ingest_ratio = v3_ingest_pps / bin_ingest_pps;
  const double v3_ahead_pps =
      static_cast<double>(v3_ahead.records) / v3_ahead.wall_seconds;
  const double v3_ahead_ratio = v3_ahead_pps / v3_ingest_pps;

  // Cold-cache (disk-lane) ingest is measured on the RocketFuel tiled
  // lane below: its files are large enough (tens of MB up to GBs) that an
  // evicted open+drain actually measures storage, whereas this lane's
  // sub-MB files re-warm during the cursor open's readahead.

  // Allocation probe: after one warming pass (the SoA scratch and record
  // slots reach their high-water capacities), a full re-decode of the file
  // must perform zero heap allocations — the v3 cursor's steady-state
  // contract, counted by the global operator-new hook.
  std::uint64_t v3_steady_allocs = 0;
  {
    net::trace_v3_cursor cur(v3_path);
    std::vector<const net::packet_record*> run;
    const auto drain_once = [&run](net::trace_v3_cursor& c) {
      std::uint64_t fold = 0;
      for (;;) {
        run.clear();
        if (c.next_run(run) == 0) break;
        for (const net::packet_record* r : run) fold += r->id;
      }
      return fold;
    };
    const auto warm_fold = drain_once(cur);
    cur.seek_to_block(0);
    const auto before = g_heap_allocs.load(std::memory_order_relaxed);
    const auto steady_fold = drain_once(cur);
    v3_steady_allocs =
        g_heap_allocs.load(std::memory_order_relaxed) - before;
    if (warm_fold != steady_fold) {
      std::fprintf(stderr, "FAIL: v3 re-decode after seek diverged\n");
      return 1;
    }
  }

  // Block-seek walk: every block visited in reverse order through the
  // leading index (seek, decode to the block fence) with MADV_RANDOM
  // advice — the mid-file entry path sharded workers rely on, which must
  // fold to exactly the sequential drain's checksum.
  ingest_stats v3_seek;
  {
    net::trace_v3_cursor cur(v3_path, net::trace_access::random);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t b = cur.block_count(); b-- > 0;) {
      cur.seek_to_block(b);
      while (cur.current_block() == b) {
        const net::packet_record* r = cur.next();
        if (r == nullptr) break;
        ++v3_seek.records;
        v3_seek.checksum += r->id +
                            static_cast<std::uint64_t>(r->ingress_time) +
                            r->path.size() + r->hop_departs.size();
      }
    }
    v3_seek.wall_seconds = exp::wall_seconds_since(t0);
  }
  const bool v3_seek_same = v3_seek.checksum == v3_ingest.checksum &&
                            v3_seek.records == v3_ingest.records;

  // End-to-end disk replay across every mode: text serial, then each
  // binary format serial and thread-sharded, plus a process:2 pass over
  // the v3 file (each worker — thread or forked process — maps the same
  // file read-only; the kernel shares one physical copy). All six runs
  // must be byte-identical.
  exp::disk_shard_task disk_task;
  disk_task.topology = orig_big.topology;
  disk_task.threshold_T = orig_big.threshold_T;
  disk_task.modes = modes;
  exp::shard_options disk_opt;
  disk_opt.keep_outcomes = true;
  const auto run_disk = [&](const std::string& path,
                            const exp::dispatch::backend_spec& spec) {
    disk_task.trace_path = path;
    auto rep = exp::dispatch::run(
        exp::dispatch::job_plan::from_disk(disk_task, disk_opt), spec);
    rep.throw_if_failed();
    return std::move(rep.disk_replays);
  };
  exp::dispatch::backend_spec disk_serial_spec;
  disk_serial_spec.kind = exp::dispatch::backend_kind::serial;
  exp::dispatch::backend_spec disk_sharded_spec;
  disk_sharded_spec.kind = exp::dispatch::backend_kind::thread;
  disk_sharded_spec.workers = threads;
  exp::dispatch::backend_spec disk_process_spec;
  disk_process_spec.kind = exp::dispatch::backend_kind::process;
  disk_process_spec.workers = 2;

  const auto t_text = std::chrono::steady_clock::now();
  const auto disk_text = run_disk(v1_path, disk_serial_spec);
  const double text_replay_wall = exp::wall_seconds_since(t_text);
  const auto t_bin = std::chrono::steady_clock::now();
  const auto disk_bin = run_disk(v2_path, disk_serial_spec);
  const double bin_replay_wall = exp::wall_seconds_since(t_bin);
  const auto disk_bin_sharded = run_disk(v2_path, disk_sharded_spec);
  const auto t_v3 = std::chrono::steady_clock::now();
  const auto disk_v3 = run_disk(v3_path, disk_serial_spec);
  const double v3_replay_wall = exp::wall_seconds_since(t_v3);
  const auto disk_v3_sharded = run_disk(v3_path, disk_sharded_spec);
  const auto disk_v3_process =
      process_available ? run_disk(v3_path, disk_process_spec) : disk_v3;

  bool disk_same = disk_text.size() == disk_bin.size() &&
                   disk_text.size() == disk_bin_sharded.size() &&
                   disk_text.size() == disk_v3.size() &&
                   disk_text.size() == disk_v3_sharded.size() &&
                   disk_text.size() == disk_v3_process.size();
  for (std::size_t m = 0; disk_same && m < disk_text.size(); ++m) {
    disk_same = same_result(disk_text[m].result, disk_bin[m].result) &&
                same_result(disk_text[m].result, disk_bin_sharded[m].result) &&
                same_result(disk_text[m].result, disk_v3[m].result) &&
                same_result(disk_text[m].result, disk_v3_sharded[m].result) &&
                same_result(disk_text[m].result, disk_v3_process[m].result);
  }
  const std::uint64_t disk_replayed =
      orig_big.trace.packets.size() * modes.size();
  const double text_replay_pps =
      static_cast<double>(disk_replayed) / text_replay_wall;
  const double bin_replay_pps =
      static_cast<double>(disk_replayed) / bin_replay_wall;
  const double v3_replay_pps =
      static_cast<double>(disk_replayed) / v3_replay_wall;
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());

  // --- WAN-bytes lane: compression across the three formats -----------------
  // An Internet2 trace recorded *with* per-hop data (path + per-router
  // departure columns populated — the widest records the recorder emits,
  // and the representative WAN-archive shape). v3's delta-varint columns
  // must land at or under max_v3_bytes_ratio x the v2 fixed-width size.
  std::uint64_t wan_records = 0;
  std::uint64_t wan_v1_bytes = 0, wan_v2_bytes = 0, wan_v3_bytes = 0;
  {
    exp::scenario wan_sc;
    wan_sc.topo = exp::topo_kind::i2_default;
    wan_sc.utilization = 0.7;
    wan_sc.sched = core::sched_kind::random;
    wan_sc.seed = a.seed;
    wan_sc.packet_budget = budget;
    wan_sc.record_hops = true;
    auto wan_orig = exp::run_original(wan_sc);
    net::sort_by_ingress(wan_orig.trace);
    wan_records = wan_orig.trace.packets.size();
    const std::string w1 = "bench_macro_wan.v1.trace";
    const std::string w2 = "bench_macro_wan.v2.trace";
    const std::string w3 = "bench_macro_wan.v3.trace";
    net::save_trace(w1, wan_orig.trace);
    net::save_trace_v2(w2, wan_orig.trace);
    net::save_trace_v3(w3, wan_orig.trace);
    wan_v1_bytes = file_bytes(w1);
    wan_v2_bytes = file_bytes(w2);
    wan_v3_bytes = file_bytes(w3);
    std::remove(w1.c_str());
    std::remove(w2.c_str());
    std::remove(w3.c_str());
  }
  const double wan_v3_ratio =
      static_cast<double>(wan_v3_bytes) / static_cast<double>(wan_v2_bytes);

  // --- RocketFuel lane: mixed workloads at WAN scale -------------------------
  // Sweep axes: incast fan-in degree x closed-loop outstanding window, the
  // two knobs that shape a mixed trace's burstiness and steady-state
  // residency. Each cell records an original on the RocketFuel topology
  // and replays it with LSTF.
  struct rf_cell {
    std::uint32_t fan_in = 0;
    std::uint32_t outstanding = 0;
    std::uint64_t trace_packets = 0;
    std::uint64_t peak_pool = 0;
    std::uint64_t peak_outstanding = 0;
    double original_wall = 0;
    double replay_wall = 0;
    double frac_overdue = 0;
    double frac_overdue_beyond_T = 0;
  };
  std::vector<rf_cell> rf_sweep;
  for (const std::uint32_t fan : {8u, 16u, 32u}) {
    for (const std::uint32_t win : {4u, 16u, 64u}) {
      exp::scenario sc;
      sc.topo = exp::topo_kind::rocketfuel;
      sc.utilization = 0.7;
      sc.sched = core::sched_kind::random;
      sc.seed = a.seed;
      sc.packet_budget = budget;
      char wname[48];
      std::snprintf(wname, sizeof(wname), "mixed:%u:%u:0.25", fan, win);
      sc.workload_kind = traffic::parse_workload(wname, sc.workload_spec);
      rf_cell c;
      c.fan_in = fan;
      c.outstanding = win;
      const auto t_orig = std::chrono::steady_clock::now();
      const auto orig = exp::run_original(sc);
      c.original_wall = exp::wall_seconds_since(t_orig);
      c.trace_packets = orig.trace.packets.size();
      c.peak_pool = orig.peak_pool_packets;
      c.peak_outstanding = orig.peak_outstanding_flows;
      const auto t_rep = std::chrono::steady_clock::now();
      const auto rep = exp::run_replay(orig, core::replay_mode::lstf,
                                       /*keep_outcomes=*/false);
      c.replay_wall = exp::wall_seconds_since(t_rep);
      c.frac_overdue = rep.frac_overdue();
      c.frac_overdue_beyond_T = rep.frac_overdue_beyond_T();
      rf_sweep.push_back(c);
    }
  }

  // Tiled scale lane (--rf-packets=N, headline N=1e8): a recorded mixed
  // base trace tiled along the time axis into an N-packet v3 file (O(1
  // block) writer memory — the whole point of the streaming path) and the
  // identical trace as v2, then pure-ingest and end-to-end LSTF replay of
  // both. Replays are compared on their aggregate counters; the
  // per-outcome byte-identity of v2-vs-v3 replay is gated on the disk
  // lane above, where keeping 2x outcome vectors is cheap.
  struct rf_tiled_stats {
    std::uint64_t records = 0;
    std::uint64_t base_records = 0;
    std::uint64_t v2_bytes = 0;
    std::uint64_t v3_bytes = 0;
    double v2_write_wall = 0;
    double v3_write_wall = 0;
    ingest_stats v2_ingest;
    ingest_stats v3_ingest;
    ingest_stats v3_ahead;  // decode-ahead warm drain of the same v3 file
    // Cold-cache open+drain of the same two files after page-cache
    // eviction — the disk-lane ingest measurement and the v3-ingest gate's
    // metric. cold_available is false where eviction is unsupported.
    ingest_stats v2_cold;
    ingest_stats v3_cold;
    bool cold_available = false;
    double v2_replay_wall = 0;
    double v3_replay_wall = 0;
    double frac_overdue = 0;
    double frac_overdue_beyond_T = 0;
    bool identical = true;
  };
  rf_tiled_stats rft;
  bool rf_tiled_ok = true;
  if (rf_packets > 0) {
    exp::scenario base_sc;
    base_sc.topo = exp::topo_kind::rocketfuel;
    base_sc.utilization = 0.7;
    base_sc.sched = core::sched_kind::random;
    base_sc.seed = a.seed;
    base_sc.packet_budget = std::min<std::uint64_t>(rf_packets, 2'000'000);
    base_sc.workload_kind =
        traffic::parse_workload("mixed:16:16:0.25", base_sc.workload_spec);
    auto base = exp::run_original(base_sc);
    net::sort_by_ingress(base.trace);
    rft.base_records = base.trace.packets.size();
    const std::string r2 = "bench_macro_rf.v2.trace";
    const std::string r3 = "bench_macro_rf.v3.trace";
    {
      std::ofstream os(r3, std::ios::binary);
      net::trace_v3_writer w(os, rf_packets);
      const auto t0 = std::chrono::steady_clock::now();
      rft.records = write_tiled(w, base.trace, rf_packets);
      rft.v3_write_wall = exp::wall_seconds_since(t0);
    }
    {
      std::ofstream os(r2, std::ios::binary);
      net::trace_binary_writer w(os);
      const auto t0 = std::chrono::steady_clock::now();
      (void)write_tiled(w, base.trace, rf_packets);
      rft.v2_write_wall = exp::wall_seconds_since(t0);
    }
    rft.v2_bytes = file_bytes(r2);
    rft.v3_bytes = file_bytes(r3);
    {
      net::trace_mmap_cursor c2(r2);
      rft.v2_ingest = drain(c2);
      net::trace_v3_cursor c3(r3);
      rft.v3_ingest = drain(c3);
      net::trace_v3_cursor c3p(r3, net::trace_access::decode_ahead);
      rft.v3_ahead = drain(c3p);
    }
    // Cold-cache ingest: evict each file (fsync + POSIX_FADV_DONTNEED),
    // then time open + drain — opening is part of the cost (a v2 open
    // faults the whole footer index; v3 only the leading block index).
    // This is the regime the block format exists for: bytes off storage
    // dominate, and the ~3x smaller v3 file must be the faster path.
    rft.cold_available = drop_page_cache(r2);
    if (rft.cold_available) {
      const auto t0 = std::chrono::steady_clock::now();
      net::trace_mmap_cursor c2(r2);
      rft.v2_cold = drain(c2);
      rft.v2_cold.wall_seconds = exp::wall_seconds_since(t0);
      rft.cold_available = drop_page_cache(r3);
    }
    if (rft.cold_available) {
      const auto t0 = std::chrono::steady_clock::now();
      net::trace_v3_cursor c3(r3);
      rft.v3_cold = drain(c3);
      rft.v3_cold.wall_seconds = exp::wall_seconds_since(t0);
      if (rft.v2_cold.checksum != rft.v2_ingest.checksum ||
          rft.v3_cold.checksum != rft.v3_ingest.checksum) {
        std::fprintf(stderr, "FAIL: cold-cache drains diverged from warm\n");
        return 1;
      }
    }
    const auto t_r2 = std::chrono::steady_clock::now();
    const auto rep2 = exp::run_replay_file(r2, base.topology,
                                           base.threshold_T,
                                           core::replay_mode::lstf);
    rft.v2_replay_wall = exp::wall_seconds_since(t_r2);
    const auto t_r3 = std::chrono::steady_clock::now();
    const auto rep3 = exp::run_replay_file(r3, base.topology,
                                           base.threshold_T,
                                           core::replay_mode::lstf);
    rft.v3_replay_wall = exp::wall_seconds_since(t_r3);
    rft.frac_overdue = rep3.frac_overdue();
    rft.frac_overdue_beyond_T = rep3.frac_overdue_beyond_T();
    rft.identical =
        rft.v2_ingest.checksum == rft.v3_ingest.checksum &&
        rft.v2_ingest.records == rft.v3_ingest.records &&
        rft.v3_ahead.checksum == rft.v3_ingest.checksum &&
        rft.v3_ahead.records == rft.v3_ingest.records &&
        rep2.total == rep3.total && rep2.overdue == rep3.overdue &&
        rep2.overdue_beyond_T == rep3.overdue_beyond_T;
    rf_tiled_ok = rft.identical;
    std::remove(r2.c_str());
    std::remove(r3.c_str());
  }
  const bool cold_available = rf_packets > 0 && rft.cold_available;
  const double v2_cold_pps =
      cold_available
          ? static_cast<double>(rft.v2_cold.records) /
                rft.v2_cold.wall_seconds
          : 0.0;
  const double v3_cold_pps =
      cold_available
          ? static_cast<double>(rft.v3_cold.records) /
                rft.v3_cold.wall_seconds
          : 0.0;
  const double v3_cold_ratio =
      cold_available ? v3_cold_pps / v2_cold_pps : 0.0;
  // Bandwidth of the post-eviction v2 drain. A genuinely cold medium
  // measures tens to a few hundred MB/s here (the committed baseline's
  // cold v2 read at ~50 MB/s); when the "evicted" file still reads at
  // GB/s, a cache below the page cache served the bytes — a VM host
  // caching the block device, or fadvise advice silently ignored — and
  // the storage-bound regime the cold gate protects does not exist on
  // this machine.
  const double v2_cold_mbps =
      cold_available ? static_cast<double>(rft.v2_bytes) /
                           rft.v2_cold.wall_seconds / (1024.0 * 1024.0)
                     : 0.0;
  constexpr double kColdCredibleMBps = 750.0;
  const bool cold_is_credible =
      cold_available && v2_cold_mbps <= kColdCredibleMBps;
  // Warm-decode lane metrics. The tiled lane's big file is the preferred
  // measurement (hundreds of MB of blocks, decode-bound); without
  // --rf-packets the small disk lane's ratio stands in for the gate.
  const double rf_v2_warm_pps =
      rf_packets > 0 ? static_cast<double>(rft.v2_ingest.records) /
                           rft.v2_ingest.wall_seconds
                     : 0.0;
  const double rf_v3_warm_pps =
      rf_packets > 0 ? static_cast<double>(rft.v3_ingest.records) /
                           rft.v3_ingest.wall_seconds
                     : 0.0;
  const double rf_v3_ahead_pps =
      rf_packets > 0 ? static_cast<double>(rft.v3_ahead.records) /
                           rft.v3_ahead.wall_seconds
                     : 0.0;
  const double rf_warm_ratio =
      rf_packets > 0 ? rf_v3_warm_pps / rf_v2_warm_pps : 0.0;
  const double rf_ahead_ratio =
      rf_packets > 0 ? rf_v3_ahead_pps / rf_v3_warm_pps : 0.0;
  const double warm_ratio_measured =
      rf_packets > 0 ? rf_warm_ratio : v3_ingest_ratio;
  const double ahead_ratio_measured =
      rf_packets > 0 ? rf_ahead_ratio : v3_ahead_ratio;

  // --- report --------------------------------------------------------------
  std::printf("\n%-22s %6s %-12s %9s", "scenario", "util", "workload",
              "packets");
  for (const auto m : modes) std::printf(" %16s", core::to_string(m));
  std::printf("\n");
  for (const auto& r : serial) {
    std::printf("%-22s %5.0f%% %-12s %9llu", exp::to_string(r.sc.topo),
                r.sc.utilization * 100,
                traffic::to_string(r.sc.workload_kind),
                static_cast<unsigned long long>(r.trace_packets));
    for (const auto& rep : r.replays) {
      std::printf("   %6.4f/%7.4f", rep.result.frac_overdue(),
                  rep.result.frac_overdue_beyond_T());
    }
    std::printf("\n");
  }
  std::printf("\nloss sweep (I2 @70%% Random, original recorded under fault, "
              "replay-under-loss across modes):\n");
  std::printf("  %-22s %9s %8s", "fault", "packets", "dropped");
  for (const auto m : modes) std::printf(" %16s", core::to_string(m));
  std::printf("\n");
  for (std::size_t i = 0; i < loss_serial.size(); ++i) {
    const auto& r = loss_serial[i];
    const std::uint64_t lane_dropped =
        r.replays.empty() ? 0 : r.replays[0].result.dropped;
    std::printf("  %-22s %9llu %8llu",
                loss_axis[i][0] != '\0' ? loss_axis[i] : "none",
                static_cast<unsigned long long>(r.trace_packets),
                static_cast<unsigned long long>(lane_dropped));
    for (const auto& rep : r.replays) {
      std::printf("   %6.4f/%7.4f", rep.result.frac_overdue(),
                  rep.result.frac_overdue_beyond_T());
    }
    std::printf("\n");
  }
  std::printf("  backends identical: %s, zero-loss lane == plain sweep: %s\n",
              loss_backends_same ? "yes" : "NO",
              loss_zero_same ? "yes" : "NO");
  std::printf("\nbackpressure lane (fat tree @70%% Random, original recorded "
              "under flow control, stalls re-enacted across modes):\n");
  std::printf("  %-18s %9s %9s %10s", "flow", "packets", "stalled",
              "stall ms");
  for (const auto m : modes) std::printf(" %16s", core::to_string(m));
  std::printf("\n");
  for (std::size_t i = 0; i < flow_serial.size(); ++i) {
    const auto& r = flow_serial[i];
    std::printf("  %-18s %9llu %9llu %10.3f",
                flow_axis[i][0] != '\0' ? flow_axis[i] : "none",
                static_cast<unsigned long long>(r.trace_packets),
                static_cast<unsigned long long>(
                    flow_stalls[i].stalled_records),
                static_cast<double>(flow_stalls[i].stall_time) / 1e9);
    for (const auto& rep : r.replays) {
      std::printf("   %6.4f/%7.4f", rep.result.frac_overdue(),
                  rep.result.frac_overdue_beyond_T());
    }
    std::printf("\n");
  }
  std::printf("  backends identical: %s, flow-off lane == plain sweep: %s, "
              "lossless (injected == delivered, zero drops): %s\n",
              flow_backends_same ? "yes" : "NO",
              flow_zero_same ? "yes" : "NO", flow_lossless ? "yes" : "NO");
  std::printf("\nworkload lane (I2 @70%% Random, per-kind original + LSTF "
              "replay; peak@2x gates the plateau):\n");
  std::printf("  %-14s %9s %14s %14s %12s %12s %10s\n", "workload", "packets",
              "orig pkt/s", "replay pkt/s", "peak pool", "peak@2x",
              "vs open@2x");
  for (const auto& l : lanes) {
    std::printf("  %-14s %9llu %14.0f %14.0f %12llu", l.name,
                static_cast<unsigned long long>(l.trace_packets),
                static_cast<double>(l.trace_packets) / l.original_wall,
                static_cast<double>(l.trace_packets) / l.replay_wall,
                static_cast<unsigned long long>(l.peak_pool));
    if (l.peak_pool_2x != 0) {
      std::printf(" %12llu %9.3fx\n",
                  static_cast<unsigned long long>(l.peak_pool_2x),
                  static_cast<double>(l.peak_pool_2x) /
                      static_cast<double>(open_loop_peak_2x));
    } else {
      std::printf(" %12s %10s\n", "-", "-");
    }
  }
  std::printf("\nserial : %7.2fs  %12.0f packets/sec\n", serial_wall,
              serial_pps);
  std::printf("sharded: %7.2fs  %12.0f packets/sec  (%.2fx, %s:%zu)\n",
              sharded_wall, sharded_pps, speedup,
              exp::dispatch::to_string(sharded_spec.kind),
              sharded_spec.workers);
  if (process_available) {
    for (const auto& pt : process_curve) {
      std::printf("process:%zu  %7.2fs  %12.0f packets/sec  (%.2fx vs "
                  "serial, identical: %s)\n",
                  pt.workers, pt.wall_seconds,
                  static_cast<double>(replayed) / pt.wall_seconds,
                  pt.speedup_vs_serial, pt.identical ? "yes" : "NO");
    }
    if (a.kill_worker_after > 0) {
      std::printf("process:2 +kill-worker-after=%llu: %zu worker "
                  "failure(s)%s, identical: %s\n",
                  static_cast<unsigned long long>(a.kill_worker_after),
                  fault_failures, fault_respawned ? " (respawned)" : "",
                  fault_same ? "yes" : "NO");
    }
  } else {
    std::printf("process backend unavailable on this platform; dispatch "
                "lane skipped\n");
  }
  const double committed_pps =
      baseline_path.empty() ? 0.0 : baseline_serial_pps(baseline_path);
  if (committed_pps > 0.0) {
    std::printf("vs committed baseline (%s): %.2fx serial packets/sec\n",
                baseline_path.c_str(), serial_pps / committed_pps);
  } else if (!baseline_path.empty()) {
    std::printf("baseline %s: no serial packets/sec found, comparison "
                "skipped\n",
                baseline_path.c_str());
  }
  const double committed_warm_pps =
      baseline_path.empty() ? 0.0
                            : baseline_field(baseline_path, "\"disk\"",
                                             "v3_warm_packets_per_sec");
  if (committed_warm_pps > 0.0) {
    std::printf("vs committed baseline: %.2fx v3 warm-decode packets/sec "
                "(disk lane)\n",
                v3_ingest_pps / committed_warm_pps);
  }
  std::printf("residency (largest scenario, %llu packets): upfront peak "
              "%llu pkts / %llu event slots -> streaming peak %llu pkts / "
              "%llu event slots (%.4fx)\n",
              static_cast<unsigned long long>(orig_big.trace.packets.size()),
              static_cast<unsigned long long>(res_upfront.peak_pool_packets),
              static_cast<unsigned long long>(res_upfront.peak_event_slots),
              static_cast<unsigned long long>(res_stream.peak_pool_packets),
              static_cast<unsigned long long>(res_stream.peak_event_slots),
              residency_ratio);
  std::printf("\ndisk lane (%llu-packet trace):\n",
              static_cast<unsigned long long>(orig_big.trace.packets.size()));
  std::printf("  v1 text   %9llu bytes  ingest %12.0f packets/sec "
              "%8.1f MB/s   replay(4 modes) %12.0f packets/sec\n",
              static_cast<unsigned long long>(v1_bytes), text_ingest_pps,
              static_cast<double>(v1_bytes) / text_ingest.wall_seconds / 1e6,
              text_replay_pps);
  std::printf("  v2 binary %9llu bytes  ingest %12.0f packets/sec "
              "%8.1f MB/s   replay(4 modes) %12.0f packets/sec\n",
              static_cast<unsigned long long>(v2_bytes), bin_ingest_pps,
              static_cast<double>(v2_bytes) / bin_ingest.wall_seconds / 1e6,
              bin_replay_pps);
  std::printf("  v3 blocks %9llu bytes  ingest %12.0f packets/sec "
              "%8.1f MB/s   replay(4 modes) %12.0f packets/sec\n",
              static_cast<unsigned long long>(v3_bytes), v3_ingest_pps,
              static_cast<double>(v3_bytes) / v3_ingest.wall_seconds / 1e6,
              v3_replay_pps);
  std::printf("  binary ingest speedup %.2fx, v3/v2 warm-decode ratio "
              "%.2fx, end-to-end replay speedup %.2fx, results identical: "
              "%s\n",
              disk_speedup, v3_ingest_ratio,
              bin_replay_pps / text_replay_pps, disk_same ? "yes" : "NO");
  std::printf("  v3 decode-ahead %12.0f packets/sec (%.2fx sync), fold "
              "identical: %s\n",
              v3_ahead_pps, v3_ahead_ratio, v3_ahead_same ? "yes" : "NO");
  std::printf("  v3 steady-state allocations: %llu; block-seek walk %llu "
              "records in %.3fs (%.0f packets/sec), fold identical: %s\n",
              static_cast<unsigned long long>(v3_steady_allocs),
              static_cast<unsigned long long>(v3_seek.records),
              v3_seek.wall_seconds,
              static_cast<double>(v3_seek.records) / v3_seek.wall_seconds,
              v3_seek_same ? "yes" : "NO");
  std::printf("\nWAN bytes lane (I2 @70%%, hops recorded, %llu packets):\n",
              static_cast<unsigned long long>(wan_records));
  std::printf("  v1 %10llu bytes (%6.1f B/pkt)  v2 %10llu bytes "
              "(%6.1f B/pkt)  v3 %10llu bytes (%6.1f B/pkt)  v3/v2 %.3f\n",
              static_cast<unsigned long long>(wan_v1_bytes),
              static_cast<double>(wan_v1_bytes) /
                  static_cast<double>(wan_records),
              static_cast<unsigned long long>(wan_v2_bytes),
              static_cast<double>(wan_v2_bytes) /
                  static_cast<double>(wan_records),
              static_cast<unsigned long long>(wan_v3_bytes),
              static_cast<double>(wan_v3_bytes) /
                  static_cast<double>(wan_records),
              wan_v3_ratio);
  std::printf("\nRocketFuel lane (mixed workload, fan-in x outstanding "
              "sweep):\n");
  std::printf("  %4s %4s %9s %12s %12s %10s %8s %8s\n", "fan", "win",
              "packets", "orig pkt/s", "replay pkt/s", "peak pool",
              "peak out", "overdue");
  for (const auto& c : rf_sweep) {
    std::printf("  %4u %4u %9llu %12.0f %12.0f %10llu %8llu %8.4f\n",
                c.fan_in, c.outstanding,
                static_cast<unsigned long long>(c.trace_packets),
                static_cast<double>(c.trace_packets) / c.original_wall,
                static_cast<double>(c.trace_packets) / c.replay_wall,
                static_cast<unsigned long long>(c.peak_pool),
                static_cast<unsigned long long>(c.peak_outstanding),
                c.frac_overdue);
  }
  if (rf_packets > 0) {
    std::printf("  tiled scale: %llu packets (base %llu, mixed:16:16:0.25)\n",
                static_cast<unsigned long long>(rft.records),
                static_cast<unsigned long long>(rft.base_records));
    std::printf("    v2 %12llu bytes  write %7.2fs  ingest %12.0f pkt/s  "
                "lstf replay %12.0f pkt/s\n",
                static_cast<unsigned long long>(rft.v2_bytes),
                rft.v2_write_wall,
                static_cast<double>(rft.v2_ingest.records) /
                    rft.v2_ingest.wall_seconds,
                static_cast<double>(rft.records) / rft.v2_replay_wall);
    std::printf("    v3 %12llu bytes  write %7.2fs  ingest %12.0f pkt/s  "
                "lstf replay %12.0f pkt/s  overdue %.4f  identical: %s\n",
                static_cast<unsigned long long>(rft.v3_bytes),
                rft.v3_write_wall,
                static_cast<double>(rft.v3_ingest.records) /
                    rft.v3_ingest.wall_seconds,
                static_cast<double>(rft.records) / rft.v3_replay_wall,
                rft.frac_overdue, rft.identical ? "yes" : "NO");
    std::printf("    warm decode: v3 %12.0f pkt/s = %.2fx v2 %12.0f pkt/s; "
                "decode-ahead %12.0f pkt/s (%.2fx sync)\n",
                rf_v3_warm_pps, rf_warm_ratio, rf_v2_warm_pps,
                rf_v3_ahead_pps, rf_ahead_ratio);
    if (cold_available) {
      std::printf("    cold-cache (disk lane, open+drain): v2 %12.0f "
                  "pkt/s (%.0f MB/s), v3 %12.0f pkt/s, v3/v2 cold ingest "
                  "ratio %.2fx%s\n",
                  v2_cold_pps, v2_cold_mbps, v3_cold_pps, v3_cold_ratio,
                  cold_is_credible ? "" : "  [cache-served, not gated]");
    } else {
      std::printf("    cold-cache (disk lane): SKIPPED — page-cache "
                  "eviction unavailable on this platform\n");
    }
  }

  // --- JSON trajectory -----------------------------------------------------
  const bool same = identical(serial, sharded);
  {
    std::ofstream out(out_path);
    out << "{\n  \"benchmark\": \"macro_replay\",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"hardware_concurrency\": " << hw << ",\n"
        << "  \"packet_budget\": " << budget << ",\n"
        << "  \"replayed_packets\": " << replayed << ",\n"
        << "  \"serial\": {\"wall_seconds\": " << serial_wall
        << ", \"packets_per_sec\": " << serial_pps << "},\n"
        << "  \"sharded\": {\"wall_seconds\": " << sharded_wall
        << ", \"packets_per_sec\": " << sharded_pps << "},\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"identical\": " << (same ? "true" : "false") << ",\n"
        << "  \"process\": {\"available\": "
        << (process_available ? "true" : "false") << ", \"curve\": [";
    for (std::size_t i = 0; i < process_curve.size(); ++i) {
      const auto& pt = process_curve[i];
      out << (i ? ", " : "") << "{\"workers\": " << pt.workers
          << ", \"wall_seconds\": " << pt.wall_seconds
          << ", \"packets_per_sec\": "
          << static_cast<double>(replayed) / pt.wall_seconds
          << ", \"speedup_vs_serial\": " << pt.speedup_vs_serial
          << ", \"identical\": " << (pt.identical ? "true" : "false") << "}";
    }
    out << "],\n    \"kill_worker_after\": " << a.kill_worker_after
        << ", \"fault_worker_failures\": " << fault_failures
        << ", \"fault_respawned\": " << (fault_respawned ? "true" : "false")
        << ", \"fault_identical\": " << (fault_same ? "true" : "false")
        << "},\n"
        << "  \"residency\": {\"trace_packets\": "
        << orig_big.trace.packets.size()
        << ", \"upfront_peak_packets\": " << res_upfront.peak_pool_packets
        << ", \"streaming_peak_packets\": " << res_stream.peak_pool_packets
        << ", \"upfront_peak_event_slots\": " << res_upfront.peak_event_slots
        << ", \"streaming_peak_event_slots\": " << res_stream.peak_event_slots
        << ", \"ratio\": " << residency_ratio << "},\n"
        << "  \"disk\": {\"trace_packets\": " << orig_big.trace.packets.size()
        << ", \"text_bytes\": " << v1_bytes
        << ", \"binary_bytes\": " << v2_bytes
        << ",\n    \"text_ingest\": {\"wall_seconds\": "
        << text_ingest.wall_seconds
        << ", \"packets_per_sec\": " << text_ingest_pps
        << ", \"mb_per_sec\": "
        << static_cast<double>(v1_bytes) / text_ingest.wall_seconds / 1e6
        << "},\n    \"binary_ingest\": {\"wall_seconds\": "
        << bin_ingest.wall_seconds
        << ", \"packets_per_sec\": " << bin_ingest_pps
        << ", \"mb_per_sec\": "
        << static_cast<double>(v2_bytes) / bin_ingest.wall_seconds / 1e6
        << "},\n    \"v3_bytes\": " << v3_bytes
        << ", \"v3_ingest\": {\"wall_seconds\": " << v3_ingest.wall_seconds
        << ", \"packets_per_sec\": " << v3_ingest_pps
        << ", \"mb_per_sec\": "
        << static_cast<double>(v3_bytes) / v3_ingest.wall_seconds / 1e6
        << "},\n    \"v3_ingest_ratio\": " << v3_ingest_ratio
        << ", \"v3_warm_packets_per_sec\": " << v3_ingest_pps
        << ",\n    \"v3_ahead\": {\"packets_per_sec\": " << v3_ahead_pps
        << ", \"ratio_vs_sync\": " << v3_ahead_ratio
        << ", \"identical\": " << (v3_ahead_same ? "true" : "false")
        << "},\n    \"v3_steady_state_allocs\": " << v3_steady_allocs
        << ",\n    \"v3_block_seek\": {\"records\": " << v3_seek.records
        << ", \"wall_seconds\": " << v3_seek.wall_seconds
        << ", \"identical\": " << (v3_seek_same ? "true" : "false")
        << "},\n    \"ingest_speedup\": " << disk_speedup
        << ",\n    \"text_replay_packets_per_sec\": " << text_replay_pps
        << ", \"binary_replay_packets_per_sec\": " << bin_replay_pps
        << ", \"v3_replay_packets_per_sec\": " << v3_replay_pps
        << ", \"replay_speedup\": " << bin_replay_pps / text_replay_pps
        << ", \"identical\": " << (disk_same ? "true" : "false") << "},\n"
        << "  \"wan_bytes\": {\"trace_packets\": " << wan_records
        << ", \"v1_bytes\": " << wan_v1_bytes
        << ", \"v2_bytes\": " << wan_v2_bytes
        << ", \"v3_bytes\": " << wan_v3_bytes
        << ", \"v3_v2_ratio\": " << wan_v3_ratio << "},\n"
        << "  \"rocketfuel\": {\"sweep\": [\n";
    for (std::size_t i = 0; i < rf_sweep.size(); ++i) {
      const auto& c = rf_sweep[i];
      out << "    {\"fan_in\": " << c.fan_in
          << ", \"outstanding\": " << c.outstanding
          << ", \"trace_packets\": " << c.trace_packets
          << ", \"original_packets_per_sec\": "
          << static_cast<double>(c.trace_packets) / c.original_wall
          << ", \"replay_packets_per_sec\": "
          << static_cast<double>(c.trace_packets) / c.replay_wall
          << ", \"peak_pool_packets\": " << c.peak_pool
          << ", \"peak_outstanding_flows\": " << c.peak_outstanding
          << ", \"frac_overdue\": " << c.frac_overdue
          << ", \"frac_overdue_beyond_T\": " << c.frac_overdue_beyond_T
          << "}" << (i + 1 < rf_sweep.size() ? "," : "") << "\n";
    }
    out << "  ]";
    if (rf_packets > 0) {
      out << ",\n  \"tiled\": {\"records\": " << rft.records
          << ", \"base_records\": " << rft.base_records
          << ", \"v2_bytes\": " << rft.v2_bytes
          << ", \"v3_bytes\": " << rft.v3_bytes
          << ", \"v2_write_seconds\": " << rft.v2_write_wall
          << ", \"v3_write_seconds\": " << rft.v3_write_wall
          << ",\n    \"v2_ingest_packets_per_sec\": "
          << static_cast<double>(rft.v2_ingest.records) /
                 rft.v2_ingest.wall_seconds
          << ", \"v3_ingest_packets_per_sec\": "
          << static_cast<double>(rft.v3_ingest.records) /
                 rft.v3_ingest.wall_seconds
          << ",\n    \"warm_decode\": {\"v2_packets_per_sec\": "
          << rf_v2_warm_pps << ", \"v3_packets_per_sec\": " << rf_v3_warm_pps
          << ", \"v3_v2_ratio\": " << rf_warm_ratio
          << ", \"v3_ahead_packets_per_sec\": " << rf_v3_ahead_pps
          << ", \"ahead_sync_ratio\": " << rf_ahead_ratio
          << "},\n    \"cold_ingest\": {\"available\": "
          << (cold_available ? "true" : "false")
          << ", \"v2_packets_per_sec\": " << v2_cold_pps
          << ", \"v3_packets_per_sec\": " << v3_cold_pps
          << ", \"v3_v2_ratio\": " << v3_cold_ratio
          << ", \"v2_mb_per_sec\": " << v2_cold_mbps
          << ", \"storage_bound\": " << (cold_is_credible ? "true" : "false")
          << "},\n    \"v2_replay_packets_per_sec\": "
          << static_cast<double>(rft.records) / rft.v2_replay_wall
          << ", \"v3_replay_packets_per_sec\": "
          << static_cast<double>(rft.records) / rft.v3_replay_wall
          << ", \"frac_overdue\": " << rft.frac_overdue
          << ", \"frac_overdue_beyond_T\": " << rft.frac_overdue_beyond_T
          << ", \"identical\": " << (rft.identical ? "true" : "false")
          << "}";
    }
    out << "},\n"
        << "  \"loss_sweep\": {\"identical_across_backends\": "
        << (loss_backends_same ? "true" : "false")
        << ", \"zero_loss_identical\": "
        << (loss_zero_same ? "true" : "false") << ", \"lanes\": [\n";
    for (std::size_t i = 0; i < loss_serial.size(); ++i) {
      const auto& r = loss_serial[i];
      out << "    {\"fault\": \""
          << (loss_axis[i][0] != '\0' ? loss_axis[i] : "none")
          << "\", \"trace_packets\": " << r.trace_packets
          << ", \"dropped\": "
          << (r.replays.empty() ? 0 : r.replays[0].result.dropped)
          << ", \"modes\": [";
      for (std::size_t m = 0; m < r.replays.size(); ++m) {
        const auto& rep = r.replays[m];
        out << (m ? ", " : "") << "{\"mode\": \""
            << core::to_string(rep.mode)
            << "\", \"frac_overdue\": " << rep.result.frac_overdue()
            << ", \"frac_overdue_beyond_T\": "
            << rep.result.frac_overdue_beyond_T() << "}";
      }
      out << "]}" << (i + 1 < loss_serial.size() ? "," : "") << "\n";
    }
    out << "  ]},\n"
        << "  \"backpressure\": {\"identical_across_backends\": "
        << (flow_backends_same ? "true" : "false")
        << ", \"zero_flow_identical\": "
        << (flow_zero_same ? "true" : "false")
        << ", \"lossless\": " << (flow_lossless ? "true" : "false")
        << ", \"lanes\": [\n";
    for (std::size_t i = 0; i < flow_serial.size(); ++i) {
      const auto& r = flow_serial[i];
      out << "    {\"flow\": \""
          << (flow_axis[i][0] != '\0' ? flow_axis[i] : "none")
          << "\", \"trace_packets\": " << r.trace_packets
          << ", \"stalled_records\": " << flow_stalls[i].stalled_records
          << ", \"stall_ms\": "
          << static_cast<double>(flow_stalls[i].stall_time) / 1e9
          << ", \"modes\": [";
      for (std::size_t m = 0; m < r.replays.size(); ++m) {
        const auto& rep = r.replays[m];
        out << (m ? ", " : "") << "{\"mode\": \""
            << core::to_string(rep.mode)
            << "\", \"frac_overdue\": " << rep.result.frac_overdue()
            << ", \"frac_overdue_beyond_T\": "
            << rep.result.frac_overdue_beyond_T() << "}";
      }
      out << "]}" << (i + 1 < flow_serial.size() ? "," : "") << "\n";
    }
    out << "  ]},\n"
        << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const auto& l = lanes[i];
      out << "    {\"kind\": \"" << l.name
          << "\", \"trace_packets\": " << l.trace_packets
          << ", \"original_packets_per_sec\": "
          << static_cast<double>(l.trace_packets) / l.original_wall
          << ", \"replay_packets_per_sec\": "
          << static_cast<double>(l.trace_packets) / l.replay_wall
          << ", \"peak_pool_packets\": " << l.peak_pool
          << ", \"peak_pool_packets_2x\": " << l.peak_pool_2x
          << ", \"flows_completed\": " << l.flows_completed
          << ", \"frac_overdue\": " << l.frac_overdue
          << ", \"frac_overdue_beyond_T\": " << l.frac_overdue_beyond_T
          << "}" << (i + 1 < lanes.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const auto& r = serial[i];
      out << "    {\"topo\": \"" << exp::to_string(r.sc.topo)
          << "\", \"utilization\": " << r.sc.utilization
          << ", \"scheduler\": \"" << core::to_string(r.sc.sched)
          << "\", \"seed\": " << r.sc.seed
          << ", \"workload\": \"" << traffic::to_string(r.sc.workload_kind)
          << "\", \"original_peak_pool_packets\": "
          << r.original_peak_pool_packets
          << ", \"trace_packets\": " << r.trace_packets << ", \"modes\": [";
      for (std::size_t m = 0; m < r.replays.size(); ++m) {
        const auto& rep = r.replays[m];
        out << (m ? ", " : "") << "{\"mode\": \""
            << core::to_string(rep.mode)
            << "\", \"frac_overdue\": " << rep.result.frac_overdue()
            << ", \"frac_overdue_beyond_T\": "
            << rep.result.frac_overdue_beyond_T() << "}";
      }
      out << "]}" << (i + 1 < serial.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  // --- gates ---------------------------------------------------------------
  int failures = 0;
  if (!same) {
    std::fprintf(stderr,
                 "FAIL: sharded results differ from the serial run "
                 "(determinism violation)\n");
    ++failures;
  }
  if (!process_same) {
    std::fprintf(stderr,
                 "FAIL: a process-backend run differs from the serial "
                 "reference (dispatch fabric determinism violation)\n");
    ++failures;
  }
  if (!fault_same) {
    std::fprintf(stderr,
                 "FAIL: the fault-injected process run merged differently "
                 "from serial — worker recovery corrupted a result slot\n");
    ++failures;
  }
  if (!fault_fired) {
    std::fprintf(stderr,
                 "FAIL: --kill-worker-after injection recorded no worker "
                 "failure — the recovery path went untested\n");
    ++failures;
  }
  if (!loss_backends_same) {
    std::fprintf(stderr,
                 "FAIL: a loss-sweep lane differs across dispatch backends "
                 "— the fault RNG is not counter-deterministic\n");
    ++failures;
  }
  if (!loss_zero_same) {
    std::fprintf(stderr,
                 "FAIL: the zero-loss lane differs from the plain sweep — "
                 "a disabled fault process perturbed the schedule\n");
    ++failures;
  }
  if (!loss_fired) {
    std::fprintf(stderr,
                 "FAIL: a lossy lane recorded zero drops — its fault "
                 "process never fired\n");
    ++failures;
  }
  if (!loss_conserved) {
    std::fprintf(stderr,
                 "FAIL: replay-under-loss leaked packets: delivered + "
                 "dropped != injected on some lane/mode\n");
    ++failures;
  }
  if (!flow_backends_same) {
    std::fprintf(stderr,
                 "FAIL: a backpressure lane differs across dispatch "
                 "backends — flow control or stall re-enactment is not "
                 "deterministic\n");
    ++failures;
  }
  if (!flow_zero_same) {
    std::fprintf(stderr,
                 "FAIL: the flow-off lane differs from the plain sweep — "
                 "a disabled flow spec perturbed the schedule\n");
    ++failures;
  }
  if (!flow_fired) {
    std::fprintf(stderr,
                 "FAIL: a governed backpressure lane recorded zero stalls "
                 "— its flow budget never parked a transmitter\n");
    ++failures;
  }
  if (!flow_lossless) {
    std::fprintf(stderr,
                 "FAIL: a flow-controlled replay lost packets: delivered "
                 "!= injected or drops > 0 — backpressure must be "
                 "lossless\n");
    ++failures;
  }
  // The process-count speedup bar, like the thread one, needs real cores.
  if (process_available && hw >= 2) {
    double best = 0;
    for (const auto& pt : process_curve) {
      best = std::max(best, pt.speedup_vs_serial);
    }
    if (best < min_process_speedup) {
      std::fprintf(stderr,
                   "FAIL: best process-backend speedup %.2fx < %.2fx bar\n",
                   best, min_process_speedup);
      ++failures;
    }
  } else if (process_available) {
    std::printf("process speedup gate SKIPPED: %u hardware thread(s)\n", hw);
  }
  if (res_stream.peak_pool_packets >
      static_cast<std::uint64_t>(
          max_residency *
          static_cast<double>(res_upfront.peak_pool_packets))) {
    std::fprintf(stderr,
                 "FAIL: streaming peak residency %llu > %.2f x upfront peak "
                 "%llu\n",
                 static_cast<unsigned long long>(res_stream.peak_pool_packets),
                 max_residency,
                 static_cast<unsigned long long>(
                     res_upfront.peak_pool_packets));
    ++failures;
  }
  // Steady-state gates (lanes: 0 open-loop, 1 paced, 2 closed-loop; incast
  // is open-loop fan-in by design and carries no bound). The closed-loop
  // source must genuinely plateau — flat residency in trace length, far
  // below the open-loop baseline. Paced emission is gated directionally:
  // strictly below the baseline, because on a WAN the bandwidth×delay
  // product floors what any open-ended source can achieve (a paced elephant
  // is still almost entirely on the wire at once when propagation delay
  // rivals its serialization span — measured, not a guess).
  const auto& paced_lane = lanes[1];
  const auto& closed_lane = lanes[2];
  if (static_cast<double>(closed_lane.peak_pool_2x) >
      max_workload_plateau * static_cast<double>(closed_lane.peak_pool)) {
    std::fprintf(stderr,
                 "FAIL: closed-loop residency did not plateau: %llu at 2x "
                 "budget vs %llu at 1x (> %.2fx) — outstanding bound leak?\n",
                 static_cast<unsigned long long>(closed_lane.peak_pool_2x),
                 static_cast<unsigned long long>(closed_lane.peak_pool),
                 max_workload_plateau);
    ++failures;
  }
  if (static_cast<double>(closed_lane.peak_pool_2x) >
      max_workload_residency * static_cast<double>(open_loop_peak_2x)) {
    std::fprintf(stderr,
                 "FAIL: closed-loop peak residency %llu > %.2f x open-loop "
                 "baseline %llu — WAN scenario did not reach steady state\n",
                 static_cast<unsigned long long>(closed_lane.peak_pool_2x),
                 max_workload_residency,
                 static_cast<unsigned long long>(open_loop_peak_2x));
    ++failures;
  }
  if (static_cast<double>(paced_lane.peak_pool_2x) >
      0.97 * static_cast<double>(open_loop_peak_2x)) {
    std::fprintf(stderr,
                 "FAIL: paced peak residency %llu is not below the open-loop "
                 "baseline %llu — pacing is not shaping emission\n",
                 static_cast<unsigned long long>(paced_lane.peak_pool_2x),
                 static_cast<unsigned long long>(open_loop_peak_2x));
    ++failures;
  }
  if (!disk_same) {
    std::fprintf(stderr,
                 "FAIL: binary disk replay differs from the text path "
                 "(format round-trip or cursor bug)\n");
    ++failures;
  }
  if (disk_speedup < min_disk_speedup) {
    std::fprintf(stderr,
                 "FAIL: binary replay ingestion %.2fx text reader < %.2fx "
                 "bar\n",
                 disk_speedup, min_disk_speedup);
    ++failures;
  }
  // The ingest gate runs on the disk lane (cold cache): that is the regime
  // the block format exists for — once the file is off storage the bytes
  // moved dominate, and v3's ~3x smaller files must make it the faster
  // ingest path. The gate only means something when storage actually
  // bounds the drain, hence the bandwidth credibility check (warm-cache
  // decode has its own machine-relative floor below).
  if (!cold_available) {
    std::fprintf(stderr,
                 "v3 ingest gate SKIPPED: needs the RocketFuel tiled lane "
                 "(--rf-packets=N) and platform page-cache eviction\n");
  } else if (!cold_is_credible) {
    std::printf("v3 ingest gate SKIPPED: post-eviction v2 read ran at "
                "%.0f MB/s (> %.0f MB/s) — a cache below the page cache "
                "served the bytes, so the storage-bound regime this gate "
                "protects is absent here (v3/v2 cold ratio %.2fx recorded, "
                "not gated)\n",
                v2_cold_mbps, kColdCredibleMBps, v3_cold_ratio);
  } else if (v3_cold_ratio < min_v3_ingest_ratio) {
    std::fprintf(stderr,
                 "FAIL: v3 cold-cache ingest %.0f packets/sec is %.2fx the "
                 "v2 cursor's %.0f — below the %.2fx bar\n",
                 v3_cold_pps, v3_cold_ratio, v2_cold_pps,
                 min_v3_ingest_ratio);
    ++failures;
  }
  // Decode-ahead identity is non-negotiable: the pipelined cursor must be
  // indistinguishable from the synchronous one, on every machine.
  if (!v3_ahead_same) {
    std::fprintf(stderr,
                 "FAIL: decode-ahead drain folded differently from the "
                 "synchronous v3 cursor (pipeline ordering bug)\n");
    ++failures;
  }
  // Warm-decode floor (off by default; CI pins the measured floor). The
  // ratio is machine-relative — v3/v2 on the same box, same run — so it
  // transfers across hardware in a way an absolute packets/sec bar cannot.
  if (min_v3_warm_ratio > 0.0 && warm_ratio_measured < min_v3_warm_ratio) {
    std::fprintf(stderr,
                 "FAIL: v3 warm decode is %.2fx the v2 cursor (%s lane) — "
                 "below the %.2fx bar\n",
                 warm_ratio_measured, rf_packets > 0 ? "tiled" : "disk",
                 min_v3_warm_ratio);
    ++failures;
  }
  // Warm-decode anchor vs the committed baseline (skip when the baseline
  // predates the anchor field): catches a decoder change that tanks warm
  // throughput even when the v2 cursor slows down alongside it.
  if (min_warm_baseline_ratio > 0.0 && !baseline_path.empty()) {
    if (committed_warm_pps <= 0.0) {
      std::printf("warm-baseline gate SKIPPED: %s has no "
                  "v3_warm_packets_per_sec anchor\n",
                  baseline_path.c_str());
    } else if (v3_ingest_pps < min_warm_baseline_ratio * committed_warm_pps) {
      std::fprintf(stderr,
                   "FAIL: v3 warm decode %.0f packets/sec < %.2f x committed "
                   "baseline %.0f — columnar decoder regression\n",
                   v3_ingest_pps, min_warm_baseline_ratio,
                   committed_warm_pps);
      ++failures;
    }
  }
  // Decode-ahead throughput needs a real second core for the decoder
  // thread; a 1-core box measures pure pipeline overhead, so it reports
  // instead of failing (mirrors the sharded-speedup skip rule).
  if (hw != 1) {
    if (ahead_ratio_measured < min_ahead_ratio) {
      std::fprintf(stderr,
                   "FAIL: decode-ahead drain is %.2fx the synchronous "
                   "cursor (%s lane) — below the %.2fx bar\n",
                   ahead_ratio_measured, rf_packets > 0 ? "tiled" : "disk",
                   min_ahead_ratio);
      ++failures;
    }
  } else {
    std::printf("decode-ahead throughput gate SKIPPED: 1 hardware thread — "
                "measured %.2fx sync (identity still gated)\n",
                ahead_ratio_measured);
  }
  if (wan_v3_ratio > max_v3_bytes_ratio) {
    std::fprintf(stderr,
                 "FAIL: WAN v3 trace is %.3fx the v2 bytes (> %.2fx bar): "
                 "%llu vs %llu bytes\n",
                 wan_v3_ratio, max_v3_bytes_ratio,
                 static_cast<unsigned long long>(wan_v3_bytes),
                 static_cast<unsigned long long>(wan_v2_bytes));
    ++failures;
  }
  if (v3_steady_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: warmed v3 decode performed %llu heap allocations "
                 "(contract: zero)\n",
                 static_cast<unsigned long long>(v3_steady_allocs));
    ++failures;
  }
  if (!v3_seek_same) {
    std::fprintf(stderr,
                 "FAIL: v3 block-seek walk folded differently from the "
                 "sequential drain (index/seek bug)\n");
    ++failures;
  }
  if (!rf_tiled_ok) {
    std::fprintf(stderr,
                 "FAIL: RocketFuel tiled v2 and v3 traces disagree "
                 "(ingest checksum or replay counters)\n");
    ++failures;
  }
  // Skip only on a *known* single-core box; hardware_concurrency() == 0
  // means "unknown", and an unknown machine must still enforce the bar
  // (CI runners report their count correctly).
  if (hw != 1 && threads >= 2) {
    if (speedup < min_speedup) {
      std::fprintf(stderr, "FAIL: sharded speedup %.2fx < %.2fx bar\n",
                   speedup, min_speedup);
      ++failures;
    }
  } else {
    std::printf("speedup gate SKIPPED: %u hardware thread(s), %zu bench "
                "threads — a wall-clock speedup is not physically "
                "measurable here\n",
                hw, threads);
  }
  // Perf smoke vs the committed heap-kernel baseline: catches an event-
  // kernel (or other hot-path) swap that tanks end-to-end replay. The
  // ratio is loose because the committed numbers came from one machine;
  // the tight kernel bars live in bench_micro_queues where both kernels
  // run in the same binary.
  if (committed_pps > 0.0 && serial_pps < min_baseline_ratio * committed_pps) {
    std::fprintf(stderr,
                 "FAIL: serial %.0f packets/sec < %.2f x committed baseline "
                 "%.0f — event-kernel or replay hot-path regression\n",
                 serial_pps, min_baseline_ratio, committed_pps);
    ++failures;
  }
  if (failures == 0) {
    std::printf("all macro-replay gates passed\n");
  }
  return failures == 0 ? 0 : 1;
}
