// Macro replay throughput: the second perf trajectory next to
// bench_micro_queues' per-hop numbers. Drives a full Table-1-style
// experiment end to end — record original schedules across scenarios/seeds,
// replay each with a 4-mode candidate-UPS sweep — twice: once serially
// (threads=1) and once sharded across a thread pool, and emits
// BENCH_macro_replay.json with end-to-end packets/sec, the sharded speedup,
// per-mode overdue fractions, and a peak-residency proxy comparing
// streaming vs up-front injection on the largest scenario.
//
// A disk-replay lane measures the v2 binary trace format against v1 text:
// the largest scenario's trace is written in both formats, drained through
// both readers (ingestion packets/sec and MB/s — the number that bounds
// how large a workload the replay framework can evaluate), and replayed
// end-to-end from both files across every mode, serial and sharded (every
// sharded worker mmaps the same v2 file read-only; the OS shares one
// physical copy).
//
// A workload lane sweeps the traffic-source kinds {open-loop, paced,
// closed-loop, incast} over the WAN scenario at 70% utilization, recording
// per-workload original-run and replay packets/sec plus the original run's
// in-flight residency (pool high-water mark), at the base budget and — for
// the gated kinds — at twice the budget. The steady-state story, measured:
// open-loop residency grows with the trace (heavy-tailed bursts pile into
// the 1 Gbps access tier and the WAN wire); paced emission stays strictly
// below that baseline but cannot beat the bandwidth×delay floor, because a
// WAN path's propagation delay rivals an elephant's serialization span, so
// a fully-paced flow is still almost entirely on the wire at once; the
// bounded-outstanding closed-loop source is what actually plateaus — its
// peak residency is flat in trace length (measured ~1.2k packets whether
// the trace is 30k or 120k) and sits far below the open-loop baseline.
//
// Gates (process exits non-zero on violation):
//   identity      sharded results must be byte-identical to the serial run
//                 (counters, thresholds, and per-packet outcomes for every
//                 scenario × mode cell) — always on
//   steady-state  on the WAN 70% scenario: closed-loop peak residency at 2x
//                 budget must stay within --max-workload-plateau (default
//                 1.1x) of its 1x-budget peak (the plateau) AND below
//                 --max-workload-residency (default 0.5) × the open-loop
//                 baseline at 2x; paced peak residency must stay strictly
//                 below the open-loop baseline (0.97x directional bar)
//   speedup       sharded packets/sec >= --min-speedup × serial packets/sec;
//                 enforced only when the machine actually has >= 2 hardware
//                 threads and --threads >= 2 (a 1-core box cannot exhibit a
//                 wall-clock speedup; the gate reports SKIPPED instead of
//                 producing a meaningless failure)
//   residency     streaming peak packet-pool residency on the largest
//                 scenario <= --max-residency × the up-front peak — the
//                 O(in-flight) vs O(trace) claim, measured, not assumed
//   disk identity replaying the v2 binary must produce byte-identical
//                 results to the v1 text path for every replay mode,
//                 serial and sharded — always on
//   disk speedup  binary (mmap) replay ingestion >= --min-disk-speedup ×
//                 the text reader's packets/sec (default 3x) — always on:
//                 ingestion is single-threaded I/O work, measurable even on
//                 a 1-core box
//
//   baseline      with --baseline=FILE (a committed heap-kernel-era
//                 BENCH_macro_replay.json from bench/baselines/), serial
//                 packets/sec must stay >= --min-baseline-ratio x the
//                 recorded serial packets/sec — the in-repo perf-smoke
//                 trajectory for the timing-wheel event kernel. The ratio
//                 is deliberately loose (machines differ); it exists to
//                 catch a kernel swap that tanks end-to-end throughput,
//                 while the within-binary micro gates own the tight bars.
//
// Usage: bench_macro_replay [--packets=N] [--seed=N] [--scale=F] [--quick]
//                           [--threads=N] [--out=FILE] [--min-speedup=X]
//                           [--max-residency=F] [--min-disk-speedup=X]
//                           [--max-workload-residency=F]
//                           [--max-workload-plateau=F]
//                           [--baseline=FILE] [--min-baseline-ratio=X]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "exp/args.h"
#include "exp/replay_shard_runner.h"
#include "net/trace_binary.h"
#include "net/trace_io.h"

namespace {

using namespace ups;

// Result identity compares everything deterministic: aggregate counters AND
// the per-packet outcome vectors (all passes run with keep_outcomes on), so
// a divergence that happens to preserve the overdue counts still fails the
// gate. Timings are the only fields excluded.
bool same_result(const core::replay_result& x, const core::replay_result& y) {
  if (x.total != y.total || x.overdue != y.overdue ||
      x.overdue_beyond_T != y.overdue_beyond_T ||
      x.threshold_T != y.threshold_T) {
    return false;
  }
  if (x.outcomes.size() != y.outcomes.size()) return false;
  for (std::size_t k = 0; k < x.outcomes.size(); ++k) {
    const auto& ox = x.outcomes[k];
    const auto& oy = y.outcomes[k];
    if (ox.id != oy.id || ox.original_out != oy.original_out ||
        ox.replay_out != oy.replay_out ||
        ox.original_queueing != oy.original_queueing ||
        ox.replay_queueing != oy.replay_queueing) {
      return false;
    }
  }
  return true;
}

bool identical(const std::vector<exp::shard_result>& a,
               const std::vector<exp::shard_result>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].trace_packets != b[i].trace_packets) return false;
    if (a[i].threshold_T != b[i].threshold_T) return false;
    if (a[i].replays.size() != b[i].replays.size()) return false;
    for (std::size_t m = 0; m < a[i].replays.size(); ++m) {
      if (!same_result(a[i].replays[m].result, b[i].replays[m].result)) {
        return false;
      }
    }
  }
  return true;
}

// Drains every record from a cursor — the pure ingestion cost of a trace
// format, with zero simulation work attached. The per-record fold (sum of
// a few fields) keeps the decode from being optimized away.
struct ingest_stats {
  std::uint64_t records = 0;
  std::uint64_t checksum = 0;
  double wall_seconds = 0;
};

ingest_stats drain(net::trace_cursor& cur) {
  ingest_stats s;
  std::vector<const net::packet_record*> run;
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    run.clear();
    if (cur.next_run(run) == 0) break;
    for (const net::packet_record* r : run) {
      ++s.records;
      s.checksum += r->id + static_cast<std::uint64_t>(r->ingress_time) +
                    r->path.size() + r->hop_departs.size();
    }
  }
  s.wall_seconds = exp::wall_seconds_since(t0);
  return s;
}

[[nodiscard]] std::uint64_t file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  return is ? static_cast<std::uint64_t>(is.tellg()) : 0;
}

// Pulls the committed baseline's serial packets/sec out of a
// BENCH_macro_replay.json: the number after "packets_per_sec": inside the
// "serial" object. Returns 0 when absent/unparseable.
[[nodiscard]] double baseline_serial_pps(const std::string& path) {
  std::ifstream is(path);
  if (!is) return 0.0;
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  const auto sp = text.find("\"serial\"");
  if (sp == std::string::npos) return 0.0;
  const char* key = "\"packets_per_sec\": ";
  const auto pp = text.find(key, sp);
  if (pp == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + pp + std::strlen(key), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const auto a = exp::args::parse(argc, argv);
  std::size_t threads = 4;
  std::string out_path = "BENCH_macro_replay.json";
  double min_speedup = 2.0;
  double max_residency = 0.5;
  double min_disk_speedup = 3.0;
  double max_workload_residency = 0.5;
  double max_workload_plateau = 1.1;
  std::string baseline_path;
  double min_baseline_ratio = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::strtod(argv[i] + 14, nullptr);
    } else if (std::strncmp(argv[i], "--max-residency=", 16) == 0) {
      max_residency = std::strtod(argv[i] + 16, nullptr);
    } else if (std::strncmp(argv[i], "--min-disk-speedup=", 19) == 0) {
      min_disk_speedup = std::strtod(argv[i] + 19, nullptr);
    } else if (std::strncmp(argv[i], "--max-workload-residency=", 25) == 0) {
      max_workload_residency = std::strtod(argv[i] + 25, nullptr);
    } else if (std::strncmp(argv[i], "--max-workload-plateau=", 23) == 0) {
      max_workload_plateau = std::strtod(argv[i] + 23, nullptr);
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--min-baseline-ratio=", 21) == 0) {
      min_baseline_ratio = std::strtod(argv[i] + 21, nullptr);
    }
  }
  if (threads == 0) threads = 4;
  const std::uint64_t budget = a.budget(60'000);
  const unsigned hw = std::thread::hardware_concurrency();

  // The 4-mode candidate sweep of every shard: the paper's main replayer,
  // its preemptive variant, and the two simpler headers of §2.3.
  const std::vector<core::replay_mode> modes = {
      core::replay_mode::lstf,
      core::replay_mode::lstf_preemptive,
      core::replay_mode::edf,
      core::replay_mode::priority_output_time,
  };

  // Table-1-flavored shard set spanning every fan-out axis: topology,
  // utilization, original scheduler, seed — and, since the traffic stack
  // became composable, the source kind (the identity gate then covers the
  // paced/closed-loop/incast generators too).
  struct task_spec {
    exp::topo_kind topo;
    double util;
    core::sched_kind sched;
    std::uint64_t seed_offset;
    const char* workload;  // parse_workload name; nullptr = open-loop
  };
  const task_spec specs[] = {
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::random, 0, nullptr},
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::random, 1, nullptr},
      {exp::topo_kind::i2_default, 0.5, core::sched_kind::random, 0, nullptr},
      {exp::topo_kind::i2_default, 0.9, core::sched_kind::fifo, 0, nullptr},
      {exp::topo_kind::i2_1g_1g, 0.7, core::sched_kind::random, 0, nullptr},
      {exp::topo_kind::fattree, 0.7, core::sched_kind::random, 0, nullptr},
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::random, 0, "paced"},
      {exp::topo_kind::i2_default, 0.7, core::sched_kind::random, 0,
       "closed-loop"},
      {exp::topo_kind::fattree, 0.7, core::sched_kind::random, 0, "incast"},
  };
  std::vector<exp::shard_task> tasks;
  for (const auto& s : specs) {
    exp::shard_task t;
    t.sc.topo = s.topo;
    t.sc.utilization = s.util;
    t.sc.sched = s.sched;
    t.sc.seed = a.seed + s.seed_offset;
    t.sc.packet_budget = budget;
    if (s.workload != nullptr) {
      t.sc.workload_kind =
          traffic::parse_workload(s.workload, t.sc.workload_spec);
    }
    t.modes = modes;
    tasks.push_back(std::move(t));
  }

  std::printf("macro replay: %zu scenarios x %zu modes, %llu packets each, "
              "%zu threads (hw=%u)\n",
              tasks.size(), modes.size(),
              static_cast<unsigned long long>(budget), threads, hw);

  // keep_outcomes so the identity gate can compare per-packet results, not
  // just counters (outcome memory is ~40B per replayed packet, well within
  // bench budgets).
  exp::shard_options serial_opt;
  serial_opt.threads = 1;
  serial_opt.keep_outcomes = true;
  const auto t_serial = std::chrono::steady_clock::now();
  const auto serial = exp::run_sharded(tasks, serial_opt);
  const double serial_wall = exp::wall_seconds_since(t_serial);

  exp::shard_options sharded_opt;
  sharded_opt.threads = threads;
  sharded_opt.keep_outcomes = true;
  const auto t_sharded = std::chrono::steady_clock::now();
  const auto sharded = exp::run_sharded(tasks, sharded_opt);
  const double sharded_wall = exp::wall_seconds_since(t_sharded);

  // Work unit for the throughput trajectory: one replayed packet (each
  // recorded packet is replayed once per mode).
  std::uint64_t replayed = 0;
  for (const auto& r : serial) {
    replayed += r.trace_packets * r.replays.size();
  }
  const double serial_pps = static_cast<double>(replayed) / serial_wall;
  const double sharded_pps = static_cast<double>(replayed) / sharded_wall;
  const double speedup = sharded_pps / serial_pps;

  // Residency proxy: replay the bench's largest trace once with up-front
  // injection and once streaming, and compare pool/event high-water marks.
  // Streaming keeps O(in-flight) packets resident, so the comparison runs
  // where in-flight is genuinely small relative to the trace: the
  // datacenter fabric (microsecond propagation — WAN topologies keep a
  // bandwidth×delay product of thousands of packets on the wire no matter
  // how they are injected) with light fixed-size flows at moderate load
  // (the heavy-tailed open-loop elephants of the sweep above park most of
  // a short trace in one egress queue by construction).
  exp::scenario big_sc;
  big_sc.topo = exp::topo_kind::fattree;
  big_sc.utilization = 0.5;
  big_sc.sched = core::sched_kind::random;
  big_sc.seed = a.seed;
  big_sc.flows = exp::flow_dist_kind::fixed;
  big_sc.packet_budget = 2 * budget;  // the largest trace in this bench
  auto orig_big = exp::run_original(big_sc);  // sorted by the disk lane below
  core::replay_options ropt;
  ropt.mode = core::replay_mode::lstf;
  ropt.threshold_T = orig_big.threshold_T;
  ropt.keep_outcomes = false;
  const auto& topology = orig_big.topology;
  const auto builder = [&topology](net::network& n) {
    topo::populate(topology, n);
  };
  ropt.injection = core::injection_mode::upfront;
  const auto res_upfront = core::replay_trace(orig_big.trace, builder, ropt);
  ropt.injection = core::injection_mode::streaming;
  const auto res_stream = core::replay_trace(orig_big.trace, builder, ropt);
  const double residency_ratio =
      static_cast<double>(res_stream.peak_pool_packets) /
      static_cast<double>(res_upfront.peak_pool_packets);

  // --- workload lane: traffic-source kinds on the WAN scenario --------------
  // Same scenario (I2 at 70%, Random, heavy-tailed), four source kinds at
  // the base budget (perf-trajectory data), plus a 2x-budget original for
  // the three gated kinds so the plateau is measured, not assumed: a source
  // that reaches steady state has a residency curve that is flat in trace
  // length, not merely lower.
  struct workload_lane {
    const char* name;
    std::uint64_t trace_packets = 0;
    double original_wall = 0;
    double replay_wall = 0;
    std::uint64_t peak_pool = 0;
    std::uint64_t peak_pool_2x = 0;  // 0: not measured for this kind
    std::uint64_t flows_completed = 0;
    double frac_overdue = 0;
    double frac_overdue_beyond_T = 0;
  };
  const auto wan_scenario = [&](const char* wname, std::uint64_t pkts) {
    exp::scenario wsc;
    wsc.topo = exp::topo_kind::i2_default;
    wsc.utilization = 0.7;
    wsc.sched = core::sched_kind::random;
    wsc.seed = a.seed;
    wsc.packet_budget = pkts;
    wsc.workload_kind = traffic::parse_workload(wname, wsc.workload_spec);
    return wsc;
  };
  std::vector<workload_lane> lanes;
  for (const char* wname : {"open-loop", "paced", "closed-loop", "incast"}) {
    workload_lane l;
    l.name = wname;
    const auto t_orig = std::chrono::steady_clock::now();
    const auto worig = exp::run_original(wan_scenario(wname, budget));
    l.original_wall = exp::wall_seconds_since(t_orig);
    l.trace_packets = worig.trace.packets.size();
    l.peak_pool = worig.peak_pool_packets;
    l.flows_completed = worig.flows_completed;
    const auto t_rep = std::chrono::steady_clock::now();
    const auto wrep =
        exp::run_replay(worig, core::replay_mode::lstf, /*keep_outcomes=*/false);
    l.replay_wall = exp::wall_seconds_since(t_rep);
    l.frac_overdue = wrep.frac_overdue();
    l.frac_overdue_beyond_T = wrep.frac_overdue_beyond_T();
    if (std::strcmp(wname, "incast") != 0) {
      l.peak_pool_2x =
          exp::run_original(wan_scenario(wname, 2 * budget)).peak_pool_packets;
    }
    lanes.push_back(l);
  }
  const std::uint64_t open_loop_peak_2x = lanes[0].peak_pool_2x;

  // --- disk-replay lane: v1 text vs v2 binary -------------------------------
  // Same workload trace written in both formats; sorted once at "record
  // time" so the text file streams (the v2 file carries its own ingress
  // index and would not need it).
  net::sort_by_ingress(orig_big.trace);
  const std::string v1_path = "bench_macro_disk.v1.trace";
  const std::string v2_path = "bench_macro_disk.v2.trace";
  net::save_trace(v1_path, orig_big.trace);
  net::save_trace_v2(v2_path, orig_big.trace);
  const std::uint64_t v1_bytes = file_bytes(v1_path);
  const std::uint64_t v2_bytes = file_bytes(v2_path);

  // Ingestion: drain each reader with no simulation attached — the cost the
  // format itself imposes on replay, and the disk-speedup gate's metric
  // (parse throughput is deterministic single-threaded work; end-to-end
  // replay adds identical simulation cost to both lanes and dilutes the
  // format difference).
  ingest_stats text_ingest, bin_ingest;
  {
    net::trace_stream_reader reader(v1_path);
    text_ingest = drain(reader);
    net::trace_mmap_cursor cursor(v2_path);
    bin_ingest = drain(cursor);
  }
  if (text_ingest.checksum != bin_ingest.checksum ||
      text_ingest.records != bin_ingest.records) {
    std::fprintf(stderr, "FAIL: text and binary readers disagree on the "
                         "same trace's contents\n");
    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
    return 1;
  }
  const double text_ingest_pps =
      static_cast<double>(text_ingest.records) / text_ingest.wall_seconds;
  const double bin_ingest_pps =
      static_cast<double>(bin_ingest.records) / bin_ingest.wall_seconds;
  const double disk_speedup = bin_ingest_pps / text_ingest_pps;

  // End-to-end disk replay across every mode: text serial, binary serial,
  // binary sharded (each worker mmaps the same file; the kernel shares one
  // read-only copy). All three must be byte-identical.
  exp::disk_shard_task disk_task;
  disk_task.topology = orig_big.topology;
  disk_task.threshold_T = orig_big.threshold_T;
  disk_task.modes = modes;
  exp::shard_options disk_serial_opt;
  disk_serial_opt.threads = 1;
  disk_serial_opt.keep_outcomes = true;
  exp::shard_options disk_sharded_opt;
  disk_sharded_opt.threads = threads;
  disk_sharded_opt.keep_outcomes = true;

  disk_task.trace_path = v1_path;
  const auto t_text = std::chrono::steady_clock::now();
  const auto disk_text = exp::run_sharded_disk(disk_task, disk_serial_opt);
  const double text_replay_wall = exp::wall_seconds_since(t_text);
  disk_task.trace_path = v2_path;
  const auto t_bin = std::chrono::steady_clock::now();
  const auto disk_bin = exp::run_sharded_disk(disk_task, disk_serial_opt);
  const double bin_replay_wall = exp::wall_seconds_since(t_bin);
  const auto disk_bin_sharded =
      exp::run_sharded_disk(disk_task, disk_sharded_opt);

  bool disk_same = disk_text.size() == disk_bin.size() &&
                   disk_text.size() == disk_bin_sharded.size();
  for (std::size_t m = 0; disk_same && m < disk_text.size(); ++m) {
    disk_same = same_result(disk_text[m].result, disk_bin[m].result) &&
                same_result(disk_text[m].result, disk_bin_sharded[m].result);
  }
  const std::uint64_t disk_replayed =
      orig_big.trace.packets.size() * modes.size();
  const double text_replay_pps =
      static_cast<double>(disk_replayed) / text_replay_wall;
  const double bin_replay_pps =
      static_cast<double>(disk_replayed) / bin_replay_wall;
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());

  // --- report --------------------------------------------------------------
  std::printf("\n%-22s %6s %-12s %9s", "scenario", "util", "workload",
              "packets");
  for (const auto m : modes) std::printf(" %16s", core::to_string(m));
  std::printf("\n");
  for (const auto& r : serial) {
    std::printf("%-22s %5.0f%% %-12s %9llu", exp::to_string(r.sc.topo),
                r.sc.utilization * 100,
                traffic::to_string(r.sc.workload_kind),
                static_cast<unsigned long long>(r.trace_packets));
    for (const auto& rep : r.replays) {
      std::printf("   %6.4f/%7.4f", rep.result.frac_overdue(),
                  rep.result.frac_overdue_beyond_T());
    }
    std::printf("\n");
  }
  std::printf("\nworkload lane (I2 @70%% Random, per-kind original + LSTF "
              "replay; peak@2x gates the plateau):\n");
  std::printf("  %-14s %9s %14s %14s %12s %12s %10s\n", "workload", "packets",
              "orig pkt/s", "replay pkt/s", "peak pool", "peak@2x",
              "vs open@2x");
  for (const auto& l : lanes) {
    std::printf("  %-14s %9llu %14.0f %14.0f %12llu", l.name,
                static_cast<unsigned long long>(l.trace_packets),
                static_cast<double>(l.trace_packets) / l.original_wall,
                static_cast<double>(l.trace_packets) / l.replay_wall,
                static_cast<unsigned long long>(l.peak_pool));
    if (l.peak_pool_2x != 0) {
      std::printf(" %12llu %9.3fx\n",
                  static_cast<unsigned long long>(l.peak_pool_2x),
                  static_cast<double>(l.peak_pool_2x) /
                      static_cast<double>(open_loop_peak_2x));
    } else {
      std::printf(" %12s %10s\n", "-", "-");
    }
  }
  std::printf("\nserial : %7.2fs  %12.0f packets/sec\n", serial_wall,
              serial_pps);
  std::printf("sharded: %7.2fs  %12.0f packets/sec  (%.2fx, %zu threads)\n",
              sharded_wall, sharded_pps, speedup, threads);
  const double committed_pps =
      baseline_path.empty() ? 0.0 : baseline_serial_pps(baseline_path);
  if (committed_pps > 0.0) {
    std::printf("vs committed baseline (%s): %.2fx serial packets/sec\n",
                baseline_path.c_str(), serial_pps / committed_pps);
  } else if (!baseline_path.empty()) {
    std::printf("baseline %s: no serial packets/sec found, comparison "
                "skipped\n",
                baseline_path.c_str());
  }
  std::printf("residency (largest scenario, %llu packets): upfront peak "
              "%llu pkts / %llu event slots -> streaming peak %llu pkts / "
              "%llu event slots (%.4fx)\n",
              static_cast<unsigned long long>(orig_big.trace.packets.size()),
              static_cast<unsigned long long>(res_upfront.peak_pool_packets),
              static_cast<unsigned long long>(res_upfront.peak_event_slots),
              static_cast<unsigned long long>(res_stream.peak_pool_packets),
              static_cast<unsigned long long>(res_stream.peak_event_slots),
              residency_ratio);
  std::printf("\ndisk lane (%llu-packet trace):\n",
              static_cast<unsigned long long>(orig_big.trace.packets.size()));
  std::printf("  v1 text   %9llu bytes  ingest %12.0f packets/sec "
              "%8.1f MB/s   replay(4 modes) %12.0f packets/sec\n",
              static_cast<unsigned long long>(v1_bytes), text_ingest_pps,
              static_cast<double>(v1_bytes) / text_ingest.wall_seconds / 1e6,
              text_replay_pps);
  std::printf("  v2 binary %9llu bytes  ingest %12.0f packets/sec "
              "%8.1f MB/s   replay(4 modes) %12.0f packets/sec\n",
              static_cast<unsigned long long>(v2_bytes), bin_ingest_pps,
              static_cast<double>(v2_bytes) / bin_ingest.wall_seconds / 1e6,
              bin_replay_pps);
  std::printf("  binary ingest speedup %.2fx, end-to-end replay speedup "
              "%.2fx, results identical: %s\n",
              disk_speedup, bin_replay_pps / text_replay_pps,
              disk_same ? "yes" : "NO");

  // --- JSON trajectory -----------------------------------------------------
  const bool same = identical(serial, sharded);
  {
    std::ofstream out(out_path);
    out << "{\n  \"benchmark\": \"macro_replay\",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"hardware_concurrency\": " << hw << ",\n"
        << "  \"packet_budget\": " << budget << ",\n"
        << "  \"replayed_packets\": " << replayed << ",\n"
        << "  \"serial\": {\"wall_seconds\": " << serial_wall
        << ", \"packets_per_sec\": " << serial_pps << "},\n"
        << "  \"sharded\": {\"wall_seconds\": " << sharded_wall
        << ", \"packets_per_sec\": " << sharded_pps << "},\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"identical\": " << (same ? "true" : "false") << ",\n"
        << "  \"residency\": {\"trace_packets\": "
        << orig_big.trace.packets.size()
        << ", \"upfront_peak_packets\": " << res_upfront.peak_pool_packets
        << ", \"streaming_peak_packets\": " << res_stream.peak_pool_packets
        << ", \"upfront_peak_event_slots\": " << res_upfront.peak_event_slots
        << ", \"streaming_peak_event_slots\": " << res_stream.peak_event_slots
        << ", \"ratio\": " << residency_ratio << "},\n"
        << "  \"disk\": {\"trace_packets\": " << orig_big.trace.packets.size()
        << ", \"text_bytes\": " << v1_bytes
        << ", \"binary_bytes\": " << v2_bytes
        << ",\n    \"text_ingest\": {\"wall_seconds\": "
        << text_ingest.wall_seconds
        << ", \"packets_per_sec\": " << text_ingest_pps
        << ", \"mb_per_sec\": "
        << static_cast<double>(v1_bytes) / text_ingest.wall_seconds / 1e6
        << "},\n    \"binary_ingest\": {\"wall_seconds\": "
        << bin_ingest.wall_seconds
        << ", \"packets_per_sec\": " << bin_ingest_pps
        << ", \"mb_per_sec\": "
        << static_cast<double>(v2_bytes) / bin_ingest.wall_seconds / 1e6
        << "},\n    \"ingest_speedup\": " << disk_speedup
        << ",\n    \"text_replay_packets_per_sec\": " << text_replay_pps
        << ", \"binary_replay_packets_per_sec\": " << bin_replay_pps
        << ", \"replay_speedup\": " << bin_replay_pps / text_replay_pps
        << ", \"identical\": " << (disk_same ? "true" : "false") << "},\n"
        << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const auto& l = lanes[i];
      out << "    {\"kind\": \"" << l.name
          << "\", \"trace_packets\": " << l.trace_packets
          << ", \"original_packets_per_sec\": "
          << static_cast<double>(l.trace_packets) / l.original_wall
          << ", \"replay_packets_per_sec\": "
          << static_cast<double>(l.trace_packets) / l.replay_wall
          << ", \"peak_pool_packets\": " << l.peak_pool
          << ", \"peak_pool_packets_2x\": " << l.peak_pool_2x
          << ", \"flows_completed\": " << l.flows_completed
          << ", \"frac_overdue\": " << l.frac_overdue
          << ", \"frac_overdue_beyond_T\": " << l.frac_overdue_beyond_T
          << "}" << (i + 1 < lanes.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const auto& r = serial[i];
      out << "    {\"topo\": \"" << exp::to_string(r.sc.topo)
          << "\", \"utilization\": " << r.sc.utilization
          << ", \"scheduler\": \"" << core::to_string(r.sc.sched)
          << "\", \"seed\": " << r.sc.seed
          << ", \"workload\": \"" << traffic::to_string(r.sc.workload_kind)
          << "\", \"original_peak_pool_packets\": "
          << r.original_peak_pool_packets
          << ", \"trace_packets\": " << r.trace_packets << ", \"modes\": [";
      for (std::size_t m = 0; m < r.replays.size(); ++m) {
        const auto& rep = r.replays[m];
        out << (m ? ", " : "") << "{\"mode\": \""
            << core::to_string(rep.mode)
            << "\", \"frac_overdue\": " << rep.result.frac_overdue()
            << ", \"frac_overdue_beyond_T\": "
            << rep.result.frac_overdue_beyond_T() << "}";
      }
      out << "]}" << (i + 1 < serial.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  // --- gates ---------------------------------------------------------------
  int failures = 0;
  if (!same) {
    std::fprintf(stderr,
                 "FAIL: sharded results differ from the serial run "
                 "(determinism violation)\n");
    ++failures;
  }
  if (res_stream.peak_pool_packets >
      static_cast<std::uint64_t>(
          max_residency *
          static_cast<double>(res_upfront.peak_pool_packets))) {
    std::fprintf(stderr,
                 "FAIL: streaming peak residency %llu > %.2f x upfront peak "
                 "%llu\n",
                 static_cast<unsigned long long>(res_stream.peak_pool_packets),
                 max_residency,
                 static_cast<unsigned long long>(
                     res_upfront.peak_pool_packets));
    ++failures;
  }
  // Steady-state gates (lanes: 0 open-loop, 1 paced, 2 closed-loop; incast
  // is open-loop fan-in by design and carries no bound). The closed-loop
  // source must genuinely plateau — flat residency in trace length, far
  // below the open-loop baseline. Paced emission is gated directionally:
  // strictly below the baseline, because on a WAN the bandwidth×delay
  // product floors what any open-ended source can achieve (a paced elephant
  // is still almost entirely on the wire at once when propagation delay
  // rivals its serialization span — measured, not a guess).
  const auto& paced_lane = lanes[1];
  const auto& closed_lane = lanes[2];
  if (static_cast<double>(closed_lane.peak_pool_2x) >
      max_workload_plateau * static_cast<double>(closed_lane.peak_pool)) {
    std::fprintf(stderr,
                 "FAIL: closed-loop residency did not plateau: %llu at 2x "
                 "budget vs %llu at 1x (> %.2fx) — outstanding bound leak?\n",
                 static_cast<unsigned long long>(closed_lane.peak_pool_2x),
                 static_cast<unsigned long long>(closed_lane.peak_pool),
                 max_workload_plateau);
    ++failures;
  }
  if (static_cast<double>(closed_lane.peak_pool_2x) >
      max_workload_residency * static_cast<double>(open_loop_peak_2x)) {
    std::fprintf(stderr,
                 "FAIL: closed-loop peak residency %llu > %.2f x open-loop "
                 "baseline %llu — WAN scenario did not reach steady state\n",
                 static_cast<unsigned long long>(closed_lane.peak_pool_2x),
                 max_workload_residency,
                 static_cast<unsigned long long>(open_loop_peak_2x));
    ++failures;
  }
  if (static_cast<double>(paced_lane.peak_pool_2x) >
      0.97 * static_cast<double>(open_loop_peak_2x)) {
    std::fprintf(stderr,
                 "FAIL: paced peak residency %llu is not below the open-loop "
                 "baseline %llu — pacing is not shaping emission\n",
                 static_cast<unsigned long long>(paced_lane.peak_pool_2x),
                 static_cast<unsigned long long>(open_loop_peak_2x));
    ++failures;
  }
  if (!disk_same) {
    std::fprintf(stderr,
                 "FAIL: binary disk replay differs from the text path "
                 "(format round-trip or cursor bug)\n");
    ++failures;
  }
  if (disk_speedup < min_disk_speedup) {
    std::fprintf(stderr,
                 "FAIL: binary replay ingestion %.2fx text reader < %.2fx "
                 "bar\n",
                 disk_speedup, min_disk_speedup);
    ++failures;
  }
  // Skip only on a *known* single-core box; hardware_concurrency() == 0
  // means "unknown", and an unknown machine must still enforce the bar
  // (CI runners report their count correctly).
  if (hw != 1 && threads >= 2) {
    if (speedup < min_speedup) {
      std::fprintf(stderr, "FAIL: sharded speedup %.2fx < %.2fx bar\n",
                   speedup, min_speedup);
      ++failures;
    }
  } else {
    std::printf("speedup gate SKIPPED: %u hardware thread(s), %zu bench "
                "threads — a wall-clock speedup is not physically "
                "measurable here\n",
                hw, threads);
  }
  // Perf smoke vs the committed heap-kernel baseline: catches an event-
  // kernel (or other hot-path) swap that tanks end-to-end replay. The
  // ratio is loose because the committed numbers came from one machine;
  // the tight kernel bars live in bench_micro_queues where both kernels
  // run in the same binary.
  if (committed_pps > 0.0 && serial_pps < min_baseline_ratio * committed_pps) {
    std::fprintf(stderr,
                 "FAIL: serial %.0f packets/sec < %.2f x committed baseline "
                 "%.0f — event-kernel or replay hot-path regression\n",
                 serial_pps, min_baseline_ratio, committed_pps);
    ++failures;
  }
  if (failures == 0) {
    std::printf("all macro-replay gates passed\n");
  }
  return failures == 0 ? 0 : 1;
}
