// Ablation (§2.3(7)): how close is each candidate UPS to universal?
//
// Replays the same default-scenario schedule with every candidate: LSTF,
// preemptive LSTF, EDF (must equal LSTF), simple priorities with
// priority = o(p), and the omniscient initialization (must be perfect).
//
// Usage: bench_ablation_priority_replay [--packets=N] [--seed=N] [--scale=F]
#include <cstdio>
#include <iostream>

#include "exp/args.h"
#include "exp/replay_experiment.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace ups;
  const auto a = exp::args::parse(argc, argv);

  exp::scenario sc;
  sc.seed = a.seed;
  sc.packet_budget = a.budget(100'000);
  sc.record_hops = true;  // omniscient replay needs per-hop times

  std::printf("Candidate-UPS comparison on %s (%llu packets)\n\n",
              sc.label().c_str(),
              static_cast<unsigned long long>(sc.packet_budget));
  const auto orig = exp::run_original(sc);

  stats::table t({"Replay mode", "Frac overdue", "Frac overdue > T"});
  for (const auto mode :
       {core::replay_mode::lstf, core::replay_mode::lstf_preemptive,
        core::replay_mode::edf, core::replay_mode::priority_output_time,
        core::replay_mode::omniscient}) {
    const auto res = exp::run_replay(orig, mode);
    t.add_row({core::to_string(mode),
               stats::table::fmt_frac(res.frac_overdue()),
               stats::table::fmt_frac(res.frac_overdue_beyond_T())});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n");
  t.print(std::cout);
  std::printf("\nPaper §2.3(7): simple priorities 21%% overdue / 20.69%% >T"
              " vs LSTF 0.21%% / 0.02%%.\nEDF must match LSTF exactly"
              " (Appendix E); omniscient must be 0 (Appendix B).\n");
  return 0;
}
