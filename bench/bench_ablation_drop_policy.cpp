// Ablation (§3 design choice): LSTF's buffer policy.
//
// §3 states "packets with the highest slack are dropped when the buffer is
// full". This bench isolates that choice: the same TCP/FCT workload runs
// over LSTF with (a) drop-highest-slack and (b) plain drop-tail, at several
// buffer sizes, comparing mean FCT and drop counts.
//
// Usage: bench_ablation_drop_policy [--packets=N] [--seed=N] [--scale=F]
#include <cstdio>
#include <iostream>

#include "core/heuristics.h"
#include "core/lstf.h"
#include "exp/args.h"
#include "exp/scenario.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "stats/table.h"
#include "traffic/size_dist.h"
#include "traffic/workload.h"
#include "transport/tcp.h"

namespace {

using namespace ups;

struct run_result {
  double mean_fct_s = 0.0;
  std::uint64_t drops = 0;
  std::uint64_t flows = 0;
};

run_result run(bool drop_highest_slack, std::int64_t buffer_bytes,
               std::uint64_t packets, std::uint64_t seed) {
  const auto topology = exp::make_topology(exp::topo_kind::i2_default);
  sim::simulator sim;
  net::network net(sim);
  topo::populate(topology, net);
  net.set_buffer_bytes(buffer_bytes);
  net.set_scheduler_factory([drop_highest_slack](const net::port_info& info) {
    return std::make_unique<core::lstf>(info.port_id, info.rate,
                                        /*preemptive=*/false,
                                        drop_highest_slack);
  });
  net.build();

  const auto dist = traffic::default_heavy_tailed();
  traffic::workload_config wcfg;
  wcfg.utilization = 0.7;
  wcfg.seed = seed;
  wcfg.packet_budget = packets;
  const auto wl = traffic::generate(net, topology, *dist, wcfg);

  transport::tcp_manager tcp(net, {});
  core::fct_slack slack_policy;
  for (const auto& f : wl.flows) {
    const sim::time_ps s = slack_policy.slack_for(f.size_bytes);
    tcp.start_flow(f.id, f.src, f.dst, f.size_bytes, f.start,
                   [s](net::packet& p) { p.slack = s; });
  }
  sim.run();

  run_result out;
  double total = 0;
  for (const auto& c : tcp.completions()) {
    total += sim::to_seconds(c.fct());
    ++out.flows;
  }
  out.mean_fct_s = out.flows ? total / static_cast<double>(out.flows) : 0.0;
  out.drops = net.stats().dropped;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto a = ups::exp::args::parse(argc, argv);
  const std::uint64_t packets = a.budget(40'000);

  std::printf("LSTF drop-policy ablation (TCP FCT workload, I2 @70%%, "
              "%llu packets)\n\n",
              static_cast<unsigned long long>(packets));
  ups::stats::table t({"buffer", "policy", "mean FCT (s)", "drops",
                       "flows"});
  for (const std::int64_t buf :
       {30'000LL, 60'000LL, 120'000LL, 500'000LL}) {
    for (const bool highest : {false, true}) {
      const auto r = run(highest, buf, packets, a.seed);
      t.add_row({std::to_string(buf / 1000) + " KB",
                 highest ? "drop-highest-slack" : "drop-tail",
                 ups::stats::table::fmt(r.mean_fct_s, 4),
                 std::to_string(r.drops), std::to_string(r.flows)});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n");
  t.print(std::cout);
  std::printf("\nDropping the highest-slack packet sheds load from the\n"
              "flows that can best afford it (large flows under the FCT\n"
              "slack), so mean FCT should be at or below drop-tail's,\n"
              "with the gap widening as buffers shrink.\n");
  return 0;
}
