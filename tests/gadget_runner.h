// Shared test helper: executes a theory gadget's prescribed schedule with
// the omniscient executor and returns the recorded trace.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/registry.h"
#include "core/replay.h"
#include "net/network.h"
#include "net/trace.h"
#include "sim/simulator.h"
#include "topo/gadgets.h"

namespace ups::testing {

struct gadget_run {
  topo::topology topology;
  net::trace trace;
  std::map<std::string, std::uint64_t> id_of;  // packet name -> id
  std::map<std::uint64_t, sim::time_ps> expected_out;
};

inline gadget_run run_gadget_original(const topo::gadget& g) {
  gadget_run out;
  out.topology = g.topo;

  sim::simulator sim;
  net::network net(sim);
  topo::populate(g.topo, net);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(
      core::make_factory(core::sched_kind::omniscient, 1));
  net.build();
  net::trace_recorder recorder(net, /*with_hop_times=*/true);

  std::uint64_t next_id = 1;
  for (const auto& gp : g.packets) {
    net::packet_ptr p = net::make_packet();
    p->id = next_id++;
    p->flow_id = p->id;
    p->size_bytes = gp.size_bytes;
    p->src_host = g.topo.host_id(gp.src_host);
    p->dst_host = g.topo.host_id(gp.dst_host);
    for (const auto r : gp.path) p->path.push_back(r);
    p->hop_deadlines = gp.hop_starts;  // prescribed per-hop service order
    p->record_hops = true;
    out.id_of[gp.name] = p->id;
    out.expected_out[p->id] = gp.expected_out;
    net::packet* raw = p.release();
    sim.schedule_at(gp.inject_at, [&net, raw] {
      net.send_from_host(net::packet_ptr(raw));
    });
  }
  sim.run();
  out.trace = recorder.take();
  return out;
}

inline core::replay_result replay_gadget(const gadget_run& run,
                                         core::replay_mode mode) {
  core::replay_options opt;
  opt.mode = mode;
  opt.threshold_T = 0;
  opt.keep_outcomes = true;
  const auto& topology = run.topology;
  return core::replay_trace(
      run.trace, [&topology](net::network& n) { topo::populate(topology, n); },
      opt);
}

}  // namespace ups::testing
