// Tests for the statistics utilities.
#include <gtest/gtest.h>

#include <sstream>

#include "stats/summary.h"
#include "stats/table.h"

namespace ups::stats {
namespace {

TEST(sample_set, mean_and_quantiles) {
  sample_set s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 0.5);
  EXPECT_NEAR(s.quantile(0.99), 99.0, 1.0);
}

TEST(sample_set, quantile_interpolates) {
  sample_set s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(sample_set, cdf_and_ccdf) {
  sample_set s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.cdf_at(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.ccdf_at(9.0), 0.1);
}

TEST(sample_set, cdf_points_are_monotone) {
  sample_set s;
  for (int i = 0; i < 1000; ++i) s.add((i * 37) % 1000);
  const auto pts = s.cdf_points(21);
  ASSERT_EQ(pts.size(), 21u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].value, pts[i - 1].value);
    EXPECT_GT(pts[i].fraction, pts[i - 1].fraction);
  }
}

TEST(sample_set, empty_behaviour) {
  sample_set s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_THROW(static_cast<void>(s.quantile(0.5)), std::logic_error);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.0);
}

TEST(sample_set, add_after_quantile_resorts) {
  sample_set s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(jain, perfectly_fair) {
  EXPECT_DOUBLE_EQ(jain_index({5, 5, 5, 5}), 1.0);
}

TEST(jain, perfectly_unfair) {
  // One of n users gets everything: J = 1/n.
  EXPECT_DOUBLE_EQ(jain_index({10, 0, 0, 0}), 0.25);
}

TEST(jain, known_intermediate_value) {
  // J = (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  EXPECT_NEAR(jain_index({1, 2, 3}), 36.0 / 42.0, 1e-12);
}

TEST(jain, degenerate_inputs) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0, 0, 0}), 1.0);
}

TEST(table, renders_aligned_rows) {
  table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta-long", "2.5"});
  std::ostringstream os;
  t.print(os);
  const auto out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta-long"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
}

TEST(table, row_width_mismatch_throws) {
  table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(table, formatting_helpers) {
  EXPECT_EQ(table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(table::fmt_frac(0.0), "0.0");
  EXPECT_EQ(table::fmt_frac(0.0021), "0.0021");
  EXPECT_EQ(table::fmt_frac(0.00002), "2.0e-05");
  EXPECT_EQ(table::fmt_pct(0.5, 0), "50%");
}

}  // namespace
}  // namespace ups::stats
