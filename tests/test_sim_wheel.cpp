// Timing-wheel kernel verification.
//
// The simulator's ordering structure moved from a 4-ary flat-key heap to a
// hierarchical timing wheel; the contract (generation-stamped handles,
// early/normal/late phase ordering, cancel-by-generation, deterministic
// (time, phase, seq) dispatch) must be indistinguishable. The old kernel
// survives verbatim as sim::heap_simulator (sim/heap_kernel.h) and the fuzz
// suite here drives both kernels with one randomized script — schedules
// across bucket and wheel-span boundaries, same-instant phase ties,
// cancel/reschedule churn, stale cancels, zero-delay chains, run_until
// peeks — asserting identical dispatch order and identical observable state
// after every operation. Deterministic regressions cover wheel cascades at
// bucket-boundary times, overflow-heap migration order, run_instant
// batching, and schedule_in saturation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/heap_kernel.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ups::sim {
namespace {

// ---------------------------------------------------------------------------
// Randomized kernel-equivalence fuzz: one op script, two kernels, lockstep.

enum class op_kind {
  schedule,
  cancel_live,
  cancel_stale,
  run_next,
  run_until,
  run_instant,
};

struct op {
  op_kind kind = op_kind::run_next;
  int phase = 1;             // 0 early, 1 normal, 2 late
  time_ps dt = 0;            // schedule/run_until: delta from now
  time_ps child_dt = -1;     // >= 0: the fired callback schedules a child
  int child_phase = 1;
  std::size_t pick = 0;      // cancel target selector
  int count = 1;             // run_next burst size
};

struct dispatch {
  std::uint64_t token;
  time_ps at;
  bool operator==(const dispatch&) const = default;
};

template <class Kernel>
class driver {
 public:
  std::vector<dispatch> log;

  void apply(const op& o) {
    switch (o.kind) {
      case op_kind::schedule:
        schedule(o.phase, heap_simulator::future_time(k_.now(), o.dt),
                 o.child_dt, o.child_phase);
        break;
      case op_kind::cancel_live: {
        prune_fired();
        if (live_.empty()) break;
        auto& victim = live_[o.pick % live_.size()];
        k_.cancel(victim.second);
        stale_.push_back(victim.second);
        victim = live_.back();
        live_.pop_back();
        break;
      }
      case op_kind::cancel_stale:
        if (!stale_.empty()) k_.cancel(stale_[o.pick % stale_.size()]);
        break;
      case op_kind::run_next:
        for (int i = 0; i < o.count; ++i) {
          if (!k_.run_next()) break;
        }
        break;
      case op_kind::run_until:
        k_.run_until(heap_simulator::future_time(k_.now(), o.dt));
        break;
      case op_kind::run_instant:
        run_one_instant();
        break;
    }
  }

  void drain() { k_.run(); }
  [[nodiscard]] time_ps now() const { return k_.now(); }
  [[nodiscard]] std::size_t pending() const { return k_.pending(); }
  [[nodiscard]] std::uint64_t processed() const {
    return k_.events_processed();
  }

 private:
  // heap_simulator has no run_instant; emulate it as "run events while the
  // clock does not advance past the first one" so both kernels can replay
  // the same script. (simulator::run_instant's batch semantics are covered
  // by dedicated tests below; here both kernels take this portable path.)
  void run_one_instant() {
    if (!k_.run_next()) return;
    const time_ps t = k_.now();
    while (k_.pending() > 0) {
      const std::size_t before = log.size();
      // Peek by running: any event at a later instant still runs, which is
      // fine for equivalence — both kernels do the identical thing.
      if (!k_.run_next()) break;
      if (log.size() > before && log.back().at != t) break;
    }
  }

  void schedule(int phase, time_ps at, time_ps child_dt, int child_phase) {
    if (at < k_.now()) return;  // both drivers skip identically
    const std::uint64_t token = next_token_++;
    auto cb = [this, token, child_dt, child_phase] {
      fire(token, child_dt, child_phase);
    };
    typename Kernel::handle h;
    switch (phase) {
      case 0: h = k_.schedule_early(at, cb); break;
      case 2: h = k_.schedule_late(at, cb); break;
      default: h = k_.schedule_at(at, cb); break;
    }
    live_.emplace_back(token, h);
  }

  void fire(std::uint64_t token, time_ps child_dt, int child_phase) {
    log.push_back(dispatch{token, k_.now()});
    fired_.insert(token);
    if (child_dt >= 0) {
      schedule(child_phase, heap_simulator::future_time(k_.now(), child_dt),
               -1, 1);
    }
  }

  void prune_fired() {
    for (std::size_t i = 0; i < live_.size();) {
      if (fired_.count(live_[i].first) != 0) {
        live_[i] = live_.back();
        live_.pop_back();
      } else {
        ++i;
      }
    }
  }

  Kernel k_;
  std::uint64_t next_token_ = 0;
  std::vector<std::pair<std::uint64_t, typename Kernel::handle>> live_;
  std::vector<typename Kernel::handle> stale_;
  std::unordered_set<std::uint64_t> fired_;
};

// Deltas biased toward wheel stress points: same-instant ties, the 256-slot
// level boundaries (2^8, 2^16, 2^24), off-by-one straddles of each, the
// wheel span edge (2^48), beyond-span overflow traffic, and saturation.
time_ps pick_dt(std::mt19937_64& rng) {
  static constexpr time_ps table[] = {
      0,
      0,
      1,
      3,
      17,
      200,
      255,
      256,
      257,
      1000,
      65535,
      65536,
      65537,
      262144,
      (1ll << 24) - 1,
      1ll << 24,
      (1ll << 24) + 1,
      1ll << 30,
      (1ll << 48) - 2,
      1ll << 48,
      (1ll << 48) + 3,
      1ll << 52,
      std::numeric_limits<time_ps>::max(),
  };
  const auto r = rng() % 100;
  if (r < 70) {
    return table[rng() % (sizeof(table) / sizeof(table[0]))];
  }
  if (r < 90) return static_cast<time_ps>(rng() % 10'000);
  return static_cast<time_ps>(rng() % (1ull << 50));
}

std::vector<op> make_script(std::uint64_t seed, std::size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<op> script;
  script.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    op o;
    const auto r = rng() % 100;
    if (r < 45) {
      o.kind = op_kind::schedule;
      const auto p = rng() % 10;
      o.phase = p < 2 ? 0 : (p < 8 ? 1 : 2);
      o.dt = pick_dt(rng);
      if (rng() % 4 == 0) {
        static constexpr time_ps child_dts[] = {0, 0, 1, 7, 64, 100};
        o.child_dt = child_dts[rng() % 6];
        o.child_phase = static_cast<int>(rng() % 3);
      }
    } else if (r < 57) {
      o.kind = op_kind::cancel_live;
      o.pick = rng();
    } else if (r < 62) {
      o.kind = op_kind::cancel_stale;
      o.pick = rng();
    } else if (r < 85) {
      o.kind = op_kind::run_next;
      o.count = static_cast<int>(1 + rng() % 4);
    } else if (r < 95) {
      o.kind = op_kind::run_until;
      // Mostly short hops (peeks that land between events), sometimes far.
      o.dt = static_cast<time_ps>(rng() % (rng() % 2 ? 50 : 500'000));
    } else {
      o.kind = op_kind::run_instant;
    }
    script.push_back(o);
  }
  return script;
}

void run_equivalence(std::uint64_t seed, std::size_t ops) {
  const auto script = make_script(seed, ops);
  driver<simulator> wheel;
  driver<heap_simulator> heap;
  for (std::size_t i = 0; i < script.size(); ++i) {
    wheel.apply(script[i]);
    heap.apply(script[i]);
    ASSERT_EQ(wheel.now(), heap.now()) << "op " << i << " seed " << seed;
    ASSERT_EQ(wheel.pending(), heap.pending()) << "op " << i;
    ASSERT_EQ(wheel.log.size(), heap.log.size()) << "op " << i;
    if (!wheel.log.empty()) {
      ASSERT_EQ(wheel.log.back(), heap.log.back()) << "op " << i;
    }
  }
  wheel.drain();
  heap.drain();
  EXPECT_EQ(wheel.log, heap.log) << "seed " << seed;
  EXPECT_EQ(wheel.now(), heap.now());
  EXPECT_EQ(wheel.processed(), heap.processed());
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(heap.pending(), 0u);
}

TEST(sim_wheel_equivalence, fuzz_seed_1) { run_equivalence(1, 4000); }
TEST(sim_wheel_equivalence, fuzz_seed_2) { run_equivalence(0xdecafbad, 4000); }
TEST(sim_wheel_equivalence, fuzz_seed_3) { run_equivalence(20260730, 4000); }

// ---------------------------------------------------------------------------
// Deterministic wheel regressions.

TEST(sim_wheel, cascade_dispatches_in_time_order_across_bucket_boundaries) {
  // Times straddling every wheel-level boundary (levels are 256 slots wide:
  // 2^8, 2^16, 2^24, ... ps), scheduled shuffled; the cascade path must
  // reproduce exact ascending order.
  simulator s;
  const std::vector<time_ps> times = {
      255,         256,       257,        65535,    65536,
      65537,       (1ll << 24) - 1, 1ll << 24, (1ll << 24) + 1,
      (1ll << 32) - 1, 1ll << 32, (1ll << 40) + 5,
      (1ll << 48) - 1, 1ll << 48,
      (1ll << 48) + 1,  // past the wheel span: overflow heap
      1ll << 52,
  };
  std::vector<time_ps> shuffled = times;
  std::mt19937_64 rng(7);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  std::vector<time_ps> seen;
  for (const time_ps t : shuffled) {
    s.schedule_at(t, [&seen, &s] { seen.push_back(s.now()); });
  }
  s.run();
  std::vector<time_ps> expected = times;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(seen, expected);
}

TEST(sim_wheel, same_instant_run_at_bucket_boundary_keeps_phase_order) {
  // A full early/normal/late tie exactly at the level-1 boundary (t = 256,
  // placed at level 1 and reached through a cascade), must still dispatch
  // phase-then-seq.
  simulator s;
  std::vector<int> order;
  s.schedule_late(256, [&] { order.push_back(5); });
  s.schedule_at(256, [&] {
    order.push_back(3);
    s.schedule_in(0, [&] { order.push_back(4); });  // joins the live run
  });
  s.schedule_early(256, [&] { order.push_back(1); });
  s.schedule_at(256, [&] { order.push_back(3); });
  s.schedule_early(256, [&] { order.push_back(2); });
  s.schedule_at(1, [&] { order.push_back(0); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 3, 4, 5}));
}

TEST(sim_wheel, overflow_events_migrate_into_wheel_in_order) {
  // e2 is beyond the wheel span when scheduled (parks in the overflow
  // heap); after the wheel advances, an event scheduled between the wheel
  // population and the parked one must still run in global time order.
  simulator s;
  std::vector<int> order;
  s.schedule_at(100, [&] {
    order.push_back(1);
    s.schedule_at((1ll << 50) - 1, [&] { order.push_back(2); });
  });
  s.schedule_at(1ll << 50, [&] { order.push_back(3); });
  s.schedule_at((1ll << 50) + 5, [&] { order.push_back(4); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(s.now(), (1ll << 50) + 5);
}

TEST(sim_wheel, run_until_peek_then_earlier_schedule_keeps_order) {
  // run_until stops between events; a later schedule landing between the
  // stop point and the already-known next event must not be lost or
  // reordered (the wheel clock may never overshoot the run_until horizon).
  simulator s;
  std::vector<int> order;
  s.schedule_at(1000, [&] { order.push_back(2); });
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
  s.schedule_at(600, [&] { order.push_back(1); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), 1000);
}

TEST(sim_wheel, run_until_boundary_peeks_across_levels) {
  // One event per wheel level (256-slot levels: boundaries at 2^8, 2^16,
  // 2^24) plus the overflow heap; horizons land just short of each.
  simulator s;
  std::vector<time_ps> seen;
  for (const time_ps t : {255ll, 256ll, 65536ll, 1ll << 24, 1ll << 48}) {
    s.schedule_at(t, [&] { seen.push_back(s.now()); });
  }
  s.run_until(255);
  EXPECT_EQ(seen.size(), 1u);
  s.run_until(256);
  EXPECT_EQ(seen.size(), 2u);
  s.run_until(60000);
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(s.now(), 60000);
  // Lands between the peek horizon and the already-pending event at 2^16.
  s.schedule_at(61000, [&] { seen.push_back(s.now()); });
  s.run_until(1ll << 24);
  EXPECT_EQ(seen,
            (std::vector<time_ps>{255, 256, 61000, 65536, 1ll << 24}));
  s.run();
  EXPECT_EQ(seen.back(), 1ll << 48);
}

TEST(sim_wheel, run_instant_batches_one_instant_including_chained) {
  simulator s;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    s.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  s.schedule_at(10, [&] {
    s.schedule_in(0, [&] { order.push_back(9); });  // same-instant chain
  });
  s.schedule_at(20, [&] { order.push_back(100); });
  EXPECT_EQ(s.run_instant(), 5u);  // 4 scheduled + 1 chained, one batch
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
  EXPECT_EQ(s.now(), 10);
  EXPECT_EQ(s.run_instant(), 1u);
  EXPECT_EQ(order.back(), 100);
  EXPECT_EQ(s.run_instant(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(sim_wheel, run_instant_skips_fully_cancelled_instants) {
  simulator s;
  auto h = s.schedule_at(10, [] {});
  bool ran = false;
  s.schedule_at(20, [&] { ran = true; });
  s.cancel(h);
  EXPECT_EQ(s.run_instant(), 1u);  // consumed the cancelled 10, ran the 20
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), 20);
}

TEST(sim_wheel, schedule_in_saturates_instead_of_overflowing) {
  // Regression: now + dt used to overflow (UB) for far-future relative
  // timers, e.g. an idle retransmit clock at WAN scale. The sum now
  // saturates to the end of time: schedulable, ordered after everything
  // finite, still cancellable.
  simulator s;
  s.schedule_at(1000, [] {});
  s.run();
  ASSERT_EQ(s.now(), 1000);
  std::vector<int> order;
  auto far = s.schedule_in(std::numeric_limits<time_ps>::max(),
                           [&] { order.push_back(2); });
  s.schedule_at(kTimeInfinity, [&] { order.push_back(1); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // saturated sorts last
  EXPECT_EQ(s.now(), std::numeric_limits<time_ps>::max());

  // And cancellation of a saturated timer keeps accounting exact.
  order.clear();
  far = s.schedule_in(std::numeric_limits<time_ps>::max() - 1,
                      [&] { order.push_back(3); });
  EXPECT_EQ(s.pending(), 1u);
  s.cancel(far);
  EXPECT_EQ(s.pending(), 0u);
  s.run();
  EXPECT_TRUE(order.empty());
}

TEST(sim_wheel, heap_reference_saturates_identically) {
  heap_simulator s;
  s.schedule_at(5, [] {});
  s.run();
  bool ran = false;
  s.schedule_in(std::numeric_limits<time_ps>::max(), [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), std::numeric_limits<time_ps>::max());
}

TEST(sim_wheel, dense_timer_churn_stays_exact) {
  // Adversarial-jamming-style dense timers: thousands of events packed
  // into adjacent instants with heavy cancel/reschedule churn; the wheel's
  // accounting and ordering must stay exact. (Mirrors the workload shape
  // of Böhm et al.'s jamming sweeps, cheap under bucketed time.)
  simulator s;
  std::mt19937_64 rng(99);
  std::vector<simulator::handle> handles;
  std::uint64_t fired = 0;
  time_ps last = 0;
  for (int round = 0; round < 2000; ++round) {
    for (int j = 0; j < 4; ++j) {
      handles.push_back(s.schedule_in(static_cast<time_ps>(rng() % 16), [&] {
        EXPECT_GE(s.now(), last);
        last = s.now();
        ++fired;
      }));
    }
    if (rng() % 2 == 0) {
      s.cancel(handles[rng() % handles.size()]);
    }
    s.run_next();
  }
  s.run();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(fired, s.events_processed());
}

}  // namespace
}  // namespace ups::sim
