// Tests for the §3 slack-initialization heuristics.
#include <gtest/gtest.h>

#include "core/heuristics.h"

namespace ups::core {
namespace {

TEST(fct_slack, monotone_in_flow_size) {
  fct_slack h;
  EXPECT_LT(h.slack_for(1'460), h.slack_for(2'920));
  EXPECT_LT(h.slack_for(2'920), h.slack_for(100'000));
  EXPECT_LT(h.slack_for(100'000), h.slack_for(3'000'000));
}

TEST(fct_slack, size_classes_separated_by_d) {
  fct_slack h;
  // Adjacent packet-count classes differ by exactly D = 1 s, which dwarfs
  // any accumulated queueing, so cross-class LSTF order is SJF order.
  EXPECT_EQ(h.slack_for(2'920) - h.slack_for(1'460), sim::kSecond);
  // Same packet count: same class.
  EXPECT_EQ(h.slack_for(1'000), h.slack_for(1'460));
}

TEST(fct_slack, no_overflow_at_cap) {
  fct_slack h;
  const auto huge = h.slack_for(UINT64_MAX / 2);
  EXPECT_GT(huge, 0);
  EXPECT_LT(huge, INT64_MAX / 4) << "headroom for key arithmetic";
}

TEST(tail_slack, uniform_value) {
  tail_slack h;
  EXPECT_EQ(h.slack_for(), sim::kSecond);
  tail_slack h2(5 * sim::kMillisecond);
  EXPECT_EQ(h2.slack_for(), 5 * sim::kMillisecond);
}

TEST(fairness_slack, first_packet_gets_zero) {
  fairness_slack vc(sim::kGbps);
  EXPECT_EQ(vc.next(1, 1500, 0), 0);
}

TEST(fairness_slack, backlogged_flow_accumulates_service_gap) {
  // A flow sending 1500 B packets back-to-back at time 0 against
  // r_est = 1 Gbps: packet i owes i x 12 us of virtual-clock credit.
  fairness_slack vc(sim::kGbps);
  EXPECT_EQ(vc.next(1, 1500, 0), 0);
  EXPECT_EQ(vc.next(1, 1500, 0), 12 * sim::kMicrosecond);
  EXPECT_EQ(vc.next(1, 1500, 0), 24 * sim::kMicrosecond);
}

TEST(fairness_slack, paced_flow_at_rest_keeps_zero_slack) {
  // Sending exactly at r_est: the inter-arrival gap cancels the service
  // term, slack stays 0 (the flow is at its fair rate).
  fairness_slack vc(sim::kGbps);
  sim::time_ps t = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(vc.next(1, 1500, t), 0);
    t += 12 * sim::kMicrosecond;
  }
}

TEST(fairness_slack, slow_flow_never_accumulates) {
  // Slower than r_est: slack clamps at zero (max(0, ...)).
  fairness_slack vc(sim::kGbps);
  sim::time_ps t = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(vc.next(1, 1500, t), 0);
    t += 24 * sim::kMicrosecond;  // half rate
  }
}

TEST(fairness_slack, flows_tracked_independently) {
  fairness_slack vc(sim::kGbps);
  EXPECT_EQ(vc.next(1, 1500, 0), 0);
  EXPECT_EQ(vc.next(1, 1500, 0), 12 * sim::kMicrosecond);
  EXPECT_EQ(vc.next(2, 1500, 0), 0) << "new flow starts fresh";
}

TEST(fairness_slack, smaller_rest_means_larger_slack) {
  fairness_slack fast(sim::kGbps);
  fairness_slack slow(sim::kGbps / 100);
  (void)fast.next(1, 1500, 0);
  (void)slow.next(1, 1500, 0);
  EXPECT_LT(fast.next(1, 1500, 0), slow.next(1, 1500, 0));
}

TEST(fairness_slack, weighted_fairness_via_per_flow_rest) {
  // A flow given 2x the r_est accumulates half the slack: it is allowed
  // twice the rate before being deprioritized (§3.3's weighted extension).
  fairness_slack vc1(sim::kGbps);
  fairness_slack vc2(2 * sim::kGbps);
  (void)vc1.next(1, 1500, 0);
  (void)vc2.next(1, 1500, 0);
  EXPECT_EQ(vc1.next(1, 1500, 0), 2 * vc2.next(1, 1500, 0));
}

}  // namespace
}  // namespace ups::core
