// Flow-control subsystem: spec parsing, the per-link credit/pause ledger,
// head-of-line blocking at governed ports, lossless conservation across
// every scheduler family and dispatch backend, the stall watchdog's typed
// deadlock/persistent-stall errors, buffer admission edge cases, stall
// records surviving every trace format round-trip, and
// replay-under-backpressure semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/registry.h"
#include "core/replay.h"
#include "exp/dispatch/backend.h"
#include "exp/replay_experiment.h"
#include "exp/scenario.h"
#include "net/flow_control.h"
#include "net/network.h"
#include "net/trace.h"
#include "net/trace_binary.h"
#include "net/trace_io.h"
#include "replay_test_util.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "topo/topology.h"

namespace ups::net {
namespace {

using ups::testing::expect_identical_results;

// --- spec parsing ----------------------------------------------------------

TEST(flow_spec, parse_and_label_round_trip) {
  const flow_spec off = flow_spec::parse("");
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.label(), "");
  EXPECT_FALSE(flow_spec::parse("none").enabled());

  const flow_spec c = flow_spec::parse("credit:30000");
  EXPECT_EQ(c.kind, flow_kind::credit);
  EXPECT_EQ(c.credit_bytes, 30000);
  EXPECT_LT(c.return_delay, 0);  // defaulted to the link's own delay
  EXPECT_EQ(c.label(), "credit:30000");
  EXPECT_EQ(flow_spec::parse(c.label()).credit_bytes, c.credit_bytes);

  const flow_spec cr = flow_spec::parse("credit:30000,5");
  EXPECT_EQ(cr.return_delay, 5 * sim::kMicrosecond);
  EXPECT_EQ(cr.label(), "credit:30000,5");

  const flow_spec p = flow_spec::parse("pause:30000,15000");
  EXPECT_EQ(p.kind, flow_kind::pause);
  EXPECT_EQ(p.pause_high, 30000);
  EXPECT_EQ(p.pause_low, 15000);
  EXPECT_EQ(p.label(), "pause:30000,15000");
}

TEST(flow_spec, rejects_malformed_input) {
  // Budgets below one MTU could never admit a full-size packet; a pause
  // high <= low can never resume. Both die at parse, not as a mysterious
  // wedge mid-run.
  EXPECT_THROW((void)flow_spec::parse("credit:"), std::invalid_argument);
  EXPECT_THROW((void)flow_spec::parse("credit:100"), std::invalid_argument);
  EXPECT_THROW((void)flow_spec::parse("credit:-3000"), std::invalid_argument);
  EXPECT_THROW((void)flow_spec::parse("credit:30000,-1"),
               std::invalid_argument);
  EXPECT_THROW((void)flow_spec::parse("credit:30000,1,2"),
               std::invalid_argument);
  EXPECT_THROW((void)flow_spec::parse("pause:30000"), std::invalid_argument);
  EXPECT_THROW((void)flow_spec::parse("pause:1000,500"),
               std::invalid_argument);
  EXPECT_THROW((void)flow_spec::parse("pause:30000,30000"),
               std::invalid_argument);
  EXPECT_THROW((void)flow_spec::parse("pause:30000,0"),
               std::invalid_argument);
  EXPECT_THROW((void)flow_spec::parse("pause:15000,30000"),
               std::invalid_argument);
  EXPECT_THROW((void)flow_spec::parse("xon:1"), std::invalid_argument);
  EXPECT_THROW((void)flow_spec::parse("credit:zap"), std::invalid_argument);
}

// --- per-link ledger -------------------------------------------------------

TEST(link_flow, credit_mode_gates_on_occupancy) {
  link_flow lf(flow_spec::parse("credit:3000"), sim::kMicrosecond);
  EXPECT_TRUE(lf.governed());
  EXPECT_EQ(lf.return_delay(), sim::kMicrosecond);  // defaulted to link delay
  EXPECT_TRUE(lf.can_send(1500));
  lf.consume(1500);
  EXPECT_TRUE(lf.can_send(1500));
  lf.consume(1500);
  EXPECT_FALSE(lf.can_send(1500)) << "budget exhausted";
  EXPECT_TRUE(lf.release(1500));  // credit mode always re-kicks
  EXPECT_TRUE(lf.can_send(1500));
  EXPECT_EQ(lf.occupancy(), 1500);
}

TEST(link_flow, explicit_rtt_overrides_link_delay) {
  link_flow lf(flow_spec::parse("credit:3000,5"), sim::kMicrosecond);
  EXPECT_EQ(lf.return_delay(), 5 * sim::kMicrosecond);
}

TEST(link_flow, pause_mode_hysteresis) {
  link_flow lf(flow_spec::parse("pause:4500,1500"), sim::kMicrosecond);
  EXPECT_TRUE(lf.can_send(1500));
  lf.consume(1500);
  lf.consume(1500);
  EXPECT_TRUE(lf.can_send(1500)) << "below high: still sending";
  lf.consume(1500);  // occupancy hits high -> XOFF
  EXPECT_TRUE(lf.paused());
  EXPECT_FALSE(lf.can_send(1500));
  EXPECT_FALSE(lf.release(1500)) << "3000 > low: still paused";
  EXPECT_FALSE(lf.can_send(1500));
  EXPECT_TRUE(lf.release(1500)) << "1500 <= low: XON crossing reported";
  EXPECT_FALSE(lf.paused());
  EXPECT_TRUE(lf.can_send(1500));
}

// --- network integration ---------------------------------------------------

packet_ptr make_packet(std::uint64_t id, node_id src, node_id dst) {
  packet_ptr p = net::make_packet();
  p->id = id;
  p->flow_id = id;
  p->size_bytes = 1500;
  p->src_host = src;
  p->dst_host = dst;
  return p;
}

TEST(flow_network, set_flow_after_build_throws) {
  sim::simulator sim;
  network net(sim);
  auto topo = topo::line(2, sim::kGbps, sim::kMicrosecond);
  topo::populate(topo, net);
  net.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  net.build();
  EXPECT_THROW(net.set_flow(flow_spec::parse("credit:3000")),
               std::logic_error);
}

TEST(flow_network, every_scheduler_family_conserves_packets_losslessly) {
  // A tight credit budget (one packet in flight per governed link, return
  // latency > packet time) forces stalls on a plain line — and because
  // backpressure parks packets instead of dropping them, every scheduler
  // family must deliver every injected packet: injected == delivered,
  // dropped == 0, with the stall ledger balanced (every block resumed).
  for (int k = 0; k <= static_cast<int>(core::sched_kind::omniscient); ++k) {
    const auto kind = static_cast<core::sched_kind>(k);
    sim::simulator sim;
    network net(sim);
    auto topo = topo::line(3, sim::kGbps, sim::kMicrosecond);
    topo::populate(topo, net);
    net.set_buffer_bytes(0);
    net.set_scheduler_factory(core::make_factory(kind, 1, &net));
    net.set_flow(flow_spec::parse("credit:1500"));
    net.build();
    const auto h0 = topo.host_id(0);
    const auto h1 = topo.host_id(1);
    for (int i = 0; i < 30; ++i) {
      net.send_from_host(make_packet(i + 1, h0, h1));
    }
    sim.run();
    const auto& st = net.stats();
    const char* name = core::to_string(kind);
    EXPECT_EQ(st.injected, 30u) << name;
    EXPECT_EQ(st.delivered, 30u) << name;
    EXPECT_EQ(st.dropped, 0u) << name;
    EXPECT_GT(st.flow_blocks, 0u) << name << ": the budget never bit";
    EXPECT_EQ(st.flow_blocks, st.flow_resumes) << name;
    EXPECT_GT(st.flow_stall_time, 0) << name;
    std::uint64_t pauses = 0;
    std::uint64_t resumes = 0;
    sim::time_ps stalled = 0;
    for (const auto& pt : net.ports()) {
      pauses += pt->stats().pauses;
      resumes += pt->stats().resumes;
      stalled += pt->stats().stalled_time;
    }
    EXPECT_EQ(pauses, st.flow_blocks) << name;
    EXPECT_EQ(resumes, st.flow_resumes) << name;
    EXPECT_EQ(stalled, st.flow_stall_time) << name;
  }
}

TEST(flow_network, blocked_head_is_not_overtaken_by_better_rank) {
  // Head-of-line gadget: p2 parks on the credit-starved core link; p3
  // arrives behind it with a far better (smaller) LSTF slack. A scheduler
  // consulted at resume time would send p3 first — but the blocked head
  // holds its position, so egress order stays 1, 2, 3.
  sim::simulator sim;
  network net(sim);
  auto topo = topo::line(2, sim::kGbps, sim::kMicrosecond);
  topo::populate(topo, net);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(core::make_factory(core::sched_kind::lstf, 1));
  net.set_flow(flow_spec::parse("credit:1500"));
  net.build();
  std::vector<std::uint64_t> egress_order;
  net.hooks().on_egress = [&](const packet& p, sim::time_ps) {
    egress_order.push_back(p.id);
  };
  const auto h0 = topo.host_id(0);
  const auto h1 = topo.host_id(1);
  // Staggered so the host NIC forwards them in id order (p1 is already
  // transmitting when p2/p3 arrive); p2 then parks on the core link and p3
  // queues behind it before p1's credit returns.
  const sim::time_ps send_at[] = {0, 13 * sim::kMicrosecond,
                                  14 * sim::kMicrosecond};
  for (int i = 0; i < 3; ++i) {
    sim.schedule_at(send_at[i], [&, i] {
      packet_ptr p = make_packet(i + 1, h0, h1);
      p->slack = i == 2 ? 0 : 1'000'000'000;  // p3 is the most urgent
      net.send_from_host(std::move(p));
    });
  }
  sim.run();
  ASSERT_EQ(egress_order.size(), 3u);
  EXPECT_EQ(egress_order[0], 1u);
  EXPECT_EQ(egress_order[1], 2u) << "urgent p3 overtook the blocked head";
  EXPECT_EQ(egress_order[2], 3u);
  // The stall landed on the governed core port and was charged to p2/p3.
  const auto& core_port = net.port_between(topo.router_id(0),
                                           topo.router_id(1));
  EXPECT_GT(core_port.stats().pauses, 0u);
  EXPECT_GT(core_port.stats().stalled_time, 0);
}

TEST(flow_network, credit_cycle_deadlock_is_detected_not_hung) {
  // Two routers, one packet looping A->B->A, one B->A->B, one credit each
  // way: A's packet parks at B waiting for the B->A credit the other
  // packet holds, and vice versa. No credit return is in flight, so no
  // future event can resolve it — the watchdog must throw the typed
  // deadlock error (naming the wait-for cycle) instead of hanging or
  // silently draining the event queue.
  sim::simulator sim;
  network net(sim);
  const node_id ra = net.add_router("A");
  const node_id rb = net.add_router("B");
  const node_id ha = net.add_host("hA");
  const node_id hb = net.add_host("hB");
  net.add_link(ha, ra, sim::kGbps, sim::kMicrosecond);
  net.add_link(hb, rb, sim::kGbps, sim::kMicrosecond);
  net.add_link(ra, rb, sim::kGbps, sim::kMicrosecond);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  net.set_flow(flow_spec::parse("credit:1500"));
  net.build();

  packet_ptr p1 = make_packet(1, ha, ha);
  p1->path = {ra, rb, ra};
  packet_ptr p2 = make_packet(2, hb, hb);
  p2->path = {rb, ra, rb};
  net.send_from_host(std::move(p1));
  net.send_from_host(std::move(p2));
  try {
    sim.run();
    FAIL() << "deadlocked run completed";
  } catch (const flow_deadlock_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("wait-for cycle"), std::string::npos) << msg;
    EXPECT_NE(msg.find("A"), std::string::npos) << msg;
    EXPECT_NE(msg.find("B"), std::string::npos) << msg;
  }
}

TEST(flow_network, oversize_packet_vs_budget_is_a_persistent_stall) {
  // A 3000-byte packet against a 1500-byte credit budget can never send:
  // one blocked port, no cycle, no returns in flight. The watchdog's hard
  // cap must surface the wedge as the typed persistent-stall error.
  sim::simulator sim;
  network net(sim);
  auto topo = topo::line(2, sim::kGbps, sim::kMicrosecond);
  topo::populate(topo, net);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  net.set_flow(flow_spec::parse("credit:1500"));
  net.build();
  packet_ptr p = make_packet(1, topo.host_id(0), topo.host_id(1));
  p->size_bytes = 3000;
  net.send_from_host(std::move(p));
  EXPECT_THROW(sim.run(), flow_stall_error);
}

// --- buffer admission edge cases -------------------------------------------

TEST(flow_admission, nonpositive_buffer_means_unlimited) {
  sim::simulator sim;
  network net(sim);
  auto topo = topo::line(2, sim::kGbps, sim::kMicrosecond);
  topo::populate(topo, net);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  net.build();
  const auto h0 = topo.host_id(0);
  const auto h1 = topo.host_id(1);
  for (int i = 0; i < 64; ++i) net.send_from_host(make_packet(i + 1, h0, h1));
  sim.run();
  EXPECT_EQ(net.stats().delivered, 64u);
  EXPECT_EQ(net.stats().dropped, 0u);
}

TEST(flow_admission, packet_larger_than_finite_buffer_drops_at_idle_port) {
  // The buffer is idle (zero queued bytes) yet the packet still cannot be
  // admitted: 1500 > 1000 means no eviction could ever make room, so the
  // arriving packet itself tail-drops.
  sim::simulator sim;
  network net(sim);
  auto topo = topo::line(2, sim::kGbps, sim::kMicrosecond);
  topo::populate(topo, net);
  net.set_buffer_bytes(1000);
  net.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  net.build();
  std::uint64_t drops = 0;
  net.hooks().on_drop = [&](const packet&, node_id, sim::time_ps,
                            drop_kind kind) {
    EXPECT_EQ(kind, drop_kind::buffer);
    ++drops;
  };
  net.send_from_host(make_packet(1, topo.host_id(0), topo.host_id(1)));
  sim.run();
  EXPECT_EQ(drops, 1u);
  EXPECT_EQ(net.stats().delivered, 0u);
  EXPECT_EQ(net.stats().dropped, 1u);
}

TEST(flow_admission, set_buffer_bytes_after_build_throws) {
  sim::simulator sim;
  network net(sim);
  auto topo = topo::line(2, sim::kGbps, sim::kMicrosecond);
  topo::populate(topo, net);
  net.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  net.build();
  EXPECT_THROW(net.set_buffer_bytes(3000), std::logic_error);
}

// --- stall records across trace formats ------------------------------------

exp::original_run flowed_original(const char* flow, std::uint64_t budget) {
  exp::scenario sc;
  sc.topo = exp::topo_kind::i2_default;
  sc.utilization = 0.7;
  sc.sched = core::sched_kind::random;
  sc.seed = 7;
  sc.packet_budget = budget;
  sc.flow = flow_spec::parse(flow);
  return exp::run_original(sc);
}

void expect_same_stall_records(const trace& a, const trace& b) {
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    const auto& x = a.packets[i];
    const auto& y = b.packets[i];
    ASSERT_EQ(x.id, y.id);
    EXPECT_EQ(x.stall_hop, y.stall_hop) << "packet " << x.id;
    EXPECT_EQ(x.stall_count, y.stall_count) << "packet " << x.id;
    EXPECT_EQ(x.stall_time, y.stall_time) << "packet " << x.id;
    EXPECT_EQ(x.egress_time, y.egress_time) << "packet " << x.id;
  }
}

trace load_via_cursor(const std::string& path) {
  trace t;
  const auto cur = open_trace_cursor(path);
  while (const packet_record* r = cur->next()) t.packets.push_back(*r);
  return t;
}

TEST(flow_trace, stall_records_survive_every_format_round_trip) {
  auto orig = flowed_original("credit:30000", 3000);
  sort_by_ingress(orig.trace);
  std::uint64_t recorded_stalls = 0;
  for (const auto& r : orig.trace.packets) {
    recorded_stalls += r.stalled() ? 1 : 0;
  }
  ASSERT_GT(recorded_stalls, 0u)
      << "a twenty-packet credit budget at 70% load must stall someone";

  const std::string base = ::testing::TempDir() + "/ups_flow_rt";
  const std::string v1 = base + ".v1.trace";
  const std::string v2 = base + ".v2.trace";
  const std::string v3 = base + ".v3.trace";
  save_trace(v1, orig.trace);
  save_trace_v2(v2, orig.trace);
  save_trace_v3(v3, orig.trace);
  EXPECT_TRUE(trace_file_has_stall_records(v1));
  EXPECT_TRUE(trace_file_has_stall_records(v2));
  EXPECT_TRUE(trace_file_has_stall_records(v3));

  expect_same_stall_records(orig.trace, load_via_cursor(v1));
  expect_same_stall_records(orig.trace, load_via_cursor(v2));
  expect_same_stall_records(orig.trace, load_via_cursor(v3));
  std::remove(v1.c_str());
  std::remove(v2.c_str());
  std::remove(v3.c_str());
}

TEST(flow_trace, stall_free_traces_keep_the_narrow_layout) {
  // An ungoverned original must keep writing exactly the pre-backpressure
  // layout: no v1 suffix, no v2 trailer, 14 v3 columns — the sniffers see
  // nothing. (CI additionally gates byte-identity against a fixture.)
  exp::scenario sc;
  sc.topo = exp::topo_kind::i2_default;
  sc.utilization = 0.7;
  sc.sched = core::sched_kind::random;
  sc.seed = 7;
  sc.packet_budget = 1200;
  auto orig = exp::run_original(sc);
  sort_by_ingress(orig.trace);
  const std::string base = ::testing::TempDir() + "/ups_flow_clean";
  const std::string v1 = base + ".v1.trace";
  const std::string v2 = base + ".v2.trace";
  const std::string v3 = base + ".v3.trace";
  save_trace(v1, orig.trace);
  save_trace_v2(v2, orig.trace);
  save_trace_v3(v3, orig.trace);
  EXPECT_FALSE(trace_file_has_stall_records(v1));
  EXPECT_FALSE(trace_file_has_stall_records(v2));
  EXPECT_FALSE(trace_file_has_stall_records(v3));
  {
    trace_v3_cursor cur(v3, trace_access::random);
    EXPECT_EQ(cur.column_count(), kTraceV3ColumnCount);
  }
  std::remove(v1.c_str());
  std::remove(v2.c_str());
  std::remove(v3.c_str());
}

// --- replay-under-backpressure ---------------------------------------------

TEST(flow_replay, recorded_stalls_are_reenacted_and_conserved) {
  auto orig = flowed_original("credit:30000", 3000);
  std::uint64_t recorded_stalls = 0;
  for (const auto& r : orig.trace.packets) {
    recorded_stalls += r.stalled() ? 1 : 0;
  }
  ASSERT_GT(recorded_stalls, 0u);

  const auto rep =
      exp::run_replay(orig, core::replay_mode::lstf, /*keep_outcomes=*/true);
  // Lossless conservation through replay: every recorded packet egresses.
  EXPECT_EQ(rep.dropped, 0u);
  EXPECT_EQ(rep.total, orig.trace.packets.size());
  // The recorded hold is re-enacted: a stalled packet cannot egress before
  // its ingress plus its recorded stalled time.
  std::size_t checked = 0;
  for (const auto& r : orig.trace.packets) {
    if (!r.stalled()) continue;
    for (const auto& o : rep.outcomes) {
      if (o.id != r.id) continue;
      EXPECT_GE(o.replay_out, r.ingress_time + r.stall_time)
          << "packet " << r.id;
      ++checked;
      break;
    }
  }
  EXPECT_EQ(checked, recorded_stalls);
}

TEST(flow_replay, malformed_stall_hop_is_rejected) {
  exp::scenario sc;
  sc.topo = exp::topo_kind::i2_default;
  sc.utilization = 0.7;
  sc.sched = core::sched_kind::random;
  sc.seed = 7;
  sc.packet_budget = 600;
  auto orig = exp::run_original(sc);
  ASSERT_FALSE(orig.trace.packets.empty());
  auto& victim = orig.trace.packets.front();
  victim.stall_hop = static_cast<std::int32_t>(victim.path.size());
  victim.stall_count = 1;
  victim.stall_time = 1000;
  EXPECT_THROW((void)exp::run_replay(orig, core::replay_mode::lstf, false),
               std::invalid_argument);
}

// --- cross-backend determinism of the backpressured pipeline ---------------

TEST(flow_dispatch, governed_lanes_identical_across_serial_thread_process) {
  std::vector<exp::shard_task> tasks;
  // Budgets loose enough that the cyclic I2 topology backpressures without
  // wedging a whole credit cycle (a genuinely deadlocking budget is its own
  // test above, on a gadget built for it).
  for (const char* f : {"credit:30000", "credit:15000", "pause:30000,15000"}) {
    exp::shard_task t;
    t.sc.topo = exp::topo_kind::i2_default;
    t.sc.utilization = 0.7;
    t.sc.sched = core::sched_kind::random;
    t.sc.seed = 7;
    t.sc.packet_budget = 1200;
    t.sc.flow = flow_spec::parse(f);
    t.modes = {core::replay_mode::lstf, core::replay_mode::edf};
    tasks.push_back(std::move(t));
  }
  exp::shard_options opt;
  opt.keep_outcomes = true;
  const auto plan = exp::dispatch::job_plan::from_tasks(tasks, opt);
  const auto run_on = [&](exp::dispatch::backend_kind kind,
                          std::size_t workers) {
    exp::dispatch::backend_spec spec;
    spec.kind = kind;
    spec.workers = workers;
    auto rep = exp::dispatch::run(plan, spec);
    rep.throw_if_failed();
    return std::move(rep.results);
  };
  const auto serial = run_on(exp::dispatch::backend_kind::serial, 0);
  ASSERT_EQ(serial.size(), tasks.size());
  for (const auto& r : serial) {
    // Lossless lanes: every recorded packet replays to egress.
    for (const auto& rep : r.replays) {
      EXPECT_EQ(rep.result.dropped, 0u);
      EXPECT_EQ(rep.result.total, r.trace_packets);
    }
  }
  std::vector<std::vector<exp::shard_result>> others;
  others.push_back(run_on(exp::dispatch::backend_kind::thread, 4));
#if defined(__unix__) || defined(__APPLE__)
  others.push_back(run_on(exp::dispatch::backend_kind::process, 4));
#endif
  for (const auto& got : others) {
    ASSERT_EQ(got.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].trace_packets, got[i].trace_packets);
      ASSERT_EQ(serial[i].replays.size(), got[i].replays.size());
      for (std::size_t m = 0; m < serial[i].replays.size(); ++m) {
        expect_identical_results(serial[i].replays[m].result,
                                 got[i].replays[m].result);
      }
    }
  }
}

}  // namespace
}  // namespace ups::net
