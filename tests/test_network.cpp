// Integration tests for the store-and-forward network substrate: exact link
// timing, ingress/egress hooks, tmin, buffer drops, and forwarding.
#include <gtest/gtest.h>

#include <memory>

#include "core/registry.h"
#include "net/network.h"
#include "net/trace.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "topo/fattree.h"
#include "topo/internet2.h"
#include "topo/topology.h"

namespace ups::net {
namespace {

using core::make_factory;
using core::sched_kind;

packet_ptr make_packet(std::uint64_t id, node_id src, node_id dst,
                       std::uint32_t bytes) {
  packet_ptr p = net::make_packet();
  p->id = id;
  p->flow_id = id;
  p->size_bytes = bytes;
  p->src_host = src;
  p->dst_host = dst;
  return p;
}

struct fixture {
  sim::simulator sim;
  net::network net{sim};
  topo::topology topo;

  explicit fixture(topo::topology t, sched_kind k = sched_kind::fifo,
                   std::int64_t buffer = 0)
      : topo(std::move(t)) {
    topo::populate(topo, net);
    net.set_buffer_bytes(buffer);
    net.set_scheduler_factory(make_factory(k, 1, &net));
    net.build();
  }
};

TEST(network, single_hop_timing_is_exact) {
  // host -> r0 -> r1 -> host over 1 Gbps links with 1 us propagation.
  fixture f(topo::line(2, sim::kGbps, sim::kMicrosecond));
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);

  sim::time_ps ingress = -1;
  sim::time_ps egress = -1;
  f.net.hooks().on_ingress = [&](const packet&, sim::time_ps t) {
    ingress = t;
  };
  f.net.hooks().on_egress = [&](const packet&, sim::time_ps t) { egress = t; };

  f.net.send_from_host(make_packet(1, h0, h1, 1500));
  f.sim.run();

  // Host NIC: 12 us transmit + 1 us prop -> ingress (last bit) at 13 us.
  EXPECT_EQ(ingress, 13 * sim::kMicrosecond);
  // r0: 12 us transmit + 1 us prop + r1: 12 us transmit -> egress at 38 us.
  EXPECT_EQ(egress, 38 * sim::kMicrosecond);
  EXPECT_EQ(f.net.stats().delivered, 1u);
}

TEST(network, queueing_delay_accumulates_only_when_waiting) {
  fixture f(topo::line(2, sim::kGbps, sim::kMicrosecond));
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);

  std::vector<sim::time_ps> qdelays;
  f.net.hooks().on_egress = [&](const packet& p, sim::time_ps) {
    qdelays.push_back(p.queueing_delay);
  };
  // Two back-to-back packets: the second waits one transmission time at the
  // host NIC (and then nowhere else: downstream it is paced).
  f.net.send_from_host(make_packet(1, h0, h1, 1500));
  f.net.send_from_host(make_packet(2, h0, h1, 1500));
  f.sim.run();

  ASSERT_EQ(qdelays.size(), 2u);
  EXPECT_EQ(qdelays[0], 0);
  EXPECT_EQ(qdelays[1], 12 * sim::kMicrosecond);
}

TEST(network, tmin_matches_observed_uncongested_traversal) {
  fixture f(topo::line(4, sim::kGbps, 3 * sim::kMicrosecond));
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);

  sim::time_ps ingress = -1, egress = -1;
  f.net.hooks().on_ingress = [&](const packet&, sim::time_ps t) {
    ingress = t;
  };
  f.net.hooks().on_egress = [&](const packet&, sim::time_ps t) { egress = t; };

  auto p = make_packet(1, h0, h1, 1000);
  p->path = f.net.route(h0, h1);
  const auto tmin = f.net.tmin(*p, 0);
  f.net.send_from_host(std::move(p));
  f.sim.run();

  // In an empty network the traversal from ingress to egress equals tmin.
  EXPECT_EQ(egress - ingress, tmin);
}

TEST(network, inject_at_ingress_bypasses_host_link) {
  fixture f(topo::line(3, sim::kGbps, sim::kMicrosecond));
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);

  sim::time_ps ingress = -1;
  f.net.hooks().on_ingress = [&](const packet&, sim::time_ps t) {
    ingress = t;
  };
  auto p = make_packet(1, h0, h1, 1500);
  p->path = f.net.route(h0, h1);
  f.net.inject_at_ingress(std::move(p), 777 * sim::kMicrosecond);
  f.sim.run();
  EXPECT_EQ(ingress, 777 * sim::kMicrosecond);
}

TEST(network, drop_tail_on_full_buffer) {
  // Buffer sized for exactly two 1500 B packets; send four simultaneously.
  // Admission happens before the (deferred) service decision, so exactly
  // two packets are admitted and two drop.
  fixture f(topo::line(2, sim::kGbps, sim::kMicrosecond), sched_kind::fifo,
            3000);
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);
  int drops = 0;
  f.net.hooks().on_drop = [&](const packet&, node_id, sim::time_ps,
                              drop_kind) { ++drops; };
  for (int i = 0; i < 4; ++i) {
    f.net.send_from_host(make_packet(i + 1, h0, h1, 1500));
  }
  f.sim.run();
  EXPECT_EQ(drops, 2);
  EXPECT_EQ(f.net.stats().delivered, 2u);
}

TEST(network, buffer_admits_again_once_service_drains) {
  // Same buffer, but the packets arrive spaced by one transmission time:
  // the queue never exceeds its capacity and nothing drops.
  fixture f(topo::line(2, sim::kGbps, sim::kMicrosecond), sched_kind::fifo,
            3000);
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);
  int drops = 0;
  f.net.hooks().on_drop = [&](const packet&, node_id, sim::time_ps,
                              drop_kind) { ++drops; };
  for (int i = 0; i < 4; ++i) {
    auto p = make_packet(i + 1, h0, h1, 1500);
    p->path = f.net.route(h0, h1);
    f.net.inject_at_ingress(std::move(p),
                            i * 12 * sim::kMicrosecond);
  }
  f.sim.run();
  EXPECT_EQ(drops, 0);
  EXPECT_EQ(f.net.stats().delivered, 4u);
}

TEST(network, hosts_on_same_router_single_router_path) {
  topo::topology t = topo::line(1, sim::kGbps, sim::kMicrosecond, 2);
  fixture f(std::move(t));
  const auto h0 = f.topo.host_id(0);
  // Hosts alternate ends in line(); with 1 router both attach to router 0.
  const auto h1 = f.topo.host_id(1);
  const auto& path = f.net.route(h0, h1);
  EXPECT_EQ(path.size(), 1u);

  sim::time_ps egress = -1;
  f.net.hooks().on_egress = [&](const packet&, sim::time_ps t) { egress = t; };
  f.net.send_from_host(make_packet(1, h0, h1, 1500));
  f.sim.run();
  EXPECT_GT(egress, 0);
  EXPECT_EQ(f.net.stats().delivered, 1u);
}

TEST(network, trace_recorder_captures_schedule) {
  fixture f(topo::line(3, sim::kGbps, sim::kMicrosecond));
  net::trace_recorder rec(f.net, /*with_hop_times=*/false);
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);
  for (int i = 0; i < 5; ++i) {
    f.net.send_from_host(make_packet(i + 1, h0, h1, 1500));
  }
  f.sim.run();
  const auto tr = rec.take();
  ASSERT_EQ(tr.packets.size(), 5u);
  for (const auto& r : tr.packets) {
    EXPECT_GT(r.egress_time, r.ingress_time);
    EXPECT_EQ(r.path.size(), 3u);
    EXPECT_GE(r.ingress_time, 0);
  }
}

TEST(network, per_hop_departure_recording) {
  fixture f(topo::line(3, sim::kGbps, sim::kMicrosecond));
  net::trace_recorder rec(f.net, /*with_hop_times=*/true);
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);
  auto p = make_packet(1, h0, h1, 1500);
  p->record_hops = true;
  f.net.send_from_host(std::move(p));
  f.sim.run();
  const auto tr = rec.take();
  ASSERT_EQ(tr.packets.size(), 1u);
  ASSERT_EQ(tr.packets[0].hop_departs.size(), 3u);
  EXPECT_LT(tr.packets[0].hop_departs[0], tr.packets[0].hop_departs[1]);
  EXPECT_LT(tr.packets[0].hop_departs[1], tr.packets[0].hop_departs[2]);
  EXPECT_EQ(tr.packets[0].hop_departs[2], tr.packets[0].egress_time);
}

TEST(network, infinite_rate_port_transmits_instantly) {
  topo::topology t;
  t.name = "inf";
  t.routers = 2;
  t.core_links.push_back(topo::link_spec{0, 1, sim::kInfiniteRate, 0});
  t.hosts.push_back(topo::host_spec{0, sim::kInfiniteRate, 0});
  t.hosts.push_back(topo::host_spec{1, sim::kInfiniteRate, 0});
  fixture f(std::move(t));
  sim::time_ps egress = -1;
  f.net.hooks().on_egress = [&](const packet&, sim::time_ps tm) {
    egress = tm;
  };
  f.net.send_from_host(make_packet(1, f.topo.host_id(0), f.topo.host_id(1),
                                   125));
  f.sim.run();
  EXPECT_EQ(egress, 0);
}

// Differential test for the dense route table: the table filled at build()
// must reproduce, for every host pair, exactly what the old lazy cache
// computed — a fresh shortest_path over the router-only graph (weight =
// propagation delay + 1ps) between the two attachment routers.
void expect_routes_match_reference(topo::topology t, std::size_t stride = 1) {
  fixture f(std::move(t));
  routing_graph g(f.net.node_count());
  for (const auto& p : f.net.ports()) {
    if (f.net.is_router(p->from()) && f.net.is_router(p->to())) {
      g[p->from()].push_back(routing_edge{p->to(), p->prop_delay() + 1});
    }
  }
  for (std::size_t i = 0; i < f.topo.host_count(); i += stride) {
    for (std::size_t j = 0; j < f.topo.host_count(); j += stride) {
      const auto hi = f.topo.host_id(i);
      const auto hj = f.topo.host_id(j);
      const auto expected =
          shortest_path(g, f.net.attachment(hi), f.net.attachment(hj));
      ASSERT_FALSE(expected.empty());
      EXPECT_EQ(f.net.route(hi, hj), expected)
          << f.topo.name << " host " << i << " -> " << j;
    }
  }
}

TEST(network, route_table_matches_lazy_reference_line) {
  expect_routes_match_reference(
      topo::line(4, sim::kGbps, sim::kMicrosecond, 6));
}

TEST(network, route_table_matches_lazy_reference_parking_lot) {
  expect_routes_match_reference(
      topo::parking_lot(5, sim::kGbps, sim::kMicrosecond));
}

TEST(network, route_table_matches_lazy_reference_internet2) {
  expect_routes_match_reference(topo::internet2());
}

TEST(network, route_table_matches_lazy_reference_fattree) {
  // 128 hosts: a strided sample still covers intra-edge, intra-pod and
  // cross-pod pairs while keeping the reference Dijkstras cheap.
  expect_routes_match_reference(topo::fattree(), /*stride=*/5);
}

}  // namespace
}  // namespace ups::net
