// Tests for schedule-trace serialization: round-trips, error handling, and
// replaying a deserialized trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/registry.h"
#include "core/replay.h"
#include "net/network.h"
#include "net/trace.h"
#include "net/trace_io.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "traffic/size_dist.h"
#include "traffic/udp_app.h"
#include "traffic/workload.h"

namespace ups::net {
namespace {

struct recorded {
  topo::topology topology;
  trace tr;
};

recorded small_run(bool hop_times) {
  recorded out;
  out.topology = topo::dumbbell(3, 10 * sim::kGbps, sim::kGbps);
  sim::simulator sim;
  network net(sim);
  topo::populate(out.topology, net);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(
      core::make_factory(core::sched_kind::random, 5, &net));
  net.build();
  trace_recorder rec(net, hop_times);
  traffic::fixed_size dist(15'000);
  traffic::workload_config wcfg;
  wcfg.packet_budget = 800;
  auto wl = traffic::generate(net, out.topology, dist, wcfg);
  traffic::udp_app::options aopt;
  aopt.record_hops = hop_times;
  traffic::udp_app app(net, std::move(wl.flows), aopt);
  sim.run();
  out.tr = rec.take();
  return out;
}

void expect_equal(const trace& a, const trace& b) {
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    const auto& x = a.packets[i];
    const auto& y = b.packets[i];
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.flow_id, y.flow_id);
    EXPECT_EQ(x.seq_in_flow, y.seq_in_flow);
    EXPECT_EQ(x.size_bytes, y.size_bytes);
    EXPECT_EQ(x.src_host, y.src_host);
    EXPECT_EQ(x.dst_host, y.dst_host);
    EXPECT_EQ(x.ingress_time, y.ingress_time);
    EXPECT_EQ(x.egress_time, y.egress_time);
    EXPECT_EQ(x.queueing_delay, y.queueing_delay);
    EXPECT_EQ(x.flow_size_bytes, y.flow_size_bytes);
    EXPECT_EQ(x.path, y.path);
    EXPECT_EQ(x.hop_departs, y.hop_departs);
  }
}

TEST(trace_io, stream_round_trip) {
  const auto r = small_run(false);
  std::stringstream ss;
  write_trace(ss, r.tr);
  const auto back = read_trace(ss);
  expect_equal(r.tr, back);
}

TEST(trace_io, round_trip_preserves_hop_times) {
  const auto r = small_run(true);
  std::stringstream ss;
  write_trace(ss, r.tr);
  const auto back = read_trace(ss);
  expect_equal(r.tr, back);
  ASSERT_FALSE(back.packets.empty());
  EXPECT_FALSE(back.packets.front().hop_departs.empty());
}

TEST(trace_io, bad_magic_throws) {
  std::stringstream ss("not-a-trace\n0\n");
  EXPECT_THROW(static_cast<void>(read_trace(ss)), std::runtime_error);
}

TEST(trace_io, truncated_throws) {
  const auto r = small_run(false);
  std::stringstream ss;
  write_trace(ss, r.tr);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream cut(text);
  EXPECT_THROW(static_cast<void>(read_trace(cut)), std::runtime_error);
}

TEST(trace_io, file_round_trip_and_replay_equivalence) {
  const auto r = small_run(false);
  const std::string path = ::testing::TempDir() + "/ups_trace_test.txt";
  save_trace(path, r.tr);
  const auto back = load_trace(path);
  std::remove(path.c_str());

  // The deserialized trace must replay identically to the in-memory one.
  core::replay_options opt;
  opt.mode = core::replay_mode::lstf;
  opt.keep_outcomes = true;
  const auto& topology = r.topology;
  const auto builder = [&topology](network& n) { topo::populate(topology, n); };
  const auto res_a = core::replay_trace(r.tr, builder, opt);
  const auto res_b = core::replay_trace(back, builder, opt);
  ASSERT_EQ(res_a.outcomes.size(), res_b.outcomes.size());
  for (std::size_t i = 0; i < res_a.outcomes.size(); ++i) {
    EXPECT_EQ(res_a.outcomes[i].replay_out, res_b.outcomes[i].replay_out);
  }
}

TEST(trace_io, missing_file_throws) {
  EXPECT_THROW(static_cast<void>(load_trace("/nonexistent/ups.trace")),
               std::runtime_error);
}

TEST(trace_io, ingress_cursor_yields_sorted_records_without_copying) {
  const auto r = small_run(false);
  auto cur = r.tr.ingress_cursor();
  EXPECT_EQ(cur.size_hint(), r.tr.packets.size());
  sim::time_ps last = -1;
  std::size_t n = 0;
  while (const packet_record* rec = cur.next()) {
    EXPECT_GE(rec->ingress_time, last);
    last = rec->ingress_time;
    // The cursor views the trace's own records, it does not copy them.
    EXPECT_GE(rec, r.tr.packets.data());
    EXPECT_LT(rec, r.tr.packets.data() + r.tr.packets.size());
    ++n;
  }
  EXPECT_EQ(n, r.tr.packets.size());
}

TEST(trace_io, stream_reader_matches_batch_loader) {
  const auto r = small_run(true);
  std::stringstream ss;
  write_trace(ss, r.tr);
  trace_stream_reader reader(ss);
  EXPECT_EQ(reader.size_hint(), r.tr.packets.size());
  trace streamed;
  while (const packet_record* rec = reader.next()) {
    streamed.packets.push_back(*rec);
  }
  EXPECT_EQ(reader.read(), r.tr.packets.size());
  expect_equal(r.tr, streamed);
}

TEST(trace_io, stream_reader_bad_magic_throws) {
  std::stringstream ss("not-a-trace\n0\n");
  EXPECT_THROW(trace_stream_reader reader(ss), std::runtime_error);
}

TEST(trace_io, sorted_file_streams_straight_into_replay) {
  // The RocketFuel-scale workflow: sort once at record time, then replay
  // directly from disk through the stream reader — the full trace is never
  // materialized on the replay side.
  auto r = small_run(false);
  const auto& topology = r.topology;
  const auto builder = [&topology](network& n) { topo::populate(topology, n); };
  core::replay_options opt;
  opt.mode = core::replay_mode::lstf;
  opt.keep_outcomes = true;
  const auto res_mem = core::replay_trace(r.tr, builder, opt);

  sort_by_ingress(r.tr);
  const std::string path = ::testing::TempDir() + "/ups_trace_sorted.txt";
  save_trace(path, r.tr);
  trace_stream_reader reader(path);
  const auto res_stream = core::replay_trace(reader, builder, opt);
  std::remove(path.c_str());

  EXPECT_EQ(res_stream.total, res_mem.total);
  EXPECT_EQ(res_stream.overdue, res_mem.overdue);
  ASSERT_EQ(res_stream.outcomes.size(), res_mem.outcomes.size());
  for (std::size_t i = 0; i < res_mem.outcomes.size(); ++i) {
    EXPECT_EQ(res_stream.outcomes[i].id, res_mem.outcomes[i].id);
    EXPECT_EQ(res_stream.outcomes[i].replay_out,
              res_mem.outcomes[i].replay_out);
  }
}

TEST(trace_io, declared_count_mismatch_is_a_hard_error_in_both_readers) {
  // A header that declares fewer records than the file holds must throw in
  // both readers — the two would otherwise replay different schedules from
  // the same file (the batch loader stopping early, the stream reader
  // declaring EOF early), which is corruption, not slack.
  const auto r = small_run(false);
  ASSERT_GE(r.tr.packets.size(), 2u);
  std::stringstream ss;
  write_trace(ss, r.tr);
  std::string text = ss.str();
  const std::string want = std::to_string(r.tr.packets.size());
  const auto pos = text.find(want);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, want.size(), std::to_string(r.tr.packets.size() - 1));

  {
    std::stringstream lying(text);
    EXPECT_THROW(static_cast<void>(read_trace(lying)), trace_format_error);
  }
  {
    std::stringstream lying(text);
    trace_stream_reader reader(lying);
    EXPECT_THROW(
        [&] {
          while (reader.next() != nullptr) {
          }
        }(),
        trace_format_error);
    // Every declared record was still handed out before the error.
    EXPECT_EQ(reader.read(), r.tr.packets.size() - 1);
  }
}

TEST(trace_io, stream_reader_next_run_counts_match_next) {
  const auto r = small_run(false);
  std::stringstream ss;
  write_trace(ss, r.tr);
  trace_stream_reader reader(ss);
  std::vector<const packet_record*> run;
  std::size_t total = 0;
  for (;;) {
    run.clear();
    const std::size_t n = reader.next_run(run);
    if (n == 0) break;
    total += n;
  }
  EXPECT_EQ(total, r.tr.packets.size());
  EXPECT_EQ(reader.read(), r.tr.packets.size());
}

TEST(trace_io, unsorted_cursor_rejected_by_replay) {
  auto r = small_run(false);
  // A recorder-ordered (egress-time) file is not ingress-sorted; feeding it
  // to the replay engine directly must throw, not silently misreplay.
  bool out_of_order = false;
  for (std::size_t i = 1; i < r.tr.packets.size(); ++i) {
    if (r.tr.packets[i].ingress_time < r.tr.packets[i - 1].ingress_time) {
      out_of_order = true;
      break;
    }
  }
  ASSERT_TRUE(out_of_order) << "congested run should egress out of ingress order";
  std::stringstream ss;
  write_trace(ss, r.tr);
  trace_stream_reader reader(ss);
  const auto& topology = r.topology;
  const auto builder = [&topology](network& n) { topo::populate(topology, n); };
  core::replay_options opt;
  opt.mode = core::replay_mode::lstf;
  EXPECT_THROW(static_cast<void>(core::replay_trace(reader, builder, opt)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ups::net
