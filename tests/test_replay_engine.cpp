// Unit/integration tests for the replay engine itself: header
// initialization, packet conservation, threshold accounting, and simple
// known-outcome replays.
#include <gtest/gtest.h>

#include <memory>

#include "core/registry.h"
#include "core/replay.h"
#include "gadget_runner.h"
#include "net/network.h"
#include "net/trace.h"
#include "replay_test_util.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "topo/gadgets.h"
#include "traffic/size_dist.h"
#include "traffic/udp_app.h"
#include "traffic/workload.h"

namespace ups::core {
namespace {

struct recorded {
  topo::topology topology;
  net::trace trace;
};

// Runs a workload under `kind` on the given topology and records the trace.
recorded record_run(topo::topology topo, sched_kind kind,
                    std::uint64_t packets, double util = 0.6,
                    bool hop_times = false, std::uint64_t seed = 3) {
  recorded out;
  out.topology = std::move(topo);
  sim::simulator sim;
  net::network net(sim);
  topo::populate(out.topology, net);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(make_factory(kind, seed, &net));
  net.build();
  net::trace_recorder rec(net, hop_times);
  traffic::fixed_size dist(15'000);
  traffic::workload_config wcfg;
  wcfg.utilization = util;
  wcfg.seed = seed;
  wcfg.packet_budget = packets;
  auto wl = traffic::generate(net, out.topology, dist, wcfg);
  traffic::udp_app::options aopt;
  aopt.record_hops = hop_times;
  traffic::udp_app app(net, std::move(wl.flows), aopt);
  sim.run();
  out.trace = rec.take();
  return out;
}

replay_result do_replay(const recorded& r, replay_mode mode,
                        sim::time_ps threshold = 0) {
  replay_options opt;
  opt.mode = mode;
  opt.threshold_T = threshold;
  opt.keep_outcomes = true;
  const auto& topology = r.topology;
  return replay_trace(
      r.trace, [&topology](net::network& n) { topo::populate(topology, n); },
      opt);
}

TEST(replay_engine, conserves_every_packet) {
  const auto r = record_run(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps),
                            sched_kind::random, 3'000);
  const auto res = do_replay(r, replay_mode::lstf);
  EXPECT_EQ(res.total, r.trace.packets.size());
  EXPECT_EQ(res.outcomes.size(), r.trace.packets.size());
}

TEST(replay_engine, uncongested_schedule_replays_exactly) {
  // At 1% utilization packets rarely queue; the original schedule is almost
  // everywhere tmin-tight and the replay must reproduce it exactly.
  const auto r = record_run(topo::dumbbell(2, 10 * sim::kGbps, sim::kGbps),
                            sched_kind::fifo, 500, 0.01);
  const auto res = do_replay(r, replay_mode::lstf);
  EXPECT_EQ(res.overdue, 0u);
  for (const auto& o : res.outcomes) {
    EXPECT_LE(o.replay_out, o.original_out);
  }
}

TEST(replay_engine, preemptive_lstf_perfect_on_single_congestion_point) {
  // Dumbbell: the only congestion point is the bottleneck port (host NICs
  // are bypassed by ingress injection; egress ports are fed serialized
  // traffic at or below their own rate). Appendix G: LSTF replays <= 2
  // congestion points perfectly.
  const auto r = record_run(topo::dumbbell(6, 10 * sim::kGbps, sim::kGbps),
                            sched_kind::random, 8'000, 0.8);
  const auto res = do_replay(r, replay_mode::lstf_preemptive);
  EXPECT_EQ(res.overdue, 0u);
}

TEST(replay_engine, edf_matches_lstf_exactly) {
  const auto r = record_run(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps),
                            sched_kind::random, 4'000, 0.7);
  const auto a = do_replay(r, replay_mode::lstf);
  const auto b = do_replay(r, replay_mode::edf);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].replay_out, b.outcomes[i].replay_out);
  }
}

TEST(replay_engine, pheap_backed_lstf_matches_map_backed_exactly) {
  // §5: the pipelined-heap implementation is a drop-in replacement.
  const auto r = record_run(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps),
                            sched_kind::random, 4'000, 0.7);
  const auto a = do_replay(r, replay_mode::lstf);
  const auto b = do_replay(r, replay_mode::lstf_pheap);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].replay_out, b.outcomes[i].replay_out);
    EXPECT_EQ(a.outcomes[i].replay_queueing, b.outcomes[i].replay_queueing);
  }
}

TEST(replay_engine, quantized_omniscient_degrades_gracefully) {
  const auto r = record_run(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps),
                            sched_kind::random, 4'000, 0.8, /*hop_times=*/true);
  replay_options opt;
  opt.mode = replay_mode::omniscient;
  opt.keep_outcomes = false;
  const auto& topology = r.topology;
  const auto builder = [&topology](net::network& n) {
    topo::populate(topology, n);
  };
  opt.omniscient_quantum = 0;
  const auto exact = replay_trace(r.trace, builder, opt);
  EXPECT_EQ(exact.overdue, 0u);
  // Sub-transmission-time quantization cannot change any ordering between
  // packets whose original service start times differ by >= one slot.
  opt.omniscient_quantum = sim::kNanosecond;
  const auto fine = replay_trace(r.trace, builder, opt);
  EXPECT_EQ(fine.overdue, 0u);
  // Very coarse quantization collapses most ranks and must hurt.
  opt.omniscient_quantum = 100 * sim::kMillisecond;
  const auto coarse = replay_trace(r.trace, builder, opt);
  EXPECT_GE(coarse.overdue, fine.overdue);
}

TEST(replay_engine, omniscient_requires_hop_times) {
  const auto r = record_run(topo::dumbbell(2, 10 * sim::kGbps, sim::kGbps),
                            sched_kind::fifo, 200, 0.3, /*hop_times=*/false);
  EXPECT_THROW(do_replay(r, replay_mode::omniscient), std::invalid_argument);
}

TEST(replay_engine, omniscient_perfect_with_hop_times) {
  const auto r = record_run(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps),
                            sched_kind::random, 4'000, 0.8, /*hop_times=*/true);
  const auto res = do_replay(r, replay_mode::omniscient);
  EXPECT_EQ(res.overdue, 0u);
}

TEST(replay_engine, threshold_accounting_monotone) {
  const auto r = record_run(topo::dumbbell(6, 10 * sim::kGbps, sim::kGbps),
                            sched_kind::lifo, 6'000, 0.8);
  const auto strict = do_replay(r, replay_mode::priority_output_time, 0);
  const auto loose = do_replay(r, replay_mode::priority_output_time,
                               12 * sim::kMicrosecond);
  EXPECT_GE(strict.overdue, strict.overdue_beyond_T);
  EXPECT_GE(loose.overdue, loose.overdue_beyond_T);
  EXPECT_GE(strict.overdue_beyond_T, loose.overdue_beyond_T);
  EXPECT_EQ(strict.overdue, loose.overdue);  // threshold only affects >T
}

TEST(replay_engine, fractions_are_consistent) {
  const auto r = record_run(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps),
                            sched_kind::lifo, 3'000, 0.8);
  const auto res = do_replay(r, replay_mode::lstf, 12 * sim::kMicrosecond);
  EXPECT_NEAR(res.frac_overdue(),
              static_cast<double>(res.overdue) / res.total, 1e-12);
  EXPECT_LE(res.frac_overdue_beyond_T(), res.frac_overdue());
}

TEST(replay_engine, lstf_slack_initialization_formula) {
  // Manually verify slack(p) = o(p) - i(p) - tmin(p) for a recorded packet
  // by reconstructing tmin on a fresh network.
  const auto r = record_run(topo::dumbbell(2, 10 * sim::kGbps, sim::kGbps),
                            sched_kind::fifo, 300, 0.5);
  sim::simulator sim;
  net::network net(sim);
  topo::populate(r.topology, net);
  net.set_scheduler_factory(make_factory(sched_kind::fifo, 1));
  net.build();
  for (const auto& rec : r.trace.packets) {
    net::packet probe;
    probe.size_bytes = rec.size_bytes;
    probe.dst_host = rec.dst_host;
    probe.path = rec.path;
    const auto tmin = net.tmin(probe, 0);
    const auto slack = rec.egress_time - rec.ingress_time - tmin;
    EXPECT_GE(slack, 0) << "viable schedules never have negative slack";
  }
}

using ups::testing::expect_identical_results;

replay_result replay_with_injection(const recorded& r, replay_mode mode,
                                    injection_mode injection) {
  replay_options opt;
  opt.mode = mode;
  opt.keep_outcomes = true;
  opt.injection = injection;
  const auto& topology = r.topology;
  return replay_trace(
      r.trace, [&topology](net::network& n) { topo::populate(topology, n); },
      opt);
}

TEST(replay_engine, streaming_injection_matches_upfront) {
  const auto r = record_run(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps),
                            sched_kind::random, 4'000, 0.8);
  for (const auto mode : {replay_mode::lstf, replay_mode::lstf_preemptive,
                          replay_mode::edf,
                          replay_mode::priority_output_time}) {
    const auto streamed =
        replay_with_injection(r, mode, injection_mode::streaming);
    const auto upfront =
        replay_with_injection(r, mode, injection_mode::upfront);
    expect_identical_results(streamed, upfront);
  }
}

TEST(replay_engine, streaming_injection_matches_upfront_on_gadget_trace) {
  // The theory gadgets prescribe exact per-hop schedules, so any injection
  // artifact (reordered same-instant arrivals, a shifted service decision)
  // shows up as a hard outcome diff rather than statistical noise.
  for (const int c : {1, 2}) {
    const auto g = topo::fig5_case(c);
    const auto run = testing::run_gadget_original(g);
    recorded rec;
    rec.topology = run.topology;
    rec.trace = run.trace;
    for (const auto mode : {replay_mode::lstf, replay_mode::edf,
                            replay_mode::omniscient}) {
      const auto streamed =
          replay_with_injection(rec, mode, injection_mode::streaming);
      const auto upfront =
          replay_with_injection(rec, mode, injection_mode::upfront);
      expect_identical_results(streamed, upfront);
    }
  }
}

TEST(replay_engine, streaming_preserves_injection_order_on_rank_ties) {
  // Regression: an injection landing at the exact instant a forwarded
  // packet arrives at the same router, with equal ranks (EDF deadlines
  // here). Up-front injection pre-schedules all deliveries, so the injected
  // packet enqueues first and wins the FCFS tie-break; streaming must
  // reproduce that via early-phase delivery, not lose it to event-sequence
  // ordering.
  const auto delay = sim::kMicrosecond;
  recorded r;
  r.topology = topo::parking_lot(3, sim::kGbps, delay);

  net::packet_record b;  // forwarded packet: crosses r1 mid-path
  b.id = 1;
  b.flow_id = 1;
  b.size_bytes = 1500;
  b.src_host = r.topology.host_id(0);
  b.dst_host = r.topology.host_id(2);
  b.path = {0, 1, 2};
  b.ingress_time = 0;
  b.egress_time = sim::kMillisecond;  // rank tie with `a` under EDF

  net::packet_record a;  // injected at r1 exactly when b arrives there
  a.id = 2;
  a.flow_id = 2;
  a.size_bytes = 1500;
  a.src_host = r.topology.host_id(1);
  a.dst_host = r.topology.host_id(2);
  a.path = {1, 2};
  a.ingress_time = sim::transmission_time(1500, sim::kGbps) + delay;
  a.egress_time = sim::kMillisecond;

  r.trace.packets = {b, a};
  for (const auto mode :
       {replay_mode::edf, replay_mode::priority_output_time}) {
    const auto streamed =
        replay_with_injection(r, mode, injection_mode::streaming);
    const auto upfront =
        replay_with_injection(r, mode, injection_mode::upfront);
    expect_identical_results(streamed, upfront);
    // The injected packet must win the tie at the shared port, as it does
    // under up-front injection: it transmits first and egresses earlier.
    ASSERT_EQ(streamed.outcomes[0].id, 1u);
    ASSERT_EQ(streamed.outcomes[1].id, 2u);
    EXPECT_LT(streamed.outcomes[1].replay_out, streamed.outcomes[0].replay_out);
  }
}

TEST(replay_engine, streaming_injection_cuts_peak_residency) {
  // Long trace over a short-RTT topology: only the in-flight window should
  // ever be resident under streaming, while up-front injection always
  // materializes the whole trace.
  const auto r = record_run(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps),
                            sched_kind::fifo, 6'000, 0.5);
  const auto streamed =
      replay_with_injection(r, replay_mode::lstf, injection_mode::streaming);
  const auto upfront =
      replay_with_injection(r, replay_mode::lstf, injection_mode::upfront);
  expect_identical_results(streamed, upfront);
  EXPECT_EQ(upfront.peak_pool_packets, r.trace.packets.size());
  EXPECT_LT(streamed.peak_pool_packets, upfront.peak_pool_packets / 4);
  EXPECT_LT(streamed.peak_event_slots, upfront.peak_event_slots / 4);
}

TEST(replay_engine, replay_mode_names) {
  EXPECT_STREQ(to_string(replay_mode::lstf), "LSTF");
  EXPECT_STREQ(to_string(replay_mode::lstf_preemptive), "LSTF(preempt)");
  EXPECT_STREQ(to_string(replay_mode::edf), "EDF");
  EXPECT_STREQ(to_string(replay_mode::priority_output_time),
               "Priority(o(p))");
  EXPECT_STREQ(to_string(replay_mode::omniscient), "Omniscient");
}

}  // namespace
}  // namespace ups::core
