// Tests for the packet freelist arena: recycle/reset semantics, counter
// accounting, and end-to-end pooling through a simulated network.
#include <gtest/gtest.h>

#include "core/registry.h"
#include "net/network.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "topo/topology.h"
#include "traffic/udp_app.h"

namespace ups::net {
namespace {

TEST(packet_pool, starts_empty) {
  packet_pool pool;
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_EQ(pool.created(), 0u);
  EXPECT_EQ(pool.recycled(), 0u);
}

TEST(packet_pool, destroying_a_pooled_packet_recycles_it) {
  packet_pool pool;
  const packet* raw;
  {
    packet_ptr p = pool.make();
    raw = p.get();
    EXPECT_EQ(pool.live(), 1u);
    EXPECT_EQ(pool.created(), 1u);
  }
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.pooled(), 1u);
  EXPECT_EQ(pool.recycled(), 1u);
  // The next make() hands back the same object, not a fresh allocation.
  packet_ptr q = pool.make();
  EXPECT_EQ(q.get(), raw);
  EXPECT_EQ(pool.created(), 1u);
}

TEST(packet_pool, reuse_resets_every_scratch_and_header_field) {
  packet_pool pool;
  {
    packet_ptr p = pool.make();
    p->id = 77;
    p->flow_id = 5;
    p->seq_in_flow = 9;
    p->size_bytes = 1500;
    p->kind = packet_kind::ack;
    p->src_host = 3;
    p->dst_host = 4;
    p->path = {1, 2, 3};
    p->hop = 2;
    p->slack = 123;
    p->priority = -9;
    p->deadline = 55;
    p->fifo_plus_wait = 7;
    p->hop_deadlines = {10, 20, 30};
    p->flow_size_bytes = 99;
    p->remaining_flow_bytes = 98;
    p->tseq = 11;
    p->tack = 12;
    p->sched_key = 1234;
    p->sched_key_port = 6;  // scratch: stale value would corrupt rank caching
    p->tx_remaining = 42;   // scratch: >=0 means "in service" to a port
    p->port_enqueue_time = 1;
    p->created_at = 2;
    p->ingress_time = 3;
    p->queueing_delay = 4;
    p->hop_departs = {100, 200};
    p->record_hops = true;
  }
  packet_ptr p = pool.make();
  const packet fresh{};
  EXPECT_EQ(p->id, fresh.id);
  EXPECT_EQ(p->flow_id, fresh.flow_id);
  EXPECT_EQ(p->seq_in_flow, fresh.seq_in_flow);
  EXPECT_EQ(p->size_bytes, fresh.size_bytes);
  EXPECT_EQ(p->kind, fresh.kind);
  EXPECT_EQ(p->src_host, fresh.src_host);
  EXPECT_EQ(p->dst_host, fresh.dst_host);
  EXPECT_TRUE(p->path.empty());
  EXPECT_EQ(p->hop, fresh.hop);
  EXPECT_EQ(p->slack, fresh.slack);
  EXPECT_EQ(p->priority, fresh.priority);
  EXPECT_EQ(p->deadline, fresh.deadline);
  EXPECT_EQ(p->fifo_plus_wait, fresh.fifo_plus_wait);
  EXPECT_TRUE(p->hop_deadlines.empty());
  EXPECT_EQ(p->flow_size_bytes, fresh.flow_size_bytes);
  EXPECT_EQ(p->remaining_flow_bytes, fresh.remaining_flow_bytes);
  EXPECT_EQ(p->tseq, fresh.tseq);
  EXPECT_EQ(p->tack, fresh.tack);
  EXPECT_EQ(p->sched_key, fresh.sched_key);
  EXPECT_EQ(p->sched_key_port, fresh.sched_key_port);
  EXPECT_EQ(p->tx_remaining, fresh.tx_remaining);
  EXPECT_EQ(p->port_enqueue_time, fresh.port_enqueue_time);
  EXPECT_EQ(p->created_at, fresh.created_at);
  EXPECT_EQ(p->ingress_time, fresh.ingress_time);
  EXPECT_EQ(p->queueing_delay, fresh.queueing_delay);
  EXPECT_TRUE(p->hop_departs.empty());
  EXPECT_EQ(p->record_hops, fresh.record_hops);
}

TEST(packet_pool, reuse_keeps_vector_capacity) {
  packet_pool pool;
  {
    packet_ptr p = pool.make();
    p->path = {1, 2, 3, 4, 5};
    p->hop_departs = {10, 20, 30};
  }
  packet_ptr p = pool.make();
  EXPECT_TRUE(p->path.empty());
  EXPECT_GE(p->path.capacity(), 5u);  // reassigning the path won't allocate
  EXPECT_GE(p->hop_departs.capacity(), 3u);
}

TEST(packet_pool, steady_state_churn_reuses_one_object) {
  packet_pool pool;
  for (int i = 0; i < 1000; ++i) {
    packet_ptr p = pool.make();
    p->id = static_cast<std::uint64_t>(i);
  }
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.recycled(), 1000u);
  EXPECT_EQ(pool.pooled(), 1u);
}

TEST(packet_pool, unpooled_make_packet_is_plain_heap) {
  // No pool attached: destruction must free, not recycle (valgrind/ASan
  // would flag a leak or double-free if the deleter mis-routed).
  packet_ptr p = make_packet();
  EXPECT_EQ(p->sched_key_port, -1);
  p.reset();
  EXPECT_EQ(p, nullptr);
}

TEST(packet_pool, network_recycles_delivered_packets) {
  // Run real traffic end-to-end: every packet the UDP app emitted must come
  // back to the pool once delivered, and the pool's high-water mark must be
  // the peak in-flight population, not the total emitted.
  sim::simulator sim;
  network net(sim);
  const auto topology = topo::dumbbell(2, 10 * sim::kGbps, sim::kGbps);
  topo::populate(topology, net);
  net.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  net.build();

  std::vector<traffic::flow_spec> flows;
  for (std::uint64_t i = 0; i < 4; ++i) {
    flows.push_back(traffic::flow_spec{
        i, topology.host_id(i % 2), topology.host_id(2 + (i % 2)),
        30'000,  // 20 MTU packets each
        // Spaced beyond each burst's drain time (~240us at the 1 Gbps
        // bottleneck) so later flows reuse earlier flows' packets.
        static_cast<sim::time_ps>(i) * sim::kMillisecond});
  }
  traffic::udp_app app(net, flows, {});
  sim.run();

  EXPECT_EQ(app.packets_emitted(), 80u);
  EXPECT_EQ(net.stats().delivered, 80u);
  EXPECT_EQ(net.pool().live(), 0u);          // nothing leaked
  EXPECT_EQ(net.pool().pooled(), net.pool().created());
  EXPECT_LT(net.pool().created(), 80u);      // recycling actually happened
  EXPECT_GT(net.pool().recycled(), 0u);
}

}  // namespace
}  // namespace ups::net
