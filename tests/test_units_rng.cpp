// Unit tests for time/bandwidth arithmetic and the deterministic RNG.
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "sim/time.h"
#include "sim/units.h"

namespace ups::sim {
namespace {

TEST(units, transmission_time_is_exact_for_paper_rates) {
  // 1500 B at 1 Gbps = 12 us, the paper's threshold T.
  EXPECT_EQ(transmission_time(1500, kGbps), 12 * kMicrosecond);
  EXPECT_EQ(transmission_time(1500, 10 * kGbps), 1'200 * kNanosecond);
  EXPECT_EQ(transmission_time(1500, kGbps * 5 / 2), 4'800 * kNanosecond);
  // 125 B (1000 bits) at 1 Gbps = 1 us: the gadget unit.
  EXPECT_EQ(transmission_time(125, kGbps), kMicrosecond);
}

TEST(units, transmission_time_handles_large_sizes) {
  // 1 GB at 1 Gbps = 8 seconds; must not overflow.
  EXPECT_EQ(transmission_time(1'000'000'000, kGbps), 8 * kSecond);
}

TEST(units, bytes_in_inverts_transmission_time) {
  for (const bits_per_sec rate : {kGbps, 10 * kGbps, kGbps / 2}) {
    for (const std::int64_t bytes : {40LL, 125LL, 1460LL, 1500LL}) {
      EXPECT_EQ(bytes_in(transmission_time(bytes, rate), rate), bytes);
    }
  }
}

TEST(units, time_conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_millis(kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(to_micros(kMicrosecond), 1.0);
  EXPECT_EQ(from_seconds(0.5), kSecond / 2);
}

TEST(rng, deterministic_across_instances) {
  rng a(7);
  rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.raw(), b.raw());
}

TEST(rng, derived_streams_differ) {
  rng a = rng::derive(7, 1);
  rng b = rng::derive(7, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.raw() == b.raw()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(rng, uniform_in_unit_interval) {
  rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(rng, next_below_bounds) {
  rng r(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(rng, exponential_mean_close) {
  rng r(11);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(rng, bounded_pareto_within_bounds) {
  rng r(13);
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.bounded_pareto(1.2, 1460, 3e6);
    EXPECT_GE(v, 1460.0 * 0.999);
    EXPECT_LE(v, 3e6 * 1.001);
  }
}

}  // namespace
}  // namespace ups::sim
