// Port-level tests: cut-through for infinite-rate ports, slack accounting
// under preemption, late-phase service decisions, and per-port statistics.
#include <gtest/gtest.h>

#include <memory>

#include "core/registry.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "topo/topology.h"

namespace ups::net {
namespace {

using core::make_factory;
using core::sched_kind;

packet_ptr make_packet(std::uint64_t id, node_id src, node_id dst,
                       std::uint32_t bytes, sim::time_ps slack = 0) {
  packet_ptr p = net::make_packet();
  p->id = id;
  p->flow_id = id;
  p->size_bytes = bytes;
  p->src_host = src;
  p->dst_host = dst;
  p->slack = slack;
  return p;
}

struct fixture {
  sim::simulator sim;
  net::network net{sim};
  topo::topology topo;

  explicit fixture(topo::topology t, sched_kind k = sched_kind::fifo,
                   bool preempt = false)
      : topo(std::move(t)) {
    topo::populate(topo, net);
    net.set_buffer_bytes(0);
    net.set_preemption(preempt);
    net.set_scheduler_factory(make_factory(k, 1, &net));
    net.build();
  }
};

topo::topology infinite_line() {
  topo::topology t;
  t.name = "inf-line";
  t.routers = 3;
  t.core_links.push_back(topo::link_spec{0, 1, sim::kInfiniteRate, 0});
  t.core_links.push_back(topo::link_spec{1, 2, sim::kInfiniteRate, 0});
  t.hosts.push_back(topo::host_spec{0, sim::kInfiniteRate, 0});
  t.hosts.push_back(topo::host_spec{2, sim::kInfiniteRate, 0});
  return t;
}

TEST(port, cut_through_preserves_arrival_order) {
  fixture f(infinite_line());
  std::vector<std::uint64_t> order;
  f.net.hooks().on_egress = [&](const packet& p, sim::time_ps) {
    order.push_back(p.id);
  };
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    f.net.send_from_host(make_packet(i, h0, h1, 125));
  }
  f.sim.run();
  ASSERT_EQ(order.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i + 1);
}

TEST(port, cut_through_counts_stats) {
  fixture f(infinite_line());
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);
  f.net.send_from_host(make_packet(1, h0, h1, 125));
  f.sim.run();
  const auto& p01 = f.net.port_between(0, 1);
  EXPECT_EQ(p01.stats().packets_sent, 1u);
  EXPECT_EQ(p01.stats().bytes_sent, 125u);
}

TEST(port, preemption_slack_accounting_charges_pause_as_waiting) {
  // One 1500 B packet with generous slack is preempted by a 125 B urgent
  // packet. The big packet's slack must decrease by exactly the time it
  // spent not transmitting at that port (the 1 us pause).
  fixture f(topo::line(2, sim::kGbps, 0), sched_kind::lstf_preemptive, true);
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);

  sim::time_ps big_slack_at_egress = -1;
  f.net.hooks().on_egress = [&](const packet& p, sim::time_ps) {
    if (p.id == 1) big_slack_at_egress = p.slack;
  };

  auto big = make_packet(1, h0, h1, 1500, 100 * sim::kMicrosecond);
  big->path = f.net.route(h0, h1);
  f.net.inject_at_ingress(std::move(big), 0);
  auto urgent = make_packet(2, h0, h1, 125, 0);
  urgent->path = f.net.route(h0, h1);
  f.net.inject_at_ingress(std::move(urgent), 6 * sim::kMicrosecond);
  f.sim.run();

  // Timeline at r0: big 0-6 us, urgent 6-7 us, big resumes 7-13 us.
  // Big waited 1 us at r0. At r1 it may wait for the urgent packet's
  // 1 us transmission (arrives 13, urgent done at 8): no wait. So slack
  // must be 100 us - 1 us = 99 us.
  EXPECT_EQ(big_slack_at_egress, 99 * sim::kMicrosecond);
  std::uint64_t preemptions = 0;
  for (const auto& pt : f.net.ports()) {
    preemptions += pt->stats().preemptions;
  }
  EXPECT_EQ(preemptions, 1u);
}

TEST(port, preemptive_packet_count_conserved) {
  fixture f(topo::line(3, sim::kGbps, sim::kMicrosecond),
            sched_kind::lstf_preemptive, true);
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);
  for (std::uint64_t i = 1; i <= 50; ++i) {
    auto p = make_packet(i, h0, h1, 1500,
                         static_cast<sim::time_ps>((50 - i)) *
                             3 * sim::kMicrosecond);
    p->path = f.net.route(h0, h1);
    f.net.inject_at_ingress(std::move(p),
                            static_cast<sim::time_ps>(i) * sim::kMicrosecond);
  }
  f.sim.run();
  EXPECT_EQ(f.net.stats().delivered, 50u);
  EXPECT_EQ(f.net.stats().dropped, 0u);
}

TEST(port, same_instant_arrivals_scheduled_by_rank_not_delivery_order) {
  // Two packets delivered at the same instant to an idle LSTF port: the
  // lower-slack one must transmit first even if delivered second.
  fixture f(topo::line(2, sim::kGbps, 0), sched_kind::lstf);
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);
  std::vector<std::uint64_t> order;
  f.net.hooks().on_egress = [&](const packet& p, sim::time_ps) {
    order.push_back(p.id);
  };
  auto relaxed = make_packet(1, h0, h1, 1500, sim::kSecond);
  relaxed->path = f.net.route(h0, h1);
  f.net.inject_at_ingress(std::move(relaxed), sim::kMicrosecond);
  auto urgent = make_packet(2, h0, h1, 1500, 0);
  urgent->path = f.net.route(h0, h1);
  f.net.inject_at_ingress(std::move(urgent), sim::kMicrosecond);
  f.sim.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 1}));
}

TEST(port, work_conserving_no_idle_with_backlog) {
  // Total egress time for n back-to-back packets on a single 1 Gbps hop
  // equals n transmission times exactly: the port never idles.
  fixture f(topo::line(2, sim::kGbps, 0), sched_kind::fifo);
  const auto h0 = f.topo.host_id(0);
  const auto h1 = f.topo.host_id(1);
  sim::time_ps last_egress = 0;
  f.net.hooks().on_egress = [&](const packet&, sim::time_ps t) {
    last_egress = t;
  };
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    auto p = make_packet(i + 1, h0, h1, 1500);
    p->path = f.net.route(h0, h1);
    f.net.inject_at_ingress(std::move(p), 0);
  }
  f.sim.run();
  // n transmissions at r0 serialize; the last packet then crosses r1.
  EXPECT_EQ(last_egress, (n + 1) * 12 * sim::kMicrosecond);
}

TEST(port, transmission_time_helper_handles_infinite) {
  fixture f(infinite_line());
  EXPECT_EQ(f.net.port_between(0, 1).transmission_time(1'000'000), 0);
}

}  // namespace
}  // namespace ups::net
