// Tests for the Virtual Clock scheduler and its correspondence with the
// §3.3 fairness slack heuristic.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/heuristics.h"
#include "core/lstf.h"
#include "sched/virtual_clock.h"

namespace ups::sched {
namespace {

net::packet_ptr pkt(std::uint64_t id, std::uint64_t flow,
                    std::uint32_t bytes = 1500) {
  net::packet_ptr p = net::make_packet();
  p->id = id;
  p->flow_id = flow;
  p->size_bytes = bytes;
  return p;
}

TEST(virtual_clock, single_flow_is_fifo) {
  virtual_clock q(sim::kGbps);
  for (std::uint64_t i = 1; i <= 5; ++i) q.enqueue(pkt(i, 9), 0);
  for (std::uint64_t i = 1; i <= 5; ++i) EXPECT_EQ(q.dequeue(0)->id, i);
}

TEST(virtual_clock, interleaves_backlogged_flows) {
  virtual_clock q(sim::kGbps);
  for (std::uint64_t i = 0; i < 3; ++i) q.enqueue(pkt(10 + i, 1), 0);
  for (std::uint64_t i = 0; i < 3; ++i) q.enqueue(pkt(20 + i, 2), 0);
  std::vector<std::uint64_t> flows;
  while (auto p = q.dequeue(0)) flows.push_back(p->flow_id);
  EXPECT_EQ(flows, (std::vector<std::uint64_t>{1, 2, 1, 2, 1, 2}));
}

TEST(virtual_clock, weighted_rates_shift_service) {
  virtual_clock q(sim::kGbps);
  q.set_flow_rate(1, 2 * sim::kGbps);  // flow 1 gets double allocation
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(pkt(10 + i, 1), 0);
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(pkt(20 + i, 2), 0);
  int flow1_in_first_six = 0;
  for (int i = 0; i < 6; ++i) {
    if (q.dequeue(0)->flow_id == 1) ++flow1_in_first_six;
  }
  EXPECT_EQ(flow1_in_first_six, 4);  // 2:1 service ratio
}

TEST(virtual_clock, idle_flow_clock_resyncs_to_now) {
  virtual_clock q(sim::kGbps);
  q.enqueue(pkt(1, 1), 0);
  (void)q.dequeue(0);
  // Long idle gap: the flow must not have banked credit (VC resyncs to
  // real time), nor be penalized beyond its new arrival time.
  const sim::time_ps later = sim::kSecond;
  q.enqueue(pkt(2, 1), later);
  auto p = q.dequeue(later);
  EXPECT_EQ(p->sched_key, later + 12 * sim::kMicrosecond);
}

TEST(virtual_clock, evicts_furthest_ahead_flow) {
  virtual_clock q(sim::kGbps);
  for (std::uint64_t i = 0; i < 5; ++i) q.enqueue(pkt(10 + i, 1), 0);
  q.enqueue(pkt(20, 2), 0);
  auto incoming = pkt(30, 3);
  auto victim = q.evict_for(*incoming, 0);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 14u);  // flow 1's furthest-ahead packet
}

// §3.3 correspondence: on a single router fed by bursty senders, LSTF with
// the virtual-clock slack initialization serves packets in the same order
// as the Virtual Clock scheduler itself.
TEST(virtual_clock, lstf_with_fairness_slack_matches_vc_order) {
  const sim::bits_per_sec rate = sim::kGbps;
  virtual_clock vc_sched(rate);
  core::lstf lstf_sched(0, rate, false, false);
  core::fairness_slack vc_slack(rate);

  // Two flows, packets arriving back-to-back at t = 0 (maximal contention).
  std::uint64_t id = 1;
  for (int round = 0; round < 4; ++round) {
    for (const std::uint64_t flow : {1ull, 2ull}) {
      auto a = pkt(id, flow);
      auto b = pkt(id, flow);
      b->slack = vc_slack.next(flow, b->size_bytes, 0);
      vc_sched.enqueue(std::move(a), 0);
      lstf_sched.enqueue(std::move(b), 0);
      ++id;
    }
  }
  while (!vc_sched.empty()) {
    auto a = vc_sched.dequeue(0);
    auto b = lstf_sched.dequeue(0);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->id, b->id);
  }
}

}  // namespace
}  // namespace ups::sched
