// Tests for the bounded lock-free SPSC ring (core/spsc_ring.h) — the
// conveyor of the v3 decode-ahead pipeline. Single-threaded semantics
// (FIFO order, exact full/empty at the power-of-two capacity, index
// wraparound), move-only element support, and a two-thread stress run
// that crosses the ring boundary hundreds of thousands of times.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/spsc_ring.h"

namespace ups::core {
namespace {

TEST(spsc_ring, capacity_rounds_up_to_power_of_two) {
  EXPECT_EQ(spsc_ring<int>(1).capacity(), 1u);
  EXPECT_EQ(spsc_ring<int>(2).capacity(), 2u);
  EXPECT_EQ(spsc_ring<int>(3).capacity(), 4u);
  EXPECT_EQ(spsc_ring<int>(4).capacity(), 4u);
  EXPECT_EQ(spsc_ring<int>(5).capacity(), 8u);
  EXPECT_EQ(spsc_ring<int>(1000).capacity(), 1024u);
}

TEST(spsc_ring, fills_to_exact_capacity_and_drains_fifo) {
  spsc_ring<int> r(4);
  ASSERT_EQ(r.capacity(), 4u);
  EXPECT_TRUE(r.empty());
  // No one-slot-wasted ambiguity: all `capacity()` slots are usable.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.try_push(i)) << i;
  int v = -1;
  EXPECT_FALSE(r.try_push(99));
  EXPECT_EQ(r.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(r.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(r.try_pop(v));
  EXPECT_EQ(v, 3);  // failed pop leaves `out` untouched
  EXPECT_TRUE(r.empty());
}

TEST(spsc_ring, wraparound_preserves_order_across_many_laps) {
  // Keep the ring nearly full while cycling far past the capacity so the
  // masked indices wrap many times.
  spsc_ring<std::uint64_t> r(4);
  std::uint64_t pushed = 0, popped = 0;
  for (std::uint64_t v; pushed < 10'000;) {
    while (pushed < 10'000 && r.try_push(pushed)) ++pushed;
    ASSERT_TRUE(r.try_pop(v));
    ASSERT_EQ(v, popped++);
  }
  for (std::uint64_t v; r.try_pop(v);) ASSERT_EQ(v, popped++);
  EXPECT_EQ(popped, pushed);
}

TEST(spsc_ring, move_only_elements_pass_through) {
  spsc_ring<std::unique_ptr<int>> r(2);
  ASSERT_TRUE(r.try_push(std::make_unique<int>(7)));
  ASSERT_TRUE(r.try_push(std::make_unique<int>(8)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(r.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 7);
  ASSERT_TRUE(r.try_pop(out));
  EXPECT_EQ(*out, 8);
}

TEST(spsc_ring, two_thread_stress_delivers_every_element_in_order) {
  // One producer, one consumer, a deliberately tiny ring: both sides hit
  // the full/empty re-read paths constantly. Every value must arrive
  // exactly once, in order — the property the decode-ahead pipeline's
  // block sequencing rests on.
  constexpr std::uint64_t kCount = 500'000;
  spsc_ring<std::uint64_t> r(8);
  std::uint64_t bad = kCount;  // first out-of-sequence value, if any
  std::thread consumer([&] {
    std::uint64_t expect = 0, v = 0;
    while (expect < kCount) {
      if (!r.try_pop(v)) {
        std::this_thread::yield();
        continue;
      }
      if (v != expect) {
        bad = v;
        return;
      }
      ++expect;
    }
  });
  for (std::uint64_t i = 0; i < kCount;) {
    if (r.try_push(i)) {
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  EXPECT_EQ(bad, kCount) << "consumer saw out-of-order value " << bad;
  EXPECT_TRUE(r.empty());
}

}  // namespace
}  // namespace ups::core
