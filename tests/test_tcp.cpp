// Tests for the simplified TCP Reno transport.
#include <gtest/gtest.h>

#include "core/registry.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "transport/tcp.h"

namespace ups::transport {
namespace {

struct fixture {
  sim::simulator sim;
  net::network net{sim};
  topo::topology topo;

  explicit fixture(topo::topology t,
                   core::sched_kind k = core::sched_kind::fifo,
                   std::int64_t buffer = 0)
      : topo(std::move(t)) {
    topo::populate(topo, net);
    net.set_buffer_bytes(buffer);
    net.set_scheduler_factory(core::make_factory(k, 1, &net));
    net.build();
  }
};

TEST(tcp, single_flow_completes_on_clean_path) {
  fixture f(topo::line(2, sim::kGbps, sim::kMicrosecond));
  tcp_manager tcp(f.net, {});
  tcp.start_flow(1, f.topo.host_id(0), f.topo.host_id(1), 100'000, 0);
  f.sim.run();
  ASSERT_EQ(tcp.completions().size(), 1u);
  EXPECT_EQ(tcp.flows_in_progress(), 0u);
  const auto& c = tcp.completions().front();
  EXPECT_EQ(c.size_bytes, 100'000u);
  EXPECT_GT(c.fct(), 0);
  EXPECT_EQ(tcp.delivered_bytes(1), 100'000u);
}

TEST(tcp, fct_close_to_ideal_for_bulk_transfer) {
  // 1 MB over a 1 Gbps path: ideal serialization is ~8.2 ms; with slow
  // start and ACK clocking the FCT must be within a small multiple.
  fixture f(topo::line(2, sim::kGbps, 10 * sim::kMicrosecond));
  tcp_manager tcp(f.net, {});
  tcp.start_flow(1, f.topo.host_id(0), f.topo.host_id(1), 1'000'000, 0);
  f.sim.run();
  ASSERT_EQ(tcp.completions().size(), 1u);
  const double fct_ms = sim::to_millis(tcp.completions().front().fct());
  EXPECT_GT(fct_ms, 8.0);
  EXPECT_LT(fct_ms, 25.0);
}

TEST(tcp, recovers_from_drops_in_tiny_buffer) {
  // 15 KB of buffer on a 1 Gbps bottleneck forces slow-start overshoot
  // drops; the flow must still complete via fast retransmit / RTO.
  fixture f(topo::dumbbell(1, 10 * sim::kGbps, sim::kGbps),
            core::sched_kind::fifo, 15'000);
  tcp_manager tcp(f.net, {});
  tcp.start_flow(1, f.topo.host_id(0), f.topo.host_id(1), 400'000, 0);
  f.sim.run();
  ASSERT_EQ(tcp.completions().size(), 1u);
  EXPECT_GT(f.net.stats().dropped, 0u) << "test requires actual losses";
  EXPECT_EQ(tcp.delivered_bytes(1), 400'000u);
}

TEST(tcp, two_flows_share_and_both_finish) {
  fixture f(topo::dumbbell(2, 10 * sim::kGbps, sim::kGbps),
            core::sched_kind::fifo, 100'000);
  tcp_manager tcp(f.net, {});
  tcp.start_flow(1, f.topo.host_id(0), f.topo.host_id(2), 300'000, 0);
  tcp.start_flow(2, f.topo.host_id(1), f.topo.host_id(3), 300'000, 0);
  f.sim.run();
  EXPECT_EQ(tcp.completions().size(), 2u);
}

TEST(tcp, stamper_applied_to_data_packets) {
  fixture f(topo::line(2, sim::kGbps, sim::kMicrosecond));
  tcp_manager tcp(f.net, {});
  int stamped = 0;
  tcp.start_flow(1, f.topo.host_id(0), f.topo.host_id(1), 29'200, 0,
                 [&stamped](net::packet& p) {
                   EXPECT_EQ(p.kind, net::packet_kind::data);
                   ++stamped;
                 });
  f.sim.run();
  EXPECT_GE(stamped, 20);  // 20 segments minimum (29200 = 20 x 1460)
}

TEST(tcp, remaining_flow_bytes_decreases_across_emissions) {
  fixture f(topo::line(2, sim::kGbps, sim::kMicrosecond));
  tcp_manager tcp(f.net, {});
  std::vector<std::uint64_t> remaining;
  tcp.start_flow(1, f.topo.host_id(0), f.topo.host_id(1), 146'000, 0,
                 [&remaining](net::packet& p) {
                   remaining.push_back(p.remaining_flow_bytes);
                 });
  f.sim.run();
  ASSERT_GT(remaining.size(), 10u);
  EXPECT_EQ(remaining.front(), 146'000u);
  // SRPT-style remaining decreases as ACKs advance (not strictly monotone
  // per packet within a burst, but the last emission has far less left).
  EXPECT_LT(remaining.back(), remaining.front());
}

TEST(tcp, long_lived_flow_throughput_tracks_link_rate) {
  fixture f(topo::line(2, sim::kGbps, 10 * sim::kMicrosecond));
  tcp_config cfg;
  cfg.max_cwnd_pkts = 500;
  tcp_manager tcp(f.net, cfg);
  tcp.start_flow(1, f.topo.host_id(0), f.topo.host_id(1), 1ull << 40, 0);
  f.sim.run_until(20 * sim::kMillisecond);
  const double delivered = static_cast<double>(tcp.delivered_bytes(1));
  const double ideal = 1e9 / 8.0 * 0.020;  // bytes in 20 ms at 1 Gbps
  EXPECT_GT(delivered / ideal, 0.7);
  EXPECT_LE(delivered / ideal, 1.01);
}

TEST(tcp, many_parallel_flows_all_complete) {
  fixture f(topo::dumbbell(8, 10 * sim::kGbps, sim::kGbps),
            core::sched_kind::fq, 500'000);
  tcp_manager tcp(f.net, {});
  for (int i = 0; i < 16; ++i) {
    tcp.start_flow(100 + i, f.topo.host_id(i % 8),
                   f.topo.host_id(8 + (i + 3) % 8), 50'000 + 10'000 * i,
                   i * sim::kMicrosecond);
  }
  f.sim.run();
  EXPECT_EQ(tcp.completions().size(), 16u);
  EXPECT_EQ(tcp.flows_in_progress(), 0u);
}

}  // namespace
}  // namespace ups::transport
