// Tests for the v2 binary trace format: v1 <-> v2 round trips, the mmap
// cursor's ingress-index walk and same-instant batching, replay equivalence
// against the text path, and corruption robustness — every mutation of a
// valid image must either read back cleanly or throw trace_format_error,
// never crash or read out of bounds (the ASan/UBSan CI job gives the
// "never UB" half teeth).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "core/registry.h"
#include "core/replay.h"
#include "net/network.h"
#include "net/trace.h"
#include "net/trace_binary.h"
#include "net/trace_io.h"
#include "replay_test_util.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "traffic/size_dist.h"
#include "traffic/udp_app.h"
#include "traffic/workload.h"

namespace ups::net {
namespace {

struct recorded {
  topo::topology topology;
  trace tr;
};

recorded small_run(bool hop_times) {
  recorded out;
  out.topology = topo::dumbbell(3, 10 * sim::kGbps, sim::kGbps);
  sim::simulator sim;
  network net(sim);
  topo::populate(out.topology, net);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(
      core::make_factory(core::sched_kind::random, 5, &net));
  net.build();
  trace_recorder rec(net, hop_times);
  traffic::fixed_size dist(15'000);
  traffic::workload_config wcfg;
  wcfg.packet_budget = 800;
  auto wl = traffic::generate(net, out.topology, dist, wcfg);
  traffic::udp_app::options aopt;
  aopt.record_hops = hop_times;
  traffic::udp_app app(net, std::move(wl.flows), aopt);
  sim.run();
  out.tr = rec.take();
  return out;
}

void expect_equal(const trace& a, const trace& b) {
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    const auto& x = a.packets[i];
    const auto& y = b.packets[i];
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.flow_id, y.flow_id);
    EXPECT_EQ(x.seq_in_flow, y.seq_in_flow);
    EXPECT_EQ(x.size_bytes, y.size_bytes);
    EXPECT_EQ(x.src_host, y.src_host);
    EXPECT_EQ(x.dst_host, y.dst_host);
    EXPECT_EQ(x.ingress_time, y.ingress_time);
    EXPECT_EQ(x.egress_time, y.egress_time);
    EXPECT_EQ(x.queueing_delay, y.queueing_delay);
    EXPECT_EQ(x.flow_size_bytes, y.flow_size_bytes);
    EXPECT_EQ(x.path, y.path);
    EXPECT_EQ(x.hop_departs, y.hop_departs);
  }
}

// Serializes to a v2 byte image in memory (the writer needs a seekable
// stream; stringstream qualifies).
std::vector<std::uint8_t> to_v2_bytes(const trace& t) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_trace_v2(ss, t);
  const std::string s = ss.str();
  return {s.begin(), s.end()};
}

// Drains a cursor built over `bytes`, exercising every decode and order
// check — the "read it all" half of the fuzz property.
std::size_t drain_image(const std::vector<std::uint8_t>& bytes) {
  trace_mmap_cursor cur(bytes.data(), bytes.size());
  std::size_t n = 0;
  while (cur.next() != nullptr) ++n;
  return n;
}

TEST(trace_binary, round_trip_preserves_all_fields) {
  const auto r = small_run(true);
  const auto bytes = to_v2_bytes(r.tr);
  const trace back = read_trace_v2(bytes.data(), bytes.size());
  expect_equal(r.tr, back);
  ASSERT_FALSE(back.packets.empty());
  EXPECT_FALSE(back.packets.front().hop_departs.empty());
}

TEST(trace_binary, round_trip_edge_case_records) {
  // Hand-built records the workload generator never produces: empty
  // hop_departs, a single-hop path, an empty path, zero/extreme values.
  trace t;
  packet_record a;
  a.id = 1;
  a.flow_id = 7;
  a.size_bytes = 0;
  a.src_host = 0;
  a.dst_host = 0;
  a.path = {4};  // single hop
  a.ingress_time = 0;
  a.egress_time = INT64_MAX / 8;
  t.packets.push_back(a);
  packet_record b;
  b.id = UINT64_MAX;
  b.flow_id = UINT64_MAX;
  b.seq_in_flow = UINT32_MAX;
  b.size_bytes = UINT32_MAX;
  b.src_host = kInvalidNode;  // -1 survives the i32 encoding
  b.dst_host = kInvalidNode;
  b.path = {};  // empty path, empty hop_departs
  b.ingress_time = -1;
  b.egress_time = -1;
  b.queueing_delay = -5;
  t.packets.push_back(b);
  packet_record c;
  c.id = 3;
  c.path = {1, 2, 3, 4, 5};
  c.hop_departs = {10, 20, 30, 40, 50};
  c.ingress_time = 5;
  t.packets.push_back(c);

  const auto bytes = to_v2_bytes(t);
  const trace back = read_trace_v2(bytes.data(), bytes.size());
  expect_equal(t, back);
}

TEST(trace_binary, v1_to_v2_conversion_is_record_identical) {
  // The tracec convert path: stream the text format record by record into
  // the binary writer, then decode both and compare field by field.
  const auto r = small_run(true);
  std::stringstream text;
  write_trace(text, r.tr);
  trace_stream_reader reader(text);
  std::stringstream bin(std::ios::in | std::ios::out | std::ios::binary);
  trace_binary_writer writer(bin);
  while (const packet_record* rec = reader.next()) writer.append(*rec);
  writer.finish();
  EXPECT_EQ(writer.written(), r.tr.packets.size());
  const std::string s = bin.str();
  const trace back = read_trace_v2(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  expect_equal(r.tr, back);
}

TEST(trace_binary, mmap_cursor_yields_ingress_order_without_presorting) {
  // The recorder appends in egress order; the footer index alone must hand
  // the cursor's consumer a sorted stream.
  const auto r = small_run(false);
  bool out_of_order = false;
  for (std::size_t i = 1; i < r.tr.packets.size(); ++i) {
    if (r.tr.packets[i].ingress_time < r.tr.packets[i - 1].ingress_time) {
      out_of_order = true;
      break;
    }
  }
  ASSERT_TRUE(out_of_order) << "run should egress out of ingress order";

  const auto bytes = to_v2_bytes(r.tr);
  trace_mmap_cursor cur(bytes.data(), bytes.size());
  EXPECT_EQ(cur.size_hint(), r.tr.packets.size());
  auto ref = r.tr.ingress_cursor();
  std::size_t n = 0;
  while (const packet_record* rec = cur.next()) {
    const packet_record* want = ref.next();
    ASSERT_NE(want, nullptr);
    EXPECT_EQ(rec->id, want->id);
    EXPECT_EQ(rec->ingress_time, want->ingress_time);
    EXPECT_EQ(rec->path, want->path);
    ++n;
  }
  EXPECT_EQ(ref.next(), nullptr);
  EXPECT_EQ(n, r.tr.packets.size());
}

TEST(trace_binary, next_run_partitions_by_ingress_instant_in_every_cursor) {
  // Build a trace with known same-instant groups, then check all three
  // cursor implementations agree on the partition.
  trace t;
  const sim::time_ps instants[] = {10, 10, 10, 25, 30, 30, 41};
  std::uint64_t id = 1;
  for (const sim::time_ps at : instants) {
    packet_record r;
    r.id = id++;
    r.path = {1, 2};
    r.ingress_time = at;
    r.egress_time = at + 100;
    t.packets.push_back(r);
  }
  const std::vector<std::size_t> want_runs = {3, 1, 2, 1};

  auto collect = [](trace_cursor& cur) {
    std::vector<std::size_t> runs;
    std::vector<const packet_record*> out;
    for (;;) {
      out.clear();
      const std::size_t n = cur.next_run(out);
      if (n == 0) break;
      EXPECT_EQ(n, out.size());
      for (std::size_t i = 1; i < out.size(); ++i) {
        EXPECT_EQ(out[i]->ingress_time, out[0]->ingress_time);
      }
      runs.push_back(n);
    }
    return runs;
  };

  auto mem = t.ingress_cursor();
  EXPECT_EQ(collect(mem), want_runs);

  std::stringstream text;
  write_trace(text, t);
  trace_stream_reader reader(text);
  EXPECT_EQ(collect(reader), want_runs);

  const auto bytes = to_v2_bytes(t);
  trace_mmap_cursor bin(bytes.data(), bytes.size());
  EXPECT_EQ(collect(bin), want_runs);
}

TEST(trace_binary, streaming_and_upfront_replay_match_on_v2_file) {
  const auto r = small_run(false);
  const std::string path = ::testing::TempDir() + "/ups_trace_test.v2";
  save_trace_v2(path, r.tr);

  const auto& topology = r.topology;
  const auto builder = [&topology](network& n) { topo::populate(topology, n); };
  core::replay_options opt;
  opt.mode = core::replay_mode::lstf;
  opt.keep_outcomes = true;
  const auto res_mem = core::replay_trace(r.tr, builder, opt);

  trace_mmap_cursor streaming_cur(path);
  const auto res_stream = core::replay_trace(streaming_cur, builder, opt);
  opt.injection = core::injection_mode::upfront;
  trace_mmap_cursor upfront_cur(path);
  const auto res_upfront = core::replay_trace(upfront_cur, builder, opt);
  std::remove(path.c_str());

  ups::testing::expect_identical_results(res_mem, res_stream);
  ups::testing::expect_identical_results(res_mem, res_upfront);
}

TEST(trace_binary, open_trace_cursor_sniffs_both_formats) {
  auto r = small_run(false);
  sort_by_ingress(r.tr);
  const std::string text_path = ::testing::TempDir() + "/ups_sniff.v1";
  const std::string bin_path = ::testing::TempDir() + "/ups_sniff.v2";
  save_trace(text_path, r.tr);
  save_trace_v2(bin_path, r.tr);
  const auto text_cur = open_trace_cursor(text_path);
  const auto bin_cur = open_trace_cursor(bin_path);
  std::size_t n_text = 0, n_bin = 0;
  while (text_cur->next() != nullptr) ++n_text;
  while (bin_cur->next() != nullptr) ++n_bin;
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
  EXPECT_EQ(n_text, r.tr.packets.size());
  EXPECT_EQ(n_bin, r.tr.packets.size());
}

// --- corruption robustness ---------------------------------------------------

TEST(trace_binary, bad_magic_and_wrong_version_throw) {
  const auto r = small_run(false);
  auto bytes = to_v2_bytes(r.tr);
  for (std::size_t i = 0; i < 8; ++i) {
    auto bad = bytes;
    bad[i] ^= 0xFF;
    EXPECT_THROW(drain_image(bad), trace_format_error) << "magic byte " << i;
  }
  for (const std::uint32_t v : {0u, 1u, 3u, 0xFFFFFFFFu}) {
    auto bad = bytes;
    std::memcpy(bad.data() + 8, &v, 4);
    EXPECT_THROW(drain_image(bad), trace_format_error) << "version " << v;
  }
}

TEST(trace_binary, every_truncation_throws_never_crashes) {
  // Truncation at any length — mid-header, mid-record, mid-index — must be
  // caught by the size checks (the header's size equation or a bounds
  // check) before any out-of-bounds read.
  const auto r = small_run(false);
  const auto bytes = to_v2_bytes(r.tr);
  ASSERT_GT(bytes.size(), 256u);
  for (std::size_t cut = 0; cut < bytes.size();
       cut += (cut < 64 ? 1 : 97)) {
    std::vector<std::uint8_t> bad(bytes.begin(),
                                  bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(drain_image(bad), trace_format_error) << "cut at " << cut;
  }
}

TEST(trace_binary, declared_count_mismatch_throws) {
  const auto r = small_run(false);
  const auto bytes = to_v2_bytes(r.tr);
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data() + 16, 8);
  ASSERT_EQ(count, r.tr.packets.size());
  for (const std::uint64_t bad_count :
       {count - 1, count + 1, std::uint64_t{0}, UINT64_MAX}) {
    auto bad = bytes;
    std::memcpy(bad.data() + 16, &bad_count, 8);
    EXPECT_THROW(drain_image(bad), trace_format_error)
        << "count " << bad_count;
  }
}

TEST(trace_binary, out_of_order_ingress_index_throws) {
  auto r = small_run(false);
  ASSERT_GT(r.tr.packets.size(), 2u);
  auto bytes = to_v2_bytes(r.tr);
  std::uint64_t index_offset = 0;
  std::memcpy(&index_offset, bytes.data() + 24, 8);
  // Swap the first and last index entries: both still point at valid
  // records, so only the order check can catch it.
  std::uint8_t* idx = bytes.data() + index_offset;
  const std::uint64_t n = r.tr.packets.size();
  std::uint8_t tmp[8];
  std::memcpy(tmp, idx, 8);
  std::memcpy(idx, idx + 8 * (n - 1), 8);
  std::memcpy(idx + 8 * (n - 1), tmp, 8);
  // Guard: the swap must actually invert an ingress pair, or the trace was
  // degenerate (all packets at one instant) and the test proves nothing.
  trace sorted = r.tr;
  sort_by_ingress(sorted);
  ASSERT_NE(sorted.packets.front().ingress_time,
            sorted.packets.back().ingress_time);
  EXPECT_THROW(drain_image(bytes), trace_format_error);
}

TEST(trace_binary, mid_record_corruption_throws) {
  const auto r = small_run(false);
  const auto bytes = to_v2_bytes(r.tr);
  // Inflate the first record's length prefix so it runs past the index.
  {
    auto bad = bytes;
    const std::uint32_t huge = 0x7FFFFFFF;
    std::memcpy(bad.data() + kTraceV2HeaderBytes, &huge, 4);
    EXPECT_THROW(drain_image(bad), trace_format_error);
  }
  // Shrink it below the fixed prefix.
  {
    auto bad = bytes;
    const std::uint32_t tiny = 8;
    std::memcpy(bad.data() + kTraceV2HeaderBytes, &tiny, 4);
    EXPECT_THROW(drain_image(bad), trace_format_error);
  }
  // Point an index entry into the header.
  {
    auto bad = bytes;
    std::uint64_t index_offset = 0;
    std::memcpy(&index_offset, bad.data() + 24, 8);
    const std::uint64_t evil = 4;
    std::memcpy(bad.data() + index_offset, &evil, 8);
    EXPECT_THROW(drain_image(bad), trace_format_error);
  }
  // Near-UINT64_MAX index entry: `offset + 4` wraps to a small value, so
  // only a subtraction-based bounds check rejects it (regression for an
  // overflow that turned this into an out-of-bounds read).
  {
    auto bad = bytes;
    std::uint64_t index_offset = 0;
    std::memcpy(&index_offset, bad.data() + 24, 8);
    const std::uint64_t evil = UINT64_MAX - 3;
    std::memcpy(bad.data() + index_offset, &evil, 8);
    EXPECT_THROW(drain_image(bad), trace_format_error);
  }
}

TEST(trace_binary, random_single_byte_flips_never_crash) {
  // Fuzz-style sweep: every mutation either reads back fully (the flip hit
  // payload data) or throws trace_format_error (it hit structure). Any
  // other outcome — crash, OOB read under ASan, different exception — is a
  // robustness bug. Deterministic seed so failures reproduce.
  const auto r = small_run(true);
  const auto bytes = to_v2_bytes(r.tr);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next_rand = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 400; ++i) {
    auto bad = bytes;
    const std::size_t pos = next_rand() % bad.size();
    bad[pos] ^= static_cast<std::uint8_t>(1u << (next_rand() % 8));
    try {
      (void)drain_image(bad);
    } catch (const trace_format_error&) {
      // expected for structural damage
    }
  }
}

}  // namespace
}  // namespace ups::net
