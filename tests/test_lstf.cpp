// Unit tests for LSTF: per-hop key semantics (Appendix D), slack rewriting,
// drop-highest-slack, FIFO+ equivalence under uniform slack, and resume-
// style preemption at a port.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/lstf.h"
#include "core/registry.h"
#include "net/network.h"
#include "sched/fifo_plus.h"
#include "sim/simulator.h"
#include "topo/basic.h"

namespace ups::core {
namespace {

net::packet_ptr pkt(std::uint64_t id, sim::time_ps slack,
                    std::uint32_t bytes = 1500) {
  net::packet_ptr p = net::make_packet();
  p->id = id;
  p->flow_id = id;
  p->size_bytes = bytes;
  p->slack = slack;
  return p;
}

TEST(lstf_queue, least_slack_first) {
  lstf q(0, sim::kGbps);
  q.enqueue(pkt(1, 30 * sim::kMicrosecond), 0);
  q.enqueue(pkt(2, 10 * sim::kMicrosecond), 0);
  q.enqueue(pkt(3, 20 * sim::kMicrosecond), 0);
  std::vector<std::uint64_t> ids;
  while (auto p = q.dequeue(0)) ids.push_back(p->id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 3, 1}));
}

TEST(lstf_queue, waiting_erodes_slack_ordering) {
  // A packet that arrived earlier has effectively less slack by the same
  // margin: key = enqueue_time + slack (+T). A slack-20us packet enqueued at
  // t=0 beats a slack-10us packet enqueued at t=15us.
  lstf q(0, sim::kGbps);
  q.enqueue(pkt(1, 20 * sim::kMicrosecond), 0);
  q.enqueue(pkt(2, 10 * sim::kMicrosecond), 15 * sim::kMicrosecond);
  auto first = q.dequeue(0);
  EXPECT_EQ(first->id, 1u);
}

TEST(lstf_queue, last_bit_term_accounts_for_size) {
  // Appendix D: the remaining slack of the *last bit* includes +T(p, port).
  // A large packet with slightly smaller slack can rank behind a small one.
  lstf q(0, sim::kGbps);
  q.enqueue(pkt(1, 10 * sim::kMicrosecond, 1500), 0);  // key 10 + 12 = 22us
  q.enqueue(pkt(2, 11 * sim::kMicrosecond, 125), 0);   // key 11 + 1 = 12us
  EXPECT_EQ(q.dequeue(0)->id, 2u);
}

TEST(lstf_queue, drop_highest_slack_policy) {
  lstf q(0, sim::kGbps);
  q.enqueue(pkt(1, 100 * sim::kMicrosecond), 0);
  q.enqueue(pkt(2, 5 * sim::kMicrosecond), 0);
  auto incoming = pkt(3, 50 * sim::kMicrosecond);
  auto victim = q.evict_for(*incoming, 0);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 1u);  // highest remaining slack dropped (§3)
  auto incoming2 = pkt(4, sim::kSecond);
  EXPECT_EQ(q.evict_for(*incoming2, 0), nullptr);  // incoming is worst
}

TEST(lstf_queue, preemption_rank_exposed) {
  lstf q(0, sim::kGbps, /*preemptive=*/true);
  EXPECT_TRUE(q.supports_preemption());
  EXPECT_FALSE(q.peek_rank().has_value());
  q.enqueue(pkt(1, 10 * sim::kMicrosecond), 0);
  ASSERT_TRUE(q.peek_rank().has_value());
  EXPECT_EQ(*q.peek_rank(), 22 * sim::kMicrosecond);
}

TEST(lstf_vs_fifo_plus, uniform_slack_orders_identically) {
  // §3.2: LSTF with equal initial slack is FIFO+. Feed both queues the same
  // arrival pattern with accumulated upstream waits and compare the order.
  lstf a(0, sim::kGbps);
  sched::fifo_plus b(1);
  const sim::time_ps uniform = sim::kSecond;
  struct arrival {
    std::uint64_t id;
    sim::time_ps at;
    sim::time_ps waited;
  };
  const std::vector<arrival> arrivals = {
      {1, 0, 0},
      {2, 5 * sim::kMicrosecond, 40 * sim::kMicrosecond},
      {3, 10 * sim::kMicrosecond, 2 * sim::kMicrosecond},
      {4, 12 * sim::kMicrosecond, 90 * sim::kMicrosecond},
      {5, 20 * sim::kMicrosecond, 0},
  };
  for (const auto& ar : arrivals) {
    auto pa = pkt(ar.id, uniform - ar.waited);  // LSTF slack after waiting
    auto pb = pkt(ar.id, 0);
    pb->fifo_plus_wait = ar.waited;
    a.enqueue(std::move(pa), ar.at);
    b.enqueue(std::move(pb), ar.at);
  }
  for (int i = 0; i < 5; ++i) {
    auto pa = a.dequeue(0);
    auto pb = b.dequeue(0);
    ASSERT_NE(pa, nullptr);
    ASSERT_NE(pb, nullptr);
    EXPECT_EQ(pa->id, pb->id) << "diverged at position " << i;
  }
}

// Port-level preemption: a low-slack arrival pauses the in-service packet;
// the paused remainder finishes afterwards, and slack accounting charges
// the pause as waiting.
TEST(lstf_port, preemption_resumes_paused_packet) {
  sim::simulator sim;
  net::network net(sim);
  auto topo = topo::line(2, sim::kGbps, 0);
  topo::populate(topo, net);
  net.set_buffer_bytes(0);
  net.set_preemption(true);
  net.set_scheduler_factory(
      make_factory(sched_kind::lstf_preemptive, 1, &net));
  net.build();

  std::vector<std::pair<std::uint64_t, sim::time_ps>> egress;
  net.hooks().on_egress = [&](const net::packet& p, sim::time_ps t) {
    egress.emplace_back(p.id, t);
  };

  const auto h0 = topo.host_id(0);
  const auto h1 = topo.host_id(1);
  // Inject directly at the ingress router to control arrival instants.
  auto big = pkt(1, 100 * sim::kMicrosecond, 1500);  // T = 12us per hop
  big->src_host = h0;
  big->dst_host = h1;
  big->path = net.route(h0, h1);
  net.inject_at_ingress(std::move(big), 0);

  auto urgent = pkt(2, 0, 125);  // T = 1us, slack 0: must preempt
  urgent->src_host = h0;
  urgent->dst_host = h1;
  urgent->path = net.route(h0, h1);
  net.inject_at_ingress(std::move(urgent), 6 * sim::kMicrosecond);

  sim.run();
  ASSERT_EQ(egress.size(), 2u);
  // The urgent packet exits first even though the big one started service.
  EXPECT_EQ(egress[0].first, 2u);
  EXPECT_EQ(egress[1].first, 1u);
  // Big packet: 6us served + paused 1us + 6us remaining at r0, then r1
  // transmits it after the urgent packet clears.
  EXPECT_GT(egress[1].second, 24 * sim::kMicrosecond);
}

TEST(lstf_port, no_preemption_for_equal_or_worse_rank) {
  sim::simulator sim;
  net::network net(sim);
  auto topo = topo::line(2, sim::kGbps, 0);
  topo::populate(topo, net);
  net.set_buffer_bytes(0);
  net.set_preemption(true);
  net.set_scheduler_factory(
      make_factory(sched_kind::lstf_preemptive, 1, &net));
  net.build();

  std::uint64_t preemptions_before = 0;
  const auto h0 = topo.host_id(0);
  const auto h1 = topo.host_id(1);
  auto first = pkt(1, 0, 1500);
  first->src_host = h0;
  first->dst_host = h1;
  first->path = net.route(h0, h1);
  net.inject_at_ingress(std::move(first), 0);
  auto second = pkt(2, sim::kSecond, 1500);  // plenty of slack: waits
  second->src_host = h0;
  second->dst_host = h1;
  second->path = net.route(h0, h1);
  net.inject_at_ingress(std::move(second), sim::kMicrosecond);
  sim.run();
  for (const auto& pt : net.ports()) {
    preemptions_before += pt->stats().preemptions;
  }
  EXPECT_EQ(preemptions_before, 0u);
}

}  // namespace
}  // namespace ups::core
