// Unit tests for the fair-queueing disciplines (virtual-finish-time FQ and
// deficit round robin).
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "sched/drr.h"
#include "sched/fq.h"

namespace ups::sched {
namespace {

net::packet_ptr pkt(std::uint64_t id, std::uint64_t flow,
                    std::uint32_t bytes = 1500) {
  net::packet_ptr p = net::make_packet();
  p->id = id;
  p->flow_id = flow;
  p->size_bytes = bytes;
  return p;
}

TEST(fq, interleaves_two_backlogged_flows) {
  fq q(sim::kGbps);
  // Flow 1 dumps 4 packets, then flow 2 dumps 4: virtual finish times must
  // interleave service 1,2,1,2,... rather than drain flow 1 first.
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(pkt(10 + i, 1), 0);
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(pkt(20 + i, 2), 0);
  std::vector<std::uint64_t> flows;
  while (auto p = q.dequeue(0)) flows.push_back(p->flow_id);
  // Both flows accumulate identical finish-tag ladders (12, 24, 36, 48 us);
  // equal tags break FCFS, so service strictly alternates.
  EXPECT_EQ(flows, (std::vector<std::uint64_t>{1, 2, 1, 2, 1, 2, 1, 2}));
}

TEST(fq, smaller_packets_get_proportionally_more_service) {
  fq q(sim::kGbps);
  // Flow 1 sends 750 B packets, flow 2 sends 1500 B: per round of tags flow
  // 1 should send twice as many packets (equal bytes).
  for (std::uint64_t i = 0; i < 8; ++i) q.enqueue(pkt(10 + i, 1, 750), 0);
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(pkt(20 + i, 2, 1500), 0);
  std::map<std::uint64_t, std::uint64_t> bytes_served;
  for (int i = 0; i < 6; ++i) {
    auto p = q.dequeue(0);
    ASSERT_NE(p, nullptr);
    bytes_served[p->flow_id] += p->size_bytes;
  }
  EXPECT_NEAR(static_cast<double>(bytes_served[1]),
              static_cast<double>(bytes_served[2]), 1500.0);
}

TEST(fq, single_flow_is_fifo) {
  fq q(sim::kGbps);
  for (std::uint64_t i = 1; i <= 5; ++i) q.enqueue(pkt(i, 42), 0);
  std::vector<std::uint64_t> ids;
  while (auto p = q.dequeue(0)) ids.push_back(p->id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(fq, evicts_largest_finish_tag) {
  fq q(sim::kGbps);
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(pkt(10 + i, 1), 0);
  q.enqueue(pkt(20, 2), 0);
  auto incoming = pkt(30, 3);
  auto victim = q.evict_for(*incoming, 0);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 13u);  // flow 1's furthest-ahead packet
}

TEST(drr, equal_quantum_shares_bandwidth) {
  drr q(1500);
  for (std::uint64_t i = 0; i < 6; ++i) q.enqueue(pkt(10 + i, 1), 0);
  for (std::uint64_t i = 0; i < 6; ++i) q.enqueue(pkt(20 + i, 2), 0);
  std::vector<std::uint64_t> flows;
  while (auto p = q.dequeue(0)) flows.push_back(p->flow_id);
  // Alternating service with a quantum of one packet.
  EXPECT_EQ(flows, (std::vector<std::uint64_t>{1, 2, 1, 2, 1, 2, 1, 2, 1, 2,
                                               1, 2}));
}

TEST(drr, deficit_accumulates_for_large_packets) {
  drr q(800);  // quantum below the packet size: needs two rounds per packet
  q.enqueue(pkt(1, 1, 1500), 0);
  q.enqueue(pkt(2, 2, 600), 0);
  q.enqueue(pkt(3, 2, 600), 0);
  std::vector<std::uint64_t> ids;
  while (auto p = q.dequeue(0)) ids.push_back(p->id);
  // Flow 2's first small packet fits one quantum immediately; flow 1 banks
  // deficit across two rounds and then sends; flow 2 finishes last.
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 1, 3}));
}

TEST(drr, empty_flow_leaves_ring) {
  drr q(1500);
  q.enqueue(pkt(1, 1), 0);
  EXPECT_EQ(q.dequeue(0)->id, 1u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.dequeue(0), nullptr);
  // Flow can return later.
  q.enqueue(pkt(2, 1), 0);
  EXPECT_EQ(q.dequeue(0)->id, 2u);
}

// Reference DRR over plain std containers, mirroring the textbook
// algorithm the slab/freelist implementation must reproduce exactly.
class drr_reference {
 public:
  explicit drr_reference(std::int64_t quantum) : quantum_(quantum) {}

  void enqueue(net::packet_ptr p) {
    auto& st = flows_[p->flow_id];
    const std::uint64_t flow = p->flow_id;
    st.q.push_back(std::move(p));
    if (!st.active) {
      st.active = true;
      st.deficit = 0;
      ring_.push_back(flow);
    }
  }

  net::packet_ptr dequeue() {
    while (!ring_.empty()) {
      const std::uint64_t flow = ring_.front();
      auto& st = flows_[flow];
      if (st.q.empty()) {
        st.active = false;
        st.deficit = 0;
        ring_.pop_front();
        continue;
      }
      const auto head = static_cast<std::int64_t>(st.q.front()->size_bytes);
      if (st.deficit < head) {
        st.deficit += quantum_;
        ring_.pop_front();
        ring_.push_back(flow);
        continue;
      }
      st.deficit -= head;
      net::packet_ptr p = std::move(st.q.front());
      st.q.pop_front();
      if (st.q.empty()) {
        st.active = false;
        st.deficit = 0;
        ring_.pop_front();
      }
      return p;
    }
    return nullptr;
  }

 private:
  struct flow_state {
    std::deque<net::packet_ptr> q;
    std::int64_t deficit = 0;
    bool active = false;
  };
  std::int64_t quantum_;
  std::map<std::uint64_t, flow_state> flows_;
  std::deque<std::uint64_t> ring_;
};

TEST(drr, slab_storage_matches_reference_through_quiet_periods) {
  // Randomized differential run: bursts of enqueues over a handful of
  // flows interleaved with drains (so flows go quiet and re-activate,
  // exercising slab-node recycling and persistent flow entries), checked
  // packet for packet against the reference implementation.
  drr q(1000);
  drr_reference ref(1000);
  std::uint64_t state = 12345;
  auto rnd = [&state](std::uint64_t below) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return (state >> 33) % below;
  };
  std::uint64_t id = 1;
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t enq = rnd(6);
    for (std::uint64_t i = 0; i < enq; ++i) {
      const std::uint64_t flow = rnd(5);
      const auto bytes = static_cast<std::uint32_t>(200 + 250 * rnd(7));
      q.enqueue(pkt(id, flow, bytes), 0);
      ref.enqueue(pkt(id, flow, bytes));
      ++id;
    }
    const std::uint64_t deq = rnd(8);  // drains outpace arrivals at times
    for (std::uint64_t i = 0; i < deq; ++i) {
      auto a = q.dequeue(0);
      auto b = ref.dequeue();
      if (b == nullptr) {
        EXPECT_EQ(a, nullptr);
        break;
      }
      ASSERT_NE(a, nullptr);
      EXPECT_EQ(a->id, b->id);
    }
  }
  // Final drain must agree to the last packet.
  for (;;) {
    auto a = q.dequeue(0);
    auto b = ref.dequeue();
    if (b == nullptr) {
      EXPECT_EQ(a, nullptr);
      break;
    }
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->id, b->id);
  }
  EXPECT_TRUE(q.empty());
}

TEST(drr, byte_and_packet_accounting) {
  drr q(1500);
  q.enqueue(pkt(1, 1, 100), 0);
  q.enqueue(pkt(2, 2, 200), 0);
  EXPECT_EQ(q.packets(), 2u);
  EXPECT_EQ(q.bytes(), 300u);
  (void)q.dequeue(0);
  EXPECT_EQ(q.packets(), 1u);
}

}  // namespace
}  // namespace ups::sched
