// Unit tests for the fair-queueing disciplines (virtual-finish-time FQ and
// deficit round robin).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "sched/drr.h"
#include "sched/fq.h"

namespace ups::sched {
namespace {

net::packet_ptr pkt(std::uint64_t id, std::uint64_t flow,
                    std::uint32_t bytes = 1500) {
  net::packet_ptr p = net::make_packet();
  p->id = id;
  p->flow_id = flow;
  p->size_bytes = bytes;
  return p;
}

TEST(fq, interleaves_two_backlogged_flows) {
  fq q(sim::kGbps);
  // Flow 1 dumps 4 packets, then flow 2 dumps 4: virtual finish times must
  // interleave service 1,2,1,2,... rather than drain flow 1 first.
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(pkt(10 + i, 1), 0);
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(pkt(20 + i, 2), 0);
  std::vector<std::uint64_t> flows;
  while (auto p = q.dequeue(0)) flows.push_back(p->flow_id);
  // Both flows accumulate identical finish-tag ladders (12, 24, 36, 48 us);
  // equal tags break FCFS, so service strictly alternates.
  EXPECT_EQ(flows, (std::vector<std::uint64_t>{1, 2, 1, 2, 1, 2, 1, 2}));
}

TEST(fq, smaller_packets_get_proportionally_more_service) {
  fq q(sim::kGbps);
  // Flow 1 sends 750 B packets, flow 2 sends 1500 B: per round of tags flow
  // 1 should send twice as many packets (equal bytes).
  for (std::uint64_t i = 0; i < 8; ++i) q.enqueue(pkt(10 + i, 1, 750), 0);
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(pkt(20 + i, 2, 1500), 0);
  std::map<std::uint64_t, std::uint64_t> bytes_served;
  for (int i = 0; i < 6; ++i) {
    auto p = q.dequeue(0);
    ASSERT_NE(p, nullptr);
    bytes_served[p->flow_id] += p->size_bytes;
  }
  EXPECT_NEAR(static_cast<double>(bytes_served[1]),
              static_cast<double>(bytes_served[2]), 1500.0);
}

TEST(fq, single_flow_is_fifo) {
  fq q(sim::kGbps);
  for (std::uint64_t i = 1; i <= 5; ++i) q.enqueue(pkt(i, 42), 0);
  std::vector<std::uint64_t> ids;
  while (auto p = q.dequeue(0)) ids.push_back(p->id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(fq, evicts_largest_finish_tag) {
  fq q(sim::kGbps);
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(pkt(10 + i, 1), 0);
  q.enqueue(pkt(20, 2), 0);
  auto incoming = pkt(30, 3);
  auto victim = q.evict_for(*incoming, 0);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 13u);  // flow 1's furthest-ahead packet
}

TEST(drr, equal_quantum_shares_bandwidth) {
  drr q(1500);
  for (std::uint64_t i = 0; i < 6; ++i) q.enqueue(pkt(10 + i, 1), 0);
  for (std::uint64_t i = 0; i < 6; ++i) q.enqueue(pkt(20 + i, 2), 0);
  std::vector<std::uint64_t> flows;
  while (auto p = q.dequeue(0)) flows.push_back(p->flow_id);
  // Alternating service with a quantum of one packet.
  EXPECT_EQ(flows, (std::vector<std::uint64_t>{1, 2, 1, 2, 1, 2, 1, 2, 1, 2,
                                               1, 2}));
}

TEST(drr, deficit_accumulates_for_large_packets) {
  drr q(800);  // quantum below the packet size: needs two rounds per packet
  q.enqueue(pkt(1, 1, 1500), 0);
  q.enqueue(pkt(2, 2, 600), 0);
  q.enqueue(pkt(3, 2, 600), 0);
  std::vector<std::uint64_t> ids;
  while (auto p = q.dequeue(0)) ids.push_back(p->id);
  // Flow 2's first small packet fits one quantum immediately; flow 1 banks
  // deficit across two rounds and then sends; flow 2 finishes last.
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 1, 3}));
}

TEST(drr, empty_flow_leaves_ring) {
  drr q(1500);
  q.enqueue(pkt(1, 1), 0);
  EXPECT_EQ(q.dequeue(0)->id, 1u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.dequeue(0), nullptr);
  // Flow can return later.
  q.enqueue(pkt(2, 1), 0);
  EXPECT_EQ(q.dequeue(0)->id, 2u);
}

TEST(drr, byte_and_packet_accounting) {
  drr q(1500);
  q.enqueue(pkt(1, 1, 100), 0);
  q.enqueue(pkt(2, 2, 200), 0);
  EXPECT_EQ(q.packets(), 2u);
  EXPECT_EQ(q.bytes(), 300u);
  (void)q.dequeue(0);
  EXPECT_EQ(q.packets(), 1u);
}

}  // namespace
}  // namespace ups::sched
