// Unit tests for deterministic shortest-path routing.
#include <gtest/gtest.h>

#include "net/routing.h"

namespace ups::net {
namespace {

routing_graph make_graph(int n,
                         std::initializer_list<std::tuple<int, int, long>> e) {
  routing_graph g(n);
  for (const auto& [a, b, w] : e) {
    g[a].push_back(routing_edge{static_cast<node_id>(b), w});
    g[b].push_back(routing_edge{static_cast<node_id>(a), w});
  }
  return g;
}

TEST(routing, trivial_self_path) {
  const auto g = make_graph(2, {{0, 1, 1}});
  const auto p = shortest_path(g, 0, 0);
  EXPECT_EQ(p, (std::vector<node_id>{0}));
}

TEST(routing, direct_edge) {
  const auto g = make_graph(2, {{0, 1, 5}});
  EXPECT_EQ(shortest_path(g, 0, 1), (std::vector<node_id>{0, 1}));
}

TEST(routing, prefers_lower_total_weight) {
  // 0-1-2 costs 2, 0-2 costs 5.
  const auto g = make_graph(3, {{0, 1, 1}, {1, 2, 1}, {0, 2, 5}});
  EXPECT_EQ(shortest_path(g, 0, 2), (std::vector<node_id>{0, 1, 2}));
}

TEST(routing, deterministic_tie_break_prefers_smaller_predecessor) {
  // Two equal-cost 2-hop paths 0-1-3 and 0-2-3: must pick via node 1.
  const auto g =
      make_graph(4, {{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}});
  EXPECT_EQ(shortest_path(g, 0, 3), (std::vector<node_id>{0, 1, 3}));
}

TEST(routing, unreachable_returns_empty) {
  routing_graph g(3);
  g[0].push_back(routing_edge{1, 1});
  g[1].push_back(routing_edge{0, 1});
  EXPECT_TRUE(shortest_path(g, 0, 2).empty());
}

TEST(routing, long_chain) {
  routing_graph g(50);
  for (node_id i = 0; i + 1 < 50; ++i) {
    g[i].push_back(routing_edge{i + 1, 1});
    g[i + 1].push_back(routing_edge{i, 1});
  }
  const auto p = shortest_path(g, 0, 49);
  ASSERT_EQ(p.size(), 50u);
  for (node_id i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

}  // namespace
}  // namespace ups::net
