// Tests for the v3 block-structured trace format: round trips (including
// hand-built edge records and runs that span block boundaries), replay
// equivalence against the v1/v2 paths both serial and through
// the dispatch fabric, index-based seeking, and corruption robustness — every
// mutation of a valid image must either read back cleanly or throw
// trace_format_error, never crash or read out of bounds (the ASan/UBSan CI
// job gives the "never UB" half teeth).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/registry.h"
#include "core/replay.h"
#include "exp/replay_experiment.h"
#include "exp/dispatch/backend.h"
#include "net/network.h"
#include "net/trace.h"
#include "net/trace_binary.h"
#include "net/trace_io.h"
#include "replay_test_util.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "traffic/size_dist.h"
#include "traffic/udp_app.h"
#include "traffic/workload.h"

namespace ups::net {
namespace {

struct recorded {
  topo::topology topology;
  trace tr;
};

recorded small_run(bool hop_times) {
  recorded out;
  out.topology = topo::dumbbell(3, 10 * sim::kGbps, sim::kGbps);
  sim::simulator sim;
  network net(sim);
  topo::populate(out.topology, net);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(
      core::make_factory(core::sched_kind::random, 5, &net));
  net.build();
  trace_recorder rec(net, hop_times);
  traffic::fixed_size dist(15'000);
  traffic::workload_config wcfg;
  wcfg.packet_budget = 800;
  auto wl = traffic::generate(net, out.topology, dist, wcfg);
  traffic::udp_app::options aopt;
  aopt.record_hops = hop_times;
  traffic::udp_app app(net, std::move(wl.flows), aopt);
  sim.run();
  out.tr = rec.take();
  return out;
}

void expect_equal(const trace& a, const trace& b) {
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    const auto& x = a.packets[i];
    const auto& y = b.packets[i];
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.flow_id, y.flow_id);
    EXPECT_EQ(x.seq_in_flow, y.seq_in_flow);
    EXPECT_EQ(x.size_bytes, y.size_bytes);
    EXPECT_EQ(x.src_host, y.src_host);
    EXPECT_EQ(x.dst_host, y.dst_host);
    EXPECT_EQ(x.ingress_time, y.ingress_time);
    EXPECT_EQ(x.egress_time, y.egress_time);
    EXPECT_EQ(x.queueing_delay, y.queueing_delay);
    EXPECT_EQ(x.flow_size_bytes, y.flow_size_bytes);
    EXPECT_EQ(x.path, y.path);
    EXPECT_EQ(x.hop_departs, y.hop_departs);
  }
}

// Serializes to a v3 byte image in memory (the writer needs a seekable
// stream; stringstream qualifies).
std::vector<std::uint8_t> to_v3_bytes(const trace& t) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_trace_v3(ss, t);
  const std::string s = ss.str();
  return {s.begin(), s.end()};
}

// Same, but through a raw writer with a caller-chosen block size so tests
// can force multi-block files out of small traces. Appends in input order
// (the caller sorts).
std::vector<std::uint8_t> to_v3_bytes_blocked(const trace& t,
                                              std::uint32_t per_block) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  trace_v3_writer w(ss, t.packets.size(), per_block);
  for (const auto& r : t.packets) w.append(r);
  w.finish();
  const std::string s = ss.str();
  return {s.begin(), s.end()};
}

// Drains a cursor built over `bytes`, exercising every decode and order
// check — the "read it all" half of the fuzz property.
std::size_t drain_image(const std::vector<std::uint8_t>& bytes) {
  trace_v3_cursor cur(bytes.data(), bytes.size());
  std::size_t n = 0;
  while (cur.next() != nullptr) ++n;
  return n;
}

TEST(trace_v3, round_trip_preserves_all_fields) {
  auto r = small_run(true);
  // v3 stores ingress order, so compare against the sorted trace.
  sort_by_ingress(r.tr);
  const auto bytes = to_v3_bytes(r.tr);
  const trace back = read_trace_v3(bytes.data(), bytes.size());
  expect_equal(r.tr, back);
  ASSERT_FALSE(back.packets.empty());
  EXPECT_FALSE(back.packets.front().hop_departs.empty());
}

TEST(trace_v3, writer_sorts_any_input_order) {
  // The recorder appends in egress order; write_trace_v3 must produce the
  // same file (and therefore the same replay) as a pre-sorted input.
  const auto r = small_run(false);
  bool out_of_order = false;
  for (std::size_t i = 1; i < r.tr.packets.size(); ++i) {
    if (r.tr.packets[i].ingress_time < r.tr.packets[i - 1].ingress_time) {
      out_of_order = true;
      break;
    }
  }
  ASSERT_TRUE(out_of_order) << "run should egress out of ingress order";
  const auto bytes = to_v3_bytes(r.tr);
  trace sorted = r.tr;
  sort_by_ingress(sorted);
  EXPECT_EQ(bytes, to_v3_bytes(sorted));
  // And the decoded stream matches the in-memory ingress cursor record for
  // record (the stable same-instant tie-break included).
  trace_v3_cursor cur(bytes.data(), bytes.size());
  auto ref = r.tr.ingress_cursor();
  while (const packet_record* rec = cur.next()) {
    const packet_record* want = ref.next();
    ASSERT_NE(want, nullptr);
    EXPECT_EQ(rec->id, want->id);
    EXPECT_EQ(rec->ingress_time, want->ingress_time);
  }
  EXPECT_EQ(ref.next(), nullptr);
}

TEST(trace_v3, round_trip_edge_case_records) {
  // Hand-built records the workload generator never produces, in ingress
  // order (the v3 writer requires it): extreme ids, negative times,
  // kInvalidNode endpoints, empty and single-hop paths.
  trace t;
  packet_record b;
  b.id = UINT64_MAX;
  b.flow_id = UINT64_MAX;
  b.seq_in_flow = UINT32_MAX;
  b.size_bytes = UINT32_MAX;
  b.src_host = kInvalidNode;  // -1 survives the zigzag encoding
  b.dst_host = kInvalidNode;
  b.path = {};  // empty path, empty hop_departs
  b.ingress_time = -1;
  b.egress_time = -1;
  b.queueing_delay = -5;
  t.packets.push_back(b);
  packet_record a;
  a.id = 1;
  a.flow_id = 7;
  a.size_bytes = 0;
  a.src_host = 0;
  a.dst_host = 0;
  a.path = {4};  // single hop
  a.ingress_time = 0;
  a.egress_time = INT64_MAX / 8;
  t.packets.push_back(a);
  packet_record c;
  c.id = 3;
  c.path = {1, 2, 3, 4, 5};
  c.hop_departs = {10, 20, 30, 40, 50};
  c.ingress_time = 5;
  t.packets.push_back(c);

  const auto bytes = to_v3_bytes(t);
  const trace back = read_trace_v3(bytes.data(), bytes.size());
  expect_equal(t, back);
}

TEST(trace_v3, empty_trace_round_trips) {
  const trace t;
  const auto bytes = to_v3_bytes(t);
  EXPECT_EQ(bytes.size(), kTraceV3HeaderBytes);
  trace_v3_cursor cur(bytes.data(), bytes.size());
  EXPECT_EQ(cur.size_hint(), 0u);
  EXPECT_EQ(cur.next(), nullptr);
}

TEST(trace_v3, next_run_partitions_across_block_boundaries) {
  // Same-instant groups deliberately straddling 4-record blocks: a run must
  // come back whole even when its records live in different blocks, and the
  // partition must match the in-memory cursor's.
  trace t;
  const sim::time_ps instants[] = {10, 10, 10, 25, 25, 25, 25, 25, 30, 41};
  std::uint64_t id = 1;
  for (const sim::time_ps at : instants) {
    packet_record r;
    r.id = id++;
    r.path = {1, 2};
    r.ingress_time = at;
    r.egress_time = at + 100;
    t.packets.push_back(r);
  }
  const std::vector<std::size_t> want_runs = {3, 5, 1, 1};

  auto collect = [](trace_cursor& cur) {
    std::vector<std::size_t> runs;
    std::vector<const packet_record*> out;
    for (;;) {
      out.clear();
      const std::size_t n = cur.next_run(out);
      if (n == 0) break;
      EXPECT_EQ(n, out.size());
      for (std::size_t i = 1; i < out.size(); ++i) {
        EXPECT_EQ(out[i]->ingress_time, out[0]->ingress_time);
        EXPECT_EQ(out[i]->id, out[i - 1]->id + 1);  // stable tie-break
      }
      runs.push_back(n);
    }
    return runs;
  };

  auto mem = t.ingress_cursor();
  EXPECT_EQ(collect(mem), want_runs);
  const auto bytes = to_v3_bytes_blocked(t, 4);
  {
    trace_v3_cursor cur(bytes.data(), bytes.size());
    EXPECT_EQ(cur.block_count(), 3u);
    EXPECT_EQ(collect(cur), want_runs);
  }
  // Single-block layout must agree too.
  const auto one = to_v3_bytes(t);
  trace_v3_cursor cur(one.data(), one.size());
  EXPECT_EQ(cur.block_count(), 1u);
  EXPECT_EQ(collect(cur), want_runs);
}

// Writes a byte image to a temp file and returns its path (decode-ahead
// needs the file constructor: the pipeline thread is tied to the mmap).
std::string write_temp(const std::vector<std::uint8_t>& bytes,
                       const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  f.close();
  return path;
}

// Drains a file-backed cursor through next_run into an owned trace,
// comparing every field the assembler writes — including the drop
// columns, which expect_equal (built for loss-free round trips) skips.
trace drain_file(const std::string& path, trace_access access) {
  trace out;
  trace_v3_cursor cur(path, access);
  std::vector<const packet_record*> run;
  for (;;) {
    run.clear();
    if (cur.next_run(run) == 0) break;
    for (const packet_record* r : run) out.packets.push_back(*r);
  }
  return out;
}

void expect_equal_with_drops(const trace& a, const trace& b) {
  expect_equal(a, b);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    EXPECT_EQ(a.packets[i].drop_hop, b.packets[i].drop_hop) << i;
    EXPECT_EQ(a.packets[i].dropped_kind, b.packets[i].dropped_kind) << i;
    EXPECT_EQ(a.packets[i].drop_time, b.packets[i].drop_time) << i;
  }
}

TEST(trace_v3, decode_ahead_drain_identical_to_sequential) {
  // The decode-ahead pipeline (background decoder thread + SPSC conveyor)
  // must be invisible: same records, same order, same values as the
  // synchronous cursor over a multi-block file.
  auto r = small_run(true);
  sort_by_ingress(r.tr);
  const auto path =
      write_temp(to_v3_bytes_blocked(r.tr, 64), "ups_ahead.v3");
  const trace seq = drain_file(path, trace_access::sequential);
  const trace ahead = drain_file(path, trace_access::decode_ahead);
  ASSERT_EQ(seq.packets.size(), r.tr.packets.size());
  expect_equal_with_drops(seq, ahead);
  expect_equal(r.tr, ahead);
  std::remove(path.c_str());
}

TEST(trace_v3, decode_ahead_identical_on_drop_column_trace) {
  // Same invariant through the widened 16-column (lossy) layout: mark a
  // scattering of records dropped at various hops and kinds, write with
  // the drop columns, and require byte-identical assembly both ways.
  auto r = small_run(true);
  sort_by_ingress(r.tr);
  for (std::size_t i = 0; i < r.tr.packets.size(); i += 7) {
    auto& p = r.tr.packets[i];
    if (p.path.empty()) continue;
    p.drop_hop = static_cast<std::int32_t>(i % p.path.size());
    p.dropped_kind = (i % 2) ? drop_kind::wire : drop_kind::buffer;
    p.drop_time = p.ingress_time + static_cast<sim::time_ps>(i);
  }
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  trace_v3_writer w(ss, r.tr.packets.size(), 64, /*with_drops=*/true);
  for (const auto& p : r.tr.packets) w.append(p);
  w.finish();
  const std::string s = ss.str();
  const auto path = write_temp({s.begin(), s.end()}, "ups_ahead_drops.v3");
  const trace seq = drain_file(path, trace_access::sequential);
  const trace ahead = drain_file(path, trace_access::decode_ahead);
  expect_equal_with_drops(seq, ahead);
  expect_equal_with_drops(r.tr, ahead);
  std::remove(path.c_str());
}

TEST(trace_v3, decode_ahead_survives_mid_file_seeks) {
  // Seeking must tear the pipeline down and restart it cleanly: after each
  // seek_lower_bound the decode-ahead cursor yields exactly the records
  // the synchronous cursor yields.
  auto r = small_run(false);
  sort_by_ingress(r.tr);
  const auto path =
      write_temp(to_v3_bytes_blocked(r.tr, 64), "ups_ahead_seek.v3");
  trace_v3_cursor seq(path, trace_access::sequential);
  trace_v3_cursor ahead(path, trace_access::decode_ahead);
  const auto& pk = r.tr.packets;
  const sim::time_ps probes[] = {
      pk[pk.size() / 2].ingress_time, pk[pk.size() / 4].ingress_time,
      pk.front().ingress_time, pk[(3 * pk.size()) / 4].ingress_time + 1,
      pk.back().ingress_time + 1};
  for (const sim::time_ps t : probes) {
    seq.seek_lower_bound(t);
    ahead.seek_lower_bound(t);
    // Walk a stretch after the seek (and at the last probe, to the end).
    for (int step = 0; step < 200; ++step) {
      const packet_record* a = seq.next();
      const packet_record* b = ahead.next();
      if (a == nullptr || b == nullptr) {
        EXPECT_EQ(a == nullptr, b == nullptr) << "probe " << t;
        break;
      }
      ASSERT_EQ(a->id, b->id) << "probe " << t << " step " << step;
      ASSERT_EQ(a->ingress_time, b->ingress_time);
      ASSERT_EQ(a->path, b->path);
      ASSERT_EQ(a->hop_departs, b->hop_departs);
    }
  }
  std::remove(path.c_str());
}

TEST(trace_v3, seek_lower_bound_matches_linear_scan) {
  auto r = small_run(false);
  sort_by_ingress(r.tr);
  const auto bytes = to_v3_bytes_blocked(r.tr, 64);
  trace_v3_cursor cur(bytes.data(), bytes.size());
  ASSERT_GT(cur.block_count(), 3u);
  const auto& pk = r.tr.packets;
  const sim::time_ps probes[] = {
      pk.front().ingress_time - 1, pk.front().ingress_time,
      pk[pk.size() / 3].ingress_time, pk[pk.size() / 2].ingress_time + 1,
      pk.back().ingress_time + 1};
  for (const sim::time_ps t : probes) {
    std::size_t want = 0;
    while (want < pk.size() && pk[want].ingress_time < t) ++want;
    cur.seek_lower_bound(t);
    if (want == pk.size()) {
      EXPECT_EQ(cur.next(), nullptr) << "probe " << t;
      continue;
    }
    const packet_record* got = cur.next();
    ASSERT_NE(got, nullptr) << "probe " << t;
    EXPECT_EQ(got->id, pk[want].id) << "probe " << t;
    EXPECT_EQ(got->ingress_time, pk[want].ingress_time);
  }
}

TEST(trace_v3, block_range_drain_covers_the_file_exactly_once) {
  // The disk-shard access pattern: consumers fence on current_block() after
  // seek_to_block(), and their union must equal one sequential drain.
  auto r = small_run(false);
  sort_by_ingress(r.tr);
  const auto bytes = to_v3_bytes_blocked(r.tr, 32);
  trace_v3_cursor probe(bytes.data(), bytes.size());
  const std::uint64_t blocks = probe.block_count();
  ASSERT_GT(blocks, 4u);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t begin = 0; begin < blocks; begin += 3) {
    const std::uint64_t end = std::min(begin + 3, blocks);
    trace_v3_cursor cur(bytes.data(), bytes.size());
    cur.seek_to_block(begin);
    while (cur.current_block() < end) {
      const packet_record* rec = cur.next();
      ASSERT_NE(rec, nullptr);
      ids.push_back(rec->id);
    }
  }
  ASSERT_EQ(ids.size(), r.tr.packets.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], r.tr.packets[i].id);
  }
}

TEST(trace_v3, replay_identical_across_v1_v2_v3_serial_and_sharded) {
  // The headline invariant: the same recorded schedule replayed from all
  // three on-disk formats — serially and through the dispatch thread
  // backend — must produce byte-identical outcomes.
  auto r = small_run(false);
  sort_by_ingress(r.tr);
  const std::string d = ::testing::TempDir();
  const std::string p1 = d + "/ups_fmt.v1";
  const std::string p2 = d + "/ups_fmt.v2";
  const std::string p3 = d + "/ups_fmt.v3";
  save_trace(p1, r.tr);
  save_trace_v2(p2, r.tr);
  save_trace_v3(p3, r.tr);

  const sim::time_ps threshold =
      sim::transmission_time(1500, r.topology.bottleneck_rate());
  const auto baseline = exp::run_replay_file(
      p1, r.topology, threshold, core::replay_mode::lstf, true);
  for (const std::string& p : {p2, p3}) {
    const auto serial = exp::run_replay_file(p, r.topology, threshold,
                                             core::replay_mode::lstf, true);
    ups::testing::expect_identical_results(baseline, serial);
  }
  exp::disk_shard_task task;
  task.topology = r.topology;
  task.threshold_T = threshold;
  task.modes = {core::replay_mode::lstf, core::replay_mode::edf,
                core::replay_mode::lstf_pheap};
  exp::shard_options opt;
  opt.keep_outcomes = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    exp::dispatch::backend_spec spec;
    spec.kind = exp::dispatch::backend_kind::thread;
    spec.workers = threads;
    task.trace_path = p3;
    const auto v3_rep = exp::dispatch::run(
        exp::dispatch::job_plan::from_disk(task, opt), spec);
    v3_rep.throw_if_failed();
    const auto& v3_res = v3_rep.disk_replays;
    task.trace_path = p2;
    const auto v2_rep = exp::dispatch::run(
        exp::dispatch::job_plan::from_disk(task, opt), spec);
    v2_rep.throw_if_failed();
    const auto& v2_res = v2_rep.disk_replays;
    ASSERT_EQ(v3_res.size(), task.modes.size());
    for (std::size_t m = 0; m < task.modes.size(); ++m) {
      ups::testing::expect_identical_results(v2_res[m].result,
                                             v3_res[m].result);
    }
    ups::testing::expect_identical_results(baseline, v3_res[0].result);
  }
  std::remove(p1.c_str());
  std::remove(p2.c_str());
  std::remove(p3.c_str());
}

TEST(trace_v3, convert_round_trip_through_v2_preserves_replay) {
  // The tracec convert path: v2 -> v3 streams through the mmap cursor, v3
  // -> v2 through the block cursor. Fields and replay outcomes must
  // survive both directions.
  auto r = small_run(true);
  const auto v2 = [&] {
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_trace_v2(ss, r.tr);
    const std::string s = ss.str();
    return std::vector<std::uint8_t>{s.begin(), s.end()};
  }();
  // v2 -> v3 (the cursor yields ingress order, which v3 requires).
  std::stringstream s3(std::ios::in | std::ios::out | std::ios::binary);
  {
    trace_mmap_cursor cur(v2.data(), v2.size());
    trace_v3_writer w(s3, cur.size_hint());
    while (const packet_record* rec = cur.next()) w.append(*rec);
    w.finish();
  }
  const std::string i3 = s3.str();
  // v3 -> v2 back.
  std::stringstream s2(std::ios::in | std::ios::out | std::ios::binary);
  {
    trace_v3_cursor cur(reinterpret_cast<const std::uint8_t*>(i3.data()),
                        i3.size());
    trace_binary_writer w(s2);
    while (const packet_record* rec = cur.next()) w.append(*rec);
    w.finish();
  }
  const std::string i2 = s2.str();
  trace sorted = r.tr;
  sort_by_ingress(sorted);
  const trace back = read_trace_v2(
      reinterpret_cast<const std::uint8_t*>(i2.data()), i2.size());
  expect_equal(sorted, back);
}

TEST(trace_v3, open_trace_cursor_sniffs_v3) {
  auto r = small_run(false);
  sort_by_ingress(r.tr);
  const std::string path = ::testing::TempDir() + "/ups_sniff.v3";
  save_trace_v3(path, r.tr);
  EXPECT_TRUE(is_trace_v3_file(path));
  EXPECT_FALSE(is_trace_v2_file(path));
  const auto cur = open_trace_cursor(path);
  std::size_t n = 0;
  while (cur->next() != nullptr) ++n;
  EXPECT_EQ(n, r.tr.packets.size());
  // The random-access advice path must serve the same records.
  auto rnd = open_trace_cursor(path, trace_access::random);
  std::size_t m = 0;
  while (rnd->next() != nullptr) ++m;
  std::remove(path.c_str());
  EXPECT_EQ(m, n);
}

// --- writer contract ---------------------------------------------------------

TEST(trace_v3, writer_rejects_misuse) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  packet_record r;
  r.ingress_time = 100;
  {
    trace_v3_writer w(ss, 4);
    w.append(r);
    packet_record early = r;
    early.ingress_time = 99;
    EXPECT_THROW(w.append(early), trace_format_error);  // out of order
    w.finish();
    EXPECT_THROW(w.finish(), std::logic_error);
    EXPECT_THROW(w.append(r), std::logic_error);
  }
  {
    // Capacity 4 with 4-record blocks reserves one index slot; a fifth
    // record needs a second block and must throw rather than scribble.
    std::stringstream s2(std::ios::in | std::ios::out | std::ios::binary);
    trace_v3_writer w(s2, 4, 4);
    for (int i = 0; i < 4; ++i) {
      w.append(r);
      r.ingress_time += 1;
    }
    w.append(r);  // buffered; overflows only when its block flushes
    EXPECT_THROW(w.finish(), trace_format_error);
  }
  EXPECT_THROW(trace_v3_writer(ss, 10, 0), std::logic_error);
}

// --- corruption robustness ---------------------------------------------------

TEST(trace_v3, bad_magic_and_wrong_version_throw) {
  const auto r = small_run(false);
  auto bytes = to_v3_bytes(r.tr);
  for (std::size_t i = 0; i < 8; ++i) {
    auto bad = bytes;
    bad[i] ^= 0xFF;
    EXPECT_THROW(drain_image(bad), trace_format_error) << "magic byte " << i;
  }
  for (const std::uint32_t v : {0u, 1u, 2u, 4u, 0xFFFFFFFFu}) {
    auto bad = bytes;
    std::memcpy(bad.data() + 8, &v, 4);
    EXPECT_THROW(drain_image(bad), trace_format_error) << "version " << v;
  }
}

TEST(trace_v3, every_truncation_throws_never_crashes) {
  // Truncation at any length — mid-header, mid-index, mid-block — must be
  // caught by the index tiling check or a column bound before any
  // out-of-bounds read.
  auto r = small_run(false);
  sort_by_ingress(r.tr);
  const auto bytes = to_v3_bytes_blocked(r.tr, 128);
  ASSERT_GT(bytes.size(), 512u);
  for (std::size_t cut = 0; cut < bytes.size();
       cut += (cut < 128 ? 1 : 61)) {
    std::vector<std::uint8_t> bad(bytes.begin(),
                                  bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(drain_image(bad), trace_format_error) << "cut at " << cut;
  }
}

TEST(trace_v3, header_field_corruption_throws) {
  auto r = small_run(false);
  sort_by_ingress(r.tr);
  const auto bytes = to_v3_bytes_blocked(r.tr, 128);
  struct patch {
    std::size_t off;
    std::uint64_t value;
    unsigned width;
  };
  const patch patches[] = {
      {16, 0, 8},                  // record_count zeroed
      {16, UINT64_MAX, 8},         // record_count absurd
      {24, 0, 8},                  // block_count zeroed (count stays > 0)
      {24, UINT64_MAX, 8},         // block_count > index capacity
      {32, 0, 8},                  // data_offset disagrees with capacity
      {32, UINT64_MAX, 8},         // data_offset absurd
      {40, 0, 8},                  // index_capacity < block_count
      {40, UINT64_MAX, 8},         // index region out of bounds
      {48, 0, 4},                  // records_per_block zero
      {48, 1, 4},                  // blocks exceed records_per_block
  };
  for (const auto& p : patches) {
    auto bad = bytes;
    std::memcpy(bad.data() + p.off, &p.value, p.width);
    EXPECT_THROW(drain_image(bad), trace_format_error)
        << "offset " << p.off << " value " << p.value;
  }
}

TEST(trace_v3, index_and_block_header_mutations_throw) {
  auto r = small_run(false);
  sort_by_ingress(r.tr);
  const auto bytes = to_v3_bytes_blocked(r.tr, 64);
  trace_v3_cursor probe(bytes.data(), bytes.size());
  ASSERT_GT(probe.block_count(), 2u);
  const auto b1 = probe.bounds_at(1);
  const std::size_t e1 = kTraceV3HeaderBytes + kTraceV3IndexEntryBytes;
  // Index entry 1: offset, bytes, and bounds each damaged in turn.
  for (const std::uint64_t off : {std::uint64_t{0}, b1.offset + 1,
                                  UINT64_MAX - 3}) {
    auto bad = bytes;
    std::memcpy(bad.data() + e1, &off, 8);
    EXPECT_THROW(drain_image(bad), trace_format_error) << "offset " << off;
  }
  for (const std::uint64_t sz : {std::uint64_t{0}, b1.bytes - 1,
                                 b1.bytes + 1, UINT64_MAX}) {
    auto bad = bytes;
    std::memcpy(bad.data() + e1 + 8, &sz, 8);
    EXPECT_THROW(drain_image(bad), trace_format_error) << "bytes " << sz;
  }
  {
    // min/max swapped: ordering violation.
    auto bad = bytes;
    std::memcpy(bad.data() + e1 + 16, &b1.max_ingress, 8);
    std::memcpy(bad.data() + e1 + 24, &b1.min_ingress, 8);
    if (b1.min_ingress != b1.max_ingress) {
      EXPECT_THROW(drain_image(bad), trace_format_error);
    }
  }
  // Block 1's header: record count, block bytes, base ingress, and each
  // column size, all behind a valid index.
  const std::size_t h1 = static_cast<std::size_t>(b1.offset);
  for (const std::uint32_t n : {0u, UINT32_MAX, 65u}) {  // 65 > per_block
    auto bad = bytes;
    std::memcpy(bad.data() + h1, &n, 4);
    EXPECT_THROW(drain_image(bad), trace_format_error) << "count " << n;
  }
  {
    auto bad = bytes;
    const std::uint32_t bb = static_cast<std::uint32_t>(b1.bytes) + 1;
    std::memcpy(bad.data() + h1 + 4, &bb, 4);
    EXPECT_THROW(drain_image(bad), trace_format_error);
  }
  {
    auto bad = bytes;
    const std::int64_t base = b1.min_ingress + 1;
    std::memcpy(bad.data() + h1 + 8, &base, 8);
    EXPECT_THROW(drain_image(bad), trace_format_error);
  }
  for (std::size_t c = 0; c < kTraceV3ColumnCount; ++c) {
    auto bad = bytes;
    std::uint32_t cb = 0;
    std::memcpy(&cb, bad.data() + h1 + 24 + 4 * c, 4);
    // Shrinking a column truncates varints mid-stream or desynchronizes
    // the column sum; both must throw.
    const std::uint32_t smaller = cb > 0 ? cb - 1 : 1;
    std::memcpy(bad.data() + h1 + 24 + 4 * c, &smaller, 4);
    EXPECT_THROW(drain_image(bad), trace_format_error)
        << "column " << kTraceV3ColumnNames[c];
  }
}

TEST(trace_v3, random_single_byte_flips_never_crash) {
  // Fuzz-style sweep: every mutation either reads back fully (the flip hit
  // payload data that still decodes) or throws trace_format_error. Any
  // other outcome — crash, OOB read under ASan, different exception — is a
  // robustness bug. Deterministic seed so failures reproduce.
  auto r = small_run(true);
  sort_by_ingress(r.tr);
  const auto bytes = to_v3_bytes_blocked(r.tr, 256);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next_rand = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 400; ++i) {
    auto bad = bytes;
    const std::size_t pos = next_rand() % bad.size();
    bad[pos] ^= static_cast<std::uint8_t>(1u << (next_rand() % 8));
    try {
      (void)drain_image(bad);
    } catch (const trace_format_error&) {
      // expected for structural damage
    }
  }
}

TEST(trace_v3, varint_truncation_mid_block_throws) {
  // Force a continuation bit onto the last byte of the last column so the
  // decoder would need bytes past the block end.
  auto r = small_run(false);
  sort_by_ingress(r.tr);
  auto bytes = to_v3_bytes(r.tr);
  bytes[bytes.size() - 1] |= 0x80;
  EXPECT_THROW(drain_image(bytes), trace_format_error);
  // Overlong varint: 10 continuation bytes exceed 64 payload bits.
  auto bad = to_v3_bytes(r.tr);
  trace_v3_cursor probe(bad.data(), bad.size());
  const auto b0 = probe.bounds_at(0);
  std::uint8_t* payload =
      bad.data() + b0.offset + kTraceV3BlockHeaderBytes;
  for (int i = 0; i < 10; ++i) payload[i] |= 0x80;
  EXPECT_THROW(drain_image(bad), trace_format_error);
}

}  // namespace
}  // namespace ups::net
