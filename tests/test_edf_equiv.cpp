// Appendix E: network-wide EDF (static o(p) header + per-router tmin
// state) is equivalent to LSTF (dynamic slack header) — the two produce
// exactly the same replay schedule. Checked over a sweep of original
// schedulers and topologies.
#include <gtest/gtest.h>

#include <tuple>

#include "core/registry.h"
#include "core/replay.h"
#include "net/network.h"
#include "net/trace.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "traffic/size_dist.h"
#include "traffic/udp_app.h"
#include "traffic/workload.h"

namespace ups::core {
namespace {

struct recorded {
  topo::topology topology;
  net::trace trace;
};

recorded record_run(topo::topology topo, sched_kind kind, std::uint64_t seed,
                    bool variable_sizes) {
  recorded out;
  out.topology = std::move(topo);
  sim::simulator sim;
  net::network net(sim);
  topo::populate(out.topology, net);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(make_factory(kind, seed, &net));
  net.build();
  net::trace_recorder rec(net);
  traffic::workload_config wcfg;
  wcfg.utilization = 0.75;
  wcfg.seed = seed;
  wcfg.packet_budget = 4'000;
  std::unique_ptr<traffic::flow_size_dist> dist;
  if (variable_sizes) {
    dist = std::make_unique<traffic::bounded_pareto>(1.2, 1'460, 300'000);
  } else {
    dist = std::make_unique<traffic::fixed_size>(15'000);
  }
  auto wl = traffic::generate(net, out.topology, *dist, wcfg);
  traffic::udp_app app(net, std::move(wl.flows), {});
  sim.run();
  out.trace = rec.take();
  return out;
}

class edf_equivalence
    : public ::testing::TestWithParam<std::tuple<sched_kind, bool, int>> {};

TEST_P(edf_equivalence, identical_replay_schedules) {
  const auto [kind, variable_sizes, topo_idx] = GetParam();
  topo::topology t = topo_idx == 0
                         ? topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps)
                         : topo::parking_lot(4, sim::kGbps);
  const auto r = record_run(std::move(t), kind, 17, variable_sizes);
  ASSERT_FALSE(r.trace.packets.empty());

  replay_options opt;
  opt.keep_outcomes = true;
  const auto& topology = r.topology;
  const auto builder = [&topology](net::network& n) {
    topo::populate(topology, n);
  };
  opt.mode = replay_mode::lstf;
  const auto lstf = replay_trace(r.trace, builder, opt);
  opt.mode = replay_mode::edf;
  const auto edf = replay_trace(r.trace, builder, opt);

  ASSERT_EQ(lstf.outcomes.size(), edf.outcomes.size());
  for (std::size_t i = 0; i < lstf.outcomes.size(); ++i) {
    ASSERT_EQ(lstf.outcomes[i].id, edf.outcomes[i].id);
    EXPECT_EQ(lstf.outcomes[i].replay_out, edf.outcomes[i].replay_out)
        << "packet " << lstf.outcomes[i].id << " diverged";
    EXPECT_EQ(lstf.outcomes[i].replay_queueing,
              edf.outcomes[i].replay_queueing);
  }
}

INSTANTIATE_TEST_SUITE_P(
    sweeps, edf_equivalence,
    ::testing::Combine(::testing::Values(sched_kind::fifo, sched_kind::lifo,
                                         sched_kind::random, sched_kind::fq,
                                         sched_kind::sjf),
                       ::testing::Bool(), ::testing::Values(0, 1)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (auto& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      name += std::get<1>(info.param) ? "_varsize" : "_fixed";
      name += std::get<2>(info.param) == 0 ? "_dumbbell" : "_parkinglot";
      return name;
    });

}  // namespace
}  // namespace ups::core
