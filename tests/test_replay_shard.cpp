// Tests for the thread lane of the dispatch fabric: N-thread runs must be
// byte-identical to the plain serial loop regardless of worker count, a
// failing job must mark its own slot without abandoning the rest of the
// plan, and the run_jobs pool primitive must cover every slot exactly once
// with per-slot status instead of first-exception-wins abandonment.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/replay.h"
#include "exp/dispatch/backend.h"
#include "exp/replay_experiment.h"
#include "replay_test_util.h"

namespace ups::exp {
namespace {

using ups::testing::expect_identical_results;

std::vector<shard_task> small_sweep() {
  const std::vector<core::replay_mode> modes = {
      core::replay_mode::lstf,
      core::replay_mode::lstf_preemptive,
      core::replay_mode::edf,
      core::replay_mode::priority_output_time,
  };
  std::vector<shard_task> tasks;
  const struct {
    topo_kind topo;
    double util;
    std::uint64_t seed;
  } specs[] = {
      {topo_kind::i2_default, 0.7, 1},
      {topo_kind::i2_default, 0.5, 2},
      {topo_kind::fattree, 0.7, 1},
  };
  for (const auto& s : specs) {
    shard_task t;
    t.sc.topo = s.topo;
    t.sc.utilization = s.util;
    t.sc.sched = core::sched_kind::random;
    t.sc.seed = s.seed;
    t.sc.packet_budget = 1'500;
    t.modes = modes;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

TEST(replay_shard, four_threads_byte_identical_to_serial_loop) {
  const auto tasks = small_sweep();

  // Reference: the plain serial loop over run_original + run_replay, the
  // way every pre-sharding bench drove the pipeline.
  std::vector<std::vector<core::replay_result>> reference;
  for (const auto& t : tasks) {
    const auto orig = run_original(t.sc);
    std::vector<core::replay_result> row;
    for (const auto mode : t.modes) {
      row.push_back(run_replay(orig, mode, /*keep_outcomes=*/true));
    }
    reference.push_back(std::move(row));
  }

  shard_options opt;
  opt.keep_outcomes = true;
  dispatch::backend_spec spec;
  spec.kind = dispatch::backend_kind::thread;
  spec.workers = 4;
  const auto rep =
      dispatch::run(dispatch::job_plan::from_tasks(tasks, opt), spec);
  ASSERT_TRUE(rep.all_ok());
  const auto& sharded = rep.results;

  ASSERT_EQ(sharded.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(sharded[i].trace_packets, reference[i][0].total);
    ASSERT_EQ(sharded[i].replays.size(), tasks[i].modes.size());
    for (std::size_t m = 0; m < tasks[i].modes.size(); ++m) {
      EXPECT_EQ(sharded[i].replays[m].mode, tasks[i].modes[m]);
      expect_identical_results(sharded[i].replays[m].result, reference[i][m]);
    }
  }
}

TEST(replay_shard, worker_count_does_not_change_results) {
  const auto tasks = small_sweep();
  shard_options opt;
  opt.keep_outcomes = true;
  const auto plan = dispatch::job_plan::from_tasks(tasks, opt);
  dispatch::backend_spec serial_spec;
  serial_spec.kind = dispatch::backend_kind::serial;
  dispatch::backend_spec many_spec;
  many_spec.kind = dispatch::backend_kind::thread;
  many_spec.workers = 8;
  const auto serial = dispatch::run(plan, serial_spec).results;
  const auto sharded = dispatch::run(plan, many_spec).results;
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].trace_packets, sharded[i].trace_packets);
    EXPECT_EQ(serial[i].threshold_T, sharded[i].threshold_T);
    ASSERT_EQ(serial[i].replays.size(), sharded[i].replays.size());
    for (std::size_t m = 0; m < serial[i].replays.size(); ++m) {
      expect_identical_results(serial[i].replays[m].result,
                               sharded[i].replays[m].result);
    }
  }
}

TEST(replay_shard, thread_backend_isolates_a_failing_task) {
  // One task's mode sweep includes the omniscient replayer but its trace
  // is recorded without hop times, so that replay throws. The thread
  // backend must mark only the offending slot and finish every other
  // task; throw_if_failed then surfaces that slot's error for callers
  // wanting the abort-on-failure contract.
  auto tasks = small_sweep();
  tasks[1].modes.push_back(core::replay_mode::omniscient);
  shard_options opt;
  opt.keep_outcomes = true;
  dispatch::backend_spec spec;
  spec.kind = dispatch::backend_kind::thread;
  spec.workers = 4;
  const auto rep =
      dispatch::run(dispatch::job_plan::from_tasks(tasks, opt), spec);
  ASSERT_EQ(rep.status.size(), tasks.size());
  EXPECT_EQ(rep.status[0], dispatch::job_status::ok);
  EXPECT_EQ(rep.status[1], dispatch::job_status::failed);
  EXPECT_EQ(rep.status[2], dispatch::job_status::ok);
  EXPECT_FALSE(rep.errors[1].empty());
  EXPECT_EQ(rep.jobs_failed(), 1u);
  // The surviving slots carry complete, correct results.
  EXPECT_GT(rep.results[0].trace_packets, 0u);
  EXPECT_EQ(rep.results[2].replays.size(), tasks[2].modes.size());
  EXPECT_THROW(rep.throw_if_failed(), std::runtime_error);
}

TEST(replay_shard, run_jobs_covers_every_job_exactly_once) {
  std::vector<std::atomic<int>> hits(97);
  const auto oc = dispatch::run_jobs(
      hits.size(), 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  ASSERT_EQ(oc.status.size(), hits.size());
  for (std::size_t i = 0; i < oc.status.size(); ++i) {
    EXPECT_EQ(oc.status[i], dispatch::job_status::ok);
    EXPECT_TRUE(oc.errors[i].empty());
  }
}

TEST(replay_shard, run_jobs_records_failure_without_abandoning_pool) {
  std::vector<std::atomic<int>> hits(64);
  const auto oc = dispatch::run_jobs(hits.size(), 4, [&](std::size_t i) {
    hits[i].fetch_add(1);
    if (i == 13) throw std::runtime_error("boom");
  });
  // Every job still ran exactly once; only slot 13 is marked failed.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  for (std::size_t i = 0; i < oc.status.size(); ++i) {
    if (i == 13) {
      EXPECT_EQ(oc.status[i], dispatch::job_status::failed);
      EXPECT_NE(oc.errors[i].find("boom"), std::string::npos);
    } else {
      EXPECT_EQ(oc.status[i], dispatch::job_status::ok);
    }
  }
}

TEST(replay_shard, run_jobs_zero_and_single_job_edge_cases) {
  const auto none =
      dispatch::run_jobs(0, 4, [](std::size_t) { FAIL() << "ran a job"; });
  EXPECT_TRUE(none.status.empty());
  int ran = 0;
  const auto one = dispatch::run_jobs(1, 4, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 1);
  ASSERT_EQ(one.status.size(), 1u);
  EXPECT_EQ(one.status[0], dispatch::job_status::ok);
}

}  // namespace
}  // namespace ups::exp
