// Tests for the sharded replay harness: N-thread runs must be byte-identical
// to the plain serial loop, regardless of thread count, and worker failures
// must surface on the calling thread.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/replay.h"
#include "exp/replay_experiment.h"
#include "exp/replay_shard_runner.h"
#include "replay_test_util.h"

namespace ups::exp {
namespace {

using ups::testing::expect_identical_results;

std::vector<shard_task> small_sweep() {
  const std::vector<core::replay_mode> modes = {
      core::replay_mode::lstf,
      core::replay_mode::lstf_preemptive,
      core::replay_mode::edf,
      core::replay_mode::priority_output_time,
  };
  std::vector<shard_task> tasks;
  const struct {
    topo_kind topo;
    double util;
    std::uint64_t seed;
  } specs[] = {
      {topo_kind::i2_default, 0.7, 1},
      {topo_kind::i2_default, 0.5, 2},
      {topo_kind::fattree, 0.7, 1},
  };
  for (const auto& s : specs) {
    shard_task t;
    t.sc.topo = s.topo;
    t.sc.utilization = s.util;
    t.sc.sched = core::sched_kind::random;
    t.sc.seed = s.seed;
    t.sc.packet_budget = 1'500;
    t.modes = modes;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

TEST(replay_shard, four_threads_byte_identical_to_serial_loop) {
  const auto tasks = small_sweep();

  // Reference: the plain serial loop over run_original + run_replay, the
  // way every pre-sharding bench drove the pipeline.
  std::vector<std::vector<core::replay_result>> reference;
  for (const auto& t : tasks) {
    const auto orig = run_original(t.sc);
    std::vector<core::replay_result> row;
    for (const auto mode : t.modes) {
      row.push_back(run_replay(orig, mode, /*keep_outcomes=*/true));
    }
    reference.push_back(std::move(row));
  }

  shard_options opt;
  opt.threads = 4;
  opt.keep_outcomes = true;
  const auto sharded = run_sharded(tasks, opt);

  ASSERT_EQ(sharded.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(sharded[i].trace_packets, reference[i][0].total);
    ASSERT_EQ(sharded[i].replays.size(), tasks[i].modes.size());
    for (std::size_t m = 0; m < tasks[i].modes.size(); ++m) {
      EXPECT_EQ(sharded[i].replays[m].mode, tasks[i].modes[m]);
      expect_identical_results(sharded[i].replays[m].result, reference[i][m]);
    }
  }
}

TEST(replay_shard, thread_count_does_not_change_results) {
  const auto tasks = small_sweep();
  shard_options one;
  one.threads = 1;
  one.keep_outcomes = true;
  shard_options many;
  many.threads = 8;
  many.keep_outcomes = true;
  const auto serial = run_sharded(tasks, one);
  const auto sharded = run_sharded(tasks, many);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].trace_packets, sharded[i].trace_packets);
    EXPECT_EQ(serial[i].threshold_T, sharded[i].threshold_T);
    ASSERT_EQ(serial[i].replays.size(), sharded[i].replays.size());
    for (std::size_t m = 0; m < serial[i].replays.size(); ++m) {
      expect_identical_results(serial[i].replays[m].result,
                               sharded[i].replays[m].result);
    }
  }
}

TEST(replay_shard, parallel_for_covers_every_job_exactly_once) {
  std::vector<std::atomic<int>> hits(97);
  parallel_for_jobs(hits.size(), 4,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(replay_shard, worker_exception_propagates_to_caller) {
  EXPECT_THROW(
      parallel_for_jobs(64, 4,
                        [](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(replay_shard, zero_and_single_job_edge_cases) {
  parallel_for_jobs(0, 4, [](std::size_t) { FAIL(); });
  int ran = 0;
  parallel_for_jobs(1, 4, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 1);
}

}  // namespace
}  // namespace ups::exp
