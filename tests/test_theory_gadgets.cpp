// The paper's appendix counterexamples, executed end to end.
//
// Each gadget's prescribed schedule is first validated against the exact
// times printed in the paper's figures (this doubles as a timing test of
// the whole simulator), then fed to the replay engine.
#include <gtest/gtest.h>

#include "gadget_runner.h"
#include "topo/gadgets.h"

namespace ups::testing {
namespace {

using core::replay_mode;

// --- original schedules reproduce the figures exactly ---

void expect_original_matches_figure(const topo::gadget& g) {
  const auto run = run_gadget_original(g);
  ASSERT_EQ(run.trace.packets.size(), g.packets.size());
  for (const auto& r : run.trace.packets) {
    EXPECT_EQ(r.egress_time, run.expected_out.at(r.id))
        << "packet id " << r.id << " in " << g.topo.name;
  }
}

TEST(gadget_originals, fig5_case1_matches_paper_times) {
  expect_original_matches_figure(topo::fig5_case(1));
}

TEST(gadget_originals, fig5_case2_matches_paper_times) {
  expect_original_matches_figure(topo::fig5_case(2));
}

TEST(gadget_originals, fig6_matches_paper_times) {
  expect_original_matches_figure(topo::fig6_priority_cycle());
}

TEST(gadget_originals, fig7_matches_paper_times) {
  expect_original_matches_figure(topo::fig7_lstf_failure());
}

// --- Appendix F: the priority cycle (Figure 6) ---

TEST(fig6, lstf_replays_two_congestion_points_perfectly) {
  const auto run = run_gadget_original(topo::fig6_priority_cycle());
  const auto res = replay_gadget(run, replay_mode::lstf);
  EXPECT_EQ(res.overdue, 0u) << "LSTF must replay <=2 congestion points";
}

TEST(fig6, edf_replays_perfectly_too) {
  const auto run = run_gadget_original(topo::fig6_priority_cycle());
  const auto res = replay_gadget(run, replay_mode::edf);
  EXPECT_EQ(res.overdue, 0u);
}

TEST(fig6, simple_priorities_fail) {
  // priority(p) = o(p), the most intuitive assignment (§2.3(7)); the cycle
  // priority(a) < priority(b) < priority(c) < priority(a) dooms any static
  // assignment.
  const auto run = run_gadget_original(topo::fig6_priority_cycle());
  const auto res = replay_gadget(run, replay_mode::priority_output_time);
  EXPECT_GT(res.overdue, 0u);
}

TEST(fig6, omniscient_replays_perfectly) {
  const auto run = run_gadget_original(topo::fig6_priority_cycle());
  const auto res = replay_gadget(run, replay_mode::omniscient);
  EXPECT_EQ(res.overdue, 0u);
}

// --- Appendix G.3: LSTF fails at three congestion points (Figure 7) ---

TEST(fig7, lstf_replay_fails_with_three_congestion_points) {
  const auto run = run_gadget_original(topo::fig7_lstf_failure());
  const auto res = replay_gadget(run, replay_mode::lstf);
  EXPECT_GT(res.overdue, 0u);
}

TEST(fig7, omniscient_still_replays_perfectly) {
  const auto run = run_gadget_original(topo::fig7_lstf_failure());
  const auto res = replay_gadget(run, replay_mode::omniscient);
  EXPECT_EQ(res.overdue, 0u);
}

TEST(fig7, exactly_one_packet_overdue_under_lstf) {
  // The paper's analysis: the slack tie at the second congestion point
  // forces exactly one of {a, c2} overdue.
  const auto run = run_gadget_original(topo::fig7_lstf_failure());
  const auto res = replay_gadget(run, replay_mode::lstf);
  EXPECT_EQ(res.overdue, 1u);
}

// --- Appendix C: no UPS under black-box initialization (Figure 5) ---

TEST(fig5, a_and_x_attributes_identical_but_orders_conflict) {
  const auto run1 = run_gadget_original(topo::fig5_case(1));
  const auto run2 = run_gadget_original(topo::fig5_case(2));

  auto find = [](const net::trace& tr, std::uint64_t id) {
    for (const auto& r : tr.packets) {
      if (r.id == id) return r;
    }
    throw std::logic_error("packet not found");
  };
  // Black-box header inputs (i, o, path) for a and x match across cases.
  for (const char* name : {"a", "x"}) {
    const auto r1 = find(run1.trace, run1.id_of.at(name));
    const auto r2 = find(run2.trace, run2.id_of.at(name));
    EXPECT_EQ(r1.ingress_time, r2.ingress_time) << name;
    EXPECT_EQ(r1.egress_time, r2.egress_time) << name;
    EXPECT_EQ(r1.path, r2.path) << name;
  }
}

TEST(fig5, any_deterministic_blackbox_scheduler_fails_one_case) {
  // A deterministic black-box UPS must order a and x identically at their
  // shared first hop in both cases; whichever case wanted the other order
  // sees an overdue packet. LSTF is deterministic black-box, so it must
  // fail at least one case (and the omniscient initialization, which is
  // not black-box, must pass both).
  const auto run1 = run_gadget_original(topo::fig5_case(1));
  const auto run2 = run_gadget_original(topo::fig5_case(2));
  const auto lstf1 = replay_gadget(run1, replay_mode::lstf);
  const auto lstf2 = replay_gadget(run2, replay_mode::lstf);
  EXPECT_GT(lstf1.overdue + lstf2.overdue, 0u);

  EXPECT_EQ(replay_gadget(run1, replay_mode::omniscient).overdue, 0u);
  EXPECT_EQ(replay_gadget(run2, replay_mode::omniscient).overdue, 0u);
}

TEST(fig5, edf_equals_lstf_on_both_cases) {
  for (const int c : {1, 2}) {
    const auto run = run_gadget_original(topo::fig5_case(c));
    const auto lstf = replay_gadget(run, replay_mode::lstf);
    const auto edf = replay_gadget(run, replay_mode::edf);
    ASSERT_EQ(lstf.outcomes.size(), edf.outcomes.size());
    for (std::size_t i = 0; i < lstf.outcomes.size(); ++i) {
      EXPECT_EQ(lstf.outcomes[i].replay_out, edf.outcomes[i].replay_out)
          << "case " << c << " packet " << lstf.outcomes[i].id;
    }
  }
}

}  // namespace
}  // namespace ups::testing
