// Shared test helper: full-field replay_result identity (everything except
// the informational residency high-water marks, which depend on injection
// strategy by design).
#pragma once

#include <gtest/gtest.h>

#include "core/replay.h"

namespace ups::testing {

inline void expect_identical_results(const core::replay_result& a,
                                     const core::replay_result& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.overdue, b.overdue);
  EXPECT_EQ(a.overdue_beyond_T, b.overdue_beyond_T);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.threshold_T, b.threshold_T);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_EQ(a.outcomes[i].original_out, b.outcomes[i].original_out);
    EXPECT_EQ(a.outcomes[i].replay_out, b.outcomes[i].replay_out);
    EXPECT_EQ(a.outcomes[i].original_queueing, b.outcomes[i].original_queueing);
    EXPECT_EQ(a.outcomes[i].replay_queueing, b.outcomes[i].replay_queueing);
  }
}

}  // namespace ups::testing
