// Unit tests for the baseline scheduling policies as pure queue disciplines.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sched/fifo.h"
#include "sched/fifo_plus.h"
#include "sched/lifo.h"
#include "sched/pfabric.h"
#include "sched/random_order.h"
#include "sched/sjf.h"
#include "sched/static_priority.h"
#include "sim/rng.h"

namespace ups::sched {
namespace {

net::packet_ptr pkt(std::uint64_t id, std::uint32_t bytes = 1500) {
  net::packet_ptr p = net::make_packet();
  p->id = id;
  p->flow_id = id;
  p->size_bytes = bytes;
  return p;
}

std::vector<std::uint64_t> drain(net::scheduler& s) {
  std::vector<std::uint64_t> ids;
  while (auto p = s.dequeue(0)) ids.push_back(p->id);
  return ids;
}

TEST(fifo, serves_in_arrival_order) {
  fifo q;
  for (std::uint64_t i = 1; i <= 5; ++i) q.enqueue(pkt(i), 0);
  EXPECT_EQ(q.packets(), 5u);
  EXPECT_EQ(q.bytes(), 5u * 1500);
  EXPECT_EQ(drain(q), (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(q.empty());
}

TEST(lifo, serves_in_reverse_arrival_order) {
  lifo q;
  for (std::uint64_t i = 1; i <= 5; ++i) q.enqueue(pkt(i), 0);
  EXPECT_EQ(drain(q), (std::vector<std::uint64_t>{5, 4, 3, 2, 1}));
}

TEST(random_order, is_a_permutation_and_deterministic_per_seed) {
  random_order q1(sim::rng(99));
  random_order q2(sim::rng(99));
  for (std::uint64_t i = 1; i <= 32; ++i) {
    q1.enqueue(pkt(i), 0);
    q2.enqueue(pkt(i), 0);
  }
  auto a = drain(q1);
  const auto b = drain(q2);
  EXPECT_EQ(a, b);  // determinism
  std::sort(a.begin(), a.end());
  for (std::uint64_t i = 1; i <= 32; ++i) EXPECT_EQ(a[i - 1], i);
}

TEST(random_order, different_seeds_differ) {
  random_order q1(sim::rng(1));
  random_order q2(sim::rng(2));
  for (std::uint64_t i = 1; i <= 32; ++i) {
    q1.enqueue(pkt(i), 0);
    q2.enqueue(pkt(i), 0);
  }
  EXPECT_NE(drain(q1), drain(q2));
}

TEST(static_priority, lower_value_first_fcfs_ties) {
  static_priority q;
  auto a = pkt(1);
  a->priority = 5;
  auto b = pkt(2);
  b->priority = 1;
  auto c = pkt(3);
  c->priority = 5;
  q.enqueue(std::move(a), 0);
  q.enqueue(std::move(b), 1);
  q.enqueue(std::move(c), 2);
  EXPECT_EQ(drain(q), (std::vector<std::uint64_t>{2, 1, 3}));
}

TEST(static_priority, evicts_highest_rank_when_drop_enabled) {
  static_priority q(0, /*drop_highest_rank=*/true);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    auto p = pkt(i);
    p->priority = static_cast<std::int64_t>(i * 10);
    q.enqueue(std::move(p), 0);
  }
  auto incoming = pkt(9);
  incoming->priority = 15;  // better than 20 and 30
  auto victim = q.evict_for(*incoming, 0);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 3u);  // priority 30 is worst
}

TEST(static_priority, incoming_worst_is_not_admitted) {
  static_priority q(0, /*drop_highest_rank=*/true);
  auto p = pkt(1);
  p->priority = 10;
  q.enqueue(std::move(p), 0);
  auto incoming = pkt(2);
  incoming->priority = 99;
  EXPECT_EQ(q.evict_for(*incoming, 0), nullptr);
}

TEST(sjf, orders_by_flow_size) {
  sjf q;
  auto mk = [&](std::uint64_t id, std::uint64_t fs) {
    auto p = pkt(id);
    p->flow_size_bytes = fs;
    return p;
  };
  q.enqueue(mk(1, 100'000), 0);
  q.enqueue(mk(2, 1'460), 0);
  q.enqueue(mk(3, 50'000), 0);
  EXPECT_EQ(drain(q), (std::vector<std::uint64_t>{2, 3, 1}));
}

TEST(fifo_plus, prioritizes_packets_that_waited_upstream) {
  fifo_plus q;
  auto fresh = pkt(1);
  fresh->fifo_plus_wait = 0;
  auto waited = pkt(2);
  waited->fifo_plus_wait = 700;  // accumulated upstream queueing
  // fresh arrives slightly earlier but the waited packet wins.
  q.enqueue(std::move(fresh), 1000);
  q.enqueue(std::move(waited), 1500);
  EXPECT_EQ(drain(q), (std::vector<std::uint64_t>{2, 1}));
}

TEST(fifo_plus, equal_wait_degrades_to_fifo) {
  fifo_plus q;
  q.enqueue(pkt(1), 100);
  q.enqueue(pkt(2), 200);
  q.enqueue(pkt(3), 300);
  EXPECT_EQ(drain(q), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(pfabric, srpt_mode_serves_flow_with_least_remaining) {
  pfabric q(pfabric_mode::srpt);
  auto mk = [&](std::uint64_t id, std::uint64_t flow, std::uint64_t rem) {
    auto p = pkt(id);
    p->flow_id = flow;
    p->remaining_flow_bytes = rem;
    return p;
  };
  q.enqueue(mk(1, 100, 90'000), 0);
  q.enqueue(mk(2, 200, 1'460), 0);
  q.enqueue(mk(3, 100, 90'000), 0);
  EXPECT_EQ(drain(q), (std::vector<std::uint64_t>{2, 1, 3}));
}

TEST(pfabric, starvation_prevention_serves_earliest_of_best_flow) {
  pfabric q(pfabric_mode::srpt);
  auto mk = [&](std::uint64_t id, std::uint64_t flow, std::uint64_t rem) {
    auto p = pkt(id);
    p->flow_id = flow;
    p->remaining_flow_bytes = rem;
    return p;
  };
  // Flow 7's later packet has the best (smallest) remaining, but its
  // earliest queued packet must be served first.
  q.enqueue(mk(1, 7, 50'000), 0);
  q.enqueue(mk(2, 9, 20'000), 0);
  q.enqueue(mk(3, 7, 1'460), 0);
  auto first = q.dequeue(0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id, 1u);  // flow 7 selected by packet 3, served in order
}

TEST(pfabric, evicts_worst_rank) {
  pfabric q(pfabric_mode::srpt);
  auto mk = [&](std::uint64_t id, std::uint64_t flow, std::uint64_t rem) {
    auto p = pkt(id);
    p->flow_id = flow;
    p->remaining_flow_bytes = rem;
    return p;
  };
  q.enqueue(mk(1, 1, 10'000), 0);
  q.enqueue(mk(2, 2, 90'000), 0);
  auto incoming = mk(3, 3, 5'000);
  auto victim = q.evict_for(*incoming, 0);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 2u);
  EXPECT_EQ(q.packets(), 1u);
}

TEST(pfabric, byte_accounting) {
  pfabric q(pfabric_mode::sjf);
  auto a = pkt(1, 1000);
  a->flow_size_bytes = 10;
  auto b = pkt(2, 500);
  b->flow_size_bytes = 20;
  q.enqueue(std::move(a), 0);
  q.enqueue(std::move(b), 0);
  EXPECT_EQ(q.bytes(), 1500u);
  (void)q.dequeue(0);
  EXPECT_EQ(q.bytes(), 500u);
}

}  // namespace
}  // namespace ups::sched
