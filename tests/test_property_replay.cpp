// Property-style sweeps of the paper's theorems:
//   Appendix B  — omniscient initialization replays ANY viable schedule
//                 perfectly (swept over schedulers x topologies x loads);
//   Appendix G  — (preemptive) LSTF replays perfectly when every packet
//                 crosses at most two congestion points.
#include <gtest/gtest.h>

#include <tuple>

#include "core/registry.h"
#include "core/replay.h"
#include "net/network.h"
#include "net/trace.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "traffic/size_dist.h"
#include "traffic/udp_app.h"
#include "traffic/workload.h"

namespace ups::core {
namespace {

struct recorded {
  topo::topology topology;
  net::trace trace;
};

recorded record_run(topo::topology topo, sched_kind kind, double util,
                    std::uint64_t seed, std::uint64_t packets,
                    bool hop_times) {
  recorded out;
  out.topology = std::move(topo);
  sim::simulator sim;
  net::network net(sim);
  topo::populate(out.topology, net);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(make_factory(kind, seed, &net));
  net.build();
  net::trace_recorder rec(net, hop_times);
  traffic::bounded_pareto dist(1.2, 1'460, 100'000);
  traffic::workload_config wcfg;
  wcfg.utilization = util;
  wcfg.seed = seed;
  wcfg.packet_budget = packets;
  auto wl = traffic::generate(net, out.topology, dist, wcfg);
  traffic::udp_app::options aopt;
  aopt.record_hops = hop_times;
  traffic::udp_app app(net, std::move(wl.flows), aopt);
  sim.run();
  out.trace = rec.take();
  return out;
}

replay_result do_replay(const recorded& r, replay_mode mode) {
  replay_options opt;
  opt.mode = mode;
  opt.keep_outcomes = false;
  const auto& topology = r.topology;
  return replay_trace(
      r.trace, [&topology](net::network& n) { topo::populate(topology, n); },
      opt);
}

// ---- Appendix B sweep: omniscient replay is perfect for any schedule ----

class omniscient_universality
    : public ::testing::TestWithParam<std::tuple<sched_kind, double, int>> {};

TEST_P(omniscient_universality, perfect_replay) {
  const auto [kind, util, topo_idx] = GetParam();
  topo::topology t = topo_idx == 0
                         ? topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps)
                         : topo::parking_lot(5, sim::kGbps);
  const auto r = record_run(std::move(t), kind, util, 23, 3'000,
                            /*hop_times=*/true);
  const auto res = do_replay(r, replay_mode::omniscient);
  EXPECT_EQ(res.overdue, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    sweeps, omniscient_universality,
    ::testing::Combine(::testing::Values(sched_kind::fifo, sched_kind::lifo,
                                         sched_kind::random, sched_kind::sjf,
                                         sched_kind::fq,
                                         sched_kind::fifo_plus),
                       ::testing::Values(0.4, 0.9), ::testing::Values(0, 1)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (auto& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      name += std::get<1>(info.param) < 0.5 ? "_lo" : "_hi";
      name += std::get<2>(info.param) == 0 ? "_dumbbell" : "_parkinglot";
      return name;
    });

// ---- Appendix G sweep: two congestion points, preemptive LSTF perfect ----

// Three routers in a row; the long flow crosses two contended ports, every
// cross flow one. Hosts: h0 long-src@r0, h1 cross1-src@r0, h2 cross1-dst +
// cross2-src@r1, h3 long-dst + cross2-dst@r2. Fast host links keep the NICs
// from pre-serializing the contending flows.
struct two_cp_workload {
  topo::topology topology;
  std::vector<traffic::flow_spec> flows;
};

two_cp_workload make_two_congestion_point_workload(std::uint64_t seed) {
  two_cp_workload out;
  topo::topology t;
  t.name = "two-congestion-points";
  t.routers = 3;
  t.core_links.push_back(topo::link_spec{0, 1, sim::kGbps, 0});
  t.core_links.push_back(topo::link_spec{1, 2, sim::kGbps, 0});
  const auto fast = 10 * sim::kGbps;
  t.hosts.push_back(topo::host_spec{0, fast, 0});  // h0: long src
  t.hosts.push_back(topo::host_spec{0, fast, 0});  // h1: cross1 src
  t.hosts.push_back(topo::host_spec{1, fast, 0});  // h2: cross1 dst, c2 src
  t.hosts.push_back(topo::host_spec{2, fast, 0});  // h3: long + cross2 dst
  out.topology = t;

  sim::rng rng(seed);
  sim::time_ps now = 0;
  std::uint64_t id = 1;
  // Poisson-ish interleaved flows at moderate load on both 1G links.
  for (int i = 0; i < 120; ++i) {
    now += static_cast<sim::time_ps>(rng.exponential(120.0) *
                                     static_cast<double>(sim::kMicrosecond));
    const int which = static_cast<int>(rng.next_below(3));
    const std::uint64_t bytes = 1'460 * (1 + rng.next_below(8));
    traffic::flow_spec f;
    f.id = id++;
    f.size_bytes = bytes;
    f.start = now;
    if (which == 0) {  // long flow: r0 -> r2
      f.src = t.host_id(0);
      f.dst = t.host_id(3);
    } else if (which == 1) {  // cross 1: r0 -> r1
      f.src = t.host_id(1);
      f.dst = t.host_id(2);
    } else {  // cross 2: r1 -> r2
      f.src = t.host_id(2);
      f.dst = t.host_id(3);
    }
    out.flows.push_back(f);
  }
  return out;
}

class lstf_two_congestion_points : public ::testing::TestWithParam<int> {};

TEST_P(lstf_two_congestion_points, preemptive_lstf_replays_perfectly) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  auto wl = make_two_congestion_point_workload(seed);

  recorded r;
  r.topology = wl.topology;
  {
    sim::simulator sim;
    net::network net(sim);
    topo::populate(r.topology, net);
    net.set_buffer_bytes(0);
    net.set_scheduler_factory(make_factory(sched_kind::random, seed, &net));
    net.build();
    net::trace_recorder rec(net);
    traffic::udp_app app(net, std::move(wl.flows), {});
    sim.run();
    r.trace = rec.take();
  }
  ASSERT_FALSE(r.trace.packets.empty());
  const auto res = do_replay(r, replay_mode::lstf_preemptive);
  EXPECT_EQ(res.overdue, 0u)
      << "Appendix G: <=2 congestion points must replay perfectly";
}

INSTANTIATE_TEST_SUITE_P(seeds, lstf_two_congestion_points,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace ups::core
