// Differential tests for the shared LEB128 layer (core/varint.h): the SWAR
// batch decoder must be value-for-value, byte-for-byte, and
// error-for-error identical to the scalar bounds-checked loop on every
// input — uniform and mixed widths, word-boundary-straddling encodings,
// 9/10-byte values, truncations, and overlong encodings. Both sweep
// implementations (generic and, where the host has it, BMI2) are driven
// directly so a BMI2 machine still exercises the portable path.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/varint.h"

namespace ups::core {
namespace {

struct varint_test_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

using bytes = std::vector<std::uint8_t>;

// The reference semantics: `count` successive scalar decodes. Returns the
// decoded values and the consumed-byte offset, or rethrows the scalar
// loop's error.
struct scalar_outcome {
  std::vector<std::uint64_t> values;
  std::size_t consumed = 0;
  bool threw = false;
  std::string error;
};

scalar_outcome decode_scalar(const bytes& buf, std::size_t count) {
  scalar_outcome o;
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = buf.data() + buf.size();
  try {
    for (std::size_t i = 0; i < count; ++i) {
      o.values.push_back(get_varint_checked<varint_test_error>(p, end, "t"));
    }
  } catch (const varint_test_error& e) {
    o.threw = true;
    o.error = e.what();
  }
  o.consumed = static_cast<std::size_t>(p - buf.data());
  return o;
}

scalar_outcome decode_batch(const bytes& buf, std::size_t count) {
  scalar_outcome o;
  o.values.assign(count, 0);
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = buf.data() + buf.size();
  try {
    get_varints<varint_test_error>(p, end, o.values.data(), count, "t");
  } catch (const varint_test_error& e) {
    o.threw = true;
    o.error = e.what();
    o.values.clear();  // partial output is unspecified on throw
  }
  o.consumed = static_cast<std::size_t>(p - buf.data());
  return o;
}

void expect_batch_matches_scalar(const bytes& buf, std::size_t count,
                                 const char* ctx) {
  const auto ref = decode_scalar(buf, count);
  const auto got = decode_batch(buf, count);
  ASSERT_EQ(ref.threw, got.threw) << ctx;
  if (ref.threw) {
    EXPECT_EQ(ref.error, got.error) << ctx;
    return;  // consumed-on-throw is unspecified for the batch decoder
  }
  EXPECT_EQ(ref.consumed, got.consumed) << ctx;
  ASSERT_EQ(ref.values.size(), got.values.size()) << ctx;
  for (std::size_t i = 0; i < ref.values.size(); ++i) {
    ASSERT_EQ(ref.values[i], got.values[i]) << ctx << " value " << i;
  }
}

TEST(varint, scalar_round_trip_width_sweep) {
  std::vector<std::uint64_t> vals = {0, 1, 0x7f, 0x80, 0x3fff, 0x4000};
  for (int bits = 15; bits < 64; ++bits) {
    vals.push_back((1ull << bits) - 1);
    vals.push_back(1ull << bits);
  }
  vals.push_back(~0ull);
  for (const std::uint64_t v : vals) {
    bytes buf;
    put_varint(buf, v);
    ASSERT_LE(buf.size(), 10u);
    const std::uint8_t* p = buf.data();
    EXPECT_EQ(get_varint_checked<varint_test_error>(
                  p, buf.data() + buf.size(), "t"),
              v);
    EXPECT_EQ(p, buf.data() + buf.size());
  }
}

TEST(varint, zigzag_round_trip) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{63},
        std::int64_t{-64}, std::int64_t{1} << 40, -(std::int64_t{1} << 40),
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
  // Small magnitudes map to small codes — the property the columns rely on.
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
}

TEST(varint, all_one_byte_detection) {
  bytes buf(100, 0x7f);
  EXPECT_TRUE(all_one_byte_varints(buf.data(), buf.size()));
  buf[63] = 0x80;  // continuation bit mid-buffer
  EXPECT_FALSE(all_one_byte_varints(buf.data(), buf.size()));
  buf[63] = 0x7f;
  buf[99] = 0xff;  // ... and in the scalar tail
  EXPECT_FALSE(all_one_byte_varints(buf.data(), buf.size()));
  EXPECT_TRUE(all_one_byte_varints(buf.data(), 0));
}

TEST(varint, batch_matches_scalar_uniform_widths) {
  std::mt19937_64 rng(7);
  for (int bits = 1; bits <= 64; ++bits) {
    bytes buf;
    std::size_t count = 300;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t mask = bits == 64 ? ~0ull : ((1ull << bits) - 1);
      put_varint(buf, rng() & mask);
    }
    expect_batch_matches_scalar(buf, count,
                                ("uniform bits=" + std::to_string(bits))
                                    .c_str());
  }
}

TEST(varint, batch_matches_scalar_mixed_width_fuzz) {
  std::mt19937_64 rng(1234);
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t count = rng() % 70;
    bytes buf;
    for (std::size_t i = 0; i < count; ++i) {
      // Geometric-ish width mix biased toward short values, with full
      // 64-bit (10-byte) encodings sprinkled in so every word-boundary
      // straddle pattern shows up across iterations.
      const int bits = 1 + static_cast<int>(rng() % 64);
      const std::uint64_t mask = bits == 64 ? ~0ull : ((1ull << bits) - 1);
      put_varint(buf, rng() & mask);
    }
    expect_batch_matches_scalar(buf, count,
                                ("fuzz iter=" + std::to_string(iter)).c_str());
  }
}

TEST(varint, batch_matches_scalar_on_truncations) {
  // Encode a mixed run, then decode from every truncated prefix: the batch
  // decoder must throw exactly when and what the scalar loop throws.
  std::mt19937_64 rng(99);
  bytes buf;
  const std::size_t count = 40;
  for (std::size_t i = 0; i < count; ++i) {
    const int bits = 1 + static_cast<int>(rng() % 64);
    const std::uint64_t mask = bits == 64 ? ~0ull : ((1ull << bits) - 1);
    put_varint(buf, rng() & mask);
  }
  for (std::size_t cut = 0; cut <= buf.size(); ++cut) {
    bytes prefix(buf.begin(), buf.begin() + cut);
    expect_batch_matches_scalar(prefix, count,
                                ("cut=" + std::to_string(cut)).c_str());
  }
}

TEST(varint, batch_matches_scalar_on_overlong_encodings) {
  // 10 continuation bytes (never terminates within the 64-bit budget) and
  // a 10-byte encoding whose final byte carries payload past bit 63 — both
  // must fail identically through either decoder.
  for (const bytes& bad :
       {bytes(12, 0x80),
        bytes{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02},
        bytes{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}}) {
    // Lead with one-byte values so the SWAR loop is mid-flight when it
    // meets the bad encoding.
    bytes buf(16, 0x01);
    buf.insert(buf.end(), bad.begin(), bad.end());
    buf.insert(buf.end(), 16, 0x01);
    expect_batch_matches_scalar(buf, 33, "overlong");
  }
  // The canonical 10-byte maximum (~0ull) is legal and must decode.
  bytes ok(16, 0x01);
  put_varint(ok, ~0ull);
  ok.insert(ok.end(), 16, 0x01);
  expect_batch_matches_scalar(ok, 33, "max u64");
}

TEST(varint, sweep_implementations_agree) {
  // Drive both word-sweep bodies directly: on a BMI2 host get_varints only
  // ever takes the BMI2 path, so the portable sweep needs its own
  // differential coverage (and vice versa on an older machine).
  std::mt19937_64 rng(5150);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t count = 8 + rng() % 60;
    bytes buf;
    std::vector<std::uint64_t> vals;
    for (std::size_t i = 0; i < count; ++i) {
      const int bits = 1 + static_cast<int>(rng() % 56);  // <= 8-byte values
      vals.push_back(rng() & ((1ull << bits) - 1));
      put_varint(buf, vals.back());
    }
    buf.resize(buf.size() + 16);  // slack so the sweep can run to the end
    const std::uint8_t* end = buf.data() + buf.size();

    std::vector<std::uint64_t> out(count, 0);
    const std::uint8_t* p = buf.data();
    const std::size_t n = varint_detail::sweep_words(p, end, out.data(), count);
    ASSERT_GE(n, std::size_t{1});
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], vals[i]) << i;

#if UPS_VARINT_HAVE_BMI2
    if (varint_detail::kHaveBmi2) {
      std::vector<std::uint64_t> out2(count, 0);
      const std::uint8_t* p2 = buf.data();
      const std::size_t n2 =
          varint_detail::sweep_words_bmi2(p2, end, out2.data(), count);
      EXPECT_EQ(n, n2);
      EXPECT_EQ(p, p2);
      for (std::size_t i = 0; i < n2; ++i) ASSERT_EQ(out[i], out2[i]) << i;
    }
#endif
  }
}

TEST(varint, batch_count_zero_and_tiny_counts) {
  bytes buf;
  for (int i = 0; i < 20; ++i) put_varint(buf, 1000u * i);
  for (std::size_t count : {0u, 1u, 2u, 7u, 8u, 9u}) {
    expect_batch_matches_scalar(buf, count,
                                ("count=" + std::to_string(count)).c_str());
  }
}

}  // namespace
}  // namespace ups::core
