// Failure-injection tests: the library must fail loudly and precisely on
// misuse rather than silently producing wrong schedules.
#include <gtest/gtest.h>

#include <memory>

#include "core/registry.h"
#include "core/replay.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "topo/fattree.h"
#include "topo/gadgets.h"
#include "traffic/size_dist.h"
#include "traffic/workload.h"

namespace ups {
namespace {

TEST(errors, network_requires_factory_before_build) {
  sim::simulator sim;
  net::network n(sim);
  n.add_router("r0");
  EXPECT_THROW(n.build(), std::logic_error);
}

TEST(errors, network_rejects_double_build) {
  sim::simulator sim;
  net::network n(sim);
  n.add_router("r0");
  n.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  n.build();
  EXPECT_THROW(n.build(), std::logic_error);
}

TEST(errors, network_rejects_topology_changes_after_build) {
  sim::simulator sim;
  net::network n(sim);
  n.add_router("r0");
  n.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  n.build();
  EXPECT_THROW(static_cast<void>(n.add_router("late")), std::logic_error);
  EXPECT_THROW(static_cast<void>(n.add_host("late")), std::logic_error);
  EXPECT_THROW(n.add_link(0, 0, sim::kGbps, 0), std::logic_error);
}

TEST(errors, missing_port_lookup_throws) {
  sim::simulator sim;
  net::network n(sim);
  n.add_router("r0");
  n.add_router("r1");
  n.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  n.build();
  EXPECT_THROW(static_cast<void>(n.port_between(0, 1)), std::out_of_range);
}

TEST(errors, unreachable_route_throws) {
  sim::simulator sim;
  net::network n(sim);
  n.add_router("r0");
  n.add_router("r1");  // disconnected from r0
  const auto h0 = n.add_host("h0");
  const auto h1 = n.add_host("h1");
  n.add_link(0, h0, sim::kGbps, 0);
  n.add_link(1, h1, sim::kGbps, 0);
  n.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  n.build();
  EXPECT_THROW(static_cast<void>(n.route(h0, h1)), std::runtime_error);
}

TEST(errors, host_with_two_uplinks_rejected_in_routing) {
  sim::simulator sim;
  net::network n(sim);
  n.add_router("r0");
  n.add_router("r1");
  const auto h = n.add_host("h");
  const auto h2 = n.add_host("h2");
  n.add_link(0, 1, sim::kGbps, 0);
  n.add_link(0, h, sim::kGbps, 0);
  n.add_link(1, h, sim::kGbps, 0);  // second uplink: ambiguous attachment
  n.add_link(1, h2, sim::kGbps, 0);
  n.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  n.build();
  EXPECT_THROW(static_cast<void>(n.route(h, h2)), std::logic_error);
}

TEST(errors, replay_of_empty_trace_is_empty_result) {
  net::trace empty;
  core::replay_options opt;
  const auto topo = topo::line(2);
  const auto res = core::replay_trace(
      empty, [&topo](net::network& n) { topo::populate(topo, n); }, opt);
  EXPECT_EQ(res.total, 0u);
  EXPECT_DOUBLE_EQ(res.frac_overdue(), 0.0);
  EXPECT_DOUBLE_EQ(res.frac_overdue_beyond_T(), 0.0);
}

TEST(errors, gadget_case_index_validated) {
  EXPECT_THROW(static_cast<void>(topo::fig5_case(0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(topo::fig5_case(3)), std::invalid_argument);
}

TEST(errors, workload_requires_two_hosts) {
  sim::simulator sim;
  net::network n(sim);
  topo::topology t;
  t.routers = 1;
  t.hosts.push_back(topo::host_spec{0, sim::kGbps, 0});
  topo::populate(t, n);
  n.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  n.build();
  traffic::fixed_size dist(1500);
  EXPECT_THROW(static_cast<void>(traffic::generate(n, t, dist, {})),
               std::invalid_argument);
}

TEST(errors, bounded_pareto_validates_parameters) {
  EXPECT_THROW(traffic::bounded_pareto(1.0, 10, 100), std::invalid_argument);
  EXPECT_THROW(traffic::bounded_pareto(1.2, 0, 100), std::invalid_argument);
  EXPECT_THROW(traffic::bounded_pareto(1.2, 100, 100), std::invalid_argument);
}

TEST(errors, empirical_dist_validates_cdf) {
  EXPECT_THROW(traffic::empirical({{100.0, 0.5}}, "bad"),
               std::invalid_argument);
  EXPECT_THROW(traffic::empirical({{100.0, 0.2}, {200.0, 0.9}}, "bad"),
               std::invalid_argument);
}

TEST(errors, fattree_requires_even_k) {
  topo::fattree_config cfg;
  cfg.k = 3;
  EXPECT_THROW(static_cast<void>(topo::fattree(cfg)), std::invalid_argument);
}

TEST(errors, all_infinite_topology_has_no_bottleneck) {
  topo::topology t;
  t.routers = 1;
  t.hosts.push_back(topo::host_spec{0, sim::kInfiniteRate, 0});
  EXPECT_THROW(static_cast<void>(t.bottleneck_rate()), std::logic_error);
}

}  // namespace
}  // namespace ups
