// Fault-model subsystem: spec parsing, the counter-based per-link RNG, the
// network's wire-drop path and drop accounting across every scheduler
// family, drop records surviving every trace format round-trip,
// replay-under-loss semantics, and cross-backend determinism of the whole
// lossy pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/registry.h"
#include "core/replay.h"
#include "exp/dispatch/backend.h"
#include "exp/replay_experiment.h"
#include "exp/scenario.h"
#include "net/fault.h"
#include "net/network.h"
#include "net/trace.h"
#include "net/trace_io.h"
#include "replay_test_util.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "topo/topology.h"
#include "traffic/source.h"

namespace ups::net {
namespace {

using ups::testing::expect_identical_results;

// --- spec parsing ----------------------------------------------------------

TEST(fault_spec, parse_and_label_round_trip) {
  const fault_spec off = fault_spec::parse("");
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.label(), "");
  EXPECT_FALSE(fault_spec::parse("none").enabled());

  const fault_spec b = fault_spec::parse("bernoulli:0.01");
  EXPECT_EQ(b.kind, fault_kind::bernoulli);
  EXPECT_DOUBLE_EQ(b.p, 0.01);
  EXPECT_EQ(b.label(), "bern:0.01");
  // The compact label parses back to the same spec.
  EXPECT_EQ(fault_spec::parse(b.label()).p, b.p);

  const fault_spec g = fault_spec::parse("ge:0.001,0.25,0.1");
  EXPECT_EQ(g.kind, fault_kind::gilbert_elliott);
  EXPECT_DOUBLE_EQ(g.p, 0.001);
  EXPECT_DOUBLE_EQ(g.p_bad, 0.25);
  EXPECT_DOUBLE_EQ(g.flip, 0.1);
  EXPECT_EQ(g.label(), "ge:0.001,0.25,0.1");

  const fault_spec j = fault_spec::parse("jam:100,0.2");
  EXPECT_EQ(j.kind, fault_kind::jam);
  EXPECT_EQ(j.jam_period, 100 * sim::kMicrosecond);
  EXPECT_DOUBLE_EQ(j.jam_duty, 0.2);
  EXPECT_DOUBLE_EQ(j.jam_speedup, 1.0);
  EXPECT_EQ(j.label(), "jam:100,0.2");

  const fault_spec js = fault_spec::parse("jam:100,0.2,2");
  EXPECT_DOUBLE_EQ(js.jam_speedup, 2.0);
  EXPECT_EQ(js.label(), "jam:100,0.2,s2");
}

TEST(fault_spec, rejects_malformed_input) {
  EXPECT_THROW((void)fault_spec::parse("bernoulli:1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)fault_spec::parse("bernoulli:-0.1"),
               std::invalid_argument);
  EXPECT_THROW((void)fault_spec::parse("bernoulli:"), std::invalid_argument);
  EXPECT_THROW((void)fault_spec::parse("bernoulli:0.1,0.2"),
               std::invalid_argument);
  EXPECT_THROW((void)fault_spec::parse("ge:0.1"), std::invalid_argument);
  EXPECT_THROW((void)fault_spec::parse("ge:0.1,2,0.1"),
               std::invalid_argument);
  EXPECT_THROW((void)fault_spec::parse("jam:0,0.5"), std::invalid_argument);
  EXPECT_THROW((void)fault_spec::parse("jam:100,0.5,0.5"),
               std::invalid_argument);
  EXPECT_THROW((void)fault_spec::parse("jam:100"), std::invalid_argument);
  EXPECT_THROW((void)fault_spec::parse("lightning:1"),
               std::invalid_argument);
  EXPECT_THROW((void)fault_spec::parse("bernoulli:zap"),
               std::invalid_argument);
}

// --- counter-based RNG -----------------------------------------------------

TEST(link_fault, decisions_are_a_pure_function_of_seed_link_counter) {
  const fault_spec spec = fault_spec::parse("bernoulli:0.3");
  link_fault a(spec, 42, 7);
  link_fault b(spec, 42, 7);
  link_fault other_link(spec, 42, 8);
  link_fault other_seed(spec, 43, 7);
  bool link_diverged = false;
  bool seed_diverged = false;
  std::uint64_t losses = 0;
  for (int i = 0; i < 4096; ++i) {
    const bool la = a.lose(0);
    ASSERT_EQ(la, b.lose(0)) << "decision " << i;
    losses += la ? 1 : 0;
    link_diverged = link_diverged || other_link.lose(0) != la;
    seed_diverged = seed_diverged || other_seed.lose(0) != la;
  }
  // Streams keyed on different links/seeds must not alias.
  EXPECT_TRUE(link_diverged);
  EXPECT_TRUE(seed_diverged);
  // The marginal rate is p (loose 4-sigma band around 0.3 * 4096).
  EXPECT_GT(losses, 1100u);
  EXPECT_LT(losses, 1350u);
  EXPECT_EQ(a.decisions(), 4096u);
}

TEST(link_fault, gilbert_elliott_losses_arrive_in_bursts) {
  // p = 0 in Good and p_bad = 1 in Bad makes the loss sequence the state
  // sequence itself: runs of consecutive losses are Bad-state sojourns,
  // expected length 1/flip = 10.
  const fault_spec spec = fault_spec::parse("ge:0,1,0.1");
  link_fault f(spec, 1, 0);
  std::uint64_t losses = 0, bursts = 0, run = 0;
  double run_sum = 0;
  for (int i = 0; i < 20000; ++i) {
    if (f.lose(0)) {
      ++losses;
      ++run;
    } else if (run > 0) {
      ++bursts;
      run_sum += static_cast<double>(run);
      run = 0;
    }
  }
  ASSERT_GT(losses, 0u);
  ASSERT_GT(bursts, 10u);
  // Mean burst length ~10; a memoryless (iid) process at the same loss
  // rate would average ~2. The band is loose but cleanly separates them.
  const double mean_burst = run_sum / static_cast<double>(bursts);
  EXPECT_GT(mean_burst, 5.0);
  EXPECT_LT(mean_burst, 20.0);
}

TEST(link_fault, jam_windows_are_deterministic_in_time) {
  const fault_spec spec = fault_spec::parse("jam:100,0.2");
  link_fault f(spec, 9, 3);
  const sim::time_ps period = 100 * sim::kMicrosecond;
  const sim::time_ps duty = period / 5;
  EXPECT_TRUE(f.lose(0));
  EXPECT_TRUE(f.lose(duty - 1));
  EXPECT_FALSE(f.lose(duty));
  EXPECT_FALSE(f.lose(period - 1));
  EXPECT_TRUE(f.lose(period));
  EXPECT_TRUE(f.lose(7 * period + duty / 2));
  EXPECT_FALSE(f.lose(7 * period + duty));
}

// --- network wire-drop path ------------------------------------------------

packet_ptr make_packet(std::uint64_t id, node_id src, node_id dst) {
  packet_ptr p = net::make_packet();
  p->id = id;
  p->flow_id = id;
  p->size_bytes = 1500;
  p->src_host = src;
  p->dst_host = dst;
  return p;
}

TEST(fault_network, wire_drops_fire_on_router_links_and_are_accounted) {
  // bernoulli:1 loses every packet on the single router->router hop of a
  // 2-router line; host access links stay reliable by construction, so
  // every packet still ingresses before dying on the wire.
  sim::simulator sim;
  network net(sim);
  auto topo = topo::line(2, sim::kGbps, sim::kMicrosecond);
  topo::populate(topo, net);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  net.set_fault(fault_spec::parse("bernoulli:1"), 1);
  net.build();

  std::uint64_t wire_drops = 0;
  std::vector<node_id> drop_sites;
  net.hooks().on_drop = [&](const packet&, node_id at, sim::time_ps,
                            drop_kind kind) {
    wire_drops += kind == drop_kind::wire ? 1 : 0;
    drop_sites.push_back(at);
  };
  const auto h0 = topo.host_id(0);
  const auto h1 = topo.host_id(1);
  for (int i = 0; i < 5; ++i) net.send_from_host(make_packet(i + 1, h0, h1));
  sim.run();

  EXPECT_EQ(net.stats().injected, 5u);
  EXPECT_EQ(net.stats().delivered, 0u);
  EXPECT_EQ(net.stats().dropped, 5u);
  EXPECT_EQ(net.stats().dropped_wire, 5u);
  EXPECT_EQ(wire_drops, 5u);
  for (const node_id at : drop_sites) {
    EXPECT_TRUE(net.is_router(at));  // the transmitting router, never a host
  }
}

TEST(fault_network, set_fault_after_build_throws) {
  sim::simulator sim;
  network net(sim);
  auto topo = topo::line(2, sim::kGbps, sim::kMicrosecond);
  topo::populate(topo, net);
  net.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  net.build();
  EXPECT_THROW(net.set_fault(fault_spec::parse("bernoulli:0.5"), 1),
               std::logic_error);
}

// --- drop accounting across scheduler families (satellite audit) -----------

TEST(fault_accounting, every_scheduler_family_conserves_packets) {
  // A congested burst into a 3000-byte buffer: every family must agree on
  // the three drop ledgers — the network counter, the per-port counters,
  // and the on_drop hook — and conserve injected == delivered + dropped,
  // whether it tail-drops or evicts by rank.
  for (int k = 0; k <= static_cast<int>(core::sched_kind::omniscient); ++k) {
    const auto kind = static_cast<core::sched_kind>(k);
    sim::simulator sim;
    network net(sim);
    auto topo = topo::line(2, sim::kGbps, sim::kMicrosecond);
    topo::populate(topo, net);
    net.set_buffer_bytes(3000);
    net.set_scheduler_factory(core::make_factory(kind, 1, &net));
    net.build();
    std::uint64_t hook_drops = 0;
    net.hooks().on_drop = [&](const packet&, node_id, sim::time_ps,
                              drop_kind) { ++hook_drops; };
    const auto h0 = topo.host_id(0);
    const auto h1 = topo.host_id(1);
    for (int i = 0; i < 8; ++i) {
      net.send_from_host(make_packet(i + 1, h0, h1));
    }
    sim.run();
    const auto& st = net.stats();
    std::uint64_t port_drops = 0;
    for (const auto& port : net.ports()) {
      port_drops += port->stats().packets_dropped;
    }
    const char* name = core::to_string(kind);
    EXPECT_EQ(st.injected, 8u) << name;
    EXPECT_EQ(st.delivered + st.dropped, st.injected) << name;
    EXPECT_EQ(st.dropped, hook_drops) << name;
    EXPECT_EQ(st.dropped, port_drops) << name;
    EXPECT_EQ(st.dropped_wire, 0u) << name;  // no fault process attached
    EXPECT_GT(st.dropped, 0u) << name;       // the burst must congest
  }
}

// --- recorded drops: trace round-trips and replay-under-loss ---------------

exp::original_run lossy_original(const char* fault, std::uint64_t budget) {
  exp::scenario sc;
  sc.topo = exp::topo_kind::i2_default;
  sc.utilization = 0.7;
  sc.sched = core::sched_kind::random;
  sc.seed = 7;
  sc.packet_budget = budget;
  sc.fault = fault_spec::parse(fault);
  return exp::run_original(sc);
}

void expect_same_drop_records(const trace& a, const trace& b) {
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    const auto& x = a.packets[i];
    const auto& y = b.packets[i];
    ASSERT_EQ(x.id, y.id);
    EXPECT_EQ(x.drop_hop, y.drop_hop) << "packet " << x.id;
    EXPECT_EQ(x.dropped_kind, y.dropped_kind) << "packet " << x.id;
    EXPECT_EQ(x.drop_time, y.drop_time) << "packet " << x.id;
    EXPECT_EQ(x.egress_time, y.egress_time) << "packet " << x.id;
  }
}

trace load_via_cursor(const std::string& path) {
  trace t;
  const auto cur = open_trace_cursor(path);
  while (const packet_record* r = cur->next()) t.packets.push_back(*r);
  return t;
}

TEST(fault_trace, drop_records_survive_every_format_round_trip) {
  auto orig = lossy_original("bernoulli:0.02", 4000);
  sort_by_ingress(orig.trace);
  std::uint64_t recorded_drops = 0;
  for (const auto& r : orig.trace.packets) {
    recorded_drops += r.dropped() ? 1 : 0;
  }
  ASSERT_GT(recorded_drops, 0u) << "2% loss on 4000 packets must drop some";

  const std::string base = ::testing::TempDir() + "/ups_fault_rt";
  const std::string v1 = base + ".v1.trace";
  const std::string v2 = base + ".v2.trace";
  const std::string v3 = base + ".v3.trace";
  save_trace(v1, orig.trace);
  save_trace_v2(v2, orig.trace);
  save_trace_v3(v3, orig.trace);
  EXPECT_TRUE(trace_file_has_drop_records(v1));
  EXPECT_TRUE(trace_file_has_drop_records(v2));
  EXPECT_TRUE(trace_file_has_drop_records(v3));

  expect_same_drop_records(orig.trace, load_via_cursor(v1));
  expect_same_drop_records(orig.trace, load_via_cursor(v2));
  expect_same_drop_records(orig.trace, load_via_cursor(v3));
  std::remove(v1.c_str());
  std::remove(v2.c_str());
  std::remove(v3.c_str());
}

TEST(fault_replay, replay_under_loss_conserves_every_packet) {
  auto orig = lossy_original("ge:0.0005,0.02,0.05", 4000);
  std::uint64_t recorded_drops = 0;
  for (const auto& r : orig.trace.packets) {
    recorded_drops += r.dropped() ? 1 : 0;
  }
  ASSERT_GT(recorded_drops, 0u);

  const auto rep =
      exp::run_replay(orig, core::replay_mode::lstf, /*keep_outcomes=*/true);
  EXPECT_EQ(rep.dropped, recorded_drops);
  EXPECT_EQ(rep.total + rep.dropped, orig.trace.packets.size());
  // Outcomes exist only for delivered packets: a dropped packet has no
  // o(p) to be late against.
  EXPECT_EQ(rep.outcomes.size(), rep.total);
}

TEST(fault_replay, forced_buffer_drops_are_reenacted_too) {
  // Wire drops come from live fault processes; buffer-kind drop records
  // (lossy originals with tiny buffers) must re-enact through the same
  // forced-drop path. Synthesize one: demote a delivered record to a
  // buffer drop at its egress hop.
  exp::scenario sc;
  sc.topo = exp::topo_kind::i2_default;
  sc.utilization = 0.7;
  sc.sched = core::sched_kind::random;
  sc.seed = 7;
  sc.packet_budget = 2000;
  auto orig = exp::run_original(sc);
  ASSERT_FALSE(orig.trace.packets.empty());
  auto& victim = orig.trace.packets.front();
  ASSERT_FALSE(victim.dropped());
  victim.drop_hop = static_cast<std::int32_t>(victim.path.size()) - 1;
  victim.dropped_kind = drop_kind::buffer;
  victim.drop_time = victim.egress_time;
  victim.egress_time = -1;

  const auto rep =
      exp::run_replay(orig, core::replay_mode::lstf, /*keep_outcomes=*/true);
  EXPECT_EQ(rep.dropped, 1u);
  EXPECT_EQ(rep.total + rep.dropped, orig.trace.packets.size());
  for (const auto& o : rep.outcomes) {
    EXPECT_NE(o.id, victim.id);  // the forced drop never reaches egress
  }
}

// --- cross-backend determinism of the lossy pipeline -----------------------

TEST(fault_dispatch, lossy_lanes_identical_across_serial_thread_process) {
  std::vector<exp::shard_task> tasks;
  for (const char* f : {"bernoulli:0.01", "ge:0.0005,0.02,0.05", "jam:100,0.2"}) {
    exp::shard_task t;
    t.sc.topo = exp::topo_kind::i2_default;
    t.sc.utilization = 0.7;
    t.sc.sched = core::sched_kind::random;
    t.sc.seed = 7;
    t.sc.packet_budget = 1500;
    t.sc.fault = fault_spec::parse(f);
    t.modes = {core::replay_mode::lstf, core::replay_mode::edf};
    tasks.push_back(std::move(t));
  }
  exp::shard_options opt;
  opt.keep_outcomes = true;
  const auto plan = exp::dispatch::job_plan::from_tasks(tasks, opt);
  const auto run_on = [&](exp::dispatch::backend_kind kind,
                          std::size_t workers) {
    exp::dispatch::backend_spec spec;
    spec.kind = kind;
    spec.workers = workers;
    auto rep = exp::dispatch::run(plan, spec);
    rep.throw_if_failed();
    return std::move(rep.results);
  };
  const auto serial = run_on(exp::dispatch::backend_kind::serial, 0);
  ASSERT_EQ(serial.size(), tasks.size());
  for (const auto& r : serial) {
    ASSERT_GT(r.replays.front().result.dropped, 0u)
        << "lane recorded no drops — the fault axis tested nothing";
  }
  std::vector<std::vector<exp::shard_result>> others;
  others.push_back(run_on(exp::dispatch::backend_kind::thread, 4));
#if defined(__unix__) || defined(__APPLE__)
  others.push_back(run_on(exp::dispatch::backend_kind::process, 4));
#endif
  for (const auto& got : others) {
    ASSERT_EQ(got.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].trace_packets, got[i].trace_packets);
      ASSERT_EQ(serial[i].replays.size(), got[i].replays.size());
      for (std::size_t m = 0; m < serial[i].replays.size(); ++m) {
        expect_identical_results(serial[i].replays[m].result,
                                 got[i].replays[m].result);
      }
    }
  }
}

TEST(fault_tcp, closed_loop_tcp_flows_complete_under_loss) {
  // The retransmitting source must survive a lossy fabric: every flow the
  // run accounts as completed genuinely delivered all its packets despite
  // 1% wire loss, and the run terminates (no stuck window slots).
  exp::scenario sc;
  sc.topo = exp::topo_kind::i2_default;
  sc.utilization = 0.7;
  sc.sched = core::sched_kind::random;
  sc.seed = 7;
  sc.packet_budget = 2000;
  sc.workload_kind =
      traffic::parse_workload("closed-loop-tcp", sc.workload_spec);
  sc.fault = fault_spec::parse("bernoulli:0.01");
  const auto orig = exp::run_original(sc);
  EXPECT_GT(orig.flows_completed, 0u);
  EXPECT_FALSE(orig.trace.packets.empty());
}

}  // namespace
}  // namespace ups::net
