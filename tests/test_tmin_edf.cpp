// Tests for tmin (Appendix A) and EDF's per-router priority derivation
// (Appendix E), including mid-path evaluations.
#include <gtest/gtest.h>

#include <memory>

#include "core/edf.h"
#include "core/registry.h"
#include "net/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "topo/internet2.h"

namespace ups::core {
namespace {

struct fixture {
  sim::simulator sim;
  net::network net{sim};
  topo::topology topo;

  explicit fixture(topo::topology t) : topo(std::move(t)) {
    topo::populate(topo, net);
    net.set_scheduler_factory(make_factory(sched_kind::fifo, 1));
    net.build();
  }
};

TEST(tmin, line_decomposes_per_hop) {
  // tmin(from hop k) telescopes: dropping the first hop removes exactly
  // that hop's transmission time plus its outgoing propagation delay.
  fixture f(topo::line(4, sim::kGbps, 3 * sim::kMicrosecond));
  net::packet p;
  p.size_bytes = 1500;
  p.src_host = f.topo.host_id(0);
  p.dst_host = f.topo.host_id(1);
  p.path = f.net.route(p.src_host, p.dst_host);
  ASSERT_EQ(p.path.size(), 4u);
  for (std::size_t k = 0; k + 1 < p.path.size(); ++k) {
    const auto full = f.net.tmin(p, k);
    const auto rest = f.net.tmin(p, k + 1);
    // Each router hop: 12 us transmission + 3 us propagation.
    EXPECT_EQ(full - rest, 15 * sim::kMicrosecond);
  }
  // The last hop is transmission only (egress link prop excluded).
  EXPECT_EQ(f.net.tmin(p, p.path.size() - 1), 12 * sim::kMicrosecond);
}

TEST(tmin, paper_slack_equation_terms) {
  // Appendix A: tmin(p, src, dest) includes transmission at both endpoints
  // and everything between. On a single-router path it is exactly T(p, a).
  fixture f(topo::line(1, sim::kGbps, sim::kMicrosecond, 2));
  net::packet p;
  p.size_bytes = 1500;
  p.src_host = f.topo.host_id(0);
  p.dst_host = f.topo.host_id(1);
  p.path = f.net.route(p.src_host, p.dst_host);
  ASSERT_EQ(p.path.size(), 1u);
  EXPECT_EQ(f.net.tmin(p, 0), 12 * sim::kMicrosecond);
}

TEST(tmin, heterogeneous_rates) {
  topo::topology t;
  t.name = "hetero";
  t.routers = 3;
  t.core_links.push_back(topo::link_spec{0, 1, sim::kGbps, 0});
  t.core_links.push_back(topo::link_spec{1, 2, 2 * sim::kGbps, 0});
  t.hosts.push_back(topo::host_spec{0, 10 * sim::kGbps, 0});
  t.hosts.push_back(topo::host_spec{2, 10 * sim::kGbps, 0});
  fixture f(std::move(t));
  net::packet p;
  p.size_bytes = 1500;
  p.src_host = f.topo.host_id(0);
  p.dst_host = f.topo.host_id(1);
  p.path = f.net.route(p.src_host, p.dst_host);
  // r0 at 1G (12us) + r1 at 2G (6us) + r2 egress at 10G (1.2us).
  EXPECT_EQ(f.net.tmin(p, 0), 19'200 * sim::kNanosecond);
}

TEST(edf, priority_equals_deadline_minus_remaining_tmin_plus_t) {
  fixture f(topo::line(3, sim::kGbps, 2 * sim::kMicrosecond));
  net::packet_ptr p = net::make_packet();
  p->size_bytes = 1500;
  p->src_host = f.topo.host_id(0);
  p->dst_host = f.topo.host_id(1);
  p->path = f.net.route(p->src_host, p->dst_host);
  p->deadline = sim::kMillisecond;  // o(p)
  p->hop = 1;  // as if arriving at the port of path[0]

  edf sched(7, f.net, sim::kGbps);
  const auto expected = p->deadline - f.net.tmin(*p, 0) +
                        sim::transmission_time(1500, sim::kGbps);
  sched.enqueue(std::move(p), 0);
  auto out = sched.dequeue(0);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->sched_key, expected);
}

TEST(edf, deadline_header_never_rewritten) {
  // Unlike LSTF's slack, EDF's o(p) header is static: run a packet through
  // a congested network and confirm the field is untouched.
  fixture f(topo::line(3, sim::kGbps, sim::kMicrosecond));
  sim::time_ps deadline_at_egress = -1;
  f.net.hooks().on_egress = [&](const net::packet& p, sim::time_ps) {
    deadline_at_egress = p.deadline;
  };
  net::packet_ptr p = net::make_packet();
  p->id = 1;
  p->size_bytes = 1500;
  p->src_host = f.topo.host_id(0);
  p->dst_host = f.topo.host_id(1);
  p->deadline = 42 * sim::kMillisecond;
  f.net.send_from_host(std::move(p));
  f.sim.run();
  EXPECT_EQ(deadline_at_egress, 42 * sim::kMillisecond);
}

TEST(tmin, matches_on_internet2_sampled_paths) {
  // Cross-check tmin against an actual uncongested traversal for sampled
  // host pairs on the full Internet2 topology.
  fixture f(topo::internet2());
  sim::rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto s = rng.next_below(f.topo.host_count());
    auto d = rng.next_below(f.topo.host_count() - 1);
    if (d >= s) ++d;

    sim::simulator sim2;
    net::network net2(sim2);
    topo::populate(f.topo, net2);
    net2.set_scheduler_factory(make_factory(sched_kind::fifo, 1));
    net2.build();
    sim::time_ps ingress = -1, egress = -1;
    net2.hooks().on_ingress = [&](const net::packet&, sim::time_ps t) {
      ingress = t;
    };
    net2.hooks().on_egress = [&](const net::packet&, sim::time_ps t) {
      egress = t;
    };
    net::packet_ptr p = net::make_packet();
    p->id = 1;
    p->size_bytes = 1500;
    p->src_host = f.topo.host_id(s);
    p->dst_host = f.topo.host_id(d);
    p->path = net2.route(p->src_host, p->dst_host);
    const auto expect = net2.tmin(*p, 0);
    net2.send_from_host(std::move(p));
    sim2.run();
    EXPECT_EQ(egress - ingress, expect) << "pair " << s << "->" << d;
  }
}

}  // namespace
}  // namespace ups::core
