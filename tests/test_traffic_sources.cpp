// Tests for the composable traffic-source subsystem (traffic/source.h):
// the legacy-mode byte-identity of open_loop_source vs the pre-refactor
// udp_app, paced emission spacing, closed-loop outstanding bounds (UDP and
// TCP-driven), incast fan-in structure, and the workload-name parser.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/registry.h"
#include "core/replay.h"
#include "net/network.h"
#include "net/trace.h"
#include "net/trace_io.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "topo/internet2.h"
#include "traffic/size_dist.h"
#include "traffic/source.h"
#include "traffic/udp_app.h"
#include "traffic/workload.h"

namespace ups::traffic {
namespace {

struct fixture {
  sim::simulator sim;
  net::network net{sim};
  topo::topology topo;

  explicit fixture(topo::topology t,
                   core::sched_kind sched = core::sched_kind::fifo,
                   std::int64_t buffer_bytes = 0)
      : topo(std::move(t)) {
    topo::populate(topo, net);
    net.set_buffer_bytes(buffer_bytes);
    net.set_scheduler_factory(core::make_factory(sched, 1, &net));
    net.build();
  }
};

// --- legacy-mode equivalence -------------------------------------------------
// The acceptance bar: an open-loop trace generated through the new source
// subsystem must be byte-identical to the pre-refactor generator, and its
// streaming replay must match packet for packet.

TEST(open_loop_equivalence, trace_byte_identical_to_legacy_udp_app) {
  const auto dist = default_heavy_tailed();
  workload_config wcfg;
  wcfg.utilization = 0.7;
  wcfg.packet_budget = 5'000;

  // Legacy path: workload::generate + udp_app.
  fixture legacy(topo::internet2(), core::sched_kind::random);
  net::trace_recorder legacy_rec(legacy.net);
  auto legacy_wl = generate(legacy.net, legacy.topo, *dist, wcfg);
  udp_app legacy_app(legacy.net, std::move(legacy_wl.flows), {});
  legacy.sim.run();
  net::trace legacy_trace = legacy_rec.take();

  // New path: make_source with the open-loop kind (regenerates the same
  // calibrated workload internally from the same config).
  fixture fresh(topo::internet2(), core::sched_kind::random);
  net::trace_recorder fresh_rec(fresh.net);
  auto made = make_source(fresh.net, fresh.topo, *dist, wcfg,
                          source_kind::open_loop);
  fresh.sim.run();
  net::trace fresh_trace = fresh_rec.take();

  ASSERT_EQ(legacy_trace.packets.size(), fresh_trace.packets.size());
  EXPECT_EQ(made.src->packets_emitted(), legacy_app.packets_emitted());

  // Byte-identical: the serialized traces must match exactly.
  std::ostringstream legacy_os, fresh_os;
  net::write_trace(legacy_os, legacy_trace);
  net::write_trace(fresh_os, fresh_trace);
  EXPECT_EQ(legacy_os.str(), fresh_os.str());

  // And so must the streaming LSTF replay of each, packet for packet.
  core::replay_options opt;
  opt.mode = core::replay_mode::lstf;
  opt.threshold_T = sim::transmission_time(1500, sim::kGbps);
  const auto& topology = legacy.topo;
  const auto builder = [&topology](net::network& n) {
    topo::populate(topology, n);
  };
  const auto a = core::replay_trace(legacy_trace, builder, opt);
  const auto b = core::replay_trace(fresh_trace, builder, opt);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.overdue, b.overdue);
  EXPECT_EQ(a.overdue_beyond_T, b.overdue_beyond_T);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_EQ(a.outcomes[i].replay_out, b.outcomes[i].replay_out);
  }
}

// --- paced_source ------------------------------------------------------------

TEST(paced_source_test, spaces_packets_at_the_paced_rate) {
  // One 15 kB flow over a 1 Gbps line: at fraction 0.5 the paced rate is
  // 500 Mbps, so full-MTU packets leave 24 us apart (two serialization
  // times) and arrive at the ingress router with the same spacing.
  fixture f(topo::line(2));
  net::trace_recorder rec(f.net);
  std::vector<flow_spec> flows;
  flows.push_back(flow_spec{1, f.topo.host_id(0), f.topo.host_id(1), 15'000,
                            sim::kMicrosecond});
  paced_source src(f.net, std::move(flows), 0.5, {});
  f.sim.run();
  EXPECT_EQ(src.packets_emitted(), 10u);
  EXPECT_EQ(src.flows_completed(), 1u);
  auto tr = rec.take();
  ASSERT_EQ(tr.packets.size(), 10u);
  net::sort_by_ingress(tr);
  const sim::time_ps expected_gap =
      2 * sim::transmission_time(1500, sim::kGbps);
  for (std::size_t i = 2; i < tr.packets.size(); ++i) {
    // Skip the first gap (last packet is 1500 B like the rest here, but the
    // first arrival also carries the host-link propagation).
    EXPECT_EQ(tr.packets[i].ingress_time - tr.packets[i - 1].ingress_time,
              expected_gap);
  }
}

TEST(paced_source_test, defers_materialization_of_a_lone_elephant) {
  // The mechanism in isolation: a 3 MB flow on a 1 Gbps line. Open-loop
  // materializes all ~2000 packets at t=0 (they park in the NIC queue);
  // pacing at the line rate keeps only the bandwidth-delay product's worth
  // live at any instant.
  const std::uint64_t elephant = 3'000'000;
  fixture open_f(topo::line(2));
  std::vector<flow_spec> open_flows{
      flow_spec{1, open_f.topo.host_id(0), open_f.topo.host_id(1), elephant,
                0}};
  open_loop_source open_src(open_f.net, std::move(open_flows), {});
  open_f.sim.run();
  const auto open_peak = open_f.net.pool().created();

  fixture paced_f(topo::line(2));
  std::vector<flow_spec> paced_flows{
      flow_spec{1, paced_f.topo.host_id(0), paced_f.topo.host_id(1), elephant,
                0}};
  paced_source paced_src(paced_f.net, std::move(paced_flows), 1.0, {});
  paced_f.sim.run();
  const auto paced_peak = paced_f.net.pool().created();

  EXPECT_EQ(open_src.packets_emitted(), paced_src.packets_emitted());
  EXPECT_GT(open_peak, 1'900u);  // essentially the whole flow at once
  EXPECT_LT(paced_peak, open_peak / 10)
      << "a paced lone flow should keep only O(BDP) packets live";
}

TEST(paced_source_test, stays_below_open_loop_under_contended_load) {
  // Under a full calibrated workload the gain is bounded by contention (a
  // paced flow still queues behind sharers at the bottleneck), but paced
  // residency must never exceed the open-loop burst baseline.
  const auto dist = default_heavy_tailed();
  workload_config wcfg;
  wcfg.utilization = 0.7;
  wcfg.packet_budget = 10'000;

  fixture open_f(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps,
                                sim::kMillisecond));
  auto open_wl = generate(open_f.net, open_f.topo, *dist, wcfg);
  open_loop_source open_src(open_f.net, std::move(open_wl.flows), {});
  open_f.sim.run();
  const auto open_peak = open_f.net.pool().created();

  fixture paced_f(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps,
                                 sim::kMillisecond));
  auto paced_wl = generate(paced_f.net, paced_f.topo, *dist, wcfg);
  paced_source paced_src(paced_f.net, std::move(paced_wl.flows), 1.0, {});
  paced_f.sim.run();
  const auto paced_peak = paced_f.net.pool().created();

  EXPECT_EQ(open_src.packets_emitted(), paced_src.packets_emitted());
  EXPECT_LT(paced_peak, open_peak);
}

// --- closed_loop_source ------------------------------------------------------

TEST(closed_loop_source_test, bounds_outstanding_and_completes_all_flows) {
  fixture f(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps));
  std::vector<flow_spec> flows;
  // 20 flows all requested at t=0: only 2 may be in flight at once.
  for (std::uint64_t i = 0; i < 20; ++i) {
    flows.push_back(flow_spec{i + 1, f.topo.host_id(i % 4),
                              f.topo.host_id(4 + (i % 4)), 15'000, 0});
  }
  closed_loop_source src(f.net, std::move(flows), 2, /*via_tcp=*/false, {});
  f.sim.run();
  EXPECT_EQ(src.flows_completed(), 20u);
  EXPECT_EQ(src.peak_outstanding(), 2u);
  EXPECT_EQ(src.packets_emitted(), 200u);  // 10 packets per flow
  EXPECT_EQ(f.net.stats().delivered, 200u);
}

TEST(closed_loop_source_test, respects_start_times_when_window_open) {
  fixture f(topo::line(2));
  net::trace_recorder rec(f.net);
  std::vector<flow_spec> flows;
  flows.push_back(
      flow_spec{1, f.topo.host_id(0), f.topo.host_id(1), 3'000, 0});
  flows.push_back(flow_spec{2, f.topo.host_id(0), f.topo.host_id(1), 3'000,
                            sim::kMillisecond});
  closed_loop_source src(f.net, std::move(flows), 8, /*via_tcp=*/false, {});
  f.sim.run();
  EXPECT_EQ(src.flows_completed(), 2u);
  auto tr = rec.take();
  net::sort_by_ingress(tr);
  // The second flow's start time is an earliest-start, honored exactly when
  // the window has room.
  ASSERT_EQ(tr.packets.size(), 4u);
  EXPECT_GE(tr.packets[2].ingress_time, sim::kMillisecond);
}

TEST(closed_loop_source_test, drops_cannot_leak_window_slots) {
  // Finite buffers small enough to force drops: every flow must still
  // complete (a dropped packet counts as that packet's exit from the
  // network), and the pre-existing drop hook must keep firing.
  fixture f(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps),
            core::sched_kind::fifo, /*buffer_bytes=*/4'500);
  std::uint64_t hook_drops = 0;
  f.net.hooks().on_drop = [&hook_drops](const net::packet&, net::node_id,
                                        sim::time_ps,
                                        net::drop_kind) { ++hook_drops; };
  std::vector<flow_spec> flows;
  for (std::uint64_t i = 0; i < 16; ++i) {
    flows.push_back(flow_spec{i + 1, f.topo.host_id(i % 4),
                              f.topo.host_id(4 + (i % 4)), 30'000, 0});
  }
  closed_loop_source src(f.net, std::move(flows), 8, /*via_tcp=*/false, {});
  f.sim.run();
  EXPECT_GT(f.net.stats().dropped, 0u) << "test needs actual drops to bite";
  EXPECT_EQ(hook_drops, f.net.stats().dropped) << "chained hook must fire";
  EXPECT_EQ(src.flows_completed(), 16u);
}

TEST(closed_loop_source_test, tcp_driven_flows_complete_within_bound) {
  fixture f(topo::dumbbell(2, 10 * sim::kGbps, sim::kGbps));
  std::vector<flow_spec> flows;
  for (std::uint64_t i = 0; i < 6; ++i) {
    flows.push_back(flow_spec{i + 1, f.topo.host_id(i % 2),
                              f.topo.host_id(2 + (i % 2)), 50'000, 0});
  }
  closed_loop_source src(f.net, std::move(flows), 2, /*via_tcp=*/true, {});
  f.sim.run();
  EXPECT_EQ(src.flows_completed(), 6u);
  EXPECT_EQ(src.peak_outstanding(), 2u);
  EXPECT_GT(src.packets_emitted(), 0u);
}

// --- incast ------------------------------------------------------------------

TEST(incast_test, epochs_have_distinct_senders_aimed_at_one_victim) {
  fixture f(topo::dumbbell(8, 10 * sim::kGbps, sim::kGbps));
  fixed_size dist(15'000);
  workload_config cfg;
  cfg.packet_budget = 2'000;
  const auto wl = generate_incast(f.net, f.topo, dist, cfg, 5,
                                  10 * sim::kMicrosecond);
  ASSERT_FALSE(wl.epochs.empty());
  EXPECT_GE(wl.total_packets, cfg.packet_budget);
  std::uint64_t expect_flow = 1;
  for (const auto& e : wl.epochs) {
    EXPECT_EQ(e.srcs.size(), 5u);
    EXPECT_EQ(e.sizes.size(), 5u);
    EXPECT_EQ(e.offsets.size(), 5u);
    EXPECT_EQ(e.first_flow_id, expect_flow);
    expect_flow += e.srcs.size();
    std::set<net::node_id> uniq(e.srcs.begin(), e.srcs.end());
    EXPECT_EQ(uniq.size(), e.srcs.size()) << "senders must be distinct";
    EXPECT_EQ(uniq.count(e.dst), 0u) << "victim cannot send to itself";
    for (const auto off : e.offsets) {
      EXPECT_GE(off, 0);
      EXPECT_LE(off, 10 * sim::kMicrosecond);
    }
  }
}

TEST(incast_test, source_emits_every_epoch_toward_its_victim) {
  fixture f(topo::dumbbell(8, 10 * sim::kGbps, sim::kGbps));
  net::trace_recorder rec(f.net);
  fixed_size dist(3'000);
  workload_config cfg;
  cfg.packet_budget = 1'000;
  auto wl = generate_incast(f.net, f.topo, dist, cfg, 4,
                            5 * sim::kMicrosecond);
  const auto planned = wl.total_packets;
  const auto epochs = wl.epochs.size();
  // Victim per flow id, to check the recorded trace against the plan.
  std::vector<net::node_id> victim_of(wl.flow_count + 1, net::kInvalidNode);
  for (const auto& e : wl.epochs) {
    for (std::size_t s = 0; s < e.srcs.size(); ++s) {
      victim_of[e.first_flow_id + s] = e.dst;
    }
  }
  incast_source src(f.net, std::move(wl.epochs), {});
  f.sim.run();
  EXPECT_EQ(src.epochs_fired(), epochs);
  EXPECT_EQ(src.packets_emitted(), planned);
  const auto tr = rec.take();
  ASSERT_EQ(tr.packets.size(), planned);
  for (const auto& r : tr.packets) {
    ASSERT_LT(r.flow_id, victim_of.size());
    EXPECT_EQ(r.dst_host, victim_of[r.flow_id]);
  }
}

// --- mixed -------------------------------------------------------------------

TEST(mixed_source_test, runs_both_halves_with_disjoint_ids) {
  fixture f(topo::dumbbell(8, 10 * sim::kGbps, sim::kGbps));
  net::trace_recorder rec(f.net);
  const auto dist = default_heavy_tailed();
  workload_config cfg;
  cfg.utilization = 0.6;
  cfg.packet_budget = 4'000;
  source_tuning tune;
  tune.incast_degree = 4;
  tune.outstanding = 8;
  tune.incast_share = 0.3;
  auto made = make_source(f.net, f.topo, *dist, cfg, source_kind::mixed, tune);
  f.sim.run();

  auto* mixed = dynamic_cast<mixed_source*>(made.src.get());
  ASSERT_NE(mixed, nullptr);
  EXPECT_GT(mixed->background_packets(), 0u) << "closed loop must run";
  EXPECT_GT(mixed->incast_packets(), 0u) << "incast epochs must fire";
  EXPECT_GT(mixed->epochs_fired(), 0u);
  EXPECT_LE(mixed->peak_outstanding(), tune.outstanding);
  EXPECT_EQ(made.src->packets_emitted(),
            mixed->background_packets() + mixed->incast_packets());
  EXPECT_GE(made.planned_packets, cfg.packet_budget);

  // Replay sorts outcomes by packet id and the closed loop matches
  // completions by flow id: both namespaces must be collision-free across
  // the two member sources.
  const auto tr = rec.take();
  EXPECT_EQ(tr.packets.size(), made.src->packets_emitted());
  std::set<std::uint64_t> ids;
  for (const auto& r : tr.packets) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate packet id " << r.id;
  }
}

TEST(mixed_source_test, zero_share_degenerates_to_closed_loop) {
  fixture f(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps));
  const auto dist = default_heavy_tailed();
  workload_config cfg;
  cfg.utilization = 0.5;
  cfg.packet_budget = 1'000;
  source_tuning tune;
  tune.incast_share = 0.0;
  auto made = make_source(f.net, f.topo, *dist, cfg, source_kind::mixed, tune);
  f.sim.run();
  auto* mixed = dynamic_cast<mixed_source*>(made.src.get());
  ASSERT_NE(mixed, nullptr);
  EXPECT_EQ(mixed->incast_packets(), 0u);
  EXPECT_EQ(mixed->epochs_fired(), 0u);
  EXPECT_GT(mixed->background_packets(), 0u);
}

// --- parse_workload ----------------------------------------------------------

TEST(parse_workload_test, names_knobs_and_errors) {
  source_tuning t;
  EXPECT_EQ(parse_workload("open-loop", t), source_kind::open_loop);
  EXPECT_EQ(parse_workload("open_loop", t), source_kind::open_loop);
  EXPECT_EQ(parse_workload("paced:0.25", t), source_kind::paced);
  EXPECT_DOUBLE_EQ(t.pacing_fraction, 0.25);
  EXPECT_EQ(parse_workload("closed-loop:16", t), source_kind::closed_loop);
  EXPECT_EQ(t.outstanding, 16u);
  EXPECT_FALSE(t.via_tcp);
  EXPECT_EQ(parse_workload("closed-loop-tcp:4", t),
            source_kind::closed_loop);
  EXPECT_TRUE(t.via_tcp);
  EXPECT_EQ(t.outstanding, 4u);
  EXPECT_EQ(parse_workload("incast:32", t), source_kind::incast);
  EXPECT_EQ(t.incast_degree, 32u);
  EXPECT_EQ(parse_workload("mixed", t), source_kind::mixed);
  EXPECT_EQ(parse_workload("mixed:16:4:0.3", t), source_kind::mixed);
  EXPECT_EQ(t.incast_degree, 16u);
  EXPECT_EQ(t.outstanding, 4u);
  EXPECT_DOUBLE_EQ(t.incast_share, 0.3);
  EXPECT_THROW((void)parse_workload("mixed:1:2:0.5:9", t),
               std::invalid_argument);
  EXPECT_THROW((void)parse_workload("warp-drive", t), std::invalid_argument);
  // Malformed knobs must fail loudly, not fold to zero or truncate.
  EXPECT_THROW((void)parse_workload("paced:o.5", t), std::invalid_argument);
  EXPECT_THROW((void)parse_workload("closed-loop:8x", t),
               std::invalid_argument);
  EXPECT_THROW((void)parse_workload("incast:", t), std::invalid_argument);
}

}  // namespace
}  // namespace ups::traffic
