// Unit tests for the ordered packet container shared by all rank-based
// schedulers.
#include <gtest/gtest.h>

#include <memory>

#include "sched/keyed_queue.h"

namespace ups::sched {
namespace {

net::packet_ptr pkt(std::uint64_t id, std::uint32_t bytes = 100) {
  auto p = std::make_unique<net::packet>();
  p->id = id;
  p->size_bytes = bytes;
  return p;
}

TEST(keyed_queue, empty_state) {
  keyed_queue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_EQ(q.pop_min(), nullptr);
  EXPECT_EQ(q.pop_max(), nullptr);
  EXPECT_FALSE(q.min_key().has_value());
  EXPECT_FALSE(q.max_key().has_value());
}

TEST(keyed_queue, min_max_extraction) {
  keyed_queue q;
  q.insert(30, pkt(3));
  q.insert(10, pkt(1));
  q.insert(20, pkt(2));
  EXPECT_EQ(*q.min_key(), 10);
  EXPECT_EQ(*q.max_key(), 30);
  EXPECT_EQ(q.pop_min()->id, 1u);
  EXPECT_EQ(q.pop_max()->id, 3u);
  EXPECT_EQ(q.pop_min()->id, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(keyed_queue, fcfs_within_equal_keys) {
  keyed_queue q;
  for (std::uint64_t i = 1; i <= 8; ++i) q.insert(7, pkt(i));
  for (std::uint64_t i = 1; i <= 8; ++i) EXPECT_EQ(q.pop_min()->id, i);
}

TEST(keyed_queue, pop_max_takes_latest_among_equal_keys) {
  // Among equal keys, pop_max removes the most recent arrival — the right
  // victim for drop-highest-rank (keep the oldest committed work).
  keyed_queue q;
  q.insert(5, pkt(1));
  q.insert(5, pkt(2));
  EXPECT_EQ(q.pop_max()->id, 2u);
}

TEST(keyed_queue, byte_accounting_tracks_both_ends) {
  keyed_queue q;
  q.insert(1, pkt(1, 1000));
  q.insert(2, pkt(2, 500));
  q.insert(3, pkt(3, 250));
  EXPECT_EQ(q.bytes(), 1750u);
  (void)q.pop_min();
  EXPECT_EQ(q.bytes(), 750u);
  (void)q.pop_max();
  EXPECT_EQ(q.bytes(), 500u);
}

TEST(keyed_queue, negative_keys_order_correctly) {
  keyed_queue q;
  q.insert(-100, pkt(1));
  q.insert(0, pkt(2));
  q.insert(-200, pkt(3));
  EXPECT_EQ(q.pop_min()->id, 3u);
  EXPECT_EQ(q.pop_min()->id, 1u);
  EXPECT_EQ(q.pop_min()->id, 2u);
}

TEST(keyed_queue, interleaved_operations) {
  keyed_queue q;
  q.insert(10, pkt(1));
  q.insert(5, pkt(2));
  EXPECT_EQ(q.pop_min()->id, 2u);
  q.insert(1, pkt(3));
  q.insert(20, pkt(4));
  EXPECT_EQ(q.pop_min()->id, 3u);
  EXPECT_EQ(q.pop_max()->id, 4u);
  EXPECT_EQ(q.pop_min()->id, 1u);
}

}  // namespace
}  // namespace ups::sched
