// Unit tests for the ordered packet container shared by all rank-based
// schedulers.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <utility>

#include "sched/keyed_queue.h"

namespace ups::sched {
namespace {

net::packet_ptr pkt(std::uint64_t id, std::uint32_t bytes = 100) {
  net::packet_ptr p = net::make_packet();
  p->id = id;
  p->size_bytes = bytes;
  return p;
}

TEST(keyed_queue, empty_state) {
  keyed_queue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_EQ(q.pop_min(), nullptr);
  EXPECT_EQ(q.pop_max(), nullptr);
  EXPECT_FALSE(q.min_key().has_value());
  EXPECT_FALSE(q.max_key().has_value());
}

TEST(keyed_queue, min_max_extraction) {
  keyed_queue q;
  q.insert(30, pkt(3));
  q.insert(10, pkt(1));
  q.insert(20, pkt(2));
  EXPECT_EQ(*q.min_key(), 10);
  EXPECT_EQ(*q.max_key(), 30);
  EXPECT_EQ(q.pop_min()->id, 1u);
  EXPECT_EQ(q.pop_max()->id, 3u);
  EXPECT_EQ(q.pop_min()->id, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(keyed_queue, fcfs_within_equal_keys) {
  keyed_queue q;
  for (std::uint64_t i = 1; i <= 8; ++i) q.insert(7, pkt(i));
  for (std::uint64_t i = 1; i <= 8; ++i) EXPECT_EQ(q.pop_min()->id, i);
}

TEST(keyed_queue, pop_max_takes_latest_among_equal_keys) {
  // Among equal keys, pop_max removes the most recent arrival — the right
  // victim for drop-highest-rank (keep the oldest committed work).
  keyed_queue q;
  q.insert(5, pkt(1));
  q.insert(5, pkt(2));
  EXPECT_EQ(q.pop_max()->id, 2u);
}

TEST(keyed_queue, byte_accounting_tracks_both_ends) {
  keyed_queue q;
  q.insert(1, pkt(1, 1000));
  q.insert(2, pkt(2, 500));
  q.insert(3, pkt(3, 250));
  EXPECT_EQ(q.bytes(), 1750u);
  (void)q.pop_min();
  EXPECT_EQ(q.bytes(), 750u);
  (void)q.pop_max();
  EXPECT_EQ(q.bytes(), 500u);
}

TEST(keyed_queue, negative_keys_order_correctly) {
  keyed_queue q;
  q.insert(-100, pkt(1));
  q.insert(0, pkt(2));
  q.insert(-200, pkt(3));
  EXPECT_EQ(q.pop_min()->id, 3u);
  EXPECT_EQ(q.pop_min()->id, 1u);
  EXPECT_EQ(q.pop_min()->id, 2u);
}

TEST(keyed_queue, fuzz_matches_ordered_map_reference) {
  // The freelist-backed queue must preserve the exact (key, arrival-uid)
  // total order the original plain-map backing provided — replay
  // determinism depends on it. Mirror every operation against an
  // ordered-map reference model.
  keyed_queue q;
  std::map<std::pair<std::int64_t, std::uint64_t>, std::uint64_t> ref;
  std::mt19937_64 rng(99);
  std::uint64_t uid = 0;  // mirrors the queue's internal arrival sequence
  std::uint64_t id = 0;

  for (int round = 0; round < 50'000; ++round) {
    const auto op = rng() % 4;
    if (op < 2 || ref.empty()) {
      const auto key = static_cast<std::int64_t>(rng() % 64) - 32;
      const std::uint64_t pid = ++id;
      q.insert(key, pkt(pid));
      ref.emplace(std::make_pair(key, uid++), pid);
    } else if (op == 2) {
      auto p = q.pop_min();
      ASSERT_NE(p, nullptr);
      ASSERT_EQ(p->id, ref.begin()->second);
      ref.erase(ref.begin());
    } else {
      auto p = q.pop_max();
      ASSERT_NE(p, nullptr);
      ASSERT_EQ(p->id, std::prev(ref.end())->second);
      ref.erase(std::prev(ref.end()));
    }
    ASSERT_EQ(q.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(*q.min_key(), ref.begin()->first.first);
      ASSERT_EQ(*q.max_key(), std::prev(ref.end())->first.first);
    } else {
      ASSERT_FALSE(q.min_key().has_value());
    }
  }
  while (!ref.empty()) {
    ASSERT_EQ(q.pop_min()->id, ref.begin()->second);
    ref.erase(ref.begin());
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0u);
}

TEST(keyed_queue, interleaved_operations) {
  keyed_queue q;
  q.insert(10, pkt(1));
  q.insert(5, pkt(2));
  EXPECT_EQ(q.pop_min()->id, 2u);
  q.insert(1, pkt(3));
  q.insert(20, pkt(4));
  EXPECT_EQ(q.pop_min()->id, 3u);
  EXPECT_EQ(q.pop_max()->id, 4u);
  EXPECT_EQ(q.pop_min()->id, 1u);
}

}  // namespace
}  // namespace ups::sched
