// Structural tests for the experiment topologies.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/registry.h"
#include "net/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "topo/fattree.h"
#include "topo/gadgets.h"
#include "topo/internet2.h"
#include "topo/rocketfuel.h"

namespace ups::topo {
namespace {

// Builds a network and returns router-level path lengths for sampled pairs.
std::vector<std::size_t> sample_path_lengths(const topology& t, int n = 200) {
  sim::simulator sim;
  net::network net(sim);
  populate(t, net);
  net.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  net.build();
  std::vector<std::size_t> lens;
  sim::rng rng(7);
  const std::size_t hosts = t.host_count();
  for (int i = 0; i < n; ++i) {
    const auto s = rng.next_below(hosts);
    auto d = rng.next_below(hosts - 1);
    if (d >= s) ++d;
    lens.push_back(net.route(t.host_id(s), t.host_id(d)).size());
  }
  return lens;
}

TEST(internet2, paper_dimensions) {
  const auto t = internet2();
  // 10 core routers + 100 edge routers.
  EXPECT_EQ(t.routers, 110);
  EXPECT_EQ(t.host_count(), 100u);
  // 16 core links + 100 access links.
  EXPECT_EQ(t.core_links.size(), 116u);
  EXPECT_EQ(t.bottleneck_rate(), sim::kGbps);
}

TEST(internet2, hop_count_matches_paper_range) {
  // Paper: "number of hops per packet is in the range of 4 to 7, excluding
  // the end hosts."
  const auto lens = sample_path_lengths(internet2());
  for (const auto l : lens) {
    EXPECT_GE(l, 3u);  // edge-core-edge minimum (same-core pairs)
    EXPECT_LE(l, 7u);
  }
  EXPECT_GE(*std::max_element(lens.begin(), lens.end()), 5u);
}

TEST(internet2, default_core_at_least_access_rate) {
  const auto t = internet2();
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_GE(t.core_links[i].rate, sim::kGbps);
  }
}

TEST(internet2, variant_rates) {
  const auto a = internet2_1g_1g();
  EXPECT_EQ(a.hosts.front().rate, sim::kGbps);
  const auto b = internet2_10g_10g();
  EXPECT_EQ(b.hosts.front().rate, 10 * sim::kGbps);
  // 10G-10G: most core links slower than the access links (paper's setup).
  int slower = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    if (b.core_links[i].rate < 10 * sim::kGbps) ++slower;
  }
  EXPECT_GT(slower, 8);
}

TEST(rocketfuel, paper_dimensions) {
  const auto t = rocketfuel();
  // 83 core + 830 edge routers; 131 core links + 830 access links.
  EXPECT_EQ(t.routers, 83 + 830);
  EXPECT_EQ(t.host_count(), 830u);
  EXPECT_EQ(t.core_links.size(), 131u + 830u);
}

TEST(rocketfuel, half_core_links_slower_than_access) {
  const auto t = rocketfuel();
  int slower = 0;
  for (std::size_t i = 0; i < 131; ++i) {
    if (t.core_links[i].rate < sim::kGbps) ++slower;
  }
  EXPECT_NEAR(slower, 66, 1);
}

TEST(rocketfuel, connected) {
  // Every sampled host pair must have a route (throws otherwise).
  const auto lens = sample_path_lengths(rocketfuel(), 100);
  EXPECT_EQ(lens.size(), 100u);
}

TEST(rocketfuel, deterministic_by_seed) {
  const auto a = rocketfuel();
  const auto b = rocketfuel();
  ASSERT_EQ(a.core_links.size(), b.core_links.size());
  for (std::size_t i = 0; i < a.core_links.size(); ++i) {
    EXPECT_EQ(a.core_links[i].a, b.core_links[i].a);
    EXPECT_EQ(a.core_links[i].b, b.core_links[i].b);
    EXPECT_EQ(a.core_links[i].rate, b.core_links[i].rate);
  }
}

TEST(fattree, k4_dimensions) {
  fattree_config cfg;
  cfg.k = 4;
  const auto t = fattree(cfg);
  EXPECT_EQ(t.routers, 8 + 8 + 4);
  EXPECT_EQ(t.host_count(), 16u);
  // Pod links: 4 pods x 2 edge x 2 agg = 16; core links: 4 pods x 2 agg x 2
  // = 16.
  EXPECT_EQ(t.core_links.size(), 32u);
}

TEST(fattree, k8_dimensions) {
  const auto t = fattree();
  EXPECT_EQ(t.routers, 32 + 32 + 16);
  EXPECT_EQ(t.host_count(), 128u);
}

TEST(fattree, all_links_same_rate) {
  const auto t = fattree();
  for (const auto& l : t.core_links) EXPECT_EQ(l.rate, 10 * sim::kGbps);
  for (const auto& h : t.hosts) EXPECT_EQ(h.rate, 10 * sim::kGbps);
}

TEST(fattree, inter_pod_paths_traverse_core) {
  fattree_config cfg;
  cfg.k = 4;
  const auto t = fattree(cfg);
  sim::simulator sim;
  net::network net(sim);
  populate(t, net);
  net.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
  net.build();
  // Hosts 0 and 15 are in different pods: 5-router path
  // (edge-agg-core-agg-edge).
  const auto& p = net.route(t.host_id(0), t.host_id(15));
  EXPECT_EQ(p.size(), 5u);
  // Same edge switch: single router.
  const auto& q = net.route(t.host_id(0), t.host_id(1));
  EXPECT_EQ(q.size(), 1u);
}

TEST(basic, line_dumbbell_parking_lot_shapes) {
  const auto l = line(5);
  EXPECT_EQ(l.routers, 5);
  EXPECT_EQ(l.core_links.size(), 4u);
  const auto d = dumbbell(3, 10 * sim::kGbps, sim::kGbps);
  EXPECT_EQ(d.routers, 2);
  EXPECT_EQ(d.host_count(), 6u);
  EXPECT_EQ(d.bottleneck_rate(), sim::kGbps);
  const auto p = parking_lot(4);
  EXPECT_EQ(p.routers, 4);
  EXPECT_EQ(p.host_count(), 4u);
}

TEST(gadgets, shapes_and_packet_counts) {
  const auto f5 = fig5_case(1);
  EXPECT_EQ(f5.topo.routers, 10);
  EXPECT_EQ(f5.packets.size(), 10u);  // a, x, b1-3, y1-2, c1-2, z
  const auto f6 = fig6_priority_cycle();
  EXPECT_EQ(f6.topo.routers, 6);
  EXPECT_EQ(f6.packets.size(), 3u);
  const auto f7 = fig7_lstf_failure();
  EXPECT_EQ(f7.topo.routers, 6);
  EXPECT_EQ(f7.packets.size(), 6u);
}

TEST(gadgets, fig5_cases_share_a_and_x_attributes) {
  const auto c1 = fig5_case(1);
  const auto c2 = fig5_case(2);
  // Packets a and x (indices 0 and 1): identical i, o and path across cases
  // — the crux of the Appendix C counterexample.
  for (const std::size_t i : {0u, 1u}) {
    EXPECT_EQ(c1.packets[i].inject_at, c2.packets[i].inject_at);
    EXPECT_EQ(c1.packets[i].expected_out, c2.packets[i].expected_out);
    EXPECT_EQ(c1.packets[i].path, c2.packets[i].path);
  }
}

TEST(topology, scale_delays) {
  auto t = internet2();
  const auto before = t.core_links.front().delay;
  t.scale_delays(0.5);
  EXPECT_EQ(t.core_links.front().delay, before / 2);
}

}  // namespace
}  // namespace ups::topo
