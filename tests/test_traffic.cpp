// Tests for flow-size distributions, utilization calibration (analytic and
// measured against a live run) and the UDP burst application.
#include <gtest/gtest.h>

#include <cmath>

#include "core/registry.h"
#include "net/network.h"
#include "net/trace.h"
#include "sim/simulator.h"
#include "topo/basic.h"
#include "topo/fattree.h"
#include "topo/internet2.h"
#include "traffic/size_dist.h"
#include "traffic/source.h"
#include "traffic/udp_app.h"
#include "traffic/workload.h"

namespace ups::traffic {
namespace {

TEST(size_dist, bounded_pareto_sample_mean_matches_analytic) {
  bounded_pareto d(1.2, 1460, 3'000'000);
  sim::rng rng(5);
  double sum = 0;
  const int n = 400'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample(rng));
  const double sample_mean = sum / n;
  EXPECT_NEAR(sample_mean / d.mean_bytes(), 1.0, 0.05);
}

TEST(size_dist, bounded_pareto_is_heavy_tailed) {
  bounded_pareto d(1.2, 1460, 3'000'000);
  sim::rng rng(5);
  int small = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (d.sample(rng) < 10'000) ++small;
  }
  // Most flows are short...
  EXPECT_GT(static_cast<double>(small) / n, 0.7);
  // ...but the mean is far above the median (mass in the tail).
  EXPECT_GT(d.mean_bytes(), 3 * 1460.0);
}

TEST(size_dist, empirical_web_search_within_bounds) {
  const auto d = web_search();
  sim::rng rng(5);
  for (int i = 0; i < 20'000; ++i) {
    const auto v = d->sample(rng);
    EXPECT_GE(v, 1'460u);
    EXPECT_LE(v, 21'024'000u);
  }
  EXPECT_GT(d->mean_bytes(), 100'000.0);
}

TEST(size_dist, fixed_returns_constant) {
  fixed_size d(4242);
  sim::rng rng(1);
  EXPECT_EQ(d.sample(rng), 4242u);
  EXPECT_DOUBLE_EQ(d.mean_bytes(), 4242.0);
}

struct workload_fixture {
  sim::simulator sim;
  net::network net{sim};
  topo::topology topo;

  explicit workload_fixture(topo::topology t) : topo(std::move(t)) {
    topo::populate(topo, net);
    net.set_scheduler_factory(core::make_factory(core::sched_kind::fifo, 1));
    net.build();
  }
};

TEST(workload, respects_packet_budget) {
  workload_fixture f(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps));
  fixed_size dist(15'000);  // 10 packets per flow
  workload_config cfg;
  cfg.packet_budget = 5'000;
  const auto wl = generate(f.net, f.topo, dist, cfg);
  EXPECT_GE(wl.total_packets, 5'000u);
  EXPECT_LT(wl.total_packets, 5'000u + 15u);
  EXPECT_EQ(wl.flows.size(), wl.total_packets / 10);
}

TEST(workload, calibrated_rate_scales_with_utilization) {
  workload_fixture f(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps));
  fixed_size dist(15'000);
  workload_config lo;
  lo.utilization = 0.2;
  lo.packet_budget = 1'000;
  workload_config hi;
  hi.utilization = 0.8;
  hi.packet_budget = 1'000;
  const auto a = generate(f.net, f.topo, dist, lo);
  const auto b = generate(f.net, f.topo, dist, hi);
  EXPECT_NEAR(b.per_host_rate_bps / a.per_host_rate_bps, 4.0, 0.01);
}

TEST(workload, dumbbell_bottleneck_calibration_is_exact) {
  // 4 hosts per side, uniform matrix: the bottleneck link carries all
  // cross traffic. With 8 hosts sending rate R each, and (4x4)/(8x7)ths of
  // pairs crossing each direction... easier: verify directly that offered
  // load on the bottleneck equals the target.
  workload_fixture f(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps));
  fixed_size dist(15'000);
  workload_config cfg;
  cfg.utilization = 0.7;
  cfg.packet_budget = 1'000;
  const auto wl = generate(f.net, f.topo, dist, cfg);
  // Each host sends R/(H-1) to each peer; 4 of 7 peers are across the
  // bottleneck, 4 hosts share one direction: load = 4 * R * 4/7.
  const double offered = 4.0 * wl.per_host_rate_bps * 4.0 / 7.0;
  EXPECT_NEAR(offered / 1e9, 0.7, 1e-9);
}

TEST(workload, poisson_interarrivals_have_exponential_cv) {
  workload_fixture f(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps));
  fixed_size dist(1'500);
  workload_config cfg;
  cfg.packet_budget = 20'000;
  const auto wl = generate(f.net, f.topo, dist, cfg);
  ASSERT_GT(wl.flows.size(), 1'000u);
  double sum = 0, sq = 0;
  for (std::size_t i = 1; i < wl.flows.size(); ++i) {
    const double gap =
        static_cast<double>(wl.flows[i].start - wl.flows[i - 1].start);
    sum += gap;
    sq += gap * gap;
  }
  const double n = static_cast<double>(wl.flows.size() - 1);
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  const double cv = std::sqrt(var) / mean;  // exponential: cv = 1
  EXPECT_NEAR(cv, 1.0, 0.1);
}

TEST(workload, sampled_calibration_close_to_exact) {
  // Force the sampled path on a topology small enough to also enumerate.
  workload_fixture f(topo::internet2());
  fixed_size dist(15'000);
  workload_config exact;
  exact.packet_budget = 100;
  workload_config sampled;
  sampled.packet_budget = 100;
  sampled.exact_pair_limit = 10;  // forces sampling
  sampled.sampled_pairs = 40'000;
  const auto a = generate(f.net, f.topo, dist, exact);
  const auto b = generate(f.net, f.topo, dist, sampled);
  EXPECT_NEAR(b.per_host_rate_bps / a.per_host_rate_bps, 1.0, 0.15);
}

// The analytic calibration promises that the most loaded link carries the
// target utilization. Check it against reality: drive the calibrated
// workload through the network and measure the busiest link's throughput
// over the trace span. Fixed-size flows keep the statistical noise small;
// the drain tail after the last arrival biases the measurement slightly
// low, hence the asymmetric tolerance.
double measured_utilization_on(topo::topology topo, double target) {
  workload_fixture f(std::move(topo));
  net::trace_recorder rec(f.net);
  fixed_size dist(15'000);
  workload_config cfg;
  cfg.utilization = target;
  cfg.packet_budget = 20'000;
  auto wl = generate(f.net, f.topo, dist, cfg);
  open_loop_source src(f.net, std::move(wl.flows), {});
  f.sim.run();
  const auto tr = rec.take();
  sim::time_ps first = tr.packets.front().ingress_time;
  sim::time_ps last = 0;
  for (const auto& r : tr.packets) {
    first = std::min(first, r.ingress_time);
    last = std::max(last, r.egress_time);
  }
  return measured_peak_utilization(f.net, last - first);
}

TEST(workload_calibration, measured_utilization_matches_target_on_i2) {
  // Scale down I2's multi-millisecond WAN delays (as the fairness
  // experiment does): the measurement window must be dominated by the
  // generation span, not by propagation of the final packets.
  auto t = topo::internet2();
  t.scale_delays(0.01);
  const double u = measured_utilization_on(std::move(t), 0.6);
  EXPECT_GT(u, 0.6 * 0.8);
  EXPECT_LT(u, 0.6 * 1.2);
}

TEST(workload_calibration, measured_utilization_matches_target_on_fattree) {
  const double u = measured_utilization_on(topo::fattree(), 0.6);
  EXPECT_GT(u, 0.6 * 0.8);
  EXPECT_LT(u, 0.6 * 1.2);
}

TEST(workload_calibration, analytic_value_reported_as_target) {
  workload_fixture f(topo::internet2());
  fixed_size dist(15'000);
  workload_config cfg;
  cfg.utilization = 0.45;
  cfg.packet_budget = 500;
  const auto wl = generate(f.net, f.topo, dist, cfg);
  EXPECT_DOUBLE_EQ(wl.max_link_utilization, 0.45);
  EXPECT_GT(wl.per_host_rate_bps, 0.0);
}

// Steady-state residency bounds: a closed-loop source can never hold more
// than outstanding x (packets per flow) packets in flight, and a paced
// source materializes a lone burst gradually instead of all at once.
TEST(workload_residency, closed_loop_bounded_by_construction) {
  workload_fixture f(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps));
  fixed_size dist(15'000);  // 10 packets per flow
  workload_config cfg;
  cfg.packet_budget = 2'000;
  auto wl = generate(f.net, f.topo, dist, cfg);
  closed_loop_source src(f.net, std::move(wl.flows), 4, /*via_tcp=*/false,
                         {});
  f.sim.run();
  EXPECT_LE(src.peak_outstanding(), 4u);
  // Pool high-water: the outstanding flows' packets, plus the delivered
  // packet that is still alive inside the host handler when the completion
  // it signals launches the next flow.
  EXPECT_LE(f.net.pool().created(), 4u * 10u + 1u);
}

TEST(workload_residency, paced_stays_at_open_loop_or_below) {
  const auto run_kind = [](source_kind kind) {
    workload_fixture f(topo::dumbbell(4, 10 * sim::kGbps, sim::kGbps));
    const auto dist = default_heavy_tailed();
    workload_config cfg;
    cfg.packet_budget = 5'000;
    auto made = make_source(f.net, f.topo, *dist, cfg, kind);
    f.sim.run();
    return f.net.pool().created();
  };
  EXPECT_LE(run_kind(source_kind::paced), run_kind(source_kind::open_loop));
}

TEST(udp_app, emits_mtu_sized_bursts) {
  workload_fixture f(topo::line(2));
  net::trace_recorder rec(f.net);
  std::vector<flow_spec> flows;
  flows.push_back(flow_spec{1, f.topo.host_id(0), f.topo.host_id(1), 4'000,
                            sim::kMicrosecond});
  udp_app app(f.net, std::move(flows), {});
  f.sim.run();
  EXPECT_EQ(app.packets_emitted(), 3u);  // 1500 + 1500 + 1000
  const auto tr = rec.take();
  ASSERT_EQ(tr.packets.size(), 3u);
  std::uint64_t bytes = 0;
  for (const auto& r : tr.packets) bytes += r.size_bytes;
  EXPECT_EQ(bytes, 4'000u);
  for (const auto& r : tr.packets) {
    EXPECT_EQ(r.flow_size_bytes, 4'000u);
    EXPECT_EQ(r.flow_id, 1u);
  }
}

TEST(udp_app, stamper_applies_to_every_packet) {
  workload_fixture f(topo::line(2));
  std::vector<flow_spec> flows;
  flows.push_back(
      flow_spec{1, f.topo.host_id(0), f.topo.host_id(1), 6'000, 0});
  udp_app::options opt;
  int stamped = 0;
  opt.stamper = [&stamped](net::packet& p) {
    p.slack = 12345;
    ++stamped;
  };
  udp_app app(f.net, std::move(flows), std::move(opt));
  f.sim.run();
  EXPECT_EQ(stamped, 4);
}

}  // namespace
}  // namespace ups::traffic
