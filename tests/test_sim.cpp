// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace ups::sim {
namespace {

TEST(simulator, starts_at_zero) {
  simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.events_processed(), 0u);
}

TEST(simulator, runs_events_in_time_order) {
  simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(simulator, same_time_events_run_in_scheduling_order) {
  simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(simulator, schedule_in_is_relative) {
  simulator s;
  time_ps seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_in(50, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 150);
}

TEST(simulator, cancellation_skips_event) {
  simulator s;
  bool ran = false;
  auto h = s.schedule_at(10, [&] { ran = true; });
  s.cancel(h);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.events_processed(), 0u);
}

TEST(simulator, cancel_unknown_handle_is_noop) {
  simulator s;
  s.cancel(simulator::handle{});
  s.cancel(simulator::handle{12345});
  bool ran = false;
  s.schedule_at(1, [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(simulator, cancel_one_of_equal_time_events) {
  simulator s;
  std::vector<int> order;
  s.schedule_at(5, [&] { order.push_back(0); });
  auto h = s.schedule_at(5, [&] { order.push_back(1); });
  s.schedule_at(5, [&] { order.push_back(2); });
  s.cancel(h);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(simulator, run_until_advances_clock_without_events) {
  simulator s;
  s.run_until(12345);
  EXPECT_EQ(s.now(), 12345);
}

TEST(simulator, run_until_executes_boundary_events) {
  simulator s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(21, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(simulator, scheduling_into_past_throws) {
  simulator s;
  s.schedule_at(100, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(50, [] {}), std::logic_error);
}

TEST(simulator, events_can_schedule_more_events) {
  simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_in(1, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 99);
  EXPECT_EQ(s.events_processed(), 100u);
}

TEST(simulator, late_events_run_after_all_same_time_normals) {
  simulator s;
  std::vector<int> order;
  s.schedule_late(10, [&] { order.push_back(99); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(10, [&] {
    order.push_back(2);
    // A normal event scheduled *during* processing of time 10 still runs
    // before the pending late event.
    s.schedule_in(0, [&] { order.push_back(3); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 99}));
}

TEST(simulator, late_events_precede_later_normals) {
  simulator s;
  std::vector<int> order;
  s.schedule_late(10, [&] { order.push_back(1); });
  s.schedule_at(11, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(simulator, late_events_are_cancellable) {
  simulator s;
  bool ran = false;
  auto h = s.schedule_late(5, [&] { ran = true; });
  s.cancel(h);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(simulator, late_events_fifo_among_themselves) {
  simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_late(3, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(simulator, zero_delay_event_runs_after_pending_same_time) {
  // A completion scheduled "in 0" at time t runs after events already queued
  // for t, preserving causal ordering within a timestamp.
  simulator s;
  std::vector<int> order;
  s.schedule_at(10, [&] {
    order.push_back(1);
    s.schedule_in(0, [&] { order.push_back(3); });
  });
  s.schedule_at(10, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace ups::sim
