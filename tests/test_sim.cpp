// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"

namespace ups::sim {
namespace {

TEST(simulator, starts_at_zero) {
  simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.events_processed(), 0u);
}

TEST(simulator, runs_events_in_time_order) {
  simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(simulator, same_time_events_run_in_scheduling_order) {
  simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(simulator, schedule_in_is_relative) {
  simulator s;
  time_ps seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_in(50, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 150);
}

TEST(simulator, cancellation_skips_event) {
  simulator s;
  bool ran = false;
  auto h = s.schedule_at(10, [&] { ran = true; });
  s.cancel(h);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.events_processed(), 0u);
}

TEST(simulator, cancel_unknown_handle_is_noop) {
  simulator s;
  s.cancel(simulator::handle{});
  s.cancel(simulator::handle{12345});
  bool ran = false;
  s.schedule_at(1, [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(simulator, cancel_one_of_equal_time_events) {
  simulator s;
  std::vector<int> order;
  s.schedule_at(5, [&] { order.push_back(0); });
  auto h = s.schedule_at(5, [&] { order.push_back(1); });
  s.schedule_at(5, [&] { order.push_back(2); });
  s.cancel(h);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(simulator, run_until_advances_clock_without_events) {
  simulator s;
  s.run_until(12345);
  EXPECT_EQ(s.now(), 12345);
}

TEST(simulator, run_until_executes_boundary_events) {
  simulator s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(21, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(simulator, scheduling_into_past_throws) {
  simulator s;
  s.schedule_at(100, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(50, [] {}), std::logic_error);
}

TEST(simulator, events_can_schedule_more_events) {
  simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_in(1, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 99);
  EXPECT_EQ(s.events_processed(), 100u);
}

TEST(simulator, late_events_run_after_all_same_time_normals) {
  simulator s;
  std::vector<int> order;
  s.schedule_late(10, [&] { order.push_back(99); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(10, [&] {
    order.push_back(2);
    // A normal event scheduled *during* processing of time 10 still runs
    // before the pending late event.
    s.schedule_in(0, [&] { order.push_back(3); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 99}));
}

TEST(simulator, late_events_precede_later_normals) {
  simulator s;
  std::vector<int> order;
  s.schedule_late(10, [&] { order.push_back(1); });
  s.schedule_at(11, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(simulator, late_events_are_cancellable) {
  simulator s;
  bool ran = false;
  auto h = s.schedule_late(5, [&] { ran = true; });
  s.cancel(h);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(simulator, late_events_fifo_among_themselves) {
  simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_late(3, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(simulator, cancel_after_run_leaves_queue_empty) {
  // Regression: the pre-slab kernel recorded cancellations of already-run
  // handles in a side set, permanently skewing empty()/pending() accounting
  // and growing memory unboundedly. Generation-stamped slots make the stale
  // cancel a structural no-op.
  simulator s;
  auto h = s.schedule_at(10, [] {});
  s.run();
  EXPECT_TRUE(s.empty());
  s.cancel(h);  // handle already ran
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pending(), 0u);
  // Accounting must still be exact for subsequent events.
  bool ran = false;
  s.schedule_in(1, [&] { ran = true; });
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(s.empty());
}

TEST(simulator, double_cancel_is_noop) {
  simulator s;
  bool ran = false;
  auto h = s.schedule_at(5, [&] { ran = true; });
  s.cancel(h);
  s.cancel(h);  // second cancel must not disturb anything
  s.schedule_at(6, [] {});
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(simulator, stale_handle_cannot_cancel_slot_reuser) {
  // After an event runs, its slot is recycled for the next event; the old
  // handle's generation stamp must not be able to cancel the newcomer.
  simulator s;
  auto h1 = s.schedule_at(10, [] {});
  s.run();
  bool second_ran = false;
  auto h2 = s.schedule_at(20, [&] { second_ran = true; });
  EXPECT_NE(h1.id, h2.id);  // same slot, different generation
  s.cancel(h1);             // stale: must be a no-op
  s.run();
  EXPECT_TRUE(second_ran);
}

TEST(simulator, slab_reuses_slots_instead_of_growing) {
  simulator s;
  for (int i = 0; i < 10'000; ++i) {
    s.schedule_in(1, [] {});
    s.run_next();
  }
  // One pending event at a time -> the slab never needs more than one slot.
  EXPECT_EQ(s.slot_capacity(), 1u);
  EXPECT_EQ(s.events_processed(), 10'000u);
}

TEST(simulator, slab_stress_interleaved_schedule_cancel_run) {
  // Randomized churn across slot reuse, mid-heap cancellation, and stale
  // cancels, validated against exact bookkeeping.
  simulator s;
  std::mt19937_64 rng(1234);
  std::unordered_map<std::uint64_t, simulator::handle> pending;
  std::vector<simulator::handle> dead;  // ran or cancelled: all stale
  std::uint64_t next_token = 0;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t scheduled = 0;
  sim::time_ps last_time = 0;

  for (int round = 0; round < 20'000; ++round) {
    const auto op = rng() % 10;
    if (op < 5) {  // schedule
      const std::uint64_t token = next_token++;
      const auto dt = static_cast<time_ps>(rng() % 100);
      simulator::handle h;
      if (rng() % 4 == 0) {
        h = s.schedule_late(s.now() + dt, [&, token] {
          EXPECT_GE(s.now(), last_time);
          last_time = s.now();
          ++fired;
          pending.erase(token);
        });
      } else {
        h = s.schedule_in(dt, [&, token] {
          EXPECT_GE(s.now(), last_time);
          last_time = s.now();
          ++fired;
          pending.erase(token);
        });
      }
      pending[token] = h;
      ++scheduled;
    } else if (op < 7) {  // cancel a pending event, if any
      if (!pending.empty()) {
        auto it = pending.begin();
        std::advance(it, static_cast<long>(rng() % pending.size()));
        s.cancel(it->second);
        dead.push_back(it->second);
        pending.erase(it);
        ++cancelled;
      }
    } else if (op < 8) {  // cancel a stale handle: must be a no-op
      if (!dead.empty()) {
        const std::size_t before = s.pending();
        s.cancel(dead[rng() % dead.size()]);
        EXPECT_EQ(s.pending(), before);
      }
    } else {  // run a few events
      for (int k = 0; k < 3; ++k) {
        if (!s.run_next()) break;
      }
    }
    ASSERT_EQ(s.pending(), pending.size());
  }
  for (auto& [token, h] : pending) dead.push_back(h);
  s.run();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(fired + cancelled, scheduled);
  // Every handle is now stale; a cancel storm must leave the kernel intact.
  for (const auto& h : dead) s.cancel(h);
  EXPECT_TRUE(s.empty());
  bool epilogue = false;
  s.schedule_in(1, [&] { epilogue = true; });
  s.run();
  EXPECT_TRUE(epilogue);
}

TEST(simulator, zero_delay_event_runs_after_pending_same_time) {
  // A completion scheduled "in 0" at time t runs after events already queued
  // for t, preserving causal ordering within a timestamp.
  simulator s;
  std::vector<int> order;
  s.schedule_at(10, [&] {
    order.push_back(1);
    s.schedule_in(0, [&] { order.push_back(3); });
  });
  s.schedule_at(10, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace ups::sim
