// Smoke/integration tests of the experiment harness at reduced scale: every
// table/figure pipeline must run end to end and produce sane numbers.
#include <gtest/gtest.h>

#include "exp/fairness_experiment.h"
#include "exp/fct_experiment.h"
#include "exp/replay_experiment.h"
#include "exp/tail_experiment.h"

namespace ups::exp {
namespace {

TEST(replay_experiment, i2_random_small_budget) {
  scenario sc;
  sc.packet_budget = 6'000;
  const auto orig = run_original(sc);
  EXPECT_GE(orig.trace.packets.size(), 6'000u);
  EXPECT_EQ(orig.threshold_T, 12 * sim::kMicrosecond);

  const auto res = run_replay(orig, core::replay_mode::lstf);
  EXPECT_EQ(res.total, orig.trace.packets.size());
  // Even at small scale the paper's qualitative claim holds: the vast
  // majority of packets meet their original output times.
  EXPECT_LT(res.frac_overdue(), 0.2);
  EXPECT_LE(res.frac_overdue_beyond_T(), res.frac_overdue());
}

TEST(replay_experiment, lstf_beats_naive_priorities) {
  scenario sc;
  sc.packet_budget = 6'000;
  const auto orig = run_original(sc);
  const auto lstf = run_replay(orig, core::replay_mode::lstf);
  const auto prio =
      run_replay(orig, core::replay_mode::priority_output_time);
  // §2.3(7): simple priorities with priority = o(p) are far worse.
  EXPECT_GT(prio.frac_overdue(), lstf.frac_overdue());
}

TEST(replay_experiment, deterministic_given_seed) {
  scenario sc;
  sc.packet_budget = 2'000;
  const auto a = table1_row(sc);
  const auto b = table1_row(sc);
  EXPECT_EQ(a.overdue, b.overdue);
  EXPECT_EQ(a.overdue_beyond_T, b.overdue_beyond_T);
  EXPECT_EQ(a.total, b.total);
}

TEST(replay_experiment, scenario_labels) {
  scenario sc;
  EXPECT_EQ(sc.label(), "I2 1Gbps-10Gbps @70% Random heavy open-loop");
  sc.sched = core::sched_kind::fq_fifo_plus_mix;
  sc.utilization = 0.3;
  EXPECT_EQ(sc.label(), "I2 1Gbps-10Gbps @30% FQ/FIFO+ heavy open-loop");
  sc.flows = flow_dist_kind::fixed;
  EXPECT_EQ(sc.label(),
            "I2 1Gbps-10Gbps @30% FQ/FIFO+ fixed15000B open-loop");
  sc.workload_kind = traffic::source_kind::paced;
  sc.workload_spec.pacing_fraction = 0.5;
  EXPECT_EQ(sc.label(),
            "I2 1Gbps-10Gbps @30% FQ/FIFO+ fixed15000B paced:0.5");
}

TEST(fct_experiment, sjf_like_beats_fifo_at_small_scale) {
  fct_config cfg;
  cfg.packet_budget = 50'000;
  const auto fifo = run_fct(fct_variant::fifo, cfg);
  const auto sjf = run_fct(fct_variant::sjf, cfg);
  const auto lstf = run_fct(fct_variant::lstf, cfg);
  EXPECT_GT(fifo.flows, 30u);
  EXPECT_EQ(fifo.flows, sjf.flows);
  // Figure 2's qualitative shape: size-aware schedulers beat FIFO on mean
  // FCT, and LSTF with slack = size x D tracks SJF closely.
  EXPECT_LT(sjf.overall_mean_fct_s, fifo.overall_mean_fct_s);
  EXPECT_LT(lstf.overall_mean_fct_s, fifo.overall_mean_fct_s);
  const double ratio = lstf.overall_mean_fct_s / sjf.overall_mean_fct_s;
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(tail_experiment, lstf_uniform_slack_reduces_tail) {
  tail_config cfg;
  cfg.packet_budget = 30'000;
  const auto fifo = run_tail(tail_variant::fifo, cfg);
  const auto lstf = run_tail(tail_variant::lstf_uniform_slack, cfg);
  ASSERT_GT(fifo.delay_s.size(), 10'000u);
  ASSERT_EQ(fifo.delay_s.size(), lstf.delay_s.size())
      << "same input load in both runs";
  // Figure 3's qualitative shape: FIFO+ behaviour trims the tail while the
  // mean stays comparable (within a few percent either way).
  EXPECT_LT(lstf.p99_s, fifo.p99_s * 1.05);
  EXPECT_NEAR(lstf.mean_s / fifo.mean_s, 1.0, 0.2);
}

TEST(fairness_experiment, fq_converges_and_lstf_tracks_it) {
  fairness_config cfg;
  cfg.flows = 30;  // reduced scale for test time
  cfg.horizon = 12 * sim::kMillisecond;
  const auto fq = run_fairness(fairness_variant::fq, 0, cfg);
  const auto lstf = run_fairness(fairness_variant::lstf, sim::kGbps, cfg);
  ASSERT_FALSE(fq.jain.empty());
  // After all flows have started, FQ sits near perfect fairness and LSTF
  // with virtual-clock slack converges toward it (§3.3).
  EXPECT_GT(fq.final_jain, 0.9);
  EXPECT_GT(lstf.final_jain, 0.85);
}

TEST(fairness_experiment, weighted_fairness_tracks_weight) {
  fairness_config cfg;
  cfg.flows = 20;
  cfg.horizon = 16 * sim::kMillisecond;
  const auto res = run_weighted_fairness(2.0, sim::kGbps / 2, cfg);
  // §3.3's weighted extension: class 1 (weight 2) should see roughly twice
  // class 0's throughput once converged.
  EXPECT_GT(res.measured_ratio, 1.4);
  EXPECT_LT(res.measured_ratio, 2.8);
}

TEST(fairness_experiment, small_rest_still_converges) {
  fairness_config cfg;
  cfg.flows = 20;
  cfg.horizon = 12 * sim::kMillisecond;
  const auto lstf =
      run_fairness(fairness_variant::lstf, sim::kGbps / 100, cfg);
  EXPECT_GT(lstf.final_jain, 0.8)
      << "asymptotic fairness holds for any r_est <= r*";
}

}  // namespace
}  // namespace ups::exp
