// Tests for the unified dispatch-backend API (exp/dispatch): spec parsing,
// the replay_result wire codec, the frame splitter's damage handling, the
// per-slot job status primitive, and — the core invariant — byte-identical
// results from the serial, thread, and multi-process backends on the same
// job_plan, including runs where a worker process is killed mid-range or
// writes a truncated garbage frame.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/replay.h"
#include "core/replay_codec.h"
#include "exp/dispatch/backend.h"
#include "exp/dispatch/wire.h"
#include "exp/replay_experiment.h"
#include "gadget_runner.h"
#include "net/trace_binary.h"
#include "net/trace_io.h"
#include "replay_test_util.h"
#include "topo/gadgets.h"

namespace ups::exp::dispatch {
namespace {

using ups::testing::expect_identical_results;

// --- backend_spec ---------------------------------------------------------

TEST(dispatch_spec, parses_every_backend_form) {
  EXPECT_EQ(backend_spec::parse("serial").kind, backend_kind::serial);
  EXPECT_EQ(backend_spec::parse("thread").kind, backend_kind::thread);
  EXPECT_EQ(backend_spec::parse("thread").workers, 0u);
  EXPECT_EQ(backend_spec::parse("thread:8").workers, 8u);
  EXPECT_EQ(backend_spec::parse("process").kind, backend_kind::process);
  EXPECT_EQ(backend_spec::parse("process:4").workers, 4u);
}

TEST(dispatch_spec, rejects_malformed_specs) {
  EXPECT_THROW((void)backend_spec::parse(""), std::invalid_argument);
  EXPECT_THROW((void)backend_spec::parse("fleet"), std::invalid_argument);
  EXPECT_THROW((void)backend_spec::parse("serial:2"), std::invalid_argument);
  EXPECT_THROW((void)backend_spec::parse("process:"), std::invalid_argument);
  EXPECT_THROW((void)backend_spec::parse("thread:x"), std::invalid_argument);
}

// --- replay_result codec --------------------------------------------------

core::replay_result sample_result() {
  core::replay_result r;
  r.total = 5;
  r.overdue = 2;
  r.overdue_beyond_T = 1;
  r.dropped = 3;  // replay-under-loss counter must cross the wire too
  r.threshold_T = 12'000;
  r.peak_pool_packets = 7;
  r.peak_event_slots = 19;
  // Includes a negative lateness (replay beat the original) and non-
  // monotonic original_out deltas, so both zigzag columns are exercised.
  r.outcomes = {
      {1, 1'000, 900, 0, 40},
      {2, 5'000, 5'500, 120, 0},
      {7, 4'200, 4'200, 64, 64},
      {90, 1'000'000, 999'000, 0, 12},
      {91, 1'000'001, 2'000'000, 8, 8},
  };
  return r;
}

TEST(dispatch_codec, round_trips_every_field_exactly) {
  const core::replay_result r = sample_result();
  std::vector<std::uint8_t> buf;
  core::encode_replay_result(r, buf);
  const std::uint8_t* p = buf.data();
  const core::replay_result d =
      core::decode_replay_result(p, buf.data() + buf.size());
  EXPECT_EQ(p, buf.data() + buf.size());  // consumed exactly its bytes
  expect_identical_results(r, d);
  EXPECT_EQ(r.peak_pool_packets, d.peak_pool_packets);
  EXPECT_EQ(r.peak_event_slots, d.peak_event_slots);
}

TEST(dispatch_codec, decode_leaves_trailing_bytes_for_the_caller) {
  std::vector<std::uint8_t> buf;
  core::encode_replay_result(sample_result(), buf);
  const std::size_t result_bytes = buf.size();
  buf.push_back(0xAB);
  buf.push_back(0xCD);
  const std::uint8_t* p = buf.data();
  (void)core::decode_replay_result(p, buf.data() + buf.size());
  EXPECT_EQ(p, buf.data() + result_bytes);
}

TEST(dispatch_codec, truncation_at_any_point_throws_typed_error) {
  std::vector<std::uint8_t> buf;
  core::encode_replay_result(sample_result(), buf);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    const std::uint8_t* p = buf.data();
    EXPECT_THROW((void)core::decode_replay_result(p, buf.data() + cut),
                 core::codec_error)
        << "cut at " << cut << " of " << buf.size();
  }
}

TEST(dispatch_codec, unknown_version_byte_throws) {
  std::vector<std::uint8_t> buf;
  core::encode_replay_result(sample_result(), buf);
  buf[0] = 0xEE;
  const std::uint8_t* p = buf.data();
  EXPECT_THROW((void)core::decode_replay_result(p, buf.data() + buf.size()),
               core::codec_error);
}

// --- frame splitter -------------------------------------------------------

std::vector<std::uint8_t> make_frame_bytes(
    frame_type type, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kFrameHeaderBytes + payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (unsigned shift = 0; shift < 32; shift += 8) {
    bytes.push_back(static_cast<std::uint8_t>(len >> shift));  // LE u32
  }
  bytes.push_back(static_cast<std::uint8_t>(type));
  for (const std::uint8_t b : payload) bytes.push_back(b);
  return bytes;
}

TEST(dispatch_wire, splitter_reassembles_frames_fed_byte_by_byte) {
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
  auto bytes = make_frame_bytes(frame_type::result, payload);
  const auto second = make_frame_bytes(frame_type::shutdown, {});
  bytes.insert(bytes.end(), second.begin(), second.end());

  frame_splitter sp;
  frame f;
  std::size_t popped = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    sp.feed(&bytes[i], 1);
    while (sp.pop(f)) {
      if (popped == 0) {
        EXPECT_EQ(f.type, frame_type::result);
        EXPECT_EQ(f.payload, payload);
      } else {
        EXPECT_EQ(f.type, frame_type::shutdown);
        EXPECT_TRUE(f.payload.empty());
      }
      ++popped;
    }
  }
  EXPECT_EQ(popped, 2u);
  EXPECT_FALSE(sp.mid_frame());
}

TEST(dispatch_wire, splitter_flags_partial_frame_at_eof) {
  const auto bytes = make_frame_bytes(frame_type::result, {1, 2, 3, 4});
  frame_splitter sp;
  sp.feed(bytes.data(), bytes.size() - 2);  // truncated mid-payload
  frame f;
  EXPECT_FALSE(sp.pop(f));
  EXPECT_TRUE(sp.mid_frame());  // a peer EOF here is a truncated result
}

TEST(dispatch_wire, garbage_length_field_fails_fast_not_hangs) {
  // Header claims a 3 GB payload — must throw on the header alone, not
  // wait for bytes that will never come.
  std::uint8_t header[kFrameHeaderBytes];
  const std::uint32_t len = kMaxFramePayload + 17;
  std::memcpy(header, &len, 4);
  header[4] = static_cast<std::uint8_t>(frame_type::result);
  frame_splitter sp;
  sp.feed(header, sizeof header);
  frame f;
  EXPECT_THROW((void)sp.pop(f), wire_error);
}

TEST(dispatch_wire, unknown_type_tag_throws) {
  std::uint8_t header[kFrameHeaderBytes] = {};
  header[4] = 0x7F;
  frame_splitter sp;
  sp.feed(header, sizeof header);
  frame f;
  EXPECT_THROW((void)sp.pop(f), wire_error);
}

// --- run_jobs: the per-slot status primitive ------------------------------

TEST(dispatch_jobs, failing_job_marks_its_slot_and_the_rest_still_run) {
  std::vector<int> hits(64, 0);
  const auto out = run_jobs(hits.size(), 4, [&](std::size_t i) {
    ++hits[i];
    if (i % 13 == 5) throw std::runtime_error("slot " + std::to_string(i));
  });
  ASSERT_EQ(out.status.size(), hits.size());
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << i;  // no job was abandoned
    if (i % 13 == 5) {
      EXPECT_EQ(out.status[i], job_status::failed);
      EXPECT_EQ(out.errors[i], "slot " + std::to_string(i));
    } else {
      EXPECT_EQ(out.status[i], job_status::ok);
      EXPECT_TRUE(out.errors[i].empty());
    }
  }
}

// --- cross-backend identity on a memory plan ------------------------------

job_plan small_plan() {
  const std::vector<core::replay_mode> modes = {
      core::replay_mode::lstf,
      core::replay_mode::lstf_preemptive,
      core::replay_mode::edf,
      core::replay_mode::priority_output_time,
  };
  const struct {
    topo_kind topo;
    double util;
    std::uint64_t seed;
  } specs[] = {
      {topo_kind::i2_default, 0.7, 1},
      {topo_kind::i2_default, 0.5, 2},
      {topo_kind::fattree, 0.7, 1},
  };
  std::vector<shard_task> tasks;
  for (const auto& s : specs) {
    shard_task t;
    t.sc.topo = s.topo;
    t.sc.utilization = s.util;
    t.sc.sched = core::sched_kind::random;
    t.sc.seed = s.seed;
    t.sc.packet_budget = 1'200;
    t.modes = modes;
    tasks.push_back(std::move(t));
  }
  shard_options opt;
  opt.keep_outcomes = true;
  return job_plan::from_tasks(std::move(tasks), opt);
}

backend_spec process_spec(std::size_t workers) {
  backend_spec s;
  s.kind = backend_kind::process;
  s.workers = workers;
  return s;
}

void expect_identical_reports(const run_report& a, const run_report& b) {
  ASSERT_EQ(a.status.size(), b.status.size());
  for (std::size_t j = 0; j < a.status.size(); ++j) {
    EXPECT_EQ(a.status[j], b.status[j]) << "job " << j;
  }
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const shard_result& x = a.results[i];
    const shard_result& y = b.results[i];
    EXPECT_EQ(x.trace_packets, y.trace_packets);
    EXPECT_EQ(x.threshold_T, y.threshold_T);
    EXPECT_EQ(x.original_peak_pool_packets, y.original_peak_pool_packets);
    EXPECT_EQ(x.original_flows_completed, y.original_flows_completed);
    ASSERT_EQ(x.replays.size(), y.replays.size());
    for (std::size_t m = 0; m < x.replays.size(); ++m) {
      EXPECT_EQ(x.replays[m].mode, y.replays[m].mode);
      expect_identical_results(x.replays[m].result, y.replays[m].result);
    }
  }
  ASSERT_EQ(a.disk_replays.size(), b.disk_replays.size());
  for (std::size_t m = 0; m < a.disk_replays.size(); ++m) {
    EXPECT_EQ(a.disk_replays[m].mode, b.disk_replays[m].mode);
    expect_identical_results(a.disk_replays[m].result,
                             b.disk_replays[m].result);
  }
}

TEST(dispatch_process, n_processes_byte_identical_to_serial) {
  const job_plan plan = small_plan();
  backend_spec serial;
  serial.kind = backend_kind::serial;
  const run_report ref = run(plan, serial);
  ASSERT_TRUE(ref.all_ok());

  backend_spec threaded;
  threaded.kind = backend_kind::thread;
  threaded.workers = 4;
  expect_identical_reports(ref, run(plan, threaded));

  for (const std::size_t n : {1u, 2u, 4u}) {
    const run_report prep = run(plan, process_spec(n));
    EXPECT_TRUE(prep.all_ok()) << "process:" << n;
    EXPECT_TRUE(prep.worker_failures.empty()) << "process:" << n;
    expect_identical_reports(ref, prep);
  }
}

TEST(dispatch_process, survives_worker_sigkill_via_reassignment) {
  const job_plan plan = small_plan();
  backend_spec serial;
  serial.kind = backend_kind::serial;
  const run_report ref = run(plan, serial);

  // Two workers, the first dies after computing its first job but before
  // reporting it: the range must be reassigned to the surviving worker and
  // the merge must still be byte-identical.
  backend_spec spec = process_spec(2);
  spec.kill_worker_after = 1;
  const run_report rep = run(plan, spec);
  ASSERT_TRUE(rep.all_ok());
  ASSERT_FALSE(rep.worker_failures.empty());
  EXPECT_EQ(rep.worker_failures[0].kind,
            worker_failure_kind::killed_by_signal);
  EXPECT_EQ(rep.worker_failures[0].detail, SIGKILL);
  EXPECT_FALSE(rep.worker_failures[0].reassigned_jobs.empty());
  expect_identical_reports(ref, rep);
}

TEST(dispatch_process, survives_worker_sigkill_via_respawn) {
  const job_plan plan = small_plan();
  backend_spec serial;
  serial.kind = backend_kind::serial;
  const run_report ref = run(plan, serial);

  // A single worker dies mid-run: no live worker remains, so the
  // coordinator must fork a replacement (which carries no injection — the
  // spawn index moved past 0) and finish the plan.
  backend_spec spec = process_spec(1);
  spec.kill_worker_after = 2;
  const run_report rep = run(plan, spec);
  ASSERT_TRUE(rep.all_ok());
  ASSERT_FALSE(rep.worker_failures.empty());
  EXPECT_EQ(rep.worker_failures[0].kind,
            worker_failure_kind::killed_by_signal);
  EXPECT_TRUE(rep.worker_failures[0].respawned);
  expect_identical_reports(ref, rep);
}

TEST(dispatch_process, hung_worker_is_timed_out_and_range_reassigned) {
  const job_plan plan = small_plan();
  backend_spec serial;
  serial.kind = backend_kind::serial;
  const run_report ref = run(plan, serial);

  // The first worker hangs forever after computing its first job — alive as
  // a process but silent on its socket, so no waitpid/EOF signal will ever
  // fire. The assign->result watchdog must notice the silence, classify it
  // timed_out, SIGKILL the worker, reassign its in-flight range, and still
  // merge byte-identically.
  backend_spec spec = process_spec(2);
  spec.hang_worker_after = 1;
  spec.worker_timeout_ms = 1000;  // dialed down so the suite stays fast
  const run_report rep = run(plan, spec);
  ASSERT_TRUE(rep.all_ok());
  ASSERT_FALSE(rep.worker_failures.empty());
  EXPECT_EQ(rep.worker_failures[0].kind, worker_failure_kind::timed_out);
  EXPECT_FALSE(rep.worker_failures[0].reassigned_jobs.empty());
  expect_identical_reports(ref, rep);
}

TEST(dispatch_process, truncated_result_frame_is_classified_not_hung) {
  const job_plan plan = small_plan();
  backend_spec serial;
  serial.kind = backend_kind::serial;
  const run_report ref = run(plan, serial);

  // The first worker writes a garbage frame (header promising more bytes
  // than it sends) and exits. The coordinator must classify it as a typed
  // protocol error, rerun the lost range, and still merge identically.
  backend_spec spec = process_spec(2);
  spec.garble_result_at = 1;
  const run_report rep = run(plan, spec);
  ASSERT_TRUE(rep.all_ok());
  ASSERT_FALSE(rep.worker_failures.empty());
  EXPECT_EQ(rep.worker_failures[0].kind,
            worker_failure_kind::protocol_error);
  expect_identical_reports(ref, rep);
}

// --- disk plans -----------------------------------------------------------

struct temp_trace {
  std::string path;
  explicit temp_trace(std::string p) : path(std::move(p)) {}
  ~temp_trace() { std::remove(path.c_str()); }
};

TEST(dispatch_process, disk_plan_identity_on_gadget_trace) {
  // A theory gadget recorded *with* hop times, so the omniscient replayer
  // participates in the mode sweep too.
  const auto g = ups::testing::run_gadget_original(topo::fig5_case(1));
  auto trace = g.trace;
  net::sort_by_ingress(trace);
  temp_trace file("test_dispatch_gadget.v2.trace");
  net::save_trace_v2(file.path, trace);

  disk_shard_task task;
  task.trace_path = file.path;
  task.topology = g.topology;
  task.threshold_T = 0;
  task.modes = {core::replay_mode::lstf, core::replay_mode::edf,
                core::replay_mode::omniscient};
  shard_options opt;
  opt.keep_outcomes = true;
  const job_plan plan = job_plan::from_disk(std::move(task), opt);

  backend_spec serial;
  serial.kind = backend_kind::serial;
  const run_report ref = run(plan, serial);
  ASSERT_TRUE(ref.all_ok());
  const run_report prep = run(plan, process_spec(2));
  ASSERT_TRUE(prep.all_ok());
  expect_identical_reports(ref, prep);
}

TEST(dispatch_process, disk_plan_identity_on_workload_trace) {
  exp::scenario sc;
  sc.topo = topo_kind::i2_default;
  sc.utilization = 0.7;
  sc.sched = core::sched_kind::random;
  sc.seed = 3;
  sc.packet_budget = 1'200;
  sc.workload_kind =
      traffic::parse_workload("closed-loop", sc.workload_spec);
  auto orig = run_original(sc);
  net::sort_by_ingress(orig.trace);
  temp_trace file("test_dispatch_workload.v3.trace");
  net::save_trace_v3(file.path, orig.trace);

  disk_shard_task task;
  task.trace_path = file.path;
  task.topology = orig.topology;
  task.threshold_T = orig.threshold_T;
  task.modes = {core::replay_mode::lstf, core::replay_mode::lstf_pheap,
                core::replay_mode::edf,
                core::replay_mode::priority_output_time};
  shard_options opt;
  opt.keep_outcomes = true;
  const job_plan plan = job_plan::from_disk(std::move(task), opt);

  backend_spec serial;
  serial.kind = backend_kind::serial;
  const run_report ref = run(plan, serial);
  ASSERT_TRUE(ref.all_ok());
  expect_identical_reports(ref, run(plan, process_spec(2)));

  // And with fault injection on top: kill a worker mid-range, the merged
  // disk results must not move.
  backend_spec spec = process_spec(2);
  spec.kill_worker_after = 1;
  const run_report faulted = run(plan, spec);
  ASSERT_TRUE(faulted.all_ok());
  EXPECT_FALSE(faulted.worker_failures.empty());
  expect_identical_reports(ref, faulted);
}

TEST(dispatch_process, per_slot_failure_spares_the_rest_of_the_plan) {
  // A trace recorded *without* hop times: the omniscient replayer throws
  // for its job, which must mark only that slot failed — on the serial
  // backend and identically on the process backend (the worker ships the
  // error as a typed job_error frame, not a death).
  exp::scenario sc;
  sc.topo = topo_kind::i2_default;
  sc.utilization = 0.6;
  sc.sched = core::sched_kind::random;
  sc.seed = 4;
  sc.packet_budget = 1'200;
  auto orig = run_original(sc);
  net::sort_by_ingress(orig.trace);
  temp_trace file("test_dispatch_nohops.v2.trace");
  net::save_trace_v2(file.path, orig.trace);

  disk_shard_task task;
  task.trace_path = file.path;
  task.topology = orig.topology;
  task.threshold_T = orig.threshold_T;
  task.modes = {core::replay_mode::lstf, core::replay_mode::omniscient,
                core::replay_mode::edf};
  shard_options opt;
  opt.keep_outcomes = true;
  const job_plan plan = job_plan::from_disk(std::move(task), opt);

  backend_spec serial;
  serial.kind = backend_kind::serial;
  const run_report ref = run(plan, serial);
  ASSERT_EQ(ref.status.size(), 3u);
  EXPECT_EQ(ref.status[0], job_status::ok);
  EXPECT_EQ(ref.status[1], job_status::failed);
  EXPECT_EQ(ref.status[2], job_status::ok);
  EXPECT_FALSE(ref.errors[1].empty());
  EXPECT_FALSE(ref.all_ok());
  EXPECT_EQ(ref.jobs_failed(), 1u);
  EXPECT_THROW(ref.throw_if_failed(), std::runtime_error);

  const run_report prep = run(plan, process_spec(2));
  ASSERT_EQ(prep.status.size(), 3u);
  EXPECT_EQ(prep.status[0], job_status::ok);
  EXPECT_EQ(prep.status[1], job_status::failed);
  EXPECT_EQ(prep.status[2], job_status::ok);
  EXPECT_EQ(prep.errors[1], ref.errors[1]);  // same message across the wire
  EXPECT_TRUE(prep.worker_failures.empty());  // an error is not a death
  expect_identical_results(ref.disk_replays[0].result,
                           prep.disk_replays[0].result);
  expect_identical_results(ref.disk_replays[2].result,
                           prep.disk_replays[2].result);
}

TEST(dispatch_plan, rejects_a_plan_with_both_axes_populated) {
  job_plan plan = small_plan();
  disk_shard_task d;
  d.trace_path = "nowhere";
  plan.disk = d;
  backend_spec serial;
  serial.kind = backend_kind::serial;
  EXPECT_THROW((void)run(plan, serial), std::invalid_argument);
}

}  // namespace
}  // namespace ups::exp::dispatch
