// Tests for the pipelined-heap priority queue (§5) and the LSTF scheduler
// built on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/lstf.h"
#include "core/lstf_pheap.h"
#include "core/pheap.h"
#include "sim/rng.h"

namespace ups::core {
namespace {

TEST(pheap, empty_behaviour) {
  pheap<int> h(4);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_THROW(static_cast<void>(h.pop_min()), std::logic_error);
  EXPECT_THROW(static_cast<void>(h.peek()), std::logic_error);
}

TEST(pheap, pops_in_rank_order) {
  pheap<int> h(5);
  for (const int k : {5, 1, 4, 1, 3, 9, 0, 7}) h.insert(k, k);
  std::vector<int> out;
  while (!h.empty()) out.push_back(h.pop_min());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.size(), 8u);
}

TEST(pheap, fcfs_among_equal_ranks) {
  pheap<int> h(5);
  for (int i = 0; i < 10; ++i) h.insert(42, i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(h.pop_min(), i);
}

TEST(pheap, grows_beyond_initial_capacity) {
  pheap<int> h(2);  // capacity 3
  for (int i = 0; i < 100; ++i) h.insert(100 - i, i);
  EXPECT_EQ(h.size(), 100u);
  EXPECT_GE(h.levels(), 7);
  int prev = -1;
  int count = 0;
  int last_rank = -1;
  while (!h.empty()) {
    const int rank_holder = h.pop_min();
    const int rank = 100 - rank_holder;
    EXPECT_GE(rank, last_rank);
    last_rank = rank;
    ++count;
    (void)prev;
  }
  EXPECT_EQ(count, 100);
}

TEST(pheap, randomized_against_reference_model) {
  sim::rng rng(31);
  pheap<std::uint64_t> h(4);
  std::multiset<std::pair<std::int64_t, std::uint64_t>> ref;
  std::uint64_t seq = 0;
  for (int op = 0; op < 20'000; ++op) {
    const bool insert = ref.empty() || rng.uniform() < 0.55;
    if (insert) {
      const auto rank = static_cast<std::int64_t>(rng.next_below(50));
      h.insert(rank, seq);
      ref.emplace(rank, seq);
      ++seq;
    } else {
      const auto got = h.pop_min();
      const auto expect = ref.begin();
      EXPECT_EQ(got, expect->second) << "op " << op;
      ref.erase(expect);
    }
    ASSERT_EQ(h.size(), ref.size());
  }
}

TEST(pheap, stage_ops_scale_with_levels_not_size) {
  // The pipelined-work claim: node visits per operation are bounded by the
  // number of levels (so a hardware pipeline sustains O(1) per op).
  pheap<int> h(14);  // fixed depth, no growth during the test
  sim::rng rng(7);
  for (int i = 0; i < 4'000; ++i) {
    h.insert(static_cast<std::int64_t>(rng.next_below(1'000'000)), i);
  }
  const auto before = h.stage_ops();
  const int ops = 2'000;
  for (int i = 0; i < ops; ++i) {
    h.insert(static_cast<std::int64_t>(rng.next_below(1'000'000)), i);
    (void)h.pop_min();
  }
  const double per_op =
      static_cast<double>(h.stage_ops() - before) / (2.0 * ops);
  EXPECT_LE(per_op, static_cast<double>(h.levels()));
}

TEST(pheap, move_only_payloads) {
  pheap<std::unique_ptr<int>> h(4);
  h.insert(2, std::make_unique<int>(20));
  h.insert(1, std::make_unique<int>(10));
  EXPECT_EQ(*h.pop_min(), 10);
  EXPECT_EQ(*h.pop_min(), 20);
}

net::packet_ptr pkt(std::uint64_t id, sim::time_ps slack,
                    std::uint32_t bytes = 1500) {
  net::packet_ptr p = net::make_packet();
  p->id = id;
  p->flow_id = id;
  p->size_bytes = bytes;
  p->slack = slack;
  return p;
}

TEST(lstf_pheap, orders_identically_to_map_backed_lstf) {
  lstf a(0, sim::kGbps, false, false);
  lstf_pheap b(1, sim::kGbps);
  sim::rng rng(13);
  sim::time_ps now = 0;
  for (std::uint64_t i = 1; i <= 500; ++i) {
    const auto slack =
        static_cast<sim::time_ps>(rng.next_below(40)) * sim::kMicrosecond;
    const auto size = 125u * (1 + static_cast<std::uint32_t>(
                                       rng.next_below(12)));
    a.enqueue(pkt(i, slack, size), now);
    b.enqueue(pkt(i, slack, size), now);
    if (rng.uniform() < 0.5) {
      auto pa = a.dequeue(now);
      auto pb = b.dequeue(now);
      ASSERT_EQ(pa->id, pb->id) << "diverged at step " << i;
    }
    now += static_cast<sim::time_ps>(rng.next_below(20)) * sim::kMicrosecond;
  }
  while (!a.empty()) {
    auto pa = a.dequeue(now);
    auto pb = b.dequeue(now);
    ASSERT_EQ(pa->id, pb->id);
  }
  EXPECT_TRUE(b.empty());
}

TEST(lstf_pheap, exposes_peek_rank) {
  lstf_pheap q(0, sim::kGbps);
  EXPECT_FALSE(q.peek_rank().has_value());
  q.enqueue(pkt(1, 10 * sim::kMicrosecond), 0);
  ASSERT_TRUE(q.peek_rank().has_value());
  EXPECT_EQ(*q.peek_rank(), 22 * sim::kMicrosecond);
}

TEST(lstf_pheap, byte_accounting) {
  lstf_pheap q(0, sim::kGbps);
  q.enqueue(pkt(1, 0, 1000), 0);
  q.enqueue(pkt(2, 0, 500), 0);
  EXPECT_EQ(q.bytes(), 1500u);
  // Equal slack: the smaller packet's last bit ranks earlier (+T term), so
  // the 500 B packet is served first and 1000 B remain queued.
  auto p = q.dequeue(0);
  EXPECT_EQ(p->id, 2u);
  EXPECT_EQ(q.bytes(), 1000u);
  EXPECT_EQ(q.packets(), 1u);
}

}  // namespace
}  // namespace ups::core
