// Parameterized integration sweep: record + LSTF-replay every experiment
// topology at reduced scale and check the paper's coarse invariants hold
// everywhere (conservation, determinism, mostly-on-time, >T <= total) —
// and across every traffic-source kind, plus label-uniqueness over the
// knobs that shape a schedule.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "exp/replay_experiment.h"

namespace ups::exp {
namespace {

class scenario_sweep
    : public ::testing::TestWithParam<std::tuple<topo_kind, double>> {};

TEST_P(scenario_sweep, lstf_replay_invariants) {
  scenario sc;
  sc.topo = std::get<0>(GetParam());
  sc.utilization = std::get<1>(GetParam());
  sc.packet_budget = 4'000;
  const auto orig = run_original(sc);

  // Conservation: everything injected egressed and was recorded.
  EXPECT_GE(orig.trace.packets.size(), sc.packet_budget);
  for (const auto& r : orig.trace.packets) {
    EXPECT_GE(r.ingress_time, 0);
    EXPECT_GT(r.egress_time, r.ingress_time);
    EXPECT_FALSE(r.path.empty());
  }

  const auto res = run_replay(orig, core::replay_mode::lstf);
  EXPECT_EQ(res.total, orig.trace.packets.size());
  EXPECT_LE(res.overdue_beyond_T, res.overdue);
  // Coarse version of the paper's summary: "in almost all cases, less than
  // 1% of the packets are overdue with LSTF by more than T" — allow slack
  // for the reduced packet budget.
  EXPECT_LT(res.frac_overdue_beyond_T(), 0.05) << sc.label();
  EXPECT_LT(res.frac_overdue(), 0.5) << sc.label();
}

INSTANTIATE_TEST_SUITE_P(
    all_topologies, scenario_sweep,
    ::testing::Combine(::testing::Values(topo_kind::i2_default,
                                         topo_kind::i2_1g_1g,
                                         topo_kind::i2_10g_10g,
                                         topo_kind::fattree),
                       ::testing::Values(0.3, 0.7)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (auto& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      name += std::get<1>(info.param) < 0.5 ? "_30" : "_70";
      return name;
    });

// RocketFuel is big; run it once rather than in the sweep.
TEST(scenario_rocketfuel, lstf_replay_invariants) {
  scenario sc;
  sc.topo = topo_kind::rocketfuel;
  sc.packet_budget = 3'000;
  const auto orig = run_original(sc);
  const auto res = run_replay(orig, core::replay_mode::lstf);
  EXPECT_EQ(res.total, orig.trace.packets.size());
  EXPECT_LT(res.frac_overdue_beyond_T(), 0.05);
}

TEST(scenario_sweep_extra, preemption_never_hurts_overdue_beyond_t) {
  for (const auto kind :
       {core::sched_kind::random, core::sched_kind::sjf,
        core::sched_kind::lifo}) {
    scenario sc;
    sc.sched = kind;
    sc.packet_budget = 4'000;
    const auto orig = run_original(sc);
    const auto np = run_replay(orig, core::replay_mode::lstf);
    const auto pe = run_replay(orig, core::replay_mode::lstf_preemptive);
    // §2.3(5): preemption dramatically reduces overdue fractions.
    EXPECT_LE(pe.frac_overdue(), np.frac_overdue() + 0.01)
        << core::to_string(kind);
  }
}

// Every traffic-source kind must produce a replayable original: record a
// small schedule under each kind and check the same coarse invariants the
// topology sweep enforces.
class workload_sweep
    : public ::testing::TestWithParam<traffic::source_kind> {};

TEST_P(workload_sweep, lstf_replay_invariants) {
  scenario sc;
  sc.workload_kind = GetParam();
  sc.packet_budget = 4'000;
  const auto orig = run_original(sc);

  EXPECT_GE(orig.trace.packets.size(), sc.packet_budget);
  for (const auto& r : orig.trace.packets) {
    EXPECT_GE(r.ingress_time, 0);
    EXPECT_GT(r.egress_time, r.ingress_time);
    EXPECT_FALSE(r.path.empty());
  }
  if (sc.workload_kind == traffic::source_kind::closed_loop) {
    EXPECT_GT(orig.flows_completed, 0u);
    EXPECT_LE(orig.peak_outstanding_flows, sc.workload_spec.outstanding);
  }

  const auto res = run_replay(orig, core::replay_mode::lstf);
  EXPECT_EQ(res.total, orig.trace.packets.size());
  EXPECT_LE(res.overdue_beyond_T, res.overdue);
  EXPECT_LT(res.frac_overdue_beyond_T(), 0.05) << sc.label();
  EXPECT_LT(res.frac_overdue(), 0.5) << sc.label();
}

INSTANTIATE_TEST_SUITE_P(
    all_sources, workload_sweep,
    ::testing::Values(traffic::source_kind::open_loop,
                      traffic::source_kind::paced,
                      traffic::source_kind::closed_loop,
                      traffic::source_kind::incast),
    [](const auto& info) {
      std::string name = traffic::to_string(info.param);
      for (auto& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// TCP-generated originals (closed-loop via transport/tcp) record and
// replay too; ACKs ride along in the trace.
TEST(workload_sweep_extra, tcp_closed_loop_records_and_replays) {
  scenario sc;
  sc.workload_kind = traffic::source_kind::closed_loop;
  sc.workload_spec.via_tcp = true;
  sc.workload_spec.outstanding = 4;
  sc.packet_budget = 1'500;
  const auto orig = run_original(sc);
  EXPECT_GT(orig.trace.packets.size(), sc.packet_budget);
  EXPECT_GT(orig.flows_completed, 0u);
  const auto res = run_replay(orig, core::replay_mode::lstf);
  EXPECT_EQ(res.total, orig.trace.packets.size());
}

// The satellite fix this PR carries: result files from different workloads
// (or flow distributions) must not collide. Labels differing in any
// schedule-shaping knob must be distinct.
TEST(scenario_labels, unique_across_flow_dist_and_workload_knobs) {
  std::vector<scenario> variants;
  const auto add = [&variants](auto&& mutate) {
    scenario sc;
    mutate(sc);
    variants.push_back(sc);
  };
  add([](scenario&) {});
  add([](scenario& sc) { sc.flows = flow_dist_kind::fixed; });
  add([](scenario& sc) {
    sc.flows = flow_dist_kind::fixed;
    sc.fixed_flow_bytes = 3'000;
  });
  add([](scenario& sc) {
    sc.workload_kind = traffic::source_kind::paced;
  });
  add([](scenario& sc) {
    sc.workload_kind = traffic::source_kind::paced;
    sc.workload_spec.pacing_fraction = 0.25;
  });
  add([](scenario& sc) {
    sc.workload_kind = traffic::source_kind::closed_loop;
  });
  add([](scenario& sc) {
    sc.workload_kind = traffic::source_kind::closed_loop;
    sc.workload_spec.outstanding = 32;
  });
  add([](scenario& sc) {
    sc.workload_kind = traffic::source_kind::closed_loop;
    sc.workload_spec.via_tcp = true;
  });
  add([](scenario& sc) {
    sc.workload_kind = traffic::source_kind::incast;
  });
  add([](scenario& sc) {
    sc.workload_kind = traffic::source_kind::incast;
    sc.workload_spec.incast_degree = 32;
  });
  add([](scenario& sc) {
    sc.workload_kind = traffic::source_kind::incast;
    sc.workload_spec.barrier_jitter = sim::kMillisecond;
  });
  std::set<std::string> labels;
  for (const auto& sc : variants) labels.insert(sc.label());
  EXPECT_EQ(labels.size(), variants.size())
      << "scenario labels collide across workload knobs";
}

TEST(scenario_sweep_extra, omniscient_perfect_on_i2) {
  scenario sc;
  sc.packet_budget = 4'000;
  sc.record_hops = true;
  const auto orig = run_original(sc);
  const auto res = run_replay(orig, core::replay_mode::omniscient);
  EXPECT_EQ(res.overdue, 0u)
      << "Appendix B must hold on the full Internet2 topology";
}

}  // namespace
}  // namespace ups::exp
