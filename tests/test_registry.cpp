// Tests for the scheduler registry: name round-trips, factory products,
// and the mixed FQ/FIFO+ assignment of Table 1's last row.
#include <gtest/gtest.h>

#include "core/registry.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "topo/basic.h"

namespace ups::core {
namespace {

TEST(registry, name_round_trip) {
  for (int i = 0; i <= static_cast<int>(sched_kind::omniscient); ++i) {
    const auto k = static_cast<sched_kind>(i);
    EXPECT_EQ(sched_kind_from(to_string(k)), k) << to_string(k);
  }
}

TEST(registry, unknown_name_throws) {
  EXPECT_THROW(static_cast<void>(sched_kind_from("definitely-not-a-sched")),
               std::invalid_argument);
}

TEST(registry, every_kind_instantiates) {
  sim::simulator sim;
  net::network net(sim);
  const net::port_info info{0, 0, 1, net::node_kind::router, sim::kGbps};
  for (int i = 0; i <= static_cast<int>(sched_kind::omniscient); ++i) {
    const auto k = static_cast<sched_kind>(i);
    auto factory = make_factory(k, 1, &net);
    auto s = factory(info);
    ASSERT_NE(s, nullptr) << to_string(k);
    EXPECT_TRUE(s->empty());
  }
}

TEST(registry, edf_without_network_throws) {
  const net::port_info info{0, 0, 1, net::node_kind::router, sim::kGbps};
  auto factory = make_factory(sched_kind::edf, 1, nullptr);
  EXPECT_THROW(factory(info), std::invalid_argument);
}

TEST(registry, only_preemptive_lstf_supports_preemption) {
  sim::simulator sim;
  net::network net(sim);
  const net::port_info info{0, 0, 1, net::node_kind::router, sim::kGbps};
  EXPECT_FALSE(
      make_factory(sched_kind::lstf, 1, &net)(info)->supports_preemption());
  EXPECT_TRUE(make_factory(sched_kind::lstf_preemptive, 1, &net)(info)
                  ->supports_preemption());
  EXPECT_FALSE(
      make_factory(sched_kind::fifo, 1, &net)(info)->supports_preemption());
}

TEST(registry, mixed_factory_dispatches_per_port) {
  sim::simulator sim;
  net::network net(sim);
  int fifo_count = 0;
  int lifo_count = 0;
  auto factory = make_mixed_factory(
      [&](const net::port_info& info) {
        return info.from % 2 == 0 ? sched_kind::fifo : sched_kind::lifo;
      },
      1, &net);
  for (net::node_id n = 0; n < 6; ++n) {
    const net::port_info info{n, n, n + 1, net::node_kind::router,
                              sim::kGbps};
    auto s = factory(info);
    // Distinguish by behaviour: enqueue 1,2 and observe dequeue order.
    net::packet_ptr p1 = net::make_packet();
    p1->id = 1;
    net::packet_ptr p2 = net::make_packet();
    p2->id = 2;
    s->enqueue(std::move(p1), 0);
    s->enqueue(std::move(p2), 0);
    if (s->dequeue(0)->id == 1) {
      ++fifo_count;
    } else {
      ++lifo_count;
    }
  }
  EXPECT_EQ(fifo_count, 3);
  EXPECT_EQ(lifo_count, 3);
}

TEST(registry, fq_fifo_plus_mix_gives_hosts_fifo) {
  // The mixed kind applies FQ/FIFO+ to routers only; host NICs get FIFO.
  sim::simulator sim;
  net::network net(sim);
  auto factory = make_factory(sched_kind::fq_fifo_plus_mix, 1, &net);
  const net::port_info host_port{0, 5, 1, net::node_kind::host, sim::kGbps};
  auto s = factory(host_port);
  // FIFO: keeps arrival order regardless of header contents.
  net::packet_ptr p1 = net::make_packet();
  p1->id = 1;
  p1->fifo_plus_wait = sim::kSecond;  // would reorder under FIFO+
  net::packet_ptr p2 = net::make_packet();
  p2->id = 2;
  s->enqueue(std::move(p1), 0);
  s->enqueue(std::move(p2), 0);
  EXPECT_EQ(s->dequeue(0)->id, 1u);
}

TEST(registry, random_schedulers_seeded_per_port) {
  sim::simulator sim;
  net::network net(sim);
  auto factory = make_factory(sched_kind::random, 7, &net);
  // Two ports get independent streams; the same port id across two
  // factories with the same seed gets the same stream.
  auto fill = [](net::scheduler& s) {
    for (std::uint64_t i = 1; i <= 16; ++i) {
      net::packet_ptr p = net::make_packet();
      p->id = i;
      s.enqueue(std::move(p), 0);
    }
  };
  auto drain = [](net::scheduler& s) {
    std::vector<std::uint64_t> ids;
    while (auto p = s.dequeue(0)) ids.push_back(p->id);
    return ids;
  };
  const net::port_info a{1, 0, 1, net::node_kind::router, sim::kGbps};
  const net::port_info b{2, 1, 0, net::node_kind::router, sim::kGbps};
  auto s1 = factory(a);
  auto s2 = factory(b);
  auto s3 = make_factory(sched_kind::random, 7, &net)(a);
  fill(*s1);
  fill(*s2);
  fill(*s3);
  const auto o1 = drain(*s1);
  const auto o2 = drain(*s2);
  const auto o3 = drain(*s3);
  EXPECT_NE(o1, o2);
  EXPECT_EQ(o1, o3);
}

}  // namespace
}  // namespace ups::core
