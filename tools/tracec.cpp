// tracec — schedule-trace toolbox for the ups-trace formats.
//
//   tracec gen <out> [--topo=K] [--util=F] [--sched=NAME] [--seed=N]
//                    [--packets=N] [--format=v1|v2|v3] [--hops]
//                    [--workload=W]
//       record a scenario's original schedule, ingress-sort it, save it.
//       --workload selects the traffic source: open-loop (default),
//       paced[:frac], closed-loop[:outstanding], closed-loop-tcp[:n],
//       incast[:degree], mixed[:degree[:outstanding[:share]]]
//   tracec convert <in> <out> [--format=v1|v2|v3]
//       any direction between the three formats; the source is sniffed
//       from <in>, the target defaults to v1 for a binary source and v2
//       for a text source. Every direction streams record by record
//       through the source's ingress cursor (O(1 block) memory), so
//       converting never materializes the trace. A v1 source must be
//       ingress-sorted to convert to v3 (tracec gen writes sorted files).
//   tracec inspect <file> [--records=N]
//       header summary, ingress span, integrity walk, first N records;
//       v3 adds per-block occupancy, per-column bytes/packet, and the
//       exact v2-equivalent size for the compression ratio
//   tracec replay <file> --topo=K [--mode=M] [--upfront]
//                 [--dispatch=serial|thread[:N]|process[:N]]
//                 [--kill-worker-after=K]
//       replay straight from disk (block decode for v3, mmap for v2,
//       streaming parse for v1) over the named topology and report
//       overdue fractions + packets/sec. Without --mode the four
//       non-omniscient candidates are swept; --dispatch picks the fabric
//       backend (exp/dispatch), defaulting to serial, and the per-mode
//       result lines (two-space indented) are byte-identical across
//       backends and worker counts — even with --kill-worker-after fault
//       injection killing a process worker mid-range.
//
// The v1 text format stays the diffable interchange representation; v2/v3
// are the replay representations (see src/net/trace_binary.h).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/replay.h"
#include "exp/args.h"
#include "exp/dispatch/backend.h"
#include "exp/replay_experiment.h"
#include "exp/scenario.h"
#include "net/trace_binary.h"
#include "net/trace_io.h"
#include "topo/topology.h"

namespace {

using namespace ups;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tracec gen <out> [--topo=K] [--util=F] [--sched=NAME] [--seed=N]\n"
      "                   [--packets=N] [--format=v1|v2|v3] [--hops]\n"
      "                   [--workload=W] [--fault=F] [--flow=C]\n"
      "  tracec convert <in> <out> [--format=v1|v2|v3]\n"
      "  tracec inspect <file> [--records=N]\n"
      "  tracec replay <file> --topo=K [--mode=M] [--upfront]\n"
      "                [--dispatch=serial|thread[:N]|process[:N]]\n"
      "                [--kill-worker-after=K] [--hang-worker-after=K]\n"
      "                [--worker-timeout-ms=T] [--fault=F] [--flow=C]\n"
      "topologies: i2 i2-1g i2-10g rocketfuel fattree\n"
      "modes: lstf lstf-preempt lstf-pheap edf priority omniscient\n"
      "workloads: open-loop paced[:frac] closed-loop[:outstanding]\n"
      "           closed-loop-tcp[:outstanding] incast[:degree]\n"
      "           mixed[:degree[:outstanding[:share]]]\n"
      "faults: bernoulli:p ge:p_good,p_bad,flip jam:period_us,duty[,speedup]\n"
      "        (replay only needs --fault to re-apply a jam speedup's link\n"
      "        rates; the drop schedule itself is in the trace)\n"
      "flow control: credit:bytes[,rtt_us] pause:high,low none\n"
      "        (gen records stalls in the trace; replay re-enacts recorded\n"
      "        stalls always and --flow additionally governs the replay's\n"
      "        own links)\n");
  std::exit(2);
}

exp::topo_kind parse_topo(const std::string& s) {
  if (s == "i2" || s == "i2-1g-10g") return exp::topo_kind::i2_default;
  if (s == "i2-1g") return exp::topo_kind::i2_1g_1g;
  if (s == "i2-10g") return exp::topo_kind::i2_10g_10g;
  if (s == "rocketfuel") return exp::topo_kind::rocketfuel;
  if (s == "fattree" || s == "datacenter") return exp::topo_kind::fattree;
  std::fprintf(stderr, "tracec: unknown topology '%s'\n", s.c_str());
  std::exit(2);
}

core::replay_mode parse_mode(const std::string& s) {
  if (s == "lstf") return core::replay_mode::lstf;
  if (s == "lstf-preempt") return core::replay_mode::lstf_preemptive;
  if (s == "lstf-pheap") return core::replay_mode::lstf_pheap;
  if (s == "edf") return core::replay_mode::edf;
  if (s == "priority") return core::replay_mode::priority_output_time;
  if (s == "omniscient") return core::replay_mode::omniscient;
  std::fprintf(stderr, "tracec: unknown replay mode '%s'\n", s.c_str());
  std::exit(2);
}

// Flag helpers over the argv tail (everything after the subcommand's
// positional arguments).
struct flags {
  std::vector<std::string> all;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def) const {
    const std::string prefix = "--" + name + "=";
    for (const auto& a : all) {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    }
    return def;
  }
  [[nodiscard]] bool has(const std::string& name) const {
    for (const auto& a : all) {
      if (a == "--" + name) return true;
    }
    return false;
  }
};

[[nodiscard]] double wall_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

int cmd_gen(const std::string& out, const flags& f) {
  exp::scenario sc;
  sc.topo = parse_topo(f.get("topo", "i2"));
  sc.utilization = std::strtod(f.get("util", "0.7").c_str(), nullptr);
  sc.sched = core::sched_kind_from(f.get("sched", "Random"));
  sc.seed = std::strtoull(f.get("seed", "1").c_str(), nullptr, 10);
  sc.packet_budget =
      std::strtoull(f.get("packets", "20000").c_str(), nullptr, 10);
  sc.record_hops = f.has("hops");
  const std::string workload = f.get("workload", "open-loop");
  sc.workload_kind = traffic::parse_workload(workload, sc.workload_spec);
  sc.fault = net::fault_spec::parse(f.get("fault", ""));
  sc.flow = net::flow_spec::parse(f.get("flow", ""));
  auto orig = exp::run_original(sc);
  // Ingress-sort at record time so the v1 file streams straight into
  // replay; v2 carries its own index but sorting keeps the two file
  // layouts record-for-record comparable.
  net::sort_by_ingress(orig.trace);
  const std::string format = f.get("format", "v1");
  if (format == "v3") {
    net::save_trace_v3(out, orig.trace);
  } else if (format == "v2") {
    net::save_trace_v2(out, orig.trace);
  } else if (format == "v1") {
    net::save_trace(out, orig.trace);
  } else {
    std::fprintf(stderr, "tracec: unknown format '%s'\n", format.c_str());
    return 2;
  }
  std::printf("recorded %zu packets (%s, util %.0f%%, %s, %s, seed %llu, "
              "peak in-flight %llu) -> %s\n",
              orig.trace.packets.size(), exp::to_string(sc.topo),
              sc.utilization * 100, core::to_string(sc.sched),
              traffic::to_string(sc.workload_kind),
              static_cast<unsigned long long>(sc.seed),
              static_cast<unsigned long long>(orig.peak_pool_packets),
              out.c_str());
  if (sc.fault.enabled()) {
    std::uint64_t dropped = 0;
    for (const auto& r : orig.trace.packets) {
      if (r.dropped()) ++dropped;
    }
    std::printf("fault %s: %llu of %zu recorded packets dropped\n",
                sc.fault.label().c_str(),
                static_cast<unsigned long long>(dropped),
                orig.trace.packets.size());
  }
  if (sc.flow.enabled()) {
    std::uint64_t stalled = 0;
    sim::time_ps stall_time = 0;
    for (const auto& r : orig.trace.packets) {
      if (!r.stalled()) continue;
      ++stalled;
      stall_time += r.stall_time;
    }
    std::printf("flow %s: %llu of %zu recorded packets stalled "
                "(%.3f ms total)\n",
                sc.flow.label().c_str(),
                static_cast<unsigned long long>(stalled),
                orig.trace.packets.size(), sim::to_millis(stall_time));
  }
  return 0;
}

int cmd_convert(const std::string& in, const std::string& out,
                const flags& f) {
  const auto t0 = std::chrono::steady_clock::now();
  // Sniff the source; the target defaults to the other side of the legacy
  // pairs (binary -> v1 text, text -> v2) and --format overrides it. Every
  // direction streams through the source's ingress cursor, so the output
  // record order is the ingress order whatever the source's file order
  // was, and memory stays O(1 block).
  const bool binary_in =
      net::is_trace_v3_file(in) || net::is_trace_v2_file(in);
  const std::string target = f.get("format", binary_in ? "v1" : "v2");
  const auto cur = net::open_trace_cursor(in);
  const std::uint64_t declared = cur->size_hint();
  std::ofstream os(out, std::ios::binary);
  if (!os) throw std::runtime_error("tracec: cannot open " + out);
  std::uint64_t n = 0;
  if (target == "v1") {
    net::write_trace_header(os, declared);
    while (const net::packet_record* r = cur->next()) {
      net::write_trace_record(os, *r);
      ++n;
    }
  } else if (target == "v2") {
    net::trace_binary_writer writer(os);
    while (const net::packet_record* r = cur->next()) writer.append(*r);
    writer.finish();
    n = writer.written();
  } else if (target == "v3") {
    // A streaming converter must pick the column layout before the first
    // record; sniff the source for drops and stalls up front (O(header)
    // for v3) so a backpressured source gets the 18-column layout and a
    // clean source keeps the narrow one.
    net::trace_v3_writer writer(os, declared, net::kTraceV3BlockRecords,
                                net::trace_file_has_drop_records(in),
                                net::trace_file_has_stall_records(in));
    while (const net::packet_record* r = cur->next()) writer.append(*r);
    writer.finish();
    n = writer.written();
  } else {
    std::fprintf(stderr, "tracec: unknown format '%s'\n", target.c_str());
    return 2;
  }
  std::printf("converted %llu records to %s in %.3fs -> %s\n",
              static_cast<unsigned long long>(n), target.c_str(),
              wall_since(t0), out.c_str());
  return 0;
}

void print_record(const net::packet_record& r) {
  std::printf("  id=%llu flow=%llu size=%u i=%lld o=%lld hops=%zu\n",
              static_cast<unsigned long long>(r.id),
              static_cast<unsigned long long>(r.flow_id), r.size_bytes,
              static_cast<long long>(r.ingress_time),
              static_cast<long long>(r.egress_time), r.path.size());
}

// The exact bytes this record costs in each format's record section: v2 is
// the length-prefixed fixed payload plus variable tails plus its 8-byte
// footer index slot; v1 is the formatted text line. Accumulated during the
// integrity walk, they give exact cross-format ratios without writing the
// other files.
[[nodiscard]] std::uint64_t v2_record_bytes(const net::packet_record& r) {
  return 4 + net::kTraceV2FixedPayloadBytes + 4 * r.path.size() +
         8 * r.hop_departs.size() +
         (r.dropped() ? net::kTraceV2DropSuffixBytes : 0) +
         (r.stalled() ? net::kTraceV2StallSuffixBytes : 0) + 8;
}

// Drop tallies accumulated during an integrity walk. A wire drop keys on
// the "from->to" hop pair whose link lost the packet; a buffer drop keys on
// the node whose queue evicted it.
struct drop_tally {
  std::uint64_t dropped = 0;
  std::uint64_t wire = 0;
  std::map<std::string, std::uint64_t> by_link;

  void add(const net::packet_record& r) {
    if (!r.dropped()) return;
    ++dropped;
    const auto h = static_cast<std::size_t>(r.drop_hop);
    char key[48];
    if (r.dropped_kind == net::drop_kind::wire && h + 1 < r.path.size()) {
      ++wire;
      std::snprintf(key, sizeof(key), "%d->%d", r.path[h], r.path[h + 1]);
    } else {
      std::snprintf(key, sizeof(key), "buf@%d", r.path[h]);
    }
    ++by_link[key];
  }

  void print(std::size_t records) const {
    if (dropped == 0) return;
    std::printf("drops: %llu of %zu records (%llu wire, %llu buffer)\n",
                static_cast<unsigned long long>(dropped), records,
                static_cast<unsigned long long>(wire),
                static_cast<unsigned long long>(dropped - wire));
    std::printf("per-link drop histogram:\n");
    for (const auto& [link, n] : by_link) {
      std::printf("  %-12s %llu\n", link.c_str(),
                  static_cast<unsigned long long>(n));
    }
  }
};

// Stall tallies accumulated during an integrity walk. A stall record keys
// on the "from->to" hop pair whose governed output port parked the packet
// (the hop of its longest stall); pause/resume event counts come from the
// per-record stall_count (every recorded block was eventually resumed).
struct stall_tally {
  std::uint64_t stalled = 0;
  std::uint64_t pauses = 0;
  sim::time_ps stall_time = 0;
  std::map<std::string, std::pair<std::uint64_t, sim::time_ps>> by_link;

  void add(const net::packet_record& r) {
    if (!r.stalled()) return;
    ++stalled;
    pauses += r.stall_count;
    stall_time += r.stall_time;
    const auto h = static_cast<std::size_t>(r.stall_hop);
    char key[48];
    if (h + 1 < r.path.size()) {
      std::snprintf(key, sizeof(key), "%d->%d", r.path[h], r.path[h + 1]);
    } else {
      std::snprintf(key, sizeof(key), "egress@%d", r.path[h]);
    }
    auto& [n, t] = by_link[key];
    n += r.stall_count;
    t += r.stall_time;
  }

  void print(std::size_t records) const {
    if (stalled == 0) return;
    std::printf("stalls: %llu of %zu records stalled (%llu pause/resume "
                "events, %.3f ms total)\n",
                static_cast<unsigned long long>(stalled), records,
                static_cast<unsigned long long>(pauses),
                sim::to_millis(stall_time));
    std::printf("per-link stall-time histogram:\n");
    for (const auto& [link, nt] : by_link) {
      std::printf("  %-12s %6llu events  %10.3f ms\n", link.c_str(),
                  static_cast<unsigned long long>(nt.first),
                  sim::to_millis(nt.second));
    }
  }
};

int cmd_inspect_v3(const std::string& path, std::size_t show) {
  net::trace_v3_cursor cur(path);
  const std::size_t n = cur.size_hint();
  const std::uint64_t blocks = cur.block_count();
  std::printf("%s: ups-trace v3, %zu records in %llu blocks "
              "(%u records/block), %zu bytes (%.2f B/record)\n",
              path.c_str(), n, static_cast<unsigned long long>(blocks),
              cur.records_per_block(), cur.file_size(),
              n == 0 ? 0.0
                     : static_cast<double>(cur.file_size()) /
                           static_cast<double>(n));
  if (blocks > 0) {
    const auto first = cur.bounds_at(0);
    const auto last = cur.bounds_at(blocks - 1);
    std::printf("ingress span: %lld .. %lld ps (%.3f ms)\n",
                static_cast<long long>(first.min_ingress),
                static_cast<long long>(last.max_ingress),
                sim::to_millis(last.max_ingress - first.min_ingress));
    // Occupancy histogram: with a fixed records_per_block every block but
    // the last is full, so anything else flags a writer bug.
    std::uint64_t full = 0;
    std::uint64_t hist[10] = {};
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const std::uint32_t occ = cur.records_in_block(b);
      if (occ == cur.records_per_block()) {
        ++full;
      } else {
        const std::size_t bucket = std::min<std::size_t>(
            9, (10ull * occ) / cur.records_per_block());
        ++hist[bucket];
      }
    }
    std::printf("block occupancy: %llu/%llu full",
                static_cast<unsigned long long>(full),
                static_cast<unsigned long long>(blocks));
    for (std::size_t d = 0; d < 10; ++d) {
      if (hist[d] > 0) {
        std::printf(", %llu in [%zu0%%,%zu0%%)",
                    static_cast<unsigned long long>(hist[d]), d, d + 1);
      }
    }
    std::printf("\n");
    // Per-column payload bytes, read off the block headers.
    const std::uint32_t ncols = cur.column_count();
    std::uint64_t col[net::kTraceV3MaxColumnCount] = {};
    std::uint64_t payload = 0;
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const auto cb = cur.column_bytes_at(b);
      for (std::size_t c = 0; c < ncols; ++c) {
        col[c] += cb[c];
        payload += cb[c];
      }
    }
    std::printf("columns (%llu payload bytes, %.2f B/record):\n",
                static_cast<unsigned long long>(payload),
                static_cast<double>(payload) / static_cast<double>(n));
    for (std::size_t c = 0; c < ncols; ++c) {
      std::printf("  %-8s %10llu B  %6.2f B/record\n",
                  net::kTraceV3ColumnNames[c],
                  static_cast<unsigned long long>(col[c]),
                  static_cast<double>(col[c]) / static_cast<double>(n));
    }
    std::printf("overhead: %zu B header+index, %llu B block headers\n",
                static_cast<std::size_t>(cur.bounds_at(0).offset),
                static_cast<unsigned long long>(
                    static_cast<std::uint64_t>(
                        net::trace_v3_block_header_bytes(ncols)) *
                    blocks));
  }
  // Integrity walk: decode every block through the same per-column loops
  // replay uses, accumulating what the identical trace costs in v2.
  std::uint64_t v2_bytes = net::kTraceV2HeaderBytes;
  std::size_t shown = 0;
  drop_tally drops;
  stall_tally stalls;
  while (const net::packet_record* r = cur.next()) {
    v2_bytes += v2_record_bytes(*r);
    drops.add(*r);
    stalls.add(*r);
    if (shown++ >= show) continue;
    print_record(*r);
  }
  if (n > 0) {
    std::printf("v2 equivalent: %llu bytes (%.2f B/record) -> v3/v2 ratio "
                "%.3f\n",
                static_cast<unsigned long long>(v2_bytes),
                static_cast<double>(v2_bytes) / static_cast<double>(n),
                static_cast<double>(cur.file_size()) /
                    static_cast<double>(v2_bytes));
  }
  drops.print(cur.read());
  stalls.print(cur.read());
  std::printf("integrity: all %zu records decode cleanly, blocks in "
              "ingress order\n",
              cur.read());
  return 0;
}

int cmd_inspect(const std::string& path, const flags& f) {
  const std::size_t show =
      std::strtoull(f.get("records", "5").c_str(), nullptr, 10);
  if (net::is_trace_v3_file(path)) {
    return cmd_inspect_v3(path, show);
  }
  if (net::is_trace_v2_file(path)) {
    net::trace_mmap_cursor cur(path);
    std::printf("%s: ups-trace v2b, %zu records, %zu bytes (%.1f B/record)\n",
                path.c_str(), cur.size_hint(), cur.file_size(),
                cur.size_hint() == 0
                    ? 0.0
                    : static_cast<double>(cur.file_size()) /
                          static_cast<double>(cur.size_hint()));
    if (cur.size_hint() > 0) {
      const auto first = cur.view_at(0);
      const auto last = cur.view_at(cur.size_hint() - 1);
      std::printf("ingress span: %lld .. %lld ps (%.3f ms)\n",
                  static_cast<long long>(first.ingress_time()),
                  static_cast<long long>(last.ingress_time()),
                  sim::to_millis(last.ingress_time() - first.ingress_time()));
    }
    // Integrity walk: decode every record through the ingress index, which
    // exercises the same bounds and order checks replay would hit.
    std::size_t shown = 0;
    drop_tally drops;
    stall_tally stalls;
    while (const net::packet_record* r = cur.next()) {
      drops.add(*r);
      stalls.add(*r);
      if (shown++ >= show) continue;
      std::printf("  id=%llu flow=%llu size=%u i=%lld o=%lld hops=%zu\n",
                  static_cast<unsigned long long>(r->id),
                  static_cast<unsigned long long>(r->flow_id), r->size_bytes,
                  static_cast<long long>(r->ingress_time),
                  static_cast<long long>(r->egress_time), r->path.size());
    }
    drops.print(cur.read());
    stalls.print(cur.read());
    std::printf("integrity: all %zu records decode cleanly, index in "
                "ingress order\n",
                cur.read());
  } else {
    net::trace_stream_reader reader(path);
    std::printf("%s: ups-trace v1 (text), %zu records declared\n",
                path.c_str(), reader.size_hint());
    std::size_t shown = 0;
    sim::time_ps first = -1, last = -1;
    drop_tally drops;
    stall_tally stalls;
    while (const net::packet_record* r = reader.next()) {
      if (first < 0) first = r->ingress_time;
      last = r->ingress_time;
      drops.add(*r);
      stalls.add(*r);
      if (shown++ >= show) continue;
      std::printf("  id=%llu flow=%llu size=%u i=%lld o=%lld hops=%zu\n",
                  static_cast<unsigned long long>(r->id),
                  static_cast<unsigned long long>(r->flow_id), r->size_bytes,
                  static_cast<long long>(r->ingress_time),
                  static_cast<long long>(r->egress_time), r->path.size());
    }
    drops.print(reader.read());
    stalls.print(reader.read());
    std::printf("ingress span (file order): %lld .. %lld ps, %zu records "
                "parsed\n",
                static_cast<long long>(first), static_cast<long long>(last),
                reader.read());
  }
  return 0;
}

int cmd_replay(const std::string& path, const flags& f,
               const exp::args& shared) {
  if (f.get("topo", "").empty()) {
    std::fprintf(stderr, "tracec replay: --topo is required\n");
    return 2;
  }
  exp::disk_shard_task task;
  task.trace_path = path;
  task.topology = exp::make_topology(parse_topo(f.get("topo", "")));
  // Replay never runs a fault process (the drop schedule is in the trace),
  // but a trace recorded under jam speedup was recorded on faster core
  // links — --fault re-applies that rate compensation.
  const net::fault_spec fault = net::fault_spec::parse(f.get("fault", ""));
  if (fault.kind == net::fault_kind::jam && fault.jam_speedup > 1.0) {
    for (auto& l : task.topology.core_links) {
      l.rate = static_cast<sim::bits_per_sec>(static_cast<double>(l.rate) *
                                              fault.jam_speedup);
    }
  }
  task.threshold_T =
      sim::transmission_time(1500, task.topology.bottleneck_rate());
  const std::string one_mode = f.get("mode", "");
  if (!one_mode.empty()) {
    task.modes = {parse_mode(one_mode)};
  } else {
    task.modes = {core::replay_mode::lstf, core::replay_mode::lstf_pheap,
                  core::replay_mode::edf,
                  core::replay_mode::priority_output_time};
  }
  exp::shard_options opt;
  opt.injection = f.has("upfront") ? core::injection_mode::upfront
                                   : core::injection_mode::streaming;
  // Recorded stalls re-enact unconditionally; --flow additionally attaches
  // live credit/pause governance to the replay network's own links.
  opt.replay_flow = net::flow_spec::parse(f.get("flow", ""));
  // --dispatch / --kill-worker-after / --hang-worker-after come via the
  // shared exp::args parser, so the syntax is exactly the bench's. Default
  // backend: serial.
  exp::dispatch::backend_spec spec;
  spec.kind = exp::dispatch::backend_kind::serial;
  if (!shared.dispatch.empty()) {
    spec = exp::dispatch::backend_spec::parse(shared.dispatch);
  }
  spec.kill_worker_after = shared.kill_worker_after;
  spec.hang_worker_after = shared.hang_worker_after;
  spec.worker_timeout_ms = shared.worker_timeout_ms;

  const auto t0 = std::chrono::steady_clock::now();
  const exp::dispatch::run_report rep = exp::dispatch::run(
      exp::dispatch::job_plan::from_disk(std::move(task), opt), spec);
  const double wall = wall_since(t0);
  rep.throw_if_failed();
  // The two-space result lines are deterministic (no timings), so
  //   tracec replay ... | grep '^  '
  // diffs clean across serial, thread:N, process:N, and fault-injected
  // runs — that is the identity check CI performs.
  std::uint64_t total = 0;
  for (const exp::shard_replay& r : rep.disk_replays) {
    std::printf("  mode=%-12s total=%llu overdue=%.6f overdue_T=%.6f "
                "dropped=%llu\n",
                core::to_string(r.mode),
                static_cast<unsigned long long>(r.result.total),
                r.result.frac_overdue(), r.result.frac_overdue_beyond_T(),
                static_cast<unsigned long long>(r.result.dropped));
    total += r.result.total;
  }
  for (const auto& wf : rep.worker_failures) {
    std::printf("worker %d %s: %s (%zu jobs reassigned%s)\n", wf.worker,
                exp::dispatch::to_string(wf.kind), wf.message.c_str(),
                wf.reassigned_jobs.size(),
                wf.respawned ? ", respawned" : "");
  }
  std::printf("%s: replayed %zu mode(s) via %s in %.3fs "
              "(%.0f packets/s aggregate)\n",
              path.c_str(), rep.disk_replays.size(),
              exp::dispatch::to_string(spec.kind), wall,
              static_cast<double>(total) / wall);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string cmd = argv[1];
  flags f;
  for (int i = 3; i < argc; ++i) f.all.emplace_back(argv[i]);
  try {
    if (cmd == "gen") return cmd_gen(argv[2], f);
    if (cmd == "inspect") return cmd_inspect(argv[2], f);
    if (cmd == "replay") {
      return cmd_replay(argv[2], f, exp::args::parse(argc, argv));
    }
    if (cmd == "convert") {
      if (argc < 4) usage();
      flags cf;
      for (int i = 4; i < argc; ++i) cf.all.emplace_back(argv[i]);
      return cmd_convert(argv[2], argv[3], cf);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tracec: %s\n", e.what());
    return 1;
  }
  usage();
}
