#include "core/replay.h"

#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "core/registry.h"
#include "sim/simulator.h"

namespace ups::core {

const char* to_string(replay_mode m) {
  switch (m) {
    case replay_mode::lstf: return "LSTF";
    case replay_mode::lstf_preemptive: return "LSTF(preempt)";
    case replay_mode::lstf_pheap: return "LSTF(p-heap)";
    case replay_mode::edf: return "EDF";
    case replay_mode::priority_output_time: return "Priority(o(p))";
    case replay_mode::omniscient: return "Omniscient";
  }
  return "?";
}

namespace {

sched_kind scheduler_for(replay_mode m) {
  switch (m) {
    case replay_mode::lstf: return sched_kind::lstf;
    case replay_mode::lstf_preemptive: return sched_kind::lstf_preemptive;
    case replay_mode::lstf_pheap: return sched_kind::lstf_pheap;
    case replay_mode::edf: return sched_kind::edf;
    case replay_mode::priority_output_time: return sched_kind::static_priority;
    case replay_mode::omniscient: return sched_kind::omniscient;
  }
  throw std::logic_error("unhandled replay mode");
}

}  // namespace

replay_result replay_trace(const net::trace& tr, const topology_builder& topo,
                           const replay_options& opt) {
  sim::simulator sim;
  net::network net(sim);
  topo(net);
  net.set_buffer_bytes(0);  // replay uses unbounded buffers (no drops)
  net.set_preemption(opt.mode == replay_mode::lstf_preemptive);
  net.set_scheduler_factory(
      make_factory(scheduler_for(opt.mode), opt.seed, &net));
  net.build();

  // Re-inject every recorded packet at its ingress at exactly i(p), with the
  // header initialized per mode from the recorded schedule.
  for (const auto& r : tr.packets) {
    net::packet_ptr p = net.pool().make();
    p->id = r.id;
    p->flow_id = r.flow_id;
    p->seq_in_flow = r.seq_in_flow;
    p->size_bytes = r.size_bytes;
    p->src_host = r.src_host;
    p->dst_host = r.dst_host;
    p->path = r.path;
    p->flow_size_bytes = r.flow_size_bytes;
    switch (opt.mode) {
      case replay_mode::lstf:
      case replay_mode::lstf_preemptive:
      case replay_mode::lstf_pheap: {
        const sim::time_ps tmin = net.tmin(*p, 0);
        p->slack = r.egress_time - r.ingress_time - tmin;
        break;
      }
      case replay_mode::edf:
        p->deadline = r.egress_time;
        break;
      case replay_mode::priority_output_time:
        p->priority = r.egress_time;
        break;
      case replay_mode::omniscient: {
        if (r.hop_departs.size() != r.path.size()) {
          throw std::invalid_argument(
              "omniscient replay requires a trace recorded with hop times");
        }
        // Appendix B ranks by o(p, α), the time the *first* bit was
        // scheduled; the trace records last-bit exits, so subtract the
        // per-hop transmission time.
        p->hop_deadlines.resize(r.path.size());
        for (std::size_t j = 0; j < r.path.size(); ++j) {
          const net::node_id here = r.path[j];
          const net::node_id next =
              (j + 1 < r.path.size()) ? r.path[j + 1] : r.dst_host;
          const auto& pt = net.port_between(here, next);
          sim::time_ps start =
              r.hop_departs[j] - pt.transmission_time(r.size_bytes);
          if (opt.omniscient_quantum > 0) {
            start -= start % opt.omniscient_quantum;
          }
          p->hop_deadlines[j] = start;
        }
        break;
      }
    }
    net.inject_at_ingress(std::move(p), r.ingress_time);
  }

  // Collect replay output times.
  std::unordered_map<std::uint64_t, std::pair<sim::time_ps, sim::time_ps>>
      out;  // id -> (o'(p), replay queueing)
  out.reserve(tr.packets.size() * 2);
  net.hooks().on_egress = [&out](const net::packet& p, sim::time_ps now) {
    out.emplace(p.id, std::make_pair(now, p.queueing_delay));
  };
  sim.run();

  if (out.size() != tr.packets.size()) {
    throw std::runtime_error("replay lost packets (buffering bug?)");
  }

  replay_result res;
  res.threshold_T = opt.threshold_T;
  if (opt.keep_outcomes) res.outcomes.reserve(tr.packets.size());
  for (const auto& r : tr.packets) {
    const auto& [oprime, qd] = out.at(r.id);
    ++res.total;
    if (oprime > r.egress_time) ++res.overdue;
    if (oprime > r.egress_time + opt.threshold_T) ++res.overdue_beyond_T;
    if (opt.keep_outcomes) {
      res.outcomes.push_back(replay_outcome{r.id, r.egress_time, oprime,
                                            r.queueing_delay, qd});
    }
  }
  return res;
}

}  // namespace ups::core
