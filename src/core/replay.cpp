#include "core/replay.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/registry.h"
#include "sim/simulator.h"

namespace ups::core {

const char* to_string(replay_mode m) {
  switch (m) {
    case replay_mode::lstf: return "LSTF";
    case replay_mode::lstf_preemptive: return "LSTF(preempt)";
    case replay_mode::lstf_pheap: return "LSTF(p-heap)";
    case replay_mode::edf: return "EDF";
    case replay_mode::priority_output_time: return "Priority(o(p))";
    case replay_mode::omniscient: return "Omniscient";
  }
  return "?";
}

namespace {

sched_kind scheduler_for(replay_mode m) {
  switch (m) {
    case replay_mode::lstf: return sched_kind::lstf;
    case replay_mode::lstf_preemptive: return sched_kind::lstf_preemptive;
    case replay_mode::lstf_pheap: return sched_kind::lstf_pheap;
    case replay_mode::edf: return sched_kind::edf;
    case replay_mode::priority_output_time: return sched_kind::static_priority;
    case replay_mode::omniscient: return sched_kind::omniscient;
  }
  throw std::logic_error("unhandled replay mode");
}

// Builds a replay packet from a recorded schedule entry: identity + path
// from the record, scheduling header initialized per mode from nothing but
// (i(p), o(p), path(p)) — black-box initialization — or the per-hop vector
// of Appendix B in omniscient mode.
net::packet_ptr packet_from_record(net::network& net,
                                   const net::packet_record& r,
                                   const replay_options& opt) {
  net::packet_ptr p = net.pool().make();
  p->id = r.id;
  p->flow_id = r.flow_id;
  p->seq_in_flow = r.seq_in_flow;
  p->size_bytes = r.size_bytes;
  p->src_host = r.src_host;
  p->dst_host = r.dst_host;
  p->path = r.path;
  p->flow_size_bytes = r.flow_size_bytes;
  p->ref_egress_time = r.egress_time;
  p->ref_queueing_delay = r.queueing_delay;
  // Replay-under-loss: a recorded drop is re-enacted at the same hop (the
  // network force-drops it there; no fault process runs during replay).
  // The record has no o(p), so header initialization uses the effective
  // output time the packet was tracking when it died: the earliest egress
  // it could still have reached from the drop point.
  sim::time_ps ref_out = r.egress_time;
  if (r.dropped()) {
    if (r.drop_hop < 0 ||
        static_cast<std::size_t>(r.drop_hop) >= r.path.size()) {
      throw std::invalid_argument("replay: drop record hop out of range");
    }
    p->forced_drop_hop = r.drop_hop;
    p->forced_drop_kind = r.dropped_kind;
    const auto j = static_cast<std::size_t>(r.drop_hop);
    if (r.dropped_kind == net::drop_kind::wire && j + 1 < r.path.size()) {
      // Lost after its last bit left path[j]: it would next contend at
      // path[j+1] one propagation delay later.
      const auto& pt = net.port_between(r.path[j], r.path[j + 1]);
      ref_out = r.drop_time + pt.prop_delay() + net.tmin(*p, j + 1);
    } else {
      // Died at path[j]'s output queue before transmitting.
      ref_out = r.drop_time + net.tmin(*p, j);
    }
  }
  // Replay-under-backpressure: a recorded stall is re-enacted as a hold at
  // the router where the packet's longest pause happened — the network
  // re-posts the arrival stall_time later. No flow control runs during
  // replay; the recorded delay stands in for the credit wait.
  if (r.stalled()) {
    if (r.stall_hop < 0 ||
        static_cast<std::size_t>(r.stall_hop) >= r.path.size()) {
      throw std::invalid_argument("replay: stall record hop out of range");
    }
    p->forced_stall_hop = r.stall_hop;
    p->forced_stall_time = r.stall_time;
  }
  switch (opt.mode) {
    case replay_mode::lstf:
    case replay_mode::lstf_preemptive:
    case replay_mode::lstf_pheap: {
      const sim::time_ps tmin = net.tmin(*p, 0);
      p->slack = ref_out - r.ingress_time - tmin;
      break;
    }
    case replay_mode::edf:
      p->deadline = ref_out;
      break;
    case replay_mode::priority_output_time:
      p->priority = ref_out;
      break;
    case replay_mode::omniscient: {
      // A dropped packet only transmitted at the hops its recorded departs
      // cover (wire drop at j: hops 0..j; buffer drop at j: hops 0..j-1);
      // replay force-drops it before any later hop consults a deadline, so
      // the tail entries just need to exist.
      if (!r.dropped() && r.hop_departs.size() != r.path.size()) {
        throw std::invalid_argument(
            "omniscient replay requires a trace recorded with hop times");
      }
      // Appendix B ranks by o(p, α), the time the *first* bit was
      // scheduled; the trace records last-bit exits, so subtract the
      // per-hop transmission time.
      p->hop_deadlines.resize(r.path.size());
      for (std::size_t j = 0; j < r.path.size(); ++j) {
        sim::time_ps start;
        if (j < r.hop_departs.size()) {
          const net::node_id here = r.path[j];
          const net::node_id next =
              (j + 1 < r.path.size()) ? r.path[j + 1] : r.dst_host;
          const auto& pt = net.port_between(here, next);
          start = r.hop_departs[j] - pt.transmission_time(r.size_bytes);
        } else {
          start = r.drop_time;  // never consulted: forced drop comes first
        }
        if (opt.omniscient_quantum > 0) {
          start -= start % opt.omniscient_quantum;
        }
        p->hop_deadlines[j] = start;
      }
      break;
    }
  }
  return p;
}

// Feeds the cursor into the network one ingress instant at a time: a single
// standing event sits at the next run's i(p); when it fires it injects
// every record due at that instant and re-arms itself at the following one.
// Records are pulled in same-instant batches (trace_cursor::next_run) so a
// wakeup costs one virtual call per instant, not one per record. Only
// in-flight packets (plus the one run being injected) are ever resident,
// which is the whole point of streaming injection.
struct streaming_feeder {
  net::trace_cursor& cur;
  net::network& net;
  const replay_options& opt;
  std::uint64_t injected = 0;
  std::vector<const net::packet_record*> run;  // reused batch storage

  // Pulls the next same-instant run; empty at end of trace.
  void pull() {
    run.clear();
    cur.next_run(run);
  }

  [[nodiscard]] sim::time_ps run_ingress() const {
    return run.front()->ingress_time;
  }

  void arm() {
    pull();
    if (run.empty()) return;
    // Early phase: the feeder (and the injections it posts, also early)
    // must precede every same-instant forwarded arrival, or a rank tie
    // between an injected and an in-network packet could resolve in the
    // opposite order from up-front injection.
    net.sim().schedule_early(run_ingress(), [this] { fire(); });
  }

  void fire() {
    const sim::time_ps now = net.sim().now();
    // Inject the armed run, then keep draining while the cursor's next run
    // still lands at this instant (a cursor without true batching — the
    // base-class next_run — splits an instant across runs of one).
    do {
      for (const net::packet_record* r : run) {
        net.inject_at_ingress(packet_from_record(net, *r, opt), now);
        ++injected;
      }
      pull();
    } while (!run.empty() && run_ingress() == now);
    if (run.empty()) return;
    if (run_ingress() < now) {
      throw std::invalid_argument(
          "replay cursor violated ingress-time order (sort the trace or use "
          "trace::ingress_cursor)");
    }
    net.sim().schedule_early(run_ingress(), [this] { fire(); });
  }
};

}  // namespace

replay_result replay_trace(net::trace_cursor& cur,
                           const topology_builder& topo,
                           const replay_options& opt) {
  sim::simulator sim;
  net::network net(sim);
  topo(net);
  // Replay uses unbounded buffers and attaches no fault process: the only
  // drops are the forced replays of losses recorded in the original run.
  // Flow control is off unless the caller opts into live backpressure.
  net.set_buffer_bytes(0);
  net.set_flow(opt.flow);
  net.set_preemption(opt.mode == replay_mode::lstf_preemptive);
  net.set_scheduler_factory(
      make_factory(scheduler_for(opt.mode), opt.seed, &net));
  net.build();

  // Overdue counters settle at egress against the reference times carried
  // by each packet, so the engine never needs the full trace in memory —
  // O(1) accounting state for Table-1-style runs, O(trace) only when the
  // caller asked to keep per-packet outcomes.
  replay_result res;
  res.threshold_T = opt.threshold_T;
  if (opt.keep_outcomes && cur.size_hint() > 0) {
    res.outcomes.reserve(cur.size_hint());
  }
  net.hooks().on_egress = [&res, &opt](const net::packet& p,
                                       sim::time_ps now) {
    ++res.total;
    if (now > p.ref_egress_time) ++res.overdue;
    if (now > p.ref_egress_time + opt.threshold_T) ++res.overdue_beyond_T;
    if (opt.keep_outcomes) {
      res.outcomes.push_back(replay_outcome{p.id, p.ref_egress_time, now,
                                            p.ref_queueing_delay,
                                            p.queueing_delay});
    }
  };
  net.hooks().on_drop = [&res](const net::packet&, net::node_id, sim::time_ps,
                               net::drop_kind) { ++res.dropped; };

  std::uint64_t injected = 0;
  if (opt.injection == injection_mode::streaming) {
    streaming_feeder feeder{cur, net, opt, 0, {}};
    feeder.arm();
    sim.run();
    injected = feeder.injected;
  } else {
    // Up-front injection: materialize and schedule every packet before the
    // run (peak residency O(trace)); kept as the equivalence baseline.
    sim::time_ps last_ingress = 0;
    while (const net::packet_record* r = cur.next()) {
      if (r->ingress_time < last_ingress) {
        throw std::invalid_argument(
            "replay cursor violated ingress-time order (sort the trace or "
            "use trace::ingress_cursor)");
      }
      last_ingress = r->ingress_time;
      net.inject_at_ingress(packet_from_record(net, *r, opt),
                            r->ingress_time);
      ++injected;
    }
    sim.run();
  }

  if (res.total + res.dropped != injected) {
    throw std::runtime_error("replay lost packets (buffering bug?)");
  }
  // Egress order is deterministic but mode-dependent; id order is the
  // stable contract consumers (EDF≡LSTF equivalence, Figure 1) key on.
  std::sort(res.outcomes.begin(), res.outcomes.end(),
            [](const replay_outcome& a, const replay_outcome& b) {
              return a.id < b.id;
            });
  res.peak_pool_packets = net.pool().created();
  res.peak_event_slots = sim.slot_capacity();
  return res;
}

replay_result replay_trace(const net::trace& tr, const topology_builder& topo,
                           const replay_options& opt) {
  net::trace_ingress_cursor cur(tr);
  return replay_trace(cur, topo, opt);
}

}  // namespace ups::core
