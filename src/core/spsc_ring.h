// Bounded lock-free single-producer/single-consumer ring buffer.
//
// One thread calls try_push, one (other) thread calls try_pop; no mutex,
// no CAS — each side owns its own index and publishes it with a release
// store the other side acquires. Indices are free-running 64-bit counters
// (masked on access), so full/empty never degenerate into the classic
// one-slot-wasted ambiguity: the ring holds exactly `capacity()` elements
// when full. Each side keeps a cached copy of the other's index and only
// re-reads the shared atomic when the cache says the ring looks full or
// empty, which keeps the fast path free of cross-core cache-line traffic.
//
// This is the decoded-block conveyor of the v3 decode-ahead pipeline (one
// decoder thread feeding the replay loop), but it is deliberately generic:
// any T with move assignment works.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ups::core {

template <typename T>
class spsc_ring {
 public:
  // Capacity rounds up to a power of two so index masking is one AND.
  explicit spsc_ring(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  spsc_ring(const spsc_ring&) = delete;
  spsc_ring& operator=(const spsc_ring&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  // Producer side. False when the ring is full; the element is untouched.
  [[nodiscard]] bool try_push(T v) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - cached_head_ == capacity()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (t - cached_head_ == capacity()) return false;
    }
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. False when the ring is empty; `out` is untouched.
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (h == cached_tail_) return false;
    }
    out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  // Approximate from a third thread; exact when the queried side is idle.
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Producer and consumer indices live on their own cache lines; the
  // cached mirrors are single-thread private but padded the same way so
  // neither shares a line with the hot atomics.
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next pop position
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next push position
  alignas(64) std::uint64_t cached_head_ = 0;  // producer's view of head_
  alignas(64) std::uint64_t cached_tail_ = 0;  // consumer's view of tail_
};

}  // namespace ups::core
