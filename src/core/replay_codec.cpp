#include "core/replay_codec.h"

#include "core/varint.h"

namespace ups::core {
namespace {

// The shared scalar decoder, bound to this codec's typed error.
[[nodiscard]] std::uint64_t get_varint(const std::uint8_t*& p,
                                       const std::uint8_t* end) {
  return get_varint_checked<codec_error>(p, end, "replay_result codec");
}

}  // namespace

void encode_replay_result(const replay_result& r,
                          std::vector<std::uint8_t>& out) {
  out.push_back(kReplayCodecVersion);
  put_varint(out, r.total);
  put_varint(out, r.overdue);
  put_varint(out, r.overdue_beyond_T);
  put_varint(out, r.dropped);
  put_varint(out, zigzag(r.threshold_T));
  put_varint(out, r.peak_pool_packets);
  put_varint(out, r.peak_event_slots);
  put_varint(out, r.outcomes.size());
  std::uint64_t prev_id = 0;
  sim::time_ps prev_orig_out = 0;
  for (const replay_outcome& o : r.outcomes) {
    // Ids are strictly increasing (sorted, deduplicated by construction),
    // so the unsigned delta is exact and usually one byte.
    put_varint(out, o.id - prev_id);
    put_varint(out, zigzag(o.original_out - prev_orig_out));
    put_varint(out, zigzag(o.replay_out - o.original_out));
    put_varint(out, zigzag(o.original_queueing));
    put_varint(out, zigzag(o.replay_queueing - o.original_queueing));
    prev_id = o.id;
    prev_orig_out = o.original_out;
  }
}

replay_result decode_replay_result(const std::uint8_t*& p,
                                   const std::uint8_t* end) {
  if (p == end) throw codec_error("replay_result codec: empty input");
  const std::uint8_t version = *p++;
  if (version != kReplayCodecVersion) {
    throw codec_error("replay_result codec: unknown version " +
                      std::to_string(version));
  }
  replay_result r;
  r.total = get_varint(p, end);
  r.overdue = get_varint(p, end);
  r.overdue_beyond_T = get_varint(p, end);
  r.dropped = get_varint(p, end);
  r.threshold_T = unzigzag(get_varint(p, end));
  r.peak_pool_packets = get_varint(p, end);
  r.peak_event_slots = get_varint(p, end);
  const std::uint64_t n = get_varint(p, end);
  // A garbled count would otherwise drive a multi-GB reserve before the
  // per-outcome reads hit the truncation check: each outcome costs >= 5
  // bytes on the wire, so the remaining bytes bound the plausible count.
  if (n > static_cast<std::uint64_t>(end - p)) {
    throw codec_error("replay_result codec: outcome count overruns buffer");
  }
  r.outcomes.resize(n);
  std::uint64_t prev_id = 0;
  sim::time_ps prev_orig_out = 0;
  for (replay_outcome& o : r.outcomes) {
    o.id = prev_id + get_varint(p, end);
    o.original_out = prev_orig_out + unzigzag(get_varint(p, end));
    o.replay_out = o.original_out + unzigzag(get_varint(p, end));
    o.original_queueing = unzigzag(get_varint(p, end));
    o.replay_queueing = o.original_queueing + unzigzag(get_varint(p, end));
    prev_id = o.id;
    prev_orig_out = o.original_out;
  }
  return r;
}

}  // namespace ups::core
