// LEB128 varints: the one encode/decode implementation shared by every
// byte-stream in the codebase (v3 trace columns, the replay-result codec,
// the dispatch wire protocol). Each consumer throws its own typed error on
// structural damage, so the decoders are templated on the exception type —
// a corrupt stream fails as trace_format_error / codec_error / wire_error
// exactly as before the deduplication, never as a generic runtime_error.
//
// Layout: little-endian base-128, 7 payload bits per byte, the high bit a
// continuation flag. A 64-bit value is at most 10 bytes; decoders reject
// encodings whose payload exceeds 64 bits ("overlong" in the structural
// sense — non-canonical but in-range encodings like 0x80 0x00 decode to
// the same value a canonical encoding would, matching the historical
// per-caller loops).
//
// On top of the scalar pair, get_varints() decodes a whole run of values
// with a SWAR fast path: load an 8-byte word, find the varint boundaries
// via the continuation-bit mask (~w & 0x8080808080808080), and decode
// every short varint inside the word with branch-free 7-bit compaction —
// the shape the v3 block decoder feeds whole columns through. The scalar
// bounds-checked loop remains the reference tail (and the error path), so
// batch and scalar decodes are byte-for-byte and error-for-error
// identical.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

// The repo builds without -march flags so binaries stay portable; BMI2
// (pext/bzhi) is used only behind a per-function target attribute plus a
// one-time __builtin_cpu_supports check at run time.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define UPS_VARINT_HAVE_BMI2 1
#include <immintrin.h>
#else
#define UPS_VARINT_HAVE_BMI2 0
#endif

namespace ups::core {

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (0 - (v & 1)));
}

// Bounded scalar decode — the reference implementation every fast path
// defers to at buffer tails and on malformed input. Truncation mid-value
// and encodings carrying more than 64 payload bits throw Error; `what`
// names the stream for the message (e.g. "trace v3").
template <typename Error>
[[nodiscard]] inline std::uint64_t get_varint_checked(
    const std::uint8_t*& p, const std::uint8_t* end, const char* what) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    if (p == end) {
      throw Error(std::string(what) + ": truncated varint");
    }
    const std::uint8_t b = *p++;
    if (shift == 63 && b > 1) {
      throw Error(std::string(what) + ": varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift >= 64) {
      throw Error(std::string(what) + ": varint overflows 64 bits");
    }
  }
}

namespace varint_detail {

inline constexpr std::uint64_t kMsb8 = 0x8080808080808080ull;

[[nodiscard]] inline std::uint64_t load_word(const std::uint8_t* p) noexcept {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof(w));  // callers assert a little-endian host
  return w;
}

// Compacts the low 7 bits of each byte of `x` (high bytes already masked
// off) into one integer, low byte first — the branch-free core of the SWAR
// decode. Three shift-mask rounds merge 8 x 7-bit groups into 56 bits.
[[nodiscard]] inline std::uint64_t compact7(std::uint64_t x) noexcept {
  x &= 0x7f7f7f7f7f7f7f7full;
  x = (x & 0x007f007f007f007full) | ((x & 0x7f007f007f007f00ull) >> 1);
  x = (x & 0x00003fff00003fffull) | ((x & 0x3fff00003fff0000ull) >> 2);
  x = (x & 0x000000000fffffffull) | ((x & 0x0fffffff00000000ull) >> 4);
  return x;
}

// The continuation bits of a word as one byte: bit j set iff byte j of `w`
// has its high bit set. (w & kMsb8) leaves one bit per byte at position
// 8j+7; the multiply is a parallel shift-and-sum landing bit j of the
// result at position 56+j.
[[nodiscard]] inline unsigned cont_mask(std::uint64_t w) noexcept {
  return static_cast<unsigned>(((w & kMsb8) * 0x0002040810204081ull) >> 56);
}

// Varint boundaries of a word, precomputed per continuation-bit mask: how
// many varints COMPLETE inside the word (k), the bytes they span (total),
// and each one's offset + length in 7-bit payload units. Indexing this
// table by cont_mask(w) turns boundary finding into one load — no per-value
// branch chain, which is what makes mixed-width columns decode branch-free
// (the only data-dependent branch left is the extraction loop's trip
// count). Offsets/lengths are premultiplied by 7 because extraction happens
// on the compact7() image of the word: one compaction per word, then each
// value is a shift + mask — two ops — off the 56-bit payload.
struct word_bounds {
  std::uint8_t k = 0;           // varints completing inside the word
  std::uint8_t total = 0;       // bytes those k varints span
  std::uint8_t shift7[8] = {};  // 7 * (value j's first byte)
  std::uint8_t bytes7[8] = {};  // 7 * (value j's byte length)
};

inline constexpr std::array<word_bounds, 256> kWordBounds = [] {
  std::array<word_bounds, 256> t{};
  for (unsigned m = 0; m < 256; ++m) {
    word_bounds e;
    unsigned pos = 0;
    while (pos < 8) {
      unsigned last = pos;  // first byte at/after pos with continuation clear
      while (last < 8 && ((m >> last) & 1) != 0) ++last;
      if (last == 8) break;  // value runs past the word
      e.shift7[e.k] = static_cast<std::uint8_t>(7 * pos);
      e.bytes7[e.k] = static_cast<std::uint8_t>(7 * (last - pos + 1));
      ++e.k;
      pos = last + 1;
    }
    e.total = static_cast<std::uint8_t>(pos);
    t[m] = e;
  }
  return t;
}();

// One pass of the word-at-a-time sweep: decodes complete varints from
// [p, end) into out[0..count) while at least 8 output slots and a full
// word plus slack (10 bytes) of input remain. Returns how many values it
// wrote; `p` advances past their bytes. Extraction always writes slots
// 0..3 of the current word (and 4..7 when the word completes that many
// values) regardless of how many varints the word really holds — slots
// past e.k receive garbage and are overwritten by the next iteration,
// which keeps the extraction free of data-dependent branches (a variable
// trip count mispredicts once per word on mixed-width columns). Stops
// without consuming at a word whose first varint does not complete inside
// it (a 9+-byte encoding): the caller's bounds-checked scalar loop owns
// that case and every error path, so the sweep itself never throws.
inline std::size_t sweep_words(const std::uint8_t*& p, const std::uint8_t* end,
                               std::uint64_t* out,
                               std::size_t count) noexcept {
  std::size_t i = 0;
  while (count - i >= 8 && end - p >= 10) {
    const std::uint64_t w = load_word(p);
    const unsigned m = cont_mask(w);
    if (m == 0) [[likely]] {
      // Eight complete one-byte values in one load.
      for (std::size_t j = 0; j < 8; ++j) {
        out[i + j] = (w >> (8 * j)) & 0x7f;
      }
      p += 8;
      i += 8;
      continue;
    }
    const word_bounds& e = kWordBounds[m];
    if (e.k == 0) break;
    const std::uint64_t y = compact7(w);  // one compaction serves every value
    for (unsigned j = 0; j < 4; ++j) {
      out[i + j] = (y >> e.shift7[j]) & ((1ull << e.bytes7[j]) - 1);
    }
    if (e.k > 4) {
      // Only words of mostly one-byte values get here, so the branch tracks
      // the column's shape and stays predicted.
      for (unsigned j = 4; j < 8; ++j) {
        out[i + j] = (y >> e.shift7[j]) & ((1ull << e.bytes7[j]) - 1);
      }
    }
    p += e.total;
    i += e.k;
  }
  return i;
}

#if UPS_VARINT_HAVE_BMI2
// BMI2 twin of sweep_words — same structure, same results, byte for byte.
// pext collapses the three-round compact7 shuffle (and the continuation
// movemask multiply) into single instructions, and bzhi replaces each
// extraction's shift-mask pair. Compiled with the bmi2 target attribute so
// the intrinsics inline; only called when the host CPU reports BMI2.
[[gnu::target("bmi2")]] inline std::size_t sweep_words_bmi2(
    const std::uint8_t*& p, const std::uint8_t* end, std::uint64_t* out,
    std::size_t count) noexcept {
  constexpr std::uint64_t kPayload = 0x7f7f7f7f7f7f7f7full;
  std::size_t i = 0;
  while (count - i >= 8 && end - p >= 10) {
    const std::uint64_t w = load_word(p);
    const unsigned m = static_cast<unsigned>(_pext_u64(w, kMsb8));
    if (m == 0) [[likely]] {
      for (std::size_t j = 0; j < 8; ++j) {
        out[i + j] = (w >> (8 * j)) & 0x7f;
      }
      p += 8;
      i += 8;
      continue;
    }
    const word_bounds& e = kWordBounds[m];
    if (e.k == 0) break;
    const std::uint64_t y = _pext_u64(w, kPayload);
    for (unsigned j = 0; j < 4; ++j) {
      out[i + j] = _bzhi_u64(y >> e.shift7[j], e.bytes7[j]);
    }
    if (e.k > 4) {
      for (unsigned j = 4; j < 8; ++j) {
        out[i + j] = _bzhi_u64(y >> e.shift7[j], e.bytes7[j]);
      }
    }
    p += e.total;
    i += e.k;
  }
  return i;
}

// Resolved once at static initialization; no guard in the hot path.
inline const bool kHaveBmi2 = __builtin_cpu_supports("bmi2") != 0;
#endif

}  // namespace varint_detail

// True when [p, p + n) is exactly n one-byte varints (no continuation bit
// anywhere) — the all-short-column fast path a caller can detect from byte
// counts alone (n values in n bytes leaves no room for a longer encoding).
[[nodiscard]] inline bool all_one_byte_varints(const std::uint8_t* p,
                                               std::size_t n) noexcept {
  using varint_detail::kMsb8;
  using varint_detail::load_word;
  std::uint64_t acc = 0;
  while (n >= 8) {
    acc |= load_word(p);
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n) acc |= *p++;
  return (acc & kMsb8) == 0;
}

// Decodes exactly `count` varints from [p, end) into out[0..count), SWAR
// word-at-a-time where at least a full word of slack remains, the scalar
// checked loop on the tail. Identical values and identical Error throws to
// `count` successive get_varint_checked calls; `p` ends one past the last
// consumed byte.
template <typename Error>
inline void get_varints(const std::uint8_t*& p, const std::uint8_t* end,
                        std::uint64_t* out, std::size_t count,
                        const char* what) {
  std::size_t i = 0;
  // Column-shape specialization: byte count == value count means every
  // value is one byte; one pass of widening stores, no boundary search.
  // (If a continuation bit shows up anyway the stream is malformed — the
  // scalar loop below reproduces the exact truncation error.)
  if (static_cast<std::size_t>(end - p) == count &&
      all_one_byte_varints(p, count)) {
    for (; i < count; ++i) out[i] = p[i];
    p += count;
    return;
  }
  // Word-at-a-time main loop: one boundary-table load per word, then every
  // value inside the word extracts independently off one 7-bit compaction
  // of the word (all <= 8-byte varints carry <= 56 payload bits, so
  // extraction is overflow-free). The sweep returns early only at a
  // 9+-byte encoding — decode it with the scalar loop (which owns the
  // 64-bit overflow check) and resume sweeping. The last <= 7 values go
  // through the scalar tail below.
  for (;;) {
#if UPS_VARINT_HAVE_BMI2
    if (varint_detail::kHaveBmi2) {
      i += varint_detail::sweep_words_bmi2(p, end, out + i, count - i);
    } else {
      i += varint_detail::sweep_words(p, end, out + i, count - i);
    }
#else
    i += varint_detail::sweep_words(p, end, out + i, count - i);
#endif
    if (count - i < 8 || end - p < 10) break;
    out[i++] = get_varint_checked<Error>(p, end, what);
  }
  for (; i < count; ++i) {
    out[i] = get_varint_checked<Error>(p, end, what);
  }
}

}  // namespace ups::core
