#include "core/heuristics.h"

namespace ups::core {

sim::time_ps fairness_slack::next(std::uint64_t flow, std::uint32_t size_bytes,
                                  sim::time_ps now) {
  auto& st = flows_[flow];
  const sim::time_ps service =
      sim::transmission_time(size_bytes, r_est_);  // bits(p) / r_est
  sim::time_ps slack = 0;
  if (st.seen) {
    const sim::time_ps gap = now - st.last_arrival;
    slack = std::max<sim::time_ps>(0, st.last_slack + service - gap);
  }
  st.seen = true;
  st.last_slack = slack;
  st.last_arrival = now;
  return slack;
}

}  // namespace ups::core
