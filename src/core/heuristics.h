// Practical slack-initialization heuristics (§3 of the paper).
//
// In practical mode there is no recorded schedule: the sender (the "ingress"
// of §3) initializes the slack header with a heuristic chosen for the
// network-wide objective, and LSTF in the switches does the rest.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "net/packet.h"
#include "sim/time.h"
#include "sim/units.h"

namespace ups::core {

// §3.1 — minimize mean FCT: slack(p) = flow_size(p) × D with D much larger
// than any packet delay (the paper uses D = 1 sec). The huge spacing between
// distinct sizes makes LSTF order packets by flow size (SJF), while the
// accumulated-wait term breaks ties FIFO+-style within a size class.
//
// We measure the flow size in MSS-sized packets so that size × D stays well
// inside 64-bit picoseconds: adjacent size classes are D = 1 s apart, far
// beyond any delay the network can accumulate, so the LSTF ordering over
// different size classes is exactly SJF's.
class fct_slack {
 public:
  explicit fct_slack(sim::time_ps d = sim::kSecond, std::uint32_t mss = 1460)
      : d_(d), mss_(mss) {}

  [[nodiscard]] sim::time_ps slack_for(std::uint64_t flow_size_bytes) const {
    const std::uint64_t pkts = (flow_size_bytes + mss_ - 1) / mss_;
    const std::uint64_t capped = std::min<std::uint64_t>(pkts, kPacketCap);
    return static_cast<sim::time_ps>(capped) * d_;
  }

  // 1e6 packets × 1 s = 1e18 ps < 2^62: overflow-safe under any addition the
  // schedulers perform.
  static constexpr std::uint64_t kPacketCap = 1'000'000;

 private:
  sim::time_ps d_;
  std::uint32_t mss_;
};

// §3.2 — minimize tail packet delay: every packet gets the same initial
// slack (1 sec), which makes LSTF identical to FIFO+.
class tail_slack {
 public:
  explicit tail_slack(sim::time_ps uniform = sim::kSecond)
      : uniform_(uniform) {}
  [[nodiscard]] sim::time_ps slack_for() const noexcept { return uniform_; }

 private:
  sim::time_ps uniform_;
};

// §3.3 — asymptotic fairness via a Virtual Clock [32] at the ingress:
//   slack(p_0)  = 0
//   slack(p_i)  = max(0, slack(p_{i-1}) + bits(p_i)/r_est − (i(p_i) − i(p_{i-1})))
// Any r_est ≤ r* (the fair rate) converges to the fair share as long as all
// flows use the same value; weighted fairness falls out of per-flow r_est.
class fairness_slack {
 public:
  explicit fairness_slack(sim::bits_per_sec r_est) : r_est_(r_est) {}

  // Returns the slack for the next packet of `flow` arriving now.
  [[nodiscard]] sim::time_ps next(std::uint64_t flow,
                                  std::uint32_t size_bytes, sim::time_ps now);

  [[nodiscard]] sim::bits_per_sec rate_estimate() const noexcept {
    return r_est_;
  }

 private:
  struct flow_state {
    sim::time_ps last_slack = 0;
    sim::time_ps last_arrival = 0;
    bool seen = false;
  };
  sim::bits_per_sec r_est_;
  std::unordered_map<std::uint64_t, flow_state> flows_;
};

}  // namespace ups::core
