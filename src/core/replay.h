// Schedule replay engine — the heart of §2's empirical methodology.
//
// Given a recorded schedule {(path(p), i(p), o(p))}, the engine rebuilds the
// topology with a candidate-UPS scheduler at every port, re-injects every
// packet at its ingress router at exactly i(p) with a header initialized
// from nothing but (i(p), o(p), path(p)) — black-box initialization — and
// measures how many packets miss their original output times. The
// omniscient mode instead initializes the per-hop vector of Appendix B.
//
// Packets are consumed lazily from a trace_cursor in ingress-time order
// (streaming injection): a single standing feeder event materializes each
// packet only when simulation time reaches its i(p), and overdue counters
// settle at egress, so peak memory is O(in-flight packets) instead of
// O(trace) — the difference between replaying a RocketFuel-scale trace from
// disk and not fitting it in RAM.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.h"
#include "net/trace.h"
#include "sim/time.h"

namespace ups::core {

enum class replay_mode : std::uint8_t {
  lstf,                  // slack(p) = o(p) - i(p) - tmin(p)
  lstf_preemptive,       // same, resume-style preemption enabled
  lstf_pheap,            // same ordering, pipelined-heap backing (§5)
  edf,                   // static header o(p), per-router deadline priority
  priority_output_time,  // simple priorities with priority(p) = o(p), §2.3(7)
  omniscient,            // per-hop scheduled times from the original run
};

[[nodiscard]] const char* to_string(replay_mode m);

struct replay_outcome {
  std::uint64_t id = 0;
  sim::time_ps original_out = 0;
  sim::time_ps replay_out = 0;
  sim::time_ps original_queueing = 0;
  sim::time_ps replay_queueing = 0;
  [[nodiscard]] sim::time_ps lateness() const noexcept {
    return replay_out - original_out;
  }
};

struct replay_result {
  // Per-packet outcomes sorted by packet id (deterministic across modes and
  // injection strategies; only filled when replay_options::keep_outcomes).
  std::vector<replay_outcome> outcomes;
  std::uint64_t total = 0;             // packets that reached egress
  std::uint64_t overdue = 0;           // o'(p) > o(p)
  std::uint64_t overdue_beyond_T = 0;  // o'(p) > o(p) + T
  // Packets force-dropped during replay because the original run recorded
  // them as lost (replay-under-loss). Excluded from `total` and from every
  // overdue counter/fraction: a packet that never egressed in the original
  // schedule has no o(p) to be late against. total + dropped == injected.
  std::uint64_t dropped = 0;
  sim::time_ps threshold_T = 0;
  // Residency high-water marks: distinct packet objects the replay's pool
  // ever allocated (== peak simultaneously-live packets) and the event
  // slab's slot capacity. Streaming injection keeps both at O(in-flight);
  // up-front injection pays O(trace). Informational — not compared by
  // operator==-style identity checks in tests/benches.
  std::uint64_t peak_pool_packets = 0;
  std::uint64_t peak_event_slots = 0;

  [[nodiscard]] double frac_overdue() const {
    return total == 0 ? 0.0 : static_cast<double>(overdue) / total;
  }
  [[nodiscard]] double frac_overdue_beyond_T() const {
    return total == 0 ? 0.0 : static_cast<double>(overdue_beyond_T) / total;
  }
};

// Populates an empty network with the experiment's nodes and links (same
// callable used for the original run and the replay run).
using topology_builder = std::function<void(net::network&)>;

// How packets enter the replay network.
enum class injection_mode : std::uint8_t {
  // Pull records from the cursor during the run: only in-flight packets are
  // resident, so peak memory is O(in-flight) instead of O(trace). The
  // default; outcome-identical to upfront because injections are delivered
  // in the kernel's early phase — ahead of every same-instant forwarded
  // arrival and late-phase service decision, the order up-front injection
  // produces by construction.
  streaming,
  // Materialize and schedule every packet before the run (the pre-streaming
  // engine); kept as the equivalence baseline for tests.
  upfront,
};

struct replay_options {
  replay_mode mode = replay_mode::lstf;
  injection_mode injection = injection_mode::streaming;
  // Overdue tolerance T: one transmission time on the bottleneck link.
  sim::time_ps threshold_T = 0;
  std::uint64_t seed = 1;
  // Keep per-packet outcomes (Figure 1 needs them; Table 1 does not).
  bool keep_outcomes = true;
  // Live flow control for the replay network (net::flow_spec, default
  // none). Recorded stalls re-enact regardless; enabling this additionally
  // governs the replay's own links, so replay-under-live-backpressure can
  // be studied with the same credit/pause grammar as originals.
  net::flow_spec flow;
  // Omniscient-mode header quantization (§5's "least information" open
  // question): per-hop deadlines are rounded down to multiples of this
  // quantum before replay, modelling a header with fewer bits of timing
  // precision. 0 = exact (Appendix B's perfect replay).
  sim::time_ps omniscient_quantum = 0;
};

// Replays the schedule streamed by `cur` over the given topology and
// reports overdue statistics. The cursor must yield records in
// non-decreasing ingress-time order (trace::ingress_cursor() or a
// trace_stream_reader over a sort_by_ingress()ed file); a violation throws.
[[nodiscard]] replay_result replay_trace(net::trace_cursor& cur,
                                         const topology_builder& topo,
                                         const replay_options& opt);

// Convenience: replays an in-memory trace through its ingress cursor.
[[nodiscard]] replay_result replay_trace(const net::trace& tr,
                                         const topology_builder& topo,
                                         const replay_options& opt);

}  // namespace ups::core
