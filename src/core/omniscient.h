// Omniscient-initialization scheduler (Appendix B).
//
// The header carries an n-dimensional vector of per-hop target departure
// times o(p, α_i) from the original schedule; each router uses the entry for
// its own hop as the packet's priority. The paper proves this replays any
// viable schedule perfectly — the property tests exercise exactly that.
// It doubles as a "prescribed schedule executor" for the hand-built theory
// gadgets of Appendices C, F and G.
#pragma once

#include "sched/rank_scheduler.h"

namespace ups::core {

class omniscient final : public sched::rank_scheduler_base<omniscient> {
 public:
  explicit omniscient(std::int32_t port_id = -1)
      : rank_scheduler_base(port_id, /*drop_highest_rank=*/false) {}

  [[nodiscard]] std::int64_t rank_of(const net::packet& p,
                                     sim::time_ps /*now*/) const noexcept {
    // On arrival at the port of router path[k], p.hop == k + 1.
    const std::size_t here = p.hop - 1;
    return here < p.hop_deadlines.size() ? p.hop_deadlines[here] : 0;
  }
};

}  // namespace ups::core
