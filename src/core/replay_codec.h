// Compact wire codec for replay_result — the serialization boundary the
// multi-process dispatch fabric ships results across (exp/dispatch).
//
// The encoding is a single versioned byte stream of LEB128 varints: the
// aggregate counters, then the outcome vector as delta columns keyed on the
// packet-id order the engine already guarantees (outcomes are sorted by id,
// ids strictly increase, and replay/original output times are strongly
// correlated — so ids delta-code unsigned, original_out delta-codes zigzag
// against its predecessor, and replay_out codes as the zigzag lateness
// against the same record's original_out). A 60k-packet outcome vector that
// is 2.4 MB in memory wires at ~10 B/outcome.
//
// Round-trip is exact for every field an identity gate compares (counters,
// threshold, per-outcome times) AND the informational residency peaks, so a
// result that crossed a process boundary is indistinguishable from one
// computed locally. Truncated or garbled input throws codec_error — typed,
// never UB — which the dispatch coordinator maps to a protocol failure.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/replay.h"

namespace ups::core {

// Structural damage in an encoded replay_result (truncation, a varint that
// overruns the buffer, an unknown version byte).
class codec_error : public std::runtime_error {
 public:
  explicit codec_error(const std::string& what) : std::runtime_error(what) {}
};

// v2 added the replay-under-loss `dropped` counter. The codec only ever
// crosses a pipe between two processes of the same binary, so no
// back-compat decode path is kept.
inline constexpr std::uint8_t kReplayCodecVersion = 2;

// Appends the encoding of `r` to `out` (the buffer is not cleared, so a
// caller can pack several results into one frame).
void encode_replay_result(const replay_result& r,
                          std::vector<std::uint8_t>& out);

// Decodes one result starting at `*p`, advancing `*p` past it; bytes after
// the result are left for the caller (frames can carry trailing fields).
// Throws codec_error on any structural damage.
[[nodiscard]] replay_result decode_replay_result(const std::uint8_t*& p,
                                                 const std::uint8_t* end);

}  // namespace ups::core
