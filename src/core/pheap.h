// Pipelined heap (p-heap) priority queue.
//
// §5 of the paper argues LSTF is implementable at line rate because its
// per-router work is the same as fine-grained priorities, "which can be
// carried out in almost constant time using specialized data-structures
// such as pipelined heap (p-heap) [6, 16]". This is a software model of
// that structure: a complete binary heap where both insert and delete-min
// proceed strictly TOP-DOWN, touching one node per level. In hardware each
// level is an independent memory bank, so consecutive operations pipeline
// one level apart and the heap sustains one operation per cycle regardless
// of depth; in software we expose the per-level operation count so the
// microbenchmarks can check the "work per op = O(levels)" claim.
//
// Ties break FCFS via an insertion sequence number, matching keyed_queue.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ups::core {

template <typename Value>
class pheap {
 public:
  using key_type = std::pair<std::int64_t, std::uint64_t>;  // (rank, seq)

  explicit pheap(int levels = 16) { reset(levels); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] int levels() const noexcept { return levels_; }
  // Total node visits across all operations (the pipelined-work metric).
  [[nodiscard]] std::uint64_t stage_ops() const noexcept { return stage_ops_; }

  void insert(std::int64_t rank, Value value) {
    if (size_ == capacity_) grow();
    const key_type key{rank, next_seq_++};
    // Top-down insertion: carry the new item from the root toward a hole,
    // swapping it with any node it beats on the way. Each level's subtree
    // hole count steers the descent, so exactly one node per level is
    // touched — the property that lets hardware pipeline inserts.
    std::size_t node = 1;
    key_type carry_key = key;
    Value carry_value = std::move(value);
    while (true) {
      ++stage_ops_;
      --holes_[node];
      if (!valid_[node]) {
        keys_[node] = carry_key;
        values_[node] = std::move(carry_value);
        valid_[node] = true;
        break;
      }
      if (carry_key < keys_[node]) {
        std::swap(carry_key, keys_[node]);
        std::swap(carry_value, values_[node]);
      }
      const std::size_t l = 2 * node;
      const std::size_t r = 2 * node + 1;
      node = (holes_[l] > 0) ? l : r;
    }
    ++size_;
  }

  [[nodiscard]] const Value& peek() const {
    if (empty()) throw std::logic_error("pheap: peek on empty heap");
    return values_[1];
  }
  [[nodiscard]] std::int64_t peek_rank() const {
    if (empty()) throw std::logic_error("pheap: peek on empty heap");
    return keys_[1].first;
  }

  [[nodiscard]] Value pop_min() {
    if (empty()) throw std::logic_error("pheap: pop on empty heap");
    Value out = std::move(values_[1]);
    // Top-down deletion: repeatedly pull the smaller valid child up; the
    // vacated leaf position becomes a hole. Again one node per level.
    std::size_t node = 1;
    while (true) {
      ++stage_ops_;
      const std::size_t l = 2 * node;
      const std::size_t r = 2 * node + 1;
      const bool lv = l <= capacity_index_ && valid_[l];
      const bool rv = r <= capacity_index_ && valid_[r];
      if (!lv && !rv) {
        valid_[node] = false;
        break;
      }
      std::size_t c;
      if (lv && rv) {
        c = keys_[l] < keys_[r] ? l : r;
      } else {
        c = lv ? l : r;
      }
      keys_[node] = keys_[c];
      values_[node] = std::move(values_[c]);
      node = c;
    }
    // Credit the hole back to every level of the vacated path.
    for (std::size_t a = node; a >= 1; a /= 2) ++holes_[a];
    --size_;
    return out;
  }

 private:
  void reset(int levels) {
    levels_ = levels;
    capacity_ = (std::size_t{1} << levels) - 1;
    capacity_index_ = capacity_;
    keys_.assign(capacity_ + 2, key_type{});
    values_.clear();
    values_.resize(capacity_ + 2);  // move-only payloads: no copy-fill
    valid_.assign(capacity_ + 2, false);
    holes_.assign(2 * (capacity_ + 2), 0);
    // Subtree hole counts for a complete tree of `levels` levels.
    init_holes(1, levels);
  }

  std::int64_t init_holes(std::size_t node, int depth) {
    if (depth == 0 || node > capacity_index_) return 0;
    const std::int64_t h =
        1 + init_holes(2 * node, depth - 1) +
        init_holes(2 * node + 1, depth - 1);
    holes_[node] = h;
    return h;
  }

  void grow() {
    // Rebuild one level deeper (software convenience; hardware p-heaps are
    // provisioned for the worst-case buffer size up front).
    pheap bigger(levels_ + 1);
    bigger.next_seq_ = next_seq_;
    bigger.stage_ops_ = stage_ops_;
    for (std::size_t i = 1; i <= capacity_index_; ++i) {
      if (valid_[i]) bigger.insert_with_key(keys_[i], std::move(values_[i]));
    }
    *this = std::move(bigger);
  }

  void insert_with_key(key_type key, Value value) {
    std::size_t node = 1;
    key_type carry_key = key;
    Value carry_value = std::move(value);
    while (true) {
      --holes_[node];
      if (!valid_[node]) {
        keys_[node] = carry_key;
        values_[node] = std::move(carry_value);
        valid_[node] = true;
        break;
      }
      if (carry_key < keys_[node]) {
        std::swap(carry_key, keys_[node]);
        std::swap(carry_value, values_[node]);
      }
      const std::size_t l = 2 * node;
      node = (holes_[l] > 0) ? l : 2 * node + 1;
    }
    ++size_;
  }

  int levels_ = 0;
  std::size_t capacity_ = 0;
  std::size_t capacity_index_ = 0;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t stage_ops_ = 0;
  std::vector<key_type> keys_;
  std::vector<Value> values_;
  std::vector<char> valid_;
  std::vector<std::int64_t> holes_;
};

}  // namespace ups::core
