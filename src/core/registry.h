// Central scheduler registry: names every algorithm in the paper and builds
// per-port scheduler factories for networks, including mixed assignments
// (e.g. half the routers FQ, half FIFO+, as in Table 1's last row).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/network.h"

namespace ups::core {

enum class sched_kind : std::uint8_t {
  fifo,
  lifo,
  random,
  static_priority,   // rank = packet.priority
  sjf,               // rank = flow size
  sjf_pfabric,       // SJF with pFabric starvation prevention
  srpt_pfabric,      // SRPT with pFabric starvation prevention
  fq,                // virtual-finish-time fair queueing
  drr,               // deficit round robin
  virtual_clock,     // Zhang's Virtual Clock [32]
  fifo_plus,         // CSZ FIFO+
  fq_fifo_plus_mix,  // half the routers FQ, half FIFO+ (Table 1 row 5)
  lstf,              // non-preemptive LSTF
  lstf_preemptive,
  lstf_pheap,        // LSTF on the §5 pipelined heap (unbounded buffers)
  edf,
  omniscient,
};

[[nodiscard]] const char* to_string(sched_kind k);
[[nodiscard]] sched_kind sched_kind_from(const std::string& name);

// Builds a factory assigning `kind` to every port. `net` is only required
// for EDF (tmin lookups) and may be null otherwise; it must outlive the
// produced network. The seed feeds per-port random streams.
[[nodiscard]] net::scheduler_factory make_factory(sched_kind kind,
                                                  std::uint64_t seed,
                                                  const net::network* net =
                                                      nullptr);

// Mixed assignment: `pick` chooses the algorithm per port.
[[nodiscard]] net::scheduler_factory make_mixed_factory(
    std::function<sched_kind(const net::port_info&)> pick, std::uint64_t seed,
    const net::network* net = nullptr);

}  // namespace ups::core
