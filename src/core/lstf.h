// Least Slack Time First — the paper's near-universal scheduler.
//
// Each packet carries its remaining slack in the header; the slack is
// initialized at the ingress (by the replay engine or by a §3 heuristic) and
// rewritten at every hop: the owning port subtracts the time the packet
// waited. Per Appendix D the remaining slack of the packet's *last bit* at
// service time t is
//     slack(p, α, t) = slack_in_header + (t_enqueue − t) + T(p, α)
// so ordering by the static per-hop key
//     key = t_enqueue + slack_in_header + T(p, α)
// serves exactly the least-slack packet, and equals the EDF priority of
// Appendix E (tests/test_edf_equiv.cpp verifies the equivalence end-to-end).
//
// The preemptive variant implements the theory's fragmentation model with
// resume semantics: a more urgent arrival pauses the packet in service and
// the remainder re-contends with its original per-hop key.
#pragma once

#include "sched/rank_scheduler.h"
#include "sim/units.h"

namespace ups::core {

class lstf final : public sched::rank_scheduler_base<lstf> {
 public:
  lstf(std::int32_t port_id, sim::bits_per_sec rate, bool preemptive = false,
       bool drop_highest_slack = true)
      : rank_scheduler_base(port_id, drop_highest_slack),
        rate_(rate),
        preemptive_(preemptive) {}

  [[nodiscard]] bool supports_preemption() const noexcept override {
    return preemptive_;
  }

  [[nodiscard]] std::int64_t rank_of(const net::packet& p,
                                     sim::time_ps now) const noexcept {
    const sim::time_ps tx =
        rate_ == sim::kInfiniteRate
            ? 0
            : sim::transmission_time(p.size_bytes, rate_);
    return now + p.slack + tx;
  }

 private:
  sim::bits_per_sec rate_;
  bool preemptive_;
};

}  // namespace ups::core
