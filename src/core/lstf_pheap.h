// LSTF backed by the pipelined heap instead of a balanced tree.
//
// Functionally identical ordering to core::lstf (same per-hop key, same
// FCFS tie-break); exists to demonstrate §5's hardware-feasibility claim
// with the data structure the paper cites, and to let the microbenchmarks
// compare the two backings. Does not support the drop-highest-slack
// eviction (a hardware p-heap is min-extract only), so it is used with
// unbounded buffers — exactly the replay setting.
#pragma once

#include "core/pheap.h"
#include "net/scheduler.h"
#include "sim/units.h"

namespace ups::core {

class lstf_pheap final : public net::scheduler {
 public:
  lstf_pheap(std::int32_t port_id, sim::bits_per_sec rate)
      : port_id_(port_id), rate_(rate) {}

  void enqueue(net::packet_ptr p, sim::time_ps now) override {
    std::int64_t key;
    if (port_id_ >= 0 && p->sched_key_port == port_id_) {
      key = p->sched_key;  // re-enqueue after preemption keeps the rank
    } else {
      const sim::time_ps tx =
          rate_ == sim::kInfiniteRate
              ? 0
              : sim::transmission_time(p->size_bytes, rate_);
      key = now + p->slack + tx;
      p->sched_key = key;
      p->sched_key_port = port_id_;
    }
    bytes_ += p->size_bytes;
    heap_.insert(key, std::move(p));
  }

  net::packet_ptr dequeue(sim::time_ps /*now*/) override {
    if (heap_.empty()) return nullptr;
    net::packet_ptr p = heap_.pop_min();
    bytes_ -= p->size_bytes;
    return p;
  }

  [[nodiscard]] bool empty() const noexcept override { return heap_.empty(); }
  [[nodiscard]] std::size_t packets() const noexcept override {
    return heap_.size();
  }
  [[nodiscard]] std::size_t bytes() const noexcept override { return bytes_; }

  [[nodiscard]] std::optional<std::int64_t> peek_rank() const override {
    if (heap_.empty()) return std::nullopt;
    return heap_.peek_rank();
  }

  [[nodiscard]] const pheap<net::packet_ptr>& heap() const noexcept {
    return heap_;
  }

 private:
  std::int32_t port_id_;
  sim::bits_per_sec rate_;
  std::size_t bytes_ = 0;
  pheap<net::packet_ptr> heap_{8};
};

}  // namespace ups::core
