// Network-wide Earliest Deadline First (Appendix E).
//
// The header carries only the static target output time o(p); each router
// derives a local priority
//     priority(p, α) = o(p) − tmin(p, α, dest) + T(p, α)
// from static topology knowledge. The paper proves this produces exactly
// the same replay schedule as LSTF with dynamic slack; we keep both so the
// equivalence is checkable by construction.
#pragma once

#include "net/network.h"
#include "sched/rank_scheduler.h"
#include "sim/units.h"

namespace ups::core {

class edf final : public sched::rank_scheduler_base<edf> {
 public:
  // `net` must outlive the scheduler; tmin lookups walk the packet's path.
  edf(std::int32_t port_id, const net::network& net, sim::bits_per_sec rate)
      : rank_scheduler_base(port_id, /*drop_highest_rank=*/true),
        net_(net),
        rate_(rate) {}

  [[nodiscard]] std::int64_t rank_of(const net::packet& p,
                                     sim::time_ps /*now*/) const {
    // On arrival at the port of router path[k], p.hop == k + 1.
    const std::size_t here = p.hop - 1;
    const sim::time_ps tx =
        rate_ == sim::kInfiniteRate
            ? 0
            : sim::transmission_time(p.size_bytes, rate_);
    return p.deadline - net_.tmin(p, here) + tx;
  }

 private:
  const net::network& net_;
  sim::bits_per_sec rate_;
};

}  // namespace ups::core
