#include "core/registry.h"

#include <stdexcept>

#include "core/edf.h"
#include "core/lstf.h"
#include "core/lstf_pheap.h"
#include "core/omniscient.h"
#include "sched/drr.h"
#include "sched/fifo.h"
#include "sched/fifo_plus.h"
#include "sched/fq.h"
#include "sched/lifo.h"
#include "sched/pfabric.h"
#include "sched/random_order.h"
#include "sched/sjf.h"
#include "sched/static_priority.h"
#include "sched/virtual_clock.h"
#include "sim/rng.h"

namespace ups::core {

const char* to_string(sched_kind k) {
  switch (k) {
    case sched_kind::fifo: return "FIFO";
    case sched_kind::lifo: return "LIFO";
    case sched_kind::random: return "Random";
    case sched_kind::static_priority: return "Priority";
    case sched_kind::sjf: return "SJF";
    case sched_kind::sjf_pfabric: return "SJF(pFabric)";
    case sched_kind::srpt_pfabric: return "SRPT";
    case sched_kind::fq: return "FQ";
    case sched_kind::drr: return "DRR";
    case sched_kind::virtual_clock: return "VirtualClock";
    case sched_kind::fifo_plus: return "FIFO+";
    case sched_kind::fq_fifo_plus_mix: return "FQ/FIFO+";
    case sched_kind::lstf: return "LSTF";
    case sched_kind::lstf_preemptive: return "LSTF(preempt)";
    case sched_kind::lstf_pheap: return "LSTF(p-heap)";
    case sched_kind::edf: return "EDF";
    case sched_kind::omniscient: return "Omniscient";
  }
  return "?";
}

sched_kind sched_kind_from(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(sched_kind::omniscient); ++i) {
    const auto k = static_cast<sched_kind>(i);
    if (name == to_string(k)) return k;
  }
  throw std::invalid_argument("unknown scheduler: " + name);
}

namespace {

std::unique_ptr<net::scheduler> instantiate(sched_kind kind,
                                            const net::port_info& info,
                                            std::uint64_t seed,
                                            const net::network* net) {
  switch (kind) {
    case sched_kind::fifo:
      return std::make_unique<sched::fifo>();
    case sched_kind::lifo:
      return std::make_unique<sched::lifo>();
    case sched_kind::random:
      return std::make_unique<sched::random_order>(
          sim::rng::derive(seed, 0x9000 + info.port_id));
    case sched_kind::static_priority:
      return std::make_unique<sched::static_priority>(info.port_id, true);
    case sched_kind::sjf:
      return std::make_unique<sched::sjf>(info.port_id, true);
    case sched_kind::sjf_pfabric:
      return std::make_unique<sched::pfabric>(sched::pfabric_mode::sjf);
    case sched_kind::srpt_pfabric:
      return std::make_unique<sched::pfabric>(sched::pfabric_mode::srpt);
    case sched_kind::fq:
      return std::make_unique<sched::fq>(info.rate);
    case sched_kind::drr:
      return std::make_unique<sched::drr>();
    case sched_kind::virtual_clock:
      // Default allocation: an equal share sized for ~10 active flows.
      return std::make_unique<sched::virtual_clock>(
          info.rate == sim::kInfiniteRate ? sim::kGbps : info.rate / 10);
    case sched_kind::fifo_plus:
      return std::make_unique<sched::fifo_plus>(info.port_id, false);
    case sched_kind::fq_fifo_plus_mix:
      // Half the routers run FQ, half FIFO+ (split by node id parity);
      // host NICs pace with FIFO so the mix applies to routers only.
      if (info.from_kind == net::node_kind::host) {
        return std::make_unique<sched::fifo>();
      }
      if (info.from % 2 == 0) {
        return std::make_unique<sched::fq>(info.rate);
      }
      return std::make_unique<sched::fifo_plus>(info.port_id, false);
    case sched_kind::lstf:
      return std::make_unique<lstf>(info.port_id, info.rate, false, true);
    case sched_kind::lstf_preemptive:
      return std::make_unique<lstf>(info.port_id, info.rate, true, true);
    case sched_kind::lstf_pheap:
      return std::make_unique<lstf_pheap>(info.port_id, info.rate);
    case sched_kind::edf:
      if (net == nullptr) {
        throw std::invalid_argument("EDF factory requires a network");
      }
      return std::make_unique<edf>(info.port_id, *net, info.rate);
    case sched_kind::omniscient:
      return std::make_unique<omniscient>(info.port_id);
  }
  throw std::logic_error("unhandled scheduler kind");
}

}  // namespace

net::scheduler_factory make_factory(sched_kind kind, std::uint64_t seed,
                                    const net::network* net) {
  return [kind, seed, net](const net::port_info& info) {
    return instantiate(kind, info, seed, net);
  };
}

net::scheduler_factory make_mixed_factory(
    std::function<sched_kind(const net::port_info&)> pick, std::uint64_t seed,
    const net::network* net) {
  return [pick = std::move(pick), seed, net](const net::port_info& info) {
    return instantiate(pick(info), info, seed, net);
  };
}

}  // namespace ups::core
