// Per-link fault processes: the lossy/adversarial scenario axis.
//
// Three models, attached per directed router->router port at
// network::build() time:
//   bernoulli        iid loss with probability p
//   gilbert_elliott  two-state bursty loss: Good loses with p, Bad with
//                    p_bad, and the state flips with probability `flip`
//                    after every decision (expected burst length 1/flip)
//   jam              adversarial on/off jamming: a packet whose last bit
//                    would cross the wire while (now mod period) <
//                    duty * period is lost. Deterministic in time — no RNG —
//                    with an optional speedup factor that compensates the
//                    router->router link rates (Böhm et al.).
//
// Randomized decisions come from a counter-based generator: each decision
// is a pure hash of (scenario seed, link id, decision index), so a given
// (seed, topology, workload) produces the same drop set no matter which
// dispatch backend runs it or how the work is sharded. Link ids are port
// ids, which are stable because build() creates ports in link-declaration
// order.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace ups::net {

// Where a packet died. `buffer`: evicted or tail-dropped at a full port
// queue. `wire`: consumed by a link fault process after its last bit left
// the transmitter.
enum class drop_kind : std::uint8_t { buffer = 0, wire = 1 };

enum class fault_kind : std::uint8_t {
  none = 0,
  bernoulli,
  gilbert_elliott,
  jam,
};

struct fault_spec {
  fault_kind kind = fault_kind::none;
  double p = 0.0;       // bernoulli loss prob; GE loss prob in Good
  double p_bad = 0.0;   // GE loss prob in Bad
  double flip = 0.0;    // GE per-decision state-flip prob
  sim::time_ps jam_period = 0;  // jam on/off cycle length
  double jam_duty = 0.0;        // fraction of each period jammed
  double jam_speedup = 1.0;     // router-router rate compensation factor

  [[nodiscard]] bool enabled() const noexcept {
    return kind != fault_kind::none;
  }

  // Compact tag for scenario labels, e.g. "bern:0.01", "ge:0.001,0.25,0.1",
  // "jam:100,0.2" (+",s2" when speedup != 1). Empty for `none` so zero-loss
  // labels are byte-identical to pre-fault builds.
  [[nodiscard]] std::string label() const;

  // Parses "bernoulli:p" | "ge:p_g,p_b,r" | "jam:period_us,duty[,speedup]"
  // | "none" | "". The jam period is given in microseconds and converted to
  // picoseconds. Throws std::invalid_argument on malformed input or
  // out-of-range parameters.
  static fault_spec parse(const std::string& s);
};

// Fault process for one directed link. Holds the per-link decision counter
// (and the GE channel state, itself a deterministic function of the
// decision history), so outcomes depend only on (seed, link id, decision
// index) plus — for jam — the simulation clock.
class link_fault {
 public:
  link_fault() = default;
  link_fault(const fault_spec& spec, std::uint64_t seed, std::int32_t link_id)
      : spec_(spec), seed_(seed), link_id_(link_id) {}

  // Decides whether the packet whose last bit leaves this link's
  // transmitter at `now` is lost. Advances the decision counter (and GE
  // state) exactly once per call.
  [[nodiscard]] bool lose(sim::time_ps now);

  [[nodiscard]] std::uint64_t decisions() const noexcept { return counter_; }

 private:
  // Uniform double in [0, 1) for (decision `ctr`, sub-stream `lane`).
  [[nodiscard]] double uniform(std::uint64_t ctr, std::uint64_t lane) const;

  fault_spec spec_;
  std::uint64_t seed_ = 0;
  std::int32_t link_id_ = 0;
  std::uint64_t counter_ = 0;
  bool bad_ = false;  // GE channel state
};

}  // namespace ups::net
