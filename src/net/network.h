// Store-and-forward network: nodes, directed ports, static shortest-path
// routing, packet forwarding, and measurement hooks.
//
// Matches the paper's model (§2.1): the input is a set of packets with
// ingress arrival times and fixed paths; every router runs a per-port
// scheduling algorithm; i(p) is the last-bit arrival at the ingress router
// and o(p) the last-bit departure from the egress router.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/fault.h"
#include "net/flow_control.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/port.h"
#include "net/routing.h"
#include "net/scheduler.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace ups::net {

// Context handed to the scheduler factory for each port, so experiments can
// assign different algorithms to different routers (e.g. half FQ, half
// FIFO+) or treat host NICs specially.
struct port_info {
  std::int32_t port_id;
  node_id from;
  node_id to;
  node_kind from_kind;
  sim::bits_per_sec rate;
};

using scheduler_factory =
    std::function<std::unique_ptr<scheduler>(const port_info&)>;

struct network_hooks {
  // Last bit of p arrived at its ingress router (defines i(p)).
  std::function<void(const packet&, sim::time_ps)> on_ingress;
  // Last bit of p left its egress router (defines o(p)).
  std::function<void(const packet&, sim::time_ps)> on_egress;
  // A packet died: evicted/tail-dropped at a full buffer (`at` = the node
  // whose output port dropped it) or consumed by a link fault process on
  // the wire (`at` = the transmitting node).
  std::function<void(const packet&, node_id at, sim::time_ps, drop_kind)>
      on_drop;
};

struct network_stats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;       // all drops, buffer + wire
  std::uint64_t dropped_wire = 0;  // link-fault (and forced wire) drops only
  // Flow control / backpressure. flow_blocks counts head packets parking on
  // a credit-starved link, flow_resumes the matching unblocks, and
  // flow_stall_time their summed parked duration. The watchdog counters
  // classify its no-progress checks: transient = blocked ports exist but
  // the network made progress since the last check; persistent = a full
  // stuck window passed without progress and without a detectable wait-for
  // cycle (a true cycle throws flow_deadlock_error instead of counting).
  std::uint64_t flow_blocks = 0;
  std::uint64_t flow_resumes = 0;
  sim::time_ps flow_stall_time = 0;
  std::uint64_t watchdog_transient = 0;
  std::uint64_t watchdog_persistent = 0;
};

class network {
 public:
  explicit network(sim::simulator& sim) : sim_(sim) {}
  network(const network&) = delete;
  network& operator=(const network&) = delete;

  // --- construction (before build()) ---
  node_id add_router(std::string name);
  node_id add_host(std::string name);
  // Adds a duplex link (two directed ports once built).
  void add_link(node_id a, node_id b, sim::bits_per_sec rate,
                sim::time_ps prop_delay);
  void set_scheduler_factory(scheduler_factory f) { factory_ = std::move(f); }
  // Buffer capacity per port in bytes; <= 0 means unlimited. A packet
  // strictly larger than a finite buffer can never be admitted — it tail-
  // drops even at an idle port — so finite budgets should be >= the MTU.
  void set_buffer_bytes(std::int64_t b) {
    if (built_) {
      throw std::logic_error("network: set_buffer_bytes after build()");
    }
    buffer_bytes_ = b;
  }
  void set_preemption(bool on) { preemption_ = on; }
  // Attaches a fault process to every router->router port at build() time,
  // seeded so drop decisions are a pure function of (seed, port id,
  // decision index). Host uplinks stay reliable: every traced packet still
  // has a well-defined i(p).
  void set_fault(const fault_spec& f, std::uint64_t seed);
  [[nodiscard]] const fault_spec& fault() const noexcept { return fault_; }
  // Attaches credit-based flow control to every router->router port at
  // build() time (host uplinks stay ungoverned so i(p) is always
  // well-defined). Fully deterministic: no RNG, so stall patterns are
  // identical across dispatch backends.
  void set_flow(const flow_spec& f);
  [[nodiscard]] const flow_spec& flow() const noexcept { return flow_; }
  // Materializes ports. Must be called exactly once before any traffic.
  void build();

  // --- traffic entry points ---
  // Sends from the source host NIC (normal operation: host link pacing
  // included, path stamped from static routing if absent).
  void send_from_host(packet_ptr p);
  // Replay injection: delivers p at its ingress router at time `at`,
  // bypassing the host link exactly as the paper's replay model does.
  void inject_at_ingress(packet_ptr p, sim::time_ps at);

  // --- forwarding internals (used by port) ---
  void transmitted(packet_ptr p, const port& from_port, sim::time_ps now);
  void count_drop(const packet& p, node_id at, sim::time_ps now,
                  drop_kind kind);
  // A governed port's head packet parked for lack of credits: count it and
  // arm the stall watchdog.
  void flow_port_blocked(const port& blocked);
  // The matching unblock, with how long the head sat parked.
  void flow_resumed(sim::time_ps stalled);
  // Returns every credit a packet still holds (called on any drop path so
  // fault+flow combinations cannot leak occupancy and wedge the link).
  void flow_release_all(packet& p);

  // --- lookup ---
  [[nodiscard]] const node& node_at(node_id id) const { return nodes_[id]; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] bool is_router(node_id id) const {
    return nodes_[id].kind == node_kind::router;
  }
  // Directed port from -> to; throws if absent.
  [[nodiscard]] port& port_between(node_id from, node_id to);
  [[nodiscard]] const std::vector<std::unique_ptr<port>>& ports() const {
    return ports_;
  }
  // Router attached to a host.
  [[nodiscard]] node_id attachment(node_id host) const;

  // Router-level shortest path between the routers serving two hosts
  // (weight = propagation delay + 1ps per hop; deterministic tie-breaks).
  // Backed by a dense per-topology (src-router, dst-router) table filled at
  // build(): per-flow lookup is two array indexes, no hashing.
  [[nodiscard]] const std::vector<node_id>& route(node_id src_host,
                                                  node_id dst_host) const;

  // Minimum remaining network traversal time for p from path[from_hop] to
  // egress: per-hop transmission plus inter-router propagation (Appendix A's
  // tmin; excludes the egress link's propagation, matching o(p)).
  [[nodiscard]] sim::time_ps tmin(const packet& p, std::size_t from_hop) const;
  [[nodiscard]] sim::time_ps tmin_from_ingress(const packet& p) const {
    return tmin(p, 0);
  }

  // Arena every traffic source and transport should draw packets from; in
  // steady state packet create/destroy is a freelist pop/push.
  [[nodiscard]] packet_pool& pool() noexcept { return pool_; }

  network_hooks& hooks() noexcept { return hooks_; }
  [[nodiscard]] const network_stats& stats() const noexcept { return stats_; }
  [[nodiscard]] sim::simulator& sim() noexcept { return sim_; }

  // Registers a per-host packet consumer (transport endpoints). Without a
  // handler delivered packets are counted and destroyed.
  void set_host_handler(node_id host, std::function<void(packet_ptr)> h);

 private:
  struct link_spec {
    node_id a;
    node_id b;
    sim::bits_per_sec rate;
    sim::time_ps delay;
  };

  void deliver(packet_ptr p, node_id at);
  // `early`: deliver ahead of same-instant normal events (replay injection).
  void post(packet_ptr p, node_id to, sim::time_ps at, bool early = false);
  [[nodiscard]] const port* find_port(node_id from, node_id to) const;
  // Schedules the delayed credit-return for one (port, bytes) release.
  void flow_schedule_release(std::int32_t port_id, std::int64_t bytes);
  void flow_watchdog_arm();
  void flow_watchdog_check();

  sim::simulator& sim_;
  // Declared before every member that can hold packets (ports_, in_flight_)
  // so it is destroyed last: pooled packets return here on destruction.
  packet_pool pool_;
  std::vector<node> nodes_;
  std::vector<link_spec> links_;
  std::vector<std::unique_ptr<port>> ports_;
  // per-node outgoing ports: (to, index into ports_)
  std::vector<std::vector<std::pair<node_id, std::int32_t>>> out_ports_;
  scheduler_factory factory_;
  std::int64_t buffer_bytes_ = 0;
  bool preemption_ = false;
  bool built_ = false;
  fault_spec fault_;
  std::uint64_t fault_seed_ = 0;
  std::vector<link_fault> link_faults_;  // indexed by port id; built_ only

  // Flow control: occupancy ledgers indexed by port id (router->router
  // only), plus the stall watchdog. The watchdog arms lazily on the first
  // blocked port, checks every watchdog_interval_ (a few credit RTTs), and
  // classifies: progress since last check = transient backpressure; a full
  // stuck window without progress = persistent stall; a wait-for cycle
  // among blocked routers with no credit return in flight = deadlock
  // (typed throw). flow_progress_ advances on resumes, credit returns,
  // deliveries, and drops.
  flow_spec flow_;
  std::vector<link_flow> link_flows_;        // indexed by port id
  std::vector<std::int32_t> governed_ports_;
  sim::time_ps flow_watchdog_interval_ = 0;
  bool flow_watchdog_armed_ = false;
  std::uint64_t flow_progress_ = 0;
  std::uint64_t flow_watchdog_seen_ = 0;  // progress at last check
  std::uint32_t flow_watchdog_stuck_ = 0;
  std::int64_t flow_returns_in_flight_ = 0;

  // Dense route table replacing the old hashed (src,dst) cache: one row per
  // router with an attached host (the only possible route sources), filled
  // at build() from one Dijkstra tree each. route_table_[router_index_[r0]
  // * router_count_ + router_index_[r1]] is the r0->r1 router path; empty
  // means unreachable (or an uncomputed non-edge row).
  std::vector<std::int32_t> router_index_;  // node_id -> dense router index
  std::size_t router_count_ = 0;
  std::vector<std::vector<node_id>> route_table_;
  std::vector<std::function<void(packet_ptr)>> host_handlers_;

  // in-flight packet arena (packets on the wire between ports)
  std::vector<packet_ptr> in_flight_;
  std::vector<std::size_t> free_slots_;

  network_hooks hooks_;
  network_stats stats_;
};

}  // namespace ups::net
