// Packet model with dynamic packet state (§2.1 of the paper).
//
// The "scheduling header" block mirrors what the paper allows a UPS to carry:
// a slack value rewritten hop by hop (LSTF), a static priority (simple
// priority / SJF / SRPT), a static deadline (EDF), cumulative queueing
// (FIFO+), and — for the omniscient-initialization existence proof — a
// per-hop vector of target departure times. Bookkeeping fields below the
// header are measurement-only and are never consulted by schedulers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/fault.h"
#include "sim/time.h"

namespace ups::net {

using node_id = std::int32_t;
inline constexpr node_id kInvalidNode = -1;

enum class packet_kind : std::uint8_t { data, ack };

struct packet {
  // --- identity ---
  std::uint64_t id = 0;
  std::uint64_t flow_id = 0;
  std::uint32_t seq_in_flow = 0;
  std::uint32_t size_bytes = 0;
  packet_kind kind = packet_kind::data;

  node_id src_host = kInvalidNode;
  node_id dst_host = kInvalidNode;

  // Router-level path: ingress router .. egress router. `hop` is the index
  // of the next router the packet has yet to be delivered to.
  std::vector<node_id> path;
  std::size_t hop = 0;

  // --- scheduling header (dynamic packet state) ---
  sim::time_ps slack = 0;            // LSTF: remaining slack
  std::int64_t priority = 0;         // static priority / SJF / SRPT rank
  sim::time_ps deadline = 0;         // EDF: o(p), never rewritten
  sim::time_ps fifo_plus_wait = 0;   // FIFO+: cumulative queueing delay
  std::vector<sim::time_ps> hop_deadlines;  // omniscient per-hop targets
  std::uint64_t flow_size_bytes = 0;        // stamped at ingress (SJF)
  std::uint64_t remaining_flow_bytes = 0;   // stamped at ingress (SRPT)

  // --- transport header (simplified TCP) ---
  std::uint64_t tseq = 0;  // first byte offset carried by this segment
  std::uint64_t tack = 0;  // cumulative ack (next expected byte)

  // --- per-port scratch used by schedulers and the transmitter ---
  std::int64_t sched_key = 0;        // rank cached by the port's scheduler
  std::int32_t sched_key_port = -1;  // port that owns sched_key
  sim::time_ps tx_remaining = -1;    // <0: not in service at current port
  sim::time_ps port_enqueue_time = 0;

  // --- measurement bookkeeping (not part of any header) ---
  sim::time_ps created_at = 0;      // handed to the source NIC
  sim::time_ps ingress_time = -1;   // last-bit arrival at ingress router, i(p)
  sim::time_ps queueing_delay = 0;  // total waiting across all ports
  std::vector<sim::time_ps> hop_departs;  // last-bit exit per router
  bool record_hops = false;
  // Replay accounting: the recorded o(p) and queueing delay this packet is
  // measured against. The streaming replay engine settles overdue counters
  // at egress, after the packet's record has left the trace cursor, so the
  // reference values must travel with the packet. -1 = not a replay packet.
  sim::time_ps ref_egress_time = -1;
  sim::time_ps ref_queueing_delay = 0;
  // Replay-under-loss: a packet recorded as dropped in the original run is
  // force-dropped at the same hop in replay (wire: leaving path[hop],
  // buffer: at path[hop]'s output queue). -1 = delivered normally.
  std::int32_t forced_drop_hop = -1;
  drop_kind forced_drop_kind = drop_kind::buffer;

  // --- flow-control scratch + stall bookkeeping ---
  // Credit ledger: which governed port's occupancy this packet currently
  // holds (consumed at fresh tx start) and which it held at the previous
  // hop (released once the last bit leaves the downstream router). -1 =
  // no credit held.
  std::int32_t credit_port = -1;
  std::int32_t credit_prev_port = -1;
  // Backpressure measurement: how often and how long this packet sat as a
  // blocked head waiting for downstream credits, and the hop where its
  // single longest wait happened (stall_max is the running max interval
  // backing that choice).
  std::uint32_t stall_count = 0;
  sim::time_ps stall_time = 0;
  std::int32_t stall_hop = -1;
  sim::time_ps stall_max = 0;
  // Replay-under-backpressure: a packet recorded as stalled is re-delayed
  // by its total recorded stall time at its longest-stall hop. -1 = never
  // stalled in the original run.
  std::int32_t forced_stall_hop = -1;
  sim::time_ps forced_stall_time = 0;

  [[nodiscard]] bool at_last_router() const noexcept {
    return hop + 1 >= path.size();
  }

  // Restores a recycled packet to the freshly-constructed state while
  // keeping the capacity of the embedded vectors, so pooled reuse performs
  // no heap allocation. Must cover every field above — scratch fields like
  // sched_key_port and tx_remaining are load-bearing for correctness, not
  // just hygiene.
  void reset() noexcept {
    id = 0;
    flow_id = 0;
    seq_in_flow = 0;
    size_bytes = 0;
    kind = packet_kind::data;
    src_host = kInvalidNode;
    dst_host = kInvalidNode;
    path.clear();
    hop = 0;
    slack = 0;
    priority = 0;
    deadline = 0;
    fifo_plus_wait = 0;
    hop_deadlines.clear();
    flow_size_bytes = 0;
    remaining_flow_bytes = 0;
    tseq = 0;
    tack = 0;
    sched_key = 0;
    sched_key_port = -1;
    tx_remaining = -1;
    port_enqueue_time = 0;
    created_at = 0;
    ingress_time = -1;
    queueing_delay = 0;
    hop_departs.clear();
    record_hops = false;
    ref_egress_time = -1;
    ref_queueing_delay = 0;
    forced_drop_hop = -1;
    forced_drop_kind = drop_kind::buffer;
    credit_port = -1;
    credit_prev_port = -1;
    stall_count = 0;
    stall_time = 0;
    stall_hop = -1;
    stall_max = 0;
    forced_stall_hop = -1;
    forced_stall_time = 0;
  }
};

class packet_pool;

// Deleter for pooled packets: returns the packet to its owning pool, or
// frees it outright when it was created without one (tests, ad-hoc tools).
// Defined in packet_pool.cpp so that packet.h stays dependency-free.
struct packet_recycler {
  packet_pool* pool = nullptr;
  void operator()(packet* p) const noexcept;
};

using packet_ptr = std::unique_ptr<packet, packet_recycler>;

// Creates an unpooled packet (destroyed with delete). Hot paths should use
// packet_pool::make() instead; this exists for tests and one-off tooling.
[[nodiscard]] inline packet_ptr make_packet() {
  return packet_ptr(new packet, packet_recycler{});
}

}  // namespace ups::net
