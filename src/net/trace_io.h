// Schedule trace serialization.
//
// Text format, one packet per line, so recorded schedules can be saved,
// diffed, and replayed across runs or shipped to other tools:
//
//   ups-trace v1
//   <id> <flow> <seq> <size> <src> <dst> <i(p)> <o(p)> <qdelay>
//       <flowsize> <npath> <hop0> ... <ndeparts> <d0> ...
#pragma once

#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "net/trace.h"
#include "net/trace_binary.h"  // trace_access, sniffed binary cursors

namespace ups::net {

void write_trace(std::ostream& os, const trace& t);
[[nodiscard]] trace read_trace(std::istream& is);

// Streaming v1 emission: header (magic + declared count) then one record
// per call. write_trace() is the batch wrapper; the pieces are exposed so a
// binary -> text converter can stream a trace it never materializes (the
// caller knows the count upfront from the binary header).
void write_trace_header(std::ostream& os, std::size_t record_count);
void write_trace_record(std::ostream& os, const packet_record& r);

void save_trace(const std::string& path, const trace& t);
[[nodiscard]] trace load_trace(const std::string& path);

// Streaming reader: parses one record per next() call into storage reused
// across calls, so walking a trace file needs O(1) memory regardless of its
// length. Yields records in file order; pair with a file written from a
// sort_by_ingress()ed trace when the consumer (the streaming replay engine)
// requires ingress-time order. A declared header count that disagrees with
// the records actually present — too few (truncation) or too many
// (trailing records) — throws trace_format_error.
class trace_stream_reader final : public trace_cursor {
 public:
  // Reads and validates the header; `is` must outlive the reader.
  explicit trace_stream_reader(std::istream& is);
  // Convenience: opens and owns the file stream.
  explicit trace_stream_reader(const std::string& path);

  [[nodiscard]] const packet_record* next() override;
  std::size_t next_run(std::vector<const packet_record*>& out) override;
  [[nodiscard]] std::size_t size_hint() const noexcept override {
    return declared_;
  }
  // Records handed out so far.
  [[nodiscard]] std::size_t read() const noexcept { return read_; }

 private:
  void read_header();
  // Parses the next record into lookahead_ (one-record lookahead powers
  // next_run's same-instant batching); false at end of trace, after
  // verifying nothing follows the declared count.
  bool fill_lookahead();

  std::ifstream owned_;
  std::istream* is_;
  std::size_t declared_ = 0;
  std::size_t parsed_ = 0;  // records consumed from the stream
  std::size_t read_ = 0;    // records handed out
  bool has_lookahead_ = false;
  bool checked_trailing_ = false;
  packet_record lookahead_;
  packet_record rec_;                 // next()'s reused hand-out slot
  std::vector<packet_record> slots_;  // next_run()'s reused run storage
};

// Opens the right cursor for an on-disk trace by sniffing its leading
// bytes: a block-decoding trace_v3_cursor for v3, a zero-copy
// trace_mmap_cursor for the v2 binary format (both yield ingress order), a
// trace_stream_reader for v1 text (yields file order — pair with a
// sort_by_ingress()ed file for replay). `access` tunes the page-cache
// advice for the binary cursors (sequential drain vs block seeks) and is
// ignored for text.
[[nodiscard]] std::unique_ptr<trace_cursor> open_trace_cursor(
    const std::string& path,
    trace_access access = trace_access::sequential);

// Whether an on-disk trace (any format) carries drop records — what a
// streaming converter needs to know up front to pick the target layout
// (v3 writes a wider column set for lossy traces). O(header) for v3;
// a record walk for v2/v1.
[[nodiscard]] bool trace_file_has_drop_records(const std::string& path);

// Same sniff for stall records (backpressured originals): v3 answers off
// the header column count, v2/v1 walk the records.
[[nodiscard]] bool trace_file_has_stall_records(const std::string& path);

}  // namespace ups::net
