// Schedule trace serialization.
//
// Text format, one packet per line, so recorded schedules can be saved,
// diffed, and replayed across runs or shipped to other tools:
//
//   ups-trace v1
//   <id> <flow> <seq> <size> <src> <dst> <i(p)> <o(p)> <qdelay>
//       <flowsize> <npath> <hop0> ... <ndeparts> <d0> ...
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>

#include "net/trace.h"

namespace ups::net {

void write_trace(std::ostream& os, const trace& t);
[[nodiscard]] trace read_trace(std::istream& is);

void save_trace(const std::string& path, const trace& t);
[[nodiscard]] trace load_trace(const std::string& path);

// Streaming reader: parses one record per next() call into storage reused
// across calls, so walking a trace file needs O(1) memory regardless of its
// length. Yields records in file order; pair with a file written from a
// sort_by_ingress()ed trace when the consumer (the streaming replay engine)
// requires ingress-time order.
class trace_stream_reader final : public trace_cursor {
 public:
  // Reads and validates the header; `is` must outlive the reader.
  explicit trace_stream_reader(std::istream& is);
  // Convenience: opens and owns the file stream.
  explicit trace_stream_reader(const std::string& path);

  [[nodiscard]] const packet_record* next() override;
  [[nodiscard]] std::size_t size_hint() const noexcept override {
    return declared_;
  }
  // Records handed out so far.
  [[nodiscard]] std::size_t read() const noexcept { return read_; }

 private:
  void read_header();

  std::ifstream owned_;
  std::istream* is_;
  std::size_t declared_ = 0;
  std::size_t read_ = 0;
  packet_record rec_;
};

}  // namespace ups::net
