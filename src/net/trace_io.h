// Schedule trace serialization.
//
// Text format, one packet per line, so recorded schedules can be saved,
// diffed, and replayed across runs or shipped to other tools:
//
//   ups-trace v1
//   <id> <flow> <seq> <size> <src> <dst> <i(p)> <o(p)> <qdelay>
//       <flowsize> <npath> <hop0> ... <ndeparts> <d0> ...
#pragma once

#include <iosfwd>
#include <string>

#include "net/trace.h"

namespace ups::net {

void write_trace(std::ostream& os, const trace& t);
[[nodiscard]] trace read_trace(std::istream& is);

void save_trace(const std::string& path, const trace& t);
[[nodiscard]] trace load_trace(const std::string& path);

}  // namespace ups::net
