// Schedule traces: the record side of the paper's replay framework.
//
// A trace is the paper's "schedule": {(path(p), i(p), o(p))} for every
// packet, plus the measurement extras the evaluation needs (total queueing
// delay for Figure 1, per-hop departures for omniscient initialization).
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "net/packet.h"
#include "sim/time.h"

namespace ups::net {

struct packet_record {
  std::uint64_t id = 0;
  std::uint64_t flow_id = 0;
  std::uint32_t seq_in_flow = 0;
  std::uint32_t size_bytes = 0;
  node_id src_host = kInvalidNode;
  node_id dst_host = kInvalidNode;
  std::vector<node_id> path;
  sim::time_ps ingress_time = -1;  // i(p)
  sim::time_ps egress_time = -1;   // o(p)
  sim::time_ps queueing_delay = 0;
  std::uint64_t flow_size_bytes = 0;
  std::vector<sim::time_ps> hop_departs;  // per-router last-bit exits
};

struct trace {
  std::vector<packet_record> packets;
};

// Hooks a network's egress callback and accumulates one record per packet.
// Keep the recorder alive for the duration of the simulation.
class trace_recorder {
 public:
  // with_hop_times: also capture per-router departure times (needed only by
  // omniscient-initialization experiments; costs memory).
  explicit trace_recorder(network& net, bool with_hop_times = false);

  [[nodiscard]] trace take() { return std::move(result_); }
  [[nodiscard]] const trace& current() const noexcept { return result_; }
  [[nodiscard]] bool with_hop_times() const noexcept {
    return with_hop_times_;
  }

 private:
  bool with_hop_times_;
  trace result_;
};

}  // namespace ups::net
