// Schedule traces: the record side of the paper's replay framework.
//
// A trace is the paper's "schedule": {(path(p), i(p), o(p))} for every
// packet, plus the measurement extras the evaluation needs (total queueing
// delay for Figure 1, per-hop departures for omniscient initialization).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/network.h"
#include "net/packet.h"
#include "sim/time.h"

namespace ups::net {

// Thrown by every trace reader — text and binary — on malformed input: bad
// magic, unsupported version, truncation (including mid-record EOF), a
// declared record count that disagrees with the records actually present,
// or a footer index out of ingress order. Derives from std::runtime_error
// so callers that only care about "the trace is unreadable" keep working.
struct trace_format_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct packet_record {
  std::uint64_t id = 0;
  std::uint64_t flow_id = 0;
  std::uint32_t seq_in_flow = 0;
  std::uint32_t size_bytes = 0;
  node_id src_host = kInvalidNode;
  node_id dst_host = kInvalidNode;
  std::vector<node_id> path;
  sim::time_ps ingress_time = -1;  // i(p)
  sim::time_ps egress_time = -1;   // o(p)
  sim::time_ps queueing_delay = 0;
  std::uint64_t flow_size_bytes = 0;
  std::vector<sim::time_ps> hop_departs;  // per-router last-bit exits
  // Drop record (lossy originals): the packet died at path[drop_hop] —
  // evicted at that router's output buffer, or lost on the wire leaving it
  // — at drop_time, and egress_time stays -1. drop_hop < 0: delivered.
  std::int32_t drop_hop = -1;
  drop_kind dropped_kind = drop_kind::buffer;
  sim::time_ps drop_time = -1;
  // Stall record (backpressured originals): the packet sat parked as a
  // blocked head stall_count times for stall_time total, longest at
  // path[stall_hop]'s output port. stall_count == 0: never stalled.
  std::int32_t stall_hop = -1;
  std::uint32_t stall_count = 0;
  sim::time_ps stall_time = 0;

  [[nodiscard]] bool dropped() const noexcept { return drop_hop >= 0; }
  [[nodiscard]] bool stalled() const noexcept { return stall_count > 0; }
};

// Pull-based source of packet records in non-decreasing ingress-time order —
// the contract the streaming replay engine injects against. Implementations
// may own their storage (file readers) or view someone else's (in-memory
// traces); the returned pointer is valid until the next next() call.
class trace_cursor {
 public:
  virtual ~trace_cursor() = default;
  // Next record, or nullptr when exhausted.
  [[nodiscard]] virtual const packet_record* next() = 0;
  // Batched pull: appends to `out` a run of records sharing the next
  // ingress instant and returns how many were appended (0 at end). The
  // replay feeder injects one run per wakeup instead of paying a virtual
  // call + rearm per record. Appended pointers stay valid until the next
  // cursor call, like next(). The base implementation degrades to runs of
  // one (correct for any cursor: the feeder keeps pulling while the next
  // run carries the same instant); concrete cursors override with true
  // batching.
  virtual std::size_t next_run(std::vector<const packet_record*>& out) {
    const packet_record* r = next();
    if (r == nullptr) return 0;
    out.push_back(r);
    return 1;
  }
  // Total records when known up front, 0 otherwise (used only to reserve).
  [[nodiscard]] virtual std::size_t size_hint() const noexcept { return 0; }
};

struct trace;

// Cursor over an in-memory trace, yielding records sorted by
// (ingress_time, position in the trace) without copying them: only an index
// vector is materialized, never a second copy of the packets.
class trace_ingress_cursor final : public trace_cursor {
 public:
  explicit trace_ingress_cursor(const trace& t);

  [[nodiscard]] const packet_record* next() override;
  std::size_t next_run(std::vector<const packet_record*>& out) override;
  [[nodiscard]] std::size_t size_hint() const noexcept override {
    return order_.size();
  }

 private:
  const trace* trace_;
  std::vector<std::uint32_t> order_;
  std::size_t pos_ = 0;
};

struct trace {
  std::vector<packet_record> packets;

  // Streams the trace in ingress-time order (recorders append in egress
  // order, so replay cannot just walk `packets`). Lvalues only: the cursor
  // views this trace's storage, so a cursor off a temporary would dangle.
  [[nodiscard]] trace_ingress_cursor ingress_cursor() const& {
    return trace_ingress_cursor(*this);
  }
  trace_ingress_cursor ingress_cursor() && = delete;
};

// Reorders `packets` in place by (ingress_time, previous position). A trace
// saved after this is streamable by trace_stream_reader + replay without an
// in-memory sort on the consumer side.
void sort_by_ingress(trace& t);

// Hooks a network's egress callback and accumulates one record per packet.
// Keep the recorder alive for the duration of the simulation.
class trace_recorder {
 public:
  // with_hop_times: also capture per-router departure times (needed only by
  // omniscient-initialization experiments; costs memory).
  explicit trace_recorder(network& net, bool with_hop_times = false);

  [[nodiscard]] trace take() { return std::move(result_); }
  [[nodiscard]] const trace& current() const noexcept { return result_; }
  [[nodiscard]] bool with_hop_times() const noexcept {
    return with_hop_times_;
  }

 private:
  void record(const packet& p, sim::time_ps now, std::int32_t drop_hop,
              drop_kind kind);

  bool with_hop_times_;
  trace result_;
};

}  // namespace ups::net
