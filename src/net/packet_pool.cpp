#include "net/packet_pool.h"

namespace ups::net {

void packet_recycler::operator()(packet* p) const noexcept {
  if (p == nullptr) return;
  if (pool != nullptr) {
    pool->recycle(p);
  } else {
    delete p;
  }
}

}  // namespace ups::net
