// Freelist arena recycling packet objects and their embedded vectors.
//
// Creating a packet through the pool is a freelist pop (or a one-time heap
// allocation while the pool grows toward the workload's high-water mark of
// in-flight packets); destroying a pooled packet_ptr resets the packet —
// clearing the path/hop_deadlines/hop_departs vectors without releasing
// their capacity — and pushes it back. In steady state the packet lifecycle
// therefore performs zero heap allocations per packet-hop, which is what
// the bench_micro_queues allocation hook measures.
//
// The pool must outlive every packet it produced (network declares its pool
// first so members holding packets are destroyed before it). Single-threaded
// like the rest of the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace ups::net {

class packet_pool {
 public:
  packet_pool() = default;
  packet_pool(const packet_pool&) = delete;
  packet_pool& operator=(const packet_pool&) = delete;

  ~packet_pool() {
    for (packet* p : free_) delete p;
  }

  // Acquires a packet in the freshly-constructed state, recycled when
  // possible. The returned pointer's deleter routes destruction back here.
  [[nodiscard]] packet_ptr make() {
    packet* p;
    if (free_.empty()) {
      p = new packet;
      ++created_;
    } else {
      p = free_.back();
      free_.pop_back();
    }
    ++live_;
    return packet_ptr(p, packet_recycler{this});
  }

  // Returns a packet to the freelist. Called by packet_recycler; not meant
  // for direct use.
  void recycle(packet* p) noexcept {
    p->reset();
    ++recycled_;
    --live_;
    // Growing the freelist can in principle throw; fall back to freeing.
    try {
      free_.push_back(p);
    } catch (...) {
      delete p;
      --created_;
    }
  }

  // Packets currently out in the simulation.
  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  // Packets parked in the freelist, ready for reuse.
  [[nodiscard]] std::size_t pooled() const noexcept { return free_.size(); }
  // Distinct packet objects ever heap-allocated (the high-water mark).
  [[nodiscard]] std::uint64_t created() const noexcept { return created_; }
  // Total recycle operations (≈ packets served without an allocation).
  [[nodiscard]] std::uint64_t recycled() const noexcept { return recycled_; }

 private:
  std::vector<packet*> free_;
  std::size_t live_ = 0;
  std::uint64_t created_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace ups::net
