#include "net/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ups::net {

namespace {
constexpr const char* kMagic = "ups-trace v1";
}

void write_trace(std::ostream& os, const trace& t) {
  os << kMagic << "\n" << t.packets.size() << "\n";
  for (const auto& r : t.packets) {
    os << r.id << ' ' << r.flow_id << ' ' << r.seq_in_flow << ' '
       << r.size_bytes << ' ' << r.src_host << ' ' << r.dst_host << ' '
       << r.ingress_time << ' ' << r.egress_time << ' ' << r.queueing_delay
       << ' ' << r.flow_size_bytes << ' ' << r.path.size();
    for (const auto n : r.path) os << ' ' << n;
    os << ' ' << r.hop_departs.size();
    for (const auto d : r.hop_departs) os << ' ' << d;
    os << '\n';
  }
}

trace read_trace(std::istream& is) {
  std::string magic;
  std::getline(is, magic);
  if (magic != kMagic) {
    throw std::runtime_error("trace: bad magic line '" + magic + "'");
  }
  std::size_t n = 0;
  is >> n;
  trace t;
  t.packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    packet_record r;
    std::size_t path_len = 0;
    is >> r.id >> r.flow_id >> r.seq_in_flow >> r.size_bytes >> r.src_host >>
        r.dst_host >> r.ingress_time >> r.egress_time >> r.queueing_delay >>
        r.flow_size_bytes >> path_len;
    r.path.resize(path_len);
    for (auto& h : r.path) is >> h;
    std::size_t departs = 0;
    is >> departs;
    r.hop_departs.resize(departs);
    for (auto& d : r.hop_departs) is >> d;
    if (!is) throw std::runtime_error("trace: truncated record");
    t.packets.push_back(std::move(r));
  }
  return t;
}

void save_trace(const std::string& path, const trace& t) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace: cannot open " + path);
  write_trace(os, t);
}

trace load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace: cannot open " + path);
  return read_trace(is);
}

}  // namespace ups::net
