#include "net/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ups::net {

namespace {

constexpr const char* kMagic = "ups-trace v1";

// Parses one packet line into `r`, reusing its vector capacity. Shared by
// the batch loader and the streaming reader so the format lives in one place.
void read_record(std::istream& is, packet_record& r) {
  std::size_t path_len = 0;
  is >> r.id >> r.flow_id >> r.seq_in_flow >> r.size_bytes >> r.src_host >>
      r.dst_host >> r.ingress_time >> r.egress_time >> r.queueing_delay >>
      r.flow_size_bytes >> path_len;
  r.path.resize(path_len);
  for (auto& h : r.path) is >> h;
  std::size_t departs = 0;
  is >> departs;
  r.hop_departs.resize(departs);
  for (auto& d : r.hop_departs) is >> d;
  if (!is) throw std::runtime_error("trace: truncated record");
}

void read_magic(std::istream& is) {
  std::string magic;
  std::getline(is, magic);
  if (magic != kMagic) {
    throw std::runtime_error("trace: bad magic line '" + magic + "'");
  }
}

}  // namespace

void write_trace(std::ostream& os, const trace& t) {
  os << kMagic << "\n" << t.packets.size() << "\n";
  for (const auto& r : t.packets) {
    os << r.id << ' ' << r.flow_id << ' ' << r.seq_in_flow << ' '
       << r.size_bytes << ' ' << r.src_host << ' ' << r.dst_host << ' '
       << r.ingress_time << ' ' << r.egress_time << ' ' << r.queueing_delay
       << ' ' << r.flow_size_bytes << ' ' << r.path.size();
    for (const auto n : r.path) os << ' ' << n;
    os << ' ' << r.hop_departs.size();
    for (const auto d : r.hop_departs) os << ' ' << d;
    os << '\n';
  }
}

trace read_trace(std::istream& is) {
  read_magic(is);
  std::size_t n = 0;
  is >> n;
  trace t;
  t.packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    packet_record r;
    read_record(is, r);
    t.packets.push_back(std::move(r));
  }
  return t;
}

trace_stream_reader::trace_stream_reader(std::istream& is) : is_(&is) {
  read_header();
}

trace_stream_reader::trace_stream_reader(const std::string& path)
    : owned_(path), is_(&owned_) {
  if (!owned_) throw std::runtime_error("trace: cannot open " + path);
  read_header();
}

void trace_stream_reader::read_header() {
  read_magic(*is_);
  *is_ >> declared_;
  if (!*is_) throw std::runtime_error("trace: truncated header");
}

const packet_record* trace_stream_reader::next() {
  if (read_ >= declared_) return nullptr;
  read_record(*is_, rec_);
  ++read_;
  return &rec_;
}

void save_trace(const std::string& path, const trace& t) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace: cannot open " + path);
  write_trace(os, t);
}

trace load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace: cannot open " + path);
  return read_trace(is);
}

}  // namespace ups::net
