#include "net/trace_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "net/trace_binary.h"

namespace ups::net {

namespace {

constexpr const char* kMagic = "ups-trace v1";

// Parses one packet line into `r`, reusing its vector capacity. Shared by
// the batch loader and the streaming reader so the format lives in one place.
void read_record(std::istream& is, packet_record& r) {
  // Reset the optional drop suffix first: `r` is reused across records by
  // the streaming reader, and delivered records carry no suffix to
  // overwrite a stale one.
  r.drop_hop = -1;
  r.dropped_kind = drop_kind::buffer;
  r.drop_time = -1;
  r.stall_hop = -1;
  r.stall_count = 0;
  r.stall_time = 0;
  std::size_t path_len = 0;
  is >> r.id >> r.flow_id >> r.seq_in_flow >> r.size_bytes >> r.src_host >>
      r.dst_host >> r.ingress_time >> r.egress_time >> r.queueing_delay >>
      r.flow_size_bytes >> path_len;
  r.path.resize(path_len);
  for (auto& h : r.path) is >> h;
  std::size_t departs = 0;
  is >> departs;
  r.hop_departs.resize(departs);
  for (auto& d : r.hop_departs) is >> d;
  if (!is) throw trace_format_error("trace: truncated record");
  // Optional drop suffix "D <hop> <kind> <time>" — unambiguous because
  // every other token on a record line is numeric.
  is >> std::ws;
  if (is.peek() == 'D') {
    is.get();
    int kind = 0;
    is >> r.drop_hop >> kind >> r.drop_time;
    if (!is) throw trace_format_error("trace: truncated drop record");
    if (r.drop_hop < 0 ||
        static_cast<std::size_t>(r.drop_hop) >= r.path.size() ||
        (kind != 0 && kind != 1)) {
      throw trace_format_error("trace: malformed drop record");
    }
    r.dropped_kind = static_cast<drop_kind>(kind);
  }
  // Optional stall suffix "S <hop> <count> <time>", after the drop suffix
  // when both are present.
  is >> std::ws;
  if (is.peek() == 'S') {
    is.get();
    is >> r.stall_hop >> r.stall_count >> r.stall_time;
    if (!is) throw trace_format_error("trace: truncated stall record");
    if (r.stall_hop < 0 ||
        static_cast<std::size_t>(r.stall_hop) >= r.path.size() ||
        r.stall_count == 0 || r.stall_time < 0) {
      throw trace_format_error("trace: malformed stall record");
    }
  }
}

void read_magic(std::istream& is) {
  std::string magic;
  std::getline(is, magic);
  if (magic != kMagic) {
    throw trace_format_error("trace: bad magic line '" + magic + "'");
  }
}

// The declared-count integrity check shared by both text readers: after the
// declared records, nothing but whitespace may remain. A file holding more
// records than its header promises replays differently depending on which
// reader consumed it — that is corruption, not slack to ignore.
void expect_clean_end(std::istream& is) {
  is >> std::ws;
  if (is.peek() != std::istream::traits_type::eof()) {
    throw trace_format_error(
        "trace: file holds more records than the declared count");
  }
}

}  // namespace

void write_trace_header(std::ostream& os, std::size_t record_count) {
  os << kMagic << "\n" << record_count << "\n";
}

void write_trace_record(std::ostream& os, const packet_record& r) {
  os << r.id << ' ' << r.flow_id << ' ' << r.seq_in_flow << ' '
     << r.size_bytes << ' ' << r.src_host << ' ' << r.dst_host << ' '
     << r.ingress_time << ' ' << r.egress_time << ' ' << r.queueing_delay
     << ' ' << r.flow_size_bytes << ' ' << r.path.size();
  for (const auto n : r.path) os << ' ' << n;
  os << ' ' << r.hop_departs.size();
  for (const auto d : r.hop_departs) os << ' ' << d;
  if (r.dropped()) {
    os << " D " << r.drop_hop << ' ' << static_cast<int>(r.dropped_kind)
       << ' ' << r.drop_time;
  }
  if (r.stalled()) {
    os << " S " << r.stall_hop << ' ' << r.stall_count << ' ' << r.stall_time;
  }
  os << '\n';
}

void write_trace(std::ostream& os, const trace& t) {
  write_trace_header(os, t.packets.size());
  for (const auto& r : t.packets) write_trace_record(os, r);
}

trace read_trace(std::istream& is) {
  read_magic(is);
  std::size_t n = 0;
  is >> n;
  trace t;
  t.packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    packet_record r;
    read_record(is, r);
    t.packets.push_back(std::move(r));
  }
  expect_clean_end(is);
  return t;
}

trace_stream_reader::trace_stream_reader(std::istream& is) : is_(&is) {
  read_header();
}

trace_stream_reader::trace_stream_reader(const std::string& path)
    : owned_(path), is_(&owned_) {
  if (!owned_) throw std::runtime_error("trace: cannot open " + path);
  read_header();
}

void trace_stream_reader::read_header() {
  read_magic(*is_);
  *is_ >> declared_;
  if (!*is_) throw trace_format_error("trace: truncated header");
}

bool trace_stream_reader::fill_lookahead() {
  if (has_lookahead_) return true;
  if (parsed_ >= declared_) {
    if (!checked_trailing_) {
      checked_trailing_ = true;
      expect_clean_end(*is_);
    }
    return false;
  }
  read_record(*is_, lookahead_);
  ++parsed_;
  has_lookahead_ = true;
  return true;
}

const packet_record* trace_stream_reader::next() {
  if (!fill_lookahead()) return nullptr;
  // Swap rather than copy: both records keep their warmed vector capacity,
  // so the steady-state parse loop never allocates.
  std::swap(rec_, lookahead_);
  has_lookahead_ = false;
  ++read_;
  return &rec_;
}

std::size_t trace_stream_reader::next_run(
    std::vector<const packet_record*>& out) {
  if (!fill_lookahead()) return 0;
  const sim::time_ps t = lookahead_.ingress_time;
  std::size_t n = 0;
  do {
    if (n == slots_.size()) slots_.emplace_back();
    std::swap(slots_[n], lookahead_);
    has_lookahead_ = false;
    ++read_;
    ++n;
  } while (fill_lookahead() && lookahead_.ingress_time == t);
  // Publish pointers only after the run is complete: growing slots_ above
  // may reallocate and would dangle anything pushed earlier.
  for (std::size_t i = 0; i < n; ++i) out.push_back(&slots_[i]);
  return n;
}

void save_trace(const std::string& path, const trace& t) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace: cannot open " + path);
  write_trace(os, t);
}

trace load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace: cannot open " + path);
  return read_trace(is);
}

std::unique_ptr<trace_cursor> open_trace_cursor(const std::string& path,
                                                trace_access access) {
  if (is_trace_v3_file(path)) {
    return std::make_unique<trace_v3_cursor>(path, access);
  }
  if (is_trace_v2_file(path)) {
    return std::make_unique<trace_mmap_cursor>(path, access);
  }
  // Not binary: hand it to the text reader, whose magic check produces the
  // error for anything that is not a trace at all.
  return std::make_unique<trace_stream_reader>(path);
}

bool trace_file_has_drop_records(const std::string& path) {
  if (is_trace_v3_file(path)) {
    // v3 answers off the header: only wide-column files can hold drops.
    trace_v3_cursor cur(path, trace_access::random);
    return cur.column_count() >= kTraceV3DropColumnCount;
  }
  auto cur = open_trace_cursor(path);
  while (const packet_record* r = cur->next()) {
    if (r->dropped()) return true;
  }
  return false;
}

bool trace_file_has_stall_records(const std::string& path) {
  if (is_trace_v3_file(path)) {
    trace_v3_cursor cur(path, trace_access::random);
    return cur.column_count() >= kTraceV3StallColumnCount;
  }
  auto cur = open_trace_cursor(path);
  while (const packet_record* r = cur->next()) {
    if (r->stalled()) return true;
  }
  return false;
}

}  // namespace ups::net
