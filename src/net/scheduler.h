// Abstract per-port packet scheduler.
//
// A scheduler is a pure ordering policy over queued packets; the owning port
// performs all transmission timing and slack bookkeeping. Schedulers may use
// packet::sched_key / sched_key_port as scratch so that a packet re-enqueued
// after preemption keeps the rank it was assigned on arrival at this port.
#pragma once

#include <cstddef>
#include <optional>

#include "net/packet.h"
#include "sim/time.h"

namespace ups::net {

class scheduler {
 public:
  virtual ~scheduler() = default;

  virtual void enqueue(packet_ptr p, sim::time_ps now) = 0;

  // Removes and returns the next packet to serve; nullptr when empty.
  virtual packet_ptr dequeue(sim::time_ps now) = 0;

  [[nodiscard]] virtual bool empty() const noexcept = 0;
  [[nodiscard]] virtual std::size_t packets() const noexcept = 0;
  [[nodiscard]] virtual std::size_t bytes() const noexcept = 0;

  // Buffer overflow: called when `incoming` wants to enter a full buffer.
  // Return the queued packet to evict in its favour, or nullptr to drop the
  // incoming packet itself (drop-tail, the default).
  virtual packet_ptr evict_for(const packet& incoming, sim::time_ps now) {
    (void)incoming;
    (void)now;
    return nullptr;
  }

  // Preemption: rank of the most urgent queued packet (lower = more urgent),
  // comparable against packet::sched_key of the packet in service. Only
  // meaningful when supports_preemption() is true.
  [[nodiscard]] virtual bool supports_preemption() const noexcept {
    return false;
  }
  [[nodiscard]] virtual std::optional<std::int64_t> peek_rank() const {
    return std::nullopt;
  }
};

}  // namespace ups::net
