// Binary schedule-trace formats: `ups-trace v2b` and `ups-trace v3`.
//
// The text format (trace_io.h) is the diffable interchange representation;
// these are the replay representations. Text parsing dominates disk replay —
// every field costs an istream round-trip — while a fixed-layout record
// costs a handful of unaligned loads, so a v2 file mmaps and replays
// I/O-bound, and multiple shard workers can walk the same read-only mapping
// without a per-worker copy of the trace. v3 trades v2's fixed 72-byte
// record prefix for block-structured delta-varint columns: ~3x smaller on
// WAN traces and decoded in tight per-field loops, which is what keeps the
// disk lane the fast path once a trace no longer fits in page cache.
//
// v2 on-disk layout (all integers little-endian, no padding):
//
//   header   32 bytes
//     0   8  magic            "UPSTRCv2"
//     8   4  version          2 (kTraceV2Version)
//     12  4  header_bytes     32
//     16  8  record_count
//     24  8  index_offset     first byte of the footer index; records
//                             occupy [32, index_offset)
//   records  back to back from byte 32, each:
//     u32  payload_len        bytes after this prefix;
//                             == 72 + 4*path_len + 8*departs_len
//                                (+ 16 when a drop suffix follows)
//     u64  id        u64 flow_id      u32 seq_in_flow   u32 size_bytes
//     i32  src_host  i32 dst_host
//     i64  ingress_time        i64 egress_time   i64 queueing_delay
//     u64  flow_size_bytes
//     u32  path_len  u32 departs_len
//     i32  path[path_len]      i64 hop_departs[departs_len]
//     optional drop suffix (only for records of packets lost in the
//     original run; its presence is exactly the extra 16 payload bytes):
//       i32  drop_hop   u32 drop_kind (0 buffer, 1 wire)   i64 drop_time
//     optional stall suffix (only for records of packets that parked as a
//     blocked head under flow control; follows the drop suffix when both
//     are present and is sniffed by its 20 extra payload bytes + tag):
//       u32  tag "STLL"   i32 stall_hop   u32 stall_count   i64 stall_time
//   footer index at index_offset
//     u64  offsets[record_count]   byte offset of each record's length
//                                  prefix, sorted by (ingress_time, offset)
//
// File size must equal index_offset + 8*record_count exactly. The footer
// index is what lets replay walk a recorder-ordered (egress-time) file in
// ingress order with zero re-sorting; readers verify the order and throw
// trace_format_error on violation rather than misreplaying.
//
// v3 on-disk layout (all integers little-endian, varints LEB128):
//
//   header   64 bytes
//     0   8  magic            "UPSTRCv3"
//     8   4  version          3 (kTraceV3Version)
//     12  4  header_bytes     64
//     16  8  record_count
//     24  8  block_count
//     32  8  data_offset      == 64 + 32*index_capacity
//     40  8  index_capacity   index slots reserved (>= block_count)
//     48  4  records_per_block
//     52  4  column_count     0 (legacy, meaning 14) or the number of
//                             per-block columns; lossy traces write 16
//                             (the 14 base columns + dropinfo + dtime),
//                             backpressured traces 18 (those 16 +
//                             stallinfo + stime)
//     56  8  reserved (zero)
//   block index directly after the header (NOT a footer): one 32-byte
//   entry per block, so a reader seeks mid-file after touching only the
//   head of the file —
//     u64  offset          first byte of the block
//     u64  bytes           total block size (header + columns)
//     i64  min_ingress     == the block's first record's ingress time
//     i64  max_ingress     == the block's last record's ingress time
//   blocks back to back from data_offset, each:
//     block header  24 + 4*column_count bytes (80 legacy, 88 lossy,
//                   96 backpressured)
//       u32  record_count   in (0, records_per_block]
//       u32  block_bytes    == the index entry's `bytes`
//       i64  base_ingress   == the index entry's min_ingress
//       i64  max_ingress    == the index entry's max_ingress
//       u32  col_bytes[column_count]  per-column payload sizes; their sum
//                           + the block header size must equal block_bytes
//     column payloads, concatenated in column order (see
//     kTraceV3ColumnNames): each column is one varint stream holding
//     `record_count` values (path/departs data columns hold as many values
//     as the length columns declare). Encodings:
//       ingress        unsigned delta from the previous record (the first
//                      record's delta from base_ingress must be 0)
//       egress         zigzag(egress - ingress)
//       id, flow       zigzag of the wrapping u64 delta from the previous
//                      record (0 before the block's first record)
//       seq, size,
//       flowsz, plen,
//       dlen           plain varint
//       src, dst       zigzag
//       qdelay         zigzag
//       path data      zigzag per hop
//       departs data   zigzag delta chain seeded from the record's ingress
//       dropinfo       (16+-column files only) plain varint; 0 for a
//                      delivered record, else ((drop_hop + 1) << 2) | kind
//       dtime          (16+-column files only) zigzag(drop_time - ingress);
//                      0 for a delivered record
//       stallinfo      (18-column files only) plain varint; 0 for a
//                      never-stalled record, else
//                      (stall_count << 16) | (stall_hop + 1)
//       stime          (18-column files only) plain varint of the total
//                      stalled picoseconds; 0 for a never-stalled record
//
// Records are stored in non-decreasing ingress order (the writer enforces
// it), so the block index IS the seek structure: binary-search min/max
// bounds, decode that block, go — no footer, no per-record index. Every
// delta chain resets at a block boundary, so any block decodes standalone.
// File size must equal data_offset plus the sum of the indexed block sizes
// exactly; all structural damage — bad bounds, column over/underrun, varint
// truncation mid-block, misordered blocks — throws trace_format_error.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "net/trace.h"

namespace ups::net {

inline constexpr char kTraceV2Magic[8] = {'U', 'P', 'S', 'T',
                                          'R', 'C', 'v', '2'};
inline constexpr std::uint32_t kTraceV2Version = 2;
inline constexpr std::uint32_t kTraceV2HeaderBytes = 32;
// Fixed (non-array) payload bytes of one record.
inline constexpr std::uint32_t kTraceV2FixedPayloadBytes = 72;
// Optional per-record drop suffix (i32 drop_hop, u32 drop_kind,
// i64 drop_time); present exactly when the payload length says so.
inline constexpr std::uint32_t kTraceV2DropSuffixBytes = 16;
// Optional per-record stall suffix (u32 "STLL" tag, i32 stall_hop,
// u32 stall_count, i64 stall_time); follows the drop suffix when both are
// present. The tag disambiguates a stall-only record (payload + 20) from
// any future 20-byte extension.
inline constexpr std::uint32_t kTraceV2StallSuffixBytes = 20;
inline constexpr std::uint32_t kTraceV2StallTag = 0x4C4C5453;  // "STLL" LE

inline constexpr char kTraceV3Magic[8] = {'U', 'P', 'S', 'T',
                                          'R', 'C', 'v', '3'};
inline constexpr std::uint32_t kTraceV3Version = 3;
inline constexpr std::uint32_t kTraceV3HeaderBytes = 64;
inline constexpr std::uint32_t kTraceV3IndexEntryBytes = 32;
// Block header size of a legacy (14-column) file; the general form is
// 24 + 4 * column_count.
inline constexpr std::uint32_t kTraceV3BlockHeaderBytes = 80;
// Default records per block: large enough to amortize the 80B block header
// + 32B index entry to ~0.03 B/record and give the per-column decode loops
// long runs, small enough that the SoA scratch stays cache-resident.
inline constexpr std::uint32_t kTraceV3BlockRecords = 1024;
// Base column set (zero-loss traces; header column_count 0 means this),
// the widened set lossy traces write (base + dropinfo + dtime), and the
// widest set backpressured traces write (those + stallinfo + stime).
inline constexpr std::uint32_t kTraceV3ColumnCount = 14;
inline constexpr std::uint32_t kTraceV3DropColumnCount = 16;
inline constexpr std::uint32_t kTraceV3StallColumnCount = 18;
inline constexpr std::uint32_t kTraceV3MaxColumnCount = 18;
inline constexpr const char* kTraceV3ColumnNames[kTraceV3MaxColumnCount] = {
    "ingress", "egress", "id",     "flow",  "seq",  "size",  "src",
    "dst",     "qdelay", "flowsz", "plen",  "path", "dlen",  "departs",
    "dropinfo", "dtime",  "stallinfo", "stime"};

[[nodiscard]] constexpr std::uint32_t trace_v3_block_header_bytes(
    std::uint32_t column_count) noexcept {
  return 24 + 4 * column_count;
}

// Page-cache advice for file-backed cursors: a serial replay drains the
// whole mapping front to back (MADV_SEQUENTIAL — aggressive readahead,
// early reclaim), a block-seek consumer jumps via the index
// (MADV_RANDOM — no wasted readahead). Matters once the trace exceeds page
// cache; harmless below that.
//
// `decode_ahead` is `sequential` plus a background decoder: the v3 cursor
// runs block decode on its own thread, feeding next()/next_run() through a
// bounded lock-free ring of decoded-block scratches, so varint decode
// overlaps the simulation loop. Record-for-record identical to the
// synchronous cursor (including seeks, which restart the pipeline at the
// new position, and decode errors, which surface at the block where the
// serial decoder would have thrown). The v2 cursor treats it as
// `sequential`.
enum class trace_access : std::uint8_t { sequential, random, decode_ahead };

// Streaming v2 writer: append records one at a time (the converter and the
// recorder-side pipeline never hold the whole trace), then finish() writes
// the footer ingress index and patches the header counts. The stream must
// be seekable (a file or a stringstream) and outlive the writer. The
// retained per-record state is the 16-byte (ingress, offset) footer-index
// entry — 16 B/record is the price of v2's record-granular index (1.6 GB of
// writer memory at 1e8 records); the v3 writer's block-granular index needs
// only 32 B/block (~0.008 B/record), which is why the large-trace pipeline
// writes v3.
class trace_binary_writer {
 public:
  explicit trace_binary_writer(std::ostream& os);
  trace_binary_writer(const trace_binary_writer&) = delete;
  trace_binary_writer& operator=(const trace_binary_writer&) = delete;

  void append(const packet_record& r);
  // Writes the footer index + final header. Must be called exactly once;
  // appending afterwards is a logic error.
  void finish();

  [[nodiscard]] std::uint64_t written() const noexcept {
    return index_.size();
  }

 private:
  std::ostream* os_;
  std::uint64_t offset_ = kTraceV2HeaderBytes;  // next record's file offset
  std::vector<std::pair<sim::time_ps, std::uint64_t>> index_;
  std::vector<std::uint8_t> buf_;  // reused record serialization scratch
  bool finished_ = false;
};

void write_trace_v2(std::ostream& os, const trace& t);
void save_trace_v2(const std::string& path, const trace& t);

// True when the file starts with the respective magic; false for anything
// else, including files too short to hold one. Throws only when the file
// cannot be opened. The sniffing primitives behind open_trace_cursor and
// tracec's format dispatch.
[[nodiscard]] bool is_trace_v2_file(const std::string& path);
[[nodiscard]] bool is_trace_v3_file(const std::string& path);

// Decodes a whole v2 file into memory in *file* order (the order records
// were appended, i.e. what the recorder produced) — the converter's path
// back to text. Replay should use trace_mmap_cursor instead.
[[nodiscard]] trace load_trace_v2(const std::string& path);
[[nodiscard]] trace read_trace_v2(const std::uint8_t* data, std::size_t size);

// Zero-copy view of one encoded v2 record's fixed prefix: field accessors
// are unaligned little-endian loads straight off the mapping, no
// packet_record is materialized. Used wherever only a few fields are needed
// (the cursor's ingress peek, `tracec inspect`).
class record_view {
 public:
  // `payload` points at the first byte after the length prefix and must
  // cover at least kTraceV2FixedPayloadBytes (the cursor validates).
  explicit record_view(const std::uint8_t* payload) noexcept : p_(payload) {}

  [[nodiscard]] std::uint64_t id() const noexcept;
  [[nodiscard]] std::uint64_t flow_id() const noexcept;
  [[nodiscard]] std::uint32_t seq_in_flow() const noexcept;
  [[nodiscard]] std::uint32_t size_bytes() const noexcept;
  [[nodiscard]] node_id src_host() const noexcept;
  [[nodiscard]] node_id dst_host() const noexcept;
  [[nodiscard]] sim::time_ps ingress_time() const noexcept;
  [[nodiscard]] sim::time_ps egress_time() const noexcept;
  [[nodiscard]] sim::time_ps queueing_delay() const noexcept;
  [[nodiscard]] std::uint64_t flow_size_bytes() const noexcept;
  [[nodiscard]] std::uint32_t path_len() const noexcept;
  [[nodiscard]] std::uint32_t departs_len() const noexcept;

 private:
  const std::uint8_t* p_;
};

// Ingress-ordered trace_cursor over a v2 file: mmaps the file read-only and
// walks the footer index, so replay starts without parsing, sorting, or
// copying the trace. Records are decoded into reused packet_record slots
// (vector capacities persist across records — zero steady-state
// allocation); the same-instant run length is discovered by peeking the
// ingress field straight off the mapping via record_view, so next_run()
// decodes exactly the records it hands out.
//
// Header and index bounds are validated at construction; per-record bounds
// and the index's ingress order are validated as the cursor advances. Every
// violation throws trace_format_error — a truncated or bit-flipped file can
// fail loudly but never reads out of bounds.
class trace_mmap_cursor final : public trace_cursor {
 public:
  // Maps the file (read-only, shared pages: N workers replaying the same
  // trace touch one physical copy) and applies the access advice.
  explicit trace_mmap_cursor(const std::string& path,
                             trace_access access = trace_access::sequential);
  // Borrows an external buffer (tests over mutated images, callers that
  // already hold a mapping). The buffer must outlive the cursor.
  trace_mmap_cursor(const std::uint8_t* data, std::size_t size);
  ~trace_mmap_cursor() override;
  trace_mmap_cursor(const trace_mmap_cursor&) = delete;
  trace_mmap_cursor& operator=(const trace_mmap_cursor&) = delete;

  [[nodiscard]] const packet_record* next() override;
  std::size_t next_run(std::vector<const packet_record*>& out) override;
  [[nodiscard]] std::size_t size_hint() const noexcept override {
    return static_cast<std::size_t>(count_);
  }
  // Records handed out so far.
  [[nodiscard]] std::size_t read() const noexcept {
    return static_cast<std::size_t>(pos_);
  }
  // Fixed-prefix view of the record at index position `i` (ingress order),
  // bounds-checked. Exposed for inspection tools.
  [[nodiscard]] record_view view_at(std::uint64_t i) const;

  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t file_size() const noexcept { return size_; }

 private:
  void validate_header();
  // Byte offset of the record at index position `i` (throws on a
  // out-of-bounds or misordered index entry).
  [[nodiscard]] std::uint64_t record_offset(std::uint64_t i) const;
  // Payload pointer + length check for the record at file offset `off`.
  [[nodiscard]] const std::uint8_t* payload_at(std::uint64_t off,
                                               std::uint32_t& len) const;
  void decode_into(std::uint64_t i, packet_record& r);

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  void* mapping_ = nullptr;  // non-null when this cursor owns an mmap
  std::size_t mapping_size_ = 0;
  std::vector<std::uint8_t> owned_bytes_;  // no-mmap fallback storage

  std::uint64_t count_ = 0;
  std::uint64_t index_offset_ = 0;
  std::uint64_t pos_ = 0;           // next index position to hand out
  sim::time_ps last_ingress_ = -1;  // index-order watermark
  std::vector<packet_record> slots_;  // reused decode targets for one run
};

// --- v3 ----------------------------------------------------------------------

// Streaming v3 writer with O(1 block) record memory: fields of the current
// block accumulate in per-column varint buffers, a full block is flushed as
// one write, and the only cross-block state retained is the 32-byte index
// entry per block. The leading index region is reserved at construction
// (`record_capacity` rounds up to index slots), so the caller must know an
// upper bound on the record count — every producer in this codebase does
// (in-memory traces, the v1 header's declared count, a v2/v3 header's
// record_count). finish() seeks back, fills the index, and patches the
// header; unused reserved slots stay zeroed (32 wasted bytes each, only
// when fewer records arrive than the capacity promised).
//
// Records must be appended in non-decreasing ingress order — the block
// index can only bound-and-seek over a sorted file (v2's per-record footer
// could absorb any order; that is exactly what made it 8 B/record on disk
// and 16 B/record in writer memory). Out-of-order appends throw
// trace_format_error.
class trace_v3_writer {
 public:
  // `with_drops` widens the column set to kTraceV3DropColumnCount so drop
  // records can be stored, and `with_stalls` to kTraceV3StallColumnCount
  // for stall records (stalls imply the drop columns too — the layout is a
  // strict prefix chain); appending a dropped/stalled record to a
  // too-narrow writer throws. Zero-loss zero-stall traces must keep both
  // false so their bytes stay identical to files written before drop and
  // stall support existed.
  trace_v3_writer(std::ostream& os, std::uint64_t record_capacity,
                  std::uint32_t records_per_block = kTraceV3BlockRecords,
                  bool with_drops = false, bool with_stalls = false);
  trace_v3_writer(const trace_v3_writer&) = delete;
  trace_v3_writer& operator=(const trace_v3_writer&) = delete;

  void append(const packet_record& r);
  // Flushes the partial block, writes the leading index, patches the
  // header. Must be called exactly once.
  void finish();

  [[nodiscard]] std::uint64_t written() const noexcept { return written_; }

 private:
  void flush_block();

  std::ostream* os_;
  std::uint32_t records_per_block_;
  std::uint64_t index_capacity_;
  std::uint64_t data_offset_;
  std::uint64_t offset_;  // next block's file offset
  std::uint64_t written_ = 0;

  // Current-block encoder state (delta chains reset every block so blocks
  // decode standalone).
  std::uint32_t in_block_ = 0;
  sim::time_ps block_base_ = 0;
  sim::time_ps prev_ingress_ = 0;
  std::uint64_t prev_id_ = 0;
  std::uint64_t prev_flow_ = 0;
  std::uint32_t ncols_;  // 14 base, 16 with drops, 18 with stalls
  std::array<std::vector<std::uint8_t>, kTraceV3MaxColumnCount> cols_;
  std::vector<std::uint8_t> block_buf_;  // reused assembly scratch

  struct index_entry {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    sim::time_ps min_ingress = 0;
    sim::time_ps max_ingress = 0;
  };
  std::vector<index_entry> index_;       // 32 B per flushed block
  sim::time_ps last_ingress_ = INT64_MIN;  // append-order watermark
  bool finished_ = false;
};

// Whole-trace writers: records are emitted in (ingress_time, position)
// order — the same stable tie-break trace_ingress_cursor uses — so the
// input trace may be in any order and replay outcomes stay byte-identical
// to the v1/v2 paths.
void write_trace_v3(std::ostream& os, const trace& t);
void save_trace_v3(const std::string& path, const trace& t);

// Decodes a whole v3 file into memory in file order (== ingress order for
// v3). The converter's path back to text; replay should use
// trace_v3_cursor.
[[nodiscard]] trace load_trace_v3(const std::string& path);
[[nodiscard]] trace read_trace_v3(const std::uint8_t* data, std::size_t size);

// Ingress-ordered trace_cursor over a v3 file: mmaps the file read-only,
// validates the leading block index once (bounds, ordering, exact file
// size), then decodes one block at a time into reused structure-of-arrays
// scratch — each column is one tight varint loop over a contiguous byte
// run, the shape a compiler can keep in registers and the prefetcher can
// predict. next()/next_run() assemble packet_record slots out of the
// decoded arrays; same-instant run detection is an array scan, not a
// decode. Zero steady-state allocation once the scratch buffers warm.
//
// Because every block decodes standalone and the index lives at the head of
// the file, seek_lower_bound()/seek_to_block() start mid-file after
// touching only the header + index pages — no footer read, which is what
// lets disk shards fan out over one huge mapping.
class trace_v3_cursor final : public trace_cursor {
 public:
  explicit trace_v3_cursor(const std::string& path,
                           trace_access access = trace_access::sequential);
  // Borrows an external buffer (tests over mutated images). The buffer must
  // outlive the cursor.
  trace_v3_cursor(const std::uint8_t* data, std::size_t size);
  ~trace_v3_cursor() override;
  trace_v3_cursor(const trace_v3_cursor&) = delete;
  trace_v3_cursor& operator=(const trace_v3_cursor&) = delete;

  [[nodiscard]] const packet_record* next() override;
  std::size_t next_run(std::vector<const packet_record*>& out) override;
  [[nodiscard]] std::size_t size_hint() const noexcept override {
    return static_cast<std::size_t>(count_);
  }
  // Records handed out since construction or the last seek.
  [[nodiscard]] std::size_t read() const noexcept {
    return static_cast<std::size_t>(served_);
  }

  [[nodiscard]] std::uint64_t block_count() const noexcept {
    return block_count_;
  }
  [[nodiscard]] std::uint32_t records_per_block() const noexcept {
    return records_per_block_;
  }
  // Index of the block the next record will come from (block_count() once
  // exhausted) — lets a block-range consumer stop exactly at its fence.
  [[nodiscard]] std::uint64_t current_block() const noexcept;

  struct block_bounds {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    sim::time_ps min_ingress = 0;
    sim::time_ps max_ingress = 0;
  };
  // Index entry of block `b` (bounds were validated at construction).
  [[nodiscard]] block_bounds bounds_at(std::uint64_t b) const;
  // Record count / per-column payload bytes of block `b`, read off its
  // block header without decoding. Inspection tools only.
  [[nodiscard]] std::uint32_t records_in_block(std::uint64_t b) const;
  [[nodiscard]] std::array<std::uint32_t, kTraceV3MaxColumnCount>
  column_bytes_at(std::uint64_t b) const;
  // Columns stored per record in this file: kTraceV3ColumnCount for
  // zero-loss traces, kTraceV3DropColumnCount when drop columns are
  // present, kTraceV3StallColumnCount when stall columns are too.
  [[nodiscard]] std::uint32_t column_count() const noexcept { return ncols_; }

  // Repositions at the first record of block `b` (binary entry point for
  // block-range consumers) or at the first record whose ingress time is
  // >= t (binary search over the index bounds). Seeking disables the
  // end-of-file total-record-count cross-check — a seeked cursor no longer
  // sees every block.
  void seek_to_block(std::uint64_t b);
  void seek_lower_bound(sim::time_ps t);

  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t file_size() const noexcept { return size_; }

 private:
  // Everything one block decode produces, structure-of-arrays plus the
  // assembled records — self-contained so the synchronous cursor can own
  // one and the decode-ahead pipeline a small pool cycled through a ring.
  // All vector capacities persist across reuse (zero steady-state
  // allocation once warm).
  struct v3_block_scratch {
    std::uint64_t block = UINT64_MAX;  // block id this scratch holds
    std::uint32_t n = 0;               // records decoded
    std::vector<sim::time_ps> ingress, egress, qdelay;
    std::vector<std::uint64_t> id, flow, fsize;
    std::vector<std::uint32_t> seq, psize;
    std::vector<node_id> src, dst;
    std::vector<std::uint32_t> path_pos, departs_pos;  // prefix offsets
    std::vector<node_id> path_flat;
    std::vector<sim::time_ps> departs_flat;
    // Drop columns (sized only for 16+-column files; empty otherwise).
    std::vector<std::uint32_t> dropinfo;  // 0, or ((drop_hop+1)<<2)|kind
    std::vector<sim::time_ps> drop_time;
    // Stall columns (sized only for 18-column files; empty otherwise).
    std::vector<std::uint64_t> stallinfo;  // 0, or (count<<16)|(hop+1)
    std::vector<sim::time_ps> stall_time;
    // Raw batched-varint staging shared by every column of a block.
    std::vector<std::uint64_t> raw;
    // Assembled records, served by pointer; sized to the largest block
    // seen and never shrunk so slot capacities persist.
    std::vector<packet_record> records;
  };
  struct pipeline;  // decode-ahead state (thread + rings); in the .cpp

  void validate_header_and_index();
  // Decodes block `b` into `sc`. Reads only immutable cursor state, so the
  // decode-ahead thread can run it concurrently with the consumer.
  void decode_block_into(std::uint64_t b, v3_block_scratch& sc) const;
  void assemble(const v3_block_scratch& sc, std::uint32_t i,
                packet_record& r) const;
  // Makes the next block current if the present one is exhausted; false at
  // end of file. Dispatches to the pipeline under decode_ahead.
  bool ensure_block();
  bool ensure_block_ahead();
  void start_pipeline();
  void stop_pipeline();
  void pipeline_main(std::uint64_t first_block) noexcept;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  void* mapping_ = nullptr;
  std::size_t mapping_size_ = 0;
  std::vector<std::uint8_t> owned_bytes_;

  std::uint64_t count_ = 0;
  std::uint64_t block_count_ = 0;
  std::uint64_t data_offset_ = 0;
  std::uint64_t index_capacity_ = 0;
  std::uint32_t records_per_block_ = 0;
  std::uint32_t ncols_ = kTraceV3ColumnCount;  // from the header

  // Serving state: blk_ points at the scratch holding the current block
  // (the cursor-owned scratch_ when synchronous, a pool slot when the
  // pipeline runs).
  const v3_block_scratch* blk_ = nullptr;
  std::uint64_t cur_block_ = UINT64_MAX;
  std::uint32_t block_n_ = 0;   // records in the decoded block
  std::uint32_t block_pos_ = 0; // next record within the decoded block
  std::uint64_t next_block_ = 0;
  std::uint64_t served_ = 0;
  bool seeked_ = false;
  v3_block_scratch scratch_;  // synchronous decode target
  std::unique_ptr<pipeline> pipe_;  // non-null iff access == decode_ahead
  std::vector<packet_record> slots_;  // copy-out storage for runs that
                                      // span a block boundary (rare)
};

}  // namespace ups::net
