// Binary schedule-trace format: `ups-trace v2b`.
//
// The text format (trace_io.h) is the diffable interchange representation;
// this is the replay representation. Text parsing dominates disk replay —
// every field costs an istream round-trip — while a fixed-layout record
// costs a handful of unaligned loads, so a v2 file mmaps and replays
// I/O-bound, and multiple shard workers can walk the same read-only mapping
// without a per-worker copy of the trace.
//
// On-disk layout (all integers little-endian, no padding):
//
//   header   32 bytes
//     0   8  magic            "UPSTRCv2"
//     8   4  version          2 (kTraceV2Version)
//     12  4  header_bytes     32
//     16  8  record_count
//     24  8  index_offset     first byte of the footer index; records
//                             occupy [32, index_offset)
//   records  back to back from byte 32, each:
//     u32  payload_len        bytes after this prefix;
//                             == 72 + 4*path_len + 8*departs_len
//     u64  id        u64 flow_id      u32 seq_in_flow   u32 size_bytes
//     i32  src_host  i32 dst_host
//     i64  ingress_time        i64 egress_time   i64 queueing_delay
//     u64  flow_size_bytes
//     u32  path_len  u32 departs_len
//     i32  path[path_len]      i64 hop_departs[departs_len]
//   footer index at index_offset
//     u64  offsets[record_count]   byte offset of each record's length
//                                  prefix, sorted by (ingress_time, offset)
//
// File size must equal index_offset + 8*record_count exactly. The footer
// index is what lets replay walk a recorder-ordered (egress-time) file in
// ingress order with zero re-sorting; readers verify the order and throw
// trace_format_error on violation rather than misreplaying.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "net/trace.h"

namespace ups::net {

inline constexpr char kTraceV2Magic[8] = {'U', 'P', 'S', 'T',
                                          'R', 'C', 'v', '2'};
inline constexpr std::uint32_t kTraceV2Version = 2;
inline constexpr std::uint32_t kTraceV2HeaderBytes = 32;
// Fixed (non-array) payload bytes of one record.
inline constexpr std::uint32_t kTraceV2FixedPayloadBytes = 72;

// Streaming writer: append records one at a time (the converter and the
// recorder-side pipeline never hold the whole trace), then finish() writes
// the footer ingress index and patches the header counts. The stream must
// be seekable (a file or a stringstream) and outlive the writer; the only
// per-record state retained is the 16-byte (ingress, offset) index entry.
class trace_binary_writer {
 public:
  explicit trace_binary_writer(std::ostream& os);
  trace_binary_writer(const trace_binary_writer&) = delete;
  trace_binary_writer& operator=(const trace_binary_writer&) = delete;

  void append(const packet_record& r);
  // Writes the footer index + final header. Must be called exactly once;
  // appending afterwards is a logic error.
  void finish();

  [[nodiscard]] std::uint64_t written() const noexcept {
    return index_.size();
  }

 private:
  std::ostream* os_;
  std::uint64_t offset_ = kTraceV2HeaderBytes;  // next record's file offset
  std::vector<std::pair<sim::time_ps, std::uint64_t>> index_;
  std::vector<std::uint8_t> buf_;  // reused record serialization scratch
  bool finished_ = false;
};

void write_trace_v2(std::ostream& os, const trace& t);
void save_trace_v2(const std::string& path, const trace& t);

// True when the file starts with the v2 magic; false for anything else,
// including files too short to hold one (they cannot be v2). Throws only
// when the file cannot be opened. The single sniffing primitive behind
// open_trace_cursor and tracec's format dispatch.
[[nodiscard]] bool is_trace_v2_file(const std::string& path);

// Decodes a whole v2 file into memory in *file* order (the order records
// were appended, i.e. what the recorder produced) — the converter's path
// back to text. Replay should use trace_mmap_cursor instead.
[[nodiscard]] trace load_trace_v2(const std::string& path);
[[nodiscard]] trace read_trace_v2(const std::uint8_t* data, std::size_t size);

// Zero-copy view of one encoded record's fixed prefix: field accessors are
// unaligned little-endian loads straight off the mapping, no packet_record
// is materialized. Used wherever only a few fields are needed (the cursor's
// ingress peek, `tracec inspect`).
class record_view {
 public:
  // `payload` points at the first byte after the length prefix and must
  // cover at least kTraceV2FixedPayloadBytes (the cursor validates).
  explicit record_view(const std::uint8_t* payload) noexcept : p_(payload) {}

  [[nodiscard]] std::uint64_t id() const noexcept;
  [[nodiscard]] std::uint64_t flow_id() const noexcept;
  [[nodiscard]] std::uint32_t seq_in_flow() const noexcept;
  [[nodiscard]] std::uint32_t size_bytes() const noexcept;
  [[nodiscard]] node_id src_host() const noexcept;
  [[nodiscard]] node_id dst_host() const noexcept;
  [[nodiscard]] sim::time_ps ingress_time() const noexcept;
  [[nodiscard]] sim::time_ps egress_time() const noexcept;
  [[nodiscard]] sim::time_ps queueing_delay() const noexcept;
  [[nodiscard]] std::uint64_t flow_size_bytes() const noexcept;
  [[nodiscard]] std::uint32_t path_len() const noexcept;
  [[nodiscard]] std::uint32_t departs_len() const noexcept;

 private:
  const std::uint8_t* p_;
};

// Ingress-ordered trace_cursor over a v2 file: mmaps the file read-only and
// walks the footer index, so replay starts without parsing, sorting, or
// copying the trace. Records are decoded into reused packet_record slots
// (vector capacities persist across records — zero steady-state
// allocation); the same-instant run length is discovered by peeking the
// ingress field straight off the mapping via record_view, so next_run()
// decodes exactly the records it hands out.
//
// Header and index bounds are validated at construction; per-record bounds
// and the index's ingress order are validated as the cursor advances. Every
// violation throws trace_format_error — a truncated or bit-flipped file can
// fail loudly but never reads out of bounds.
class trace_mmap_cursor final : public trace_cursor {
 public:
  // Maps the file (read-only, shared pages: N workers replaying the same
  // trace touch one physical copy).
  explicit trace_mmap_cursor(const std::string& path);
  // Borrows an external buffer (tests over mutated images, callers that
  // already hold a mapping). The buffer must outlive the cursor.
  trace_mmap_cursor(const std::uint8_t* data, std::size_t size);
  ~trace_mmap_cursor() override;
  trace_mmap_cursor(const trace_mmap_cursor&) = delete;
  trace_mmap_cursor& operator=(const trace_mmap_cursor&) = delete;

  [[nodiscard]] const packet_record* next() override;
  std::size_t next_run(std::vector<const packet_record*>& out) override;
  [[nodiscard]] std::size_t size_hint() const noexcept override {
    return static_cast<std::size_t>(count_);
  }
  // Records handed out so far.
  [[nodiscard]] std::size_t read() const noexcept {
    return static_cast<std::size_t>(pos_);
  }
  // Fixed-prefix view of the record at index position `i` (ingress order),
  // bounds-checked. Exposed for inspection tools.
  [[nodiscard]] record_view view_at(std::uint64_t i) const;

  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t file_size() const noexcept { return size_; }

 private:
  void validate_header();
  // Byte offset of the record at index position `i` (throws on a
  // out-of-bounds or misordered index entry).
  [[nodiscard]] std::uint64_t record_offset(std::uint64_t i) const;
  // Payload pointer + length check for the record at file offset `off`.
  [[nodiscard]] const std::uint8_t* payload_at(std::uint64_t off,
                                               std::uint32_t& len) const;
  void decode_into(std::uint64_t i, packet_record& r);

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  void* mapping_ = nullptr;  // non-null when this cursor owns an mmap
  std::size_t mapping_size_ = 0;
  std::vector<std::uint8_t> owned_bytes_;  // no-mmap fallback storage

  std::uint64_t count_ = 0;
  std::uint64_t index_offset_ = 0;
  std::uint64_t pos_ = 0;           // next index position to hand out
  sim::time_ps last_ingress_ = -1;  // index-order watermark
  std::vector<packet_record> slots_;  // reused decode targets for one run
};

}  // namespace ups::net
