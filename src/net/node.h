#pragma once

#include <string>

#include "net/packet.h"

namespace ups::net {

enum class node_kind : std::uint8_t { host, router };

struct node {
  node_id id = kInvalidNode;
  node_kind kind = node_kind::router;
  std::string name;
};

}  // namespace ups::net
