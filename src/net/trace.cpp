#include "net/trace.h"

namespace ups::net {

trace_recorder::trace_recorder(network& net, bool with_hop_times)
    : with_hop_times_(with_hop_times) {
  net.hooks().on_egress = [this](const packet& p, sim::time_ps now) {
    packet_record r;
    r.id = p.id;
    r.flow_id = p.flow_id;
    r.seq_in_flow = p.seq_in_flow;
    r.size_bytes = p.size_bytes;
    r.src_host = p.src_host;
    r.dst_host = p.dst_host;
    r.path = p.path;
    r.ingress_time = p.ingress_time;
    r.egress_time = now;
    r.queueing_delay = p.queueing_delay;
    r.flow_size_bytes = p.flow_size_bytes;
    if (with_hop_times_) r.hop_departs = p.hop_departs;
    result_.packets.push_back(std::move(r));
  };
}

}  // namespace ups::net
