#include "net/trace.h"

#include <algorithm>
#include <numeric>

namespace ups::net {

trace_ingress_cursor::trace_ingress_cursor(const trace& t) : trace_(&t) {
  order_.resize(t.packets.size());
  std::iota(order_.begin(), order_.end(), 0u);
  std::stable_sort(order_.begin(), order_.end(),
                   [&t](std::uint32_t a, std::uint32_t b) {
                     return t.packets[a].ingress_time <
                            t.packets[b].ingress_time;
                   });
}

const packet_record* trace_ingress_cursor::next() {
  if (pos_ >= order_.size()) return nullptr;
  return &trace_->packets[order_[pos_++]];
}

std::size_t trace_ingress_cursor::next_run(
    std::vector<const packet_record*>& out) {
  if (pos_ >= order_.size()) return 0;
  const sim::time_ps t = trace_->packets[order_[pos_]].ingress_time;
  std::size_t n = 0;
  do {
    out.push_back(&trace_->packets[order_[pos_++]]);
    ++n;
  } while (pos_ < order_.size() &&
           trace_->packets[order_[pos_]].ingress_time == t);
  return n;
}

void sort_by_ingress(trace& t) {
  std::stable_sort(t.packets.begin(), t.packets.end(),
                   [](const packet_record& a, const packet_record& b) {
                     return a.ingress_time < b.ingress_time;
                   });
}

trace_recorder::trace_recorder(network& net, bool with_hop_times)
    : with_hop_times_(with_hop_times) {
  net.hooks().on_egress = [this](const packet& p, sim::time_ps now) {
    record(p, now, /*drop_hop=*/-1, drop_kind::buffer);
  };
  // Chain (not replace) on_drop: traffic sources hook it too. Drops before
  // the ingress router (host-NIC overflow) have no i(p) and are skipped —
  // they never entered the paper's schedule.
  auto prev = net.hooks().on_drop;
  net.hooks().on_drop = [this, prev = std::move(prev)](
                            const packet& p, node_id at, sim::time_ps now,
                            drop_kind kind) {
    if (prev) prev(p, at, now, kind);
    if (p.ingress_time < 0) return;
    // Wire drops fire in transmitted() (hop already advanced past the
    // dropping router); buffer drops fire at the router's output queue with
    // hop advanced on delivery. Both land on hop - 1.
    record(p, now, static_cast<std::int32_t>(p.hop) - 1, kind);
  };
}

void trace_recorder::record(const packet& p, sim::time_ps now,
                            std::int32_t drop_hop, drop_kind kind) {
  packet_record r;
  r.id = p.id;
  r.flow_id = p.flow_id;
  r.seq_in_flow = p.seq_in_flow;
  r.size_bytes = p.size_bytes;
  r.src_host = p.src_host;
  r.dst_host = p.dst_host;
  r.path = p.path;
  r.ingress_time = p.ingress_time;
  r.queueing_delay = p.queueing_delay;
  r.flow_size_bytes = p.flow_size_bytes;
  if (drop_hop >= 0) {
    r.drop_hop = drop_hop;
    r.dropped_kind = kind;
    r.drop_time = now;
  } else {
    r.egress_time = now;
  }
  if (p.stall_count > 0) {
    r.stall_hop = p.stall_hop;
    r.stall_count = p.stall_count;
    r.stall_time = p.stall_time;
  }
  if (with_hop_times_) r.hop_departs = p.hop_departs;
  result_.packets.push_back(std::move(r));
}

}  // namespace ups::net
