#include "net/trace.h"

#include <algorithm>
#include <numeric>

namespace ups::net {

trace_ingress_cursor::trace_ingress_cursor(const trace& t) : trace_(&t) {
  order_.resize(t.packets.size());
  std::iota(order_.begin(), order_.end(), 0u);
  std::stable_sort(order_.begin(), order_.end(),
                   [&t](std::uint32_t a, std::uint32_t b) {
                     return t.packets[a].ingress_time <
                            t.packets[b].ingress_time;
                   });
}

const packet_record* trace_ingress_cursor::next() {
  if (pos_ >= order_.size()) return nullptr;
  return &trace_->packets[order_[pos_++]];
}

std::size_t trace_ingress_cursor::next_run(
    std::vector<const packet_record*>& out) {
  if (pos_ >= order_.size()) return 0;
  const sim::time_ps t = trace_->packets[order_[pos_]].ingress_time;
  std::size_t n = 0;
  do {
    out.push_back(&trace_->packets[order_[pos_++]]);
    ++n;
  } while (pos_ < order_.size() &&
           trace_->packets[order_[pos_]].ingress_time == t);
  return n;
}

void sort_by_ingress(trace& t) {
  std::stable_sort(t.packets.begin(), t.packets.end(),
                   [](const packet_record& a, const packet_record& b) {
                     return a.ingress_time < b.ingress_time;
                   });
}

trace_recorder::trace_recorder(network& net, bool with_hop_times)
    : with_hop_times_(with_hop_times) {
  net.hooks().on_egress = [this](const packet& p, sim::time_ps now) {
    packet_record r;
    r.id = p.id;
    r.flow_id = p.flow_id;
    r.seq_in_flow = p.seq_in_flow;
    r.size_bytes = p.size_bytes;
    r.src_host = p.src_host;
    r.dst_host = p.dst_host;
    r.path = p.path;
    r.ingress_time = p.ingress_time;
    r.egress_time = now;
    r.queueing_delay = p.queueing_delay;
    r.flow_size_bytes = p.flow_size_bytes;
    if (with_hop_times_) r.hop_departs = p.hop_departs;
    result_.packets.push_back(std::move(r));
  };
}

}  // namespace ups::net
