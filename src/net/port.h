// Output port: one directed transmitter with a scheduler-managed queue.
//
// Implements the paper's store-and-forward model: the next node receives a
// packet only after its last bit arrives. Slack accounting follows §2.1 —
// slack is consumed by *waiting* only, never by transmission or propagation —
// and works uniformly for preemptive and non-preemptive service because the
// wait is computed as (departure − enqueue) − total transmission time.
#pragma once

#include <cstdint>
#include <memory>

#include "net/flow_control.h"
#include "net/packet.h"
#include "net/scheduler.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace ups::net {

class network;

struct port_stats {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t preemptions = 0;
  // Backpressure accounting: a pause is a head packet parking because the
  // downstream link had no credit; the matching resume happens when a
  // credit return unblocks it. stalled_time is the summed park duration.
  std::uint64_t pauses = 0;
  std::uint64_t resumes = 0;
  sim::time_ps stalled_time = 0;
};

class port {
 public:
  port(network& net, sim::simulator& sim, std::int32_t id, node_id from,
       node_id to, sim::bits_per_sec rate, sim::time_ps prop_delay,
       std::unique_ptr<scheduler> sched, std::int64_t buffer_bytes);

  port(const port&) = delete;
  port& operator=(const port&) = delete;

  // Enqueues a packet for transmission (may drop on buffer overflow or
  // preempt the packet in service when the scheduler supports it).
  void receive(packet_ptr p);

  // Enables resume-style preemption (used by preemptive LSTF): the packet in
  // service is paused, already-transmitted bits are kept, and the remainder
  // re-contends through the scheduler.
  void set_preemption(bool on) noexcept { preemption_ = on; }

  // Attaches the credit ledger governing this link (network::build wires
  // router->router ports only). A governed port starts a fresh transmission
  // only while the downstream occupancy admits it; otherwise the head
  // packet parks in blocked_head_ and everything behind it HoL-blocks.
  void set_flow(link_flow* flow) noexcept { flow_ = flow; }
  [[nodiscard]] const link_flow* flow() const noexcept { return flow_; }
  [[nodiscard]] bool flow_blocked() const noexcept {
    return blocked_head_ != nullptr;
  }
  [[nodiscard]] sim::time_ps flow_blocked_since() const noexcept {
    return blocked_since_;
  }

  // Called by the network when a delayed credit return lands for this
  // link: retries the parked head via the usual late-phase service event.
  void flow_credits_returned() {
    if (blocked_head_ != nullptr) schedule_start();
  }

  [[nodiscard]] std::int32_t id() const noexcept { return id_; }
  [[nodiscard]] node_id from() const noexcept { return from_; }
  [[nodiscard]] node_id to() const noexcept { return to_; }
  [[nodiscard]] sim::bits_per_sec rate() const noexcept { return rate_; }
  [[nodiscard]] sim::time_ps prop_delay() const noexcept { return delay_; }
  [[nodiscard]] bool busy() const noexcept { return current_ != nullptr; }
  [[nodiscard]] const port_stats& stats() const noexcept { return stats_; }
  [[nodiscard]] scheduler& queue() noexcept { return *sched_; }
  [[nodiscard]] std::size_t backlog_bytes() const noexcept {
    return sched_->bytes();
  }

  [[nodiscard]] sim::time_ps transmission_time(
      std::int64_t bytes) const noexcept {
    if (rate_ == sim::kInfiniteRate) return 0;
    return sim::transmission_time(bytes, rate_);
  }

 private:
  // Service decisions are deferred by a zero-delay event so that every
  // packet arriving at the same instant is visible to the scheduler before
  // it picks — without this, simultaneous arrivals would be served in event
  // insertion order regardless of rank.
  void schedule_start();
  void start_next();
  void on_complete();
  void maybe_preempt();
  void drop(packet_ptr p);

  network& net_;
  sim::simulator& sim_;
  std::int32_t id_;
  node_id from_;
  node_id to_;
  sim::bits_per_sec rate_;
  sim::time_ps delay_;
  std::unique_ptr<scheduler> sched_;
  std::int64_t buffer_bytes_;  // <= 0: unlimited
  bool preemption_ = false;
  link_flow* flow_ = nullptr;  // nullptr: ungoverned link

  // Head packet already dequeued but denied by flow control; it keeps the
  // head position (head-of-line blocking) until credits return.
  packet_ptr blocked_head_;
  sim::time_ps blocked_since_ = 0;

  packet_ptr current_;
  std::int64_t current_rank_ = 0;
  sim::time_ps tx_started_ = 0;
  sim::simulator::handle completion_{};
  bool pending_start_ = false;
  port_stats stats_;
};

}  // namespace ups::net
