#include "net/flow_control.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace ups::net {

namespace {

// One full-size packet: a credit budget (or a pause high threshold) below
// this could never admit an MTU-sized transmission, i.e. guaranteed
// deadlock by construction.
constexpr std::int64_t kMinBudgetBytes = 1500;

[[nodiscard]] std::vector<double> parse_params(const std::string& body,
                                               std::size_t min_n,
                                               std::size_t max_n,
                                               const char* what) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t comma = body.find(',', pos);
    const std::string tok =
        body.substr(pos, comma == std::string::npos ? comma : comma - pos);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end == nullptr || *end != '\0') {
      throw std::invalid_argument(std::string("flow: bad ") + what +
                                  " parameter '" + tok + "'");
    }
    out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.size() < min_n || out.size() > max_n) {
    throw std::invalid_argument(std::string("flow: ") + what +
                                " expects between " + std::to_string(min_n) +
                                " and " + std::to_string(max_n) +
                                " parameters");
  }
  return out;
}

}  // namespace

std::string flow_spec::label() const {
  char buf[96];
  switch (kind) {
    case flow_kind::none:
      return {};
    case flow_kind::credit:
      if (return_delay >= 0) {
        std::snprintf(buf, sizeof buf, "credit:%lld,%g",
                      static_cast<long long>(credit_bytes),
                      static_cast<double>(return_delay) / 1e6);
      } else {
        std::snprintf(buf, sizeof buf, "credit:%lld",
                      static_cast<long long>(credit_bytes));
      }
      return buf;
    case flow_kind::pause:
      std::snprintf(buf, sizeof buf, "pause:%lld,%lld",
                    static_cast<long long>(pause_high),
                    static_cast<long long>(pause_low));
      return buf;
  }
  return {};
}

flow_spec flow_spec::parse(const std::string& s) {
  flow_spec f;
  if (s.empty() || s == "none") return f;
  const std::size_t colon = s.find(':');
  const std::string head = s.substr(0, colon);
  const std::string body =
      colon == std::string::npos ? std::string{} : s.substr(colon + 1);
  if (head == "credit") {
    const auto v = parse_params(body, 1, 2, "credit");
    const auto bytes = static_cast<std::int64_t>(v[0]);
    if (bytes < kMinBudgetBytes) {
      throw std::invalid_argument(
          "flow: credit budget must be >= " + std::to_string(kMinBudgetBytes) +
          " bytes (one full-size packet)");
    }
    f.kind = flow_kind::credit;
    f.credit_bytes = bytes;
    if (v.size() == 2) {
      if (v[1] < 0.0) {
        throw std::invalid_argument("flow: credit rtt_us must be >= 0");
      }
      f.return_delay = static_cast<sim::time_ps>(v[1] * 1e6);  // us -> ps
    }
  } else if (head == "pause") {
    const auto v = parse_params(body, 2, 2, "pause");
    const auto high = static_cast<std::int64_t>(v[0]);
    const auto low = static_cast<std::int64_t>(v[1]);
    if (high < kMinBudgetBytes) {
      throw std::invalid_argument(
          "flow: pause high must be >= " + std::to_string(kMinBudgetBytes) +
          " bytes (one full-size packet)");
    }
    if (low <= 0 || low >= high) {
      throw std::invalid_argument(
          "flow: pause thresholds need high > low > 0 "
          "(equal thresholds can never resume)");
    }
    f.kind = flow_kind::pause;
    f.pause_high = high;
    f.pause_low = low;
  } else {
    throw std::invalid_argument("flow: unknown mode '" + head +
                                "' (want credit|pause|none)");
  }
  return f;
}

}  // namespace ups::net
