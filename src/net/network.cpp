#include "net/network.h"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "net/routing.h"

namespace ups::net {

node_id network::add_router(std::string name) {
  if (built_) throw std::logic_error("network: add_router after build");
  const auto id = static_cast<node_id>(nodes_.size());
  nodes_.push_back(node{id, node_kind::router, std::move(name)});
  return id;
}

node_id network::add_host(std::string name) {
  if (built_) throw std::logic_error("network: add_host after build");
  const auto id = static_cast<node_id>(nodes_.size());
  nodes_.push_back(node{id, node_kind::host, std::move(name)});
  return id;
}

void network::add_link(node_id a, node_id b, sim::bits_per_sec rate,
                       sim::time_ps prop_delay) {
  if (built_) throw std::logic_error("network: add_link after build");
  links_.push_back(link_spec{a, b, rate, prop_delay});
}

void network::set_fault(const fault_spec& f, std::uint64_t seed) {
  if (built_) throw std::logic_error("network: set_fault after build");
  fault_ = f;
  fault_seed_ = seed;
}

void network::set_flow(const flow_spec& f) {
  if (built_) throw std::logic_error("network: set_flow after build");
  flow_ = f;
}

void network::build() {
  if (built_) throw std::logic_error("network: build called twice");
  if (!factory_) throw std::logic_error("network: no scheduler factory");
  built_ = true;
  out_ports_.resize(nodes_.size());
  host_handlers_.resize(nodes_.size());
  auto make_port = [&](node_id from, node_id to, sim::bits_per_sec rate,
                       sim::time_ps delay) {
    const auto pid = static_cast<std::int32_t>(ports_.size());
    const port_info info{pid, from, to, nodes_[from].kind, rate};
    auto p = std::make_unique<port>(*this, sim_, pid, from, to, rate, delay,
                                    factory_(info), buffer_bytes_);
    p->set_preemption(preemption_);
    out_ports_[from].emplace_back(to, pid);
    ports_.push_back(std::move(p));
  };
  for (const auto& l : links_) {
    make_port(l.a, l.b, l.rate, l.delay);
    make_port(l.b, l.a, l.rate, l.delay);
  }

  // Fault processes attach only to router->router ports, keyed by port id —
  // stable across builds because ports are created in link-declaration
  // order above.
  if (fault_.enabled()) {
    link_faults_.resize(ports_.size());
    for (const auto& pt : ports_) {
      if (nodes_[pt->from()].kind == node_kind::router &&
          nodes_[pt->to()].kind == node_kind::router) {
        link_faults_[static_cast<std::size_t>(pt->id())] =
            link_fault(fault_, fault_seed_, pt->id());
      }
    }
  }

  // Flow control mirrors the fault attach: router->router ports only, keyed
  // by (stable) port id. The watchdog interval is a few credit round trips
  // on the slowest governed link so one check window always spans several
  // chances for a return to land.
  if (flow_.enabled()) {
    link_flows_.resize(ports_.size());
    sim::time_ps max_rtt = 0;
    for (const auto& pt : ports_) {
      if (nodes_[pt->from()].kind == node_kind::router &&
          nodes_[pt->to()].kind == node_kind::router) {
        const auto pid = static_cast<std::size_t>(pt->id());
        link_flows_[pid] = link_flow(flow_, pt->prop_delay());
        pt->set_flow(&link_flows_[pid]);
        governed_ports_.push_back(pt->id());
        const sim::time_ps rtt =
            pt->prop_delay() + link_flows_[pid].return_delay();
        if (rtt > max_rtt) max_rtt = rtt;
      }
    }
    flow_watchdog_interval_ = 4 * max_rtt;
    if (flow_watchdog_interval_ < sim::kMicrosecond) {
      flow_watchdog_interval_ = sim::kMicrosecond;
    }
  }

  // Topology is final: flatten routing into the dense table. Router-only
  // graph, host links excluded, so paths are router sequences.
  router_index_.assign(nodes_.size(), -1);
  for (const auto& n : nodes_) {
    if (n.kind == node_kind::router) {
      router_index_[n.id] = static_cast<std::int32_t>(router_count_++);
    }
  }
  std::vector<std::vector<routing_edge>> graph(nodes_.size());
  for (const auto& p : ports_) {
    if (nodes_[p->from()].kind == node_kind::router &&
        nodes_[p->to()].kind == node_kind::router) {
      graph[p->from()].push_back(routing_edge{p->to(), p->prop_delay() + 1});
    }
  }
  route_table_.assign(router_count_ * router_count_, {});
  // Only routers with an attached host can originate a route lookup; one
  // Dijkstra tree fills each such router's whole row. Hosts with a
  // malformed uplink count are skipped here and still fail at lookup
  // (attachment() throws), exactly as the lazy cache did.
  std::vector<bool> row_done(router_count_, false);
  for (const auto& n : nodes_) {
    if (n.kind != node_kind::host || out_ports_[n.id].size() != 1) continue;
    const node_id r0 = out_ports_[n.id].front().first;
    if (nodes_[r0].kind != node_kind::router) continue;
    const auto row = static_cast<std::size_t>(router_index_[r0]);
    if (row_done[row]) continue;
    row_done[row] = true;
    const auto prev = shortest_path_tree(graph, r0);
    for (const auto& m : nodes_) {
      if (m.kind != node_kind::router) continue;
      route_table_[row * router_count_ +
                   static_cast<std::size_t>(router_index_[m.id])] =
          path_from_tree(prev, r0, m.id);
    }
  }
}

port& network::port_between(node_id from, node_id to) {
  const port* p = find_port(from, to);
  if (p == nullptr) throw std::out_of_range("network: no such port");
  return const_cast<port&>(*p);
}

const port* network::find_port(node_id from, node_id to) const {
  for (const auto& [nbr, pid] : out_ports_[from]) {
    if (nbr == to) return ports_[pid].get();
  }
  return nullptr;
}

node_id network::attachment(node_id host) const {
  assert(nodes_[host].kind == node_kind::host);
  if (out_ports_[host].size() != 1) {
    throw std::logic_error("network: host must have exactly one uplink");
  }
  return out_ports_[host].front().first;
}

const std::vector<node_id>& network::route(node_id src_host,
                                           node_id dst_host) const {
  const node_id r0 = attachment(src_host);
  const node_id r1 = attachment(dst_host);
  // A host "attached" to another host has no router row; the lazy cache
  // reported that as unroutable too.
  if (router_index_[r0] < 0 || router_index_[r1] < 0) {
    throw std::runtime_error("network: no route");
  }
  const auto& path =
      route_table_[static_cast<std::size_t>(router_index_[r0]) *
                       router_count_ +
                   static_cast<std::size_t>(router_index_[r1])];
  if (path.empty()) throw std::runtime_error("network: no route");
  return path;
}

sim::time_ps network::tmin(const packet& p, std::size_t from_hop) const {
  assert(!p.path.empty());
  sim::time_ps total = 0;
  for (std::size_t j = from_hop; j < p.path.size(); ++j) {
    const node_id here = p.path[j];
    const node_id next =
        (j + 1 < p.path.size()) ? p.path[j + 1] : p.dst_host;
    const port* pt = find_port(here, next);
    if (pt == nullptr) throw std::logic_error("network: broken path");
    total += pt->transmission_time(p.size_bytes);
    if (j + 1 < p.path.size()) total += pt->prop_delay();
  }
  return total;
}

void network::send_from_host(packet_ptr p) {
  assert(built_);
  if (p->path.empty()) p->path = route(p->src_host, p->dst_host);
  p->hop = 0;
  p->created_at = sim_.now();
  ++stats_.injected;
  port_between(p->src_host, p->path.front()).receive(std::move(p));
}

void network::inject_at_ingress(packet_ptr p, sim::time_ps at) {
  assert(built_);
  if (p->path.empty()) p->path = route(p->src_host, p->dst_host);
  p->hop = 0;
  p->created_at = at;
  ++stats_.injected;
  const node_id ingress = p->path.front();
  // Early-phase delivery: injected packets enter ahead of any same-instant
  // forwarded arrival, whenever their delivery event was scheduled. This
  // makes injection order depend only on (time, injection sequence), so
  // streaming a trace in during the run is outcome-identical to
  // pre-scheduling the whole trace before it.
  post(std::move(p), ingress, at, /*early=*/true);
}

void network::post(packet_ptr p, node_id to, sim::time_ps at, bool early) {
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    in_flight_[slot] = std::move(p);
  } else {
    slot = in_flight_.size();
    in_flight_.push_back(std::move(p));
  }
  auto deliver_cb = [this, slot, to] {
    packet_ptr q = std::move(in_flight_[slot]);
    free_slots_.push_back(slot);
    deliver(std::move(q), to);
  };
  if (early) {
    sim_.schedule_early(at, std::move(deliver_cb));
  } else {
    sim_.schedule_at(at, std::move(deliver_cb));
  }
}

void network::transmitted(packet_ptr p, const port& from_port,
                          sim::time_ps now) {
  const node_id to = from_port.to();
  // Credit held at the *previous* hop becomes returnable the instant the
  // packet's last bit leaves this router — before any drop decision below,
  // because the upstream buffer space is free either way.
  if (p->credit_prev_port >= 0) {
    flow_schedule_release(p->credit_prev_port, p->size_bytes);
    p->credit_prev_port = -1;
  }
  // Replay-under-loss: a wire drop recorded at hop j in the original run is
  // re-enacted when the packet's last bit leaves path[j] (hop == j + 1 by
  // then: deliver() increments before the forwarding port).
  if (p->forced_drop_hop >= 0 && p->forced_drop_kind == drop_kind::wire &&
      p->hop == static_cast<std::size_t>(p->forced_drop_hop) + 1) {
    flow_release_all(*p);
    count_drop(*p, from_port.from(), now, drop_kind::wire);
    return;
  }
  // Live fault process on this link (router->router only; last-bit exit is
  // the loss instant, so jamming windows are judged at `now`).
  if (fault_.enabled() && nodes_[from_port.from()].kind == node_kind::router &&
      nodes_[to].kind == node_kind::router &&
      link_faults_[static_cast<std::size_t>(from_port.id())].lose(now)) {
    flow_release_all(*p);
    count_drop(*p, from_port.from(), now, drop_kind::wire);
    return;
  }
  if (nodes_[to].kind == node_kind::host) {
    // Last bit left the egress router: this is o(p).
    if (hooks_.on_egress) hooks_.on_egress(*p, now);
  }
  post(std::move(p), to, now + from_port.prop_delay());
}

void network::deliver(packet_ptr p, node_id at) {
  if (nodes_[at].kind == node_kind::router) {
    assert(p->hop < p->path.size() && p->path[p->hop] == at);
    // A forced-stall re-post re-delivers at the same hop, so ingress may
    // only be marked on the packet's first arrival.
    if (p->hop == 0 && p->ingress_time < 0) {
      p->ingress_time = sim_.now();
      if (hooks_.on_ingress) hooks_.on_ingress(*p, sim_.now());
    }
    // Replay-under-backpressure: a packet recorded as stalled is held at
    // its longest-stall router for the full recorded stall time, then
    // re-delivered here to forward normally. The delay is exogenous
    // re-enactment (the original upstream head-park), so it adjusts
    // arrival, not this run's queueing accounting.
    if (p->forced_stall_hop >= 0 &&
        p->hop == static_cast<std::size_t>(p->forced_stall_hop)) {
      const sim::time_ps hold = p->forced_stall_time;
      p->forced_stall_hop = -1;
      post(std::move(p), at, sim_.now() + hold);
      return;
    }
    // Replay-under-loss: a buffer drop recorded at hop j is re-enacted on
    // arrival at path[j] (before hop increments), standing in for the
    // original run's output-queue eviction there.
    if (p->forced_drop_hop >= 0 && p->forced_drop_kind == drop_kind::buffer &&
        p->hop == static_cast<std::size_t>(p->forced_drop_hop)) {
      flow_release_all(*p);
      count_drop(*p, at, sim_.now(), drop_kind::buffer);
      return;
    }
    const node_id next = p->at_last_router() ? p->dst_host : p->path[p->hop + 1];
    ++p->hop;
    port_between(at, next).receive(std::move(p));
    return;
  }
  // Host delivery.
  assert(at == p->dst_host);
  ++stats_.delivered;
  ++flow_progress_;
  if (host_handlers_[at]) {
    host_handlers_[at](std::move(p));
  }
}

void network::count_drop(const packet& p, node_id at, sim::time_ps now,
                         drop_kind kind) {
  ++stats_.dropped;
  ++flow_progress_;
  if (kind == drop_kind::wire) ++stats_.dropped_wire;
  if (hooks_.on_drop) hooks_.on_drop(p, at, now, kind);
}

void network::flow_port_blocked(const port& blocked) {
  (void)blocked;
  ++stats_.flow_blocks;
  flow_watchdog_arm();
}

void network::flow_resumed(sim::time_ps stalled) {
  ++stats_.flow_resumes;
  stats_.flow_stall_time += stalled;
  ++flow_progress_;
}

void network::flow_release_all(packet& p) {
  if (link_flows_.empty()) return;
  if (p.credit_prev_port >= 0) {
    flow_schedule_release(p.credit_prev_port, p.size_bytes);
    p.credit_prev_port = -1;
  }
  if (p.credit_port >= 0) {
    flow_schedule_release(p.credit_port, p.size_bytes);
    p.credit_port = -1;
  }
}

void network::flow_schedule_release(std::int32_t port_id, std::int64_t bytes) {
  const auto pid = static_cast<std::size_t>(port_id);
  ++flow_returns_in_flight_;
  sim_.schedule_in(link_flows_[pid].return_delay(), [this, pid, bytes] {
    --flow_returns_in_flight_;
    ++flow_progress_;
    link_flows_[pid].release(bytes);
    ports_[pid]->flow_credits_returned();
  });
}

void network::flow_watchdog_arm() {
  if (flow_watchdog_armed_) return;
  flow_watchdog_armed_ = true;
  flow_watchdog_seen_ = flow_progress_;
  flow_watchdog_stuck_ = 0;
  sim_.schedule_in(flow_watchdog_interval_, [this] { flow_watchdog_check(); });
}

void network::flow_watchdog_check() {
  bool any_blocked = false;
  for (const auto pid : governed_ports_) {
    if (ports_[static_cast<std::size_t>(pid)]->flow_blocked()) {
      any_blocked = true;
      break;
    }
  }
  if (!any_blocked) {
    // Everything drained: disarm so an idle simulation can end. The next
    // blocked port re-arms.
    flow_watchdog_armed_ = false;
    return;
  }
  if (flow_progress_ != flow_watchdog_seen_) {
    // Blocked ports exist but packets are still moving: ordinary transient
    // backpressure.
    flow_watchdog_seen_ = flow_progress_;
    flow_watchdog_stuck_ = 0;
    ++stats_.watchdog_transient;
    sim_.schedule_in(flow_watchdog_interval_,
                     [this] { flow_watchdog_check(); });
    return;
  }
  ++flow_watchdog_stuck_;
  // Several full check windows (each a few credit RTTs) with zero global
  // progress: look for a wait-for cycle among blocked routers. An edge
  // A -> B means A's output toward B is parked waiting for B to drain; a
  // cycle with no credit return left in flight cannot ever resolve.
  constexpr std::uint32_t kCycleCheckAfter = 4;
  constexpr std::uint32_t kHardStallCap = 64;
  if (flow_watchdog_stuck_ >= kCycleCheckAfter &&
      flow_returns_in_flight_ == 0) {
    std::vector<std::vector<node_id>> adj(nodes_.size());
    std::vector<node_id> blocked_from;
    for (const auto pid : governed_ports_) {
      const port& pt = *ports_[static_cast<std::size_t>(pid)];
      if (pt.flow_blocked()) {
        adj[static_cast<std::size_t>(pt.from())].push_back(pt.to());
        blocked_from.push_back(pt.from());
      }
    }
    // Colored DFS over the blocked-edge graph; reconstructs one cycle for
    // the error message when found.
    std::vector<std::uint8_t> color(nodes_.size(), 0);  // 0 new 1 open 2 done
    std::vector<node_id> stack;
    auto dfs = [&](auto&& self, node_id v) -> node_id {
      color[static_cast<std::size_t>(v)] = 1;
      stack.push_back(v);
      for (const node_id w : adj[static_cast<std::size_t>(v)]) {
        if (color[static_cast<std::size_t>(w)] == 1) return w;
        if (color[static_cast<std::size_t>(w)] == 0) {
          const node_id hit = self(self, w);
          if (hit >= 0) return hit;
        }
      }
      stack.pop_back();
      color[static_cast<std::size_t>(v)] = 2;
      return kInvalidNode;
    };
    for (const node_id v : blocked_from) {
      if (color[static_cast<std::size_t>(v)] != 0) continue;
      stack.clear();
      const node_id entry = dfs(dfs, v);
      if (entry < 0) continue;
      std::string cycle;
      bool in_cycle = false;
      for (const node_id n : stack) {
        if (n == entry) in_cycle = true;
        if (!in_cycle) continue;
        cycle += nodes_[static_cast<std::size_t>(n)].name;
        cycle += " -> ";
      }
      cycle += nodes_[static_cast<std::size_t>(entry)].name;
      throw flow_deadlock_error(
          "flow: credit deadlock — wait-for cycle " + cycle + " (" +
          std::to_string(blocked_from.size()) +
          " blocked ports, no credit returns in flight)");
    }
  }
  if (flow_watchdog_stuck_ >= kHardStallCap) {
    throw flow_stall_error(
        "flow: persistent stall — blocked ports made no progress for " +
        std::to_string(kHardStallCap) +
        " watchdog windows without a detectable wait-for cycle");
  }
  ++stats_.watchdog_persistent;
  sim_.schedule_in(flow_watchdog_interval_, [this] { flow_watchdog_check(); });
}

void network::set_host_handler(node_id host,
                               std::function<void(packet_ptr)> h) {
  assert(built_);
  host_handlers_[host] = std::move(h);
}

}  // namespace ups::net
