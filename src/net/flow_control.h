// Per-link credit-based flow control: the lossless half of the fault axis.
//
// Where the fault subsystem (net/fault.h) models links that *drop*, this
// models links that never drop but *stall*: every governed router->router
// link tracks how many bytes of the downstream router's buffer its packets
// occupy, and the upstream port may start a transmission only while that
// occupancy leaves room (Graphite's wormhole/credit scheme). Congestion
// then propagates as backpressure — a blocked head packet stalls the whole
// scheduler queue behind it (head-of-line blocking) — instead of as loss,
// which is exactly the regime where LSTF's waiting-only slack accounting
// (§2.1) meets delay imposed by a *downstream* queue.
//
// Two modes behind one occupancy counter:
//   credit:bytes[,rtt_us]  a transmission may start only while
//                          occupancy + size <= bytes; credit-return
//                          messages arrive rtt_us after the packet's last
//                          bit leaves the downstream router (default: the
//                          link's own propagation delay)
//   pause:high,low         PFC-style PAUSE/resume hysteresis: crossing
//                          `high` bytes of occupancy pauses the upstream
//                          transmitter; it resumes once the delayed credit
//                          returns bring occupancy back to `low` or less
//
// Flow control is fully deterministic — no RNG anywhere — so a given
// (scenario, topology, workload) stalls identically no matter which
// dispatch backend runs it, and lossless conservation
// (injected == delivered, dropped == 0) is gated byte-identically across
// serial/thread/process fabrics.
//
// Robustness is first-class: network arms a stall watchdog whenever a port
// blocks, classifies no-progress intervals (transient backpressure vs
// persistent stall vs routing-cycle deadlock), and surfaces a true credit
// deadlock as the typed flow_deadlock_error below instead of silently
// draining the event queue with packets still parked in blocked heads.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/time.h"

namespace ups::net {

enum class flow_kind : std::uint8_t {
  none = 0,
  credit,
  pause,
};

// Two blocked ports waiting on each other's router to drain, with no
// credit-return message left in flight: no future event can make progress,
// so the watchdog reports the wait-for cycle instead of hanging.
struct flow_deadlock_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Blocked ports made no progress for the watchdog's hard cap of intervals
// without forming a detectable cycle (leaked credits, a starved return
// path): still a wedged run, still a typed error.
struct flow_stall_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct flow_spec {
  flow_kind kind = flow_kind::none;
  std::int64_t credit_bytes = 0;   // credit: downstream occupancy budget
  sim::time_ps return_delay = -1;  // credit-return latency; <0: use the
                                   // link's own propagation delay
  std::int64_t pause_high = 0;     // pause: XOFF threshold (bytes)
  std::int64_t pause_low = 0;      // pause: XON threshold (bytes)

  [[nodiscard]] bool enabled() const noexcept {
    return kind != flow_kind::none;
  }

  // Compact tag for scenario labels, e.g. "credit:30000",
  // "credit:30000,5us", "pause:30000,15000". Empty for `none` so
  // flow-free labels stay byte-identical to pre-flow-control builds.
  [[nodiscard]] std::string label() const;

  // Parses "credit:bytes[,rtt_us]" | "pause:high,low" | "none" | "".
  // Budgets below one 1500-byte MTU could never admit a full-size packet
  // and a pause high <= low can never resume, so both are rejected here
  // with std::invalid_argument — nonsense fails at parse, not as a
  // mysterious deadlock mid-run.
  static flow_spec parse(const std::string& s);
};

// Occupancy ledger for one governed directed link, owned by the network and
// consulted by the upstream port: consume() when a transmission starts
// (the packet is committed to the downstream buffer), release() when the
// delayed credit-return lands after its last bit leaves the downstream
// router. Pure integer state — deterministic by construction.
class link_flow {
 public:
  link_flow() = default;
  link_flow(const flow_spec& spec, sim::time_ps link_prop_delay)
      : spec_(spec),
        return_delay_(spec.return_delay >= 0 ? spec.return_delay
                                             : link_prop_delay) {}

  [[nodiscard]] bool governed() const noexcept { return spec_.enabled(); }

  // Whether a fresh transmission of `bytes` may start now.
  [[nodiscard]] bool can_send(std::int64_t bytes) const noexcept {
    switch (spec_.kind) {
      case flow_kind::none:
        return true;
      case flow_kind::credit:
        return occupancy_ + bytes <= spec_.credit_bytes;
      case flow_kind::pause:
        return !paused_;
    }
    return true;
  }

  void consume(std::int64_t bytes) noexcept {
    occupancy_ += bytes;
    if (spec_.kind == flow_kind::pause && occupancy_ >= spec_.pause_high) {
      paused_ = true;
    }
  }

  // Credit return: returns true when this release un-paused the link
  // (pause hysteresis crossing low) — credit mode always reports true so
  // the caller re-kicks its blocked upstream port either way.
  bool release(std::int64_t bytes) noexcept {
    occupancy_ -= bytes;
    if (spec_.kind == flow_kind::pause) {
      if (paused_ && occupancy_ <= spec_.pause_low) {
        paused_ = false;
        return true;
      }
      return false;
    }
    return true;
  }

  [[nodiscard]] std::int64_t occupancy() const noexcept { return occupancy_; }
  [[nodiscard]] bool paused() const noexcept { return paused_; }
  [[nodiscard]] sim::time_ps return_delay() const noexcept {
    return return_delay_;
  }

 private:
  flow_spec spec_;
  sim::time_ps return_delay_ = 0;
  std::int64_t occupancy_ = 0;  // bytes committed to the downstream buffer
  bool paused_ = false;         // pause mode: XOFF asserted
};

}  // namespace ups::net
