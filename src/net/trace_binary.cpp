#include "net/trace_binary.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <fstream>
#include <ostream>
#include <thread>

#include "core/spsc_ring.h"
#include "core/varint.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define UPS_TRACE_HAVE_MMAP 1
#endif

namespace ups::net {

namespace {

static_assert(std::endian::native == std::endian::little,
              "binary trace I/O assumes a little-endian host; add "
              "byte-swapping load/store helpers before porting to a "
              "big-endian target");

template <typename T>
[[nodiscard]] T load_le(const std::uint8_t* p) noexcept {
  T v;
  std::memcpy(&v, p, sizeof(T));  // unaligned-safe; LE host asserted above
  return v;
}

template <typename T>
void store_le(std::uint8_t* p, T v) noexcept {
  std::memcpy(p, &v, sizeof(T));
}

template <typename T>
void append_le(std::vector<std::uint8_t>& buf, T v) {
  const std::size_t n = buf.size();
  buf.resize(n + sizeof(T));
  store_le(buf.data() + n, v);
}

// One sized read into a pre-sized buffer — istreambuf_iterator would pull
// the file a character at a time through virtual calls, hopeless at the
// GB/s these formats target.
std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw std::runtime_error("trace: cannot open " + path);
  const std::streamoff size = is.tellg();
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  is.seekg(0);
  is.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!is) throw std::runtime_error("trace: read failed for " + path);
  return bytes;
}

// Maps `path` read-only (falling back to an owned buffer without mmap) and
// applies the page-cache advice. Shared by both file-backed cursors.
struct file_image {
  void* mapping = nullptr;  // non-null when mmap owns the bytes
  std::size_t mapping_size = 0;
  std::vector<std::uint8_t> owned;
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

file_image map_trace_file(const std::string& path, trace_access access) {
  file_image img;
#if UPS_TRACE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("trace: cannot open " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("trace: cannot stat " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw trace_format_error("trace: file shorter than a trace header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    throw std::runtime_error("trace: mmap failed for " + path);
  }
#if defined(MADV_SEQUENTIAL) && defined(MADV_RANDOM)
  // Advice only — a failure costs readahead tuning, never correctness.
  (void)::madvise(map, size,
                  access == trace_access::random ? MADV_RANDOM
                                                 : MADV_SEQUENTIAL);
#endif
#if defined(MADV_WILLNEED)
  // Front-to-back consumers want the whole file; start the fetch now so
  // the first blocks stream in behind the header/index validation pass.
  if (access != trace_access::random) {
    (void)::madvise(map, size, MADV_WILLNEED);
  }
#endif
  img.mapping = map;
  img.mapping_size = size;
  img.data = static_cast<const std::uint8_t*>(map);
  img.size = size;
#else
  (void)access;
  // No mmap on this platform: fall back to reading the file into an owned
  // buffer (still one parse-free image; just not shared across processes).
  img.owned = slurp(path);
  img.data = img.owned.data();
  img.size = img.owned.size();
#endif
  return img;
}

[[nodiscard]] std::uint32_t payload_len_of(const packet_record& r) {
  return kTraceV2FixedPayloadBytes +
         4 * static_cast<std::uint32_t>(r.path.size()) +
         8 * static_cast<std::uint32_t>(r.hop_departs.size()) +
         (r.dropped() ? kTraceV2DropSuffixBytes : 0) +
         (r.stalled() ? kTraceV2StallSuffixBytes : 0);
}

// Serializes one record (length prefix + payload) into `buf`, reusing its
// capacity. Single encoder shared by the streaming writer so the layout
// lives in one place, mirrored by decode_payload below.
void encode_record(std::vector<std::uint8_t>& buf, const packet_record& r) {
  buf.clear();
  append_le<std::uint32_t>(buf, payload_len_of(r));
  append_le<std::uint64_t>(buf, r.id);
  append_le<std::uint64_t>(buf, r.flow_id);
  append_le<std::uint32_t>(buf, r.seq_in_flow);
  append_le<std::uint32_t>(buf, r.size_bytes);
  append_le<std::int32_t>(buf, r.src_host);
  append_le<std::int32_t>(buf, r.dst_host);
  append_le<std::int64_t>(buf, r.ingress_time);
  append_le<std::int64_t>(buf, r.egress_time);
  append_le<std::int64_t>(buf, r.queueing_delay);
  append_le<std::uint64_t>(buf, r.flow_size_bytes);
  append_le<std::uint32_t>(buf, static_cast<std::uint32_t>(r.path.size()));
  append_le<std::uint32_t>(buf,
                           static_cast<std::uint32_t>(r.hop_departs.size()));
  for (const node_id n : r.path) append_le<std::int32_t>(buf, n);
  for (const sim::time_ps d : r.hop_departs) append_le<std::int64_t>(buf, d);
  if (r.dropped()) {
    append_le<std::int32_t>(buf, r.drop_hop);
    append_le<std::uint32_t>(buf, static_cast<std::uint32_t>(r.dropped_kind));
    append_le<std::int64_t>(buf, r.drop_time);
  }
  if (r.stalled()) {
    append_le<std::uint32_t>(buf, kTraceV2StallTag);
    append_le<std::int32_t>(buf, r.stall_hop);
    append_le<std::uint32_t>(buf, r.stall_count);
    append_le<std::int64_t>(buf, r.stall_time);
  }
}

// Decodes one payload of `len` bytes into `r`, reusing its vector capacity.
// `len` has already been bounds-checked against the file; this validates
// internal consistency (array lengths vs payload length).
void decode_payload(const std::uint8_t* p, std::uint32_t len,
                    packet_record& r) {
  if (len < kTraceV2FixedPayloadBytes) {
    throw trace_format_error("trace v2: record payload shorter than the "
                             "fixed prefix");
  }
  r.drop_hop = -1;
  r.dropped_kind = drop_kind::buffer;
  r.drop_time = -1;
  r.stall_hop = -1;
  r.stall_count = 0;
  r.stall_time = 0;
  r.id = load_le<std::uint64_t>(p);
  r.flow_id = load_le<std::uint64_t>(p + 8);
  r.seq_in_flow = load_le<std::uint32_t>(p + 16);
  r.size_bytes = load_le<std::uint32_t>(p + 20);
  r.src_host = load_le<std::int32_t>(p + 24);
  r.dst_host = load_le<std::int32_t>(p + 28);
  r.ingress_time = load_le<std::int64_t>(p + 32);
  r.egress_time = load_le<std::int64_t>(p + 40);
  r.queueing_delay = load_le<std::int64_t>(p + 48);
  r.flow_size_bytes = load_le<std::uint64_t>(p + 56);
  const std::uint32_t npath = load_le<std::uint32_t>(p + 64);
  const std::uint32_t ndeparts = load_le<std::uint32_t>(p + 68);
  // Overflow-safe: all operands fit in 64 bits by construction.
  const std::uint64_t want = static_cast<std::uint64_t>(
      kTraceV2FixedPayloadBytes) + 4ull * npath + 8ull * ndeparts;
  // The bytes past the arrays identify the optional suffixes: none, drop
  // (16), stall (20, tag-checked below), or drop followed by stall (36).
  const std::uint64_t extra = len >= want ? len - want : UINT64_MAX;
  const bool has_drop =
      extra == kTraceV2DropSuffixBytes ||
      extra == kTraceV2DropSuffixBytes + kTraceV2StallSuffixBytes;
  const bool has_stall =
      extra == kTraceV2StallSuffixBytes ||
      extra == kTraceV2DropSuffixBytes + kTraceV2StallSuffixBytes;
  if (extra != 0 && !has_drop && !has_stall) {
    throw trace_format_error(
        "trace v2: record array lengths disagree with its length prefix");
  }
  const std::uint8_t* q = p + kTraceV2FixedPayloadBytes;
  r.path.resize(npath);
  for (std::uint32_t i = 0; i < npath; ++i) {
    r.path[i] = load_le<std::int32_t>(q + 4ull * i);
  }
  q += 4ull * npath;
  r.hop_departs.resize(ndeparts);
  for (std::uint32_t i = 0; i < ndeparts; ++i) {
    r.hop_departs[i] = load_le<std::int64_t>(q + 8ull * i);
  }
  q += 8ull * ndeparts;
  if (has_drop) {
    r.drop_hop = load_le<std::int32_t>(q);
    const std::uint32_t kind = load_le<std::uint32_t>(q + 4);
    r.drop_time = load_le<std::int64_t>(q + 8);
    if (r.drop_hop < 0 || static_cast<std::uint32_t>(r.drop_hop) >= npath ||
        kind > 1) {
      throw trace_format_error("trace v2: malformed drop suffix");
    }
    r.dropped_kind = static_cast<drop_kind>(kind);
    q += kTraceV2DropSuffixBytes;
  }
  if (has_stall) {
    // The tag distinguishes a genuine stall suffix from any other 20-byte
    // trailer a corrupt length prefix could imply.
    if (load_le<std::uint32_t>(q) != kTraceV2StallTag) {
      throw trace_format_error("trace v2: malformed stall suffix tag");
    }
    r.stall_hop = load_le<std::int32_t>(q + 4);
    r.stall_count = load_le<std::uint32_t>(q + 8);
    r.stall_time = load_le<std::int64_t>(q + 12);
    if (r.stall_hop < 0 || static_cast<std::uint32_t>(r.stall_hop) >= npath ||
        r.stall_count == 0 || r.stall_time < 0) {
      throw trace_format_error("trace v2: malformed stall suffix");
    }
  }
}

struct header_fields {
  std::uint64_t record_count = 0;
  std::uint64_t index_offset = 0;
};

// Validates magic/version/size invariants of a complete in-memory image
// (shared by the mmap cursor and the batch loader).
header_fields check_header(const std::uint8_t* data, std::size_t size) {
  if (size < kTraceV2HeaderBytes) {
    throw trace_format_error("trace v2: file shorter than the header");
  }
  if (std::memcmp(data, kTraceV2Magic, sizeof(kTraceV2Magic)) != 0) {
    throw trace_format_error("trace v2: bad magic");
  }
  const std::uint32_t version = load_le<std::uint32_t>(data + 8);
  if (version != kTraceV2Version) {
    throw trace_format_error("trace v2: unsupported version " +
                             std::to_string(version));
  }
  const std::uint32_t header_bytes = load_le<std::uint32_t>(data + 12);
  if (header_bytes != kTraceV2HeaderBytes) {
    throw trace_format_error("trace v2: unexpected header size");
  }
  header_fields h;
  h.record_count = load_le<std::uint64_t>(data + 16);
  h.index_offset = load_le<std::uint64_t>(data + 24);
  if (h.index_offset < kTraceV2HeaderBytes || h.index_offset > size) {
    throw trace_format_error("trace v2: index offset out of bounds");
  }
  // Exact-size check doubles as the declared-count-vs-contents gate: a
  // truncated index or trailing garbage both fail here.
  if (h.record_count > (size - h.index_offset) / 8 ||
      h.index_offset + 8 * h.record_count != size) {
    throw trace_format_error(
        "trace v2: file size disagrees with declared record count");
  }
  return h;
}

[[nodiscard]] bool file_starts_with(const std::string& path,
                                    const char (&magic)[8]) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("trace: cannot open " + path);
  char head[8] = {};
  is.read(head, sizeof(head));
  return is.gcount() == sizeof(head) &&
         std::memcmp(head, magic, sizeof(head)) == 0;
}

// --- v3 primitives -----------------------------------------------------------

// LEB128 + zigzag come from the shared core implementation; the decoders
// below go through core::get_varints — the SWAR batch path with the
// bounds-checked scalar loop as reference tail — bound to this format's
// typed error.
using core::put_varint;
using core::unzigzag;
using core::zigzag;

// Decodes exactly `count` varints of column `what` into `out`.
inline void get_column(const std::uint8_t*& p, const std::uint8_t* end,
                       std::uint64_t* out, std::size_t count,
                       const char* what) {
  core::get_varints<trace_format_error>(p, end, out, count, what);
}

// Wrapping u64 difference cast to signed: round-trips every (a, b) pair
// exactly (the decoder applies the inverse wrap), while keeping the common
// small-difference case one varint byte. Avoids the signed-overflow UB a
// plain i64 subtraction would hit on extreme operands.
[[nodiscard]] constexpr std::int64_t wrap_diff(std::int64_t a,
                                               std::int64_t b) noexcept {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}

[[nodiscard]] constexpr std::int64_t wrap_add(std::int64_t base,
                                              std::int64_t delta) noexcept {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(base) +
                                   static_cast<std::uint64_t>(delta));
}

[[nodiscard]] std::uint32_t narrow_u32(std::uint64_t v, const char* what) {
  if (v > UINT32_MAX) {
    throw trace_format_error(std::string("trace v3: ") + what +
                             " overflows 32 bits");
  }
  return static_cast<std::uint32_t>(v);
}

[[nodiscard]] node_id narrow_node(std::int64_t v, const char* what) {
  if (v < INT32_MIN || v > INT32_MAX) {
    throw trace_format_error(std::string("trace v3: ") + what +
                             " overflows a node id");
  }
  return static_cast<node_id>(v);
}

// Column order (see kTraceV3ColumnNames): the numeric indices below are the
// single source of truth for both encoder and decoder.
enum v3_col : std::size_t {
  kColIngress = 0,
  kColEgress = 1,
  kColId = 2,
  kColFlow = 3,
  kColSeq = 4,
  kColSize = 5,
  kColSrc = 6,
  kColDst = 7,
  kColQdelay = 8,
  kColFlowSize = 9,
  kColPathLen = 10,
  kColPath = 11,
  kColDepartsLen = 12,
  kColDeparts = 13,
  // 16-column (lossy) files only:
  kColDropInfo = 14,
  kColDropTime = 15,
  // 18-column (backpressured) files only:
  kColStallInfo = 16,
  kColStallTime = 17,
};

struct v3_header_fields {
  std::uint64_t record_count = 0;
  std::uint64_t block_count = 0;
  std::uint64_t data_offset = 0;
  std::uint64_t index_capacity = 0;
  std::uint32_t records_per_block = 0;
  std::uint32_t column_count = 0;  // normalized: 0 -> kTraceV3ColumnCount
};

v3_header_fields check_v3_header(const std::uint8_t* data, std::size_t size) {
  if (size < kTraceV3HeaderBytes) {
    throw trace_format_error("trace v3: file shorter than the header");
  }
  if (std::memcmp(data, kTraceV3Magic, sizeof(kTraceV3Magic)) != 0) {
    throw trace_format_error("trace v3: bad magic");
  }
  const std::uint32_t version = load_le<std::uint32_t>(data + 8);
  if (version != kTraceV3Version) {
    throw trace_format_error("trace v3: unsupported version " +
                             std::to_string(version));
  }
  const std::uint32_t header_bytes = load_le<std::uint32_t>(data + 12);
  if (header_bytes != kTraceV3HeaderBytes) {
    throw trace_format_error("trace v3: unexpected header size");
  }
  v3_header_fields h;
  h.record_count = load_le<std::uint64_t>(data + 16);
  h.block_count = load_le<std::uint64_t>(data + 24);
  h.data_offset = load_le<std::uint64_t>(data + 32);
  h.index_capacity = load_le<std::uint64_t>(data + 40);
  h.records_per_block = load_le<std::uint32_t>(data + 48);
  if (h.records_per_block == 0) {
    throw trace_format_error("trace v3: zero records per block");
  }
  h.column_count = load_le<std::uint32_t>(data + 52);
  if (h.column_count == 0) h.column_count = kTraceV3ColumnCount;
  if (h.column_count != kTraceV3ColumnCount &&
      h.column_count != kTraceV3DropColumnCount &&
      h.column_count != kTraceV3StallColumnCount) {
    throw trace_format_error("trace v3: unsupported column count " +
                             std::to_string(h.column_count));
  }
  // Division-form bound first so the multiplication below cannot overflow.
  if (h.index_capacity >
      (size - kTraceV3HeaderBytes) / kTraceV3IndexEntryBytes) {
    throw trace_format_error("trace v3: index region out of bounds");
  }
  if (h.data_offset != kTraceV3HeaderBytes +
                           kTraceV3IndexEntryBytes * h.index_capacity) {
    throw trace_format_error(
        "trace v3: data offset disagrees with index capacity");
  }
  if (h.block_count > h.index_capacity) {
    throw trace_format_error("trace v3: block count exceeds index capacity");
  }
  return h;
}

}  // namespace

// --- writer ------------------------------------------------------------------

trace_binary_writer::trace_binary_writer(std::ostream& os) : os_(&os) {
  // Placeholder header; finish() seeks back and patches the counts.
  std::uint8_t header[kTraceV2HeaderBytes] = {};
  std::memcpy(header, kTraceV2Magic, sizeof(kTraceV2Magic));
  store_le<std::uint32_t>(header + 8, kTraceV2Version);
  store_le<std::uint32_t>(header + 12, kTraceV2HeaderBytes);
  os_->write(reinterpret_cast<const char*>(header), sizeof(header));
  if (!*os_) throw trace_format_error("trace v2: header write failed");
}

void trace_binary_writer::append(const packet_record& r) {
  if (finished_) {
    throw std::logic_error("trace_binary_writer: append after finish");
  }
  encode_record(buf_, r);
  os_->write(reinterpret_cast<const char*>(buf_.data()),
             static_cast<std::streamsize>(buf_.size()));
  if (!*os_) throw trace_format_error("trace v2: record write failed");
  index_.emplace_back(r.ingress_time, offset_);
  offset_ += buf_.size();
}

void trace_binary_writer::finish() {
  if (finished_) {
    throw std::logic_error("trace_binary_writer: finish called twice");
  }
  finished_ = true;
  // (ingress, offset) pairs: offsets are strictly increasing, so plain sort
  // is deterministic and keeps file order among equal ingress instants —
  // the same tie-break trace_ingress_cursor's stable_sort produces.
  std::sort(index_.begin(), index_.end());
  buf_.clear();
  for (const auto& [ingress, off] : index_) {
    append_le<std::uint64_t>(buf_, off);
  }
  os_->write(reinterpret_cast<const char*>(buf_.data()),
             static_cast<std::streamsize>(buf_.size()));
  os_->seekp(16);
  buf_.clear();
  append_le<std::uint64_t>(buf_, index_.size());
  append_le<std::uint64_t>(buf_, offset_);  // == index offset after records
  os_->write(reinterpret_cast<const char*>(buf_.data()), 16);
  os_->seekp(0, std::ios::end);
  os_->flush();
  if (!*os_) throw trace_format_error("trace v2: footer write failed");
}

void write_trace_v2(std::ostream& os, const trace& t) {
  trace_binary_writer w(os);
  for (const auto& r : t.packets) w.append(r);
  w.finish();
}

void save_trace_v2(const std::string& path, const trace& t) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("trace: cannot open " + path);
  write_trace_v2(os, t);
}

bool is_trace_v2_file(const std::string& path) {
  return file_starts_with(path, kTraceV2Magic);
}

bool is_trace_v3_file(const std::string& path) {
  return file_starts_with(path, kTraceV3Magic);
}

// --- batch loader (file order) ----------------------------------------------

trace read_trace_v2(const std::uint8_t* data, std::size_t size) {
  const header_fields h = check_header(data, size);
  trace t;
  t.packets.reserve(h.record_count);
  std::uint64_t off = kTraceV2HeaderBytes;
  for (std::uint64_t i = 0; i < h.record_count; ++i) {
    if (off + 4 > h.index_offset) {
      throw trace_format_error("trace v2: record runs past the index "
                               "(mid-record EOF)");
    }
    const std::uint32_t len = load_le<std::uint32_t>(data + off);
    if (len > h.index_offset - off - 4) {
      throw trace_format_error("trace v2: record runs past the index "
                               "(mid-record EOF)");
    }
    packet_record r;
    decode_payload(data + off + 4, len, r);
    t.packets.push_back(std::move(r));
    off += 4 + len;
  }
  if (off != h.index_offset) {
    throw trace_format_error(
        "trace v2: record region holds more than the declared count");
  }
  return t;
}

trace load_trace_v2(const std::string& path) {
  const auto bytes = slurp(path);
  return read_trace_v2(bytes.data(), bytes.size());
}

// --- record_view -------------------------------------------------------------

std::uint64_t record_view::id() const noexcept {
  return load_le<std::uint64_t>(p_);
}
std::uint64_t record_view::flow_id() const noexcept {
  return load_le<std::uint64_t>(p_ + 8);
}
std::uint32_t record_view::seq_in_flow() const noexcept {
  return load_le<std::uint32_t>(p_ + 16);
}
std::uint32_t record_view::size_bytes() const noexcept {
  return load_le<std::uint32_t>(p_ + 20);
}
node_id record_view::src_host() const noexcept {
  return load_le<std::int32_t>(p_ + 24);
}
node_id record_view::dst_host() const noexcept {
  return load_le<std::int32_t>(p_ + 28);
}
sim::time_ps record_view::ingress_time() const noexcept {
  return load_le<std::int64_t>(p_ + 32);
}
sim::time_ps record_view::egress_time() const noexcept {
  return load_le<std::int64_t>(p_ + 40);
}
sim::time_ps record_view::queueing_delay() const noexcept {
  return load_le<std::int64_t>(p_ + 48);
}
std::uint64_t record_view::flow_size_bytes() const noexcept {
  return load_le<std::uint64_t>(p_ + 56);
}
std::uint32_t record_view::path_len() const noexcept {
  return load_le<std::uint32_t>(p_ + 64);
}
std::uint32_t record_view::departs_len() const noexcept {
  return load_le<std::uint32_t>(p_ + 68);
}

// --- mmap cursor -------------------------------------------------------------

trace_mmap_cursor::trace_mmap_cursor(const std::string& path,
                                     trace_access access) {
  file_image img = map_trace_file(path, access);
  mapping_ = img.mapping;
  mapping_size_ = img.mapping_size;
  owned_bytes_ = std::move(img.owned);
  data_ = mapping_ != nullptr ? img.data : owned_bytes_.data();
  size_ = img.size;
  validate_header();
}

trace_mmap_cursor::trace_mmap_cursor(const std::uint8_t* data,
                                     std::size_t size)
    : data_(data), size_(size) {
  validate_header();
}

trace_mmap_cursor::~trace_mmap_cursor() {
#if UPS_TRACE_HAVE_MMAP
  if (mapping_ != nullptr) ::munmap(mapping_, mapping_size_);
#endif
}

void trace_mmap_cursor::validate_header() {
  const header_fields h = check_header(data_, size_);
  count_ = h.record_count;
  index_offset_ = h.index_offset;
}

std::uint64_t trace_mmap_cursor::record_offset(std::uint64_t i) const {
  const std::uint64_t off =
      load_le<std::uint64_t>(data_ + index_offset_ + 8 * i);
  // Subtraction, not `off + 4 > index_offset_`: a near-UINT64_MAX entry
  // would wrap the addition and sail through to an out-of-bounds read.
  // index_offset_ >= kTraceV2HeaderBytes, so the subtraction cannot wrap.
  if (off < kTraceV2HeaderBytes || off > index_offset_ - 4) {
    throw trace_format_error("trace v2: index entry out of bounds");
  }
  return off;
}

const std::uint8_t* trace_mmap_cursor::payload_at(std::uint64_t off,
                                                  std::uint32_t& len) const {
  len = load_le<std::uint32_t>(data_ + off);
  if (len > index_offset_ - off - 4) {
    throw trace_format_error(
        "trace v2: record runs past the index (mid-record EOF)");
  }
  if (len < kTraceV2FixedPayloadBytes) {
    throw trace_format_error(
        "trace v2: record payload shorter than the fixed prefix");
  }
  return data_ + off + 4;
}

record_view trace_mmap_cursor::view_at(std::uint64_t i) const {
  if (i >= count_) {
    throw std::out_of_range("trace v2: record index out of range");
  }
  std::uint32_t len = 0;
  return record_view(payload_at(record_offset(i), len));
}

void trace_mmap_cursor::decode_into(std::uint64_t i, packet_record& r) {
  std::uint32_t len = 0;
  const std::uint8_t* payload = payload_at(record_offset(i), len);
  decode_payload(payload, len, r);
  // Enforce the footer invariant as we walk it: the index — not the record
  // region — promises ingress order, so a mutated index fails loudly here
  // instead of desequencing the replay.
  if (r.ingress_time < last_ingress_) {
    throw trace_format_error("trace v2: ingress index out of order");
  }
  last_ingress_ = r.ingress_time;
}

const packet_record* trace_mmap_cursor::next() {
  if (pos_ >= count_) return nullptr;
  if (slots_.empty()) slots_.emplace_back();
  decode_into(pos_++, slots_[0]);
  return &slots_[0];
}

std::size_t trace_mmap_cursor::next_run(
    std::vector<const packet_record*>& out) {
  if (pos_ >= count_) return 0;
  std::size_t n = 0;
  sim::time_ps run_ingress = 0;
  for (;;) {
    if (n == slots_.size()) slots_.emplace_back();
    decode_into(pos_++, slots_[n]);
    if (n == 0) run_ingress = slots_[0].ingress_time;
    ++n;
    if (pos_ >= count_) break;
    // Peek the next record's ingress straight off the mapping: same-instant
    // run detection costs one unaligned load, not a decode.
    std::uint32_t len = 0;
    const std::uint8_t* payload = payload_at(record_offset(pos_), len);
    if (record_view(payload).ingress_time() != run_ingress) break;
  }
  // Pointers are published only after the run is fully decoded: growing
  // slots_ mid-run may reallocate and would dangle anything pushed earlier.
  for (std::size_t i = 0; i < n; ++i) out.push_back(&slots_[i]);
  return n;
}

// --- v3 writer ---------------------------------------------------------------

trace_v3_writer::trace_v3_writer(std::ostream& os,
                                 std::uint64_t record_capacity,
                                 std::uint32_t records_per_block,
                                 bool with_drops, bool with_stalls)
    : os_(&os),
      records_per_block_(records_per_block),
      ncols_(with_stalls ? kTraceV3StallColumnCount
             : with_drops ? kTraceV3DropColumnCount
                          : kTraceV3ColumnCount) {
  if (records_per_block_ == 0) {
    throw std::logic_error("trace_v3_writer: records_per_block must be > 0");
  }
  index_capacity_ =
      (record_capacity + records_per_block_ - 1) / records_per_block_;
  data_offset_ = kTraceV3HeaderBytes +
                 static_cast<std::uint64_t>(kTraceV3IndexEntryBytes) *
                     index_capacity_;
  offset_ = data_offset_;
  std::uint8_t header[kTraceV3HeaderBytes] = {};
  std::memcpy(header, kTraceV3Magic, sizeof(kTraceV3Magic));
  store_le<std::uint32_t>(header + 8, kTraceV3Version);
  store_le<std::uint32_t>(header + 12, kTraceV3HeaderBytes);
  // record_count / block_count at 16/24 stay zero until finish() patches.
  store_le<std::uint64_t>(header + 32, data_offset_);
  store_le<std::uint64_t>(header + 40, index_capacity_);
  store_le<std::uint32_t>(header + 48, records_per_block_);
  // Zero-loss files leave column_count 0 (legacy spelling of the 14 base
  // columns) so their bytes stay identical to pre-drop-support output.
  if (ncols_ != kTraceV3ColumnCount) {
    store_le<std::uint32_t>(header + 52, ncols_);
  }
  os_->write(reinterpret_cast<const char*>(header), sizeof(header));
  // Reserve the index region as zeros; finish() seeks back and fills it.
  static constexpr std::size_t kChunk = 1 << 16;
  std::uint8_t zeros[kChunk] = {};
  std::uint64_t left =
      static_cast<std::uint64_t>(kTraceV3IndexEntryBytes) * index_capacity_;
  while (left > 0) {
    const std::size_t step =
        static_cast<std::size_t>(std::min<std::uint64_t>(left, kChunk));
    os_->write(reinterpret_cast<const char*>(zeros),
               static_cast<std::streamsize>(step));
    left -= step;
  }
  if (!*os_) throw trace_format_error("trace v3: header write failed");
  index_.reserve(index_capacity_);
}

void trace_v3_writer::append(const packet_record& r) {
  if (finished_) {
    throw std::logic_error("trace_v3_writer: append after finish");
  }
  if (r.ingress_time < last_ingress_) {
    throw trace_format_error(
        "trace v3: records must be appended in ingress order");
  }
  last_ingress_ = r.ingress_time;
  if (in_block_ == 0) {
    block_base_ = r.ingress_time;
    prev_ingress_ = r.ingress_time;
    prev_id_ = 0;
    prev_flow_ = 0;
  }
  put_varint(cols_[kColIngress],
             static_cast<std::uint64_t>(r.ingress_time) -
                 static_cast<std::uint64_t>(prev_ingress_));
  prev_ingress_ = r.ingress_time;
  put_varint(cols_[kColEgress],
             zigzag(wrap_diff(r.egress_time, r.ingress_time)));
  put_varint(cols_[kColId],
             zigzag(static_cast<std::int64_t>(r.id - prev_id_)));
  prev_id_ = r.id;
  put_varint(cols_[kColFlow],
             zigzag(static_cast<std::int64_t>(r.flow_id - prev_flow_)));
  prev_flow_ = r.flow_id;
  put_varint(cols_[kColSeq], r.seq_in_flow);
  put_varint(cols_[kColSize], r.size_bytes);
  put_varint(cols_[kColSrc], zigzag(r.src_host));
  put_varint(cols_[kColDst], zigzag(r.dst_host));
  put_varint(cols_[kColQdelay], zigzag(r.queueing_delay));
  put_varint(cols_[kColFlowSize], r.flow_size_bytes);
  put_varint(cols_[kColPathLen], r.path.size());
  for (const node_id n : r.path) put_varint(cols_[kColPath], zigzag(n));
  put_varint(cols_[kColDepartsLen], r.hop_departs.size());
  sim::time_ps prev_depart = r.ingress_time;
  for (const sim::time_ps d : r.hop_departs) {
    put_varint(cols_[kColDeparts], zigzag(wrap_diff(d, prev_depart)));
    prev_depart = d;
  }
  if (ncols_ >= kTraceV3DropColumnCount) {
    const std::uint64_t info =
        r.dropped() ? ((static_cast<std::uint64_t>(r.drop_hop) + 1) << 2) |
                          static_cast<std::uint64_t>(r.dropped_kind)
                    : 0;
    put_varint(cols_[kColDropInfo], info);
    put_varint(cols_[kColDropTime],
               r.dropped() ? zigzag(wrap_diff(r.drop_time, r.ingress_time))
                           : 0);
  } else if (r.dropped()) {
    throw trace_format_error(
        "trace v3: dropped record appended to a writer without drop "
        "columns");
  }
  if (ncols_ >= kTraceV3StallColumnCount) {
    const std::uint64_t sinfo =
        r.stalled() ? (static_cast<std::uint64_t>(r.stall_count) << 16) |
                          (static_cast<std::uint64_t>(r.stall_hop) + 1)
                    : 0;
    put_varint(cols_[kColStallInfo], sinfo);
    put_varint(cols_[kColStallTime],
               r.stalled() ? static_cast<std::uint64_t>(r.stall_time) : 0);
  } else if (r.stalled()) {
    throw trace_format_error(
        "trace v3: stalled record appended to a writer without stall "
        "columns");
  }
  ++in_block_;
  ++written_;
  if (in_block_ == records_per_block_) flush_block();
}

void trace_v3_writer::flush_block() {
  if (in_block_ == 0) return;
  if (index_.size() == index_capacity_) {
    throw trace_format_error(
        "trace v3: writer exceeded its declared record capacity");
  }
  const std::uint32_t header_bytes = trace_v3_block_header_bytes(ncols_);
  std::uint64_t bytes = header_bytes;
  for (std::size_t c = 0; c < ncols_; ++c) bytes += cols_[c].size();
  if (bytes > UINT32_MAX) {
    throw trace_format_error("trace v3: block exceeds 4 GiB");
  }
  block_buf_.clear();
  block_buf_.resize(header_bytes);
  std::uint8_t* h = block_buf_.data();
  store_le<std::uint32_t>(h, in_block_);
  store_le<std::uint32_t>(h + 4, static_cast<std::uint32_t>(bytes));
  store_le<std::int64_t>(h + 8, block_base_);
  store_le<std::int64_t>(h + 16, prev_ingress_);  // block max ingress
  for (std::size_t c = 0; c < ncols_; ++c) {
    store_le<std::uint32_t>(h + 24 + 4 * c,
                            static_cast<std::uint32_t>(cols_[c].size()));
  }
  for (std::size_t c = 0; c < ncols_; ++c) {
    block_buf_.insert(block_buf_.end(), cols_[c].begin(), cols_[c].end());
    cols_[c].clear();
  }
  os_->write(reinterpret_cast<const char*>(block_buf_.data()),
             static_cast<std::streamsize>(block_buf_.size()));
  if (!*os_) throw trace_format_error("trace v3: block write failed");
  index_.push_back({offset_, bytes, block_base_, prev_ingress_});
  offset_ += bytes;
  in_block_ = 0;
}

void trace_v3_writer::finish() {
  if (finished_) {
    throw std::logic_error("trace_v3_writer: finish called twice");
  }
  flush_block();
  finished_ = true;
  block_buf_.clear();
  for (const auto& e : index_) {
    append_le<std::uint64_t>(block_buf_, e.offset);
    append_le<std::uint64_t>(block_buf_, e.bytes);
    append_le<std::int64_t>(block_buf_, e.min_ingress);
    append_le<std::int64_t>(block_buf_, e.max_ingress);
  }
  os_->seekp(kTraceV3HeaderBytes);
  os_->write(reinterpret_cast<const char*>(block_buf_.data()),
             static_cast<std::streamsize>(block_buf_.size()));
  os_->seekp(16);
  block_buf_.clear();
  append_le<std::uint64_t>(block_buf_, written_);
  append_le<std::uint64_t>(block_buf_, index_.size());
  os_->write(reinterpret_cast<const char*>(block_buf_.data()), 16);
  os_->seekp(0, std::ios::end);
  os_->flush();
  if (!*os_) throw trace_format_error("trace v3: index write failed");
}

void write_trace_v3(std::ostream& os, const trace& t) {
  // Emit in (ingress, position) order — the stable tie-break
  // trace_ingress_cursor uses — so any input order produces the same file
  // and the same replay as the v1/v2 paths.
  std::vector<std::uint32_t> order(t.packets.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return t.packets[a].ingress_time <
                            t.packets[b].ingress_time;
                   });
  bool any_dropped = false;
  bool any_stalled = false;
  for (const auto& r : t.packets) {
    if (r.dropped()) any_dropped = true;
    if (r.stalled()) any_stalled = true;
    if (any_dropped && any_stalled) break;
  }
  trace_v3_writer w(os, t.packets.size(), kTraceV3BlockRecords, any_dropped,
                    any_stalled);
  for (const std::uint32_t i : order) w.append(t.packets[i]);
  w.finish();
}

void save_trace_v3(const std::string& path, const trace& t) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("trace: cannot open " + path);
  write_trace_v3(os, t);
}

trace read_trace_v3(const std::uint8_t* data, std::size_t size) {
  trace_v3_cursor cur(data, size);
  trace t;
  t.packets.reserve(cur.size_hint());
  while (const packet_record* r = cur.next()) t.packets.push_back(*r);
  return t;
}

trace load_trace_v3(const std::string& path) {
  trace_v3_cursor cur(path);
  trace t;
  t.packets.reserve(cur.size_hint());
  while (const packet_record* r = cur.next()) t.packets.push_back(*r);
  return t;
}

// --- v3 cursor ---------------------------------------------------------------

trace_v3_cursor::trace_v3_cursor(const std::string& path,
                                 trace_access access) {
  file_image img = map_trace_file(path, access);
  mapping_ = img.mapping;
  mapping_size_ = img.mapping_size;
  owned_bytes_ = std::move(img.owned);
  data_ = mapping_ != nullptr ? img.data : owned_bytes_.data();
  size_ = img.size;
  validate_header_and_index();
  if (access == trace_access::decode_ahead) {
    pipe_ = std::make_unique<pipeline>();
  }
}

trace_v3_cursor::trace_v3_cursor(const std::uint8_t* data, std::size_t size)
    : data_(data), size_(size) {
  validate_header_and_index();
}

trace_v3_cursor::~trace_v3_cursor() {
  stop_pipeline();
#if UPS_TRACE_HAVE_MMAP
  if (mapping_ != nullptr) ::munmap(mapping_, mapping_size_);
#endif
}

void trace_v3_cursor::validate_header_and_index() {
  const v3_header_fields h = check_v3_header(data_, size_);
  count_ = h.record_count;
  block_count_ = h.block_count;
  data_offset_ = h.data_offset;
  index_capacity_ = h.index_capacity;
  records_per_block_ = h.records_per_block;
  ncols_ = h.column_count;
  // One pass over the leading index pins down every block's placement
  // before any decode: blocks must tile [data_offset, file end) exactly and
  // carry non-decreasing ingress bounds. After this, seeks can trust any
  // entry without re-checking, and truncation or trailing garbage is caught
  // here rather than mid-replay.
  std::uint64_t end = data_offset_;
  sim::time_ps prev_max = INT64_MIN;
  for (std::uint64_t b = 0; b < block_count_; ++b) {
    const block_bounds e = bounds_at(b);
    if (e.bytes < trace_v3_block_header_bytes(ncols_)) {
      throw trace_format_error("trace v3: block smaller than its header");
    }
    if (e.offset != end) {
      throw trace_format_error("trace v3: index entry out of place");
    }
    if (e.bytes > size_ - e.offset) {  // e.offset <= size_ by induction
      throw trace_format_error("trace v3: block out of bounds");
    }
    if (e.min_ingress > e.max_ingress || e.min_ingress < prev_max) {
      throw trace_format_error("trace v3: block index out of order");
    }
    prev_max = e.max_ingress;
    end = e.offset + e.bytes;
  }
  if (end != size_) {
    throw trace_format_error(
        "trace v3: file size disagrees with the block index");
  }
}

trace_v3_cursor::block_bounds trace_v3_cursor::bounds_at(
    std::uint64_t b) const {
  if (b >= index_capacity_) {
    throw std::out_of_range("trace v3: block index out of range");
  }
  const std::uint8_t* e =
      data_ + kTraceV3HeaderBytes + kTraceV3IndexEntryBytes * b;
  block_bounds out;
  out.offset = load_le<std::uint64_t>(e);
  out.bytes = load_le<std::uint64_t>(e + 8);
  out.min_ingress = load_le<std::int64_t>(e + 16);
  out.max_ingress = load_le<std::int64_t>(e + 24);
  return out;
}

std::uint32_t trace_v3_cursor::records_in_block(std::uint64_t b) const {
  if (b >= block_count_) {
    throw std::out_of_range("trace v3: block index out of range");
  }
  return load_le<std::uint32_t>(data_ + bounds_at(b).offset);
}

std::array<std::uint32_t, kTraceV3MaxColumnCount>
trace_v3_cursor::column_bytes_at(std::uint64_t b) const {
  if (b >= block_count_) {
    throw std::out_of_range("trace v3: block index out of range");
  }
  const std::uint8_t* h = data_ + bounds_at(b).offset;
  // Columns the file does not store read back as zero bytes.
  std::array<std::uint32_t, kTraceV3MaxColumnCount> out{};
  for (std::size_t c = 0; c < ncols_; ++c) {
    out[c] = load_le<std::uint32_t>(h + 24 + 4 * c);
  }
  return out;
}


void trace_v3_cursor::decode_block_into(std::uint64_t b,
                                        v3_block_scratch& sc) const {
  const block_bounds e = bounds_at(b);
  const std::uint8_t* p = data_ + e.offset;
  const std::uint32_t n = load_le<std::uint32_t>(p);
  const std::uint32_t block_bytes = load_le<std::uint32_t>(p + 4);
  const sim::time_ps base = load_le<std::int64_t>(p + 8);
  const sim::time_ps bmax = load_le<std::int64_t>(p + 16);
  if (n == 0 || n > records_per_block_) {
    throw trace_format_error("trace v3: block record count out of range");
  }
  if (block_bytes != e.bytes || base != e.min_ingress ||
      bmax != e.max_ingress) {
    throw trace_format_error(
        "trace v3: block header disagrees with the index");
  }
  std::uint32_t col_bytes[kTraceV3MaxColumnCount] = {};
  std::uint64_t total = trace_v3_block_header_bytes(ncols_);
  for (std::size_t c = 0; c < ncols_; ++c) {
    col_bytes[c] = load_le<std::uint32_t>(p + 24 + 4 * c);
    total += col_bytes[c];
  }
  if (total != e.bytes) {
    throw trace_format_error(
        "trace v3: column sizes disagree with the block size");
  }
  const std::uint8_t* col[kTraceV3MaxColumnCount] = {};
  {
    const std::uint8_t* q = p + trace_v3_block_header_bytes(ncols_);
    for (std::size_t c = 0; c < ncols_; ++c) {
      col[c] = q;
      q += col_bytes[c];
    }
  }
  sc.block = b;
  sc.n = n;
  // resize() reuses capacity — after the first full block no steady-state
  // allocation happens here.
  sc.ingress.resize(n);
  sc.egress.resize(n);
  sc.qdelay.resize(n);
  sc.id.resize(n);
  sc.flow.resize(n);
  sc.fsize.resize(n);
  sc.seq.resize(n);
  sc.psize.resize(n);
  sc.src.resize(n);
  sc.dst.resize(n);
  sc.path_pos.resize(n + 1);
  sc.departs_pos.resize(n + 1);
  if (ncols_ >= kTraceV3DropColumnCount) {
    sc.dropinfo.resize(n);
    sc.drop_time.resize(n);
  }
  if (ncols_ >= kTraceV3StallColumnCount) {
    sc.stallinfo.resize(n);
    sc.stall_time.resize(n);
  }
  // Every column decodes in two passes over the shared raw staging buffer:
  // one batched SWAR sweep that peels the varints (core::get_varints), then
  // one tight transform loop (prefix sums, zigzag, narrowing) the compiler
  // can vectorize. The batch decode enforces the column end; the leftover
  // check catches columns holding more bytes than their values consumed.
  const auto ensure_raw = [&sc](std::size_t count) -> std::uint64_t* {
    if (sc.raw.size() < count) sc.raw.resize(count);
    return sc.raw.data();
  };
  const auto decode_col = [&](std::size_t c, std::uint64_t* out,
                              std::size_t count) {
    const std::uint8_t* s = col[c];
    const std::uint8_t* send = s + col_bytes[c];
    get_column(s, send, out, count, "trace v3");
    if (s != send) {
      throw trace_format_error(std::string("trace v3: ") +
                               kTraceV3ColumnNames[c] +
                               " column has leftover bytes");
    }
  };
  std::uint64_t* raw = ensure_raw(n);
  {
    decode_col(kColIngress, raw, n);
    if (raw[0] != 0) {
      throw trace_format_error("trace v3: first ingress delta must be zero");
    }
    std::uint64_t cum = static_cast<std::uint64_t>(base);
    sim::time_ps prev = INT64_MIN;
    for (std::uint32_t i = 0; i < n; ++i) {
      cum += raw[i];
      const sim::time_ps t = static_cast<sim::time_ps>(cum);
      if (i != 0 && t < prev) {
        throw trace_format_error(
            "trace v3: ingress not monotone within a block");
      }
      sc.ingress[i] = t;
      prev = t;
    }
    if (sc.ingress[n - 1] != bmax) {
      throw trace_format_error(
          "trace v3: last ingress disagrees with the block bound");
    }
  }
  decode_col(kColEgress, raw, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sc.egress[i] = wrap_add(sc.ingress[i], unzigzag(raw[i]));
  }
  decode_col(kColId, raw, n);
  {
    std::uint64_t cum = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      cum += static_cast<std::uint64_t>(unzigzag(raw[i]));
      sc.id[i] = cum;
    }
  }
  decode_col(kColFlow, raw, n);
  {
    std::uint64_t cum = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      cum += static_cast<std::uint64_t>(unzigzag(raw[i]));
      sc.flow[i] = cum;
    }
  }
  decode_col(kColSeq, raw, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sc.seq[i] = narrow_u32(raw[i], "seq");
  }
  decode_col(kColSize, raw, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sc.psize[i] = narrow_u32(raw[i], "size");
  }
  decode_col(kColSrc, raw, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sc.src[i] = narrow_node(unzigzag(raw[i]), "src");
  }
  decode_col(kColDst, raw, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sc.dst[i] = narrow_node(unzigzag(raw[i]), "dst");
  }
  decode_col(kColQdelay, raw, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sc.qdelay[i] = unzigzag(raw[i]);
  }
  decode_col(kColFlowSize, raw, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sc.fsize[i] = raw[i];
  }
  // Length columns bound the data columns before anything is sized: every
  // element needs at least one byte, so a corrupt length claiming more
  // elements than its data column holds bytes is rejected here — never
  // turned into a resize (an allocation bomb) that fails later.
  {
    const std::uint8_t* s = col[kColPathLen];
    const std::uint8_t* send = s + col_bytes[kColPathLen];
    // Hop-free traces (the default recording mode) store n zero plens and
    // an empty path column; one vectorized scan replaces n varint decodes.
    if (col_bytes[kColPath] == 0 && col_bytes[kColPathLen] == n &&
        std::all_of(s, send, [](std::uint8_t v) { return v == 0; })) {
      std::fill(sc.path_pos.begin(), sc.path_pos.end(), 0u);
      sc.path_flat.clear();
    } else {
      decode_col(kColPathLen, raw, n);
      std::uint64_t tot = 0;
      sc.path_pos[0] = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        tot += raw[i];
        if (tot > col_bytes[kColPath]) {
          throw trace_format_error(
              "trace v3: path lengths exceed the path column");
        }
        sc.path_pos[i + 1] = static_cast<std::uint32_t>(tot);
      }
      sc.path_flat.resize(static_cast<std::size_t>(tot));
      raw = ensure_raw(static_cast<std::size_t>(tot));
      decode_col(kColPath, raw, static_cast<std::size_t>(tot));
      for (std::size_t k = 0; k < sc.path_flat.size(); ++k) {
        sc.path_flat[k] = narrow_node(unzigzag(raw[k]), "hop");
      }
    }
  }
  {
    const std::uint8_t* s = col[kColDepartsLen];
    const std::uint8_t* send = s + col_bytes[kColDepartsLen];
    if (col_bytes[kColDeparts] == 0 && col_bytes[kColDepartsLen] == n &&
        std::all_of(s, send, [](std::uint8_t v) { return v == 0; })) {
      std::fill(sc.departs_pos.begin(), sc.departs_pos.end(), 0u);
      sc.departs_flat.clear();
    } else {
      decode_col(kColDepartsLen, raw, n);
      std::uint64_t tot = 0;
      sc.departs_pos[0] = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        tot += raw[i];
        if (tot > col_bytes[kColDeparts]) {
          throw trace_format_error(
              "trace v3: departs lengths exceed the departs column");
        }
        sc.departs_pos[i + 1] = static_cast<std::uint32_t>(tot);
      }
      sc.departs_flat.resize(static_cast<std::size_t>(tot));
      raw = ensure_raw(static_cast<std::size_t>(tot));
      decode_col(kColDeparts, raw, static_cast<std::size_t>(tot));
      // Each record's departs are a delta chain seeded from its ingress.
      for (std::uint32_t i = 0; i < n; ++i) {
        sim::time_ps prev = sc.ingress[i];
        for (std::uint32_t j = sc.departs_pos[i]; j < sc.departs_pos[i + 1];
             ++j) {
          prev = wrap_add(prev, unzigzag(raw[j]));
          sc.departs_flat[j] = prev;
        }
      }
    }
  }
  if (ncols_ >= kTraceV3DropColumnCount) {
    decode_col(kColDropInfo, raw, n);
    for (std::uint32_t i = 0; i < n; ++i) {
      sc.dropinfo[i] = narrow_u32(raw[i], "dropinfo");
    }
    decode_col(kColDropTime, raw, n);
    for (std::uint32_t i = 0; i < n; ++i) {
      sc.drop_time[i] = wrap_add(sc.ingress[i], unzigzag(raw[i]));
    }
  }
  if (ncols_ >= kTraceV3StallColumnCount) {
    decode_col(kColStallInfo, raw, n);
    for (std::uint32_t i = 0; i < n; ++i) sc.stallinfo[i] = raw[i];
    decode_col(kColStallTime, raw, n);
    for (std::uint32_t i = 0; i < n; ++i) {
      sc.stall_time[i] = static_cast<sim::time_ps>(raw[i]);
    }
  }
  // Assemble the whole block once; next()/next_run() then serve pointers
  // into the records with no per-record copying. Never shrink records — the
  // final short block would otherwise destroy warmed slot capacities and a
  // post-seek re-drain would have to reallocate them.
  if (sc.records.size() < n) sc.records.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) assemble(sc, i, sc.records[i]);
}

void trace_v3_cursor::assemble(const v3_block_scratch& sc, std::uint32_t i,
                               packet_record& r) const {
  r.id = sc.id[i];
  r.flow_id = sc.flow[i];
  r.seq_in_flow = sc.seq[i];
  r.size_bytes = sc.psize[i];
  r.src_host = sc.src[i];
  r.dst_host = sc.dst[i];
  r.ingress_time = sc.ingress[i];
  r.egress_time = sc.egress[i];
  r.queueing_delay = sc.qdelay[i];
  r.flow_size_bytes = sc.fsize[i];
  // assign() reuses the slot's vector capacity — no steady-state allocation.
  r.path.assign(sc.path_flat.begin() + sc.path_pos[i],
                sc.path_flat.begin() + sc.path_pos[i + 1]);
  r.hop_departs.assign(sc.departs_flat.begin() + sc.departs_pos[i],
                       sc.departs_flat.begin() + sc.departs_pos[i + 1]);
  r.drop_hop = -1;
  r.dropped_kind = drop_kind::buffer;
  r.drop_time = -1;
  r.stall_hop = -1;
  r.stall_count = 0;
  r.stall_time = 0;
  if (ncols_ >= kTraceV3DropColumnCount && sc.dropinfo[i] != 0) {
    const std::uint32_t info = sc.dropinfo[i];
    const std::uint32_t kind = info & 3;
    const std::uint32_t hop = (info >> 2) - 1;
    if (kind > 1 || hop >= r.path.size()) {
      throw trace_format_error("trace v3: malformed dropinfo value");
    }
    r.drop_hop = static_cast<std::int32_t>(hop);
    r.dropped_kind = static_cast<drop_kind>(kind);
    r.drop_time = sc.drop_time[i];
  }
  if (ncols_ >= kTraceV3StallColumnCount && sc.stallinfo[i] != 0) {
    const std::uint64_t info = sc.stallinfo[i];
    const std::uint64_t hop = (info & 0xFFFF) - 1;
    const std::uint64_t count = info >> 16;
    if (hop >= r.path.size() || count == 0 || count > UINT32_MAX ||
        sc.stall_time[i] < 0) {
      throw trace_format_error("trace v3: malformed stallinfo value");
    }
    r.stall_hop = static_cast<std::int32_t>(hop);
    r.stall_count = static_cast<std::uint32_t>(count);
    r.stall_time = sc.stall_time[i];
  }
}

// --- decode-ahead pipeline ---------------------------------------------------

// One background thread decodes blocks in file order into a small scratch
// pool; two SPSC index rings form the conveyor (`free_ring`: consumer hands
// drained scratches back, `ready`: decoder publishes finished blocks). Both
// rings hold at least kDepth slots, so pushes can never fail — only pops
// wait, and they spin-yield: a pop happens once per 1024-record block, so
// parking/futex machinery would cost more than it saves. A decode error is
// captured into `error` and rethrown by the consumer only after the ready
// ring drains — exactly the block where the serial decoder would have
// thrown.
struct trace_v3_cursor::pipeline {
  // Deep enough that one slow block never stalls the consumer, shallow
  // enough that decoded blocks stay cache-resident.
  static constexpr std::uint32_t kDepth = 4;
  std::array<v3_block_scratch, kDepth> pool;
  core::spsc_ring<std::uint32_t> ready{kDepth};      // decoder -> consumer
  core::spsc_ring<std::uint32_t> free_ring{kDepth};  // consumer -> decoder
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  std::exception_ptr error;  // published before `done`, read after
  std::thread worker;
  std::uint32_t held = UINT32_MAX;  // pool slot the consumer is serving
};

void trace_v3_cursor::start_pipeline() {
  pipeline& pl = *pipe_;
  pl.stop.store(false, std::memory_order_relaxed);
  pl.done.store(false, std::memory_order_relaxed);
  pl.error = nullptr;
  pl.held = UINT32_MAX;
  // Reset the conveyor: every pool slot starts free.
  std::uint32_t idx = 0;
  while (pl.ready.try_pop(idx)) {
  }
  while (pl.free_ring.try_pop(idx)) {
  }
  for (std::uint32_t i = 0; i < pipeline::kDepth; ++i) {
    (void)pl.free_ring.try_push(i);  // capacity >= kDepth: cannot fail
  }
  const std::uint64_t first = next_block_;
  pl.worker = std::thread([this, first] { pipeline_main(first); });
}

void trace_v3_cursor::stop_pipeline() {
  if (!pipe_) return;
  pipeline& pl = *pipe_;
  if (pl.worker.joinable()) {
    pl.stop.store(true, std::memory_order_release);
    pl.worker.join();
    pl.worker = std::thread();
  }
  pl.held = UINT32_MAX;
  pl.error = nullptr;
}

void trace_v3_cursor::pipeline_main(std::uint64_t first_block) noexcept {
  pipeline& pl = *pipe_;
  try {
    for (std::uint64_t b = first_block; b < block_count_; ++b) {
      std::uint32_t idx = 0;
      while (!pl.free_ring.try_pop(idx)) {
        if (pl.stop.load(std::memory_order_acquire)) {
          pl.done.store(true, std::memory_order_release);
          return;
        }
        std::this_thread::yield();
      }
      decode_block_into(b, pl.pool[idx]);
      (void)pl.ready.try_push(idx);  // ring capacity >= pool: cannot fail
    }
  } catch (...) {
    pl.error = std::current_exception();
  }
  pl.done.store(true, std::memory_order_release);
}

bool trace_v3_cursor::ensure_block_ahead() {
  pipeline& pl = *pipe_;
  if (pl.held != UINT32_MAX) {
    // The current block is fully served: recycle its scratch.
    (void)pl.free_ring.try_push(pl.held);
    pl.held = UINT32_MAX;
    blk_ = nullptr;
    block_n_ = 0;
    block_pos_ = 0;
  }
  if (next_block_ >= block_count_) return false;
  if (!pl.worker.joinable()) start_pipeline();  // lazy / post-seek restart
  std::uint32_t idx = 0;
  for (;;) {
    if (pl.ready.try_pop(idx)) break;
    if (pl.done.load(std::memory_order_acquire)) {
      // Drain-then-rethrow keeps error order serial: blocks decoded before
      // the failure are served first, the throw lands on the bad block.
      if (pl.ready.try_pop(idx)) break;
      if (pl.error) std::rethrow_exception(pl.error);
      return false;  // stopped without error (only a stop request does this)
    }
    std::this_thread::yield();
  }
  const v3_block_scratch& sc = pl.pool[idx];
  if (sc.block != next_block_) {
    throw std::logic_error("trace v3: decode-ahead block out of sequence");
  }
  pl.held = idx;
  blk_ = &sc;
  block_n_ = sc.n;
  block_pos_ = 0;
  cur_block_ = next_block_++;
  return true;
}

bool trace_v3_cursor::ensure_block() {
  if (block_pos_ < block_n_) return true;
  if (pipe_) return ensure_block_ahead();
  if (next_block_ >= block_count_) return false;
  decode_block_into(next_block_, scratch_);
  blk_ = &scratch_;
  block_n_ = scratch_.n;
  block_pos_ = 0;
  cur_block_ = next_block_++;
  return true;
}

const packet_record* trace_v3_cursor::next() {
  if (!ensure_block()) {
    if (!seeked_ && served_ != count_) {
      throw trace_format_error(
          "trace v3: blocks disagree with the declared record count");
    }
    return nullptr;
  }
  ++served_;
  return &blk_->records[block_pos_++];
}

std::size_t trace_v3_cursor::next_run(
    std::vector<const packet_record*>& out) {
  if (!ensure_block()) {
    if (!seeked_ && served_ != count_) {
      throw trace_format_error(
          "trace v3: blocks disagree with the declared record count");
    }
    return 0;
  }
  // Run detection is an array scan over the decoded ingress column. Almost
  // every run ends inside the current block (or the file); those are served
  // as pointers straight into the block's records. Whether a block-final
  // run continues is read off the next block's index bound — no speculative
  // block load.
  const sim::time_ps t = blk_->ingress[block_pos_];
  std::uint32_t j = block_pos_ + 1;
  while (j < block_n_ && blk_->ingress[j] == t) ++j;
  if (j < block_n_ || next_block_ >= block_count_ ||
      bounds_at(next_block_).min_ingress != t) {
    const std::size_t n = j - block_pos_;
    for (std::uint32_t i = block_pos_; i < j; ++i) {
      out.push_back(&blk_->records[i]);
    }
    served_ += n;
    block_pos_ = j;
    return n;
  }
  // The run crosses into the next block: loading it reuses (or recycles)
  // the per-block arrays, so this tail is copied into slots_ instead.
  std::size_t n = 0;
  for (;;) {
    if (n == slots_.size()) slots_.emplace_back();
    slots_[n] = blk_->records[block_pos_++];
    ++n;
    ++served_;
    if (!ensure_block()) break;
    if (blk_->ingress[block_pos_] != t) break;
  }
  // Publish only after the run is fully assembled: growing slots_ mid-run
  // may reallocate and would dangle anything pushed earlier.
  for (std::size_t i = 0; i < n; ++i) out.push_back(&slots_[i]);
  return n;
}

std::uint64_t trace_v3_cursor::current_block() const noexcept {
  return block_pos_ < block_n_ ? cur_block_ : next_block_;
}

void trace_v3_cursor::seek_to_block(std::uint64_t b) {
  if (b > block_count_) {
    throw std::out_of_range("trace v3: block index out of range");
  }
  // The decode-ahead thread races ahead on the old position; stop it and
  // let ensure_block_ahead lazily restart from the new one.
  stop_pipeline();
  seeked_ = true;
  served_ = 0;
  next_block_ = b;
  cur_block_ = UINT64_MAX;
  blk_ = nullptr;
  block_n_ = 0;
  block_pos_ = 0;
}

void trace_v3_cursor::seek_lower_bound(sim::time_ps t) {
  // Binary search the index bounds for the first block whose max ingress
  // reaches t, then skip within it. Touches header + index pages plus the
  // one target block — never the tail.
  std::uint64_t lo = 0, hi = block_count_;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (bounds_at(mid).max_ingress < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  seek_to_block(lo);
  if (!ensure_block()) return;  // t is past the last record
  while (block_pos_ < block_n_ && blk_->ingress[block_pos_] < t) {
    ++block_pos_;
  }
}

}  // namespace ups::net
