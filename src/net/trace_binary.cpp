#include "net/trace_binary.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define UPS_TRACE_HAVE_MMAP 1
#endif

namespace ups::net {

namespace {

static_assert(std::endian::native == std::endian::little,
              "v2 trace I/O assumes a little-endian host; add byte-swapping "
              "load/store helpers before porting to a big-endian target");

template <typename T>
[[nodiscard]] T load_le(const std::uint8_t* p) noexcept {
  T v;
  std::memcpy(&v, p, sizeof(T));  // unaligned-safe; LE host asserted above
  return v;
}

template <typename T>
void store_le(std::uint8_t* p, T v) noexcept {
  std::memcpy(p, &v, sizeof(T));
}

template <typename T>
void append_le(std::vector<std::uint8_t>& buf, T v) {
  const std::size_t n = buf.size();
  buf.resize(n + sizeof(T));
  store_le(buf.data() + n, v);
}

[[nodiscard]] std::uint32_t payload_len_of(const packet_record& r) {
  return kTraceV2FixedPayloadBytes +
         4 * static_cast<std::uint32_t>(r.path.size()) +
         8 * static_cast<std::uint32_t>(r.hop_departs.size());
}

// Serializes one record (length prefix + payload) into `buf`, reusing its
// capacity. Single encoder shared by the streaming writer so the layout
// lives in one place, mirrored by decode_payload below.
void encode_record(std::vector<std::uint8_t>& buf, const packet_record& r) {
  buf.clear();
  append_le<std::uint32_t>(buf, payload_len_of(r));
  append_le<std::uint64_t>(buf, r.id);
  append_le<std::uint64_t>(buf, r.flow_id);
  append_le<std::uint32_t>(buf, r.seq_in_flow);
  append_le<std::uint32_t>(buf, r.size_bytes);
  append_le<std::int32_t>(buf, r.src_host);
  append_le<std::int32_t>(buf, r.dst_host);
  append_le<std::int64_t>(buf, r.ingress_time);
  append_le<std::int64_t>(buf, r.egress_time);
  append_le<std::int64_t>(buf, r.queueing_delay);
  append_le<std::uint64_t>(buf, r.flow_size_bytes);
  append_le<std::uint32_t>(buf, static_cast<std::uint32_t>(r.path.size()));
  append_le<std::uint32_t>(buf,
                           static_cast<std::uint32_t>(r.hop_departs.size()));
  for (const node_id n : r.path) append_le<std::int32_t>(buf, n);
  for (const sim::time_ps d : r.hop_departs) append_le<std::int64_t>(buf, d);
}

// Decodes one payload of `len` bytes into `r`, reusing its vector capacity.
// `len` has already been bounds-checked against the file; this validates
// internal consistency (array lengths vs payload length).
void decode_payload(const std::uint8_t* p, std::uint32_t len,
                    packet_record& r) {
  if (len < kTraceV2FixedPayloadBytes) {
    throw trace_format_error("trace v2: record payload shorter than the "
                             "fixed prefix");
  }
  r.id = load_le<std::uint64_t>(p);
  r.flow_id = load_le<std::uint64_t>(p + 8);
  r.seq_in_flow = load_le<std::uint32_t>(p + 16);
  r.size_bytes = load_le<std::uint32_t>(p + 20);
  r.src_host = load_le<std::int32_t>(p + 24);
  r.dst_host = load_le<std::int32_t>(p + 28);
  r.ingress_time = load_le<std::int64_t>(p + 32);
  r.egress_time = load_le<std::int64_t>(p + 40);
  r.queueing_delay = load_le<std::int64_t>(p + 48);
  r.flow_size_bytes = load_le<std::uint64_t>(p + 56);
  const std::uint32_t npath = load_le<std::uint32_t>(p + 64);
  const std::uint32_t ndeparts = load_le<std::uint32_t>(p + 68);
  // Overflow-safe: all operands fit in 64 bits by construction.
  const std::uint64_t want = static_cast<std::uint64_t>(
      kTraceV2FixedPayloadBytes) + 4ull * npath + 8ull * ndeparts;
  if (want != len) {
    throw trace_format_error(
        "trace v2: record array lengths disagree with its length prefix");
  }
  const std::uint8_t* q = p + kTraceV2FixedPayloadBytes;
  r.path.resize(npath);
  for (std::uint32_t i = 0; i < npath; ++i) {
    r.path[i] = load_le<std::int32_t>(q + 4ull * i);
  }
  q += 4ull * npath;
  r.hop_departs.resize(ndeparts);
  for (std::uint32_t i = 0; i < ndeparts; ++i) {
    r.hop_departs[i] = load_le<std::int64_t>(q + 8ull * i);
  }
}

struct header_fields {
  std::uint64_t record_count = 0;
  std::uint64_t index_offset = 0;
};

// Validates magic/version/size invariants of a complete in-memory image
// (shared by the mmap cursor and the batch loader).
header_fields check_header(const std::uint8_t* data, std::size_t size) {
  if (size < kTraceV2HeaderBytes) {
    throw trace_format_error("trace v2: file shorter than the header");
  }
  if (std::memcmp(data, kTraceV2Magic, sizeof(kTraceV2Magic)) != 0) {
    throw trace_format_error("trace v2: bad magic");
  }
  const std::uint32_t version = load_le<std::uint32_t>(data + 8);
  if (version != kTraceV2Version) {
    throw trace_format_error("trace v2: unsupported version " +
                             std::to_string(version));
  }
  const std::uint32_t header_bytes = load_le<std::uint32_t>(data + 12);
  if (header_bytes != kTraceV2HeaderBytes) {
    throw trace_format_error("trace v2: unexpected header size");
  }
  header_fields h;
  h.record_count = load_le<std::uint64_t>(data + 16);
  h.index_offset = load_le<std::uint64_t>(data + 24);
  if (h.index_offset < kTraceV2HeaderBytes || h.index_offset > size) {
    throw trace_format_error("trace v2: index offset out of bounds");
  }
  // Exact-size check doubles as the declared-count-vs-contents gate: a
  // truncated index or trailing garbage both fail here.
  if (h.record_count > (size - h.index_offset) / 8 ||
      h.index_offset + 8 * h.record_count != size) {
    throw trace_format_error(
        "trace v2: file size disagrees with declared record count");
  }
  return h;
}

}  // namespace

// --- writer ------------------------------------------------------------------

trace_binary_writer::trace_binary_writer(std::ostream& os) : os_(&os) {
  // Placeholder header; finish() seeks back and patches the counts.
  std::uint8_t header[kTraceV2HeaderBytes] = {};
  std::memcpy(header, kTraceV2Magic, sizeof(kTraceV2Magic));
  store_le<std::uint32_t>(header + 8, kTraceV2Version);
  store_le<std::uint32_t>(header + 12, kTraceV2HeaderBytes);
  os_->write(reinterpret_cast<const char*>(header), sizeof(header));
  if (!*os_) throw trace_format_error("trace v2: header write failed");
}

void trace_binary_writer::append(const packet_record& r) {
  if (finished_) {
    throw std::logic_error("trace_binary_writer: append after finish");
  }
  encode_record(buf_, r);
  os_->write(reinterpret_cast<const char*>(buf_.data()),
             static_cast<std::streamsize>(buf_.size()));
  if (!*os_) throw trace_format_error("trace v2: record write failed");
  index_.emplace_back(r.ingress_time, offset_);
  offset_ += buf_.size();
}

void trace_binary_writer::finish() {
  if (finished_) {
    throw std::logic_error("trace_binary_writer: finish called twice");
  }
  finished_ = true;
  // (ingress, offset) pairs: offsets are strictly increasing, so plain sort
  // is deterministic and keeps file order among equal ingress instants —
  // the same tie-break trace_ingress_cursor's stable_sort produces.
  std::sort(index_.begin(), index_.end());
  buf_.clear();
  for (const auto& [ingress, off] : index_) {
    append_le<std::uint64_t>(buf_, off);
  }
  os_->write(reinterpret_cast<const char*>(buf_.data()),
             static_cast<std::streamsize>(buf_.size()));
  os_->seekp(16);
  buf_.clear();
  append_le<std::uint64_t>(buf_, index_.size());
  append_le<std::uint64_t>(buf_, offset_);  // == index offset after records
  os_->write(reinterpret_cast<const char*>(buf_.data()), 16);
  os_->seekp(0, std::ios::end);
  os_->flush();
  if (!*os_) throw trace_format_error("trace v2: footer write failed");
}

void write_trace_v2(std::ostream& os, const trace& t) {
  trace_binary_writer w(os);
  for (const auto& r : t.packets) w.append(r);
  w.finish();
}

void save_trace_v2(const std::string& path, const trace& t) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("trace: cannot open " + path);
  write_trace_v2(os, t);
}

bool is_trace_v2_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("trace: cannot open " + path);
  char magic[sizeof(kTraceV2Magic)] = {};
  is.read(magic, sizeof(magic));
  return is.gcount() == sizeof(magic) &&
         std::memcmp(magic, kTraceV2Magic, sizeof(magic)) == 0;
}

// --- batch loader (file order) ----------------------------------------------

trace read_trace_v2(const std::uint8_t* data, std::size_t size) {
  const header_fields h = check_header(data, size);
  trace t;
  t.packets.reserve(h.record_count);
  std::uint64_t off = kTraceV2HeaderBytes;
  for (std::uint64_t i = 0; i < h.record_count; ++i) {
    if (off + 4 > h.index_offset) {
      throw trace_format_error("trace v2: record runs past the index "
                               "(mid-record EOF)");
    }
    const std::uint32_t len = load_le<std::uint32_t>(data + off);
    if (len > h.index_offset - off - 4) {
      throw trace_format_error("trace v2: record runs past the index "
                               "(mid-record EOF)");
    }
    packet_record r;
    decode_payload(data + off + 4, len, r);
    t.packets.push_back(std::move(r));
    off += 4 + len;
  }
  if (off != h.index_offset) {
    throw trace_format_error(
        "trace v2: record region holds more than the declared count");
  }
  return t;
}

namespace {

// One sized read into a pre-sized buffer — istreambuf_iterator would pull
// the file a character at a time through virtual calls, hopeless at the
// GB/s this format targets.
std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw std::runtime_error("trace: cannot open " + path);
  const std::streamoff size = is.tellg();
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  is.seekg(0);
  is.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!is) throw std::runtime_error("trace: read failed for " + path);
  return bytes;
}

}  // namespace

trace load_trace_v2(const std::string& path) {
  const auto bytes = slurp(path);
  return read_trace_v2(bytes.data(), bytes.size());
}

// --- record_view -------------------------------------------------------------

std::uint64_t record_view::id() const noexcept {
  return load_le<std::uint64_t>(p_);
}
std::uint64_t record_view::flow_id() const noexcept {
  return load_le<std::uint64_t>(p_ + 8);
}
std::uint32_t record_view::seq_in_flow() const noexcept {
  return load_le<std::uint32_t>(p_ + 16);
}
std::uint32_t record_view::size_bytes() const noexcept {
  return load_le<std::uint32_t>(p_ + 20);
}
node_id record_view::src_host() const noexcept {
  return load_le<std::int32_t>(p_ + 24);
}
node_id record_view::dst_host() const noexcept {
  return load_le<std::int32_t>(p_ + 28);
}
sim::time_ps record_view::ingress_time() const noexcept {
  return load_le<std::int64_t>(p_ + 32);
}
sim::time_ps record_view::egress_time() const noexcept {
  return load_le<std::int64_t>(p_ + 40);
}
sim::time_ps record_view::queueing_delay() const noexcept {
  return load_le<std::int64_t>(p_ + 48);
}
std::uint64_t record_view::flow_size_bytes() const noexcept {
  return load_le<std::uint64_t>(p_ + 56);
}
std::uint32_t record_view::path_len() const noexcept {
  return load_le<std::uint32_t>(p_ + 64);
}
std::uint32_t record_view::departs_len() const noexcept {
  return load_le<std::uint32_t>(p_ + 68);
}

// --- mmap cursor -------------------------------------------------------------

trace_mmap_cursor::trace_mmap_cursor(const std::string& path) {
#if UPS_TRACE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("trace: cannot open " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("trace: cannot stat " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw trace_format_error("trace v2: file shorter than the header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    throw std::runtime_error("trace: mmap failed for " + path);
  }
  mapping_ = map;
  mapping_size_ = size;
  data_ = static_cast<const std::uint8_t*>(map);
  size_ = size;
#else
  // No mmap on this platform: fall back to reading the file into an owned
  // buffer (still one parse-free image; just not shared across processes).
  owned_bytes_ = slurp(path);
  data_ = owned_bytes_.data();
  size_ = owned_bytes_.size();
#endif
  validate_header();
}

trace_mmap_cursor::trace_mmap_cursor(const std::uint8_t* data,
                                     std::size_t size)
    : data_(data), size_(size) {
  validate_header();
}

trace_mmap_cursor::~trace_mmap_cursor() {
#if UPS_TRACE_HAVE_MMAP
  if (mapping_ != nullptr) ::munmap(mapping_, mapping_size_);
#endif
}

void trace_mmap_cursor::validate_header() {
  const header_fields h = check_header(data_, size_);
  count_ = h.record_count;
  index_offset_ = h.index_offset;
}

std::uint64_t trace_mmap_cursor::record_offset(std::uint64_t i) const {
  const std::uint64_t off =
      load_le<std::uint64_t>(data_ + index_offset_ + 8 * i);
  // Subtraction, not `off + 4 > index_offset_`: a near-UINT64_MAX entry
  // would wrap the addition and sail through to an out-of-bounds read.
  // index_offset_ >= kTraceV2HeaderBytes, so the subtraction cannot wrap.
  if (off < kTraceV2HeaderBytes || off > index_offset_ - 4) {
    throw trace_format_error("trace v2: index entry out of bounds");
  }
  return off;
}

const std::uint8_t* trace_mmap_cursor::payload_at(std::uint64_t off,
                                                  std::uint32_t& len) const {
  len = load_le<std::uint32_t>(data_ + off);
  if (len > index_offset_ - off - 4) {
    throw trace_format_error(
        "trace v2: record runs past the index (mid-record EOF)");
  }
  if (len < kTraceV2FixedPayloadBytes) {
    throw trace_format_error(
        "trace v2: record payload shorter than the fixed prefix");
  }
  return data_ + off + 4;
}

record_view trace_mmap_cursor::view_at(std::uint64_t i) const {
  if (i >= count_) {
    throw std::out_of_range("trace v2: record index out of range");
  }
  std::uint32_t len = 0;
  return record_view(payload_at(record_offset(i), len));
}

void trace_mmap_cursor::decode_into(std::uint64_t i, packet_record& r) {
  std::uint32_t len = 0;
  const std::uint8_t* payload = payload_at(record_offset(i), len);
  decode_payload(payload, len, r);
  // Enforce the footer invariant as we walk it: the index — not the record
  // region — promises ingress order, so a mutated index fails loudly here
  // instead of desequencing the replay.
  if (r.ingress_time < last_ingress_) {
    throw trace_format_error("trace v2: ingress index out of order");
  }
  last_ingress_ = r.ingress_time;
}

const packet_record* trace_mmap_cursor::next() {
  if (pos_ >= count_) return nullptr;
  if (slots_.empty()) slots_.emplace_back();
  decode_into(pos_++, slots_[0]);
  return &slots_[0];
}

std::size_t trace_mmap_cursor::next_run(
    std::vector<const packet_record*>& out) {
  if (pos_ >= count_) return 0;
  std::size_t n = 0;
  sim::time_ps run_ingress = 0;
  for (;;) {
    if (n == slots_.size()) slots_.emplace_back();
    decode_into(pos_++, slots_[n]);
    if (n == 0) run_ingress = slots_[0].ingress_time;
    ++n;
    if (pos_ >= count_) break;
    // Peek the next record's ingress straight off the mapping: same-instant
    // run detection costs one unaligned load, not a decode.
    std::uint32_t len = 0;
    const std::uint8_t* payload = payload_at(record_offset(pos_), len);
    if (record_view(payload).ingress_time() != run_ingress) break;
  }
  // Pointers are published only after the run is fully decoded: growing
  // slots_ mid-run may reallocate and would dangle anything pushed earlier.
  for (std::size_t i = 0; i < n; ++i) out.push_back(&slots_[i]);
  return n;
}

}  // namespace ups::net
