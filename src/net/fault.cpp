#include "net/fault.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace ups::net {

namespace {

// SplitMix64 finalizer: the same avalanche stage sim::rng uses, applied to
// a counter-derived word instead of an advancing state. Any (seed, link,
// ctr, lane) maps to one fixed 64-bit word regardless of evaluation order.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[nodiscard]] std::vector<double> parse_params(const std::string& body,
                                               std::size_t min_n,
                                               std::size_t max_n,
                                               const char* what) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t comma = body.find(',', pos);
    const std::string tok =
        body.substr(pos, comma == std::string::npos ? comma : comma - pos);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end == nullptr || *end != '\0') {
      throw std::invalid_argument(std::string("fault: bad ") + what +
                                  " parameter '" + tok + "'");
    }
    out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.size() < min_n || out.size() > max_n) {
    throw std::invalid_argument(std::string("fault: ") + what +
                                " expects between " + std::to_string(min_n) +
                                " and " + std::to_string(max_n) +
                                " parameters");
  }
  return out;
}

void check_prob(double v, const char* what) {
  if (v < 0.0 || v > 1.0) {
    throw std::invalid_argument(std::string("fault: ") + what +
                                " must be in [0, 1]");
  }
}

}  // namespace

std::string fault_spec::label() const {
  char buf[96];
  switch (kind) {
    case fault_kind::none:
      return {};
    case fault_kind::bernoulli:
      std::snprintf(buf, sizeof buf, "bern:%g", p);
      return buf;
    case fault_kind::gilbert_elliott:
      std::snprintf(buf, sizeof buf, "ge:%g,%g,%g", p, p_bad, flip);
      return buf;
    case fault_kind::jam:
      if (jam_speedup != 1.0) {
        std::snprintf(buf, sizeof buf, "jam:%g,%g,s%g",
                      static_cast<double>(jam_period) / 1e6, jam_duty,
                      jam_speedup);
      } else {
        std::snprintf(buf, sizeof buf, "jam:%g,%g",
                      static_cast<double>(jam_period) / 1e6, jam_duty);
      }
      return buf;
  }
  return {};
}

fault_spec fault_spec::parse(const std::string& s) {
  fault_spec f;
  if (s.empty() || s == "none") return f;
  const std::size_t colon = s.find(':');
  const std::string head = s.substr(0, colon);
  const std::string body =
      colon == std::string::npos ? std::string{} : s.substr(colon + 1);
  if (head == "bernoulli" || head == "bern") {
    const auto v = parse_params(body, 1, 1, "bernoulli");
    check_prob(v[0], "bernoulli p");
    f.kind = fault_kind::bernoulli;
    f.p = v[0];
  } else if (head == "ge") {
    const auto v = parse_params(body, 3, 3, "ge");
    check_prob(v[0], "ge p_g");
    check_prob(v[1], "ge p_b");
    check_prob(v[2], "ge r");
    f.kind = fault_kind::gilbert_elliott;
    f.p = v[0];
    f.p_bad = v[1];
    f.flip = v[2];
  } else if (head == "jam") {
    const auto v = parse_params(body, 2, 3, "jam");
    if (v[0] <= 0.0) {
      throw std::invalid_argument("fault: jam period must be > 0");
    }
    check_prob(v[1], "jam duty");
    f.kind = fault_kind::jam;
    f.jam_period = static_cast<sim::time_ps>(v[0] * 1e6);  // us -> ps
    f.jam_duty = v[1];
    if (v.size() == 3) {
      if (v[2] < 1.0) {
        throw std::invalid_argument("fault: jam speedup must be >= 1");
      }
      f.jam_speedup = v[2];
    }
  } else {
    throw std::invalid_argument("fault: unknown model '" + head +
                                "' (want bernoulli|ge|jam|none)");
  }
  return f;
}

double link_fault::uniform(std::uint64_t ctr, std::uint64_t lane) const {
  // Distinct odd multipliers keep the (link, ctr, lane) axes from aliasing
  // before the finalizer mixes; the +1 offsets keep (0, 0, 0) off the raw
  // seed.
  const std::uint64_t x =
      seed_ + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(link_id_) + 1) +
      0xD1B54A32D192ED03ull * (ctr * 2 + lane + 1);
  return static_cast<double>(mix64(x) >> 11) * 0x1.0p-53;
}

bool link_fault::lose(sim::time_ps now) {
  switch (spec_.kind) {
    case fault_kind::none:
      return false;
    case fault_kind::bernoulli: {
      const std::uint64_t ctr = counter_++;
      return uniform(ctr, 0) < spec_.p;
    }
    case fault_kind::gilbert_elliott: {
      const std::uint64_t ctr = counter_++;
      const double loss_p = bad_ ? spec_.p_bad : spec_.p;
      const bool lost = uniform(ctr, 0) < loss_p;
      if (uniform(ctr, 1) < spec_.flip) bad_ = !bad_;
      return lost;
    }
    case fault_kind::jam: {
      ++counter_;
      return now % spec_.jam_period <
             static_cast<sim::time_ps>(spec_.jam_duty *
                                       static_cast<double>(spec_.jam_period));
    }
  }
  return false;
}

}  // namespace ups::net
