#include "net/port.h"

#include <cassert>
#include <utility>

#include "net/network.h"

namespace ups::net {

port::port(network& net, sim::simulator& sim, std::int32_t id, node_id from,
           node_id to, sim::bits_per_sec rate, sim::time_ps prop_delay,
           std::unique_ptr<scheduler> sched, std::int64_t buffer_bytes)
    : net_(net),
      sim_(sim),
      id_(id),
      from_(from),
      to_(to),
      rate_(rate),
      delay_(prop_delay),
      sched_(std::move(sched)),
      buffer_bytes_(buffer_bytes) {}

void port::receive(packet_ptr p) {
  const sim::time_ps now = sim_.now();
  p->port_enqueue_time = now;
  // Infinitely fast ports (the theory gadgets' "white" routers) forward
  // synchronously: zero transmission time means they can never queue, and
  // cutting through inline keeps same-instant arrivals visible to the next
  // congested port before its (late-phase) service decision runs.
  if (rate_ == sim::kInfiniteRate && flow_ == nullptr && !busy() &&
      sched_->empty()) {
    ++stats_.packets_sent;
    stats_.bytes_sent += p->size_bytes;
    if (p->record_hops && net_.is_router(from_)) {
      p->hop_departs.push_back(now);
    }
    // Cut-through still completes a hop for the credit ledger: any credit
    // held from the previous governed port becomes releasable once the
    // packet leaves this router.
    p->credit_prev_port = p->credit_port;
    p->credit_port = -1;
    net_.transmitted(std::move(p), *this, now);
    return;
  }
  if (buffer_bytes_ > 0 &&
      static_cast<std::int64_t>(sched_->bytes()) + p->size_bytes >
          buffer_bytes_) {
    packet_ptr victim = sched_->evict_for(*p, now);
    if (victim == nullptr) {
      drop(std::move(p));
      return;
    }
    drop(std::move(victim));
  }
  sched_->enqueue(std::move(p), now);
  if (!busy()) {
    schedule_start();
  } else if (preemption_ && sched_->supports_preemption()) {
    maybe_preempt();
  }
}

void port::schedule_start() {
  if (pending_start_ || busy()) return;
  pending_start_ = true;
  sim_.schedule_late(sim_.now(), [this] {
    pending_start_ = false;
    if (!busy()) start_next();
  });
}

void port::start_next() {
  const sim::time_ps now = sim_.now();
  // A head denied by flow control keeps its position: nothing behind it may
  // overtake (head-of-line blocking), so retries always pick it back up
  // before consulting the scheduler.
  const bool resumed = blocked_head_ != nullptr;
  packet_ptr p =
      resumed ? std::move(blocked_head_) : sched_->dequeue(now);
  if (p == nullptr) return;
  // Only a *fresh* transmission consumes downstream credit; a
  // preemption-resumed packet (tx_remaining >= 0) already holds its credit
  // from the initial start.
  const bool fresh = p->tx_remaining < 0;
  if (fresh && flow_ != nullptr && !flow_->can_send(p->size_bytes)) {
    blocked_head_ = std::move(p);
    if (!resumed) {
      // First denial: record the pause; re-denied retries keep the
      // original blocked_since_ so stalled time is counted once.
      blocked_since_ = now;
      ++stats_.pauses;
      net_.flow_port_blocked(*this);
    }
    return;
  }
  if (resumed) {
    const sim::time_ps stalled = now - blocked_since_;
    stats_.stalled_time += stalled;
    ++stats_.resumes;
    ++p->stall_count;
    p->stall_time += stalled;
    if (stalled > p->stall_max) {
      p->stall_max = stalled;
      p->stall_hop = static_cast<std::int32_t>(p->hop) - 1;
    }
    net_.flow_resumed(stalled);
  }
  if (fresh) {
    p->tx_remaining = transmission_time(p->size_bytes);
    p->credit_prev_port = p->credit_port;
    p->credit_port = flow_ != nullptr ? id_ : -1;
    if (flow_ != nullptr) flow_->consume(p->size_bytes);
  }
  current_rank_ = p->sched_key;
  tx_started_ = now;
  current_ = std::move(p);
  completion_ =
      sim_.schedule_in(current_->tx_remaining, [this] { on_complete(); });
}

void port::maybe_preempt() {
  assert(current_ != nullptr);
  const auto rank = sched_->peek_rank();
  if (!rank.has_value() || *rank >= current_rank_) return;
  const sim::time_ps elapsed = sim_.now() - tx_started_;
  const sim::time_ps remaining = current_->tx_remaining - elapsed;
  if (remaining <= 0) return;  // finishing at this instant anyway
  sim_.cancel(completion_);
  current_->tx_remaining = remaining;
  ++stats_.preemptions;
  // Re-enqueue the paused packet; its per-hop rank is preserved because the
  // scheduler caches it in sched_key / sched_key_port.
  sched_->enqueue(std::move(current_), sim_.now());
  schedule_start();
}

void port::on_complete() {
  assert(current_ != nullptr);
  packet_ptr p = std::move(current_);
  const sim::time_ps now = sim_.now();
  // Waiting = total residence at this port minus pure transmission time;
  // correct under preemption because pauses count as waiting.
  const sim::time_ps waited =
      (now - p->port_enqueue_time) - transmission_time(p->size_bytes);
  assert(waited >= 0);
  p->queueing_delay += waited;
  p->slack -= waited;
  p->fifo_plus_wait += waited;
  p->tx_remaining = -1;
  ++stats_.packets_sent;
  stats_.bytes_sent += p->size_bytes;
  if (p->record_hops && net_.is_router(from_)) {
    p->hop_departs.push_back(now);
  }
  net_.transmitted(std::move(p), *this, now);
  schedule_start();
}

void port::drop(packet_ptr p) {
  ++stats_.packets_dropped;
  net_.flow_release_all(*p);
  net_.count_drop(*p, from_, sim_.now(), drop_kind::buffer);
}

}  // namespace ups::net
