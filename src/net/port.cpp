#include "net/port.h"

#include <cassert>
#include <utility>

#include "net/network.h"

namespace ups::net {

port::port(network& net, sim::simulator& sim, std::int32_t id, node_id from,
           node_id to, sim::bits_per_sec rate, sim::time_ps prop_delay,
           std::unique_ptr<scheduler> sched, std::int64_t buffer_bytes)
    : net_(net),
      sim_(sim),
      id_(id),
      from_(from),
      to_(to),
      rate_(rate),
      delay_(prop_delay),
      sched_(std::move(sched)),
      buffer_bytes_(buffer_bytes) {}

void port::receive(packet_ptr p) {
  const sim::time_ps now = sim_.now();
  p->port_enqueue_time = now;
  // Infinitely fast ports (the theory gadgets' "white" routers) forward
  // synchronously: zero transmission time means they can never queue, and
  // cutting through inline keeps same-instant arrivals visible to the next
  // congested port before its (late-phase) service decision runs.
  if (rate_ == sim::kInfiniteRate && !busy() && sched_->empty()) {
    ++stats_.packets_sent;
    stats_.bytes_sent += p->size_bytes;
    if (p->record_hops && net_.is_router(from_)) {
      p->hop_departs.push_back(now);
    }
    net_.transmitted(std::move(p), *this, now);
    return;
  }
  if (buffer_bytes_ > 0 &&
      static_cast<std::int64_t>(sched_->bytes()) + p->size_bytes >
          buffer_bytes_) {
    packet_ptr victim = sched_->evict_for(*p, now);
    if (victim == nullptr) {
      drop(std::move(p));
      return;
    }
    drop(std::move(victim));
  }
  sched_->enqueue(std::move(p), now);
  if (!busy()) {
    schedule_start();
  } else if (preemption_ && sched_->supports_preemption()) {
    maybe_preempt();
  }
}

void port::schedule_start() {
  if (pending_start_ || busy()) return;
  pending_start_ = true;
  sim_.schedule_late(sim_.now(), [this] {
    pending_start_ = false;
    if (!busy()) start_next();
  });
}

void port::start_next() {
  packet_ptr p = sched_->dequeue(sim_.now());
  if (p == nullptr) return;
  if (p->tx_remaining < 0) p->tx_remaining = transmission_time(p->size_bytes);
  current_rank_ = p->sched_key;
  tx_started_ = sim_.now();
  current_ = std::move(p);
  completion_ =
      sim_.schedule_in(current_->tx_remaining, [this] { on_complete(); });
}

void port::maybe_preempt() {
  assert(current_ != nullptr);
  const auto rank = sched_->peek_rank();
  if (!rank.has_value() || *rank >= current_rank_) return;
  const sim::time_ps elapsed = sim_.now() - tx_started_;
  const sim::time_ps remaining = current_->tx_remaining - elapsed;
  if (remaining <= 0) return;  // finishing at this instant anyway
  sim_.cancel(completion_);
  current_->tx_remaining = remaining;
  ++stats_.preemptions;
  // Re-enqueue the paused packet; its per-hop rank is preserved because the
  // scheduler caches it in sched_key / sched_key_port.
  sched_->enqueue(std::move(current_), sim_.now());
  schedule_start();
}

void port::on_complete() {
  assert(current_ != nullptr);
  packet_ptr p = std::move(current_);
  const sim::time_ps now = sim_.now();
  // Waiting = total residence at this port minus pure transmission time;
  // correct under preemption because pauses count as waiting.
  const sim::time_ps waited =
      (now - p->port_enqueue_time) - transmission_time(p->size_bytes);
  assert(waited >= 0);
  p->queueing_delay += waited;
  p->slack -= waited;
  p->fifo_plus_wait += waited;
  p->tx_remaining = -1;
  ++stats_.packets_sent;
  stats_.bytes_sent += p->size_bytes;
  if (p->record_hops && net_.is_router(from_)) {
    p->hop_departs.push_back(now);
  }
  net_.transmitted(std::move(p), *this, now);
  schedule_start();
}

void port::drop(packet_ptr p) {
  ++stats_.packets_dropped;
  net_.count_drop(*p, from_, sim_.now(), drop_kind::buffer);
}

}  // namespace ups::net
