// Deterministic Dijkstra shortest paths over the router graph.
#pragma once

#include <vector>

#include "net/packet.h"
#include "sim/time.h"

namespace ups::net {

struct routing_edge {
  node_id to;
  sim::time_ps weight;
};

using routing_graph = std::vector<std::vector<routing_edge>>;

// Shortest path from s to t (inclusive of both). Ties are broken toward the
// smaller predecessor id so routes are deterministic across runs.
// Returns an empty vector when t is unreachable.
[[nodiscard]] std::vector<node_id> shortest_path(const routing_graph& g,
                                                 node_id s, node_id t);

}  // namespace ups::net
