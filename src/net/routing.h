// Deterministic Dijkstra shortest paths over the router graph.
#pragma once

#include <vector>

#include "net/packet.h"
#include "sim/time.h"

namespace ups::net {

struct routing_edge {
  node_id to;
  sim::time_ps weight;
};

using routing_graph = std::vector<std::vector<routing_edge>>;

// Shortest path from s to t (inclusive of both). Ties are broken toward the
// smaller predecessor id so routes are deterministic across runs.
// Returns an empty vector when t is unreachable.
[[nodiscard]] std::vector<node_id> shortest_path(const routing_graph& g,
                                                 node_id s, node_id t);

// Single-source shortest-path tree from s: prev[v] is v's predecessor on
// the (deterministically tie-broken, identical to shortest_path) shortest
// path from s, kInvalidNode when v is unreachable (and for s itself).
// network::build() uses this to fill one dense route-table row per Dijkstra
// instead of one pair per run.
[[nodiscard]] std::vector<node_id> shortest_path_tree(const routing_graph& g,
                                                      node_id s);

// Extracts the s->t path (inclusive) from a shortest_path_tree(g, s) result;
// empty when t is unreachable from s.
[[nodiscard]] std::vector<node_id> path_from_tree(
    const std::vector<node_id>& prev, node_id s, node_id t);

}  // namespace ups::net
