#include "net/routing.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace ups::net {

std::vector<node_id> shortest_path_tree(const routing_graph& g, node_id s) {
  const auto n = static_cast<node_id>(g.size());
  constexpr sim::time_ps inf = std::numeric_limits<sim::time_ps>::max();
  std::vector<sim::time_ps> dist(n, inf);
  std::vector<node_id> prev(n, kInvalidNode);
  using item = std::pair<sim::time_ps, node_id>;
  std::priority_queue<item, std::vector<item>, std::greater<>> pq;
  dist[s] = 0;
  pq.emplace(0, s);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const auto& e : g[u]) {
      const sim::time_ps nd = d + e.weight;
      if (nd < dist[e.to] ||
          (nd == dist[e.to] && prev[e.to] != kInvalidNode && u < prev[e.to])) {
        dist[e.to] = nd;
        prev[e.to] = u;
        pq.emplace(nd, e.to);
      }
    }
  }
  // Unreachable nodes keep prev == kInvalidNode; so does s (dist 0, no
  // predecessor) — path_from_tree treats s specially.
  return prev;
}

std::vector<node_id> path_from_tree(const std::vector<node_id>& prev,
                                    node_id s, node_id t) {
  std::vector<node_id> path;
  for (node_id v = t; v != kInvalidNode; v = prev[v]) {
    path.push_back(v);
    if (v == s) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != s) return {};
  return path;
}

std::vector<node_id> shortest_path(const routing_graph& g, node_id s,
                                   node_id t) {
  return path_from_tree(shortest_path_tree(g, s), s, t);
}

}  // namespace ups::net
