// Full-bisection-bandwidth k-ary fat-tree (the datacenter topology of [3],
// used by Table 1's "Datacenter" row): k pods of k/2 edge and k/2
// aggregation switches, (k/2)^2 core switches, k^3/4 hosts, all links an
// identical rate (10 Gbps in the paper).
#pragma once

#include "topo/topology.h"

namespace ups::topo {

struct fattree_config {
  std::int32_t k = 8;  // must be even; k=8 -> 128 hosts
  sim::bits_per_sec rate = 10 * sim::kGbps;
  sim::time_ps link_delay = sim::kMicrosecond;  // short intra-DC wires
};

[[nodiscard]] topology fattree(const fattree_config& cfg = {});

}  // namespace ups::topo
