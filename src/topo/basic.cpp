#include "topo/basic.h"

namespace ups::topo {

topology line(std::int32_t n_routers, sim::bits_per_sec rate,
              sim::time_ps delay, std::int32_t hosts_per_end) {
  topology t;
  t.name = "line-" + std::to_string(n_routers);
  t.routers = n_routers;
  for (std::int32_t i = 0; i + 1 < n_routers; ++i) {
    t.core_links.push_back(link_spec{i, i + 1, rate, delay});
  }
  for (std::int32_t h = 0; h < hosts_per_end; ++h) {
    t.hosts.push_back(host_spec{0, rate, delay});
    t.hosts.push_back(host_spec{n_routers - 1, rate, delay});
  }
  return t;
}

topology dumbbell(std::int32_t hosts_per_side, sim::bits_per_sec access_rate,
                  sim::bits_per_sec bottleneck_rate, sim::time_ps delay) {
  topology t;
  t.name = "dumbbell-" + std::to_string(hosts_per_side);
  t.routers = 2;
  t.core_links.push_back(link_spec{0, 1, bottleneck_rate, delay});
  for (std::int32_t h = 0; h < hosts_per_side; ++h) {
    t.hosts.push_back(host_spec{0, access_rate, delay});
  }
  for (std::int32_t h = 0; h < hosts_per_side; ++h) {
    t.hosts.push_back(host_spec{1, access_rate, delay});
  }
  return t;
}

topology parking_lot(std::int32_t n_routers, sim::bits_per_sec rate,
                     sim::time_ps delay) {
  topology t;
  t.name = "parking-lot-" + std::to_string(n_routers);
  t.routers = n_routers;
  for (std::int32_t i = 0; i + 1 < n_routers; ++i) {
    t.core_links.push_back(link_spec{i, i + 1, rate, delay});
  }
  for (std::int32_t i = 0; i < n_routers; ++i) {
    t.hosts.push_back(host_spec{i, rate, delay});
  }
  return t;
}

}  // namespace ups::topo
