// Topology specifications: plain data describing routers, hosts and links,
// materialized into a fresh net::network for each run (the replay engine
// rebuilds the same topology with different schedulers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/time.h"
#include "sim/units.h"

namespace ups::topo {

struct link_spec {
  std::int32_t a;
  std::int32_t b;
  sim::bits_per_sec rate;
  sim::time_ps delay;
};

struct host_spec {
  std::int32_t router;  // attachment router index
  sim::bits_per_sec rate;
  sim::time_ps delay;
};

struct topology {
  std::string name;
  std::int32_t routers = 0;
  std::vector<std::string> router_names;  // optional; defaults to "r<i>"
  std::vector<link_spec> core_links;      // router <-> router (duplex)
  std::vector<host_spec> hosts;           // host i attaches to hosts[i].router

  [[nodiscard]] std::size_t host_count() const noexcept {
    return hosts.size();
  }

  // Node ids after populate(): routers are [0, routers), hosts follow.
  [[nodiscard]] net::node_id router_id(std::int32_t i) const noexcept {
    return i;
  }
  [[nodiscard]] net::node_id host_id(std::size_t i) const noexcept {
    return routers + static_cast<net::node_id>(i);
  }

  // Smallest finite link rate (core or access): the "bottleneck link" whose
  // transmission time defines Table 1's threshold T.
  [[nodiscard]] sim::bits_per_sec bottleneck_rate() const;

  // Scales every propagation delay (the fairness experiment shrinks delays
  // "to make the experiment more scalable").
  void scale_delays(double factor);
};

// Adds the topology's nodes and links to an un-built network.
void populate(const topology& t, net::network& net);

}  // namespace ups::topo
