#include "topo/rocketfuel.h"

#include <utility>
#include <vector>

#include "sim/rng.h"

namespace ups::topo {

topology rocketfuel(const rocketfuel_config& cfg) {
  constexpr std::int32_t kCore = 83;
  constexpr std::int32_t kLinks = 131;

  topology t;
  t.name = "RocketFuel";
  t.routers = kCore;

  sim::rng rng(cfg.seed);

  // Preferential attachment over the core: start from a triangle, then each
  // new node attaches to 1-2 existing nodes weighted by degree. 3 seed links
  // + 80 first attachments + 48 second attachments = 131 links.
  std::vector<std::int32_t> degree(kCore, 0);
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  auto add_edge = [&](std::int32_t a, std::int32_t b) {
    edges.emplace_back(a, b);
    ++degree[a];
    ++degree[b];
  };
  add_edge(0, 1);
  add_edge(1, 2);
  add_edge(0, 2);

  auto pick_by_degree = [&](std::int32_t upto, std::int32_t exclude) {
    std::int64_t total = 0;
    for (std::int32_t i = 0; i < upto; ++i) {
      if (i != exclude) total += degree[i];
    }
    auto target = static_cast<std::int64_t>(rng.next_below(
        static_cast<std::uint64_t>(total)));
    for (std::int32_t i = 0; i < upto; ++i) {
      if (i == exclude) continue;
      target -= degree[i];
      if (target < 0) return i;
    }
    return upto - 1;
  };

  std::int32_t second_links_left = kLinks - 3 - (kCore - 3);
  for (std::int32_t v = 3; v < kCore; ++v) {
    const std::int32_t first = pick_by_degree(v, -1);
    add_edge(v, first);
    // Spread the 48 extra links across the growth process.
    if (second_links_left > 0 && v % 5 != 0) {
      const std::int32_t second = pick_by_degree(v, first);
      add_edge(v, second);
      --second_links_left;
    }
  }
  while (second_links_left > 0) {
    const std::int32_t a = pick_by_degree(kCore, -1);
    const std::int32_t b = pick_by_degree(kCore, a);
    add_edge(a, b);
    --second_links_left;
  }

  // Half the core links slower than the access links (paper's setting),
  // half faster; delays drawn 1-5 ms.
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const sim::bits_per_sec rate =
        (i % 2 == 0) ? cfg.access_rate / 2 : sim::kGbps * 5 / 2;
    const auto delay = static_cast<sim::time_ps>(
        sim::kMillisecond * (1 + static_cast<sim::time_ps>(rng.next_below(5))));
    t.core_links.push_back(
        link_spec{edges[i].first, edges[i].second, rate, delay});
  }

  for (std::int32_t c = 0; c < kCore; ++c) {
    for (std::int32_t e = 0; e < cfg.edges_per_core; ++e) {
      const std::int32_t edge_router = t.routers++;
      t.core_links.push_back(
          link_spec{c, edge_router, cfg.access_rate, sim::kMicrosecond * 100});
      t.hosts.push_back(
          host_spec{edge_router, cfg.host_rate, sim::kMicrosecond * 10});
    }
  }
  return t;
}

}  // namespace ups::topo
