#include "topo/gadgets.h"

#include <stdexcept>

namespace ups::topo {

namespace {

constexpr sim::bits_per_sec kT1 = sim::kGbps;      // T = 1 unit
constexpr sim::bits_per_sec kT05 = 2 * sim::kGbps;  // T = 0.5 units
constexpr sim::bits_per_sec kT02 = 5 * sim::kGbps;  // T = 0.2 units
constexpr sim::bits_per_sec kInf = sim::kInfiniteRate;

// Small helper to assemble gadget topologies and prescribed packets.
struct builder {
  gadget g;

  std::int32_t router(const std::string& name) {
    g.topo.router_names.push_back(name);
    return g.topo.routers++;
  }
  void link(std::int32_t a, std::int32_t b, sim::bits_per_sec rate,
            sim::time_ps delay = 0) {
    g.topo.core_links.push_back(link_spec{a, b, rate, delay});
  }
  std::size_t host(std::int32_t attach) {
    g.topo.hosts.push_back(host_spec{attach, kInf, 0});
    return g.topo.hosts.size() - 1;
  }
  // Times in gadget units; hop_starts must have one entry per path router.
  void packet(const std::string& name, std::size_t src, std::size_t dst,
              std::vector<std::int32_t> path, double inject_units,
              std::vector<double> start_units, double out_units) {
    gadget_packet p;
    p.name = name;
    p.src_host = src;
    p.dst_host = dst;
    p.size_bytes = kGadgetBytes;
    p.inject_at = static_cast<sim::time_ps>(inject_units * kUnit);
    for (const double s : start_units) {
      p.hop_starts.push_back(static_cast<sim::time_ps>(s * kUnit));
    }
    p.expected_out = static_cast<sim::time_ps>(out_units * kUnit);
    if (p.hop_starts.size() != path.size()) {
      throw std::logic_error("gadget: hop_starts/path size mismatch");
    }
    // Router indices equal node ids after populate() because routers are
    // added before hosts.
    p.path = std::move(path);
    g.packets.push_back(std::move(p));
  }
};

}  // namespace

gadget fig5_case(int which) {
  if (which != 1 && which != 2) {
    throw std::invalid_argument("fig5_case: which must be 1 or 2");
  }
  builder b;
  b.g.topo.name = "Fig5-case" + std::to_string(which);
  const auto a0 = b.router("a0");
  const auto a1 = b.router("a1");
  const auto a2 = b.router("a2");
  const auto a3 = b.router("a3");
  const auto a4 = b.router("a4");
  const auto w0 = b.router("w0");
  const auto w1 = b.router("w1");
  const auto w2 = b.router("w2");
  const auto w3 = b.router("w3");
  const auto w4 = b.router("w4");
  // Congestion points have T = 1 on their single outgoing port; the white
  // splitters fan out instantaneously.
  b.link(a0, w0, kT1);
  b.link(w0, a1, kInf);
  b.link(w0, a3, kInf);
  b.link(a1, w1, kT1);
  b.link(w1, a2, kInf);
  b.link(a2, w2, kT1);
  b.link(a3, w3, kT1);
  b.link(w3, a4, kInf);
  b.link(a4, w4, kT1);

  const auto sa = b.host(a0);
  const auto sx = b.host(a0);
  const auto sb = b.host(a1);
  const auto sc = b.host(a2);
  const auto sy = b.host(a3);
  const auto sz = b.host(a4);
  const auto da = b.host(w2);
  const auto dx = b.host(w4);
  const auto db = b.host(w1);
  const auto dc = b.host(w2);
  const auto dy = b.host(w3);
  const auto dz = b.host(w4);

  const std::vector<std::int32_t> path_a{a0, w0, a1, w1, a2, w2};
  const std::vector<std::int32_t> path_x{a0, w0, a3, w3, a4, w4};

  if (which == 1) {
    // Case 1: a before x at a0 (Figure 5, upper table).
    b.packet("a", sa, da, path_a, 0, {0, 1, 1, 2, 4, 5}, 5);
    b.packet("x", sx, dx, path_x, 0, {1, 2, 2, 3, 3, 4}, 4);
    b.packet("b1", sb, db, {a1, w1}, 2, {2, 3}, 3);
    b.packet("b2", sb, db, {a1, w1}, 3, {3, 4}, 4);
    b.packet("b3", sb, db, {a1, w1}, 4, {4, 5}, 5);
    b.packet("y1", sy, dy, {a3, w3}, 2, {3, 4}, 4);
    b.packet("y2", sy, dy, {a3, w3}, 3, {4, 5}, 5);
  } else {
    // Case 2: x before a at a0 (Figure 5, lower table).
    b.packet("a", sa, da, path_a, 0, {1, 2, 2, 3, 4, 5}, 5);
    b.packet("x", sx, dx, path_x, 0, {0, 1, 1, 2, 3, 4}, 4);
    b.packet("b1", sb, db, {a1, w1}, 2, {3, 4}, 4);
    b.packet("b2", sb, db, {a1, w1}, 3, {4, 5}, 5);
    b.packet("b3", sb, db, {a1, w1}, 4, {5, 6}, 6);
    b.packet("y1", sy, dy, {a3, w3}, 2, {2, 3}, 3);
    b.packet("y2", sy, dy, {a3, w3}, 3, {3, 4}, 4);
  }
  // Flows C and Z are identical in both cases.
  b.packet("c1", sc, dc, {a2, w2}, 2, {2, 3}, 3);
  b.packet("c2", sc, dc, {a2, w2}, 3, {3, 4}, 4);
  b.packet("z", sz, dz, {a4, w4}, 2, {2, 3}, 3);
  return std::move(b.g);
}

gadget fig6_priority_cycle() {
  builder b;
  b.g.topo.name = "Fig6-priority-cycle";
  const auto a1 = b.router("a1");
  const auto a2 = b.router("a2");
  const auto a3 = b.router("a3");
  const auto w1 = b.router("w1");
  const auto w2 = b.router("w2");
  const auto w3 = b.router("w3");
  b.link(a1, w1, kT1);
  b.link(w1, a2, kInf);
  b.link(w1, a3, kInf, 2 * kUnit);  // the long link L on a's path
  b.link(a2, w2, kT05);
  b.link(w2, a3, kInf);
  b.link(a3, w3, kT02);

  const auto sa = b.host(a1);
  const auto sb = b.host(a1);
  const auto sc = b.host(a2);
  const auto da = b.host(w3);
  const auto db = b.host(w2);
  const auto dc = b.host(w3);

  // Figure 6 schedule: a1: a(0,0), b(0,1); a2: b(2,2), c(2,2.5);
  // a3: c(3,3), a(3,3.2).
  b.packet("a", sa, da, {a1, w1, a3, w3}, 0, {0, 1, 3.2, 3.4}, 3.4);
  b.packet("b", sb, db, {a1, w1, a2, w2}, 0, {1, 2, 2, 2.5}, 2.5);
  b.packet("c", sc, dc, {a2, w2, a3, w3}, 2, {2.5, 3, 3, 3.2}, 3.2);
  return std::move(b.g);
}

gadget fig7_lstf_failure() {
  builder b;
  b.g.topo.name = "Fig7-lstf-failure";
  const auto a0 = b.router("a0");
  const auto a1 = b.router("a1");
  const auto a2 = b.router("a2");
  const auto w0 = b.router("w0");
  const auto w1 = b.router("w1");
  const auto w2 = b.router("w2");
  b.link(a0, w0, kT1);
  b.link(w0, a1, kInf);
  b.link(a1, w1, kT1);
  b.link(w1, a2, kInf);
  b.link(a2, w2, kT1);

  const auto sa = b.host(a0);
  const auto sb = b.host(a0);
  const auto sc = b.host(a1);
  const auto sd = b.host(a2);
  const auto da = b.host(w2);
  const auto db = b.host(w0);
  const auto dc = b.host(w1);
  const auto dd = b.host(w2);

  // Figure 7 original schedule: a0: a(0,0), b(0,1);
  // a1: a(1,1), c1(2,2), c2(3,3); a2: d1(2,2), d2(3,3), a(2,4).
  b.packet("a", sa, da, {a0, w0, a1, w1, a2, w2}, 0, {0, 1, 1, 2, 4, 5}, 5);
  b.packet("b", sb, db, {a0, w0}, 0, {1, 2}, 2);
  b.packet("c1", sc, dc, {a1, w1}, 2, {2, 3}, 3);
  b.packet("c2", sc, dc, {a1, w1}, 3, {3, 4}, 4);
  b.packet("d1", sd, dd, {a2, w2}, 2, {2, 3}, 3);
  b.packet("d2", sd, dd, {a2, w2}, 3, {3, 4}, 4);
  return std::move(b.g);
}

}  // namespace ups::topo
