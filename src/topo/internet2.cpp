#include "topo/internet2.h"

#include <algorithm>
#include <cmath>

#include "net/routing.h"

namespace ups::topo {

namespace {

struct core_edge {
  std::int32_t a;
  std::int32_t b;
  sim::time_ps delay;  // roughly geographic propagation
};

// 10 POPs, 16 links (Abilene-flavoured mesh).
constexpr const char* kCities[10] = {
    "SEAT", "SUNN", "LOSA", "DENV", "KANS",
    "HOUS", "CHIC", "INDI", "ATLA", "WASH",
};

const core_edge kEdges[16] = {
    {0, 1, sim::kMillisecond * 9},   // SEAT-SUNN
    {0, 3, sim::kMillisecond * 13},  // SEAT-DENV
    {0, 6, sim::kMillisecond * 20},  // SEAT-CHIC
    {1, 2, sim::kMillisecond * 4},   // SUNN-LOSA
    {1, 3, sim::kMillisecond * 12},  // SUNN-DENV
    {1, 4, sim::kMillisecond * 18},  // SUNN-KANS
    {2, 5, sim::kMillisecond * 15},  // LOSA-HOUS
    {2, 8, sim::kMillisecond * 22},  // LOSA-ATLA
    {3, 4, sim::kMillisecond * 6},   // DENV-KANS
    {4, 5, sim::kMillisecond * 8},   // KANS-HOUS
    {4, 6, sim::kMillisecond * 5},   // KANS-CHIC
    {5, 8, sim::kMillisecond * 8},   // HOUS-ATLA
    {6, 7, sim::kMillisecond * 2},   // CHIC-INDI
    {6, 9, sim::kMillisecond * 7},   // CHIC-WASH
    {7, 8, sim::kMillisecond * 5},   // INDI-ATLA
    {8, 9, sim::kMillisecond * 6},   // ATLA-WASH
};

}  // namespace

topology internet2(const internet2_config& cfg) {
  topology t;
  t.name = "Internet2";
  t.routers = 10;
  for (const char* c : kCities) t.router_names.emplace_back(c);

  // Provision each core link at roughly HALF the capacity the uniform
  // traffic matrix would need per 1 Gbps of per-host rate, quantized up to
  // 2.5 Gbps waves. The core is then the uniformly hot tier in every
  // variant (as in the paper, where core links are slower than access
  // links), and the variants differ in how finely traffic is paced before
  // reaching it: 1 Gbps access serializes packets 12 us apart (decent
  // replay), 1 Gbps host links pace even earlier (best), and 10 Gbps
  // access delivers ~10x burstier arrivals to the hot core (worst) — the
  // paper's §2.3(3) mechanism.
  net::routing_graph g(10);
  for (const auto& e : kEdges) {
    g[e.a].push_back(net::routing_edge{e.b, e.delay + 1});
    g[e.b].push_back(net::routing_edge{e.a, e.delay + 1});
  }
  // Directed pair-crossings per core link under shortest-path routing.
  double crossings[16][2] = {};
  for (net::node_id s = 0; s < 10; ++s) {
    for (net::node_id d = 0; d < 10; ++d) {
      if (s == d) continue;
      const auto path = net::shortest_path(g, s, d);
      for (std::size_t j = 0; j + 1 < path.size(); ++j) {
        for (std::size_t i = 0; i < 16; ++i) {
          if (kEdges[i].a == path[j] && kEdges[i].b == path[j + 1]) {
            crossings[i][0] += 1;
          } else if (kEdges[i].b == path[j] && kEdges[i].a == path[j + 1]) {
            crossings[i][1] += 1;
          }
        }
      }
    }
  }
  const double hosts =
      10.0 * cfg.edges_per_core * cfg.hosts_per_edge;  // 100 by default
  const double hosts_per_core = hosts / 10.0;
  for (std::size_t i = 0; i < 16; ++i) {
    // Load in units of the per-host rate R: each directed core pair on the
    // path carries hosts_per_core^2 host pairs, each at R/(hosts-1).
    const double worst = std::max(crossings[i][0], crossings[i][1]);
    const double load_R =
        worst * hosts_per_core * hosts_per_core / (hosts - 1.0);
    // Capacity for the load at R = 0.5 Gbps, rounded up to the next
    // 2.5 Gbps wave: the core saturates at about half the per-host rate
    // that would saturate the 1 Gbps access tier.
    const double gbps = std::ceil(load_R * 0.5 / 2.5) * 2.5;
    const auto rate = static_cast<sim::bits_per_sec>(gbps * 1e9);
    t.core_links.push_back(
        link_spec{kEdges[i].a, kEdges[i].b, rate, kEdges[i].delay});
  }

  // Edge routers hang off each core router; hosts hang off edge routers.
  for (std::int32_t c = 0; c < 10; ++c) {
    for (std::int32_t e = 0; e < cfg.edges_per_core; ++e) {
      const std::int32_t edge_router = t.routers++;
      t.router_names.push_back(std::string(kCities[c]) + "-e" +
                               std::to_string(e));
      t.core_links.push_back(
          link_spec{c, edge_router, cfg.access_rate, sim::kMicrosecond * 100});
      for (std::int32_t h = 0; h < cfg.hosts_per_edge; ++h) {
        t.hosts.push_back(
            host_spec{edge_router, cfg.host_rate, sim::kMicrosecond * 10});
      }
    }
  }
  return t;
}

topology internet2_1g_10g() { return internet2(); }

topology internet2_1g_1g() {
  internet2_config cfg;
  cfg.host_rate = sim::kGbps;
  auto t = internet2(cfg);
  t.name = "Internet2-1G-1G";
  return t;
}

topology internet2_10g_10g() {
  internet2_config cfg;
  cfg.access_rate = 10 * sim::kGbps;
  auto t = internet2(cfg);
  t.name = "Internet2-10G-10G";
  return t;
}

}  // namespace ups::topo
