// Hand-built theory gadgets from the paper's appendices.
//
// Each gadget is a tiny topology plus a prescribed schedule: per packet, an
// injection time and a per-router "scheduled at" time. Running the gadget
// with the omniscient executor reproduces exactly the schedule printed in
// the paper's figure (the tests assert the resulting i/o times), and the
// recorded trace is then fed to the replay engine.
//
// The paper's gadget figures give each congestion point a single node-wide
// transmission time. Our routers are output-queued, so each congestion
// point α is modelled as a port α -> w(α) at the congested rate feeding an
// infinitely fast "white" splitter w(α) that fans out toward the next
// congestion point or the egress hosts; contention then happens on the
// single α -> w(α) port exactly as in the figures.
//
//  - fig5_case(1|2): Appendix C — no UPS under black-box initialization.
//    Packets a and x have identical (i, o, path) in both cases, yet case 1
//    requires a before x at the shared first hop and case 2 the opposite.
//  - fig6_priority_cycle: Appendix F — priority(a)<(b)<(c)<(a) cycle; no
//    static priority assignment replays it, LSTF does.
//  - fig7_lstf_failure: Appendix G.3 — a flow with three congestion points
//    that LSTF cannot replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/topology.h"

namespace ups::topo {

struct gadget_packet {
  std::string name;
  std::size_t src_host;
  std::size_t dst_host;
  // Explicit router-level path (router indices; the paper's model fixes
  // path(p) as part of the input).
  std::vector<std::int32_t> path;
  sim::time_ps inject_at;
  // Prescribed service-start time at each router on the path (one entry per
  // router; entries for the infinitely fast white routers are ignored).
  std::vector<sim::time_ps> hop_starts;
  // Expected last-bit network exit time in the paper's figure.
  sim::time_ps expected_out;
  std::uint32_t size_bytes;
};

struct gadget {
  topology topo;
  std::vector<gadget_packet> packets;
};

// One time unit in the gadgets.
inline constexpr sim::time_ps kUnit = sim::kMicrosecond;
// Packet size: 1000 bits, so a 1 Gbps port gives T = 1 unit.
inline constexpr std::uint32_t kGadgetBytes = 125;

[[nodiscard]] gadget fig5_case(int which);
[[nodiscard]] gadget fig6_priority_cycle();
[[nodiscard]] gadget fig7_lstf_failure();

}  // namespace ups::topo
