// Simplified Internet2 topology (§2.3): 10 core routers, 16 core links,
// 10 edge routers per core router, one end host per edge router.
//
// The paper (via [21]) does not publish per-core-link capacities; we use a
// deterministic mix of 2.5 and 10 Gbps chosen so that (a) in the default
// setup every core link is at least as fast as the 1 Gbps access links and
// (b) in the 10G-10G variant most core links are slower than the access
// links — the two properties the paper's Table 1 analysis relies on.
#pragma once

#include "topo/topology.h"

namespace ups::topo {

struct internet2_config {
  // edge router <-> core router links ("access"); 1 Gbps in the default.
  sim::bits_per_sec access_rate = sim::kGbps;
  // host <-> edge router links; 10 Gbps in the default.
  sim::bits_per_sec host_rate = 10 * sim::kGbps;
  std::int32_t edges_per_core = 10;
  std::int32_t hosts_per_edge = 1;
};

[[nodiscard]] topology internet2(const internet2_config& cfg = {});

// Paper variants (Table 1 row 3).
[[nodiscard]] topology internet2_1g_10g();   // default
[[nodiscard]] topology internet2_1g_1g();    // slower host links
[[nodiscard]] topology internet2_10g_10g();  // faster access links

}  // namespace ups::topo
