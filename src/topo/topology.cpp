#include "topo/topology.h"

#include <algorithm>
#include <stdexcept>

namespace ups::topo {

sim::bits_per_sec topology::bottleneck_rate() const {
  sim::bits_per_sec lo = sim::kInfiniteRate;
  for (const auto& l : core_links) lo = std::min(lo, l.rate);
  for (const auto& h : hosts) lo = std::min(lo, h.rate);
  if (lo == sim::kInfiniteRate) {
    throw std::logic_error("topology: all links infinite");
  }
  return lo;
}

void topology::scale_delays(double factor) {
  for (auto& l : core_links) {
    l.delay = static_cast<sim::time_ps>(static_cast<double>(l.delay) * factor);
  }
  for (auto& h : hosts) {
    h.delay = static_cast<sim::time_ps>(static_cast<double>(h.delay) * factor);
  }
}

void populate(const topology& t, net::network& net) {
  for (std::int32_t i = 0; i < t.routers; ++i) {
    const std::string name = i < static_cast<std::int32_t>(
                                     t.router_names.size())
                                 ? t.router_names[i]
                                 : "r" + std::to_string(i);
    net.add_router(name);
  }
  for (std::size_t i = 0; i < t.hosts.size(); ++i) {
    net.add_host("h" + std::to_string(i));
  }
  for (const auto& l : t.core_links) {
    net.add_link(l.a, l.b, l.rate, l.delay);
  }
  for (std::size_t i = 0; i < t.hosts.size(); ++i) {
    net.add_link(t.hosts[i].router, t.host_id(i), t.hosts[i].rate,
                 t.hosts[i].delay);
  }
}

}  // namespace ups::topo
