// Micro-topologies for tests and examples.
#pragma once

#include "topo/topology.h"

namespace ups::topo {

// Two hosts joined by a chain of n routers over `rate` links.
[[nodiscard]] topology line(std::int32_t n_routers,
                            sim::bits_per_sec rate = sim::kGbps,
                            sim::time_ps delay = sim::kMicrosecond,
                            std::int32_t hosts_per_end = 1);

// Classic dumbbell: n hosts on each side of a single bottleneck link.
[[nodiscard]] topology dumbbell(std::int32_t hosts_per_side,
                                sim::bits_per_sec access_rate,
                                sim::bits_per_sec bottleneck_rate,
                                sim::time_ps delay = sim::kMicrosecond);

// Parking lot: n routers in a row, one host per router plus one long-path
// host at the left; classic multi-congestion-point fairness scenario.
[[nodiscard]] topology parking_lot(std::int32_t n_routers,
                                   sim::bits_per_sec rate = sim::kGbps,
                                   sim::time_ps delay = sim::kMicrosecond);

}  // namespace ups::topo
