#include "topo/fattree.h"

#include <stdexcept>

namespace ups::topo {

topology fattree(const fattree_config& cfg) {
  const std::int32_t k = cfg.k;
  if (k < 2 || k % 2 != 0) throw std::invalid_argument("fattree: k must be even");
  const std::int32_t half = k / 2;

  topology t;
  t.name = "FatTree-k" + std::to_string(k);

  // Router ids: edge switches first (k*half), then aggregation (k*half),
  // then core (half*half).
  const std::int32_t n_edge = k * half;
  const std::int32_t n_agg = k * half;
  const std::int32_t n_core = half * half;
  t.routers = n_edge + n_agg + n_core;
  auto edge_id = [&](std::int32_t pod, std::int32_t i) { return pod * half + i; };
  auto agg_id = [&](std::int32_t pod, std::int32_t i) {
    return n_edge + pod * half + i;
  };
  auto core_id = [&](std::int32_t i, std::int32_t j) {
    return n_edge + n_agg + i * half + j;
  };

  for (std::int32_t pod = 0; pod < k; ++pod) {
    for (std::int32_t e = 0; e < half; ++e) {
      t.router_names.push_back("edge-p" + std::to_string(pod) + "-" +
                               std::to_string(e));
    }
  }
  t.router_names.resize(n_edge);
  for (std::int32_t pod = 0; pod < k; ++pod) {
    for (std::int32_t a = 0; a < half; ++a) {
      t.router_names.push_back("agg-p" + std::to_string(pod) + "-" +
                               std::to_string(a));
    }
  }
  for (std::int32_t i = 0; i < half; ++i) {
    for (std::int32_t j = 0; j < half; ++j) {
      t.router_names.push_back("core-" + std::to_string(i) + "-" +
                               std::to_string(j));
    }
  }

  // Pod wiring: every edge switch to every aggregation switch in its pod.
  for (std::int32_t pod = 0; pod < k; ++pod) {
    for (std::int32_t e = 0; e < half; ++e) {
      for (std::int32_t a = 0; a < half; ++a) {
        t.core_links.push_back(link_spec{edge_id(pod, e), agg_id(pod, a),
                                         cfg.rate, cfg.link_delay});
      }
    }
  }
  // Core wiring: aggregation switch a of each pod to core row a.
  for (std::int32_t pod = 0; pod < k; ++pod) {
    for (std::int32_t a = 0; a < half; ++a) {
      for (std::int32_t j = 0; j < half; ++j) {
        t.core_links.push_back(
            link_spec{agg_id(pod, a), core_id(a, j), cfg.rate, cfg.link_delay});
      }
    }
  }
  // Hosts: half per edge switch.
  for (std::int32_t pod = 0; pod < k; ++pod) {
    for (std::int32_t e = 0; e < half; ++e) {
      for (std::int32_t h = 0; h < half; ++h) {
        t.hosts.push_back(host_spec{edge_id(pod, e), cfg.rate, cfg.link_delay});
      }
    }
  }
  return t;
}

}  // namespace ups::topo
