// RocketFuel-like ISP topology (§2.3): 83 core routers, 131 core links.
//
// The measured RocketFuel dataset is not redistributable here; we generate a
// deterministic preferential-attachment graph with exactly the paper's node
// and link counts, and set half the core links slower than the access links
// — the property the paper identifies as driving its replay results.
#pragma once

#include <cstdint>

#include "topo/topology.h"

namespace ups::topo {

struct rocketfuel_config {
  std::uint64_t seed = 42;
  sim::bits_per_sec access_rate = sim::kGbps;
  sim::bits_per_sec host_rate = 10 * sim::kGbps;
  std::int32_t edges_per_core = 10;
};

[[nodiscard]] topology rocketfuel(const rocketfuel_config& cfg = {});

}  // namespace ups::topo
