// Simplified TCP Reno over the simulated network.
//
// §3.1 and §3.3 of the paper run TCP flows through the schedulers; this is
// the minimal loss-based transport that exercises those experiments: slow
// start, AIMD congestion avoidance, triple-duplicate-ACK fast retransmit,
// and an RFC 6298-style retransmission timer with go-back-N recovery.
// Segments are MSS-sized with a 40-byte header; ACKs are 40-byte packets
// with zero slack/priority (they always win the scheduler, which matches
// the paper's switch-scheduling focus on data packets).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "sim/time.h"

namespace ups::transport {

struct tcp_config {
  std::uint32_t mss = 1460;
  std::uint32_t header_bytes = 40;
  std::uint32_t ack_bytes = 40;
  double init_cwnd_pkts = 10.0;
  double init_ssthresh_pkts = 1e9;
  // Receive-window stand-in: bounds queue build-up in lossless scenarios
  // (the fairness experiment runs with effectively unbounded buffers).
  double max_cwnd_pkts = 1e9;
  sim::time_ps rto_min = 10 * sim::kMillisecond;
  sim::time_ps rto_init = 100 * sim::kMillisecond;
  sim::time_ps rto_max = 4 * sim::kSecond;
  int dupack_threshold = 3;
};

// Applied to every data segment at emission; the hook where the §3 slack
// heuristics (or priority stamping) initialize the scheduling header.
using header_stamper = std::function<void(net::packet&)>;

struct fct_sample {
  std::uint64_t flow_id = 0;
  std::uint64_t size_bytes = 0;
  sim::time_ps start = 0;
  sim::time_ps completion = 0;
  [[nodiscard]] sim::time_ps fct() const noexcept { return completion - start; }
};

class tcp_manager {
 public:
  tcp_manager(net::network& net, tcp_config cfg);

  // Starts a size-limited flow at time `at` (must be >= now).
  void start_flow(std::uint64_t flow_id, net::node_id src, net::node_id dst,
                  std::uint64_t size_bytes, sim::time_ps at,
                  header_stamper stamper = {});

  // Invoked when a flow's last byte is acknowledged (after the fct_sample
  // is recorded). Closed-loop sources use this to launch the next request.
  void set_on_complete(std::function<void(const fct_sample&)> cb) {
    on_complete_ = std::move(cb);
  }

  [[nodiscard]] const std::vector<fct_sample>& completions() const noexcept {
    return completions_;
  }
  // Receiver-side in-order bytes (fairness throughput accounting).
  [[nodiscard]] std::uint64_t delivered_bytes(std::uint64_t flow_id) const;
  [[nodiscard]] std::uint64_t flows_in_progress() const noexcept {
    return active_;
  }

 private:
  struct flow {
    std::uint64_t id = 0;
    net::node_id src = net::kInvalidNode;
    net::node_id dst = net::kInvalidNode;
    std::uint64_t size = 0;
    header_stamper stamper;
    sim::time_ps started = 0;
    bool done = false;

    // sender
    std::uint64_t next_to_send = 0;
    std::uint64_t highest_acked = 0;
    double cwnd = 0;
    double ssthresh = 0;
    int dup_acks = 0;
    std::uint64_t recovery_point = 0;  // suppress repeated fast retransmits
    sim::simulator::handle rto_timer{};
    sim::time_ps rto = 0;
    sim::time_ps srtt = 0;
    sim::time_ps rttvar = 0;
    bool have_rtt = false;
    std::uint64_t timing_seq = 0;  // single-timer RTT sampling
    sim::time_ps timing_start = 0;
    bool timing = false;

    // receiver
    std::uint64_t rcv_next = 0;
    std::map<std::uint64_t, std::uint64_t> ooo;  // out-of-order [start,end)
  };

  void hook_host(net::node_id host);
  void on_host_packet(net::packet_ptr p);
  void pump(flow& f);
  void emit_segment(flow& f, std::uint64_t off, bool retransmission);
  void on_ack(flow& f, std::uint64_t ackno);
  void on_data(flow& f, const net::packet& p);
  void send_ack(flow& f);
  void arm_rto(flow& f);
  void on_rto(std::uint64_t flow_id);
  void complete(flow& f);

  net::network& net_;
  tcp_config cfg_;
  std::unordered_map<std::uint64_t, std::unique_ptr<flow>> flows_;
  std::vector<bool> hooked_;
  std::vector<fct_sample> completions_;
  std::function<void(const fct_sample&)> on_complete_;
  std::uint64_t next_packet_id_ = (1ull << 48);  // distinct from UDP ids
  std::uint64_t active_ = 0;
};

}  // namespace ups::transport
