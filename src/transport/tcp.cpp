#include "transport/tcp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ups::transport {

tcp_manager::tcp_manager(net::network& net, tcp_config cfg)
    : net_(net), cfg_(cfg), hooked_(net.node_count(), false) {}

void tcp_manager::hook_host(net::node_id host) {
  if (hooked_[host]) return;
  hooked_[host] = true;
  net_.set_host_handler(
      host, [this](net::packet_ptr p) { on_host_packet(std::move(p)); });
}

void tcp_manager::start_flow(std::uint64_t flow_id, net::node_id src,
                             net::node_id dst, std::uint64_t size_bytes,
                             sim::time_ps at, header_stamper stamper) {
  auto f = std::make_unique<flow>();
  f->id = flow_id;
  f->src = src;
  f->dst = dst;
  f->size = size_bytes;
  f->stamper = std::move(stamper);
  f->cwnd = cfg_.init_cwnd_pkts;
  f->ssthresh = cfg_.init_ssthresh_pkts;
  f->rto = cfg_.rto_init;
  flow* raw = f.get();
  flows_.emplace(flow_id, std::move(f));
  hook_host(src);
  hook_host(dst);
  ++active_;
  net_.sim().schedule_at(at, [this, raw] {
    raw->started = net_.sim().now();
    pump(*raw);
    arm_rto(*raw);
  });
}

void tcp_manager::pump(flow& f) {
  const auto cwnd_bytes =
      static_cast<std::uint64_t>(std::max(1.0, f.cwnd) * cfg_.mss);
  while (f.next_to_send < f.size &&
         f.next_to_send - f.highest_acked < cwnd_bytes) {
    emit_segment(f, f.next_to_send, false);
    f.next_to_send +=
        std::min<std::uint64_t>(cfg_.mss, f.size - f.next_to_send);
  }
}

void tcp_manager::emit_segment(flow& f, std::uint64_t off,
                               bool retransmission) {
  const auto len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(cfg_.mss, f.size - off));
  net::packet_ptr p = net_.pool().make();
  p->id = next_packet_id_++;
  p->flow_id = f.id;
  p->kind = net::packet_kind::data;
  p->size_bytes = len + cfg_.header_bytes;
  p->src_host = f.src;
  p->dst_host = f.dst;
  p->tseq = off;
  p->seq_in_flow = static_cast<std::uint32_t>(off / cfg_.mss);
  p->flow_size_bytes = f.size;
  p->remaining_flow_bytes = f.size - f.highest_acked;
  if (f.stamper) f.stamper(*p);
  if (!retransmission && !f.timing) {
    f.timing = true;
    f.timing_seq = off + len;
    f.timing_start = net_.sim().now();
  }
  if (retransmission && f.timing && off < f.timing_seq) {
    f.timing = false;  // Karn's rule: never time retransmitted data
  }
  net_.send_from_host(std::move(p));
}

void tcp_manager::on_host_packet(net::packet_ptr p) {
  auto it = flows_.find(p->flow_id);
  if (it == flows_.end()) return;  // stale packet from a finished flow
  flow& f = *it->second;
  if (p->kind == net::packet_kind::data) {
    on_data(f, *p);
  } else {
    on_ack(f, p->tack);
  }
}

void tcp_manager::on_data(flow& f, const net::packet& p) {
  const std::uint64_t start = p.tseq;
  const std::uint64_t end = start + (p.size_bytes - cfg_.header_bytes);
  if (end > f.rcv_next) {
    if (start <= f.rcv_next) {
      f.rcv_next = end;
      // Absorb any out-of-order segments now contiguous.
      auto it = f.ooo.begin();
      while (it != f.ooo.end() && it->first <= f.rcv_next) {
        f.rcv_next = std::max(f.rcv_next, it->second);
        it = f.ooo.erase(it);
      }
    } else {
      f.ooo[start] = std::max(f.ooo[start], end);
    }
  }
  send_ack(f);
}

void tcp_manager::send_ack(flow& f) {
  net::packet_ptr a = net_.pool().make();
  a->id = next_packet_id_++;
  a->flow_id = f.id;
  a->kind = net::packet_kind::ack;
  a->size_bytes = cfg_.ack_bytes;
  a->src_host = f.dst;
  a->dst_host = f.src;
  a->tack = f.rcv_next;
  // ACKs carry zero slack / best priority: never the bottleneck.
  a->slack = 0;
  a->priority = 0;
  a->flow_size_bytes = 0;
  a->remaining_flow_bytes = 0;
  net_.send_from_host(std::move(a));
}

void tcp_manager::on_ack(flow& f, std::uint64_t ackno) {
  if (f.done) return;
  if (ackno > f.highest_acked) {
    const std::uint64_t delta = ackno - f.highest_acked;
    f.highest_acked = ackno;
    f.dup_acks = 0;
    if (f.next_to_send < f.highest_acked) f.next_to_send = f.highest_acked;
    // RTT sample (single-timer scheme).
    if (f.timing && ackno >= f.timing_seq) {
      const sim::time_ps sample = net_.sim().now() - f.timing_start;
      f.timing = false;
      if (!f.have_rtt) {
        f.srtt = sample;
        f.rttvar = sample / 2;
        f.have_rtt = true;
      } else {
        const sim::time_ps err = std::abs(sample - f.srtt);
        f.rttvar = (3 * f.rttvar + err) / 4;
        f.srtt = (7 * f.srtt + sample) / 8;
      }
      f.rto = std::clamp(f.srtt + 4 * f.rttvar, cfg_.rto_min, cfg_.rto_max);
    }
    // Congestion window growth.
    const double acked_pkts =
        static_cast<double>(delta) / static_cast<double>(cfg_.mss);
    if (f.cwnd < f.ssthresh) {
      f.cwnd += acked_pkts;  // slow start
    } else {
      f.cwnd += acked_pkts / f.cwnd;  // congestion avoidance
    }
    f.cwnd = std::min(f.cwnd, cfg_.max_cwnd_pkts);
    if (f.highest_acked >= f.size) {
      complete(f);
      return;
    }
    arm_rto(f);
    pump(f);
    return;
  }
  // Duplicate ACK.
  ++f.dup_acks;
  if (f.dup_acks == cfg_.dupack_threshold &&
      f.highest_acked >= f.recovery_point) {
    f.ssthresh = std::max(f.cwnd / 2.0, 2.0);
    f.cwnd = f.ssthresh;
    f.recovery_point = f.next_to_send;
    emit_segment(f, f.highest_acked, true);
  }
}

void tcp_manager::arm_rto(flow& f) {
  net_.sim().cancel(f.rto_timer);
  const std::uint64_t id = f.id;
  f.rto_timer = net_.sim().schedule_in(f.rto, [this, id] { on_rto(id); });
}

void tcp_manager::on_rto(std::uint64_t flow_id) {
  auto it = flows_.find(flow_id);
  if (it == flows_.end()) return;
  flow& f = *it->second;
  if (f.done || f.highest_acked >= f.size) return;
  f.ssthresh = std::max(f.cwnd / 2.0, 2.0);
  f.cwnd = 1.0;
  f.dup_acks = 0;
  f.recovery_point = f.next_to_send;
  f.next_to_send = f.highest_acked;  // go-back-N
  f.rto = std::min(f.rto * 2, cfg_.rto_max);
  f.timing = false;
  pump(f);
  arm_rto(f);
}

void tcp_manager::complete(flow& f) {
  f.done = true;
  net_.sim().cancel(f.rto_timer);
  completions_.push_back(
      fct_sample{f.id, f.size, f.started, net_.sim().now()});
  assert(active_ > 0);
  --active_;
  if (on_complete_) on_complete_(completions_.back());
}

std::uint64_t tcp_manager::delivered_bytes(std::uint64_t flow_id) const {
  const auto it = flows_.find(flow_id);
  return it == flows_.end() ? 0 : it->second->rcv_next;
}

}  // namespace ups::transport
