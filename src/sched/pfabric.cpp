#include "sched/pfabric.h"

#include <cassert>
#include <utility>

namespace ups::sched {

std::int32_t pfabric::flow_slot_for(std::uint64_t flow_id) {
  const auto it = flow_slot_.find(flow_id);
  if (it != flow_slot_.end()) return it->second;
  const auto slot = static_cast<std::int32_t>(flows_.size());
  flows_.push_back(flow_state{});
  flow_slot_.emplace(flow_id, slot);
  return slot;
}

void pfabric::enqueue(net::packet_ptr p, sim::time_ps /*now*/) {
  std::int32_t n;
  if (!free_nodes_.empty()) {
    n = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    n = static_cast<std::int32_t>(slab_.size());
    slab_.emplace_back();
  }
  const std::int32_t fs = flow_slot_for(p->flow_id);
  qnode& node = slab_[n];
  node.rank = rank_of(*p);
  node.uid = next_uid_++;
  node.flow_slot = fs;
  node.prev = flows_[fs].tail;
  node.next = -1;
  bytes_ += p->size_bytes;
  rank_index_.emplace(rank_key{node.rank, node.uid}, n);
  node.p = std::move(p);
  flow_state& f = flows_[fs];
  if (f.tail >= 0) {
    slab_[f.tail].next = n;
  } else {
    f.head = n;
  }
  f.tail = n;
}

net::packet_ptr pfabric::extract(std::int32_t n) {
  qnode& node = slab_[n];
  flow_state& f = flows_[node.flow_slot];
  if (node.prev >= 0) {
    slab_[node.prev].next = node.next;
  } else {
    f.head = node.next;
  }
  if (node.next >= 0) {
    slab_[node.next].prev = node.prev;
  } else {
    f.tail = node.prev;
  }
  rank_index_.erase(rank_key{node.rank, node.uid});
  net::packet_ptr p = std::move(node.p);
  node.prev = node.next = -1;
  node.flow_slot = -1;
  free_nodes_.push_back(n);
  bytes_ -= p->size_bytes;
  return p;
}

net::packet_ptr pfabric::dequeue(sim::time_ps /*now*/) {
  if (rank_index_.empty()) return nullptr;
  // Highest-priority packet selects the flow; serve that flow's earliest
  // arrived packet (starvation prevention).
  const std::int32_t best = rank_index_.begin()->second;
  const std::int32_t head = flows_[slab_[best].flow_slot].head;
  assert(head >= 0);
  return extract(head);
}

net::packet_ptr pfabric::evict_for(const net::packet& incoming,
                                   sim::time_ps /*now*/) {
  if (rank_index_.empty()) return nullptr;
  const auto worst = std::prev(rank_index_.end());
  if (rank_of(incoming) >= worst->first.first) return nullptr;
  return extract(worst->second);
}

}  // namespace ups::sched
