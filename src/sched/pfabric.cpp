#include "sched/pfabric.h"

#include <cassert>
#include <utility>

namespace ups::sched {

void pfabric::enqueue(net::packet_ptr p, sim::time_ps /*now*/) {
  const std::uint64_t uid = next_uid_++;
  const std::int64_t rank = rank_of(*p);
  const std::uint64_t flow = p->flow_id;
  bytes_ += p->size_bytes;
  rank_index_.emplace(std::make_pair(rank, uid), std::make_pair(flow, uid));
  flows_[flow].emplace(uid, entry{std::move(p), rank});
}

net::packet_ptr pfabric::dequeue(sim::time_ps /*now*/) {
  if (rank_index_.empty()) return nullptr;
  // Highest-priority packet selects the flow; serve that flow's earliest
  // arrived packet (starvation prevention).
  const auto flow = rank_index_.begin()->second.first;
  auto fit = flows_.find(flow);
  assert(fit != flows_.end() && !fit->second.empty());
  const std::uint64_t uid = fit->second.begin()->first;
  return remove(flow, uid);
}

net::packet_ptr pfabric::remove(std::uint64_t flow, std::uint64_t uid) {
  auto fit = flows_.find(flow);
  auto eit = fit->second.find(uid);
  net::packet_ptr p = std::move(eit->second.p);
  rank_index_.erase(std::make_pair(eit->second.rank, uid));
  fit->second.erase(eit);
  if (fit->second.empty()) flows_.erase(fit);
  bytes_ -= p->size_bytes;
  return p;
}

net::packet_ptr pfabric::evict_for(const net::packet& incoming,
                                   sim::time_ps /*now*/) {
  if (rank_index_.empty()) return nullptr;
  const auto worst = std::prev(rank_index_.end());
  if (rank_of(incoming) >= worst->first.first) return nullptr;
  return remove(worst->second.first, worst->second.second);
}

}  // namespace ups::sched
