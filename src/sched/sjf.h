// Shortest Job First: serves the packet whose flow has the smallest total
// size (the size is stamped into the header at the ingress, as the paper's
// "SJF using priorities" does).
#pragma once

#include "sched/rank_scheduler.h"

namespace ups::sched {

class sjf final : public rank_scheduler_base<sjf> {
 public:
  explicit sjf(std::int32_t port_id = -1, bool drop_highest_rank = false)
      : rank_scheduler_base(port_id, drop_highest_rank) {}

  [[nodiscard]] std::int64_t rank_of(const net::packet& p,
                                     sim::time_ps /*now*/) const noexcept {
    return static_cast<std::int64_t>(p.flow_size_bytes);
  }
};

}  // namespace ups::sched
