// Simple (static) priority scheduling: the header carries a priority value
// assigned at the ingress and routers serve the smallest value first. This
// is the paper's "natural candidate" near-UPS that LSTF is proven to beat
// (Appendix F), and the comparison point of §2.3(7) with priority = o(p).
#pragma once

#include "sched/rank_scheduler.h"

namespace ups::sched {

class static_priority final : public rank_scheduler_base<static_priority> {
 public:
  explicit static_priority(std::int32_t port_id = -1,
                           bool drop_highest_rank = false)
      : rank_scheduler_base(port_id, drop_highest_rank) {}

  [[nodiscard]] std::int64_t rank_of(const net::packet& p,
                                     sim::time_ps /*now*/) const noexcept {
    return p.priority;
  }
};

}  // namespace ups::sched
