// Random scheduler: serves a uniformly random queued packet.
//
// The paper's default "hard" original schedule (§2.3): its output is an
// arbitrary interleaving, so replaying it exercises LSTF with no structural
// help from the original algorithm.
#pragma once

#include <utility>
#include <vector>

#include "net/scheduler.h"
#include "sim/rng.h"

namespace ups::sched {

class random_order final : public net::scheduler {
 public:
  explicit random_order(sim::rng rng) : rng_(std::move(rng)) {}

  void enqueue(net::packet_ptr p, sim::time_ps /*now*/) override {
    bytes_ += p->size_bytes;
    q_.push_back(std::move(p));
  }

  net::packet_ptr dequeue(sim::time_ps /*now*/) override {
    if (q_.empty()) return nullptr;
    const std::size_t i = rng_.next_below(q_.size());
    std::swap(q_[i], q_.back());
    net::packet_ptr p = std::move(q_.back());
    q_.pop_back();
    bytes_ -= p->size_bytes;
    return p;
  }

  [[nodiscard]] bool empty() const noexcept override { return q_.empty(); }
  [[nodiscard]] std::size_t packets() const noexcept override {
    return q_.size();
  }
  [[nodiscard]] std::size_t bytes() const noexcept override { return bytes_; }

 private:
  sim::rng rng_;
  std::vector<net::packet_ptr> q_;
  std::size_t bytes_ = 0;
};

}  // namespace ups::sched
