// pFabric-style priority scheduling with starvation prevention [3].
//
// Footnote 8 of the paper: "the router always schedules the earliest
// arriving packet of the flow which contains the highest priority packet."
// In SRPT mode the rank is the remaining flow size stamped at emission; in
// SJF mode it is the total flow size. On overflow the worst-ranked packet
// is dropped (pFabric's drop policy).
//
// Storage is flattened onto pooled structures so steady-state enqueue/
// dequeue performs zero heap allocations (the bench_micro_queues gate
// covers pfabric): queued packets live in a slab of index-linked nodes
// recycled through a freelist, each flow's arrival order is an intrusive
// doubly-linked list through that slab, and the global (rank, uid) index is
// an ordered tree over the same node-freelist allocator keyed_queue uses.
// Flow bookkeeping entries persist across a flow's quiet periods — O(number
// of distinct flows seen) memory — so re-activating a flow allocates
// nothing.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "net/scheduler.h"
#include "sched/keyed_queue.h"

namespace ups::sched {

enum class pfabric_mode : std::uint8_t { srpt, sjf };

class pfabric final : public net::scheduler {
 public:
  explicit pfabric(pfabric_mode mode)
      : mode_(mode), rank_index_(std::less<rank_key>{}, alloc{&free_tree_}) {}
  pfabric(const pfabric&) = delete;
  pfabric& operator=(const pfabric&) = delete;

  ~pfabric() override {
    rank_index_.clear();  // returns tree nodes to the freelist first
    for (void* p : free_tree_) ::operator delete(p);
    free_tree_.clear();
  }

  void enqueue(net::packet_ptr p, sim::time_ps now) override;
  net::packet_ptr dequeue(sim::time_ps now) override;

  [[nodiscard]] bool empty() const noexcept override {
    return rank_index_.empty();
  }
  [[nodiscard]] std::size_t packets() const noexcept override {
    return rank_index_.size();
  }
  [[nodiscard]] std::size_t bytes() const noexcept override { return bytes_; }

  net::packet_ptr evict_for(const net::packet& incoming,
                            sim::time_ps now) override;

 private:
  // Queued packet: slab entry linked into its flow's arrival-order list.
  struct qnode {
    net::packet_ptr p;
    std::int64_t rank = 0;
    std::uint64_t uid = 0;
    std::int32_t flow_slot = -1;
    std::int32_t prev = -1;  // earlier arrival in the same flow
    std::int32_t next = -1;  // later arrival in the same flow
  };
  // Arrival-order endpoints of one flow's queued packets; persists (empty)
  // after the flow drains so its map entry is allocated exactly once.
  struct flow_state {
    std::int32_t head = -1;
    std::int32_t tail = -1;
  };

  [[nodiscard]] std::int64_t rank_of(const net::packet& p) const {
    return static_cast<std::int64_t>(mode_ == pfabric_mode::srpt
                                         ? p.remaining_flow_bytes
                                         : p.flow_size_bytes);
  }
  [[nodiscard]] std::int32_t flow_slot_for(std::uint64_t flow_id);
  // Detaches node `n` from its flow list and the rank index, recycles the
  // slab slot, and hands back its packet.
  net::packet_ptr extract(std::int32_t n);

  pfabric_mode mode_;
  std::uint64_t next_uid_ = 0;
  std::size_t bytes_ = 0;

  std::vector<qnode> slab_;
  std::vector<std::int32_t> free_nodes_;
  std::vector<flow_state> flows_;
  std::unordered_map<std::uint64_t, std::int32_t> flow_slot_;

  // Global rank index: min entry identifies the highest-priority packet,
  // whose *flow* is then served in arrival order; max entry is the eviction
  // victim. Tree nodes recycle through free_tree_ (declared first so it
  // outlives the tree during destruction).
  using rank_key = std::pair<std::int64_t, std::uint64_t>;  // (rank, uid)
  using alloc =
      detail::node_freelist_alloc<std::pair<const rank_key, std::int32_t>>;
  std::vector<void*> free_tree_;
  std::map<rank_key, std::int32_t, std::less<rank_key>, alloc> rank_index_;
};

}  // namespace ups::sched
