// pFabric-style priority scheduling with starvation prevention [3].
//
// Footnote 8 of the paper: "the router always schedules the earliest
// arriving packet of the flow which contains the highest priority packet."
// In SRPT mode the rank is the remaining flow size stamped at emission; in
// SJF mode it is the total flow size. On overflow the worst-ranked packet
// is dropped (pFabric's drop policy).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>

#include "net/scheduler.h"

namespace ups::sched {

enum class pfabric_mode : std::uint8_t { srpt, sjf };

class pfabric final : public net::scheduler {
 public:
  explicit pfabric(pfabric_mode mode) : mode_(mode) {}

  void enqueue(net::packet_ptr p, sim::time_ps now) override;
  net::packet_ptr dequeue(sim::time_ps now) override;

  [[nodiscard]] bool empty() const noexcept override {
    return rank_index_.empty();
  }
  [[nodiscard]] std::size_t packets() const noexcept override {
    return rank_index_.size();
  }
  [[nodiscard]] std::size_t bytes() const noexcept override { return bytes_; }

  net::packet_ptr evict_for(const net::packet& incoming,
                            sim::time_ps now) override;

 private:
  [[nodiscard]] std::int64_t rank_of(const net::packet& p) const {
    return static_cast<std::int64_t>(mode_ == pfabric_mode::srpt
                                         ? p.remaining_flow_bytes
                                         : p.flow_size_bytes);
  }
  net::packet_ptr remove(std::uint64_t flow, std::uint64_t uid);

  pfabric_mode mode_;
  std::uint64_t next_uid_ = 0;
  std::size_t bytes_ = 0;
  // Global rank index: (rank, uid) -> (flow, uid); min entry identifies the
  // highest-priority packet, whose *flow* is then served in arrival order.
  std::map<std::pair<std::int64_t, std::uint64_t>,
           std::pair<std::uint64_t, std::uint64_t>>
      rank_index_;
  struct entry {
    net::packet_ptr p;
    std::int64_t rank;
  };
  // Per-flow packets in arrival order (uid ascending).
  std::unordered_map<std::uint64_t, std::map<std::uint64_t, entry>> flows_;
};

}  // namespace ups::sched
