// FIFO+ (Clark, Shenker, Zhang 1992): packets are ordered by the arrival
// time they would have had if they had seen no queueing at previous hops,
// i.e. packets that already waited longer upstream are served earlier.
//
// §3.2 of the paper observes this is exactly LSTF with a uniform initial
// slack; tests/test_lstf.cpp checks that equivalence.
#pragma once

#include "sched/rank_scheduler.h"

namespace ups::sched {

class fifo_plus final : public rank_scheduler_base<fifo_plus> {
 public:
  explicit fifo_plus(std::int32_t port_id = -1,
                     bool drop_highest_rank = false)
      : rank_scheduler_base(port_id, drop_highest_rank) {}

  [[nodiscard]] std::int64_t rank_of(const net::packet& p,
                                     sim::time_ps now) const noexcept {
    return now - p.fifo_plus_wait;
  }
};

}  // namespace ups::sched
