// Deficit Round Robin (Shreedhar & Varghese [27]): O(1) approximate fair
// queueing. Included as the second fairness baseline alongside virtual-time
// FQ; the fairness experiments can swap it in via the registry.
//
// Storage follows the slab/freelist pattern pFabric set (and the
// bench_micro_queues zero-alloc gate enforces): queued packets live in a
// slab of index-linked nodes recycled through a freelist, each flow's FIFO
// is an intrusive singly-linked list through that slab, and the active-flow
// ring is an intrusive list through the flow table itself. Flow bookkeeping
// entries persist across a flow's quiet periods — O(distinct flows seen)
// memory — so re-activating a flow allocates nothing, and steady-state
// enqueue/dequeue performs zero heap allocations.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/scheduler.h"

namespace ups::sched {

class drr final : public net::scheduler {
 public:
  explicit drr(std::int64_t quantum_bytes = 1514)
      : quantum_(quantum_bytes) {}

  void enqueue(net::packet_ptr p, sim::time_ps /*now*/) override {
    const std::int32_t f = flow_slot_for(p->flow_id);
    flow_state& st = flows_[static_cast<std::size_t>(f)];
    bytes_ += p->size_bytes;
    ++packets_;

    std::int32_t n;
    if (!free_nodes_.empty()) {
      n = free_nodes_.back();
      free_nodes_.pop_back();
    } else {
      n = static_cast<std::int32_t>(slab_.size());
      slab_.emplace_back();
    }
    qnode& node = slab_[static_cast<std::size_t>(n)];
    node.p = std::move(p);
    node.next = -1;
    if (st.tail >= 0) {
      slab_[static_cast<std::size_t>(st.tail)].next = n;
    } else {
      st.head = n;
    }
    st.tail = n;

    if (!st.active) {
      st.active = true;
      st.deficit = 0;
      ring_push(f);
    }
  }

  net::packet_ptr dequeue(sim::time_ps /*now*/) override {
    while (ring_head_ >= 0) {
      const std::int32_t f = ring_head_;
      flow_state& st = flows_[static_cast<std::size_t>(f)];
      if (st.head < 0) {
        st.active = false;
        st.deficit = 0;
        ring_pop();
        continue;
      }
      const qnode& head = slab_[static_cast<std::size_t>(st.head)];
      const auto head_size = static_cast<std::int64_t>(head.p->size_bytes);
      if (st.deficit < head_size) {
        st.deficit += quantum_;
        ring_pop();
        ring_push(f);
        continue;
      }
      st.deficit -= head_size;
      net::packet_ptr p = pop_front(st);
      bytes_ -= p->size_bytes;
      --packets_;
      if (st.head < 0) {
        st.active = false;
        st.deficit = 0;
        ring_pop();
      }
      return p;
    }
    return nullptr;
  }

  [[nodiscard]] bool empty() const noexcept override { return packets_ == 0; }
  [[nodiscard]] std::size_t packets() const noexcept override {
    return packets_;
  }
  [[nodiscard]] std::size_t bytes() const noexcept override { return bytes_; }

 private:
  // Queued packet: slab entry linked into its flow's FIFO.
  struct qnode {
    net::packet_ptr p;
    std::int32_t next = -1;
  };
  // Per-flow state; persists (inactive, empty) after the flow drains so its
  // table entry is allocated exactly once per distinct flow.
  struct flow_state {
    std::int32_t head = -1;  // oldest queued packet
    std::int32_t tail = -1;
    std::int64_t deficit = 0;
    bool active = false;     // linked into the ring
    std::int32_t ring_next = -1;
  };

  [[nodiscard]] std::int32_t flow_slot_for(std::uint64_t flow_id) {
    const auto [it, inserted] = flow_slot_.try_emplace(
        flow_id, static_cast<std::int32_t>(flows_.size()));
    if (inserted) flows_.emplace_back();
    return it->second;
  }

  net::packet_ptr pop_front(flow_state& st) {
    const std::int32_t n = st.head;
    qnode& node = slab_[static_cast<std::size_t>(n)];
    net::packet_ptr p = std::move(node.p);
    st.head = node.next;
    if (st.head < 0) st.tail = -1;
    node.next = -1;
    free_nodes_.push_back(n);
    return p;
  }

  void ring_push(std::int32_t f) {
    flows_[static_cast<std::size_t>(f)].ring_next = -1;
    if (ring_tail_ >= 0) {
      flows_[static_cast<std::size_t>(ring_tail_)].ring_next = f;
    } else {
      ring_head_ = f;
    }
    ring_tail_ = f;
  }

  void ring_pop() {
    const std::int32_t f = ring_head_;
    ring_head_ = flows_[static_cast<std::size_t>(f)].ring_next;
    if (ring_head_ < 0) ring_tail_ = -1;
    flows_[static_cast<std::size_t>(f)].ring_next = -1;
  }

  std::int64_t quantum_;
  std::size_t packets_ = 0;
  std::size_t bytes_ = 0;

  std::vector<qnode> slab_;
  std::vector<std::int32_t> free_nodes_;
  std::vector<flow_state> flows_;
  std::unordered_map<std::uint64_t, std::int32_t> flow_slot_;
  std::int32_t ring_head_ = -1;  // round-robin order of active flows
  std::int32_t ring_tail_ = -1;
};

}  // namespace ups::sched
