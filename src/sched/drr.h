// Deficit Round Robin (Shreedhar & Varghese [27]): O(1) approximate fair
// queueing. Included as the second fairness baseline alongside virtual-time
// FQ; the fairness experiments can swap it in via the registry.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "net/scheduler.h"

namespace ups::sched {

class drr final : public net::scheduler {
 public:
  explicit drr(std::int64_t quantum_bytes = 1514)
      : quantum_(quantum_bytes) {}

  void enqueue(net::packet_ptr p, sim::time_ps /*now*/) override {
    const std::uint64_t flow = p->flow_id;
    auto& st = flows_[flow];
    bytes_ += p->size_bytes;
    ++packets_;
    st.q.push_back(std::move(p));
    if (!st.active) {
      st.active = true;
      st.deficit = 0;
      ring_.push_back(flow);
    }
  }

  net::packet_ptr dequeue(sim::time_ps /*now*/) override {
    while (!ring_.empty()) {
      const std::uint64_t flow = ring_.front();
      auto& st = flows_[flow];
      if (st.q.empty()) {
        st.active = false;
        st.deficit = 0;
        ring_.pop_front();
        continue;
      }
      const auto head_size =
          static_cast<std::int64_t>(st.q.front()->size_bytes);
      if (st.deficit < head_size) {
        st.deficit += quantum_;
        ring_.pop_front();
        ring_.push_back(flow);
        continue;
      }
      st.deficit -= head_size;
      net::packet_ptr p = std::move(st.q.front());
      st.q.pop_front();
      bytes_ -= p->size_bytes;
      --packets_;
      if (st.q.empty()) {
        st.active = false;
        st.deficit = 0;
        ring_.pop_front();
      }
      return p;
    }
    return nullptr;
  }

  [[nodiscard]] bool empty() const noexcept override { return packets_ == 0; }
  [[nodiscard]] std::size_t packets() const noexcept override {
    return packets_;
  }
  [[nodiscard]] std::size_t bytes() const noexcept override { return bytes_; }

 private:
  struct flow_state {
    std::deque<net::packet_ptr> q;
    std::int64_t deficit = 0;
    bool active = false;
  };

  std::int64_t quantum_;
  std::size_t packets_ = 0;
  std::size_t bytes_ = 0;
  std::unordered_map<std::uint64_t, flow_state> flows_;
  std::deque<std::uint64_t> ring_;
};

}  // namespace ups::sched
