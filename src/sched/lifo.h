// Last-in first-out: used by the paper as a hard-to-replay original schedule
// (it produces a strongly skewed slack distribution).
//
// Expressed as a rank scheduler with a strictly decreasing rank per arrival,
// so the newest queued packet is always the minimum of the shared queue.
#pragma once

#include "sched/rank_scheduler.h"

namespace ups::sched {

class lifo final : public rank_scheduler_base<lifo> {
 public:
  explicit lifo(std::int32_t port_id = -1)
      : rank_scheduler_base(port_id, /*drop_highest_rank=*/false) {}

  [[nodiscard]] std::int64_t rank_of(const net::packet& /*p*/,
                                     sim::time_ps /*now*/) const noexcept {
    return -(++seq_);
  }

 private:
  // rank_of runs exactly once per enqueue: lifo is drop-tail (the base's
  // evict_for never computes an incoming key) and never preemption-cached,
  // so the per-arrival counter is safe despite the const interface. Any
  // new rank_of call site would bump the counter and perturb the order.
  mutable std::int64_t seq_ = 0;
};

}  // namespace ups::sched
