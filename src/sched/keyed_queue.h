// Ordered packet container shared by all rank-based schedulers.
//
// Packets are kept sorted by (key, arrival sequence): lower key first, FCFS
// among equal keys. Supports O(log n) min/max removal, which rank schedulers
// need for service (min) and for highest-rank eviction at full buffers (max).
//
// Backed by an ordered tree over a node freelist: erased nodes are recycled
// instead of freed, so steady-state enqueue/dequeue performs zero heap
// allocations (the freelist only grows toward the backlog's high-water
// mark). The tree backend was chosen over flat binary/min-max heaps by
// measurement: with per-hop rank keys that slide with simulation time,
// ordered-tree churn (insert + leftmost-erase) is ~2x faster than a heap's
// full-depth trickle per pop, at every backlog depth benchmarked
// (see bench_micro_queues).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace ups::sched {

namespace detail {

// Minimal stateful allocator recycling fixed-size tree nodes through a
// freelist owned by the container. Only single-object allocations (tree
// nodes) are recycled; anything else falls through to the global heap.
template <typename T>
class node_freelist_alloc {
 public:
  using value_type = T;

  explicit node_freelist_alloc(std::vector<void*>* free_nodes) noexcept
      : free_nodes_(free_nodes) {}
  template <typename U>
  node_freelist_alloc(const node_freelist_alloc<U>& other) noexcept
      : free_nodes_(other.free_nodes()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 1 && !free_nodes_->empty()) {
      void* p = free_nodes_->back();
      free_nodes_->pop_back();
      return static_cast<T*>(p);
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      try {
        free_nodes_->push_back(p);
        return;
      } catch (...) {
        // fall through to a plain free
      }
    }
    ::operator delete(p);
  }

  [[nodiscard]] std::vector<void*>* free_nodes() const noexcept {
    return free_nodes_;
  }

  template <typename U>
  [[nodiscard]] bool operator==(const node_freelist_alloc<U>& o) const noexcept {
    return free_nodes_ == o.free_nodes();
  }

 private:
  std::vector<void*>* free_nodes_;
};

}  // namespace detail

class keyed_queue {
 public:
  keyed_queue() : items_(std::less<order_key>{}, alloc{&free_nodes_}) {}
  // The tree's allocator points at this object's freelist; pinning the
  // container keeps that link trivially valid.
  keyed_queue(const keyed_queue&) = delete;
  keyed_queue& operator=(const keyed_queue&) = delete;

  ~keyed_queue() {
    items_.clear();  // returns every node to the freelist first
    for (void* p : free_nodes_) ::operator delete(p);
    free_nodes_.clear();  // members destruct after this body: no double free
  }

  void insert(std::int64_t key, net::packet_ptr p) {
    bytes_ += p->size_bytes;
    items_.emplace(std::make_pair(key, next_uid_++), std::move(p));
  }

  [[nodiscard]] net::packet_ptr pop_min() {
    if (items_.empty()) return nullptr;
    auto it = items_.begin();
    net::packet_ptr p = std::move(it->second);
    bytes_ -= p->size_bytes;
    items_.erase(it);
    return p;
  }

  [[nodiscard]] net::packet_ptr pop_max() {
    if (items_.empty()) return nullptr;
    auto it = std::prev(items_.end());
    net::packet_ptr p = std::move(it->second);
    bytes_ -= p->size_bytes;
    items_.erase(it);
    return p;
  }

  [[nodiscard]] std::optional<std::int64_t> min_key() const {
    if (items_.empty()) return std::nullopt;
    return items_.begin()->first.first;
  }

  [[nodiscard]] std::optional<std::int64_t> max_key() const {
    if (items_.empty()) return std::nullopt;
    return std::prev(items_.end())->first.first;
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

 private:
  using order_key = std::pair<std::int64_t, std::uint64_t>;
  using alloc =
      detail::node_freelist_alloc<std::pair<const order_key, net::packet_ptr>>;

  // Declared before items_ so the freelist outlives the tree during
  // destruction (clear() pushes nodes here before ~keyed_queue frees them).
  std::vector<void*> free_nodes_;
  std::map<order_key, net::packet_ptr, std::less<order_key>, alloc> items_;
  std::uint64_t next_uid_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace ups::sched
