// Ordered packet container shared by all rank-based schedulers.
//
// Packets are kept sorted by (key, arrival sequence): lower key first, FCFS
// among equal keys. Supports O(log n) min/max removal, which rank schedulers
// need for service (min) and for highest-rank eviction at full buffers (max).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "net/packet.h"

namespace ups::sched {

class keyed_queue {
 public:
  void insert(std::int64_t key, net::packet_ptr p) {
    bytes_ += p->size_bytes;
    items_.emplace(std::make_pair(key, next_uid_++), std::move(p));
  }

  [[nodiscard]] net::packet_ptr pop_min() {
    if (items_.empty()) return nullptr;
    auto it = items_.begin();
    net::packet_ptr p = std::move(it->second);
    bytes_ -= p->size_bytes;
    items_.erase(it);
    return p;
  }

  [[nodiscard]] net::packet_ptr pop_max() {
    if (items_.empty()) return nullptr;
    auto it = std::prev(items_.end());
    net::packet_ptr p = std::move(it->second);
    bytes_ -= p->size_bytes;
    items_.erase(it);
    return p;
  }

  [[nodiscard]] std::optional<std::int64_t> min_key() const {
    if (items_.empty()) return std::nullopt;
    return items_.begin()->first.first;
  }

  [[nodiscard]] std::optional<std::int64_t> max_key() const {
    if (items_.empty()) return std::nullopt;
    return std::prev(items_.end())->first.first;
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

 private:
  std::map<std::pair<std::int64_t, std::uint64_t>, net::packet_ptr> items_;
  std::uint64_t next_uid_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace ups::sched
