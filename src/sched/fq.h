// Fair queueing via self-clocked virtual finish times.
//
// Implements the classic fluid-fair-queueing emulation the paper's FQ rows
// rely on [12]: each flow accumulates a virtual finish tag per packet
// (previous tag, or the tag of the packet in service if the flow was idle,
// plus the packet's transmission time at the port rate), and the port serves
// the packet with the smallest tag. Self-clocking (Golestani's SCFQ) avoids
// tracking the fluid system explicitly while preserving fairness bounds.
#pragma once

#include <algorithm>
#include <unordered_map>

#include "net/scheduler.h"
#include "sched/keyed_queue.h"
#include "sim/units.h"

namespace ups::sched {

class fq final : public net::scheduler {
 public:
  explicit fq(sim::bits_per_sec rate) : rate_(rate) {}

  void enqueue(net::packet_ptr p, sim::time_ps /*now*/) override {
    const std::uint64_t flow = p->flow_id;
    const sim::time_ps cost =
        rate_ == sim::kInfiniteRate
            ? 0
            : sim::transmission_time(p->size_bytes, rate_);
    std::int64_t& tail = tail_tag_[flow];
    const std::int64_t start = std::max(v_now_, tail);
    tail = start + cost;
    p->sched_key = tail;
    q_.insert(tail, std::move(p));
  }

  net::packet_ptr dequeue(sim::time_ps /*now*/) override {
    net::packet_ptr p = q_.pop_min();
    if (p != nullptr) v_now_ = p->sched_key;
    return p;
  }

  [[nodiscard]] bool empty() const noexcept override { return q_.empty(); }
  [[nodiscard]] std::size_t packets() const noexcept override {
    return q_.size();
  }
  [[nodiscard]] std::size_t bytes() const noexcept override {
    return q_.bytes();
  }

  // FQ drop policy: evict the packet with the largest finish tag (belongs to
  // the flow furthest ahead of its fair share).
  net::packet_ptr evict_for(const net::packet& /*incoming*/,
                            sim::time_ps /*now*/) override {
    return q_.pop_max();
  }

 private:
  sim::bits_per_sec rate_;
  std::int64_t v_now_ = 0;  // finish tag of the most recently served packet
  std::unordered_map<std::uint64_t, std::int64_t> tail_tag_;
  keyed_queue q_;
};

}  // namespace ups::sched
