// CRTP base for schedulers that serve the queued packet with the smallest
// rank.
//
// The rank is computed once on arrival at the port — through a statically
// bound, inlinable call to Derived::rank_of, so per-packet rank computation
// costs no virtual dispatch; the port's single virtual enqueue/dequeue call
// is the only indirection on the hot path. The computed rank is cached in
// packet::sched_key so that (a) the owning port can compare the in-service
// packet against newcomers for preemption and (b) a packet re-enqueued after
// preemption keeps the rank it was assigned when it first reached this port.
//
// Derived classes provide a public, const member
//     std::int64_t rank_of(const net::packet& p, sim::time_ps now) const
// (lower = served earlier) and inherit everything else, including the
// drop-highest-rank eviction policy over the shared keyed_queue.
#pragma once

#include <cstdint>

#include "net/scheduler.h"
#include "sched/keyed_queue.h"

namespace ups::sched {

template <class Derived>
class rank_scheduler_base : public net::scheduler {
 public:
  // drop_highest_rank: on buffer overflow evict the worst-ranked packet
  // (the paper's LSTF drop policy drops the highest slack, §3).
  explicit rank_scheduler_base(std::int32_t port_id = -1,
                               bool drop_highest_rank = false)
      : port_id_(port_id), drop_highest_rank_(drop_highest_rank) {}

  void enqueue(net::packet_ptr p, sim::time_ps now) final {
    const std::int64_t key = key_for(*p, now);
    p->sched_key = key;
    p->sched_key_port = port_id_;
    q_.insert(key, std::move(p));
  }

  net::packet_ptr dequeue(sim::time_ps /*now*/) final { return q_.pop_min(); }

  [[nodiscard]] bool empty() const noexcept final { return q_.empty(); }
  [[nodiscard]] std::size_t packets() const noexcept final {
    return q_.size();
  }
  [[nodiscard]] std::size_t bytes() const noexcept final { return q_.bytes(); }

  net::packet_ptr evict_for(const net::packet& incoming,
                            sim::time_ps now) final {
    if (!drop_highest_rank_ || q_.empty()) return nullptr;
    const std::int64_t incoming_key = key_for(incoming, now);
    if (incoming_key >= *q_.max_key()) return nullptr;  // incoming is worst
    return q_.pop_max();
  }

  [[nodiscard]] std::optional<std::int64_t> peek_rank() const final {
    return q_.min_key();
  }

 private:
  [[nodiscard]] std::int64_t key_for(const net::packet& p,
                                     sim::time_ps now) const {
    if (port_id_ >= 0 && p.sched_key_port == port_id_) return p.sched_key;
    return static_cast<const Derived&>(*this).rank_of(p, now);
  }

  std::int32_t port_id_;
  bool drop_highest_rank_;
  keyed_queue q_;
};

}  // namespace ups::sched
