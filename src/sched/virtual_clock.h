// Virtual Clock (Zhang [32]): per-flow virtual transmission clocks.
//
// Each flow's clock advances by L/r on every packet (r = the flow's
// allocated rate) and packets are served in virtual-clock order. This is
// the algorithm that inspired the paper's §3.3 fairness slack assignment —
// having it as a reference scheduler lets tests check that LSTF with the
// virtual-clock slack initialization matches real Virtual Clock service
// order on a single router.
#pragma once

#include <algorithm>
#include <unordered_map>

#include "net/scheduler.h"
#include "sched/keyed_queue.h"
#include "sim/units.h"

namespace ups::sched {

class virtual_clock final : public net::scheduler {
 public:
  // `default_rate` is each flow's allocated rate unless overridden.
  explicit virtual_clock(sim::bits_per_sec default_rate)
      : default_rate_(default_rate) {}

  void set_flow_rate(std::uint64_t flow, sim::bits_per_sec rate) {
    flow_rate_[flow] = rate;
  }

  void enqueue(net::packet_ptr p, sim::time_ps now) override {
    const std::uint64_t flow = p->flow_id;
    const sim::bits_per_sec rate = rate_of(flow);
    const sim::time_ps service =
        sim::transmission_time(p->size_bytes, rate);
    std::int64_t& clock = clock_[flow];
    clock = std::max<std::int64_t>(clock, now) + service;
    p->sched_key = clock;
    q_.insert(clock, std::move(p));
  }

  net::packet_ptr dequeue(sim::time_ps /*now*/) override {
    return q_.pop_min();
  }

  [[nodiscard]] bool empty() const noexcept override { return q_.empty(); }
  [[nodiscard]] std::size_t packets() const noexcept override {
    return q_.size();
  }
  [[nodiscard]] std::size_t bytes() const noexcept override {
    return q_.bytes();
  }

  // Virtual Clock polices flows that run ahead of their allocation: on
  // overflow, the packet with the furthest-ahead virtual clock is dropped.
  net::packet_ptr evict_for(const net::packet& /*incoming*/,
                            sim::time_ps /*now*/) override {
    return q_.pop_max();
  }

 private:
  [[nodiscard]] sim::bits_per_sec rate_of(std::uint64_t flow) const {
    const auto it = flow_rate_.find(flow);
    return it == flow_rate_.end() ? default_rate_ : it->second;
  }

  sim::bits_per_sec default_rate_;
  std::unordered_map<std::uint64_t, sim::bits_per_sec> flow_rate_;
  std::unordered_map<std::uint64_t, std::int64_t> clock_;
  keyed_queue q_;
};

}  // namespace ups::sched
