// First-in first-out: the baseline the paper replays and compares against.
#pragma once

#include <deque>

#include "net/scheduler.h"

namespace ups::sched {

class fifo final : public net::scheduler {
 public:
  void enqueue(net::packet_ptr p, sim::time_ps /*now*/) override {
    bytes_ += p->size_bytes;
    q_.push_back(std::move(p));
  }

  net::packet_ptr dequeue(sim::time_ps /*now*/) override {
    if (q_.empty()) return nullptr;
    net::packet_ptr p = std::move(q_.front());
    q_.pop_front();
    bytes_ -= p->size_bytes;
    return p;
  }

  [[nodiscard]] bool empty() const noexcept override { return q_.empty(); }
  [[nodiscard]] std::size_t packets() const noexcept override {
    return q_.size();
  }
  [[nodiscard]] std::size_t bytes() const noexcept override { return bytes_; }

 private:
  std::deque<net::packet_ptr> q_;
  std::size_t bytes_ = 0;
};

}  // namespace ups::sched
