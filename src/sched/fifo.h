// First-in first-out: the baseline the paper replays and compares against.
//
// Expressed as a rank scheduler with a constant rank: the shared queue's
// FCFS tie-break among equal keys *is* the FIFO order, so the discipline
// rides the same allocation-free keyed_queue as every other policy.
#pragma once

#include "sched/rank_scheduler.h"

namespace ups::sched {

class fifo final : public rank_scheduler_base<fifo> {
 public:
  explicit fifo(std::int32_t port_id = -1)
      : rank_scheduler_base(port_id, /*drop_highest_rank=*/false) {}

  [[nodiscard]] std::int64_t rank_of(const net::packet& /*p*/,
                                     sim::time_ps /*now*/) const noexcept {
    return 0;  // arrival sequence breaks the tie: pure FCFS
  }
};

}  // namespace ups::sched
