#include "traffic/workload.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "sim/rng.h"

namespace ups::traffic {

namespace {

// Accumulates per-directed-port load (in units of one source-destination
// pair's rate share) along the route of a host pair, including the source
// host's NIC and the egress router's port.
void add_pair_load(net::network& net, net::node_id src, net::node_id dst,
                   double w, std::unordered_map<const net::port*, double>& load) {
  const auto& path = net.route(src, dst);
  load[&net.port_between(src, path.front())] += w;
  for (std::size_t j = 0; j + 1 < path.size(); ++j) {
    load[&net.port_between(path[j], path[j + 1])] += w;
  }
  load[&net.port_between(path.back(), dst)] += w;
}

}  // namespace

double calibrate_per_host_rate(net::network& net, const topo::topology& topo,
                               const workload_config& cfg) {
  const std::size_t hosts = topo.host_count();
  if (hosts < 2) throw std::invalid_argument("workload: need >= 2 hosts");

  sim::rng calib_rng(cfg.seed ^ 0xCA11B8A7Eull);

  // --- calibration: per-port load per unit of per-host offered rate ---
  std::unordered_map<const net::port*, double> load;
  if (hosts <= cfg.exact_pair_limit) {
    const double w = 1.0 / static_cast<double>(hosts - 1);
    for (std::size_t s = 0; s < hosts; ++s) {
      for (std::size_t d = 0; d < hosts; ++d) {
        if (s == d) continue;
        add_pair_load(net, topo.host_id(s), topo.host_id(d), w, load);
      }
    }
  } else {
    // Sampled estimate: each sampled pair stands in for its share of the
    // uniform matrix; a source sends 1 unit split across (hosts-1) peers,
    // so the network-wide unit mass is `hosts`, spread over the samples.
    const double w =
        static_cast<double>(hosts) / static_cast<double>(cfg.sampled_pairs);
    for (std::size_t i = 0; i < cfg.sampled_pairs; ++i) {
      const auto s = calib_rng.next_below(hosts);
      auto d = calib_rng.next_below(hosts - 1);
      if (d >= s) ++d;
      add_pair_load(net, topo.host_id(s), topo.host_id(d), w, load);
    }
  }

  double max_ratio = 0.0;  // load (in per-host-rate units) / link rate
  for (const auto& [pt, l] : load) {
    if (pt->rate() == sim::kInfiniteRate) continue;
    max_ratio = std::max(max_ratio, l / static_cast<double>(pt->rate()));
  }
  if (max_ratio <= 0) throw std::logic_error("workload: calibration failed");
  return cfg.utilization / max_ratio;
}

workload generate(net::network& net, const topo::topology& topo,
                  const flow_size_dist& dist, const workload_config& cfg) {
  const std::size_t hosts = topo.host_count();
  const double per_host_bps = calibrate_per_host_rate(net, topo, cfg);

  // --- Poisson flow arrivals until the packet budget ---
  const double mean_flow_bits = dist.mean_bytes() * 8.0;
  const double agg_flows_per_sec =
      per_host_bps * static_cast<double>(hosts) / mean_flow_bits;
  const double mean_gap_ps =
      static_cast<double>(sim::kSecond) / agg_flows_per_sec;

  workload out;
  out.per_host_rate_bps = per_host_bps;
  out.max_link_utilization = cfg.utilization;

  sim::rng rng(cfg.seed);
  double t = 0.0;
  std::uint64_t next_flow = 1;
  while (out.total_packets < cfg.packet_budget) {
    t += rng.exponential(mean_gap_ps);
    const auto s = rng.next_below(hosts);
    auto d = rng.next_below(hosts - 1);
    if (d >= s) ++d;
    const std::uint64_t size = dist.sample(rng);
    flow_spec f;
    f.id = next_flow++;
    f.src = topo.host_id(s);
    f.dst = topo.host_id(d);
    f.size_bytes = size;
    f.start = static_cast<sim::time_ps>(t);
    out.total_packets += (size + cfg.mtu_bytes - 1) / cfg.mtu_bytes;
    out.flows.push_back(f);
  }
  return out;
}

incast_workload generate_incast(net::network& net, const topo::topology& topo,
                                const flow_size_dist& dist,
                                const workload_config& cfg,
                                std::uint32_t degree,
                                sim::time_ps barrier_jitter) {
  const std::size_t hosts = topo.host_count();
  const double per_host_bps = calibrate_per_host_rate(net, topo, cfg);
  if (degree == 0) throw std::invalid_argument("incast: degree must be >= 1");
  const auto fan_in = static_cast<std::size_t>(
      std::min<std::uint64_t>(degree, hosts - 1));

  // Epoch rate keeps aggregate offered load equal to the open-loop
  // calibration: one epoch carries `fan_in` flows of mean size.
  const double mean_flow_bits = dist.mean_bytes() * 8.0;
  const double epochs_per_sec =
      per_host_bps * static_cast<double>(hosts) /
      (mean_flow_bits * static_cast<double>(fan_in));
  const double mean_gap_ps =
      static_cast<double>(sim::kSecond) / epochs_per_sec;

  incast_workload out;
  out.per_host_rate_bps = per_host_bps;
  out.max_link_utilization = cfg.utilization;

  // Distinct stream from generate(): an incast schedule with the same seed
  // should not be a reshuffled copy of the Poisson flow list.
  sim::rng rng(cfg.seed ^ 0x1CA57ull);
  double t = 0.0;
  std::uint64_t next_flow = 1;
  std::vector<std::size_t> picks;
  while (out.total_packets < cfg.packet_budget) {
    t += rng.exponential(mean_gap_ps);
    incast_epoch e;
    e.barrier = static_cast<sim::time_ps>(t);
    const std::size_t victim = rng.next_below(hosts);
    e.dst = topo.host_id(victim);
    e.first_flow_id = next_flow;
    // `fan_in` distinct senders, none the victim: partial Fisher-Yates over
    // host indices with the victim excluded by remapping.
    picks.resize(hosts - 1);
    for (std::size_t i = 0; i < picks.size(); ++i) {
      picks[i] = i < victim ? i : i + 1;
    }
    for (std::size_t k = 0; k < fan_in; ++k) {
      const std::size_t j = k + rng.next_below(picks.size() - k);
      std::swap(picks[k], picks[j]);
      e.srcs.push_back(topo.host_id(picks[k]));
      const std::uint64_t size = dist.sample(rng);
      e.sizes.push_back(size);
      e.offsets.push_back(
          barrier_jitter <= 0
              ? 0
              : static_cast<sim::time_ps>(rng.uniform() *
                                          static_cast<double>(barrier_jitter)));
      out.total_packets += (size + cfg.mtu_bytes - 1) / cfg.mtu_bytes;
      ++next_flow;
    }
    out.epochs.push_back(std::move(e));
  }
  out.flow_count = next_flow - 1;
  return out;
}

double measured_peak_utilization(const net::network& net, sim::time_ps span) {
  if (span <= 0) return 0.0;
  double peak = 0.0;
  for (const auto& p : net.ports()) {
    if (p->rate() == sim::kInfiniteRate) continue;
    const double sent_bits = static_cast<double>(p->stats().bytes_sent) * 8.0;
    const double capacity_bits = static_cast<double>(p->rate()) *
                                 static_cast<double>(span) /
                                 static_cast<double>(sim::kSecond);
    if (capacity_bits > 0) peak = std::max(peak, sent_bits / capacity_bits);
  }
  return peak;
}

}  // namespace ups::traffic
