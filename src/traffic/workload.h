// Poisson open-loop workload with utilization calibration.
//
// The paper runs "each end host generates UDP flows using a Poisson
// inter-arrival model ... at 70% utilization". We calibrate the per-host
// offered rate analytically so that the most loaded directed link in the
// network (access or core) carries exactly the target utilization under the
// uniform random traffic matrix, then pre-generate flow arrivals until a
// packet budget is met so experiment cost is topology-independent.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "topo/topology.h"
#include "traffic/size_dist.h"

namespace ups::traffic {

struct flow_spec {
  std::uint64_t id = 0;
  net::node_id src = net::kInvalidNode;
  net::node_id dst = net::kInvalidNode;
  std::uint64_t size_bytes = 0;
  sim::time_ps start = 0;
};

struct workload_config {
  double utilization = 0.7;
  std::uint64_t seed = 1;
  // Stop generating once this many MTU-sized packets have been emitted.
  std::uint64_t packet_budget = 200'000;
  std::uint32_t mtu_bytes = 1500;
  // Pair enumeration is exact up to this host count, sampled above it
  // (RocketFuel has 830 hosts; exact enumeration would be quadratic).
  std::size_t exact_pair_limit = 200;
  std::size_t sampled_pairs = 20'000;
};

struct workload {
  std::vector<flow_spec> flows;
  double per_host_rate_bps = 0.0;  // calibrated offered rate per host
  double max_link_utilization = 0.0;
  std::uint64_t total_packets = 0;
};

// Calibrates and generates the flow list. `net` must be built (routing);
// the topology supplies host ids and link rates.
[[nodiscard]] workload generate(net::network& net, const topo::topology& topo,
                                const flow_size_dist& dist,
                                const workload_config& cfg);

}  // namespace ups::traffic
