// Poisson open-loop workload with utilization calibration.
//
// The paper runs "each end host generates UDP flows using a Poisson
// inter-arrival model ... at 70% utilization". We calibrate the per-host
// offered rate analytically so that the most loaded directed link in the
// network (access or core) carries exactly the target utilization under the
// uniform random traffic matrix, then pre-generate flow arrivals until a
// packet budget is met so experiment cost is topology-independent.
//
// The calibration core is shared by every traffic::source kind: the Poisson
// flow list feeds the open-loop, paced, and closed-loop sources, and
// generate_incast reuses the same per-host rate to produce synchronized
// N-to-1 fan-in epochs at the same offered network load.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "topo/topology.h"
#include "traffic/size_dist.h"

namespace ups::traffic {

struct flow_spec {
  std::uint64_t id = 0;
  net::node_id src = net::kInvalidNode;
  net::node_id dst = net::kInvalidNode;
  std::uint64_t size_bytes = 0;
  sim::time_ps start = 0;
};

struct workload_config {
  double utilization = 0.7;
  std::uint64_t seed = 1;
  // Stop generating once this many MTU-sized packets have been emitted.
  std::uint64_t packet_budget = 200'000;
  std::uint32_t mtu_bytes = 1500;
  // Pair enumeration is exact up to this host count, sampled above it
  // (RocketFuel has 830 hosts; exact enumeration would be quadratic).
  std::size_t exact_pair_limit = 200;
  std::size_t sampled_pairs = 20'000;
};

struct workload {
  std::vector<flow_spec> flows;
  double per_host_rate_bps = 0.0;  // calibrated offered rate per host
  double max_link_utilization = 0.0;
  std::uint64_t total_packets = 0;
};

// Calibrates the per-host offered rate (bits/sec) so that the most loaded
// directed link carries cfg.utilization under the uniform random traffic
// matrix. `net` must be built (routing). Shared by generate() and
// generate_incast(); exposed so tests can verify the calibration directly.
[[nodiscard]] double calibrate_per_host_rate(net::network& net,
                                             const topo::topology& topo,
                                             const workload_config& cfg);

// Calibrates and generates the flow list. `net` must be built (routing);
// the topology supplies host ids and link rates.
[[nodiscard]] workload generate(net::network& net, const topo::topology& topo,
                                const flow_size_dist& dist,
                                const workload_config& cfg);

// One synchronized N-to-1 fan-in: `degree` senders each start a flow toward
// the same victim host at barrier + offsets[i] (jittered). Sender flow ids
// are consecutive starting at first_flow_id.
struct incast_epoch {
  sim::time_ps barrier = 0;
  net::node_id dst = net::kInvalidNode;
  std::uint64_t first_flow_id = 0;
  std::vector<net::node_id> srcs;        // one entry per sender
  std::vector<std::uint64_t> sizes;      // bytes, parallel to srcs
  std::vector<sim::time_ps> offsets;     // start jitter, parallel to srcs
};

struct incast_workload {
  std::vector<incast_epoch> epochs;
  double per_host_rate_bps = 0.0;
  double max_link_utilization = 0.0;
  std::uint64_t total_packets = 0;
  std::uint64_t flow_count = 0;
};

// Calibrated incast epochs: barriers arrive as a Poisson process whose rate
// keeps the aggregate offered load equal to generate()'s (same calibration),
// each epoch picks a uniform victim and `degree` distinct senders, and every
// sender's start is jittered uniformly in [0, barrier_jitter].
[[nodiscard]] incast_workload generate_incast(net::network& net,
                                              const topo::topology& topo,
                                              const flow_size_dist& dist,
                                              const workload_config& cfg,
                                              std::uint32_t degree,
                                              sim::time_ps barrier_jitter);

// Highest observed utilization across finite-rate ports: bytes actually
// transmitted over `span` divided by link capacity. The empirical check
// that the analytic calibration above lands where it claims.
[[nodiscard]] double measured_peak_utilization(const net::network& net,
                                               sim::time_ps span);

}  // namespace ups::traffic
