#include "traffic/udp_app.h"

#include <algorithm>
#include <memory>

namespace ups::traffic {

udp_app::udp_app(net::network& net, std::vector<flow_spec> flows, options opt)
    : net_(net), flows_(std::move(flows)), opt_(std::move(opt)) {
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    net_.sim().schedule_at(flows_[i].start,
                           [this, i] { emit_flow(flows_[i]); });
  }
}

void udp_app::emit_flow(const flow_spec& f) {
  std::uint64_t remaining = f.size_bytes;
  std::uint32_t seq = 0;
  while (remaining > 0) {
    const std::uint32_t sz = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, opt_.mtu_bytes));
    net::packet_ptr p = net_.pool().make();
    p->id = next_packet_id_++;
    p->flow_id = f.id;
    p->seq_in_flow = seq++;
    p->size_bytes = sz;
    p->src_host = f.src;
    p->dst_host = f.dst;
    p->flow_size_bytes = f.size_bytes;
    p->remaining_flow_bytes = remaining;
    p->record_hops = opt_.record_hops;
    if (opt_.stamper) opt_.stamper(*p);
    remaining -= sz;
    ++packets_emitted_;
    net_.send_from_host(std::move(p));
  }
}

}  // namespace ups::traffic
