#include "traffic/size_dist.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ups::traffic {

bounded_pareto::bounded_pareto(double alpha, std::uint64_t lo,
                               std::uint64_t hi)
    : alpha_(alpha), lo_(lo), hi_(hi) {
  if (alpha <= 0 || alpha == 1.0 || lo == 0 || hi <= lo) {
    throw std::invalid_argument("bounded_pareto: bad parameters");
  }
  const double l = static_cast<double>(lo);
  const double h = static_cast<double>(hi);
  const double norm = 1.0 - std::pow(l / h, alpha);
  mean_ = alpha * std::pow(l, alpha) / norm *
          (std::pow(h, 1.0 - alpha) - std::pow(l, 1.0 - alpha)) /
          (1.0 - alpha);
}

std::uint64_t bounded_pareto::sample(sim::rng& rng) const {
  const double v = rng.bounded_pareto(alpha_, static_cast<double>(lo_),
                                      static_cast<double>(hi_));
  const auto b = static_cast<std::uint64_t>(v);
  return std::max(lo_, std::min(hi_, b));
}

empirical::empirical(std::vector<point> points, std::string name)
    : points_(std::move(points)), name_(std::move(name)) {
  if (points_.size() < 2 || points_.back().cum_prob != 1.0) {
    throw std::invalid_argument("empirical: need >=2 points ending at 1.0");
  }
  // Mean of the piecewise-linear CDF: sum of segment midpoints weighted by
  // probability mass.
  mean_ = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double mass = points_[i].cum_prob - points_[i - 1].cum_prob;
    mean_ += mass * 0.5 * (points_[i].bytes + points_[i - 1].bytes);
  }
}

std::uint64_t empirical::sample(sim::rng& rng) const {
  const double u = rng.uniform();
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (u <= points_[i].cum_prob) {
      const double lo_p = points_[i - 1].cum_prob;
      const double hi_p = points_[i].cum_prob;
      const double frac = (u - lo_p) / (hi_p - lo_p);
      const double bytes =
          points_[i - 1].bytes + frac * (points_[i].bytes - points_[i - 1].bytes);
      return static_cast<std::uint64_t>(std::max(1.0, bytes));
    }
  }
  return static_cast<std::uint64_t>(points_.back().bytes);
}

std::unique_ptr<flow_size_dist> default_heavy_tailed() {
  return std::make_unique<bounded_pareto>(1.2, 1460, 3'000'000);
}

std::unique_ptr<flow_size_dist> web_search() {
  // DCTCP web-search-flavoured CDF (bytes, cumulative probability).
  return std::make_unique<empirical>(
      std::vector<empirical::point>{
          {1'460, 0.00},
          {4'380, 0.15},
          {10'220, 0.30},
          {58'400, 0.53},
          {105'120, 0.60},
          {525'600, 0.70},
          {1'051'200, 0.80},
          {5'256'000, 0.95},
          {21'024'000, 1.00},
      },
      "web-search");
}

}  // namespace ups::traffic
