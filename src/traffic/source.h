// Composable traffic sources: the event-driven generation layer between a
// calibrated workload and the network.
//
// Every source schedules its wake events on the simulator's slab kernel and
// draws packets from the network's pool, so steady-state generation is
// allocation-free like the rest of the hot path. Four concrete kinds:
//
//   open_loop    each flow's packets enter the source NIC queue as one burst
//                at flow start (the pre-source-subsystem behavior, kept
//                byte-identical — traffic::udp_app remains as the legacy
//                reference the equivalence test compares against)
//   paced        per-flow NIC pacing: packets are emitted one serialization
//                time apart at a configurable fraction of the flow's line
//                rate — the tightest link on its path, NIC included — so
//                elephants no longer park whole flows in one egress queue
//                and WAN scenarios reach steady state
//   closed_loop  request-response: at most `outstanding` flows are in
//                flight; a flow whose scheduled start finds the window full
//                waits for a completion (receiver-side, all bytes
//                delivered). Optionally driven through transport/tcp so
//                originals are TCP-generated
//   incast       synchronized N-to-1 fan-in epochs: `incast_degree` senders
//                aim one flow each at a shared victim, starting within
//                `barrier_jitter` of the epoch barrier
//   mixed        incast epochs layered over a closed-loop background: the
//                offered load and packet budget split by `incast_share`,
//                each half calibrated independently so the aggregate stays
//                at the scenario's utilization. The RocketFuel-scale bench
//                workload — steady request-response traffic punctuated by
//                fan-in bursts
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "topo/topology.h"
#include "traffic/size_dist.h"
#include "traffic/workload.h"

namespace ups::transport {
class tcp_manager;
}

namespace ups::traffic {

// Applied to every emitted data packet: the hook where the §3 slack
// heuristics (or priority stamping) initialize the scheduling header.
using header_stamper = std::function<void(net::packet&)>;

enum class source_kind : std::uint8_t {
  open_loop,
  paced,
  closed_loop,
  incast,
  mixed,
};

[[nodiscard]] const char* to_string(source_kind k);

// Per-kind knobs beyond the calibrated workload itself.
struct source_tuning {
  // paced: per-flow emission rate as a fraction of the flow's line rate
  // (the minimum link rate along its path, NIC included). 1.0 paces each
  // flow exactly at its bottleneck: queues never build beyond the
  // bandwidth-delay product, which is what lets WAN scenarios reach steady
  // state. Pacing against the NIC alone would be meaningless on topologies
  // whose access tier is slower than the host links (I2 default).
  double pacing_fraction = 1.0;
  // closed_loop: bound on simultaneously in-flight flows.
  std::uint32_t outstanding = 8;
  // closed_loop: drive flows through transport::tcp_manager (TCP Reno
  // originals) instead of UDP bursts.
  bool via_tcp = false;
  // incast: senders per fan-in epoch (clamped to host_count() - 1).
  std::uint32_t incast_degree = 8;
  // incast: sender starts are jittered uniformly in [0, barrier_jitter].
  sim::time_ps barrier_jitter = 10 * sim::kMicrosecond;
  // mixed: fraction of the offered load (and packet budget) carried by the
  // incast epochs; the rest runs as the closed-loop background.
  double incast_share = 0.25;
};

// Parses a workload name into a kind, applying any ":knob" suffix to
// `tune`: "open-loop", "paced[:frac]", "closed-loop[:outstanding]",
// "closed-loop-tcp[:outstanding]", "incast[:degree]",
// "mixed[:degree[:outstanding[:share]]]". Throws std::invalid_argument on
// an unknown name.
[[nodiscard]] source_kind parse_workload(const std::string& s,
                                         source_tuning& tune);

struct source_options {
  std::uint32_t mtu_bytes = 1500;
  bool record_hops = false;
  header_stamper stamper;  // optional
  // First packet id this source assigns (then increments per packet).
  // Composite sources give each member a disjoint range: replay sorts
  // outcomes by packet id, so duplicate ids across members would break the
  // serial-vs-sharded identity invariant.
  std::uint64_t first_packet_id = 1;
};

// Event-driven traffic source. Construction arms the wake events; the
// source must outlive the simulation run.
class source {
 public:
  virtual ~source() = default;
  [[nodiscard]] virtual source_kind kind() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t packets_emitted() const noexcept = 0;
  // Flows fully handled: delivered end-to-end for closed_loop, fully
  // emitted for the open kinds.
  [[nodiscard]] virtual std::uint64_t flows_completed() const noexcept = 0;
  // High-water mark of simultaneously active flows. closed_loop keeps this
  // <= source_tuning::outstanding by construction.
  [[nodiscard]] virtual std::uint64_t peak_outstanding() const noexcept = 0;
};

// Open-loop burst emission (legacy behavior): whole flows enter the source
// NIC queue at flow start.
class open_loop_source final : public source {
 public:
  open_loop_source(net::network& net, std::vector<flow_spec> flows,
                   source_options opt);

  [[nodiscard]] source_kind kind() const noexcept override {
    return source_kind::open_loop;
  }
  [[nodiscard]] std::uint64_t packets_emitted() const noexcept override {
    return packets_emitted_;
  }
  [[nodiscard]] std::uint64_t flows_completed() const noexcept override {
    return flows_emitted_;
  }
  // Bursts are emitted whole and the source never observes delivery, so
  // there is no outstanding-flow notion to report.
  [[nodiscard]] std::uint64_t peak_outstanding() const noexcept override {
    return 0;
  }

 private:
  void emit_flow(const flow_spec& f);

  net::network& net_;
  std::vector<flow_spec> flows_;
  source_options opt_;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t packets_emitted_ = 0;
  std::uint64_t flows_emitted_ = 0;
};

// NIC pacing: each host runs one pacer that round-robins across its active
// flows, materializing one packet per wake and sleeping one serialization
// time of that packet at pacing_fraction x the flow's path-bottleneck rate
// (the tightest link on its route, NIC included). The host aggregate is
// therefore shaped to the bottleneck tier no matter how many flows overlap
// — bytes a real NIC would hold in application buffers are simply not
// materialized yet, which is what lets WAN originals reach steady state.
// Per-flow and per-host state live in flat slabs sized at construction;
// the steady state runs allocation-free.
class paced_source final : public source {
 public:
  paced_source(net::network& net, std::vector<flow_spec> flows,
               double pacing_fraction, source_options opt);

  [[nodiscard]] source_kind kind() const noexcept override {
    return source_kind::paced;
  }
  [[nodiscard]] std::uint64_t packets_emitted() const noexcept override {
    return packets_emitted_;
  }
  [[nodiscard]] std::uint64_t flows_completed() const noexcept override {
    return flows_done_;
  }
  [[nodiscard]] std::uint64_t peak_outstanding() const noexcept override {
    return peak_active_;
  }

 private:
  struct flow_state {
    std::uint64_t remaining = 0;
    std::uint32_t seq = 0;
    sim::bits_per_sec pace_rate = 0;  // path bottleneck x pacing fraction
  };
  struct host_state {
    std::vector<std::size_t> active;  // flow indices, round-robin ring
    std::size_t cursor = 0;
    bool pacing = false;  // wake event armed
  };

  void start_flow(std::size_t i);
  void emit_host(net::node_id h);

  net::network& net_;
  std::vector<flow_spec> flows_;
  std::vector<flow_state> state_;  // parallel to flows_
  std::vector<host_state> hosts_;  // indexed by node_id
  double fraction_;
  source_options opt_;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t packets_emitted_ = 0;
  std::uint64_t flows_done_ = 0;
  std::uint64_t active_ = 0;
  std::uint64_t peak_active_ = 0;
};

// Bounded-outstanding request-response. Flow start times are treated as
// earliest-start requests: a flow launches at its start time when the
// window has room, otherwise on the completion that frees a slot (FIFO).
// UDP mode detects completion at the receiver (every one of the flow's
// packets delivered — or dropped: the source chains onto the network's
// drop hook so finite-buffer runs cannot leak window slots); via_tcp
// delegates windowing, retransmission, and completion to
// transport::tcp_manager.
class closed_loop_source final : public source {
 public:
  closed_loop_source(net::network& net, std::vector<flow_spec> flows,
                     std::uint32_t max_outstanding, bool via_tcp,
                     source_options opt);
  ~closed_loop_source() override;

  [[nodiscard]] source_kind kind() const noexcept override {
    return source_kind::closed_loop;
  }
  [[nodiscard]] std::uint64_t packets_emitted() const noexcept override;
  [[nodiscard]] std::uint64_t flows_completed() const noexcept override {
    return flows_done_;
  }
  [[nodiscard]] std::uint64_t peak_outstanding() const noexcept override {
    return peak_active_;
  }

 private:
  struct active_flow {
    std::uint64_t flow_id = 0;
    std::uint32_t packets_left = 0;  // UDP mode: undelivered packets
  };

  void on_start_time(std::size_t i);
  void launch(std::size_t i);
  void emit_burst(const flow_spec& f);
  void hook_dst(net::node_id host);
  void on_delivered(const net::packet& p);
  void finish_one(std::size_t active_idx);

  net::network& net_;
  std::vector<flow_spec> flows_;
  source_options opt_;
  std::uint32_t bound_;
  std::unique_ptr<transport::tcp_manager> tcp_;  // null in UDP mode
  std::vector<active_flow> active_;   // <= bound_ entries, reserved upfront
  std::vector<std::size_t> waiting_;  // deferred flow indices, FIFO
  std::size_t waiting_head_ = 0;
  std::vector<bool> hooked_;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t packets_emitted_ = 0;
  std::uint64_t flows_done_ = 0;
  std::uint64_t peak_active_ = 0;
};

// Synchronized N-to-1 fan-in: one event per epoch at its barrier, which
// arms each sender's jittered burst.
class incast_source final : public source {
 public:
  incast_source(net::network& net, std::vector<incast_epoch> epochs,
                source_options opt);

  [[nodiscard]] source_kind kind() const noexcept override {
    return source_kind::incast;
  }
  [[nodiscard]] std::uint64_t packets_emitted() const noexcept override {
    return packets_emitted_;
  }
  [[nodiscard]] std::uint64_t flows_completed() const noexcept override {
    return flows_emitted_;
  }
  // Fan-in bursts are open-loop; no delivery feedback, nothing outstanding
  // to bound.
  [[nodiscard]] std::uint64_t peak_outstanding() const noexcept override {
    return 0;
  }
  [[nodiscard]] std::uint64_t epochs_fired() const noexcept {
    return epochs_fired_;
  }

 private:
  void fire_epoch(std::size_t e);
  void emit_sender(std::size_t e, std::size_t s);

  net::network& net_;
  std::vector<incast_epoch> epochs_;
  source_options opt_;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t packets_emitted_ = 0;
  std::uint64_t flows_emitted_ = 0;
  std::uint64_t epochs_fired_ = 0;
};

// Incast epochs over a closed-loop background, each pre-calibrated to its
// share of the offered load (make_source does the split). The members get
// disjoint packet-id and flow-id ranges — the closed loop matches
// completions by flow id, so a collision would let an incast delivery free
// a background window slot.
class mixed_source final : public source {
 public:
  mixed_source(net::network& net, std::vector<flow_spec> background_flows,
               std::uint32_t max_outstanding, bool via_tcp,
               std::vector<incast_epoch> epochs, source_options background_opt,
               source_options incast_opt);

  [[nodiscard]] source_kind kind() const noexcept override {
    return source_kind::mixed;
  }
  [[nodiscard]] std::uint64_t packets_emitted() const noexcept override {
    return background_.packets_emitted() + incast_.packets_emitted();
  }
  [[nodiscard]] std::uint64_t flows_completed() const noexcept override {
    return background_.flows_completed() + incast_.flows_completed();
  }
  // The incast half is open-loop (nothing outstanding to bound); the
  // closed-loop window is the interesting high-water mark.
  [[nodiscard]] std::uint64_t peak_outstanding() const noexcept override {
    return background_.peak_outstanding();
  }
  [[nodiscard]] std::uint64_t epochs_fired() const noexcept {
    return incast_.epochs_fired();
  }
  [[nodiscard]] std::uint64_t background_packets() const noexcept {
    return background_.packets_emitted();
  }
  [[nodiscard]] std::uint64_t incast_packets() const noexcept {
    return incast_.packets_emitted();
  }

 private:
  closed_loop_source background_;
  incast_source incast_;
};

// A constructed source plus the calibration facts experiments report.
struct source_run {
  std::unique_ptr<source> src;
  double per_host_rate_bps = 0.0;
  double max_link_utilization = 0.0;
  std::uint64_t planned_packets = 0;
  std::uint64_t planned_flows = 0;
};

// Calibrates the workload for `kind` on the built network and constructs
// the matching source: the one entry point experiments use.
[[nodiscard]] source_run make_source(net::network& net,
                                     const topo::topology& topo,
                                     const flow_size_dist& dist,
                                     const workload_config& cfg,
                                     source_kind kind,
                                     const source_tuning& tune = {},
                                     source_options opt = {});

}  // namespace ups::traffic
