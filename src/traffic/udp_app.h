// Open-loop UDP application: each flow's packets enter the source host's
// NIC queue at the flow start time and the NIC paces them onto the wire.
//
// The stamper callback initializes the scheduling header at the source —
// this is where the §3 slack heuristics plug in (in replay experiments the
// header is instead initialized by the replay engine, not here).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.h"
#include "traffic/workload.h"

namespace ups::traffic {

using header_stamper = std::function<void(net::packet&)>;

class udp_app {
 public:
  struct options {
    std::uint32_t mtu_bytes = 1500;
    bool record_hops = false;
    header_stamper stamper;  // optional
  };

  udp_app(net::network& net, std::vector<flow_spec> flows, options opt);

  [[nodiscard]] std::uint64_t packets_emitted() const noexcept {
    return packets_emitted_;
  }

 private:
  void emit_flow(const flow_spec& f);

  net::network& net_;
  std::vector<flow_spec> flows_;
  options opt_;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t packets_emitted_ = 0;
};

}  // namespace ups::traffic
