// Legacy open-loop UDP application: each flow's packets enter the source
// host's NIC queue at the flow start time and the NIC paces them onto the
// wire.
//
// Superseded by the traffic::source subsystem (traffic/source.h):
// open_loop_source reproduces this behavior byte-for-byte and is what the
// experiment drivers construct. This class is retained as the pre-refactor
// reference implementation that the legacy-mode equivalence test
// (tests/test_traffic_sources.cpp) compares traces against — do not change
// its emission behavior.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "traffic/source.h"
#include "traffic/workload.h"

namespace ups::traffic {

class udp_app {
 public:
  struct options {
    std::uint32_t mtu_bytes = 1500;
    bool record_hops = false;
    header_stamper stamper;  // optional
  };

  udp_app(net::network& net, std::vector<flow_spec> flows, options opt);

  [[nodiscard]] std::uint64_t packets_emitted() const noexcept {
    return packets_emitted_;
  }

 private:
  void emit_flow(const flow_spec& f);

  net::network& net_;
  std::vector<flow_spec> flows_;
  options opt_;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t packets_emitted_ = 0;
};

}  // namespace ups::traffic
