#include "traffic/source.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "transport/tcp.h"

namespace ups::traffic {

namespace {

// Shared open-loop burst: chunks one flow into MTU-sized packets and hands
// them to the source NIC. Every burst-emitting source goes through here so
// packet-field initialization cannot drift between kinds (the legacy
// udp_app equivalence test pins the behavior itself).
std::uint64_t emit_burst_packets(net::network& net, const source_options& opt,
                                 std::uint64_t& next_packet_id,
                                 std::uint64_t flow_id, net::node_id src,
                                 net::node_id dst, std::uint64_t size_bytes) {
  std::uint64_t remaining = size_bytes;
  std::uint32_t seq = 0;
  std::uint64_t emitted = 0;
  while (remaining > 0) {
    const std::uint32_t sz = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, opt.mtu_bytes));
    net::packet_ptr p = net.pool().make();
    p->id = next_packet_id++;
    p->flow_id = flow_id;
    p->seq_in_flow = seq++;
    p->size_bytes = sz;
    p->src_host = src;
    p->dst_host = dst;
    p->flow_size_bytes = size_bytes;
    p->remaining_flow_bytes = remaining;
    p->record_hops = opt.record_hops;
    if (opt.stamper) opt.stamper(*p);
    remaining -= sz;
    ++emitted;
    net.send_from_host(std::move(p));
  }
  return emitted;
}

// Knob suffix parsers that reject garbage instead of folding it to zero:
// "paced:o.5" must fail loudly, not run at pacing_fraction = 0.
double parse_knob_double(const std::string& knob, const std::string& whole) {
  char* end = nullptr;
  const double v = std::strtod(knob.c_str(), &end);
  if (end == knob.c_str() || *end != '\0') {
    throw std::invalid_argument("bad workload knob in: " + whole);
  }
  return v;
}

std::uint32_t parse_knob_uint(const std::string& knob,
                              const std::string& whole) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(knob.c_str(), &end, 10);
  if (end == knob.c_str() || *end != '\0') {
    throw std::invalid_argument("bad workload knob in: " + whole);
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

const char* to_string(source_kind k) {
  switch (k) {
    case source_kind::open_loop: return "open-loop";
    case source_kind::paced: return "paced";
    case source_kind::closed_loop: return "closed-loop";
    case source_kind::incast: return "incast";
    case source_kind::mixed: return "mixed";
  }
  return "?";
}

source_kind parse_workload(const std::string& s, source_tuning& tune) {
  std::string name = s;
  for (auto& c : name) {
    if (c == '_') c = '-';
  }
  std::string knob;
  if (const auto colon = name.find(':'); colon != std::string::npos) {
    knob = name.substr(colon + 1);
    name.resize(colon);
    if (knob.empty()) {
      throw std::invalid_argument("bad workload knob in: " + s);
    }
  }
  if (name == "open-loop") {
    if (!knob.empty()) {
      throw std::invalid_argument("open-loop takes no knob: " + s);
    }
    return source_kind::open_loop;
  }
  if (name == "paced") {
    if (!knob.empty()) tune.pacing_fraction = parse_knob_double(knob, s);
    return source_kind::paced;
  }
  if (name == "closed-loop" || name == "closed-loop-tcp") {
    tune.via_tcp = name == "closed-loop-tcp";
    if (!knob.empty()) tune.outstanding = parse_knob_uint(knob, s);
    return source_kind::closed_loop;
  }
  if (name == "incast") {
    if (!knob.empty()) tune.incast_degree = parse_knob_uint(knob, s);
    return source_kind::incast;
  }
  if (name == "mixed") {
    // Up to three colon-separated knobs: degree, outstanding, share.
    std::string rest = knob;
    std::string parts[3];
    std::size_t np = 0;
    while (!rest.empty() && np < 3) {
      const auto colon = rest.find(':');
      parts[np++] = rest.substr(0, colon);
      rest = colon == std::string::npos ? "" : rest.substr(colon + 1);
    }
    if (!rest.empty()) {
      throw std::invalid_argument("bad workload knob in: " + s);
    }
    if (!parts[0].empty()) tune.incast_degree = parse_knob_uint(parts[0], s);
    if (!parts[1].empty()) tune.outstanding = parse_knob_uint(parts[1], s);
    if (!parts[2].empty()) tune.incast_share = parse_knob_double(parts[2], s);
    return source_kind::mixed;
  }
  throw std::invalid_argument("unknown workload kind: " + s);
}

// --- open_loop_source --------------------------------------------------------
// Byte-identical to the legacy traffic::udp_app (which tests keep as the
// equivalence reference): same event per flow at start time, same packet-id
// assignment, same burst loop.

open_loop_source::open_loop_source(net::network& net,
                                   std::vector<flow_spec> flows,
                                   source_options opt)
    : net_(net), flows_(std::move(flows)), opt_(std::move(opt)) {
  next_packet_id_ = opt_.first_packet_id;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    net_.sim().schedule_at(flows_[i].start,
                           [this, i] { emit_flow(flows_[i]); });
  }
}

void open_loop_source::emit_flow(const flow_spec& f) {
  packets_emitted_ += emit_burst_packets(net_, opt_, next_packet_id_, f.id,
                                         f.src, f.dst, f.size_bytes);
  ++flows_emitted_;
}

// --- paced_source ------------------------------------------------------------

paced_source::paced_source(net::network& net, std::vector<flow_spec> flows,
                           double pacing_fraction, source_options opt)
    : net_(net),
      flows_(std::move(flows)),
      state_(flows_.size()),
      hosts_(net.node_count()),
      fraction_(pacing_fraction),
      opt_(std::move(opt)) {
  if (!(fraction_ > 0.0)) {
    throw std::invalid_argument("paced_source: pacing fraction must be > 0");
  }
  next_packet_id_ = opt_.first_packet_id;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    net_.sim().schedule_at(flows_[i].start, [this, i] { start_flow(i); });
  }
}

void paced_source::start_flow(std::size_t i) {
  const flow_spec& f = flows_[i];
  flow_state& st = state_[i];
  st.remaining = f.size_bytes;
  st.seq = 0;
  // Path bottleneck: tightest finite link on the flow's route, NIC and
  // egress access included. Pacing against the NIC alone would under-pace
  // on topologies whose access tier is slower than the host links.
  const auto& path = net_.route(f.src, f.dst);
  sim::bits_per_sec bottleneck = sim::kInfiniteRate;
  const auto tighten = [&bottleneck](const net::port& pt) {
    if (pt.rate() != sim::kInfiniteRate) {
      bottleneck = std::min(bottleneck, pt.rate());
    }
  };
  tighten(net_.port_between(f.src, path.front()));
  for (std::size_t j = 0; j + 1 < path.size(); ++j) {
    tighten(net_.port_between(path[j], path[j + 1]));
  }
  tighten(net_.port_between(path.back(), f.dst));
  st.pace_rate =
      bottleneck == sim::kInfiniteRate
          ? sim::kInfiniteRate
          : static_cast<sim::bits_per_sec>(
                std::max(1.0, static_cast<double>(bottleneck) * fraction_));
  ++active_;
  peak_active_ = std::max(peak_active_, active_);
  host_state& hs = hosts_[f.src];
  hs.active.push_back(i);
  if (!hs.pacing) {
    hs.pacing = true;
    emit_host(f.src);
  }
}

void paced_source::emit_host(net::node_id h) {
  host_state& hs = hosts_[h];
  assert(!hs.active.empty());
  if (hs.cursor >= hs.active.size()) hs.cursor = 0;
  const std::size_t i = hs.active[hs.cursor];
  const flow_spec& f = flows_[i];
  flow_state& st = state_[i];
  assert(st.remaining > 0);
  const std::uint32_t sz = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(st.remaining, opt_.mtu_bytes));
  net::packet_ptr p = net_.pool().make();
  p->id = next_packet_id_++;
  p->flow_id = f.id;
  p->seq_in_flow = st.seq++;
  p->size_bytes = sz;
  p->src_host = f.src;
  p->dst_host = f.dst;
  p->flow_size_bytes = f.size_bytes;
  p->remaining_flow_bytes = st.remaining;
  p->record_hops = opt_.record_hops;
  if (opt_.stamper) opt_.stamper(*p);
  st.remaining -= sz;
  ++packets_emitted_;
  const sim::bits_per_sec pace = st.pace_rate;
  net_.send_from_host(std::move(p));
  if (st.remaining == 0) {
    ++flows_done_;
    --active_;
    // Swap-erase; the cursor then points at the swapped-in flow, so the
    // round-robin continues without skipping anyone.
    hs.active[hs.cursor] = hs.active.back();
    hs.active.pop_back();
  } else {
    ++hs.cursor;
  }
  if (hs.active.empty()) {
    hs.pacing = false;
    hs.cursor = 0;
    return;
  }
  // Sleep one serialization time of the packet just sent at its flow's
  // paced rate: one flow alone is paced exactly at its bottleneck, and
  // overlapping flows share the pacer round-robin so the host aggregate
  // never exceeds the bottleneck tier. An all-infinite-rate path has no
  // line rate to pace against; degrade to a same-instant burst.
  const sim::time_ps gap = pace == sim::kInfiniteRate
                               ? 0
                               : sim::transmission_time(sz, pace);
  net_.sim().schedule_in(gap, [this, h] { emit_host(h); });
}

// --- closed_loop_source ------------------------------------------------------

closed_loop_source::closed_loop_source(net::network& net,
                                       std::vector<flow_spec> flows,
                                       std::uint32_t max_outstanding,
                                       bool via_tcp, source_options opt)
    : net_(net),
      flows_(std::move(flows)),
      opt_(std::move(opt)),
      bound_(max_outstanding),
      hooked_(net.node_count(), false) {
  if (bound_ == 0) {
    throw std::invalid_argument("closed_loop_source: outstanding must be >= 1");
  }
  next_packet_id_ = opt_.first_packet_id;
  if (via_tcp) {
    tcp_ = std::make_unique<transport::tcp_manager>(net_,
                                                    transport::tcp_config{});
    tcp_->set_on_complete([this](const transport::fct_sample& s) {
      for (std::size_t k = 0; k < active_.size(); ++k) {
        if (active_[k].flow_id == s.flow_id) {
          finish_one(k);
          return;
        }
      }
    });
  } else {
    // On a finite-buffer network a dropped packet never reaches the
    // receiver; without accounting it the flow's window slot would leak
    // and the closed loop would stall with flows silently unlaunched.
    // Chain onto any existing drop hook and count the loss as this
    // packet's exit from the network. (TCP mode retransmits instead.)
    auto prev = net_.hooks().on_drop;
    net_.hooks().on_drop = [this, prev = std::move(prev)](
                               const net::packet& p, net::node_id at,
                               sim::time_ps now, net::drop_kind kind) {
      if (prev) prev(p, at, now, kind);
      on_delivered(p);
    };
  }
  active_.reserve(bound_);
  waiting_.reserve(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    net_.sim().schedule_at(flows_[i].start, [this, i] { on_start_time(i); });
  }
}

closed_loop_source::~closed_loop_source() = default;

std::uint64_t closed_loop_source::packets_emitted() const noexcept {
  return packets_emitted_;
}

void closed_loop_source::on_start_time(std::size_t i) {
  if (active_.size() < bound_) {
    launch(i);
  } else {
    waiting_.push_back(i);
  }
}

void closed_loop_source::launch(std::size_t i) {
  const flow_spec& f = flows_[i];
  active_flow af;
  af.flow_id = f.id;
  af.packets_left = static_cast<std::uint32_t>(
      (f.size_bytes + opt_.mtu_bytes - 1) / opt_.mtu_bytes);
  active_.push_back(af);
  peak_active_ = std::max<std::uint64_t>(peak_active_, active_.size());
  if (tcp_) {
    // The data-segment stamper doubles as the emission counter; it fires
    // for every segment, retransmissions included.
    tcp_->start_flow(f.id, f.src, f.dst, f.size_bytes, net_.sim().now(),
                     [this](net::packet& p) {
                       p.record_hops = opt_.record_hops;
                       if (opt_.stamper) opt_.stamper(p);
                       ++packets_emitted_;
                     });
    return;
  }
  hook_dst(f.dst);
  emit_burst(f);
}

void closed_loop_source::emit_burst(const flow_spec& f) {
  packets_emitted_ += emit_burst_packets(net_, opt_, next_packet_id_, f.id,
                                         f.src, f.dst, f.size_bytes);
}

void closed_loop_source::hook_dst(net::node_id host) {
  if (hooked_[host]) return;
  hooked_[host] = true;
  net_.set_host_handler(
      host, [this](net::packet_ptr p) { on_delivered(*p); });
}

void closed_loop_source::on_delivered(const net::packet& p) {
  for (std::size_t k = 0; k < active_.size(); ++k) {
    if (active_[k].flow_id == p.flow_id) {
      assert(active_[k].packets_left > 0);
      if (--active_[k].packets_left == 0) finish_one(k);
      return;
    }
  }
}

void closed_loop_source::finish_one(std::size_t active_idx) {
  active_[active_idx] = active_.back();
  active_.pop_back();
  ++flows_done_;
  if (waiting_head_ < waiting_.size()) {
    const std::size_t i = waiting_[waiting_head_++];
    launch(i);
  }
}

// --- incast_source -----------------------------------------------------------

incast_source::incast_source(net::network& net,
                             std::vector<incast_epoch> epochs,
                             source_options opt)
    : net_(net), epochs_(std::move(epochs)), opt_(std::move(opt)) {
  next_packet_id_ = opt_.first_packet_id;
  for (std::size_t e = 0; e < epochs_.size(); ++e) {
    net_.sim().schedule_at(epochs_[e].barrier, [this, e] { fire_epoch(e); });
  }
}

void incast_source::fire_epoch(std::size_t e) {
  ++epochs_fired_;
  const incast_epoch& ep = epochs_[e];
  for (std::size_t s = 0; s < ep.srcs.size(); ++s) {
    if (ep.offsets[s] == 0) {
      emit_sender(e, s);
    } else {
      net_.sim().schedule_in(ep.offsets[s],
                             [this, e, s] { emit_sender(e, s); });
    }
  }
}

void incast_source::emit_sender(std::size_t e, std::size_t s) {
  const incast_epoch& ep = epochs_[e];
  packets_emitted_ +=
      emit_burst_packets(net_, opt_, next_packet_id_, ep.first_flow_id + s,
                         ep.srcs[s], ep.dst, ep.sizes[s]);
  ++flows_emitted_;
}

// --- mixed_source ------------------------------------------------------------

mixed_source::mixed_source(net::network& net,
                           std::vector<flow_spec> background_flows,
                           std::uint32_t max_outstanding, bool via_tcp,
                           std::vector<incast_epoch> epochs,
                           source_options background_opt,
                           source_options incast_opt)
    : background_(net, std::move(background_flows), max_outstanding, via_tcp,
                  std::move(background_opt)),
      incast_(net, std::move(epochs), std::move(incast_opt)) {}

// --- make_source -------------------------------------------------------------

namespace {

// Calibrates and constructs the two halves of a mixed workload. Each half
// is generated against its share of the offered load and packet budget so
// the aggregate stays at the scenario's utilization; flow-id and packet-id
// ranges are made disjoint afterwards (the closed loop matches completions
// by flow id; replay sorts outcomes by packet id).
source_run make_mixed_source(net::network& net, const topo::topology& topo,
                             const flow_size_dist& dist,
                             const workload_config& cfg,
                             const source_tuning& tune, source_options opt) {
  const double share = tune.incast_share;
  if (!(share >= 0.0) || !(share < 1.0)) {
    throw std::invalid_argument(
        "mixed workload: incast share must be in [0, 1)");
  }
  workload_config bg_cfg = cfg;
  bg_cfg.utilization = cfg.utilization * (1.0 - share);
  const auto incast_budget =
      static_cast<std::uint64_t>(static_cast<double>(cfg.packet_budget) *
                                 share);
  bg_cfg.packet_budget = cfg.packet_budget - incast_budget;
  auto bg = generate(net, topo, dist, bg_cfg);

  workload_config in_cfg = cfg;
  in_cfg.utilization = cfg.utilization * share;
  in_cfg.packet_budget = incast_budget;
  in_cfg.seed = cfg.seed + 1;  // independent stream from the background
  auto in = share > 0.0
                ? generate_incast(net, topo, dist, in_cfg, tune.incast_degree,
                                  tune.barrier_jitter)
                : incast_workload{};

  // Both generators number flows from 1; shift the epochs past the
  // background's range.
  const std::uint64_t bg_flows = bg.flows.size();
  for (auto& ep : in.epochs) ep.first_flow_id += bg_flows;

  source_options bg_opt = opt;
  source_options in_opt = std::move(opt);
  in_opt.first_packet_id = bg_opt.first_packet_id + bg.total_packets;

  source_run out;
  out.per_host_rate_bps = bg.per_host_rate_bps + in.per_host_rate_bps;
  out.max_link_utilization =
      bg.max_link_utilization + in.max_link_utilization;
  out.planned_packets = bg.total_packets + in.total_packets;
  out.planned_flows = bg_flows + in.flow_count;
  out.src = std::make_unique<mixed_source>(
      net, std::move(bg.flows), tune.outstanding, tune.via_tcp,
      std::move(in.epochs), std::move(bg_opt), std::move(in_opt));
  return out;
}

}  // namespace

source_run make_source(net::network& net, const topo::topology& topo,
                       const flow_size_dist& dist, const workload_config& cfg,
                       source_kind kind, const source_tuning& tune,
                       source_options opt) {
  source_run out;
  if (kind == source_kind::mixed) {
    return make_mixed_source(net, topo, dist, cfg, tune, std::move(opt));
  }
  if (kind == source_kind::incast) {
    auto wl = generate_incast(net, topo, dist, cfg, tune.incast_degree,
                              tune.barrier_jitter);
    out.per_host_rate_bps = wl.per_host_rate_bps;
    out.max_link_utilization = wl.max_link_utilization;
    out.planned_packets = wl.total_packets;
    out.planned_flows = wl.flow_count;
    out.src = std::make_unique<incast_source>(net, std::move(wl.epochs),
                                              std::move(opt));
    return out;
  }
  auto wl = generate(net, topo, dist, cfg);
  out.per_host_rate_bps = wl.per_host_rate_bps;
  out.max_link_utilization = wl.max_link_utilization;
  out.planned_packets = wl.total_packets;
  out.planned_flows = wl.flows.size();
  switch (kind) {
    case source_kind::open_loop:
      out.src = std::make_unique<open_loop_source>(net, std::move(wl.flows),
                                                   std::move(opt));
      break;
    case source_kind::paced:
      out.src = std::make_unique<paced_source>(
          net, std::move(wl.flows), tune.pacing_fraction, std::move(opt));
      break;
    case source_kind::closed_loop:
      out.src = std::make_unique<closed_loop_source>(
          net, std::move(wl.flows), tune.outstanding, tune.via_tcp,
          std::move(opt));
      break;
    case source_kind::incast:
    case source_kind::mixed:
      break;  // handled above
  }
  return out;
}

}  // namespace ups::traffic
