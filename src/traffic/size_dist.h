// Flow size distributions.
//
// The paper draws flow sizes "from a heavy-tailed distribution [4, 5]"; we
// default to a bounded Pareto and also provide an empirical web-search-like
// CDF (per-packet buckets matching Figure 2's x-axis) and a fixed size for
// tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace ups::traffic {

class flow_size_dist {
 public:
  virtual ~flow_size_dist() = default;
  [[nodiscard]] virtual std::uint64_t sample(sim::rng& rng) const = 0;
  [[nodiscard]] virtual double mean_bytes() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

class bounded_pareto final : public flow_size_dist {
 public:
  bounded_pareto(double alpha, std::uint64_t lo, std::uint64_t hi);
  [[nodiscard]] std::uint64_t sample(sim::rng& rng) const override;
  [[nodiscard]] double mean_bytes() const override { return mean_; }
  [[nodiscard]] std::string name() const override { return "bounded-pareto"; }

 private:
  double alpha_;
  std::uint64_t lo_;
  std::uint64_t hi_;
  double mean_;
};

// Piecewise-linear inverse-CDF over (bytes, cumulative probability) points.
class empirical final : public flow_size_dist {
 public:
  struct point {
    double bytes;
    double cum_prob;  // strictly increasing, last = 1.0
  };
  explicit empirical(std::vector<point> points, std::string name);
  [[nodiscard]] std::uint64_t sample(sim::rng& rng) const override;
  [[nodiscard]] double mean_bytes() const override { return mean_; }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::vector<point> points_;
  std::string name_;
  double mean_;
};

class fixed_size final : public flow_size_dist {
 public:
  explicit fixed_size(std::uint64_t bytes) : bytes_(bytes) {}
  [[nodiscard]] std::uint64_t sample(sim::rng&) const override {
    return bytes_;
  }
  [[nodiscard]] double mean_bytes() const override {
    return static_cast<double>(bytes_);
  }
  [[nodiscard]] std::string name() const override { return "fixed"; }

 private:
  std::uint64_t bytes_;
};

// Default heavy-tailed mix used by the replay experiments: alpha = 1.2,
// 1460 B .. 3 MB (mean ~15 KB, matching "most flows short, most bytes in
// long flows").
[[nodiscard]] std::unique_ptr<flow_size_dist> default_heavy_tailed();

// Web-search-like empirical distribution (DCTCP-style) for the datacenter
// and FCT experiments.
[[nodiscard]] std::unique_ptr<flow_size_dist> web_search();

}  // namespace ups::traffic
