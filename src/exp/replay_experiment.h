// End-to-end replay experiments (§2.3): run an original schedule under a
// scenario's scheduler collection, record the trace, then replay it with a
// candidate UPS and measure overdue fractions — the Table 1 pipeline.
#pragma once

#include "core/replay.h"
#include "exp/scenario.h"
#include "net/trace.h"
#include "net/trace_binary.h"
#include "topo/topology.h"

namespace ups::exp {

struct original_run {
  topo::topology topology;
  net::trace trace;
  sim::time_ps threshold_T = 0;  // 1500B at the bottleneck rate
  double per_host_rate_bps = 0.0;
  // Residency high-water marks of the original (recording) run: distinct
  // packet objects the pool ever allocated and the event slab's capacity.
  // The steady-state evidence for paced/closed-loop sources: an open-loop
  // elephant burst parks most of the trace in one egress queue, a paced or
  // bounded-outstanding source keeps this at O(in-flight).
  std::uint64_t peak_pool_packets = 0;
  std::uint64_t peak_event_slots = 0;
  // Source accounting (closed-loop: flows delivered end-to-end).
  std::uint64_t flows_completed = 0;
  std::uint64_t peak_outstanding_flows = 0;
};

// Runs the scenario's original schedule over its calibrated traffic source
// (scenario::workload_kind — open-loop, paced, closed-loop, or incast) and
// records it.
[[nodiscard]] original_run run_original(const scenario& sc);

// Replays a recorded run with the given candidate UPS. The single place
// that maps an original_run onto replay_options — the serial benches and
// the sharded harness both go through here.
[[nodiscard]] core::replay_result run_replay(
    const original_run& orig, core::replay_mode mode,
    bool keep_outcomes = false,
    core::injection_mode injection = core::injection_mode::streaming,
    const net::flow_spec& flow = {});

// Replays a trace straight from disk over `topology`: the file's format is
// sniffed (net::open_trace_cursor), so a v3 trace replays through the
// block-decoding cursor, a v2 binary trace through a zero-copy mmap cursor,
// and a v1 text trace through the streaming parser. A v1 file must be
// ingress-sorted (net::sort_by_ingress before saving); v2/v3 carry their
// own ingress structure and need no preparation. `access` is the page-cache
// advice for the binary cursors: a whole-file replay wants the sequential
// default; callers that seek around the file first should pass random.
[[nodiscard]] core::replay_result run_replay_file(
    const std::string& trace_path, const topo::topology& topology,
    sim::time_ps threshold_T, core::replay_mode mode,
    bool keep_outcomes = false,
    core::injection_mode injection = core::injection_mode::streaming,
    net::trace_access access = net::trace_access::sequential,
    const net::flow_spec& flow = {});

// Convenience: original + LSTF replay in one call (a Table 1 row).
[[nodiscard]] core::replay_result table1_row(const scenario& sc);

}  // namespace ups::exp
