#include "exp/dispatch/wire.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "core/varint.h"

namespace ups::exp::dispatch {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  core::put_varint(out, v);
}

std::uint64_t get_varint(const std::uint8_t*& p, const std::uint8_t* end) {
  return core::get_varint_checked<wire_error>(p, end, "frame payload");
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint8_t raw[8];
  std::memcpy(raw, &v, 8);
  out.insert(out.end(), raw, raw + 8);
}

double get_f64(const std::uint8_t*& p, const std::uint8_t* end) {
  if (end - p < 8) throw wire_error("truncated f64 in frame payload");
  double v;
  std::memcpy(&v, p, 8);
  p += 8;
  return v;
}

std::uint32_t check_frame_header(
    const std::uint8_t header[kFrameHeaderBytes]) {
  std::uint32_t len;
  std::memcpy(&len, header, 4);
  if (len > kMaxFramePayload) {
    throw wire_error("frame payload length " + std::to_string(len) +
                     " exceeds the " + std::to_string(kMaxFramePayload) +
                     "-byte bound (garbage length field)");
  }
  const std::uint8_t type = header[4];
  if (type < static_cast<std::uint8_t>(frame_type::assign) ||
      type > static_cast<std::uint8_t>(frame_type::shutdown)) {
    throw wire_error("unknown frame type tag " + std::to_string(type));
  }
  return len;
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

// Full-buffer send over a SOCK_STREAM socketpair. MSG_NOSIGNAL turns a
// dead peer into EPIPE instead of SIGPIPE (macOS lacks the flag but
// socketpairs there get SO_NOSIGPIPE set at creation by the coordinator).
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

[[nodiscard]] bool send_all(int fd, const std::uint8_t* data,
                            std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET: peer gone
    }
    data += static_cast<std::size_t>(w);
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

// Reads exactly n bytes. Returns 0 on immediate clean EOF, n on success;
// throws wire_error on EOF after a partial read (truncated message).
[[nodiscard]] std::size_t recv_exact(int fd, std::uint8_t* data,
                                     std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw wire_error(std::string("frame read failed: ") +
                       std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0) return 0;
      throw wire_error("peer closed mid-frame (truncated message)");
    }
    got += static_cast<std::size_t>(r);
  }
  return got;
}

}  // namespace

bool send_frame(int fd, frame_type type,
                const std::vector<std::uint8_t>& payload) {
  std::uint8_t header[kFrameHeaderBytes];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(header, &len, 4);
  header[4] = static_cast<std::uint8_t>(type);
  if (!send_all(fd, header, sizeof header)) return false;
  return payload.empty() || send_all(fd, payload.data(), payload.size());
}

bool recv_frame(int fd, frame& out) {
  std::uint8_t header[kFrameHeaderBytes];
  if (recv_exact(fd, header, sizeof header) == 0) return false;
  const std::uint32_t len = check_frame_header(header);
  out.type = static_cast<frame_type>(header[4]);
  out.payload.resize(len);
  if (len > 0 && recv_exact(fd, out.payload.data(), len) == 0) {
    throw wire_error("peer closed mid-frame (truncated payload)");
  }
  return true;
}

#else  // non-unix: the process backend is unavailable, keep links working

bool send_frame(int, frame_type, const std::vector<std::uint8_t>&) {
  throw wire_error("frame I/O requires a unix platform");
}

bool recv_frame(int, frame&) {
  throw wire_error("frame I/O requires a unix platform");
}

#endif

void frame_splitter::feed(const std::uint8_t* data, std::size_t n) {
  // Drop the consumed prefix before it grows unbounded across a long run.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= (1u << 20))) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

bool frame_splitter::pop(frame& out) {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return false;
  const std::uint32_t len = check_frame_header(buf_.data() + pos_);
  if (avail < kFrameHeaderBytes + len) return false;
  out.type = static_cast<frame_type>(buf_[pos_ + 4]);
  out.payload.assign(
      buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kFrameHeaderBytes),
      buf_.begin() +
          static_cast<std::ptrdiff_t>(pos_ + kFrameHeaderBytes + len));
  pos_ += kFrameHeaderBytes + len;
  return true;
}

}  // namespace ups::exp::dispatch
