// Unified dispatch-backend API for the replay fabric.
//
// Every replay-universality experiment is a pure function of
// (scenario × seed × replay-mode); this layer owns how those jobs fan out.
// One job_plan (tasks + modes + options) runs identically on any backend:
//
//   serial   — an inline loop on the calling thread (the reference)
//   thread   — the PR-2 thread pool (workers share this address space)
//   process  — a coordinator that forks N worker processes over the shared
//              plan (and, for disk plans, one shared mmap'd v2/v3 trace),
//              hands out job ranges over a socketpair frame protocol
//              (exp/dispatch/wire.h), merges results into pre-assigned
//              slots, and survives a worker dying mid-run (reassign,
//              respawn, classify — see process_coordinator.h)
//
// Results come back slot-ordered and byte-identical across backends: every
// job writes a pre-assigned slot, so output never depends on scheduling,
// worker count, or which worker (re)ran a job after a failure. The report
// carries a per-job status enum — a failing job marks its own slot and the
// rest of the plan still runs to completion (callers that want the old
// first-exception-wins contract call run_report::throw_if_failed). An
// ssh/container launcher later becomes just another spawn function behind
// this same interface.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/replay.h"
#include "exp/scenario.h"
#include "topo/topology.h"

namespace ups::exp {

// Wall-clock helper shared by the harness, the benches, and tracec.
[[nodiscard]] inline double wall_seconds_since(
    std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// One memory-plan job: record this scenario's original schedule, then
// replay it with each candidate mode.
struct shard_task {
  scenario sc;
  std::vector<core::replay_mode> modes;
};

struct shard_replay {
  core::replay_mode mode = core::replay_mode::lstf;
  core::replay_result result;
  double wall_seconds = 0;  // this replay's own wall-clock, informational
};

struct shard_result {
  scenario sc;
  std::uint64_t trace_packets = 0;
  sim::time_ps threshold_T = 0;
  double original_wall_seconds = 0;
  // Original-run in-flight residency (pool high-water mark) and source
  // accounting, so per-workload sweeps can compare steady-state behavior
  // across source kinds without rerunning the originals.
  std::uint64_t original_peak_pool_packets = 0;
  std::uint64_t original_flows_completed = 0;
  std::vector<shard_replay> replays;  // same order as the task's modes
};

struct shard_options {
  bool keep_outcomes = false;
  core::injection_mode injection = core::injection_mode::streaming;
  // Live flow control attached to every replay network (on top of the
  // re-enacted recorded stalls); default none. Originals take theirs from
  // scenario::flow instead.
  net::flow_spec replay_flow;
};

// One on-disk trace fanned across candidate replay modes. Every worker —
// thread or forked process — opens its own cursor over the same path; for
// a v2/v3 binary trace that is a read-only shared mapping, so N workers
// replaying the trace touch one physical copy and zero parse work.
struct disk_shard_task {
  std::string trace_path;
  topo::topology topology;
  sim::time_ps threshold_T = 0;
  std::vector<core::replay_mode> modes;
};

}  // namespace ups::exp

namespace ups::exp::dispatch {

enum class backend_kind : std::uint8_t { serial, thread, process };

[[nodiscard]] const char* to_string(backend_kind k);

struct backend_spec {
  backend_kind kind = backend_kind::thread;
  std::size_t workers = 0;  // 0: std::thread::hardware_concurrency()
  // Fault injection (process backend, off at 0): the first worker spawned
  // SIGKILLs itself after *computing* its K-th job but before reporting
  // it, so that job is deterministically in flight at the moment of death
  // and the coordinator's reassign/rerun path runs on every invocation.
  std::uint64_t kill_worker_after = 0;
  // Test hook (process backend, off at 0): the first worker writes a
  // truncated garbage frame in place of its K-th result and exits —
  // exercises the coordinator's typed protocol-error classification.
  std::uint64_t garble_result_at = 0;
  // Stall injection (process backend, off at 0): the first worker spawned
  // hangs forever after *computing* its K-th job but before reporting it —
  // alive as a process yet silent on its socket — so the coordinator's
  // assign->result watchdog is what has to notice, kill, and reassign.
  std::uint64_t hang_worker_after = 0;
  // Watchdog deadline (process backend): a worker that has produced no
  // frame for this long after an assignment is classified timed_out,
  // SIGKILLed, and its in-flight range reassigned. 0 picks the default —
  // generous (15 min) because real replay jobs legitimately run minutes;
  // tests injecting hangs dial it down to keep the suite fast.
  std::int64_t worker_timeout_ms = 0;

  // Parses "serial" | "thread[:N]" | "process[:N]" (the shared --dispatch=
  // CLI syntax, see exp/args.h). Throws std::invalid_argument on anything
  // else.
  [[nodiscard]] static backend_spec parse(const std::string& s);
};

// The one job description every backend consumes. Exactly one of
// tasks/disk is populated: a memory plan's jobs are its tasks (each job
// records an original and replays every mode), a disk plan's jobs are its
// modes (each job replays the shared trace file with one candidate).
struct job_plan {
  std::vector<shard_task> tasks;
  std::optional<disk_shard_task> disk;
  shard_options options;  // keep_outcomes + injection

  [[nodiscard]] std::size_t job_count() const {
    return disk ? disk->modes.size() : tasks.size();
  }
  [[nodiscard]] static job_plan from_tasks(std::vector<shard_task> tasks,
                                           shard_options opt = {});
  [[nodiscard]] static job_plan from_disk(disk_shard_task task,
                                          shard_options opt = {});
};

enum class job_status : std::uint8_t {
  ok,       // result slot is valid
  failed,   // the job (or a piece of it) threw; errors[] says what
  not_run,  // dispatch could not execute it (fabric exhausted / poisoned)
};

[[nodiscard]] const char* to_string(job_status s);

// How a worker process died, classified from waitpid + the byte stream.
enum class worker_failure_kind : std::uint8_t {
  exited_early,      // clean exit(0) before shutdown was requested
  exit_code,         // exited with a nonzero status
  killed_by_signal,  // SIGKILL/SIGSEGV/... (detail = signal number)
  protocol_error,    // truncated or garbage frame on its socket
  timed_out,         // alive but silent past the assign->result deadline
};

[[nodiscard]] const char* to_string(worker_failure_kind k);

struct worker_failure {
  int worker = -1;  // spawn index (respawns keep counting up)
  worker_failure_kind kind = worker_failure_kind::exited_early;
  int detail = 0;  // exit status or signal number
  std::string message;
  std::vector<std::size_t> reassigned_jobs;  // in-flight at death, rerun
  bool respawned = false;  // a replacement worker was forked
};

struct run_report {
  std::vector<shard_result> results;       // memory plan, slot per task
  std::vector<shard_replay> disk_replays;  // disk plan, slot per mode
  std::vector<job_status> status;          // one per job, slot order
  std::vector<std::string> errors;         // parallel to status, "" when ok
  std::vector<worker_failure> worker_failures;  // process recovery log

  [[nodiscard]] bool all_ok() const;
  [[nodiscard]] std::size_t jobs_failed() const;
  // First failing slot's error as an exception — the legacy-wrapper
  // contract (callers that want partial results inspect status instead).
  void throw_if_failed() const;
};

// Runs every job of the plan on the chosen backend and returns the
// slot-ordered report. Byte-identical results across backends and worker
// counts. The process backend must be invoked while the calling process is
// otherwise single-threaded (it forks without exec).
[[nodiscard]] run_report run(const job_plan& plan, const backend_spec& spec);

// Executes one job of the plan in-process — the unit a process worker
// runs, exposed so tests can pin down exactly what crosses the wire.
[[nodiscard]] shard_result run_memory_job(const job_plan& plan,
                                          std::size_t job);
[[nodiscard]] shard_replay run_disk_job(const job_plan& plan,
                                        std::size_t job);

// The local pool primitive under the serial/thread backends: executes
// body(0..jobs-1) on min(workers, jobs) threads (inline when <= 1),
// recording a per-slot status instead of abandoning the pool on the first
// exception. Exposed for other experiment drivers.
struct job_outcomes {
  std::vector<job_status> status;
  std::vector<std::string> errors;  // parallel, "" when ok
};
[[nodiscard]] job_outcomes run_jobs(
    std::size_t jobs, std::size_t workers,
    const std::function<void(std::size_t)>& body);

}  // namespace ups::exp::dispatch
