// Multi-process dispatch backend: a coordinator that forks N worker
// processes over the shared job_plan, hands out contiguous job ranges over
// per-worker socketpairs (length-prefixed frames, exp/dispatch/wire.h),
// collects results into pre-assigned slots, and merges them byte-identical
// to the serial loop.
//
// Fork, not exec: a worker inherits the whole plan (scenarios, topology,
// modes) copy-on-write, so nothing but job indices travels coordinator ->
// worker, and only encoded results travel back (core/replay_codec.h). For
// a disk plan every worker opens its own cursor over the same v2/v3 trace
// path — a read-only mmap the kernel backs with one physical copy.
//
// Failure discipline: a worker dying mid-run (exit, SIGKILL, garbage on
// the wire) is detected via pipe-EOF + waitpid, classified
// (worker_failure_kind), and its in-flight range is pushed back to the
// pending queue for a live worker — or a respawned replacement when none
// remain — to rerun. Jobs are pure functions, so a rerun reproduces the
// exact bytes the dead worker would have sent. A job that keeps killing
// workers is marked failed after a bounded number of attempts instead of
// looping forever; if the respawn budget runs out, the untouched jobs
// report not_run rather than hanging.
//
// Constraints: unix-only (throws elsewhere), and the calling process must
// be otherwise single-threaded at the moment of the fork.
#pragma once

#include "exp/dispatch/backend.h"

namespace ups::exp::dispatch {

[[nodiscard]] run_report run_process(const job_plan& plan,
                                     const backend_spec& spec);

}  // namespace ups::exp::dispatch
